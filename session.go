package metainsight

// The Session API is the package's primary analysis surface: a Session
// loads and indexes a dataset once and then serves many Analyze calls, each
// parameterized by a Request. Construction-time settings (execution layout,
// resilience, durability, custom patterns, ranking weights) are grouped
// into typed configs attached via SessionOption; per-call knobs (measures,
// budgets, τ, top-k) travel in the Request.
//
// Every Analyze call is hermetic: it runs with fresh query/pattern caches
// and a fresh meter, so its result — insights, statistics and trace — is
// bit-identical to a fresh Analyzer run with the same settings, regardless
// of what the session served before. What the session shares across calls
// is the expensive read-only state: the dataset's dictionaries, posting
// lists and zone maps (cached on the dataset itself), and the physical scan
// substrates (plan caches, accumulator pools, shard partitions), reused
// from a registry keyed by their full configuration.
//
// The pre-Session construction surface (NewAnalyzer, Analyze and the flat
// With* options) remains supported as thin deprecated shims over this API;
// see the migration table in README.md.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"metainsight/internal/cache"
	"metainsight/internal/engine"
	"metainsight/internal/faults"
	"metainsight/internal/miner"
	"metainsight/internal/model"
	"metainsight/internal/pattern"
	"metainsight/internal/ranker"
	"metainsight/internal/shard"
)

// SessionOption configures a Session at construction. It is the same type
// as the legacy Option, so every existing With* option can be passed to
// NewSession unchanged; prefer the grouped WithExec / WithResilience /
// WithDurability configs for new code.
type SessionOption = Option

// ShardFaultPlan configures the per-shard simulated-remote fault model of
// sharded execution: a fault/latency policy applied independently per shard
// (each shard derives its own seed), designated straggler shards, and
// speculative re-issue for straggler mitigation. See ResilienceConfig.
type ShardFaultPlan = shard.FaultPlan

// ParseShardFaultSpec parses the CLI's -shard-faults specification: every
// key of ParseFaultSpec applied per shard, plus slow-shard=N (repeatable),
// slow-factor=F and speculate-after=C.
func ParseShardFaultSpec(spec string) (ShardFaultPlan, error) {
	return shard.ParseFaultPlan(spec)
}

// ExecConfig groups the execution-layout settings: inter-query parallelism
// (Workers), intra-scan parallelism (ScanParallelism) and horizontal
// partitioning (Shards). Zero-valued fields leave the corresponding setting
// at its prior or default value, so partially-filled configs compose with
// other options.
type ExecConfig struct {
	// Workers is the number of evaluation goroutines (default 8). Results
	// are bit-identical for any value.
	Workers int
	// ScanParallelism is how many goroutines one physical scan may use
	// (default 1). Bit-identical for any value; see WithScanParallelism.
	ScanParallelism int
	// Shards, when > 1, partitions the dataset into that many row-range
	// shards (morsel-boundary aligned, so zone maps survive intact), scans
	// them concurrently and merges per-shard partial aggregates in
	// deterministic shard order. Results are bit-identical for any shard
	// count: shards emit per-block partials that the merge folds in global
	// block order, so the floating-point addition tree never depends on the
	// partitioning. 0 or 1 means unsharded.
	Shards int
	// ShardBlockRows is the block (morsel) size in rows of sharded
	// execution; shard boundaries align to it. 0 uses the engine default
	// (8192). Like WithScanParallelism's morsel size, a different block size
	// is a different deterministic universe: results are reproducible per
	// value, not across values.
	ShardBlockRows int
	// ShardConcurrency caps how many shards scan concurrently (0 = all).
	ShardConcurrency int
}

// ResilienceConfig groups the fault-handling settings: deterministic fault
// injection, retry/backoff/breaker behavior, the degraded-result threshold,
// and the per-shard fault plan of sharded execution. Zero-valued fields
// leave the corresponding setting unchanged.
type ResilienceConfig struct {
	// Faults enables deterministic fault injection on every scan path; a
	// zero policy injects nothing. See WithFaultPolicy.
	Faults FaultPolicy
	// Retry configures retries, backoff, per-query deadlines and the
	// circuit breaker; a zero value leaves the retry policy unset (or, if
	// Faults is enabled, the defaults apply). See WithRetryPolicy.
	Retry RetryPolicy
	// DegradedThreshold is the query failure rate above which a run is
	// flagged degraded (Result.Err wraps ErrDegraded). 0 keeps the default
	// (0.1); negative flags any failure; >= 1 never flags.
	DegradedThreshold float64
	// ShardFaults is the per-shard fault plan of sharded execution:
	// per-shard transient/permanent/latency schedules, straggler shards,
	// and speculative re-issue (SpeculateAfter). Requires ExecConfig.Shards
	// > 0. Shard fates are pure functions of each query's fingerprint, so
	// faulty sharded runs stay bit-reproducible; the speculative winner is
	// picked by deterministic completion cost with ties to the primary,
	// never by wall clock.
	ShardFaults ShardFaultPlan
}

// DurabilityConfig groups crash-safety: checkpoint journaling and resume.
type DurabilityConfig struct {
	// CheckpointDir is the checkpoint directory. Empty disables
	// checkpointing.
	CheckpointDir string
	// Every is the snapshot cadence in unit commits (<= 0 defaults to 256).
	Every int64
	// Resume restores the run from CheckpointDir instead of starting fresh.
	Resume bool
}

// WithExec applies an execution-layout config. Zero-valued fields leave
// prior settings untouched.
func WithExec(c ExecConfig) Option {
	return func(o *analyzerOptions) {
		if c.Workers != 0 {
			o.minerCfg.Workers = c.Workers
		}
		if c.ScanParallelism != 0 {
			o.scanPar = c.ScanParallelism
		}
		if c.Shards != 0 {
			o.shards = c.Shards
		}
		if c.ShardBlockRows != 0 {
			o.shardBlock = c.ShardBlockRows
		}
		if c.ShardConcurrency != 0 {
			o.shardConc = c.ShardConcurrency
		}
	}
}

// WithResilience applies a resilience config. Zero-valued fields leave
// prior settings untouched.
func WithResilience(c ResilienceConfig) Option {
	return func(o *analyzerOptions) {
		if c.Faults.Enabled() {
			o.faultPolicy = c.Faults
		}
		if c.Retry != (RetryPolicy{}) {
			o.retryPolicy = c.Retry
			o.retrySet = true
		}
		if c.DegradedThreshold != 0 {
			o.minerCfg.DegradedThreshold = c.DegradedThreshold
		}
		if c.ShardFaults.Enabled() {
			o.shardFaults = c.ShardFaults
		}
	}
}

// WithDurability applies a durability config; equivalent to WithCheckpoint
// or ResumeFromCheckpoint depending on Resume.
func WithDurability(c DurabilityConfig) Option {
	return func(o *analyzerOptions) {
		if c.CheckpointDir == "" {
			return
		}
		if c.Resume {
			o.resumeDir = c.CheckpointDir
		} else {
			o.ckDir = c.CheckpointDir
		}
		if c.Every != 0 {
			o.ckEvery = c.Every
		}
	}
}

// Budget bounds one Analyze call. At most one field may be set: cost
// budgets are deterministic and exactly reproducible, time budgets are not,
// so the library refuses to combine them (ErrConflictingBudgets).
type Budget struct {
	// Time bounds mining by wall clock; mining is progressive and returns
	// the best-so-far insights at the deadline.
	Time time.Duration
	// Cost bounds mining by deterministic engine cost units.
	Cost float64
}

// Request parameterizes one Session.Analyze call. Zero-valued fields take
// the session's settings (or the library defaults).
type Request struct {
	// Measures is the mined measure set M (default: SUM over every measure
	// column plus COUNT(*)).
	Measures []Measure
	// ImpactMeasure sets the impact measure (must be SUM or COUNT; default
	// COUNT(*)).
	ImpactMeasure Measure
	// TopK is how many ranked insights to return (the paper's suggestion
	// count). Values <= 0 return no ranked insights; the Analysis still
	// carries every mined candidate in Result.
	TopK int
	// MaxFilters caps the number of subspace filters (default 3).
	MaxFilters int
	// Budget bounds the call by wall clock or by deterministic cost units.
	Budget Budget
	// Tau overrides the commonness threshold τ (default 0.5).
	Tau float64
	// TopKPruning enables S*-bounded early termination with the given k;
	// see WithTopKPruning. Must be > 0 when set.
	TopKPruning int
	// Progress, when set, is invoked for each newly stored MetaInsight in
	// deterministic discovery order.
	Progress func(*MetaInsight)
	// Observer, when set, receives this call's metrics and trace,
	// overriding the session observer for the call.
	Observer *Observer
}

// options lowers the request to the legacy option list, applied after the
// session's options so per-call settings win.
func (r Request) options() []Option {
	var opts []Option
	if r.Measures != nil {
		opts = append(opts, WithMeasures(r.Measures...))
	}
	if r.ImpactMeasure != (Measure{}) {
		opts = append(opts, WithImpactMeasure(r.ImpactMeasure))
	}
	if r.MaxFilters > 0 {
		opts = append(opts, WithMaxSubspaceFilters(r.MaxFilters))
	}
	if r.Budget.Time > 0 {
		opts = append(opts, WithTimeBudget(r.Budget.Time))
	}
	if r.Budget.Cost > 0 {
		opts = append(opts, WithCostBudget(r.Budget.Cost))
	}
	if r.Tau != 0 {
		opts = append(opts, WithTau(r.Tau))
	}
	if r.TopKPruning != 0 {
		opts = append(opts, WithTopKPruning(r.TopKPruning))
	}
	if r.Progress != nil {
		opts = append(opts, WithProgress(r.Progress))
	}
	if r.Observer != nil {
		opts = append(opts, WithObserver(r.Observer))
	}
	return opts
}

// Construction-time validation errors. Conflicting or malformed options are
// rejected by NewSession / NewAnalyzer with one of these (test with
// errors.Is) instead of surfacing as surprising behavior mid-run.
var (
	// ErrConflictingCheckpoints: ResumeFromCheckpoint and WithCheckpoint
	// (or DurabilityConfig equivalents) name different directories. Naming
	// the same directory is fine — it resumes and keeps checkpointing there.
	ErrConflictingCheckpoints = errors.New(
		"metainsight: ResumeFromCheckpoint and WithCheckpoint name different directories; use one directory")
	// ErrInvalidTopKPruning: WithTopKPruning (or Request.TopKPruning)
	// requires k > 0; omit the option to disable early termination.
	ErrInvalidTopKPruning = errors.New(
		"metainsight: WithTopKPruning requires k > 0; omit the option to disable early termination")
	// ErrNegativeOption: a count or size option (workers, scan parallelism,
	// shards, cache bytes) was negative.
	ErrNegativeOption = errors.New("metainsight: option value must be non-negative")
	// ErrShardSubstrateConflict: sharded execution builds its own substrate
	// and cannot be combined with WithSubstrate.
	ErrShardSubstrateConflict = errors.New(
		"metainsight: ExecConfig.Shards and WithSubstrate are mutually exclusive")
	// ErrShardFaultsWithoutShards: a shard fault plan was configured
	// without sharded execution.
	ErrShardFaultsWithoutShards = errors.New(
		"metainsight: ResilienceConfig.ShardFaults requires ExecConfig.Shards > 0")
	// ErrSessionClosed: Analyze was called on a closed session.
	ErrSessionClosed = errors.New("metainsight: session is closed")
)

// resolveOptions applies the option list over the defaults and validates
// the combination; every construction path (NewSession, Session.Analyze,
// NewAnalyzer) funnels through it, so conflicts surface identically
// everywhere.
func resolveOptions(opts []Option) (*analyzerOptions, error) {
	o := &analyzerOptions{
		minerCfg: miner.DefaultConfig(),
		weights:  ranker.DefaultWeights(),
	}
	o.minerCfg.UsePriorityQueues = true
	for _, opt := range opts {
		opt(o)
	}
	if o.timeBudget > 0 && o.costBudget > 0 {
		return nil, ErrConflictingBudgets
	}
	if err := o.faultPolicy.Validate(); err != nil {
		return nil, err
	}
	if o.topKSet && o.minerCfg.TopK <= 0 {
		return nil, ErrInvalidTopKPruning
	}
	if o.minerCfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers %d", ErrNegativeOption, o.minerCfg.Workers)
	}
	if o.scanPar < 0 {
		return nil, fmt.Errorf("%w: scan parallelism %d", ErrNegativeOption, o.scanPar)
	}
	if o.shards < 0 || o.shardBlock < 0 || o.shardConc < 0 {
		return nil, fmt.Errorf("%w: shards %d, shard block %d, shard concurrency %d",
			ErrNegativeOption, o.shards, o.shardBlock, o.shardConc)
	}
	if o.qcBytes < 0 || o.pcBytes < 0 {
		return nil, fmt.Errorf("%w: cache bytes %d/%d", ErrNegativeOption, o.qcBytes, o.pcBytes)
	}
	if o.subLimit < 0 {
		return nil, fmt.Errorf("%w: substrate cache limit %d", ErrNegativeOption, o.subLimit)
	}
	if o.shards > 0 && o.substrate != nil {
		return nil, ErrShardSubstrateConflict
	}
	if o.shardFaults.Enabled() {
		if o.shards <= 0 {
			return nil, ErrShardFaultsWithoutShards
		}
		if err := o.shardFaults.Validate(o.shards); err != nil {
			return nil, err
		}
	}
	switch {
	case o.resumeDir != "" && o.ckDir != "" && o.resumeDir != o.ckDir:
		return nil, ErrConflictingCheckpoints
	case o.resumeDir != "":
		o.checkpoint = &miner.CheckpointSpec{Dir: o.resumeDir, Every: o.ckEvery, Resume: true}
	case o.ckDir != "":
		o.checkpoint = &miner.CheckpointSpec{Dir: o.ckDir, Every: o.ckEvery}
	}
	return o, nil
}

// Session is a long-lived analysis handle over one dataset: NewSession
// loads and validates once, Analyze serves many requests. Sessions are safe
// for concurrent Analyze calls; each call is hermetic (fresh caches and
// meter), sharing only the dataset's read-only index structures and the
// substrate registry.
type Session struct {
	d    *Dataset
	opts []Option

	mu       sync.Mutex
	closed   bool
	subs     map[string]*substrateEntry
	subLimit int
	useSeq   int64
}

// substrateEntry is one cached physical substrate plus the bookkeeping the
// bounded registry evicts by: lastUse orders entries least-recently-used
// first, ctor (the construction sequence number) breaks ties, so eviction is
// a deterministic function of the access history alone.
type substrateEntry struct {
	sub     Substrate
	lastUse int64
	ctor    int64
}

// DefaultSubstrateCacheLimit bounds how many distinct physical substrates a
// session retains. Each distinct substrate-shaping configuration (shard
// layout, scan parallelism, MIN/MAX column set, fault plan, observer
// identity) builds one substrate; a resident server handling heterogeneous
// requests would otherwise grow the registry forever. Override with
// WithSubstrateCacheLimit.
const DefaultSubstrateCacheLimit = 16

// WithSubstrateCacheLimit bounds the session's substrate registry to at most
// n cached physical substrates, evicted least-recently-used first (ties by
// construction order). 0 keeps DefaultSubstrateCacheLimit. Eviction never
// changes results — an evicted substrate is rebuilt on next use — it only
// re-pays partitioning and plan-cache warmup.
func WithSubstrateCacheLimit(n int) Option {
	return func(o *analyzerOptions) { o.subLimit = n }
}

// NewSession creates a session over a dataset. Construction validates the
// option combination eagerly (see the Err* construction errors), so a
// misconfigured session fails here rather than on first Analyze.
func NewSession(d *Dataset, opts ...SessionOption) (*Session, error) {
	if d == nil {
		return nil, errors.New("metainsight: nil dataset")
	}
	o, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	limit := o.subLimit
	if limit == 0 {
		limit = DefaultSubstrateCacheLimit
	}
	return &Session{
		d:        d,
		opts:     append([]Option(nil), opts...),
		subs:     make(map[string]*substrateEntry),
		subLimit: limit,
	}, nil
}

// Dataset returns the dataset the session analyzes.
func (s *Session) Dataset() *Dataset { return s.d }

// Close releases the session's cached physical substrates and marks the
// session closed; subsequent Analyze calls fail with ErrSessionClosed.
// In-flight Analyze calls are unaffected (they hold their substrate already).
// Close is idempotent. A resident server holding a registry of sessions
// should Close a session when evicting it, so the substrate memory is
// reclaimable immediately rather than when the GC notices.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.subs = nil
	return nil
}

// substrateCount reports how many physical substrates the registry currently
// retains (tests pin the LRU bound with it).
func (s *Session) substrateCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Analysis is the outcome of one Session.Analyze call: the ranked top-k
// insights plus the full mining result (every candidate and the run
// statistics).
type Analysis struct {
	// Insights is the ranked, redundancy-aware top-k selection.
	Insights []*Insight
	// Result holds every mined MetaInsight candidate plus run statistics.
	Result *MiningResult

	a *Analyzer
}

// Snapshot returns a point-in-time copy of the call's observer metrics; see
// Analyzer.Snapshot.
func (an *Analysis) Snapshot() MetricsSnapshot { return an.a.Snapshot() }

// WriteReport renders the analysis' ranked insights as a markdown EDA
// report.
func (an *Analysis) WriteReport(w io.Writer, title string) error {
	return an.a.WriteReport(w, an.Insights, title)
}

// Engine exposes the call's query engine for ad-hoc follow-up queries — the
// "exception as a new entry point" loop of exploratory analysis.
func (an *Analysis) Engine() *engine.Engine { return an.a.Engine() }

// Analyze mines and ranks one request. The error mirrors the legacy
// Analyze contract: it may wrap ErrDegraded (best-effort result under
// faults) or a checkpoint sentinel, and the returned Analysis is still
// valid best-effort output whenever it is non-nil.
func (s *Session) Analyze(ctx context.Context, req Request) (*Analysis, error) {
	a, err := s.analyzer(req)
	if err != nil {
		return nil, err
	}
	res := a.MineContext(ctx)
	return &Analysis{Insights: a.Rank(res, req.TopK), Result: res, a: a}, res.Err
}

// analyzer builds the per-request execution state: session options plus the
// request's overrides, resolved and validated, over substrates reused from
// the session registry.
func (s *Session) analyzer(req Request) (*Analyzer, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	all := append(append([]Option(nil), s.opts...), req.options()...)
	o, err := resolveOptions(all)
	if err != nil {
		return nil, err
	}
	return buildAnalyzer(s.d, o, s)
}

// needMinMax replicates engine.New's needed-aggregate derivation: MIN/MAX
// accumulators are materialized only for columns some measure in Measures ∪
// ExtraMeasures ∪ {ImpactMeasure} aggregates that way. The session builds
// substrates itself (to share them across requests), which bypasses the
// engine's derivation, so it must agree with it exactly.
func needMinMax(d *Dataset, o *analyzerOptions, extra []Measure) map[string]bool {
	measures := o.measures
	if measures == nil {
		measures = d.DefaultMeasures()
	}
	impact := o.impact
	if impact == (Measure{}) {
		impact = model.Count("*")
	}
	need := make(map[string]bool)
	for _, ms := range [][]Measure{measures, extra, {impact}} {
		for _, m := range ms {
			if m.Agg == model.AggMin || m.Agg == model.AggMax {
				need[m.Column] = true
			}
		}
	}
	return need
}

// substrateFor returns the physical scan substrate for one resolved
// configuration, reusing a previously built one from the session registry
// when every substrate-affecting setting matches. Substrates are safe to
// share: scans are read-only over the dataset, plan caches and accumulator
// pools are internally synchronized, and reuse never changes results — it
// only skips re-partitioning and re-planning. A nil receiver (the
// NewAnalyzer shim path on a fresh throwaway session, or direct builds)
// builds without caching.
func (s *Session) substrateFor(d *Dataset, o *analyzerOptions, need map[string]bool) (Substrate, error) {
	build := func() (Substrate, error) {
		if o.shards > 0 {
			return shard.New(d, shard.Config{
				Shards:          o.shards,
				Block:           o.shardBlock,
				ScanParallelism: o.scanPar,
				MinMax:          need,
				Concurrency:     o.shardConc,
				Observer:        o.observer,
				Faults:          o.shardFaults,
			})
		}
		return engine.NewColumnarSubstrate(d,
			engine.WithMinMaxColumns(need),
			engine.WithScanParallelism(o.scanPar),
			engine.WithScanObserver(o.observer)), nil
	}
	if s == nil {
		return build()
	}
	cols := make([]string, 0, len(need))
	for c := range need {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	// The key covers every input that shapes the substrate, including the
	// observer identity (substrates bake their observer in) and the full
	// shard fault plan.
	key := fmt.Sprintf("shards=%d block=%d conc=%d par=%d mm=%v faults=%+v obs=%p",
		o.shards, o.shardBlock, o.shardConc, o.scanPar, cols, o.shardFaults, o.observer)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.useSeq++
	if e, ok := s.subs[key]; ok {
		e.lastUse = s.useSeq
		return e.sub, nil
	}
	sub, err := build()
	if err != nil {
		return nil, err
	}
	s.subs[key] = &substrateEntry{sub: sub, lastUse: s.useSeq, ctor: s.useSeq}
	// Bounded registry: evict least-recently-used entries (ties broken by
	// construction order) until the limit holds. Eviction only drops the
	// cached reference; an in-flight Analyze keeps its substrate alive.
	for s.subLimit > 0 && len(s.subs) > s.subLimit {
		var victim string
		var ve *substrateEntry
		for k, e := range s.subs {
			if ve == nil || e.lastUse < ve.lastUse ||
				(e.lastUse == ve.lastUse && e.ctor < ve.ctor) {
				victim, ve = k, e
			}
		}
		delete(s.subs, victim)
	}
	return sub, nil
}

// buildAnalyzer assembles the execution state (engine, miner config,
// ranking weights) from a resolved option set. It is the single
// construction path behind both Session.Analyze and the deprecated
// NewAnalyzer shim, which is what makes the two surfaces bit-identical.
func buildAnalyzer(d *Dataset, o *analyzerOptions, sess *Session) (*Analyzer, error) {
	var retry faults.RetryPolicy
	if o.retrySet {
		retry = o.retryPolicy
		if retry == (faults.RetryPolicy{}) {
			// All-zero from an explicit WithRetryPolicy still means "use the
			// defaults", which NewInjector would otherwise read as absent.
			retry = retry.WithDefaults()
		}
	}
	qc := cache.NewQueryCache(!o.disableQC)
	if o.qcBytes > 0 {
		qc.SetMaxBytes(o.qcBytes)
	}
	meter := &engine.Meter{}
	// The needed-aggregate set: measures that registered evaluators will
	// query beyond the mined measure set. Custom patterns declare theirs via
	// CustomEvaluator.Requires; each correlation pair queries its secondary
	// measure for the primary's scopes. The engine derives from this which
	// MIN/MAX accumulators its scan substrate must materialize.
	reqCfg := pattern.Config{Custom: o.customPatterns}
	for _, pair := range o.correlations {
		reqCfg.Custom = append(reqCfg.Custom, pattern.CustomEvaluator{
			Requires: []Measure{pair[0], pair[1]},
		})
	}
	sub := o.substrate
	if sub == nil {
		var err error
		sub, err = sess.substrateFor(d, o, needMinMax(d, o, reqCfg.RequiredMeasures()))
		if err != nil {
			return nil, err
		}
	}
	eng, err := engine.New(d, engine.Config{
		Measures:        o.measures,
		ImpactMeasure:   o.impact,
		ExtraMeasures:   reqCfg.RequiredMeasures(),
		ScanParallelism: o.scanPar,
		QueryCache:      qc,
		Meter:           meter,
		Observer:        o.observer,
		Substrate:       sub,
		Faults:          faults.NewInjector(o.faultPolicy, retry),
	})
	if err != nil {
		return nil, err
	}
	cfg := o.minerCfg
	if len(o.customPatterns) > 0 || len(o.correlations) > 0 {
		if cfg.Pattern.Alpha == 0 {
			cfg.Pattern = pattern.DefaultConfig()
		}
		cfg.Pattern.Custom = append(cfg.Pattern.Custom, o.customPatterns...)
		for _, pair := range o.correlations {
			cfg.Pattern.Custom = append(cfg.Pattern.Custom, correlationEvaluator(eng, pair[0], pair[1]))
		}
	}
	// The pattern cache is created here (not lazily per Mine call) so it
	// persists across Mine calls like the query cache, and so Snapshot can
	// report its stats.
	cfg.PatternCache = cache.NewPatternCache[*pattern.ScopeEvaluation](!o.disablePC)
	if o.pcBytes > 0 {
		cfg.PatternCache.SetMaxBytes(o.pcBytes, func(key string, se *pattern.ScopeEvaluation) int64 {
			return int64(len(key)) + se.ApproxBytes()
		})
	}
	cfg.Observer = o.observer
	cfg.Checkpoint = o.checkpoint
	if o.costBudget > 0 {
		cfg.Budget = engine.CostBudget{Meter: meter, Limit: o.costBudget}
	}
	return &Analyzer{
		eng: eng, meter: meter, cfg: cfg, wts: o.weights,
		obs: o.observer, timeBudget: o.timeBudget,
	}, nil
}
