// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per table/figure; see DESIGN.md's experiment index and
// cmd/experiments for the printing runner), plus micro-benchmarks of the
// engine, evaluators, miner and ranker, and ablation benches for the design
// choices DESIGN.md calls out.
package metainsight_test

import (
	"fmt"
	"io"
	"testing"

	"metainsight"
	"metainsight/internal/cache"
	"metainsight/internal/dataset"
	"metainsight/internal/engine"
	"metainsight/internal/experiments"
	"metainsight/internal/miner"
	"metainsight/internal/model"
	"metainsight/internal/obs"
	"metainsight/internal/pattern"
	"metainsight/internal/quickinsight"
	"metainsight/internal/ranker"
	"metainsight/internal/workload"
)

// ---------------------------------------------------------------- figures

// BenchmarkFigure6 regenerates the mining-efficiency ablation curves
// (precision vs budget under full functionality / w-o pattern cache /
// w-o query cache / FIFO queue) on the four large datasets.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure6(io.Discard)
	}
}

// BenchmarkFigure7 regenerates the QuickInsight-vs-MetaInsight query-count
// comparison over the 35-dataset suite.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure7(io.Discard)
	}
}

// BenchmarkTable3 regenerates the cache statistics over the 35-dataset
// suite.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard)
	}
}

// BenchmarkTable4 regenerates the ranking-optimality comparison (exact
// baseline vs greedy vs rank-by-score) on the four large datasets.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(io.Discard)
	}
}

// BenchmarkTable5 regenerates the user-study dataset descriptions.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5(io.Discard)
	}
}

// BenchmarkFigure8 regenerates the simulated user-study statistics.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure8(io.Discard, 20210620)
	}
}

// BenchmarkFigure12 regenerates the τ-sensitivity curves.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure12(io.Discard)
	}
}

// BenchmarkICubeComparison regenerates the Appendix 9.2 i³ analysis.
func BenchmarkICubeComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ICubeComparison(io.Discard, 100)
	}
}

// BenchmarkMineEndToEnd measures a full cost-budgeted mining run (mine +
// rank) end to end at scan parallelism 1 and 4. Results are bit-identical
// across the two (the morsel pipeline's invariance); only wall-clock may
// differ.
func BenchmarkMineEndToEnd(b *testing.B) {
	tab := workload.CreditCard()
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := metainsight.NewAnalyzer(tab,
					metainsight.WithCostBudget(400),
					metainsight.WithScanParallelism(par))
				if err != nil {
					b.Fatal(err)
				}
				res := a.Mine()
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				a.Rank(res, 10)
			}
		})
	}
}

// ------------------------------------------------------------- components

func benchEngine(b *testing.B, tab *dataset.Table) *engine.Engine {
	b.Helper()
	eng, err := engine.New(tab, engine.Config{QueryCache: cache.NewQueryCache(false)})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkBasicQueryScan measures one uncached filtered group-by scan over
// the 116k-row Hotel Booking table.
func BenchmarkBasicQueryScan(b *testing.B) {
	tab := workload.HotelBooking()
	eng := benchEngine(b, tab)
	ds := model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "Channel", Value: "Web"}),
		Breakdown: "Month",
		Measure:   model.Sum("Bookings"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BasicQuery(ds); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tab.Rows()))
}

// BenchmarkAugmentedQueryScan measures the single-scan augmented query that
// prefetches a whole sibling group, amortizing one scan over |SG| basic
// queries (Table 2).
func BenchmarkAugmentedQueryScan(b *testing.B) {
	tab := workload.HotelBooking()
	eng := benchEngine(b, tab)
	anchor := model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: "Los Angeles"}),
		Breakdown: "Month",
		Measure:   model.Sum("Bookings"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AugmentedQuery(anchor, "City"); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tab.Rows()))
}

// BenchmarkEvaluateAll measures the full 11-type evaluation of one
// 12-point temporal series.
func BenchmarkEvaluateAll(b *testing.B) {
	keys := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	values := []float64{100, 70, 40, 10, 40, 70, 100, 101, 99, 100, 102, 100}
	cfg := pattern.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pattern.EvaluateAll(keys, values, true, cfg)
	}
}

// BenchmarkMinerSalesForecast measures a complete unbudgeted mining run on
// the Sales Forecast dataset.
func BenchmarkMinerSalesForecast(b *testing.B) {
	tab := workload.SalesForecast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := experiments.FullFunctionality().Run(tab)
		if len(res.MetaInsights) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkQuickInsightSalesForecast measures the QuickInsight baseline on
// the same dataset, for the overhead comparison of Figure 7.
func BenchmarkQuickInsightSalesForecast(b *testing.B) {
	tab := workload.SalesForecast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := engine.New(tab, engine.Config{QueryCache: cache.NewQueryCache(true)})
		if err != nil {
			b.Fatal(err)
		}
		res := quickinsight.Mine(eng, quickinsight.Config{})
		if len(res.Insights) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkGreedyRanking measures the paper's ranking algorithm over the
// Hotel Booking candidate set (thousands of MetaInsights, k = 10).
func BenchmarkGreedyRanking(b *testing.B) {
	res, _ := experiments.FullFunctionality().Run(workload.HotelBooking())
	w := ranker.DefaultWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ranker.Greedy(res.MetaInsights, 10, w); len(got) != 10 {
			b.Fatal("short selection")
		}
	}
}

// BenchmarkExactRanking measures the exponential exact baseline over a
// 16-candidate pool (the Table 4 configuration).
func BenchmarkExactRanking(b *testing.B) {
	res, _ := experiments.FullFunctionality().Run(workload.CreditCard())
	w := ranker.DefaultWeights()
	pool := ranker.RankByScore(res.MetaInsights, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ranker.ExactTopK(pool, 10, w, 0); len(got) != 10 {
			b.Fatal("short selection")
		}
	}
}

// --------------------------------------------------------------- ablations

// ablationRun mines Sales Forecast under a fixed cost budget with one
// optimization toggled, reporting discovered-MetaInsight counts as the
// quality metric (more is better at equal budget).
func ablationRun(b *testing.B, mutate func(*experiments.Setup)) {
	b.Helper()
	tab := workload.SalesForecast()
	golden, _ := experiments.FullFunctionality().Run(tab)
	budget := 0.25 * golden.Stats.CostUsed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setup := experiments.FullFunctionality()
		setup.BudgetUnits = budget
		mutate(&setup)
		res, _ := setup.Run(tab)
		b.ReportMetric(float64(len(res.MetaInsights)), "insights")
	}
}

// BenchmarkAblationFull is the reference point for the ablation benches.
func BenchmarkAblationFull(b *testing.B) {
	ablationRun(b, func(s *experiments.Setup) {})
}

// BenchmarkAblationNoQueryCache disables the query cache.
func BenchmarkAblationNoQueryCache(b *testing.B) {
	ablationRun(b, func(s *experiments.Setup) { s.QueryCache = false })
}

// BenchmarkAblationNoPatternCache disables the pattern cache.
func BenchmarkAblationNoPatternCache(b *testing.B) {
	ablationRun(b, func(s *experiments.Setup) { s.PatternCache = false })
}

// BenchmarkAblationFIFO replaces the priority queues with FIFO queues.
func BenchmarkAblationFIFO(b *testing.B) {
	ablationRun(b, func(s *experiments.Setup) { s.Priority = false })
}

// BenchmarkAblationNoPruning disables both pruning rules (unbudgeted, so the
// metric is wall time rather than discovery count).
func BenchmarkAblationNoPruning(b *testing.B) {
	tab := workload.SalesForecast()
	for i := 0; i < b.N; i++ {
		meter := &engine.Meter{}
		eng, err := engine.New(tab, engine.Config{Meter: meter, QueryCache: cache.NewQueryCache(true)})
		if err != nil {
			b.Fatal(err)
		}
		cfg := miner.DefaultConfig()
		cfg.Workers = 1
		cfg.EnablePruning1 = false
		cfg.EnablePruning2 = false
		miner.New(eng, cfg).Run()
	}
}

// BenchmarkAnalyzeEndToEnd measures the public one-call API on a small
// dataset, the path a downstream user hits first.
func BenchmarkAnalyzeEndToEnd(b *testing.B) {
	tab := workload.CreditCard()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		insights, err := metainsight.Analyze(tab, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(insights) == 0 {
			b.Fatal("no insights")
		}
	}
}

// BenchmarkExactRankingGrouped measures the decomposed exact optimum over a
// full candidate set (the algorithmic improvement behind Table 4's
// Baseline row).
func BenchmarkExactRankingGrouped(b *testing.B) {
	res, _ := experiments.FullFunctionality().Run(workload.SalesForecast())
	w := ranker.DefaultWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ranker.ExactTopKGrouped(res.MetaInsights, 10, w, 18); len(got) != 10 {
			b.Fatal("short selection")
		}
	}
}

// BenchmarkGreedyExactRanking measures the exact-marginal greedy extension.
func BenchmarkGreedyExactRanking(b *testing.B) {
	res, _ := experiments.FullFunctionality().Run(workload.SalesForecast())
	w := ranker.DefaultWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ranker.GreedyExact(res.MetaInsights, 10, w); len(got) != 10 {
			b.Fatal("short selection")
		}
	}
}

// BenchmarkAblationPatternsFirst measures the paper's module-feeding
// schedule against the default merged queue (same budget; the merged queue
// discovers more per cost unit because augmented prefetches also serve the
// pattern module).
func BenchmarkAblationPatternsFirst(b *testing.B) {
	ablationRun(b, func(s *experiments.Setup) { s.PatternsFirst = true })
}

// BenchmarkDiscussion regenerates the Section 6 categorization-robustness
// comparison.
func BenchmarkDiscussion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Discussion(io.Discard, 200, 42)
	}
}

// BenchmarkFilteredScanIndexed measures a selective filtered scan, which the
// engine drives from the most selective filter's posting list rather than
// the full table (compare BenchmarkBasicQueryScan's single-filter scan).
func BenchmarkFilteredScanIndexed(b *testing.B) {
	tab := workload.HotelBooking()
	eng := benchEngine(b, tab)
	ds := model.DataScope{
		Subspace: model.NewSubspace(
			model.Filter{Dim: "City", Value: "Los Angeles"},
			model.Filter{Dim: "Channel", Value: "Web"},
			model.Filter{Dim: "RoomType", Value: "Suite"},
		),
		Breakdown: "Month",
		Measure:   model.Sum("Bookings"),
	}
	if _, err := eng.BasicQuery(ds); err != nil { // warm the posting lists
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BasicQuery(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkers measures a full unbudgeted mining run at a given worker count
// (the paper pins 8 worker threads).
func benchWorkers(b *testing.B, workers int) {
	tab := workload.TabletSales()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setup := experiments.FullFunctionality()
		setup.Workers = workers
		res, _ := setup.Run(tab)
		if len(res.MetaInsights) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkMinerWorkers1 is the single-threaded reference.
func BenchmarkMinerWorkers1(b *testing.B) { benchWorkers(b, 1) }

// BenchmarkMinerWorkers2 doubles the evaluation workers.
func BenchmarkMinerWorkers2(b *testing.B) { benchWorkers(b, 2) }

// BenchmarkMinerWorkers4 quadruples the evaluation workers.
func BenchmarkMinerWorkers4(b *testing.B) { benchWorkers(b, 4) }

// BenchmarkMinerWorkers8 matches the paper's 8 worker threads.
func BenchmarkMinerWorkers8(b *testing.B) { benchWorkers(b, 8) }

// BenchmarkParallelScaling runs the same unbudgeted Tablet Sales mining run
// at 1/2/4/8 workers as sub-benchmarks, so a single invocation reports the
// whole scaling curve. Results and accounting are identical at every width
// (single-flight execution + canonical-order commit), so the deltas are pure
// wall-clock.
func BenchmarkParallelScaling(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchWorkers(b, w) })
	}
}

// BenchmarkParallelScalingObserved is BenchmarkParallelScaling with the
// observability layer attached (metrics, phase timers and a tracing ring per
// run), measuring the observer's overhead on the scaling curve. CI runs this
// once as a smoke test of the instrumented path.
func BenchmarkParallelScalingObserved(b *testing.B) {
	tab := workload.TabletSales()
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ob := obs.New(obs.Options{TraceCapacity: 1 << 14})
				setup := experiments.FullFunctionality()
				setup.Workers = w
				setup.Observer = ob
				res, _ := setup.Run(tab)
				if len(res.MetaInsights) == 0 {
					b.Fatal("no results")
				}
				if ob.Trace().Len() == 0 {
					b.Fatal("no trace events recorded")
				}
			}
		})
	}
}

// BenchmarkTable1 regenerates the Table 1 / Appendix 9.1 pattern-type
// exemplars.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard)
	}
}

// BenchmarkPruning regenerates the pruning-effectiveness ablation on the
// smaller two datasets (the full four-dataset run lives in
// cmd/experiments -run pruning; the no-query-cache arm on the 1M+-cell
// dataset alone takes tens of seconds).
func BenchmarkPruning(b *testing.B) {
	tables := []*dataset.Table{workload.CreditCard(), workload.SalesForecast()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Pruning(io.Discard, tables)
	}
}
