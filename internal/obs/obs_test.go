package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	r.Gauge("g").Set(2.5)
	r.Gauge("g").Add(0.5)
	h := r.Histogram("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	s := r.Snapshot()
	if s.Counters["a"] != 4 {
		t.Errorf("counter a = %d, want 4", s.Counters["a"])
	}
	if s.Gauges["g"] != 3.0 {
		t.Errorf("gauge g = %v, want 3", s.Gauges["g"])
	}
	hs := s.Histograms["h"]
	if hs.Count != 3 || hs.Sum != 55.5 {
		t.Errorf("histogram count=%d sum=%v, want 3/55.5", hs.Count, hs.Sum)
	}
	want := []int64{1, 1, 1} // ≤1, ≤10, overflow
	for i, c := range hs.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

// TestSnapshotStableOrdering is the registry-ordering regression test: the
// text rendering lists names sorted, and the JSON encoding is byte-identical
// across snapshots of identical state regardless of registration order.
func TestSnapshotStableOrdering(t *testing.T) {
	build := func(names []string) Snapshot {
		r := NewRegistry()
		for _, n := range names {
			r.Counter(n).Add(int64(len(n)))
			r.Gauge("g." + n).Set(float64(len(n)))
		}
		return r.Snapshot()
	}
	a := build([]string{"zeta", "alpha", "mid"})
	b := build([]string{"mid", "zeta", "alpha"})

	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("JSON differs by registration order:\n%s\n%s", aj, bj)
	}

	text := a.Text()
	zi := strings.Index(text, "zeta")
	ai := strings.Index(text, "alpha")
	mi := strings.Index(text, "mid")
	if ai < 0 || mi < 0 || zi < 0 || !(ai < mi && mi < zi) {
		t.Errorf("text not name-sorted:\n%s", text)
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
}

// TestTraceRingOverflow is the ring-overflow regression test: recording more
// events than capacity keeps the newest events in order, counts the
// overwritten ones, and keeps Seq globally increasing.
func TestTraceRingOverflow(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(EvPop, "u", "", float64(i))
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	for i, ev := range evs {
		wantSeq := int64(6 + i)
		if ev.Seq != wantSeq {
			t.Errorf("event %d Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Cost != float64(6+i) {
			t.Errorf("event %d Cost = %v, want %d", i, ev.Cost, 6+i)
		}
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	tr := NewTrace(8)
	tr.Record(EvQueryExec, "s/b", "", 5.5)
	tr.Record(EvStore, "key", "score=0.9", 0)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Cost != 5.5 || ev.Unit != "s/b" {
		t.Errorf("round-trip lost fields: %+v", ev)
	}
	if !strings.Contains(lines[0], `"kind":"query-exec"`) {
		t.Errorf("kind not encoded as wire name: %s", lines[0])
	}
}

func TestPhases(t *testing.T) {
	var p Phases
	p.Add(PhaseExpand, 2*time.Second)
	p.Add(PhaseExpand, time.Second)
	p.Add(PhaseRank, 500*time.Millisecond)
	if got := p.Get(PhaseExpand); got != 3*time.Second {
		t.Errorf("expand = %v, want 3s", got)
	}
	secs := p.Seconds()
	if secs["expand"] != 3.0 || secs["rank"] != 0.5 {
		t.Errorf("Seconds = %v", secs)
	}
	if _, ok := secs["commit"]; ok {
		t.Error("zero phase should be omitted")
	}
}

// TestNilObserverIsInert verifies every facade method is a no-op on nil —
// the property that lets instrumented hot paths skip conditionals.
func TestNilObserverIsInert(t *testing.T) {
	var o *Observer
	if o.Enabled() || o.Tracing() {
		t.Error("nil observer reports enabled")
	}
	o.Count("x", 1)
	o.SetGauge("x", 1)
	o.Observe("x", []float64{1}, 0.5)
	o.Event(EvPop, "u", "", 0)
	o.Phase(PhaseCommit, time.Second)
	if o.PhaseTime(PhaseCommit) != 0 {
		t.Error("nil observer accumulated time")
	}
	s := o.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
	if o.Registry() != nil || o.Trace() != nil {
		t.Error("nil observer exposes instruments")
	}
}

func TestObserverSnapshotIncludesTraceTotals(t *testing.T) {
	o := New(Options{TraceCapacity: 2})
	o.Event(EvPop, "a", "", 0)
	o.Event(EvPop, "b", "", 0)
	o.Event(EvPop, "c", "", 0)
	s := o.Snapshot()
	if s.Counters["trace.events"] != 3 {
		t.Errorf("trace.events = %d, want 3", s.Counters["trace.events"])
	}
	if s.Counters["trace.dropped"] != 1 {
		t.Errorf("trace.dropped = %d, want 1", s.Counters["trace.dropped"])
	}
}
