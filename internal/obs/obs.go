package obs

import "time"

// Options configures an Observer.
type Options struct {
	// TraceCapacity is the run-trace ring size in events; 0 disables event
	// tracing (metrics and phase timers stay on).
	TraceCapacity int
}

// Observer ties the three observability facilities together behind a
// nil-safe facade: every method on a nil *Observer is a no-op, so
// instrumented code paths need no conditionals and pay (close to) nothing
// when observation is off.
type Observer struct {
	registry *Registry
	trace    *Trace
	phases   *Phases
}

// New creates an Observer. Metrics and phase timers are always enabled;
// event tracing is enabled when opts.TraceCapacity > 0.
func New(opts Options) *Observer {
	o := &Observer{registry: NewRegistry(), phases: &Phases{}}
	if opts.TraceCapacity > 0 {
		o.trace = NewTrace(opts.TraceCapacity)
	}
	return o
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// Tracing reports whether event tracing is enabled.
func (o *Observer) Tracing() bool { return o != nil && o.trace != nil }

// Registry returns the metrics registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.registry
}

// Trace returns the event trace, or nil when tracing is disabled.
func (o *Observer) Trace() *Trace {
	if o == nil {
		return nil
	}
	return o.trace
}

// Count adds n to the named counter.
func (o *Observer) Count(name string, n int64) {
	if o == nil || n == 0 {
		return
	}
	o.registry.Counter(name).Add(n)
}

// SetGauge sets the named gauge to v.
func (o *Observer) SetGauge(name string, v float64) {
	if o == nil {
		return
	}
	o.registry.Gauge(name).Set(v)
}

// Observe records v into the named histogram, creating it with bounds on
// first use.
func (o *Observer) Observe(name string, bounds []float64, v float64) {
	if o == nil {
		return
	}
	o.registry.Histogram(name, bounds).Observe(v)
}

// Event records one trace event; a no-op when tracing is disabled.
func (o *Observer) Event(kind EventKind, unit, detail string, cost float64) {
	if o == nil || o.trace == nil {
		return
	}
	o.trace.Record(kind, unit, detail, cost)
}

// Phase accumulates d into phase ph.
func (o *Observer) Phase(ph Phase, d time.Duration) {
	if o == nil {
		return
	}
	o.phases.Add(ph, d)
}

// PhaseTime returns the accumulated time of phase ph.
func (o *Observer) PhaseTime(ph Phase) time.Duration {
	if o == nil {
		return 0
	}
	return o.phases.Get(ph)
}

// Snapshot copies the observer's current state: the registry's instruments,
// the phase totals, and (when tracing) trace volume counters
// ("trace.events", "trace.dropped").
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{
			Counters:     map[string]int64{},
			Gauges:       map[string]float64{},
			Histograms:   map[string]HistogramSnapshot{},
			PhaseSeconds: map[string]float64{},
		}
	}
	s := o.registry.Snapshot()
	s.PhaseSeconds = o.phases.Seconds()
	if o.trace != nil {
		s.Counters["trace.events"] = o.trace.seqValue()
		s.Counters["trace.dropped"] = o.trace.Dropped()
	}
	return s
}

// seqValue returns the total number of events ever recorded.
func (t *Trace) seqValue() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
