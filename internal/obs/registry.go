// Package obs is the zero-dependency observability layer of the MetaInsight
// serving system: a metrics registry (atomic counters, gauges and bucketed
// histograms with a stable-ordered JSON/text snapshot), a ring-buffered
// structured run trace, and per-phase wall-clock timers, tied together by a
// nil-safe Observer facade.
//
// The layer is designed to be provably inert with respect to the miner's
// bit-identical determinism guarantee (see internal/miner): every recording
// primitive is either an atomic update (counters, gauges, histograms, phase
// timers — safe to call from any goroutine) or happens on the miner
// dispatcher's serial commit path (trace events), so mined results, executed
// query counts and metered cost are identical with observation on or off, at
// any worker count. Wall-clock fields (event timestamps, phase durations) are
// naturally run-dependent; every other recorded quantity is deterministic.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and v > Bounds[i-1]); one implicit
// overflow bucket counts v > Bounds[len-1].
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    Gauge
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final entry
	// for observations above the last bound.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Registry is a names-to-instruments registry. Instruments are created on
// first use and live for the registry's lifetime; all updates are atomic and
// safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending) on first use; bounds of later calls are ignored.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	r.histograms[name] = h
	return h
}

// Snapshot is a point-in-time copy of a registry (plus, when taken through an
// Observer, its phase timers and trace totals). Map-valued fields marshal
// with sorted keys (encoding/json sorts map keys), so the JSON encoding of a
// snapshot is stable across runs and Go versions; Text renders the same
// stable order.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// PhaseSeconds holds the per-phase wall-clock totals (init / expand /
	// evaluate / commit / rank), in seconds. Empty when no phases were timed.
	PhaseSeconds map[string]float64 `json:"phase_seconds"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:     map[string]int64{},
		Gauges:       map[string]float64{},
		Histograms:   map[string]HistogramSnapshot{},
		PhaseSeconds: map[string]float64{},
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Value(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Text renders the snapshot as an aligned, name-sorted plain-text listing —
// the -metrics output of cmd/metainsight.
func (s Snapshot) Text() string {
	var b strings.Builder
	section := func(title string, names []string, write func(name string)) {
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%s:\n", title)
		for _, n := range names {
			write(n)
		}
	}
	section("counters", keys(s.Counters), func(n string) {
		fmt.Fprintf(&b, "  %-42s %d\n", n, s.Counters[n])
	})
	section("gauges", keys(s.Gauges), func(n string) {
		fmt.Fprintf(&b, "  %-42s %.3f\n", n, s.Gauges[n])
	})
	section("histograms", keys(s.Histograms), func(n string) {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "  %-42s count=%d sum=%.3f\n", n, h.Count, h.Sum)
		for i, bound := range h.Bounds {
			if h.Counts[i] == 0 {
				continue
			}
			fmt.Fprintf(&b, "    le=%-8.3g %d\n", bound, h.Counts[i])
		}
		if over := h.Counts[len(h.Counts)-1]; over > 0 {
			fmt.Fprintf(&b, "    le=+Inf    %d\n", over)
		}
	})
	section("phases", keys(s.PhaseSeconds), func(n string) {
		fmt.Fprintf(&b, "  %-42s %.6fs\n", n, s.PhaseSeconds[n])
	})
	return b.String()
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
