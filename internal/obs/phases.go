package obs

import (
	"sync/atomic"
	"time"
)

// Phase names one stage of an analysis run. Expand and Evaluate accumulate
// concurrently across the miner's workers (their totals are CPU time, not
// elapsed time); Init, Commit and Rank are serial.
type Phase uint8

const (
	// PhaseInit is run setup: queue seeding and accounting simulation state.
	PhaseInit Phase = iota
	// PhaseExpand is subspace-expansion compute units (worker-side).
	PhaseExpand
	// PhaseEvaluate is data-pattern and MetaInsight compute units
	// (worker-side).
	PhaseEvaluate
	// PhaseCommit is the dispatcher's canonical-order commit path.
	PhaseCommit
	// PhaseRank is the redundancy-aware top-k selection.
	PhaseRank
	numPhases
)

var phaseNames = [numPhases]string{
	PhaseInit:     "init",
	PhaseExpand:   "expand",
	PhaseEvaluate: "evaluate",
	PhaseCommit:   "commit",
	PhaseRank:     "rank",
}

// String returns the stable name of the phase.
func (p Phase) String() string {
	if p < numPhases {
		return phaseNames[p]
	}
	return "phase(?)"
}

// Phases accumulates wall-clock time per phase. All updates are atomic, so
// workers can add to Expand/Evaluate concurrently without perturbing the
// run.
type Phases struct {
	nanos [numPhases]atomic.Int64
}

// Add accumulates d into phase p.
func (p *Phases) Add(ph Phase, d time.Duration) {
	if ph < numPhases {
		p.nanos[ph].Add(int64(d))
	}
}

// Get returns the accumulated duration of phase ph.
func (p *Phases) Get(ph Phase) time.Duration {
	if ph >= numPhases {
		return 0
	}
	return time.Duration(p.nanos[ph].Load())
}

// Seconds returns all non-zero phase totals in seconds, keyed by phase name.
func (p *Phases) Seconds() map[string]float64 {
	out := make(map[string]float64, numPhases)
	for ph := Phase(0); ph < numPhases; ph++ {
		if n := p.nanos[ph].Load(); n > 0 {
			out[ph.String()] = float64(n) / 1e9
		}
	}
	return out
}
