package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind classifies one trace event. The vocabulary covers the compute
// unit lifecycle of the mining procedure: unit commit (pop), query
// execution, cache hits and misses, pattern evaluation, the two prunings,
// identity deduplication, MetaInsight storage, and run termination.
type EventKind uint8

const (
	// EvPop marks one compute unit committing in canonical order.
	EvPop EventKind = iota
	// EvQueryExec marks one executed (scanning) query, basic or augmented.
	EvQueryExec
	// EvCacheHit marks one logical lookup served by a cache.
	EvCacheHit
	// EvCacheMiss marks one logical lookup that missed a cache.
	EvCacheMiss
	// EvPatternEval marks one data-pattern evaluation (a pattern-cache miss).
	EvPatternEval
	// EvPrune marks a unit cut by Pruning 1 or discarded by Pruning 2.
	EvPrune
	// EvDedup marks a MetaInsight candidate dropped by identity dedup.
	EvDedup
	// EvStore marks a new MetaInsight entering the result set.
	EvStore
	// EvBudgetStop marks the run stopping on budget exhaustion.
	EvBudgetStop
	// EvCancel marks the run stopping on context cancellation.
	EvCancel
	// EvQueryRetry marks a query that needed retries before succeeding or
	// giving up (value = fault cost charged for the retries).
	EvQueryRetry
	// EvQueryFail marks a query that permanently failed and was skipped.
	EvQueryFail
	// EvBreakerOpen marks the circuit breaker tripping open.
	EvBreakerOpen
	// EvEvict marks one entry evicted from a byte-bounded cache (canonical
	// commit-order simulation).
	EvEvict
	// EvUnitPanic marks a compute unit whose evaluation panicked; the worker
	// recovered and the unit was committed as failed (detail = panic value).
	EvUnitPanic
	// EvCheckpointWrite marks one durable snapshot landing on disk.
	EvCheckpointWrite
	// EvCheckpointResume marks a run restored from a checkpoint directory
	// (detail = snapshot index and journal records replayed). It is the only
	// event a resumed run emits that an uninterrupted run does not.
	EvCheckpointResume
)

var eventKindNames = [...]string{
	EvPop:              "pop",
	EvQueryExec:        "query-exec",
	EvCacheHit:         "cache-hit",
	EvCacheMiss:        "cache-miss",
	EvPatternEval:      "pattern-eval",
	EvPrune:            "prune",
	EvDedup:            "dedup",
	EvStore:            "store",
	EvBudgetStop:       "budget-stop",
	EvCancel:           "cancel",
	EvQueryRetry:       "query-retry",
	EvQueryFail:        "query-fail",
	EvBreakerOpen:      "breaker-open",
	EvEvict:            "evict",
	EvUnitPanic:        "unit-panic",
	EvCheckpointWrite:  "checkpoint-write",
	EvCheckpointResume: "checkpoint-resume",
}

// String returns the stable wire name of the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// MarshalJSON encodes the kind as its stable wire name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a wire name back into a kind, so consumers can
// round-trip the -trace JSONL stream.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for i, n := range eventKindNames {
		if n == name {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", name)
}

// Event is one structured trace record. Seq, Kind, Unit, Detail and Cost are
// deterministic for a deterministic run (events are recorded in the miner's
// canonical commit order); WallNanos is the run-relative wall-clock time the
// event was recorded at and naturally varies between runs.
type Event struct {
	Seq       int64     `json:"seq"`
	Kind      EventKind `json:"kind"`
	Unit      string    `json:"unit,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	Cost      float64   `json:"cost,omitempty"`
	WallNanos int64     `json:"wall_ns"`
}

// Trace is a fixed-capacity ring buffer of events. When full, the oldest
// events are overwritten and counted as dropped; Seq keeps globally
// increasing, so a consumer can detect the gap. Trace is safe for concurrent
// use, but the miner only records from its serial commit path, which is what
// makes the recorded order meaningful.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	size    int // number of valid events in buf
	head    int // index of the oldest event
	seq     int64
	dropped int64
	epoch   time.Time
}

// NewTrace creates a trace ring holding up to capacity events.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity), epoch: time.Now()}
}

// Record appends one event, overwriting the oldest if the ring is full.
func (t *Trace) Record(kind EventKind, unit, detail string, cost float64) {
	wall := time.Since(t.epoch).Nanoseconds()
	t.mu.Lock()
	ev := Event{Seq: t.seq, Kind: kind, Unit: unit, Detail: detail, Cost: cost, WallNanos: wall}
	t.seq++
	if t.size == len(t.buf) {
		t.buf[t.head] = ev
		t.head = (t.head + 1) % len(t.buf)
		t.dropped++
	} else {
		t.buf[(t.head+t.size)%len(t.buf)] = ev
		t.size++
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.size)
	for i := 0; i < t.size; i++ {
		out[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	return out
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Dropped returns how many events were overwritten by ring overflow.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL writes the retained events as one JSON object per line — the
// cmd/metainsight -trace output format.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
