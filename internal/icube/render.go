package icube

import (
	"fmt"
	"strings"
)

// Render draws a Result as a textual stacked-bar chart in the style of the
// paper's Figure 11: one row per extended member showing the two compared
// values' shares, with exceptions (per the KL clustering) marked.
func Render(r *Result, width int) string {
	if width < 10 {
		width = 40
	}
	exc := make(map[int]bool, len(r.ExceptionIdx))
	for _, i := range r.ExceptionIdx {
		exc[i] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s vs %s, extended by %s\n", r.Breakdown, r.V1, r.V2, r.ExtDim)
	nameWidth := 0
	for _, m := range r.Members {
		if len(m.Name) > nameWidth {
			nameWidth = len(m.Name)
		}
	}
	for i, m := range r.Members {
		left := int(m.P[0]*float64(width) + 0.5)
		mark := " "
		if exc[i] {
			mark = "*" // exception per KL clustering
		}
		fmt.Fprintf(&b, "%s %-*s |%s%s| %.0f%%\n",
			mark, nameWidth, m.Name,
			strings.Repeat("█", left), strings.Repeat("░", width-left),
			m.P[0]*100)
	}
	if len(r.ExceptionIdx) > 0 {
		b.WriteString("  (* = exception per KL clustering)\n")
	}
	return b.String()
}
