// Package icube reimplements the analysis core of i³ ("eye-cube", Sarawagi
// et al.), the OLAP comparison system of the paper's Appendix 9.2, including
// the refinements the paper made for a fair comparison: full automation over
// data scopes, query reuse through the shared engine cache, and a ranking
// module (the original i³ has none).
//
// An i³ result is a RELAX-style subspace-extended comparison whose breakdown
// holds exactly two values: for every member x of an extension dimension,
// the 2-point raw distribution (m(x, v1), m(x, v2)) is normalized, and the
// distributions are clustered by symmetric KL distance — clusters become the
// commonness, outliers the exceptions. The two failure modes the appendix
// demonstrates fall out of this design: (1) KL ignores analysis semantics,
// so exceptions are miscategorized relative to a dominance-based reading;
// (2) pairs involving an identically-zero column produce degenerate,
// identical distributions that rank at the top while carrying no
// information (trivial results).
package icube

import (
	"fmt"
	"sort"

	"metainsight/internal/engine"
	"metainsight/internal/model"
	"metainsight/internal/stats"
)

// Config configures an i³ run.
type Config struct {
	// Measure is the aggregate under comparison (e.g. SUM(SO2)).
	Measure model.Measure
	// ClusterEpsilon is the symmetric-KL radius (bits) within which two
	// 2-point distributions are deemed similar.
	ClusterEpsilon float64
	// Smoothing is the additive KL smoothing.
	Smoothing float64
	// MaxMembers skips extension dimensions with more members (chart
	// readability, mirroring the breakdown-cardinality cap elsewhere).
	MaxMembers int
	// MinMembers skips comparisons with fewer extended members.
	MinMembers int
}

// DefaultConfig returns the configuration used by the comparison experiment.
func DefaultConfig(measure model.Measure) Config {
	return Config{
		Measure:        measure,
		ClusterEpsilon: 0.05,
		Smoothing:      1e-6,
		MaxMembers:     30,
		MinMembers:     4,
	}
}

// Member is one extended subspace in a result: its name on the extension
// dimension and its normalized 2-point distribution over (V1, V2).
type Member struct {
	Name string
	P    [2]float64 // normalized shares of V1 and V2
	Raw  [2]float64 // raw aggregates
}

// Result is one i³ output: a pairwise-breakdown comparison extended over one
// dimension, categorized by KL clustering.
type Result struct {
	Breakdown string // the dimension supplying the two compared values
	V1, V2    string
	ExtDim    string // the subspace-extending dimension
	Members   []Member

	// CommonIdx / ExceptionIdx index Members per the KL clustering.
	CommonIdx    []int
	ExceptionIdx []int
	// Score ranks results by the generality (coverage) of the KL cluster.
	// Degenerate comparisons score highest — deliberately reproducing the
	// appendix's triviality finding.
	Score float64
}

// Key identifies the result.
func (r *Result) Key() string {
	return fmt.Sprintf("%s|%s|%s|%s", r.Breakdown, r.V1, r.V2, r.ExtDim)
}

// Trivial reports whether the comparison is degenerate in the appendix's
// sense: one of the two compared values has (near-)zero aggregate for every
// member, so all distributions are identical point masses.
func (r *Result) Trivial() bool {
	if len(r.Members) == 0 {
		return false
	}
	allV1Zero, allV2Zero := true, true
	for _, m := range r.Members {
		if m.Raw[0] > 1e-9 {
			allV1Zero = false
		}
		if m.Raw[1] > 1e-9 {
			allV2Zero = false
		}
	}
	return allV1Zero || allV2Zero
}

// ReferenceExceptions returns the exception set a dominance-based
// ("analysis semantics") reading produces: each member is labeled by which
// compared value dominates its distribution (or "balanced"), the majority
// label forms the commonness and every other member is an exception. This
// is the comparator the appendix scores i³'s KL categorization against.
func (r *Result) ReferenceExceptions() []int {
	labels := make([]string, len(r.Members))
	counts := map[string]int{}
	for i, m := range r.Members {
		switch {
		case m.P[0] > 0.6:
			labels[i] = "v1"
		case m.P[0] < 0.4:
			labels[i] = "v2"
		default:
			labels[i] = "balanced"
		}
		counts[labels[i]]++
	}
	majority, best := "", -1
	for l, c := range counts {
		if c > best || (c == best && l < majority) {
			majority, best = l, c
		}
	}
	var exc []int
	for i, l := range labels {
		if l != majority {
			exc = append(exc, i)
		}
	}
	return exc
}

// MiscategorizedAgainstReference reports whether the KL-based exception set
// differs from the dominance-based one.
func (r *Result) MiscategorizedAgainstReference() bool {
	ref := r.ReferenceExceptions()
	if len(ref) != len(r.ExceptionIdx) {
		return true
	}
	set := make(map[int]bool, len(ref))
	for _, i := range ref {
		set[i] = true
	}
	for _, i := range r.ExceptionIdx {
		if !set[i] {
			return true
		}
	}
	return false
}

// Mine runs i³ over every (breakdown, value pair, extension dimension)
// combination at subspace level 0 (the appendix restricts the search space
// the same way), ranking results by score descending.
func Mine(eng *engine.Engine, cfg Config) []*Result {
	tab := eng.Table()
	var results []*Result
	dims := tab.DimensionNames()
	for _, bd := range dims {
		bcol := tab.Dimension(bd)
		if bcol.Cardinality() < 2 || bcol.Cardinality() > cfg.MaxMembers {
			continue
		}
		for _, ext := range dims {
			if ext == bd {
				continue
			}
			ecol := tab.Dimension(ext)
			if ecol.Cardinality() < cfg.MinMembers || ecol.Cardinality() > cfg.MaxMembers {
				continue
			}
			// One unit per breakdown value serves every pair: the 2-point
			// distributions are assembled from per-value series over ext.
			series := make(map[string]map[string]float64, bcol.Cardinality())
			for _, v := range bcol.Domain() {
				ds := model.DataScope{
					Subspace:  model.NewSubspace(model.Filter{Dim: bd, Value: v}),
					Breakdown: ext,
					Measure:   cfg.Measure,
				}
				s, err := eng.BasicQuery(ds)
				if err != nil {
					continue
				}
				byKey := make(map[string]float64, s.Len())
				for i, k := range s.Keys {
					byKey[k] = s.Values[i]
				}
				series[v] = byKey
			}
			domain := bcol.Domain()
			for i := 0; i < len(domain); i++ {
				for j := i + 1; j < len(domain); j++ {
					if r := compare(domain[i], domain[j], bd, ext, ecol.Domain(), series, cfg); r != nil {
						results = append(results, r)
					}
				}
			}
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Key() < results[j].Key()
	})
	return results
}

// compare assembles and categorizes one pairwise comparison.
func compare(v1, v2, bd, ext string, extDomain []string,
	series map[string]map[string]float64, cfg Config) *Result {

	s1, s2 := series[v1], series[v2]
	if s1 == nil || s2 == nil {
		return nil
	}
	r := &Result{Breakdown: bd, V1: v1, V2: v2, ExtDim: ext}
	for _, x := range extDomain {
		a, oka := s1[x]
		b, okb := s2[x]
		if !oka && !okb {
			continue
		}
		if a < 0 || b < 0 {
			// KL is undefined for negative aggregates — the appendix notes
			// this as one of i³'s limitations; such members are dropped.
			continue
		}
		m := Member{Name: x, Raw: [2]float64{a, b}}
		total := a + b
		if total > 0 {
			m.P = [2]float64{a / total, b / total}
		} else {
			m.P = [2]float64{0.5, 0.5}
		}
		r.Members = append(r.Members, m)
	}
	if len(r.Members) < cfg.MinMembers {
		return nil
	}

	// Medoid clustering by symmetric KL: the member minimizing total
	// distance anchors the commonness; everything within ClusterEpsilon of
	// it joins, the rest are exceptions.
	n := len(r.Members)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := stats.SymmetricKL(r.Members[i].P[:], r.Members[j].P[:], cfg.Smoothing)
			dist[i][j], dist[j][i] = d, d
		}
	}
	medoid, bestTotal := 0, 0.0
	for i := 0; i < n; i++ {
		total := 0.0
		for j := 0; j < n; j++ {
			total += dist[i][j]
		}
		if i == 0 || total < bestTotal {
			medoid, bestTotal = i, total
		}
	}
	for i := 0; i < n; i++ {
		if dist[medoid][i] <= cfg.ClusterEpsilon {
			r.CommonIdx = append(r.CommonIdx, i)
		} else {
			r.ExceptionIdx = append(r.ExceptionIdx, i)
		}
	}
	// The refined ranking scores a result by the generality of its cluster
	// (coverage). Note what it does NOT consider — impact or actionability:
	// degenerate comparisons (identical point-mass distributions from a
	// zero column) have coverage 1 and rank at the very top, which is
	// precisely the appendix's triviality finding.
	r.Score = float64(len(r.CommonIdx)) / float64(n)
	return r
}
