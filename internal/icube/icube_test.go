package icube

import (
	"strings"
	"testing"

	"metainsight/internal/cache"
	"metainsight/internal/dataset"
	"metainsight/internal/engine"
	"metainsight/internal/model"
)

// pollutionTable builds a tiny air-pollution-style table: "Zero" emits
// nothing (the trivial-pair trigger), "Big" dominates "Small" everywhere
// except one producer, and "EdgeA"/"EdgeB" sit near the dominance boundary.
func pollutionTable(t testing.TB) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("pollution", []model.Field{
		{Name: "Source", Kind: model.KindCategorical},
		{Name: "Producer", Kind: model.KindCategorical},
		{Name: "SO2", Kind: model.KindMeasure},
	})
	producers := []string{"P1", "P2", "P3", "P4", "P5", "P6"}
	base := map[string]float64{"Zero": 0, "Big": 100, "Small": 10, "EdgeA": 30, "EdgeB": 20}
	for src, v := range base {
		for pi, p := range producers {
			so2 := v
			if src == "Big" && p == "P3" {
				so2 = 2 // the dominance exception
			}
			if src == "EdgeA" {
				// Straddle the 0.6 boundary vs EdgeB across producers.
				so2 = v * (0.9 + 0.08*float64(pi))
			}
			b.AddRow([]string{src, p}, []float64{so2})
		}
	}
	return b.Build()
}

func mine(t testing.TB, tab *dataset.Table) []*Result {
	t.Helper()
	eng, err := engine.New(tab, engine.Config{QueryCache: cache.NewQueryCache(true)})
	if err != nil {
		t.Fatal(err)
	}
	return Mine(eng, DefaultConfig(model.Sum("SO2")))
}

func findResult(results []*Result, v1, v2, ext string) *Result {
	for _, r := range results {
		if r.ExtDim != ext {
			continue
		}
		if (r.V1 == v1 && r.V2 == v2) || (r.V1 == v2 && r.V2 == v1) {
			return r
		}
	}
	return nil
}

func TestTrivialDetection(t *testing.T) {
	results := mine(t, pollutionTable(t))
	r := findResult(results, "Zero", "Big", "Producer")
	if r == nil {
		t.Fatal("Zero-Big comparison missing")
	}
	if !r.Trivial() {
		t.Error("zero-column pair not flagged trivial")
	}
	if len(r.ExceptionIdx) != 0 {
		t.Error("degenerate identical distributions should cluster fully")
	}
	if r.Score < 0.99 {
		t.Errorf("trivial result score = %v; it should rank at the top", r.Score)
	}
}

func TestKLFindsDominanceException(t *testing.T) {
	results := mine(t, pollutionTable(t))
	r := findResult(results, "Big", "Small", "Producer")
	if r == nil {
		t.Fatal("Big-Small comparison missing")
	}
	// P3 flips dominance (2 vs 10): both KL clustering and the dominance
	// reading should agree it is exceptional here — the distribution gap is
	// large.
	if len(r.ExceptionIdx) != 1 || r.Members[r.ExceptionIdx[0]].Name != "P3" {
		t.Errorf("KL exceptions = %v", r.ExceptionIdx)
	}
	if r.MiscategorizedAgainstReference() {
		t.Error("clear-cut exception should not be miscategorized")
	}
}

func TestBoundaryPairMiscategorized(t *testing.T) {
	results := mine(t, pollutionTable(t))
	r := findResult(results, "EdgeA", "EdgeB", "Producer")
	if r == nil {
		t.Fatal("EdgeA-EdgeB comparison missing")
	}
	// The shares drift across the 0.6 boundary while staying KL-close:
	// the dominance reading splits them, KL does not.
	ref := r.ReferenceExceptions()
	if len(ref) == 0 {
		t.Skip("generator did not straddle the boundary; nothing to assert")
	}
	if !r.MiscategorizedAgainstReference() {
		t.Error("boundary-straddling pair should be miscategorized by KL")
	}
}

func TestResultsSortedAndKeyed(t *testing.T) {
	results := mine(t, pollutionTable(t))
	if len(results) == 0 {
		t.Fatal("no results")
	}
	seen := map[string]bool{}
	for i, r := range results {
		if i > 0 && r.Score > results[i-1].Score {
			t.Fatal("not sorted by score")
		}
		if seen[r.Key()] {
			t.Fatalf("duplicate key %s", r.Key())
		}
		seen[r.Key()] = true
	}
}

func TestNegativeAggregatesDropped(t *testing.T) {
	b := dataset.NewBuilder("neg", []model.Field{
		{Name: "A", Kind: model.KindCategorical},
		{Name: "B", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	for _, a := range []string{"x", "y"} {
		for i, bb := range []string{"p", "q", "r", "s", "t"} {
			v := float64(10 + i)
			if a == "x" && bb == "p" {
				v = -5 // negative aggregate: KL undefined
			}
			b.AddRow([]string{a, bb}, []float64{v})
		}
	}
	results := mine(t, b.Build())
	r := findResult(results, "x", "y", "B")
	if r == nil {
		t.Skip("pair skipped entirely (fewer members than MinMembers)")
	}
	for _, m := range r.Members {
		if m.Name == "p" {
			t.Error("member with negative aggregate not dropped")
		}
	}
}

func TestReferenceExceptionsMajorityRule(t *testing.T) {
	r := &Result{Members: []Member{
		{Name: "a", P: [2]float64{0.8, 0.2}},
		{Name: "b", P: [2]float64{0.75, 0.25}},
		{Name: "c", P: [2]float64{0.7, 0.3}},
		{Name: "d", P: [2]float64{0.2, 0.8}},
	}}
	exc := r.ReferenceExceptions()
	if len(exc) != 1 || r.Members[exc[0]].Name != "d" {
		t.Errorf("reference exceptions = %v", exc)
	}
}

func TestRender(t *testing.T) {
	r := &Result{
		Breakdown: "Source", V1: "Coal", V2: "Gas", ExtDim: "Producer",
		Members: []Member{
			{Name: "P1", P: [2]float64{0.7, 0.3}},
			{Name: "LongName", P: [2]float64{0.2, 0.8}},
		},
		ExceptionIdx: []int{1},
	}
	out := Render(r, 20)
	if !strings.Contains(out, "Coal vs Gas") {
		t.Errorf("header missing: %q", out)
	}
	if !strings.Contains(out, "* LongName") {
		t.Errorf("exception not marked: %q", out)
	}
	if !strings.Contains(out, "70%") || !strings.Contains(out, "20%") {
		t.Errorf("shares missing: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 2 members + legend
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}
