package faults

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports Enabled")
	}
	if got := in.MaxAttempts(); got != 1 {
		t.Fatalf("nil injector MaxAttempts = %d, want 1", got)
	}
	res := in.Resolve("u|k|dim", 12)
	want := Resolution{Attempts: 1, OK: true}
	if res != want {
		t.Fatalf("nil injector Resolve = %+v, want %+v", res, want)
	}
	if NewInjector(Policy{}, RetryPolicy{}) != nil {
		t.Fatal("NewInjector with zero policies should return nil")
	}
}

func TestRetryPolicyWithDefaults(t *testing.T) {
	def := RetryPolicy{}.WithDefaults()
	if def.MaxAttempts != 4 || def.BaseBackoff != 1 || def.BackoffFactor != 2 ||
		def.MaxBackoff != 16 || def.JitterFrac != 0.25 {
		t.Fatalf("unexpected defaults: %+v", def)
	}
	// Overriding one knob keeps the rest defaulted.
	p := RetryPolicy{MaxAttempts: 7}.WithDefaults()
	if p.MaxAttempts != 7 || p.BackoffFactor != 2 {
		t.Fatalf("partial override broken: %+v", p)
	}
	// Deadline and breaker stay zero (disabled) by default.
	if def.DeadlineUnits != 0 || def.BreakerThreshold != 0 {
		t.Fatalf("deadline/breaker should default off: %+v", def)
	}
}

func TestResolveDeterministic(t *testing.T) {
	p := Policy{Seed: 42, TransientRate: 0.3, PermanentRate: 0.05, LatencyRate: 0.2, LatencyUnits: 3}
	in := NewInjector(p, RetryPolicy{})
	in2 := NewInjector(p, RetryPolicy{})
	fps := []string{"u|a|dim", "u|b|dim", "a|a|dim|ext", "u|a|other", ""}
	for _, fp := range fps {
		r1 := in.Resolve(fp, 10)
		for i := 0; i < 5; i++ {
			if r := in.Resolve(fp, 10); r != r1 {
				t.Fatalf("Resolve(%q) not stable: %+v vs %+v", fp, r1, r)
			}
		}
		if r := in2.Resolve(fp, 10); r != r1 {
			t.Fatalf("Resolve(%q) differs across injector instances: %+v vs %+v", fp, r1, r)
		}
	}
	// A different seed must produce a different decision stream somewhere.
	in3 := NewInjector(Policy{Seed: 43, TransientRate: 0.3, PermanentRate: 0.05, LatencyRate: 0.2, LatencyUnits: 3}, RetryPolicy{})
	same := true
	for i := 0; i < 200 && same; i++ {
		fp := strings.Repeat("x", i%7) + "u|fp|" + string(rune('a'+i%26))
		if in.Resolve(fp, 10) != in3.Resolve(fp, 10) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 resolved 200 fingerprints identically")
	}
}

func TestResolveRates(t *testing.T) {
	tests := []struct {
		name   string
		policy Policy
		retry  RetryPolicy
		check  func(t *testing.T, ok, failed, retried int, n int)
	}{
		{
			name:   "all-clear",
			policy: Policy{Seed: 1, LatencyRate: 1, LatencyUnits: 2},
			check: func(t *testing.T, ok, failed, retried, n int) {
				if ok != n || failed != 0 || retried != 0 {
					t.Fatalf("latency-only policy: ok=%d failed=%d retried=%d of %d", ok, failed, retried, n)
				}
			},
		},
		{
			name:   "always-transient-exhausts",
			policy: Policy{Seed: 1, TransientRate: 1},
			retry:  RetryPolicy{MaxAttempts: 3},
			check: func(t *testing.T, ok, failed, retried, n int) {
				if ok != 0 || failed != n {
					t.Fatalf("transient=1: ok=%d failed=%d of %d", ok, failed, n)
				}
			},
		},
		{
			name:   "always-permanent",
			policy: Policy{Seed: 1, PermanentRate: 1},
			check: func(t *testing.T, ok, failed, retried, n int) {
				if failed != n || retried != 0 {
					t.Fatalf("permanent=1: failed=%d retried=%d of %d", failed, retried, n)
				}
			},
		},
		{
			name:   "moderate-transient-mostly-recovers",
			policy: Policy{Seed: 7, TransientRate: 0.3},
			check: func(t *testing.T, ok, failed, retried, n int) {
				// P(4 consecutive transient failures) = 0.3^4 ≈ 0.8%.
				if ok < n*9/10 {
					t.Fatalf("transient=0.3 with retries: only %d/%d ok", ok, n)
				}
				if retried == 0 {
					t.Fatal("transient=0.3: no query ever retried")
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in := NewInjector(tc.policy, tc.retry)
			const n = 500
			var ok, failed, retried int
			for i := 0; i < n; i++ {
				fp := "u|fp" + string(rune('a'+i%26)) + strings.Repeat("y", i%11)
				r := in.Resolve(fp, 5)
				if r.OK {
					ok++
				} else {
					failed++
					if r.Reason == ReasonNone {
						t.Fatalf("failed resolution with ReasonNone: %+v", r)
					}
				}
				if r.Attempts > 1 {
					retried++
				}
				if r.Attempts < 1 {
					t.Fatalf("resolution with %d attempts", r.Attempts)
				}
				if r.FaultCost < 0 || r.FirstCost < 0 || r.FirstCost > r.FaultCost+1e-12 {
					t.Fatalf("inconsistent costs: %+v", r)
				}
			}
			tc.check(t, ok, failed, retried, n)
		})
	}
}

func TestResolvePermanentFailsEveryAttemptBudget(t *testing.T) {
	// A permanently failing fingerprint resolves identically regardless of
	// the retry budget: one attempt, ReasonPermanent.
	fp := findFingerprint(t, Policy{Seed: 3, PermanentRate: 0.5}, ReasonPermanent, RetryPolicy{})
	for _, attempts := range []int{1, 2, 8} {
		in := NewInjector(Policy{Seed: 3, PermanentRate: 0.5}, RetryPolicy{MaxAttempts: attempts})
		r := in.Resolve(fp, 5)
		if r.OK || r.Reason != ReasonPermanent || r.Attempts != 1 {
			t.Fatalf("attempts=%d: %+v", attempts, r)
		}
	}
}

func TestResolveDeadline(t *testing.T) {
	// transient=1 so every attempt fails; a tight cost deadline must cut
	// retrying short with ReasonDeadline before the budget is exhausted.
	p := Policy{Seed: 9, TransientRate: 1}
	unlimited := NewInjector(p, RetryPolicy{MaxAttempts: 6})
	tight := NewInjector(p, RetryPolicy{MaxAttempts: 6, DeadlineUnits: 2})
	fp := "u|deadline|dim"
	ru := unlimited.Resolve(fp, 5)
	rt := tight.Resolve(fp, 5)
	if ru.Reason != ReasonExhausted || ru.Attempts != 6 {
		t.Fatalf("unlimited: %+v", ru)
	}
	if rt.Reason != ReasonDeadline {
		t.Fatalf("tight deadline: %+v", rt)
	}
	if rt.Attempts >= ru.Attempts {
		t.Fatalf("deadline did not shorten retries: %d vs %d", rt.Attempts, ru.Attempts)
	}
	if rt.FaultCost >= ru.FaultCost {
		t.Fatalf("deadline did not cap cost: %v vs %v", rt.FaultCost, ru.FaultCost)
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	r := RetryPolicy{BaseBackoff: 1, BackoffFactor: 2, MaxBackoff: 4, JitterFrac: 0.5}.WithDefaults()
	in := NewInjector(Policy{Seed: 11, TransientRate: 0.5}, r)
	for attempt := 0; attempt < 10; attempt++ {
		b := in.backoff("u|fp|dim", attempt)
		// Cap 4, jitter ±25% → bound 5.
		if b <= 0 || b > 4*1.25 {
			t.Fatalf("attempt %d: backoff %v outside (0, 5]", attempt, b)
		}
	}
	// Without jitter, backoff is exactly the capped exponential.
	nj := NewInjector(Policy{Seed: 11, TransientRate: 0.5},
		RetryPolicy{BaseBackoff: 1, BackoffFactor: 2, MaxBackoff: 8, JitterFrac: -1})
	for attempt, want := range []float64{1, 2, 4, 8, 8, 8} {
		if got := nj.backoff("u|fp|dim", attempt); got != want {
			t.Fatalf("attempt %d: backoff %v, want %v", attempt, got, want)
		}
	}
}

func TestBreaker(t *testing.T) {
	if NewBreaker(0) != nil {
		t.Fatal("threshold 0 should disable the breaker")
	}
	var nilB *Breaker
	if nilB.Open() || nilB.Failure() || nilB.Trips() != 0 {
		t.Fatal("nil breaker should be inert")
	}
	nilB.Success()

	b := NewBreaker(3)
	if b.Failure() || b.Failure() {
		t.Fatal("breaker tripped before threshold")
	}
	if !b.Failure() {
		t.Fatal("third consecutive failure should trip")
	}
	if !b.Open() || b.Trips() != 1 {
		t.Fatalf("after trip: open=%v trips=%d", b.Open(), b.Trips())
	}
	// Further failures while open do not re-trip.
	if b.Failure() {
		t.Fatal("failure while open reported a new trip")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	b.Success()
	if b.Open() || b.Consecutive() != 0 {
		t.Fatal("success should close the breaker and reset the streak")
	}
	// It can trip again after closing.
	b.Failure()
	b.Failure()
	if !b.Failure() || b.Trips() != 2 {
		t.Fatalf("second trip cycle: open=%v trips=%d", b.Open(), b.Trips())
	}
}

func TestQueryError(t *testing.T) {
	err := &QueryError{Fingerprint: "u|k|dim", Reason: ReasonExhausted, Attempts: 4}
	if !errors.Is(err, ErrQueryFailed) {
		t.Fatal("QueryError does not match ErrQueryFailed")
	}
	msg := err.Error()
	for _, want := range []string{"u|k|dim", "attempts-exhausted", "4"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error message %q missing %q", msg, want)
		}
	}
}

func TestReasonString(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonNone:      "ok",
		ReasonPermanent: "permanent",
		ReasonExhausted: "attempts-exhausted",
		ReasonDeadline:  "deadline-exceeded",
		Reason(99):      "reason(99)",
	} {
		if got := r.String(); got != want {
			t.Fatalf("Reason(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	tests := []struct {
		spec    string
		policy  Policy
		retry   RetryPolicy
		wantErr bool
	}{
		{spec: ""},
		{spec: "  ,  "},
		{
			spec:   "seed=7,transient=0.05,permanent=0.01,latency-rate=0.2,latency=3",
			policy: Policy{Seed: 7, TransientRate: 0.05, PermanentRate: 0.01, LatencyRate: 0.2, LatencyUnits: 3},
		},
		{
			spec:  "attempts=5,backoff=0.5,backoff-factor=3,max-backoff=20,jitter=0.1,deadline=50,breaker=4",
			retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: 0.5, BackoffFactor: 3, MaxBackoff: 20, JitterFrac: 0.1, DeadlineUnits: 50, BreakerThreshold: 4},
		},
		{spec: "transient = 0.1 , seed = 3", policy: Policy{Seed: 3, TransientRate: 0.1}},
		{spec: "transient=1.5", wantErr: true},
		{spec: "transient=-0.1", wantErr: true},
		{spec: "transient=NaN", wantErr: true},
		{spec: "latency=Inf", wantErr: true},
		{spec: "seed=-1", wantErr: true},
		{spec: "attempts=x", wantErr: true},
		{spec: "breaker=-2", wantErr: true},
		{spec: "bogus=1", wantErr: true},
		{spec: "transient", wantErr: true},
	}
	for _, tc := range tests {
		p, r, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("ParseSpec(%q): expected error, got %+v %+v", tc.spec, p, r)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		if p != tc.policy || r != tc.retry {
			t.Fatalf("ParseSpec(%q) = %+v, %+v; want %+v, %+v", tc.spec, p, r, tc.policy, tc.retry)
		}
	}
}

// findFingerprint scans for a fingerprint whose resolution under p has the
// given reason.
func findFingerprint(t *testing.T, p Policy, reason Reason, r RetryPolicy) string {
	t.Helper()
	in := NewInjector(p, r)
	for i := 0; i < 10000; i++ {
		fp := "u|seek" + strings.Repeat("z", i%13) + string(rune('a'+i%26)) + "|dim"
		if res := in.Resolve(fp, 1); res.Reason == reason {
			return fp
		}
	}
	t.Fatalf("no fingerprint with reason %v found", reason)
	return ""
}

func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("seed=7,transient=0.05")
	f.Add("attempts=5,breaker=2,deadline=10")
	f.Add("transient=1.5")
	f.Add("latency=1e308,latency-rate=1")
	f.Fuzz(func(t *testing.T, spec string) {
		p, r, err := ParseSpec(spec)
		if err != nil {
			if p != (Policy{}) || r != (RetryPolicy{}) {
				t.Fatalf("non-zero policies alongside error: %+v %+v", p, r)
			}
			return
		}
		if p.Validate() != nil {
			t.Fatalf("accepted spec %q yields invalid policy %+v", spec, p)
		}
		// Any accepted spec must build a usable injector whose resolutions
		// are internally consistent and deterministic.
		in := NewInjector(p, r)
		res := in.Resolve("u|fuzz|dim", 5)
		if res.Attempts < 1 {
			t.Fatalf("resolution with %d attempts", res.Attempts)
		}
		if res.OK != (res.Reason == ReasonNone) {
			t.Fatalf("OK/Reason mismatch: %+v", res)
		}
		if math.IsNaN(res.FaultCost) || res.FaultCost < 0 {
			t.Fatalf("bad fault cost: %+v", res)
		}
		if res2 := in.Resolve("u|fuzz|dim", 5); res2 != res {
			t.Fatalf("nondeterministic resolve: %+v vs %+v", res, res2)
		}
	})
}
