// Package faults is the deterministic fault model of the query substrate.
// The paper's implementation mined over Excel's query interface — a slow,
// failure-prone IPC boundary — while the in-process columnar substrate of
// internal/engine can never fail, so none of the miner's error paths would
// otherwise ever be exercised. This package injects that missing adversity
// back in, reproducibly: transient errors, permanent errors and simulated
// latency, decided by a seeded hash of the canonical query fingerprint and
// the attempt index — never wall-clock time or a shared RNG — so a query's
// fate is a pure function of its identity. That purity is what lets the
// miner keep its worker-count-invariance guarantee (PR 1) under failure:
// whichever worker touches a query, whenever it runs, the outcome is the
// same, and the dispatcher can replay the identical decision in canonical
// commit order for accounting.
//
// On top of the injector sit the resilience policies: capped exponential
// backoff with deterministic jitter, per-query cost deadlines, and a
// consecutive-failure circuit breaker. Backoff and latency are charged to
// the engine's cost meter (simulated time, like every other engine cost)
// rather than slept, keeping runs fast and bit-reproducible.
package faults

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Policy configures fault injection. The zero value injects nothing.
type Policy struct {
	// Seed keys every injection decision; two runs with the same seed and
	// workload draw identical faults.
	Seed uint64
	// TransientRate is the probability, per (query, attempt), that the
	// attempt fails with a retryable error.
	TransientRate float64
	// PermanentRate is the probability, per query fingerprint, that the
	// query fails permanently: every attempt errors, retrying never helps.
	PermanentRate float64
	// LatencyRate is the probability, per (query, attempt), that the attempt
	// is charged injected latency.
	LatencyRate float64
	// LatencyUnits is the mean injected latency in engine cost units; an
	// affected attempt is charged LatencyUnits × U where U is a deterministic
	// uniform draw in [0.5, 1.5).
	LatencyUnits float64
}

// Enabled reports whether the policy injects anything.
func (p Policy) Enabled() bool {
	return p.TransientRate > 0 || p.PermanentRate > 0 || (p.LatencyRate > 0 && p.LatencyUnits > 0)
}

// Validate rejects rates outside [0, 1] and negative latency.
func (p Policy) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"transient", p.TransientRate},
		{"permanent", p.PermanentRate},
		{"latency-rate", p.LatencyRate},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("faults: %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	if p.LatencyUnits < 0 || math.IsNaN(p.LatencyUnits) || math.IsInf(p.LatencyUnits, 0) {
		return fmt.Errorf("faults: latency %v is not a non-negative finite number", p.LatencyUnits)
	}
	return nil
}

// RetryPolicy configures the resilience layer around a fallible substrate.
// The zero value is filled field-by-field by WithDefaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per query, including the
	// first (1 = no retries). Default 4.
	MaxAttempts int
	// BaseBackoff is the cost-unit charge of the first backoff. Default 1.
	BaseBackoff float64
	// BackoffFactor multiplies the backoff after each failed attempt.
	// Default 2.
	BackoffFactor float64
	// MaxBackoff caps a single backoff charge. Default 16.
	MaxBackoff float64
	// JitterFrac spreads each backoff by ±JitterFrac/2, drawn
	// deterministically from the query fingerprint and attempt index.
	// Default 0.25.
	JitterFrac float64
	// DeadlineUnits is the per-query cost deadline: once the accumulated
	// injected latency, backoff and prospective scan cost of a query exceed
	// it, retrying stops and the query fails with ReasonDeadline.
	// 0 disables the deadline.
	DeadlineUnits float64
	// BreakerThreshold opens the circuit breaker after this many consecutive
	// permanently-failed queries (in canonical commit order); while open,
	// failed queries fast-fail without retry spending until a success closes
	// it. 0 disables the breaker.
	BreakerThreshold int
}

// WithDefaults returns the policy with unset (zero) fields individually
// replaced by the defaults, so overriding one knob keeps the rest meaningful.
func (r RetryPolicy) WithDefaults() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 4
	}
	if r.BaseBackoff == 0 {
		r.BaseBackoff = 1
	}
	if r.BackoffFactor == 0 {
		r.BackoffFactor = 2
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = 16
	}
	if r.JitterFrac == 0 {
		r.JitterFrac = 0.25
	}
	return r
}

// Reason classifies why a query resolution failed.
type Reason uint8

const (
	// ReasonNone: the query succeeded.
	ReasonNone Reason = iota
	// ReasonPermanent: the injector marked the fingerprint permanently
	// failing; no attempt can succeed.
	ReasonPermanent
	// ReasonExhausted: every allowed attempt failed transiently.
	ReasonExhausted
	// ReasonDeadline: the per-query cost deadline expired before an attempt
	// succeeded.
	ReasonDeadline
)

var reasonNames = [...]string{
	ReasonNone:      "ok",
	ReasonPermanent: "permanent",
	ReasonExhausted: "attempts-exhausted",
	ReasonDeadline:  "deadline-exceeded",
}

// String returns the stable wire name of the reason.
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", r)
}

// QueryError is the error returned by engine query paths for a query whose
// resolution failed. It wraps ErrQueryFailed so callers can errors.Is it.
type QueryError struct {
	// Fingerprint is the canonical query fingerprint the decision was keyed
	// by.
	Fingerprint string
	// Reason is the failure classification.
	Reason Reason
	// Attempts is how many attempts were made before giving up.
	Attempts int
}

// ErrQueryFailed is the sentinel wrapped by every QueryError.
var ErrQueryFailed = errors.New("faults: query failed")

// Error implements error.
func (e *QueryError) Error() string {
	return fmt.Sprintf("faults: query %s failed (%s after %d attempt(s))",
		e.Fingerprint, e.Reason, e.Attempts)
}

// Unwrap lets errors.Is(err, ErrQueryFailed) match.
func (e *QueryError) Unwrap() error { return ErrQueryFailed }

// Resolution is the complete, deterministic fate of one query under the
// injector: how many attempts a sequential execution makes, whether it
// ultimately succeeds, and what the retry machinery costs. It is a pure
// function of (policy, fingerprint), so the engine's physical execution and
// the miner's canonical commit-order replay compute identical resolutions
// independently — the invariant that keeps failure handling worker-count-
// deterministic.
type Resolution struct {
	// Attempts made (≥ 1).
	Attempts int
	// OK reports final success.
	OK bool
	// Reason is ReasonNone when OK, else the failure classification.
	Reason Reason
	// FaultCost is the injected latency plus backoff charged across all
	// attempts, in engine cost units. It excludes the scan's own cost.
	FaultCost float64
	// FirstCost is attempt 0's injected latency alone — the charge of a
	// fast-fail when the circuit breaker is open.
	FirstCost float64
}

// Retries returns the number of retry attempts (attempts beyond the first).
func (r Resolution) Retries() int64 { return int64(r.Attempts - 1) }

// Err returns the QueryError for a failed resolution of fp, nil when OK.
func (r Resolution) Err(fp string) error {
	if r.OK {
		return nil
	}
	return &QueryError{Fingerprint: fp, Reason: r.Reason, Attempts: r.Attempts}
}

// Injector draws deterministic fault decisions and resolves queries under a
// retry policy. A nil *Injector is valid and injects nothing (every query
// resolves OK in one attempt at zero fault cost), so instrumented paths need
// no conditionals.
type Injector struct {
	policy Policy
	retry  RetryPolicy
	active bool
	// seedA/seedB pre-mix the seed so per-draw hashing is cheap.
	seedA, seedB uint64
}

// NewInjector builds an injector from an injection policy and a retry
// policy. It returns nil when the policy injects nothing and the retry
// policy is zero — the no-fault fast path. Retry defaults are applied here,
// once.
func NewInjector(p Policy, r RetryPolicy) *Injector {
	if !p.Enabled() && r == (RetryPolicy{}) {
		return nil
	}
	in := &Injector{policy: p, retry: r.WithDefaults(), active: p.Enabled()}
	in.seedA = splitmix64(p.Seed ^ 0x9e3779b97f4a7c15)
	in.seedB = splitmix64(in.seedA ^ 0xd1b54a32d192ed03)
	return in
}

// Enabled reports whether the injector injects faults (a nil injector, or
// one built for retry policy only, does not).
func (in *Injector) Enabled() bool { return in != nil && in.active }

// Retry returns the effective retry policy (defaults applied); the zero
// value on a nil injector.
func (in *Injector) Retry() RetryPolicy {
	if in == nil {
		return RetryPolicy{}
	}
	return in.retry
}

// Policy returns the injection policy the injector was built from; the zero
// value on a nil injector. The miner's checkpoint fingerprint includes it so
// a resumed run cannot silently continue under a different fault schedule.
func (in *Injector) Policy() Policy {
	if in == nil {
		return Policy{}
	}
	return in.policy
}

// MaxAttempts returns the physical retry budget for real (non-injected)
// substrate errors: 1 on a nil injector.
func (in *Injector) MaxAttempts() int {
	if in == nil {
		return 1
	}
	return in.retry.MaxAttempts
}

// draw kinds, mixed into the hash so the decision streams are independent.
const (
	drawPermanent = 0x70 // 'p'
	drawTransient = 0x74 // 't'
	drawLatencyOn = 0x6c // 'l'
	drawLatencyV  = 0x4c // 'L'
	drawJitter    = 0x6a // 'j'
)

// u01 returns a deterministic uniform draw in [0, 1) keyed by (seed, kind,
// fingerprint, attempt).
func (in *Injector) u01(kind byte, fp string, attempt int) float64 {
	h := in.seedA
	for i := 0; i < len(fp); i++ {
		h = (h ^ uint64(fp[i])) * 0x100000001b3
	}
	h ^= uint64(kind) * 0x9e3779b97f4a7c15
	h ^= uint64(attempt) * 0xd1b54a32d192ed03
	h = splitmix64(h ^ in.seedB)
	return float64(h>>11) / (1 << 53)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap, well-
// mixed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// latency returns the injected latency charge for one attempt.
func (in *Injector) latency(fp string, attempt int) float64 {
	if in.policy.LatencyRate <= 0 || in.policy.LatencyUnits <= 0 {
		return 0
	}
	if in.u01(drawLatencyOn, fp, attempt) >= in.policy.LatencyRate {
		return 0
	}
	return in.policy.LatencyUnits * (0.5 + in.u01(drawLatencyV, fp, attempt))
}

// backoff returns the jittered backoff charged after failed attempt i.
func (in *Injector) backoff(fp string, attempt int) float64 {
	b := in.retry.BaseBackoff * math.Pow(in.retry.BackoffFactor, float64(attempt))
	if b > in.retry.MaxBackoff {
		b = in.retry.MaxBackoff
	}
	if in.retry.JitterFrac > 0 {
		b *= 1 + in.retry.JitterFrac*(in.u01(drawJitter, fp, attempt)-0.5)
	}
	return b
}

// Resolve computes the deterministic fate of the query identified by fp.
// scanCost is the analytic cost of the scan a successful attempt executes;
// it participates in the deadline check but is not included in FaultCost.
// Resolve is pure: it reads no state and the same (injector, fp, scanCost)
// always returns the same Resolution.
func (in *Injector) Resolve(fp string, scanCost float64) Resolution {
	if !in.Enabled() {
		return Resolution{Attempts: 1, OK: true}
	}
	if in.policy.PermanentRate > 0 && in.u01(drawPermanent, fp, 0) < in.policy.PermanentRate {
		lat := in.latency(fp, 0)
		return Resolution{Attempts: 1, Reason: ReasonPermanent, FaultCost: lat, FirstCost: lat}
	}
	res := Resolution{}
	cost := 0.0
	for i := 0; i < in.retry.MaxAttempts; i++ {
		lat := in.latency(fp, i)
		cost += lat
		if i == 0 {
			res.FirstCost = lat
		}
		res.Attempts = i + 1
		if in.u01(drawTransient, fp, i) >= in.policy.TransientRate {
			res.OK = true
			res.FaultCost = cost
			return res
		}
		if i == in.retry.MaxAttempts-1 {
			res.Reason = ReasonExhausted
			break
		}
		cost += in.backoff(fp, i)
		if in.retry.DeadlineUnits > 0 && cost+scanCost > in.retry.DeadlineUnits {
			res.Reason = ReasonDeadline
			break
		}
	}
	res.FaultCost = cost
	return res
}

// Breaker is the consecutive-failure circuit breaker. It is not safe for
// concurrent use by design: the miner drives it exclusively from the
// dispatcher's canonical commit path, which is what makes its state — and
// therefore Stats.BreakerTrips and the retry spending it suppresses —
// bit-identical across worker counts. The breaker never changes whether a
// query succeeds (success is a pure function of the fingerprint); while
// open it only suppresses retry/backoff spending on queries that would fail
// anyway, modeling fail-fast load shedding on a broken backend.
type Breaker struct {
	threshold   int
	consecutive int
	open        bool
	trips       int64
}

// NewBreaker creates a breaker opening after threshold consecutive failures;
// nil (disabled) when threshold <= 0.
func NewBreaker(threshold int) *Breaker {
	if threshold <= 0 {
		return nil
	}
	return &Breaker{threshold: threshold}
}

// Open reports whether the breaker is open (fast-fail mode).
func (b *Breaker) Open() bool { return b != nil && b.open }

// Success records one successfully executed query: the failure streak resets
// and an open breaker closes.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.consecutive = 0
	b.open = false
}

// Failure records one permanently failed query and reports whether this
// failure tripped the breaker open.
func (b *Breaker) Failure() bool {
	if b == nil {
		return false
	}
	b.consecutive++
	if !b.open && b.consecutive >= b.threshold {
		b.open = true
		b.trips++
		return true
	}
	return false
}

// Consecutive returns the current failure streak length.
func (b *Breaker) Consecutive() int {
	if b == nil {
		return 0
	}
	return b.consecutive
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	if b == nil {
		return 0
	}
	return b.trips
}

// BreakerState is the breaker's exportable mutable state, captured by the
// miner's checkpoint snapshots (the threshold is part of the configuration
// fingerprint, not the state).
type BreakerState struct {
	Consecutive int   `json:"consecutive"`
	Open        bool  `json:"open"`
	Trips       int64 `json:"trips"`
}

// State exports the breaker's mutable state.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerState{}
	}
	return BreakerState{Consecutive: b.consecutive, Open: b.open, Trips: b.trips}
}

// Restore overwrites the breaker's mutable state from a checkpoint.
func (b *Breaker) Restore(s BreakerState) {
	if b == nil {
		return
	}
	b.consecutive = s.Consecutive
	b.open = s.Open
	b.trips = s.Trips
}

// ParseSpec parses a comma-separated key=value fault specification, the
// cmd/metainsight -faults flag format. Recognized keys:
//
//	seed=N            injection seed (uint64)
//	transient=F       per-attempt transient failure rate in [0, 1]
//	permanent=F       per-query permanent failure rate in [0, 1]
//	latency-rate=F    per-attempt injected-latency rate in [0, 1]
//	latency=F         mean injected latency in cost units
//	attempts=N        retry budget (total attempts per query)
//	backoff=F         base backoff charge in cost units
//	backoff-factor=F  backoff growth factor
//	max-backoff=F     backoff cap in cost units
//	jitter=F          backoff jitter fraction
//	deadline=F        per-query cost deadline in units (0 = none)
//	breaker=N         consecutive failures that open the circuit breaker
//
// An empty spec returns zero policies. Unknown keys, malformed numbers and
// out-of-range rates are errors.
func ParseSpec(spec string) (Policy, RetryPolicy, error) {
	var p Policy
	var r RetryPolicy
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, r, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Policy{}, RetryPolicy{}, fmt.Errorf("faults: %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		badNum := func(err error) error {
			return fmt.Errorf("faults: bad value %q for %q: %v", val, key, err)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Policy{}, RetryPolicy{}, badNum(err)
			}
			p.Seed = n
		case "transient", "permanent", "latency-rate", "latency", "backoff",
			"backoff-factor", "max-backoff", "jitter", "deadline":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Policy{}, RetryPolicy{}, badNum(err)
			}
			if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
				return Policy{}, RetryPolicy{}, fmt.Errorf("faults: value %v for %q is not a non-negative finite number", f, key)
			}
			switch key {
			case "transient":
				p.TransientRate = f
			case "permanent":
				p.PermanentRate = f
			case "latency-rate":
				p.LatencyRate = f
			case "latency":
				p.LatencyUnits = f
			case "backoff":
				r.BaseBackoff = f
			case "backoff-factor":
				r.BackoffFactor = f
			case "max-backoff":
				r.MaxBackoff = f
			case "jitter":
				r.JitterFrac = f
			case "deadline":
				r.DeadlineUnits = f
			}
		case "attempts", "breaker":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Policy{}, RetryPolicy{}, badNum(err)
			}
			if n < 0 {
				return Policy{}, RetryPolicy{}, fmt.Errorf("faults: negative value %d for %q", n, key)
			}
			switch key {
			case "attempts":
				r.MaxAttempts = n
			case "breaker":
				r.BreakerThreshold = n
			}
		default:
			return Policy{}, RetryPolicy{}, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Policy{}, RetryPolicy{}, err
	}
	return p, r, nil
}
