// Package workload generates the deterministic synthetic datasets the
// reproduction experiments run on, standing in for the paper's 35
// proprietary real-world datasets (Section 5.1.1) and the four user-study
// datasets of Table 5 (see DESIGN.md, substitution 2). Every generator
// plants known structure — shared seasonal valleys with a few exceptional
// siblings, trends, outliers, dominant categories — so the miner has real
// commonness/exception structure to find, at the paper's dataset scales
// (one thousand to over one million cells).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

// randSource aliases the deterministic PRNG threaded through the generator
// callbacks.
type randSource = rand.Rand

// monthNames is the canonical 12-month temporal domain.
var monthNames = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// namePool returns n deterministic member names with the given prefix, using
// a curated pool first for readability.
func namePool(prefix string, curated []string, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i < len(curated) {
			out = append(out, curated[i])
		} else {
			out = append(out, fmt.Sprintf("%s%02d", prefix, i+1))
		}
	}
	return out
}

var (
	cityNames = []string{
		"Los Angeles", "San Francisco", "San Diego", "San Jose", "Sacramento",
		"Fresno", "Oakland", "Long Beach", "Bakersfield", "Anaheim",
		"Riverside", "Stockton", "Irvine", "Chula Vista", "Fremont",
		"Santa Ana", "Modesto", "Glendale", "Yuba", "Amador",
	}
	regionNames  = []string{"North", "South", "East", "West", "Central", "Coastal"}
	channelNames = []string{"Online", "Retail", "Partner", "Direct", "Wholesale", "Outlet"}
	brandNames   = []string{"Acme", "Borealis", "Cygnus", "Dyna", "Everest", "Fulcrum", "Gale", "Helix", "Ion", "Juno", "Kite", "Lumen"}
	segmentNames = []string{"Platinum", "Gold", "Silver", "Standard", "Student", "Corporate"}
)

// shape is a per-member multiplicative monthly curve, the planting mechanism
// for temporal structure.
type shape func(month int, r *rand.Rand) float64

// valleyAt returns a U-shaped curve with its minimum at the given month
// (matching the paper's "bad sales in April" running example).
func valleyAt(valley int, depth float64) shape {
	return func(month int, r *rand.Rand) float64 {
		d := float64(month - valley)
		// Quadratic bowl clamped to [depth, 1].
		v := depth + (1-depth)*d*d/25
		if v > 1 {
			v = 1
		}
		return v * (0.97 + 0.06*r.Float64())
	}
}

// peakAt returns a Λ-shaped curve with its maximum at the given month.
func peakAt(peak int, height float64) shape {
	return func(month int, r *rand.Rand) float64 {
		d := float64(month - peak)
		v := height - (height-1)*d*d/25
		if v < 1 {
			v = 1
		}
		return v * (0.97 + 0.06*r.Float64())
	}
}

// flat returns an even curve (Evenness under the default CV threshold).
func flat() shape {
	return func(month int, r *rand.Rand) float64 {
		return 1 + 0.02*r.Float64()
	}
}

// noisy returns an erratic curve that defeats every pattern criterion.
func noisy() shape {
	return func(month int, r *rand.Rand) float64 {
		return 0.2 + 1.6*r.Float64()
	}
}

// trending returns a multiplicative linear trend across months.
func trending(slope float64) shape {
	return func(month int, r *rand.Rand) float64 {
		return (1 + slope*float64(month)) * (0.98 + 0.04*r.Float64())
	}
}

// spikeAt returns a mostly flat curve with one outlier month.
func spikeAt(month int, factor float64) shape {
	return func(m int, r *rand.Rand) float64 {
		v := 1 + 0.02*r.Float64()
		if m == month {
			v *= factor
		}
		return v
	}
}

// assignShapes gives members of a protagonist dimension their monthly
// curves: most share a commonness curve, with up to three exceptions —
// highlight-change (a shifted curve), type-change (flat ⇒ Evenness holds
// instead) and no-pattern — mirroring Figure 2(b). The exception count
// scales with cardinality so the planted commonness ratio stays well above
// the τ = 0.5 default (ratio ≥ 3/4 for n ≥ 4).
func assignShapes(n int, common shape, altered shape) []shape {
	shapes := make([]shape, n)
	for i := range shapes {
		shapes[i] = common
	}
	exceptions := n / 4
	if exceptions > 3 {
		exceptions = 3
	}
	if exceptions < 1 && n >= 4 {
		exceptions = 1
	}
	kinds := []shape{altered, flat(), noisy()}
	for e := 0; e < exceptions; e++ {
		shapes[n-1-e] = kinds[e]
	}
	return shapes
}

// round2 truncates a float to 2 decimals so generated CSVs stay tidy.
func round2(v float64) float64 { return math.Round(v*100) / 100 }

// zipfWeights returns n member weights following a Zipf-like decay
// normalized to mean 1, the record-count skew of real multi-dimensional
// data: a few heavy members and a long light tail. The skew is what makes
// the impact-ordered search selective — with uniform counts nothing would
// ever be pruned.
func zipfWeights(n int) []float64 {
	const exponent = 0.9
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), exponent)
		total += w[i]
	}
	for i := range w {
		w[i] *= float64(n) / total
	}
	return w
}

// buildTable iterates the full cross product of the dimension domains and
// emits rows per combination, with measures produced by gen. Categorical
// members carry Zipf-like record-count skew (temporal members stay uniform
// so planted time-series shapes are undistorted); the expected total row
// count is the cross-product size times rowsPerCell.
func buildTable(name string, fields []model.Field, domains [][]string,
	rowsPerCell int, seed int64,
	gen func(idx []int, r *rand.Rand) []float64) *dataset.Table {

	weights := make([][]float64, len(domains))
	for d := range domains {
		if fields[d].Kind == model.KindTemporal {
			continue // uniform across periods
		}
		weights[d] = zipfWeights(len(domains[d]))
	}

	b := dataset.NewBuilder(name, fields)
	r := rand.New(rand.NewSource(seed))
	idx := make([]int, len(domains))
	dims := make([]string, len(domains))
	for {
		mult := 1.0
		for d, w := range weights {
			if w != nil {
				mult *= w[idx[d]]
			}
		}
		// Deterministic stochastic rounding keeps the expected row count at
		// rowsPerCell·mult while allowing sub-1 cells to appear sparsely.
		exact := float64(rowsPerCell) * mult
		rows := int(exact)
		if r.Float64() < exact-float64(rows) {
			rows++
		}
		for rep := 0; rep < rows; rep++ {
			for d, i := range idx {
				dims[d] = domains[d][i]
			}
			b.AddRow(dims, gen(idx, r))
		}
		// Odometer increment over the cross product.
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(domains[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return b.Build()
}
