package workload

import (
	"fmt"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

// GenSpec parameterizes the generic structured generator behind the
// 35-dataset suite.
type GenSpec struct {
	Name string
	Seed int64
	// Cards are the cardinalities of the categorical dimensions (the first
	// is the protagonist that carries the planted commonness/exceptions).
	Cards []int
	// Periods is the cardinality of the temporal dimension (clamped to 12
	// named months; larger values use "T01".. labels).
	Periods int
	// Measures is the number of measure columns (≥ 1).
	Measures int
	// RowsPerCell replicates each cross-product combination.
	RowsPerCell int
}

// Generate builds a structured synthetic dataset: the protagonist dimension
// shares a valley commonness with highlight-change / type-change /
// no-pattern exceptions, the second dimension has a dominant member, and one
// member of the third (when present) trends upward.
func Generate(spec GenSpec) *dataset.Table {
	if len(spec.Cards) == 0 || spec.Measures < 1 || spec.Periods < 4 || spec.RowsPerCell < 1 {
		panic("workload: invalid GenSpec")
	}
	var fields []model.Field
	var domains [][]string
	for d, card := range spec.Cards {
		name := fmt.Sprintf("Dim%c", 'A'+d)
		fields = append(fields, model.Field{Name: name, Kind: model.KindCategorical})
		members := make([]string, card)
		for i := range members {
			members[i] = fmt.Sprintf("%s_%02d", name, i+1)
		}
		domains = append(domains, members)
	}
	fields = append(fields, model.Field{Name: "Period", Kind: model.KindTemporal})
	var periods []string
	if spec.Periods <= 12 {
		periods = monthNames[:spec.Periods]
	} else {
		periods = make([]string, spec.Periods)
		for i := range periods {
			periods[i] = fmt.Sprintf("T%02d", i+1)
		}
	}
	domains = append(domains, periods)
	for m := 0; m < spec.Measures; m++ {
		fields = append(fields, model.Field{Name: fmt.Sprintf("M%d", m+1), Kind: model.KindMeasure})
	}

	valley := spec.Periods / 3
	alt := 2 * spec.Periods / 3
	protagonist := assignShapes(spec.Cards[0], valleyAt(valley, 0.15), valleyAt(alt, 0.15))

	return buildTable(spec.Name, fields, domains, spec.RowsPerCell, spec.Seed,
		func(idx []int, r *randSource) []float64 {
			nd := len(spec.Cards)
			period := idx[nd]
			base := 50.0
			for d := 1; d < nd; d++ {
				base *= 1 + 0.1*float64(idx[d]%7)
			}
			if nd >= 2 && idx[1] == 0 {
				base *= 6 // dominant member on DimB
			}
			if nd >= 3 && idx[2] == 1 {
				base *= 1 + 0.15*float64(period) // trending member on DimC
			}
			v := base * protagonist[idx[0]](period, r)
			out := make([]float64, spec.Measures)
			out[0] = round2(v)
			for m := 1; m < spec.Measures; m++ {
				out[m] = round2(v * (0.2 + 0.15*float64(m)) * (0.95 + 0.1*r.Float64()))
			}
			return out
		})
}

// Suite returns the 35-dataset evaluation suite of Section 5.1.1: the four
// named large datasets plus 31 generated ones spanning the paper's size
// buckets (under 1k cells up to over 1M cells, Table 3).
func Suite() []*dataset.Table {
	out := make([]*dataset.Table, 0, 35)
	out = append(out, FourLargeDatasets()...)
	specs := suiteSpecs()
	for _, s := range specs {
		out = append(out, Generate(s))
	}
	return out
}

// suiteSpecs defines the 31 generated suite members. Sizes were chosen so
// the suite's bucket populations resemble the paper's Table 3 spread.
func suiteSpecs() []GenSpec {
	var specs []GenSpec
	add := func(cards []int, periods, measures, rowsPerCell int) {
		n := len(specs)
		specs = append(specs, GenSpec{
			Name:        fmt.Sprintf("Suite-%02d", n+1),
			Seed:        int64(1000 + n*7),
			Cards:       cards,
			Periods:     periods,
			Measures:    measures,
			RowsPerCell: rowsPerCell,
		})
	}
	// Bucket 0-1k cells (tiny): 3 datasets.
	add([]int{5}, 8, 1, 1)
	add([]int{6, 3}, 6, 1, 1)
	add([]int{4, 4}, 8, 2, 1)
	// Bucket 1k-10k: 6 datasets.
	add([]int{8, 4}, 12, 2, 1)
	add([]int{10, 5}, 12, 2, 1)
	add([]int{6, 6, 3}, 12, 1, 1)
	add([]int{12, 4}, 12, 3, 1)
	add([]int{8, 8}, 12, 2, 2)
	add([]int{10, 6}, 8, 2, 2)
	// Bucket 10k-100k: 9 datasets.
	add([]int{12, 8, 4}, 12, 2, 1)
	add([]int{15, 10}, 12, 3, 3)
	add([]int{10, 8, 5}, 12, 2, 1)
	add([]int{20, 6, 4}, 12, 2, 1)
	add([]int{8, 8, 6}, 12, 3, 2)
	add([]int{14, 7, 5}, 12, 2, 2)
	add([]int{16, 12}, 12, 4, 3)
	add([]int{10, 10, 4}, 12, 2, 2)
	add([]int{12, 6, 6}, 12, 3, 1)
	// Bucket 100k-1M: 10 datasets.
	add([]int{20, 10, 6}, 12, 3, 2)
	add([]int{16, 12, 8}, 12, 2, 2)
	add([]int{24, 10, 5}, 12, 3, 3)
	add([]int{20, 15, 6}, 12, 2, 2)
	add([]int{12, 12, 10}, 12, 3, 2)
	add([]int{30, 8, 6}, 12, 2, 4)
	add([]int{18, 14, 7}, 12, 3, 2)
	add([]int{25, 12, 6}, 12, 2, 3)
	add([]int{15, 10, 8, 4}, 12, 2, 1)
	add([]int{22, 16, 5}, 12, 4, 2)
	// Bucket 1M+: 3 generated (Hotel Booking is the fourth).
	add([]int{30, 15, 8}, 12, 4, 4)
	add([]int{25, 20, 10}, 12, 3, 3)
	add([]int{40, 12, 8}, 12, 4, 4)
	return specs
}

// BucketLabel returns the Table 3 size-bucket label for a cell count.
func BucketLabel(cells int) string {
	switch {
	case cells < 1_000:
		return "0-1k"
	case cells < 10_000:
		return "1k-10k"
	case cells < 100_000:
		return "10k-100k"
	case cells < 1_000_000:
		return "100k-1M"
	default:
		return "1M+"
	}
}

// BucketOrder lists the Table 3 buckets smallest-first.
var BucketOrder = []string{"0-1k", "1k-10k", "10k-100k", "100k-1M", "1M+"}
