package workload

import (
	"fmt"
	"math"
	"math/rand"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

// likert is the 5-point answer scale of the remote-working survey.
var likert = []string{"Strongly disagree", "Disagree", "Neutral", "Agree", "Strongly agree"}

// productivityScale answers the survey's productivity question.
var productivityScale = []string{"Much less productive", "Less productive", "About the same", "More productive", "Much more productive"}

// SurveyQuestions are the column names of the remote-working survey; the
// first few are the questions the paper's expert-user findings revolve
// around (Section 5.2.2, findings 3 and 4).
var SurveyQuestions = []string{
	"How has your productivity changed vs working in office",
	"I have insufficient workspace setup",
	"I feel good spending less time on commute",
	"I feel good wearing more comfortable clothing",
	"I have clear work-life boundary",
	"It is difficult to find dining options",
	"I have flexible work hours",
	"I miss social interaction with colleagues",
	"My home internet connection is reliable",
	"I attend more meetings than before",
	"I can focus better at home",
	"My manager trusts me to work remotely",
	"I exercise more since working from home",
	"I feel isolated from my team",
	"Collaboration tools meet my needs",
	"I work longer hours than before",
	"My family situation supports remote work",
	"I would prefer to continue working remotely",
	"Onboarding new members is harder remotely",
	"I spend less money since working from home",
	"I have a dedicated room for work",
	"Video fatigue affects my wellbeing",
	"My team communicates effectively",
	"I learn new skills at the same pace",
}

// clamp5 clips a Likert index into [0, 4].
func clamp5(i int) int {
	if i < 0 {
		return 0
	}
	if i > 4 {
		return 4
	}
	return i
}

// RemoteWorkSurvey generates the expert-user-study dataset of Table 5:
// 474 records × 24 single-choice questions, no measure columns (COUNT(*) is
// the only measure, as in the paper). Planted structure follows the paper's
// findings: respondents are generally positive about productivity except the
// "strongly agree on insufficient workspace" group; comfortable clothing is
// near-universally appreciated, and extremely so for respondents with a
// clear work-life boundary or no dining difficulties.
func RemoteWorkSurvey() *dataset.Table {
	const rows = 474
	fields := make([]model.Field, len(SurveyQuestions))
	for i, q := range SurveyQuestions {
		fields[i] = model.Field{Name: q, Kind: model.KindCategorical}
	}
	b := dataset.NewBuilder("Survey on Remote Working", fields)
	r := rand.New(rand.NewSource(474))

	answers := make([]string, len(SurveyQuestions))
	for i := 0; i < rows; i++ {
		// Latent remote-work sentiment in [-1, 1].
		sentiment := r.NormFloat64() * 0.4

		// Q2: insufficient workspace — mostly disagree; ~8% strongly agree.
		workspace := clamp5(1 + int(r.NormFloat64()*1.1-sentiment))
		if r.Float64() < 0.08 {
			workspace = 4
		}
		// Q1: productivity — positive overall, but the strongly-agree
		// workspace group skews negative (the paper's hypothesis-verifying
		// MetaInsight, finding 3).
		prod := clamp5(2 + int(0.5+sentiment+r.NormFloat64()*0.9))
		if workspace == 4 {
			prod = clamp5(1 + int(r.NormFloat64()*0.7))
		}
		// Q3: commute — near-universal agreement (QuickInsight's "expected
		// knowledge" example).
		commute := clamp5(3 + int(r.Float64()*1.6))
		// Q5: work-life boundary; Q6: dining difficulty.
		boundary := clamp5(2 + int(sentiment*2+r.NormFloat64()*1.1))
		dining := clamp5(2 + int(r.NormFloat64()*1.2))
		// Q4: comfortable clothing — agree/strongly-agree about
		// half-and-half; respondents with strongly-agree boundary or
		// strongly-disagree dining are almost all strongly agree
		// (finding 4).
		clothing := 3 + r.Intn(2)
		if boundary == 4 || dining == 0 {
			if r.Float64() < 0.92 {
				clothing = 4
			}
		}

		answers[0] = productivityScale[prod]
		answers[1] = likert[workspace]
		answers[2] = likert[commute]
		answers[3] = likert[clothing]
		answers[4] = likert[boundary]
		answers[5] = likert[dining]
		for q := 6; q < len(SurveyQuestions); q++ {
			// Remaining questions: sentiment-correlated Likert noise.
			answers[q] = likert[clamp5(2+int(sentiment*1.5+r.NormFloat64()*1.2))]
		}
		b.AddRow(answers, nil)
	}
	return b.Build()
}

// CarSales generates the non-expert-study "Car Sales" dataset of Table 5:
// 275 rows × 5 columns, with a December sales peak shared by most brands.
func CarSales() *dataset.Table {
	brands := namePool("Brand", brandNames, 8)
	styles := []string{"Sedan", "SUV", "Hatchback", "Pickup"}
	fields := []model.Field{
		{Name: "Brand", Kind: model.KindCategorical},
		{Name: "BodyStyle", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Sales", Kind: model.KindMeasure},
		{Name: "AvgPrice", Kind: model.KindMeasure},
	}
	brandShape := assignShapes(len(brands), peakAt(11, 2.1), peakAt(5, 2.1))
	b := dataset.NewBuilder("Car Sales", fields)
	r := rand.New(rand.NewSource(275))
	for i := 0; i < 275; i++ {
		brand := r.Intn(len(brands))
		style := r.Intn(len(styles))
		month := r.Intn(12)
		sales := (30 + 8*float64(style)) * brandShape[brand](month, r)
		price := 18000 + 4000*float64(style) + 500*float64(brand)
		b.AddRow([]string{brands[brand], styles[style], monthNames[month]},
			[]float64{round2(sales), round2(price)})
	}
	return b.Build()
}

// EnergySources is the Air Pollution Emissions domain of the i³ comparison
// (Appendix 9.2): Geothermal has identically zero SO2 emissions, which makes
// any pairwise comparison involving it degenerate — the source of i³'s
// trivial results.
var EnergySources = []string{
	"Coal", "Geothermal", "Natural Gas", "Other",
	"Other Biomass", "Other Gases", "Petroleum", "Wood and Wood Derived Fuels",
}

// ProducerTypes is the producer-type domain of the Appendix 9.2 figures.
var ProducerTypes = []string{
	"Utility Sector Non-Cogen", "Utility Sector Cogen",
	"Industrial Non-Cogen", "Industrial Cogen",
	"Electric Utility", "Commercial Non-Cogen", "Commercial Cogen",
}

// AirPollution generates the "Air Pollution Emissions" dataset of Table 5
// (4862 rows × 8 columns), used both in the non-expert user study and in the
// i³ comparison. Planted per the appendix: "Other" dominates SO2 across
// producer types except Industrial Non-Cogen (where Coal dominates), and
// Geothermal emits no SO2 at all.
func AirPollution() *dataset.Table {
	states := namePool("State", []string{
		"California", "Texas", "Florida", "New York", "Ohio", "Illinois",
		"Pennsylvania", "Georgia", "Michigan", "Arizona", "Washington",
		"Colorado", "Oregon", "Nevada", "Utah",
	}, 15)
	years := []string{"1994", "1995", "1996", "1997", "1998"}
	fields := []model.Field{
		{Name: "State", Kind: model.KindCategorical},
		{Name: "Energy Source", Kind: model.KindCategorical},
		{Name: "Producer Type", Kind: model.KindCategorical},
		{Name: "Year", Kind: model.KindTemporal},
		{Name: "SO2", Kind: model.KindMeasure},
		{Name: "NOx", Kind: model.KindMeasure},
		{Name: "CO2", Kind: model.KindMeasure},
		{Name: "PM25", Kind: model.KindMeasure},
	}
	b := dataset.NewBuilder("Air Pollution Emissions", fields)
	r := rand.New(rand.NewSource(4862))
	for i := 0; i < 4862; i++ {
		state := r.Intn(len(states))
		src := r.Intn(len(EnergySources))
		prod := r.Intn(len(ProducerTypes))
		year := r.Intn(len(years))

		so2 := so2Base(src, prod) * (0.8 + 0.4*r.Float64())
		nox := noxBase(src) * (0.8 + 0.4*r.Float64())
		co2 := (100 + 40*float64(src)) * (0.8 + 0.4*r.Float64())
		pm := (5 + 2*float64(prod)) * (0.8 + 0.4*r.Float64())
		b.AddRow([]string{states[state], EnergySources[src], ProducerTypes[prod], years[year]},
			[]float64{round2(so2), round2(nox), round2(co2), round2(pm)})
	}
	return b.Build()
}

// so2Base plants the appendix's SO2 structure.
func so2Base(src, prod int) float64 {
	source := EnergySources[src]
	producer := ProducerTypes[prod]
	switch source {
	case "Geothermal":
		return 0 // no SO2 emission at all — i³'s trivial-result trigger
	case "Other":
		if producer == "Industrial Non-Cogen" {
			return 8 // the exception: Other does NOT dominate here
		}
		return 120 // dominates everywhere else
	case "Coal":
		if producer == "Industrial Non-Cogen" {
			return 140 // Coal dominates the exceptional producer type
		}
		return 35
	default:
		// Consecutive mid-range sources sit at a ~1.5 ratio, i.e. pairwise
		// shares near the 0.6 dominance boundary: with noise, members
		// straddle the boundary while staying KL-close — the regime where
		// i³'s KL clustering and a dominance reading disagree (the
		// appendix's miscategorization finding).
		return 18 * math.Pow(1.5, float64(src-4))
	}
}

func noxBase(src int) float64 {
	if EnergySources[src] == "Natural Gas" {
		return 90
	}
	return 20 + 5*float64(src)
}

// HikingTrail generates the "Hiking Trail" dataset of Table 5 (141 rows × 7
// columns): most regions' trail ratings peak in Summer.
func HikingTrail() *dataset.Table {
	regions := namePool("Region", []string{"Sierra", "Coastal", "Desert", "Valley", "Alpine", "Foothill"}, 6)
	difficulties := []string{"Easy", "Moderate", "Hard", "Expert"}
	seasons := []string{"Q1", "Q2", "Q3", "Q4"} // Winter..Fall as quarters
	fields := []model.Field{
		{Name: "Region", Kind: model.KindCategorical},
		{Name: "Difficulty", Kind: model.KindCategorical},
		{Name: "Season", Kind: model.KindTemporal},
		{Name: "DogFriendly", Kind: model.KindCategorical},
		{Name: "Visitors", Kind: model.KindMeasure},
		{Name: "LengthKm", Kind: model.KindMeasure},
		{Name: "Rating", Kind: model.KindMeasure},
	}
	b := dataset.NewBuilder("Hiking Trail", fields)
	r := rand.New(rand.NewSource(141))
	for i := 0; i < 141; i++ {
		region := r.Intn(len(regions))
		diff := r.Intn(len(difficulties))
		season := r.Intn(len(seasons))
		dog := []string{"Yes", "No"}[r.Intn(2)]
		visitors := (50 + 20*float64(region%3)) * (0.7 + 0.3*float64(season%3))
		if season == 2 && region != 2 { // summer peak, except the Desert
			visitors *= 2.2
		}
		length := 3 + 15*r.Float64()
		rating := 3 + 2*r.Float64()
		b.AddRow([]string{regions[region], difficulties[diff], seasons[season], dog},
			[]float64{round2(visitors), round2(length), round2(rating)})
	}
	return b.Build()
}

// UserStudyDatasets returns the Table 5 datasets in row order.
func UserStudyDatasets() []*dataset.Table {
	return []*dataset.Table{RemoteWorkSurvey(), CarSales(), AirPollution(), HikingTrail()}
}

// TableDescription reproduces a row of Table 5 for a dataset.
func TableDescription(t *dataset.Table) string {
	return fmt.Sprintf("%-28s %6d rows %3d cols", t.Name(), t.Rows(), t.Cols())
}
