package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

// WriteCSV serializes a table as CSV with a header row, in schema column
// order. Together with dataset.LoadCSV it round-trips every generated
// workload, so the CLI and external tools can consume the synthetic
// datasets.
func WriteCSV(t *dataset.Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	fields := t.Fields()
	header := make([]string, len(fields))
	for i, f := range fields {
		header[i] = f.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("workload: writing CSV header: %w", err)
	}
	dims := t.Dimensions()
	meas := t.MeasureColumns()
	record := make([]string, len(fields))
	for r := 0; r < t.Rows(); r++ {
		di, mi := 0, 0
		for c, f := range fields {
			if f.Kind == model.KindMeasure {
				record[c] = strconv.FormatFloat(meas[mi].At(r), 'f', -1, 64)
				mi++
			} else {
				col := dims[di]
				record[c] = col.Value(int(col.CodeAt(r)))
				di++
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("workload: writing CSV row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
