package workload

import (
	"bytes"
	"math"
	"testing"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

func TestNamedDatasetShapes(t *testing.T) {
	cases := []struct {
		tab      *dataset.Table
		bucket   string
		temporal int
	}{
		{SalesForecast(), "10k-100k", 1},
		{TabletSales(), "100k-1M", 1},
		{CreditCard(), "1k-10k", 1},
		{HotelBooking(), "1M+", 2},
	}
	for _, c := range cases {
		got := BucketLabel(c.tab.Cells())
		if got != c.bucket {
			t.Errorf("%s: %d cells in bucket %s, want %s", c.tab.Name(), c.tab.Cells(), got, c.bucket)
		}
		if n := len(c.tab.TemporalDimensions()); n != c.temporal {
			t.Errorf("%s: %d temporal dims, want %d", c.tab.Name(), n, c.temporal)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := SalesForecast(), SalesForecast()
	if a.Rows() != b.Rows() {
		t.Fatal("row counts differ across runs")
	}
	col := a.MeasureColumn("Sales")
	col2 := b.MeasureColumn("Sales")
	for i := 0; i < a.Rows(); i += 97 {
		if col.At(i) != col2.At(i) {
			t.Fatalf("row %d differs: %v vs %v", i, col.At(i), col2.At(i))
		}
	}
}

func TestSuiteSizeAndBucketSpread(t *testing.T) {
	suite := Suite()
	if len(suite) != 35 {
		t.Fatalf("suite has %d datasets, want 35 (Section 5.1.1)", len(suite))
	}
	buckets := map[string]int{}
	names := map[string]bool{}
	for _, tab := range suite {
		if names[tab.Name()] {
			t.Errorf("duplicate dataset name %q", tab.Name())
		}
		names[tab.Name()] = true
		buckets[BucketLabel(tab.Cells())]++
	}
	for _, b := range BucketOrder {
		if buckets[b] < 3 {
			t.Errorf("bucket %s has only %d datasets", b, buckets[b])
		}
	}
	if buckets["1M+"] < 4 {
		t.Errorf("1M+ bucket has %d datasets, want ≥ 4 (four large datasets)", buckets["1M+"])
	}
}

func TestUserStudyDatasetShapesMatchTable5(t *testing.T) {
	want := []struct {
		rows, cols int
	}{
		{474, 24}, // Survey on Remote Working
		{275, 5},  // Car Sales
		{4862, 8}, // Air Pollution Emissions
		{141, 7},  // Hiking Trail
	}
	for i, tab := range UserStudyDatasets() {
		if tab.Rows() != want[i].rows || tab.Cols() != want[i].cols {
			t.Errorf("%s: %d×%d, want %d×%d (Table 5)",
				tab.Name(), tab.Rows(), tab.Cols(), want[i].rows, want[i].cols)
		}
	}
}

func TestSurveyHasOnlyCategoricalColumns(t *testing.T) {
	tab := RemoteWorkSurvey()
	for _, f := range tab.Fields() {
		if f.Kind != model.KindCategorical {
			t.Errorf("survey column %q is %v", f.Name, f.Kind)
		}
	}
	ms := tab.DefaultMeasures()
	if len(ms) != 1 || ms[0].Key() != "COUNT(*)" {
		t.Errorf("survey measures = %v, want only COUNT(*)", ms)
	}
}

func TestSurveyPlantedWorkspaceProductivityLink(t *testing.T) {
	tab := RemoteWorkSurvey()
	ws := tab.Dimension(SurveyQuestions[1])
	prod := tab.Dimension(SurveyQuestions[0])
	negWhenBad, totalBad := 0, 0
	negOther, totalOther := 0, 0
	for i := 0; i < tab.Rows(); i++ {
		bad := ws.Value(int(ws.CodeAt(i))) == "Strongly agree"
		p := prod.Value(int(prod.CodeAt(i)))
		neg := p == "Much less productive" || p == "Less productive"
		if bad {
			totalBad++
			if neg {
				negWhenBad++
			}
		} else {
			totalOther++
			if neg {
				negOther++
			}
		}
	}
	if totalBad < 10 {
		t.Fatalf("only %d strongly-agree-workspace respondents", totalBad)
	}
	rateBad := float64(negWhenBad) / float64(totalBad)
	rateOther := float64(negOther) / float64(totalOther)
	if rateBad < rateOther+0.3 {
		t.Errorf("workspace→productivity link too weak: %.2f vs %.2f", rateBad, rateOther)
	}
}

func TestAirPollutionPlantedStructure(t *testing.T) {
	tab := AirPollution()
	src := tab.Dimension("Energy Source")
	prod := tab.Dimension("Producer Type")
	so2 := tab.MeasureColumn("SO2")
	sums := map[string]map[string]float64{} // producer -> source -> SO2
	for i := 0; i < tab.Rows(); i++ {
		s := src.Value(int(src.CodeAt(i)))
		p := prod.Value(int(prod.CodeAt(i)))
		if sums[p] == nil {
			sums[p] = map[string]float64{}
		}
		sums[p][s] += so2.At(i)
	}
	for p, bySource := range sums {
		if bySource["Geothermal"] != 0 {
			t.Errorf("%s: Geothermal SO2 = %v, want 0", p, bySource["Geothermal"])
		}
		dominant := ""
		best := -1.0
		for s, v := range bySource {
			if v > best {
				dominant, best = s, v
			}
		}
		want := "Other"
		if p == "Industrial Non-Cogen" {
			want = "Coal"
		}
		if dominant != want {
			t.Errorf("%s: SO2 dominated by %s, want %s", p, dominant, want)
		}
	}
}

func TestGenerateValidatesSpec(t *testing.T) {
	for _, bad := range []GenSpec{
		{},
		{Cards: []int{5}, Periods: 2, Measures: 1, RowsPerCell: 1},
		{Cards: []int{5}, Periods: 12, Measures: 0, RowsPerCell: 1},
		{Cards: []int{5}, Periods: 12, Measures: 1, RowsPerCell: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %+v accepted", bad)
				}
			}()
			Generate(bad)
		}()
	}
}

func TestGenerateShape(t *testing.T) {
	tab := Generate(GenSpec{Name: "g", Seed: 1, Cards: []int{6, 4}, Periods: 12, Measures: 2, RowsPerCell: 2})
	// Record counts are Zipf-skewed with stochastic rounding; the expected
	// total is the cross-product size times RowsPerCell.
	expected := 6 * 4 * 12 * 2
	if tab.Rows() < expected*8/10 || tab.Rows() > expected*12/10 {
		t.Errorf("rows = %d, expected near %d", tab.Rows(), expected)
	}
	if tab.Cols() != 5 {
		t.Errorf("cols = %d", tab.Cols())
	}
	if len(tab.TemporalDimensions()) != 1 || tab.TemporalDimensions()[0] != "Period" {
		t.Error("temporal dimension missing")
	}
}

func TestBucketLabel(t *testing.T) {
	cases := map[int]string{
		500: "0-1k", 5_000: "1k-10k", 50_000: "10k-100k",
		500_000: "100k-1M", 5_000_000: "1M+",
	}
	for cells, want := range cases {
		if got := BucketLabel(cells); got != want {
			t.Errorf("BucketLabel(%d) = %s", cells, got)
		}
	}
}

func TestWriteCSVRoundtrip(t *testing.T) {
	tab := CarSales()
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.LoadCSV(&buf, dataset.LoadOptions{Name: tab.Name()})
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != tab.Rows() || back.Cols() != tab.Cols() {
		t.Fatalf("roundtrip shape %dx%d, want %dx%d", back.Rows(), back.Cols(), tab.Rows(), tab.Cols())
	}
	// Kinds must be re-inferred identically.
	want := map[string]model.FieldKind{}
	for _, f := range tab.Fields() {
		want[f.Name] = f.Kind
	}
	for _, f := range back.Fields() {
		if want[f.Name] != f.Kind {
			t.Errorf("column %q came back as %v, want %v", f.Name, f.Kind, want[f.Name])
		}
	}
	// Aggregates must match: total sales is preserved.
	var origSum, backSum float64
	oc, bc := tab.MeasureColumn("Sales"), back.MeasureColumn("Sales")
	for i := 0; i < tab.Rows(); i++ {
		origSum += oc.At(i)
		backSum += bc.At(i)
	}
	if math.Abs(origSum-backSum) > 1e-6 {
		t.Errorf("sales sum %v vs %v", origSum, backSum)
	}
}
