package workload

import (
	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

// SalesForecast generates the "Sales Forecast" dataset used in Figure 6(a):
// a medium-small sales table (Region × Product × Channel × Month) with an
// April valley shared by most regions, a July-valley region, a flat region
// and a noisy region, plus a dominant product for outstandingness patterns.
func SalesForecast() *dataset.Table {
	regions := namePool("Region", regionNames, 6)
	products := namePool("Product", []string{"Laptop", "Desktop", "Monitor", "Tablet", "Phone", "Printer", "Router", "Camera", "Speaker", "Drive"}, 10)
	channels := namePool("Channel", channelNames, 4)

	regionShape := assignShapes(len(regions), valleyAt(3, 0.15), valleyAt(6, 0.15))
	productBase := make([]float64, len(products))
	for i := range productBase {
		productBase[i] = 40 + 12*float64(i%5)
	}
	productBase[0] = 400 // dominant product: OutstandingFirst / Attribution

	fields := []model.Field{
		{Name: "Region", Kind: model.KindCategorical},
		{Name: "Product", Kind: model.KindCategorical},
		{Name: "Channel", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Sales", Kind: model.KindMeasure},
		{Name: "Units", Kind: model.KindMeasure},
		{Name: "Cost", Kind: model.KindMeasure},
	}
	domains := [][]string{regions, products, channels, monthNames}
	return buildTable("Sales Forecast", fields, domains, 1, 101, func(idx []int, r *randSource) []float64 {
		region, product, channel, month := idx[0], idx[1], idx[2], idx[3]
		base := productBase[product] * (1 + 0.15*float64(channel))
		sales := base * regionShape[region](month, r)
		units := sales / (8 + float64(product))
		cost := sales * (0.55 + 0.02*float64(region))
		return []float64{round2(sales), round2(units), round2(cost)}
	})
}

// TabletSales generates the "Tablet Sales" dataset of Figure 6(b), a
// medium-sized table (100k-1M cells): Brand × Country × Segment × Quarter
// over two years, with a December-quarter peak commonness across brands,
// exceptions as usual, and a trending country.
func TabletSales() *dataset.Table {
	brands := namePool("Brand", brandNames, 10)
	countries := namePool("Country", []string{"USA", "China", "Japan", "Germany", "India", "Brazil", "UK", "France", "Korea", "Canada", "Mexico", "Italy"}, 12)
	segments := namePool("Segment", []string{"Consumer", "Education", "Enterprise", "Government", "SMB"}, 5)
	quarters := []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8"}

	brandShape := assignShapes(len(brands), peakAt(3, 2.2), peakAt(6, 2.2))
	countryBase := make([]float64, len(countries))
	for i := range countryBase {
		countryBase[i] = 30 + 10*float64(i%6)
	}
	countryBase[1] = 260 // dominant market

	fields := []model.Field{
		{Name: "Brand", Kind: model.KindCategorical},
		{Name: "Country", Kind: model.KindCategorical},
		{Name: "Segment", Kind: model.KindCategorical},
		{Name: "Quarter", Kind: model.KindTemporal},
		{Name: "Revenue", Kind: model.KindMeasure},
		{Name: "Units", Kind: model.KindMeasure},
	}
	domains := [][]string{brands, countries, segments, quarters}
	return buildTable("Tablet Sales", fields, domains, 4, 202, func(idx []int, r *randSource) []float64 {
		brand, country, segment, quarter := idx[0], idx[1], idx[2], idx[3]
		base := countryBase[country] * (1 + 0.1*float64(segment))
		if country == 4 { // trending market
			base *= 1 + 0.2*float64(quarter)
		}
		rev := base * brandShape[brand](quarter%8, r)
		units := rev / (3 + 0.3*float64(brand))
		return []float64{round2(rev), round2(units)}
	})
}

// CreditCard generates the "Credit Card" dataset of Figure 6(c), a small
// table: Segment × Channel × Month with a December spending spike
// commonness, an outlier month for one channel and the usual exceptions.
func CreditCard() *dataset.Table {
	segments := namePool("Segment", segmentNames, 5)
	channels := namePool("Channel", []string{"POS", "Online", "ATM", "Mobile"}, 4)

	segmentShape := assignShapes(len(segments), peakAt(11, 2.0), peakAt(7, 2.0))

	fields := []model.Field{
		{Name: "Segment", Kind: model.KindCategorical},
		{Name: "Channel", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Spend", Kind: model.KindMeasure},
		{Name: "Transactions", Kind: model.KindMeasure},
	}
	domains := [][]string{segments, channels, monthNames}
	return buildTable("Credit Card", fields, domains, 8, 303, func(idx []int, r *randSource) []float64 {
		segment, channel, month := idx[0], idx[1], idx[2]
		base := (90 - 14*float64(segment)) * (1 + 0.2*float64(channel))
		spend := base * segmentShape[segment](month, r)
		if channel == 2 && month == 5 { // ATM outage outlier in June
			spend *= 0.15
		}
		tx := spend / (4 + float64(segment))
		return []float64{round2(spend), round2(tx)}
	})
}

// HotelBooking generates the "Hotel Booking" dataset of Figure 6(d), the
// largest of the four (over one million cells): City × Channel × RoomType ×
// Year × Month with a summer peak commonness across cities, a winter-peak
// city, and year-over-year growth.
func HotelBooking() *dataset.Table {
	cities := namePool("City", cityNames, 18)
	channels := namePool("Channel", []string{"Web", "Agency", "Phone", "Walk-in", "Corporate"}, 5)
	rooms := namePool("Room", []string{"Single", "Double", "Suite", "Family"}, 4)
	years := []string{"2017", "2018", "2019"}

	cityShape := assignShapes(len(cities), peakAt(6, 2.4), peakAt(0, 2.4))

	fields := []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Channel", Kind: model.KindCategorical},
		{Name: "RoomType", Kind: model.KindCategorical},
		{Name: "Year", Kind: model.KindTemporal},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Bookings", Kind: model.KindMeasure},
		{Name: "Revenue", Kind: model.KindMeasure},
		{Name: "Nights", Kind: model.KindMeasure},
		{Name: "Cancellations", Kind: model.KindMeasure},
	}
	domains := [][]string{cities, channels, rooms, years, monthNames}
	return buildTable("Hotel Booking", fields, domains, 9, 404, func(idx []int, r *randSource) []float64 {
		city, channel, room, year, month := idx[0], idx[1], idx[2], idx[3], idx[4]
		base := (20 + 3*float64(city%7)) * (1 + 0.25*float64(channel)) * (1 + 0.4*float64(room))
		base *= 1 + 0.15*float64(year) // year-over-year growth
		bookings := base * cityShape[city](month, r)
		revenue := bookings * (90 + 30*float64(room))
		nights := bookings * (1.5 + 0.3*float64(room))
		cancels := bookings * (0.05 + 0.02*r.Float64())
		return []float64{round2(bookings), round2(revenue), round2(nights), round2(cancels)}
	})
}

// FourLargeDatasets returns the four datasets of the Figure 6 / Table 4 /
// Figure 12 evaluations in the paper's order.
func FourLargeDatasets() []*dataset.Table {
	return []*dataset.Table{SalesForecast(), TabletSales(), CreditCard(), HotelBooking()}
}
