package miner

import (
	"strings"
	"testing"

	"metainsight/internal/cache"
	"metainsight/internal/core"
	"metainsight/internal/dataset"
	"metainsight/internal/engine"
	"metainsight/internal/model"
	"metainsight/internal/pattern"
)

var monthNames = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// plantedTable builds a small house-sales table mirroring the paper's
// running example: most cities have a sales valley in April, San Diego has
// its valley in July (highlight-change exception), Fresno is flat
// (type-change: Evenness holds instead) and Yuba is pure noise (no-pattern).
func plantedTable(t testing.TB) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("houses", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Sales", Kind: model.KindMeasure},
		{Name: "Profit", Kind: model.KindMeasure},
	})
	valley := []float64{100, 70, 40, 10, 40, 70, 100, 100, 100, 100, 100, 100}
	julyValley := []float64{100, 100, 100, 100, 70, 40, 10, 40, 70, 100, 100, 100}
	flat := []float64{50, 50, 50, 50, 50, 50, 50, 50, 50, 50, 50, 50}
	noise := []float64{20, 80, 80, 100, 20, 90, 60, 10, 70, 10, 50, 20}

	addCity := func(city string, series []float64) {
		for m, v := range series {
			b.AddRow([]string{city, monthNames[m]}, []float64{v, v / 10})
		}
	}
	for _, city := range []string{"Los Angeles", "San Francisco", "San Jose", "Oakland", "Sacramento"} {
		addCity(city, valley)
	}
	addCity("San Diego", julyValley)
	addCity("Fresno", flat)
	addCity("Yuba", noise)
	return b.Build()
}

func runMiner(t testing.TB, tab *dataset.Table, mutate func(*Config, *engine.Config)) *Result {
	t.Helper()
	ecfg := engine.Config{}
	cfg := DefaultConfig()
	cfg.Workers = 1
	if mutate != nil {
		mutate(&cfg, &ecfg)
	}
	eng, err := engine.New(tab, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng, cfg).Run()
}

// findCityUnimodality returns the subspace-extended Unimodality MetaInsight
// over City on SUM(Sales) broken down by Month, if mined.
func findCityUnimodality(res *Result) *core.MetaInsight {
	for _, mi := range res.MetaInsights {
		h := mi.HDP.HDS
		if h.Kind == model.ExtendSubspace && h.ExtDim == "City" &&
			mi.HDP.Type == pattern.Unimodality &&
			h.Anchor.Breakdown == "Month" &&
			h.Anchor.Measure.Key() == "SUM(Sales)" &&
			h.RootSubspace().Len() == 0 {
			return mi
		}
	}
	return nil
}

func TestMinerFindsPlantedMetaInsight(t *testing.T) {
	res := runMiner(t, plantedTable(t), nil)
	if len(res.MetaInsights) == 0 {
		t.Fatal("no MetaInsights mined")
	}
	mi := findCityUnimodality(res)
	if mi == nil {
		t.Fatal("planted city-valley MetaInsight not found")
	}
	if len(mi.CommSet) != 1 {
		t.Fatalf("CommSet size = %d", len(mi.CommSet))
	}
	c := mi.CommSet[0]
	if c.Highlight.Label != "valley" || c.Highlight.Positions[0] != "Apr" {
		t.Errorf("commonness highlight = %v", c.Highlight)
	}
	if len(c.Indices) != 5 {
		t.Errorf("commonness covers %d cities, want 5", len(c.Indices))
	}
	cats := map[core.ExceptionCategory][]string{}
	for _, e := range mi.Exceptions {
		dp := mi.HDP.Patterns[e.Index]
		city, _ := dp.Scope.Subspace.Get("City")
		cats[e.Category] = append(cats[e.Category], city)
	}
	if got := cats[core.HighlightChange]; len(got) != 1 || got[0] != "San Diego" {
		t.Errorf("highlight-change exceptions = %v", got)
	}
	if got := cats[core.TypeChange]; len(got) != 1 || got[0] != "Fresno" {
		t.Errorf("type-change exceptions = %v", got)
	}
	if got := cats[core.NoPatternException]; len(got) != 1 || got[0] != "Yuba" {
		t.Errorf("no-pattern exceptions = %v", got)
	}
	// Root is the whole dataset → impact 1; score = conciseness.
	if mi.ImpactHDS != 1 {
		t.Errorf("ImpactHDS = %v", mi.ImpactHDS)
	}
	if mi.Score <= 0 || mi.Score > 1 {
		t.Errorf("score = %v", mi.Score)
	}
}

func TestMinerDeterministicSingleWorker(t *testing.T) {
	tab := plantedTable(t)
	a := runMiner(t, tab, nil)
	b := runMiner(t, tab, nil)
	if len(a.MetaInsights) != len(b.MetaInsights) {
		t.Fatalf("run sizes differ: %d vs %d", len(a.MetaInsights), len(b.MetaInsights))
	}
	for i := range a.MetaInsights {
		if a.MetaInsights[i].Key() != b.MetaInsights[i].Key() {
			t.Fatalf("ordering differs at %d", i)
		}
	}
}

func sameKeySets(t *testing.T, a, b *Result, label string) {
	t.Helper()
	ka, kb := a.Keys(), b.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("%s: %d vs %d MetaInsights", label, len(ka), len(kb))
	}
	for k := range ka {
		if !kb[k] {
			t.Fatalf("%s: key %q missing", label, k)
		}
	}
}

func TestAblationsPreserveResultsUnderUnlimitedBudget(t *testing.T) {
	tab := plantedTable(t)
	full := runMiner(t, tab, nil)
	noQC := runMiner(t, tab, func(c *Config, e *engine.Config) {
		e.QueryCache = cache.NewQueryCache(false)
	})
	noPC := runMiner(t, tab, func(c *Config, e *engine.Config) {
		c.PatternCache = cache.NewPatternCache[*pattern.ScopeEvaluation](false)
	})
	fifo := runMiner(t, tab, func(c *Config, e *engine.Config) {
		c.UsePriorityQueues = false
	})
	noP1 := runMiner(t, tab, func(c *Config, e *engine.Config) {
		c.EnablePruning1 = false
	})
	sameKeySets(t, full, noQC, "query cache off")
	sameKeySets(t, full, noPC, "pattern cache off")
	sameKeySets(t, full, fifo, "FIFO queue")
	sameKeySets(t, full, noP1, "pruning 1 off")

	// The optimizations change cost, not results: disabling the query cache
	// must execute strictly more scans.
	if noQC.Stats.ExecutedQueries <= full.Stats.ExecutedQueries {
		t.Errorf("query cache off executed %d scans vs %d with cache",
			noQC.Stats.ExecutedQueries, full.Stats.ExecutedQueries)
	}
	if full.Stats.QueryCacheStats.Hits == 0 {
		t.Error("query cache never hit")
	}
	if full.Stats.PatternCacheStats.Hits == 0 {
		t.Error("pattern cache never hit")
	}
}

func TestPruning1OnlySkipsInvalidHDPs(t *testing.T) {
	// With pruning 1 enabled some HDP evaluations terminate early; the
	// result set must be unchanged (checked above), and the pruning must
	// actually fire on this data (Yuba/Fresno-style HDPs with no majority).
	res := runMiner(t, plantedTable(t), nil)
	if res.Stats.Pruned1 == 0 {
		t.Error("pruning 1 never fired on planted data")
	}
}

func TestCostBudgetIsProgressive(t *testing.T) {
	tab := plantedTable(t)
	full := runMiner(t, tab, nil)
	meter := &engine.Meter{}
	small := runMiner(t, tab, func(c *Config, e *engine.Config) {
		e.Meter = meter
		c.Budget = CostBudget{Meter: meter, Limit: 40}
	})
	if len(small.MetaInsights) >= len(full.MetaInsights) {
		t.Skipf("budget too generous: %d vs %d", len(small.MetaInsights), len(full.MetaInsights))
	}
	// Whatever was found under the small budget must be a subset of the
	// unlimited run's results.
	fullKeys := full.Keys()
	for k := range small.Keys() {
		if !fullKeys[k] {
			t.Errorf("budgeted run invented key %q", k)
		}
	}
}

func TestMultiWorkerMatchesSingleWorker(t *testing.T) {
	tab := plantedTable(t)
	one := runMiner(t, tab, nil)
	eight := runMiner(t, tab, func(c *Config, e *engine.Config) { c.Workers = 8 })
	sameKeySets(t, one, eight, "8 workers")
}

func TestMeasureExtendedMetaInsight(t *testing.T) {
	// Sales and Profit are proportional in the planted table, so the
	// measure-extended HDP at the whole-dataset scope shares highlights
	// across measures (COUNT(*) differs — it is uniform).
	res := runMiner(t, plantedTable(t), nil)
	found := false
	for _, mi := range res.MetaInsights {
		if mi.HDP.HDS.Kind == model.ExtendMeasure {
			found = true
			break
		}
	}
	if !found {
		t.Error("no measure-extended MetaInsight mined")
	}
}

func TestSubspaceDepthRespected(t *testing.T) {
	res := runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		c.MaxSubspaceFilters = 1
	})
	for _, mi := range res.MetaInsights {
		if mi.HDP.HDS.Anchor.Subspace.Len() > 1 {
			t.Fatalf("anchor %v exceeds depth 1", mi.HDP.HDS.Anchor.Subspace)
		}
	}
}

func TestResultSortedByScore(t *testing.T) {
	res := runMiner(t, plantedTable(t), nil)
	for i := 1; i < len(res.MetaInsights); i++ {
		if res.MetaInsights[i].Score > res.MetaInsights[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
}

func TestMinImpactPruning2(t *testing.T) {
	res := runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		c.MinImpact = 0.99 // everything except whole-dataset HDSs pruned
	})
	for _, mi := range res.MetaInsights {
		if minClamp(mi.ImpactHDS) < 0.99 {
			t.Fatalf("MetaInsight with impact %v survived pruning 2", mi.ImpactHDS)
		}
	}
	if res.Stats.Pruned2 == 0 {
		t.Error("pruning 2 never fired")
	}
}

func TestKeysAreHDSScoped(t *testing.T) {
	res := runMiner(t, plantedTable(t), nil)
	for k := range res.Keys() {
		if !strings.ContainsAny(k, "SMB") {
			t.Fatalf("malformed key %q", k)
		}
	}
}

func TestPatternsFirstPreservesResults(t *testing.T) {
	tab := plantedTable(t)
	merged := runMiner(t, tab, nil)
	pf := runMiner(t, tab, func(c *Config, e *engine.Config) { c.PatternsFirst = true })
	sameKeySets(t, merged, pf, "patterns-first schedule")
	// The merged schedule lets augmented prefetches serve the pattern
	// module, so it never executes more scans than the module-feeding order.
	if merged.Stats.ExecutedQueries > pf.Stats.ExecutedQueries {
		t.Errorf("merged schedule executed %d scans vs %d under patterns-first",
			merged.Stats.ExecutedQueries, pf.Stats.ExecutedQueries)
	}
}

func TestImpactMeasureChoiceHasModestEffect(t *testing.T) {
	// Section 5.1.1: the paper sets COUNT(*) as the impact measure "for
	// simplicity" and notes the choice has a negligible effect on
	// efficiency. Mining with SUM(Sales) as the impact measure must find the
	// planted MetaInsight too, at comparable query cost.
	tab := plantedTable(t)
	count := runMiner(t, tab, nil)
	sum := runMiner(t, tab, func(c *Config, e *engine.Config) {
		e.ImpactMeasure = model.Sum("Sales")
	})
	if findCityUnimodality(count) == nil || findCityUnimodality(sum) == nil {
		t.Fatal("planted MetaInsight lost under an impact-measure change")
	}
	ratio := float64(sum.Stats.ExecutedQueries) / float64(count.Stats.ExecutedQueries)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("impact-measure choice changed query count by %.1fx", ratio)
	}
}

func TestBudgetPrefixMonotonicity(t *testing.T) {
	// With one worker and deterministic cost budgets, a larger budget's
	// result set is a superset of a smaller budget's: results are only ever
	// appended as the run progresses.
	tab := plantedTable(t)
	var prev map[string]bool
	for _, limit := range []float64{20, 40, 80, 160, 1e9} {
		meter := &engine.Meter{}
		res := runMiner(t, tab, func(c *Config, e *engine.Config) {
			e.Meter = meter
			c.Budget = CostBudget{Meter: meter, Limit: limit}
		})
		keys := res.Keys()
		for k := range prev {
			if !keys[k] {
				t.Fatalf("budget %.0f lost key %q found at a smaller budget", limit, k)
			}
		}
		prev = keys
	}
}

// assertSameStats asserts two runs' statistics are bit-identical, except
// QueryCacheStats.Bytes, which is documented best-effort (an impact-fallback
// unit observed only via a cached peek reports size 0).
func assertSameStats(t *testing.T, label string, a, b Stats) {
	t.Helper()
	a.QueryCacheStats.Bytes = 0
	b.QueryCacheStats.Bytes = 0
	if a != b {
		t.Errorf("%s: stats differ\n  w1: %+v\n  wN: %+v", label, a, b)
	}
}

// assertSameOrderedKeys asserts the result lists are identical including
// their (score-sorted) order.
func assertSameOrderedKeys(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.MetaInsights) != len(b.MetaInsights) {
		t.Errorf("%s: result sizes differ: %d vs %d", label, len(a.MetaInsights), len(b.MetaInsights))
		return
	}
	for i := range a.MetaInsights {
		if a.MetaInsights[i].Key() != b.MetaInsights[i].Key() {
			t.Errorf("%s: result %d differs: %q vs %q", label, i,
				a.MetaInsights[i].Key(), b.MetaInsights[i].Key())
			return
		}
	}
}

// TestMultiWorkerDeterministicAccounting is the determinism regression test
// for the canonical-commit dispatcher: for every scheduler variant and for a
// finite budget, Workers=1 and Workers=8 must produce identical ordered
// results and bit-identical statistics — executed/augmented/served query
// counts, metered cost, cache hit/miss/entry counts, unit and pruning
// counters. Run it with -race to also exercise the concurrency soundness.
func TestMultiWorkerDeterministicAccounting(t *testing.T) {
	tab := plantedTable(t)
	variants := []struct {
		name   string
		mutate func(*Config, *engine.Config)
	}{
		{"priority", nil},
		{"patterns-first", func(c *Config, e *engine.Config) { c.PatternsFirst = true }},
		{"fifo", func(c *Config, e *engine.Config) { c.UsePriorityQueues = false }},
		{"no-query-cache", func(c *Config, e *engine.Config) {
			e.QueryCache = cache.NewQueryCache(false)
		}},
		{"no-pattern-cache", func(c *Config, e *engine.Config) {
			c.PatternCache = cache.NewPatternCache[*pattern.ScopeEvaluation](false)
		}},
		{"budget60", func(c *Config, e *engine.Config) {
			meter := &engine.Meter{}
			e.Meter = meter
			c.Budget = CostBudget{Meter: meter, Limit: 60}
		}},
	}
	for _, v := range variants {
		run := func(workers int) *Result {
			return runMiner(t, tab, func(c *Config, e *engine.Config) {
				if v.mutate != nil {
					v.mutate(c, e)
				}
				c.Workers = workers
			})
		}
		one := run(1)
		eight := run(8)
		assertSameOrderedKeys(t, v.name, one, eight)
		assertSameStats(t, v.name, one.Stats, eight.Stats)
		if one.Stats.ExecutedQueries == 0 {
			t.Errorf("%s: no queries executed (vacuous)", v.name)
		}
	}
}

// TestProgressCallbackOrderIsDeterministic asserts OnMetaInsight fires in
// the same (commit) order regardless of worker count.
func TestProgressCallbackOrderIsDeterministic(t *testing.T) {
	tab := plantedTable(t)
	discover := func(workers int) []string {
		var order []string
		runMiner(t, tab, func(c *Config, e *engine.Config) {
			c.Workers = workers
			c.OnMetaInsight = func(mi *core.MetaInsight) {
				order = append(order, mi.Key())
			}
		})
		return order
	}
	one := discover(1)
	eight := discover(8)
	if len(one) == 0 {
		t.Fatal("no MetaInsights discovered")
	}
	if len(one) != len(eight) {
		t.Fatalf("discovery counts differ: %d vs %d", len(one), len(eight))
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("discovery order differs at %d: %q vs %q", i, one[i], eight[i])
		}
	}
}

// TestPrefetchFailureFallsBackToBasicQueries white-boxes a MetaInsight unit
// whose augmented-query prefetch is invalid (extension dimension equals the
// anchor breakdown) and asserts the unit is still evaluated via per-sibling
// basic queries, with the failure counted.
func TestPrefetchFailureFallsBackToBasicQueries(t *testing.T) {
	tab := plantedTable(t)
	eng, err := engine.New(tab, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(eng, DefaultConfig())
	m.acct = newAccounting(eng, m.pcache, nil)

	anchor := model.DataScope{
		Subspace:  model.EmptySubspace.With("City", "Los Angeles"),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}
	hds := core.SubspaceHDS(anchor, "City", tab.Dimension("City").Domain())
	hds.ExtDim = "Month" // sabotage: collides with the breakdown → prefetch invalid
	u := &workUnit{
		kind:      kindMetaInsight,
		hds:       hds,
		ptype:     pattern.Unimodality,
		impactHDS: 1,
		miKey:     hds.Key() + "|" + pattern.Unimodality.String(),
	}

	c := m.process(u)
	if c.mi == nil {
		t.Fatal("MetaInsight unit dropped on prefetch failure; want basic-query fallback")
	}
	for _, ev := range c.events {
		m.acct.apply(ev)
	}
	if m.acct.prefetchFailures != 1 {
		t.Errorf("prefetchFailures = %d, want 1", m.acct.prefetchFailures)
	}
	if m.acct.executed == 0 {
		t.Error("fallback executed no basic queries")
	}
}

// TestScoreParamsPartialOverride is the regression test for the
// all-or-nothing Score default: overriding only Tau must keep k, r, γ at
// their paper defaults rather than zeroing Equation 18's terms.
func TestScoreParamsPartialOverride(t *testing.T) {
	tab := plantedTable(t)
	eng, err := engine.New(tab, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Score = core.ScoreParams{Tau: 0.6}
	m := New(eng, cfg)
	def := core.DefaultScoreParams()
	got := m.cfg.Score
	if got.Tau != 0.6 {
		t.Errorf("Tau = %v, want 0.6 (explicit override)", got.Tau)
	}
	if got.K != def.K || got.R != def.R || got.Gamma != def.Gamma {
		t.Errorf("unset fields not defaulted: %+v (want K=%d R=%v Gamma=%v)",
			got, def.K, def.R, def.Gamma)
	}

	// And mining with the partial override must still score sanely (γ > 0
	// keeps scores in (0, 1]).
	res := New(eng, cfg).Run()
	for _, mi := range res.MetaInsights {
		if mi.Score <= 0 || mi.Score > 1 {
			t.Fatalf("score out of range with partial Score override: %v", mi.Score)
		}
	}
}
