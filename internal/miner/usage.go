package miner

import (
	"fmt"

	"metainsight/internal/cache"
	"metainsight/internal/engine"
	"metainsight/internal/obs"
	"metainsight/internal/pattern"
)

// This file implements the miner's canonical accounting. Workers execute
// compute units speculatively and purely — they materialize data through the
// engine's quiet (unmetered) paths and record *usage events* describing the
// cache lookups and scans their unit logically performs. The dispatcher
// replays those events against a simulated cache in canonical commit order,
// charging the meter and the run statistics as a single-worker run would.
// Because the replay depends only on the commit order (which is
// deterministic) and on data (which is deterministic), ExecutedQueries,
// AugmentedQueries, CacheServed, CostUsed and the cache hit/miss statistics
// are bit-identical for any worker count — the at-most-once query accounting
// the paper's Fig 6/7 and Table 3 assume.

// usageKind tags one recorded usage event.
type usageKind int

const (
	// useUnit is one logical unit query (the paper's BasicQuery or the
	// expand module's group-by probe): served if cached, else one scan.
	useUnit usageKind = iota
	// useEval is one data-pattern evaluation: free if memoized, else one
	// evaluation charge.
	useEval
	// useImpact is one impact lookup (Equation 2): free if any unit of the
	// subspace is cached, else one fallback unit scan.
	useImpact
	// useSiblings is one augmented-query prefetch decision for a
	// subspace-extending HDS: skipped if every sibling unit is cached, else
	// one augmented scan populating the whole sibling group.
	useSiblings
)

// unitUse describes one unit query: its cache key, the analytic cost of the
// scan that a miss would execute, and the unit's approximate size.
type unitUse struct {
	key   cache.UnitKey
	cost  float64
	bytes int64
}

// siblingUse describes one augmented-prefetch decision.
type siblingUse struct {
	// scopes are the HDS scope unit keys; the prefetch fires iff any is
	// missing from the (simulated) cache.
	scopes []cache.UnitKey
	// cost is the analytic cost of the augmented scan.
	cost float64
	// failed records that the augmented query was invalid; the unit fell
	// back to per-sibling basic queries.
	failed bool
	// siblings are the non-empty sibling units the scan produces.
	siblings []unitUse
}

// usageEvent is one recorded event; exactly the field for its kind is set.
type usageEvent struct {
	kind    usageKind
	unit    unitUse             // useUnit
	scope   string              // useEval: data-scope key
	impact  *engine.ImpactProbe // useImpact
	sibling *siblingUse         // useSiblings
}

// statDelta carries the worker-side counters of one compute unit; the
// dispatcher folds it into Stats when (and only when) the unit commits.
type statDelta struct {
	expandUnits      int64
	dataPatternUnits int64
	metaInsightUnits int64
	patternsFound    int64
	pruned1          int64
}

// recorder accumulates the usage events of one compute unit, in the order a
// sequential execution performs them.
type recorder struct {
	events []usageEvent
}

func (r *recorder) recordUnit(u *cache.Unit, cost float64) {
	r.events = append(r.events, usageEvent{kind: useUnit, unit: unitUse{
		key:   u.Key,
		cost:  cost,
		bytes: u.ApproxBytes(),
	}})
}

func (r *recorder) recordEval(scopeKey string) {
	r.events = append(r.events, usageEvent{kind: useEval, scope: scopeKey})
}

func (r *recorder) recordImpact(p *engine.ImpactProbe) {
	r.events = append(r.events, usageEvent{kind: useImpact, impact: p})
}

func (r *recorder) recordSiblings(s *siblingUse) {
	r.events = append(r.events, usageEvent{kind: useSiblings, sibling: s})
}

// accounting replays usage events against a simulated query cache and
// pattern cache, mirroring exactly what a single worker executing the
// committed units in commit order would have been charged. It also forwards
// the charges to the engine's meter, so cost budgets observe only committed
// (deterministic) spending.
type accounting struct {
	meter     *engine.Meter
	qcEnabled bool
	pcEnabled bool
	evalCost  float64
	// obs receives one trace event per replayed charge/lookup. The replay
	// runs on the dispatcher goroutine in commit order, so the emitted
	// events read as the canonical single-worker execution; traced caches
	// the Tracing() check so untraced runs skip label construction.
	obs    *obs.Observer
	traced bool

	qc      map[cache.UnitKey]int64 // simulated query cache: key → bytes
	pc      map[string]struct{}     // simulated pattern cache
	qcBytes int64

	executed         int64
	augmented        int64
	served           int64
	qcHits, qcMisses int64
	pcHits, pcMisses int64
	prefetchFailures int64
	cost             float64
}

// newAccounting creates the simulation, seeded from the physical caches'
// current contents so warm caches shared across runs are credited with the
// hits they will serve.
func newAccounting(eng *engine.Engine, pc *cache.PatternCache[*pattern.ScopeEvaluation], o *obs.Observer) *accounting {
	a := &accounting{
		meter:     eng.Meter(),
		qcEnabled: eng.QueryCache().Enabled(),
		pcEnabled: pc.Enabled(),
		evalCost:  eng.EvaluationCost(),
		obs:       o,
		traced:    o.Tracing(),
		qc:        eng.QueryCache().Snapshot(),
		pc:        pc.KeySet(),
	}
	for _, b := range a.qc {
		a.qcBytes += b
	}
	return a
}

func (a *accounting) charge(cost float64) {
	a.cost += cost
	a.meter.AddCost(cost)
}

// store simulates a Put, replacing any previous entry.
func (a *accounting) store(k cache.UnitKey, bytes int64) {
	if old, ok := a.qc[k]; ok {
		a.qcBytes -= old
	}
	a.qc[k] = bytes
	a.qcBytes += bytes
}

// keyLabel renders a unit key as a trace label, matching DataScope.Key's
// "subspace|breakdown" shape.
func keyLabel(k cache.UnitKey) string { return k.Subspace + "|" + k.Breakdown }

// applyUnit replays one unit query: a cached key is served, a missing one is
// scanned (counted, charged) and stored.
func (a *accounting) applyUnit(u unitUse) {
	if !a.qcEnabled {
		a.qcMisses++
		a.executed++
		a.meter.AddExecuted(1)
		a.charge(u.cost)
		if a.traced {
			a.obs.Event(obs.EvQueryExec, keyLabel(u.key), "query-cache disabled", u.cost)
		}
		return
	}
	if _, ok := a.qc[u.key]; ok {
		a.qcHits++
		a.served++
		a.meter.AddServed(1)
		if a.traced {
			a.obs.Event(obs.EvCacheHit, keyLabel(u.key), "query-cache", 0)
		}
		return
	}
	a.qcMisses++
	a.executed++
	a.meter.AddExecuted(1)
	a.charge(u.cost)
	a.store(u.key, u.bytes)
	if a.traced {
		a.obs.Event(obs.EvCacheMiss, keyLabel(u.key), "query-cache", 0)
		a.obs.Event(obs.EvQueryExec, keyLabel(u.key), "", u.cost)
	}
}

// apply replays one usage event.
func (a *accounting) apply(ev usageEvent) {
	switch ev.kind {
	case useUnit:
		a.applyUnit(ev.unit)
	case useEval:
		if a.pcEnabled {
			if _, ok := a.pc[ev.scope]; ok {
				a.pcHits++
				if a.traced {
					a.obs.Event(obs.EvCacheHit, ev.scope, "pattern-cache", 0)
				}
				return
			}
			a.pc[ev.scope] = struct{}{}
		}
		a.pcMisses++
		a.charge(a.evalCost)
		if a.traced {
			a.obs.Event(obs.EvPatternEval, ev.scope, "", a.evalCost)
		}
	case useImpact:
		p := ev.impact
		if a.qcEnabled {
			// A cached unit on any unfiltered breakdown serves the impact
			// value for free (uncounted peek, as in Engine.Impact).
			for _, dim := range p.Probe {
				if _, ok := a.qc[cache.UnitKey{Subspace: p.Subspace, Breakdown: dim}]; ok {
					if a.traced {
						a.obs.Event(obs.EvCacheHit, p.Subspace+"|"+dim, "impact-probe", 0)
					}
					return
				}
			}
		}
		a.applyUnit(unitUse{key: p.Fallback, cost: p.Cost, bytes: p.Bytes})
	case useSiblings:
		s := ev.sibling
		missing := false
		for _, k := range s.scopes {
			if _, ok := a.qc[k]; !ok {
				missing = true
				break
			}
		}
		rep := ""
		if a.traced && len(s.scopes) > 0 {
			rep = keyLabel(s.scopes[0])
		}
		if !missing {
			// Every sibling unit cached: the prefetch is skipped.
			if a.traced {
				a.obs.Event(obs.EvCacheHit, rep, "prefetch skipped: all siblings cached", 0)
			}
			return
		}
		if s.failed {
			a.prefetchFailures++
			if a.traced {
				a.obs.Event(obs.EvCacheMiss, rep, "augmented prefetch failed; per-sibling fallback", 0)
			}
			return
		}
		a.executed++
		a.augmented++
		a.meter.AddExecuted(1)
		a.meter.AddAugmented(1)
		a.charge(s.cost)
		for _, sib := range s.siblings {
			a.store(sib.key, sib.bytes)
		}
		if a.traced {
			a.obs.Event(obs.EvQueryExec, rep,
				fmt.Sprintf("augmented prefetch: %d siblings", len(s.siblings)), s.cost)
		}
	}
}

// queryStats reports the simulated query cache as cache.Stats. Bytes is
// best-effort: an impact-fallback unit observed only through a cached peek
// reports size 0 (sizes are reporting-only and excluded from the
// determinism guarantee).
func (a *accounting) queryStats() cache.Stats {
	return cache.Stats{
		Hits:    a.qcHits,
		Misses:  a.qcMisses,
		Entries: int64(len(a.qc)),
		Bytes:   a.qcBytes,
	}
}

// patternStats reports the simulated pattern cache as cache.Stats.
func (a *accounting) patternStats() cache.Stats {
	return cache.Stats{
		Hits:    a.pcHits,
		Misses:  a.pcMisses,
		Entries: int64(len(a.pc)),
	}
}
