package miner

import (
	"fmt"
	"sort"

	"metainsight/internal/cache"
	"metainsight/internal/engine"
	"metainsight/internal/faults"
	"metainsight/internal/obs"
	"metainsight/internal/pattern"
)

// This file implements the miner's canonical accounting. Workers execute
// compute units speculatively and purely — they materialize data through the
// engine's quiet (unmetered) paths and record *usage events* describing the
// cache lookups and scans their unit logically performs. The dispatcher
// replays those events against a simulated cache in canonical commit order,
// charging the meter and the run statistics as a single-worker run would.
// Because the replay depends only on the commit order (which is
// deterministic) and on data (which is deterministic), ExecutedQueries,
// AugmentedQueries, CacheServed, CostUsed and the cache hit/miss statistics
// are bit-identical for any worker count — the at-most-once query accounting
// the paper's Fig 6/7 and Table 3 assume.
//
// Fault handling follows the same discipline. An injected fault is a pure
// function of the query's canonical fingerprint, so the replay *recomputes*
// each query's resolution rather than trusting anything the worker observed:
// retry costs, failures, breaker transitions and the resulting trace events
// are all decided here, in commit order. The circuit breaker likewise lives
// here — it only modulates the cost accounting of queries that fail anyway
// (fast-fail suppresses retry spending while open), never a query's outcome,
// so it cannot invalidate speculative worker results. When the caches are
// byte-bounded, the simulation evicts in commit-order FIFO, producing the
// deterministic Stats.Evictions; the physical caches evict independently
// (per shard, in physical insertion order), which only ever causes identical
// re-scans.

// usageKind tags one recorded usage event.
type usageKind int

const (
	// useUnit is one logical unit query (the paper's BasicQuery or the
	// expand module's group-by probe): served if cached, else one scan.
	useUnit usageKind = iota
	// useEval is one data-pattern evaluation: free if memoized, else one
	// evaluation charge.
	useEval
	// useImpact is one impact lookup (Equation 2): free if any unit of the
	// subspace is cached, else one fallback unit scan.
	useImpact
	// useSiblings is one augmented-query prefetch decision for a
	// subspace-extending HDS: skipped if every sibling unit is cached, else
	// one augmented scan populating the whole sibling group.
	useSiblings
)

// unitUse describes one unit query: its cache key, the analytic cost of the
// scan that a miss would execute, and the unit's approximate size.
type unitUse struct {
	key   cache.UnitKey
	cost  float64
	bytes int64
	// failed records that the worker's materialization errored. For injected
	// faults the flag is redundant (the replay recomputes the resolution from
	// the fingerprint); it matters only for real substrate errors, which are
	// counted as failed but charged nothing.
	failed bool
}

// evalUse describes one pattern evaluation: the data-scope key and the
// evaluation's measured size (0 when the pattern cache is unbounded).
type evalUse struct {
	scope string
	bytes int64
}

// siblingUse describes one augmented-prefetch decision.
type siblingUse struct {
	// scopes are the HDS scope unit keys; the prefetch fires iff any is
	// missing from the (simulated) cache.
	scopes []cache.UnitKey
	// fp is the augmented scan's canonical fingerprint.
	fp string
	// cost is the analytic cost of the augmented scan.
	cost float64
	// failed records that the augmented query failed for a real (non-
	// injected) reason; the unit fell back to per-sibling basic queries.
	failed bool
	// siblings are the non-empty sibling units the scan produces.
	siblings []unitUse
}

// usageEvent is one recorded event; exactly the field for its kind is set.
type usageEvent struct {
	kind    usageKind
	unit    unitUse             // useUnit
	eval    evalUse             // useEval
	impact  *engine.ImpactProbe // useImpact
	sibling *siblingUse         // useSiblings
}

// statDelta carries the worker-side counters of one compute unit; the
// dispatcher folds it into Stats when (and only when) the unit commits.
type statDelta struct {
	expandUnits      int64
	dataPatternUnits int64
	metaInsightUnits int64
	patternsFound    int64
	pruned1          int64
	boundSkips       int64
	boundScanSkips   int64
	shortSeriesSkips int64
	extractErrors    int64
}

// recorder accumulates the usage events of one compute unit, in the order a
// sequential execution performs them.
type recorder struct {
	events []usageEvent
}

func (r *recorder) recordUnit(u *cache.Unit, cost float64) {
	r.events = append(r.events, usageEvent{kind: useUnit, unit: unitUse{
		key:   u.Key,
		cost:  cost,
		bytes: u.ApproxBytes(),
	}})
}

// recordUnitFail records a unit query whose materialization errored; the
// replay decides (from the fingerprint) whether the failure was injected and
// what it costs.
func (r *recorder) recordUnitFail(key cache.UnitKey, cost float64) {
	r.events = append(r.events, usageEvent{kind: useUnit, unit: unitUse{
		key:    key,
		cost:   cost,
		failed: true,
	}})
}

func (r *recorder) recordEval(scopeKey string, bytes int64) {
	r.events = append(r.events, usageEvent{kind: useEval, eval: evalUse{scope: scopeKey, bytes: bytes}})
}

func (r *recorder) recordImpact(p *engine.ImpactProbe) {
	r.events = append(r.events, usageEvent{kind: useImpact, impact: p})
}

func (r *recorder) recordSiblings(s *siblingUse) {
	r.events = append(r.events, usageEvent{kind: useSiblings, sibling: s})
}

// accounting replays usage events against a simulated query cache and
// pattern cache, mirroring exactly what a single worker executing the
// committed units in commit order would have been charged. It also forwards
// the charges to the engine's meter, so cost budgets observe only committed
// (deterministic) spending.
type accounting struct {
	meter     *engine.Meter
	qcEnabled bool
	pcEnabled bool
	evalCost  float64
	// obs receives one trace event per replayed charge/lookup. The replay
	// runs on the dispatcher goroutine in commit order, so the emitted
	// events read as the canonical single-worker execution; traced caches
	// the Tracing() check so untraced runs skip label construction.
	obs    *obs.Observer
	traced bool

	// inj recomputes fault resolutions in commit order; injEnabled caches
	// the check so fault-free runs skip fingerprint construction entirely.
	inj        *faults.Injector
	injEnabled bool
	// breaker is driven exclusively here, in commit order, which makes its
	// state — and the retry spending it suppresses — worker-count-invariant.
	breaker *faults.Breaker

	// shards recomputes per-shard fault fates (retries, speculative
	// re-issues, permanent shard failures) for sharded substrates, following
	// the same discipline as inj: a scan's shard outcome is a pure function
	// of its canonical fingerprint, so the replay resolves it here in commit
	// order — once per scan the simulation says actually executes — and
	// ignores the worker-observed failure flag, which can depend on physical
	// cache state and therefore on worker count.
	shards        engine.ShardResolver
	shardsEnabled bool

	qc         map[cache.UnitKey]int64 // simulated query cache: key → bytes
	qcOrder    []cache.UnitKey         // commit-order FIFO eviction queue
	qcBytes    int64
	qcMaxBytes int64 // 0 = unbounded

	pc         map[string]int64 // simulated pattern cache: scope → bytes
	pcOrder    []string
	pcBytes    int64
	pcMaxBytes int64

	executed         int64
	augmented        int64
	served           int64
	qcHits, qcMisses int64
	pcHits, pcMisses int64
	prefetchFailures int64
	failedUnits      int64
	retries          int64
	breakerTrips     int64
	specReissues     int64
	shardRetries     int64
	evictions        int64
	cost             float64
}

// newAccounting creates the simulation, seeded from the physical caches'
// current contents so warm caches shared across runs are credited with the
// hits they will serve. Warm entries enter the eviction queues in sorted key
// order (their physical insertion order is not recorded; sorting keeps the
// seed deterministic).
func newAccounting(eng *engine.Engine, pc *cache.PatternCache[*pattern.ScopeEvaluation], o *obs.Observer) *accounting {
	inj := eng.Faults()
	a := &accounting{
		meter:      eng.Meter(),
		qcEnabled:  eng.QueryCache().Enabled(),
		pcEnabled:  pc.Enabled(),
		evalCost:   eng.EvaluationCost(),
		obs:        o,
		traced:     o.Tracing(),
		inj:        inj,
		injEnabled: inj.Enabled(),
		breaker:    faults.NewBreaker(inj.Retry().BreakerThreshold),
		qc:         eng.QueryCache().Snapshot(),
		qcMaxBytes: eng.QueryCache().MaxBytes(),
		pc:         pc.KeySizes(),
		pcMaxBytes: pc.MaxBytes(),
	}
	if sr, ok := eng.Substrate().(engine.ShardResolver); ok {
		a.shards, a.shardsEnabled = sr, true
	}
	for _, b := range a.qc {
		a.qcBytes += b
	}
	if a.qcMaxBytes > 0 && len(a.qc) > 0 {
		a.qcOrder = make([]cache.UnitKey, 0, len(a.qc))
		for k := range a.qc {
			a.qcOrder = append(a.qcOrder, k)
		}
		sort.Slice(a.qcOrder, func(i, j int) bool {
			if a.qcOrder[i].Subspace != a.qcOrder[j].Subspace {
				return a.qcOrder[i].Subspace < a.qcOrder[j].Subspace
			}
			return a.qcOrder[i].Breakdown < a.qcOrder[j].Breakdown
		})
	}
	for _, b := range a.pc {
		a.pcBytes += b
	}
	if a.pcMaxBytes > 0 && len(a.pc) > 0 {
		a.pcOrder = make([]string, 0, len(a.pc))
		for k := range a.pc {
			a.pcOrder = append(a.pcOrder, k)
		}
		sort.Strings(a.pcOrder)
	}
	return a
}

func (a *accounting) charge(cost float64) {
	a.cost += cost
	a.meter.AddCost(cost)
}

// store simulates a query-cache Put, replacing any previous entry, then
// enforces the byte bound by evicting the oldest entries (commit-order FIFO,
// never the entry just stored).
func (a *accounting) store(k cache.UnitKey, bytes int64) {
	if old, ok := a.qc[k]; ok {
		a.qcBytes -= old
	} else if a.qcMaxBytes > 0 {
		a.qcOrder = append(a.qcOrder, k)
	}
	a.qc[k] = bytes
	a.qcBytes += bytes
	if a.qcMaxBytes > 0 {
		for a.qcBytes > a.qcMaxBytes && len(a.qcOrder) > 1 && a.qcOrder[0] != k {
			victim := a.qcOrder[0]
			a.qcOrder = a.qcOrder[1:]
			if old, ok := a.qc[victim]; ok {
				delete(a.qc, victim)
				a.qcBytes -= old
				a.evictions++
				if a.traced {
					a.obs.Event(obs.EvEvict, keyLabel(victim), "query-cache", float64(old))
				}
			}
		}
	}
}

// storeEval simulates a pattern-cache Put with the same eviction semantics.
func (a *accounting) storeEval(key string, bytes int64) {
	if old, ok := a.pc[key]; ok {
		a.pcBytes -= old
	} else if a.pcMaxBytes > 0 {
		a.pcOrder = append(a.pcOrder, key)
	}
	a.pc[key] = bytes
	a.pcBytes += bytes
	if a.pcMaxBytes > 0 {
		for a.pcBytes > a.pcMaxBytes && len(a.pcOrder) > 1 && a.pcOrder[0] != key {
			victim := a.pcOrder[0]
			a.pcOrder = a.pcOrder[1:]
			if old, ok := a.pc[victim]; ok {
				delete(a.pc, victim)
				a.pcBytes -= old
				a.evictions++
				if a.traced {
					a.obs.Event(obs.EvEvict, victim, "pattern-cache", float64(old))
				}
			}
		}
	}
}

// keyLabel renders a unit key as a trace label, matching DataScope.Key's
// "subspace|breakdown" shape.
func keyLabel(k cache.UnitKey) string { return k.Subspace + "|" + k.Breakdown }

// applyFailure charges one permanently failed query: its retry/backoff and
// latency spending (suppressed to the first attempt's latency while the
// breaker is open — fail-fast load shedding), the failure counters, and the
// breaker transition.
func (a *accounting) applyFailure(label string, res faults.Resolution) {
	a.failedUnits++
	cost := res.FaultCost
	retries := res.Retries()
	detail := res.Reason.String()
	if a.breaker.Open() {
		cost = res.FirstCost
		retries = 0
		detail += "; breaker open: fast-fail"
	}
	a.retries += retries
	a.charge(cost)
	if a.traced {
		if retries > 0 {
			a.obs.Event(obs.EvQueryRetry, label, fmt.Sprintf("%d failed retries", retries), cost)
		}
		a.obs.Event(obs.EvQueryFail, label, detail, cost)
	}
	if a.breaker.Failure() {
		a.breakerTrips++
		if a.traced {
			a.obs.Event(obs.EvBreakerOpen, label,
				fmt.Sprintf("%d consecutive failures", a.breaker.Consecutive()), 0)
		}
	}
}

// applyExecSuccess folds the fault-side effects of one successfully executed
// scan: retry accounting and closing the breaker. Returns the fault cost to
// add to the scan's charge.
func (a *accounting) applyExecSuccess(label string, res faults.Resolution) float64 {
	a.breaker.Success()
	if res.Attempts > 1 {
		a.retries += res.Retries()
		if a.traced {
			a.obs.Event(obs.EvQueryRetry, label,
				fmt.Sprintf("succeeded after %d attempts", res.Attempts), res.FaultCost)
		}
	}
	return res.FaultCost
}

// applyUnit replays one unit query: its fault resolution is recomputed from
// the canonical fingerprint (a failing query fails regardless of cache
// state, mirroring the engine's purity rule); a cached key is served, a
// missing one is scanned (counted, charged) and stored.
func (a *accounting) applyUnit(u unitUse) {
	var res faults.Resolution
	if a.injEnabled {
		fp := engine.UnitFingerprint(u.key.Subspace, u.key.Breakdown)
		res = a.inj.Resolve(fp, u.cost)
		if !res.OK {
			a.applyFailure(keyLabel(u.key), res)
			return
		}
	}
	if a.shardsEnabled {
		a.applyUnitSharded(u, res)
		return
	}
	if u.failed {
		// Real (non-injected) substrate error: skipped-but-accounted, no
		// charge — the scan never completed.
		a.failedUnits++
		if a.traced {
			a.obs.Event(obs.EvQueryFail, keyLabel(u.key), "substrate error", 0)
		}
		return
	}
	if !a.qcEnabled {
		a.qcMisses++
		a.executed++
		a.meter.AddExecuted(1)
		a.charge(u.cost + a.applyExecSuccess(keyLabel(u.key), res))
		if a.traced {
			a.obs.Event(obs.EvQueryExec, keyLabel(u.key), "query-cache disabled", u.cost)
		}
		return
	}
	if _, ok := a.qc[u.key]; ok {
		a.qcHits++
		a.served++
		a.meter.AddServed(1)
		if a.traced {
			a.obs.Event(obs.EvCacheHit, keyLabel(u.key), "query-cache", 0)
		}
		return
	}
	a.qcMisses++
	a.executed++
	a.meter.AddExecuted(1)
	a.charge(u.cost + a.applyExecSuccess(keyLabel(u.key), res))
	a.store(u.key, u.bytes)
	if a.traced {
		a.obs.Event(obs.EvCacheMiss, keyLabel(u.key), "query-cache", 0)
		a.obs.Event(obs.EvQueryExec, keyLabel(u.key), "", u.cost)
	}
}

// applyUnitSharded replays one unit query against a sharded substrate. The
// shape mirrors applyUnit's non-shard tail — same counters, charges and
// trace events in the same order when nothing fails — with per-shard fates
// recomputed at the point the simulation decides a scan executes. Shard
// fates are resolved per executed scan (a cache hit issues none, exactly as
// the physical substrate gates only real scans), and a permanently failed
// shard fails the whole query: skipped-but-accounted, charged nothing, and
// — like an injected failure — not counted as a cache miss. The
// worker-observed failed flag is consulted only after the recomputed fates
// clear the query, leaving it meaningful solely for real (non-gate)
// substrate errors, whose occurrence does not depend on worker count.
func (a *accounting) applyUnitSharded(u unitUse, res faults.Resolution) {
	if a.qcEnabled {
		if _, ok := a.qc[u.key]; ok {
			a.qcHits++
			a.served++
			a.meter.AddServed(1)
			if a.traced {
				a.obs.Event(obs.EvCacheHit, keyLabel(u.key), "query-cache", 0)
			}
			return
		}
	}
	fp := engine.UnitFingerprint(u.key.Subspace, u.key.Breakdown)
	sres := a.shards.ResolveShards(fp)
	a.specReissues += sres.SpeculativeReissues
	a.shardRetries += sres.Retries
	if sres.Failed {
		a.failedUnits++
		if a.traced {
			a.obs.Event(obs.EvQueryFail, keyLabel(u.key), "shard failure", 0)
		}
		return
	}
	if u.failed {
		a.failedUnits++
		if a.traced {
			a.obs.Event(obs.EvQueryFail, keyLabel(u.key), "substrate error", 0)
		}
		return
	}
	a.qcMisses++
	a.executed++
	a.meter.AddExecuted(1)
	a.charge(u.cost + a.applyExecSuccess(keyLabel(u.key), res))
	if !a.qcEnabled {
		if a.traced {
			a.obs.Event(obs.EvQueryExec, keyLabel(u.key), "query-cache disabled", u.cost)
		}
		return
	}
	a.store(u.key, u.bytes)
	if a.traced {
		a.obs.Event(obs.EvCacheMiss, keyLabel(u.key), "query-cache", 0)
		a.obs.Event(obs.EvQueryExec, keyLabel(u.key), "", u.cost)
	}
}

// apply replays one usage event.
func (a *accounting) apply(ev usageEvent) {
	switch ev.kind {
	case useUnit:
		a.applyUnit(ev.unit)
	case useEval:
		if a.pcEnabled {
			if _, ok := a.pc[ev.eval.scope]; ok {
				a.pcHits++
				if a.traced {
					a.obs.Event(obs.EvCacheHit, ev.eval.scope, "pattern-cache", 0)
				}
				return
			}
			a.storeEval(ev.eval.scope, ev.eval.bytes)
		}
		a.pcMisses++
		a.charge(a.evalCost)
		if a.traced {
			a.obs.Event(obs.EvPatternEval, ev.eval.scope, "", a.evalCost)
		}
	case useImpact:
		p := ev.impact
		// Purity rule (see Engine.ImpactUnmetered): the fallback scan's fate
		// is resolved before the cache probes, so the outcome cannot depend
		// on simulated cache state.
		if a.injEnabled {
			fp := engine.UnitFingerprint(p.Fallback.Subspace, p.Fallback.Breakdown)
			if res := a.inj.Resolve(fp, p.Cost); !res.OK {
				a.applyFailure(keyLabel(p.Fallback), res)
				return
			}
		}
		if a.qcEnabled {
			// A cached unit on any unfiltered breakdown serves the impact
			// value for free (uncounted peek, as in Engine.Impact).
			for _, dim := range p.Probe {
				if _, ok := a.qc[cache.UnitKey{Subspace: p.Subspace, Breakdown: dim}]; ok {
					if a.traced {
						a.obs.Event(obs.EvCacheHit, p.Subspace+"|"+dim, "impact-probe", 0)
					}
					return
				}
			}
		}
		a.applyUnit(unitUse{key: p.Fallback, cost: p.Cost, bytes: p.Bytes})
	case useSiblings:
		s := ev.sibling
		missing := false
		for _, k := range s.scopes {
			if _, ok := a.qc[k]; !ok {
				missing = true
				break
			}
		}
		rep := ""
		if a.traced && len(s.scopes) > 0 {
			rep = keyLabel(s.scopes[0])
		}
		if !missing {
			// Every sibling unit cached: the prefetch is skipped.
			if a.traced {
				a.obs.Event(obs.EvCacheHit, rep, "prefetch skipped: all siblings cached", 0)
			}
			return
		}
		if a.injEnabled {
			// Recompute the augmented scan's fate from its fingerprint; the
			// worker-side failed flag is ignored for injected decisions (it
			// depends on whether the worker physically issued the scan, which
			// can vary with worker count — the fingerprint cannot).
			if res := a.inj.Resolve(s.fp, s.cost); !res.OK {
				a.prefetchFailures++
				a.applyFailure(s.fp, res)
				return
			}
		}
		if a.shardsEnabled {
			// The prefetch scan executes (some sibling was missing), so its
			// per-shard fates are replayed here, same discipline as
			// applyUnitSharded: recompute from the fingerprint, ignore the
			// worker-observed flag for gate failures.
			sres := a.shards.ResolveShards(s.fp)
			a.specReissues += sres.SpeculativeReissues
			a.shardRetries += sres.Retries
			if sres.Failed {
				a.prefetchFailures++
				if a.traced {
					a.obs.Event(obs.EvQueryFail, s.fp, "shard failure; per-sibling fallback", 0)
				}
				return
			}
		}
		if s.failed {
			a.prefetchFailures++
			if a.traced {
				a.obs.Event(obs.EvCacheMiss, rep, "augmented prefetch failed; per-sibling fallback", 0)
			}
			return
		}
		a.executed++
		a.augmented++
		a.meter.AddExecuted(1)
		a.meter.AddAugmented(1)
		faultCost := 0.0
		if a.injEnabled {
			faultCost = a.applyExecSuccess(s.fp, a.inj.Resolve(s.fp, s.cost))
		}
		a.charge(s.cost + faultCost)
		for _, sib := range s.siblings {
			a.store(sib.key, sib.bytes)
		}
		if a.traced {
			a.obs.Event(obs.EvQueryExec, rep,
				fmt.Sprintf("augmented prefetch: %d siblings", len(s.siblings)), s.cost)
		}
	}
}

// queryStats reports the simulated query cache as cache.Stats. Bytes is
// best-effort: an impact-fallback unit observed only through a cached peek
// reports size 0 (sizes are reporting-only and excluded from the
// determinism guarantee when the cache is unbounded; bounded caches record
// sizes deterministically).
func (a *accounting) queryStats() cache.Stats {
	return cache.Stats{
		Hits:    a.qcHits,
		Misses:  a.qcMisses,
		Entries: int64(len(a.qc)),
		Bytes:   a.qcBytes,
	}
}

// patternStats reports the simulated pattern cache as cache.Stats.
func (a *accounting) patternStats() cache.Stats {
	return cache.Stats{
		Hits:    a.pcHits,
		Misses:  a.pcMisses,
		Entries: int64(len(a.pc)),
		Bytes:   a.pcBytes,
	}
}
