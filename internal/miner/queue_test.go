package miner

import (
	"math/rand"
	"testing"
)

func TestPriorityQueueOrdersByImpactThenSeq(t *testing.T) {
	q := newPriorityQueue()
	q.Push(&workUnit{priority: 0.5, seq: 1})
	q.Push(&workUnit{priority: 0.9, seq: 2})
	q.Push(&workUnit{priority: 0.9, seq: 3})
	q.Push(&workUnit{priority: 0.1, seq: 4})
	wantSeq := []int64{2, 3, 1, 4}
	for i, want := range wantSeq {
		u := q.Pop()
		if u == nil || u.seq != want {
			t.Fatalf("pop %d: got %+v, want seq %d", i, u, want)
		}
	}
	if q.Pop() != nil {
		t.Error("empty queue should pop nil")
	}
}

func TestPriorityQueuePeekDoesNotRemove(t *testing.T) {
	q := newPriorityQueue()
	q.Push(&workUnit{priority: 1, seq: 1})
	if q.Peek() == nil || q.Len() != 1 {
		t.Fatal("peek removed the element")
	}
	if q.Pop() == nil || q.Len() != 0 {
		t.Fatal("pop after peek broken")
	}
	if q.Peek() != nil {
		t.Error("peek on empty queue should be nil")
	}
}

func TestPriorityQueueRandomizedHeapProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	q := newPriorityQueue()
	n := 500
	for i := 0; i < n; i++ {
		q.Push(&workUnit{priority: r.Float64(), seq: int64(i)})
	}
	prev := 2.0
	for i := 0; i < n; i++ {
		u := q.Pop()
		if u.priority > prev {
			t.Fatalf("heap order violated: %v after %v", u.priority, prev)
		}
		prev = u.priority
	}
}

func TestFIFOQueueOrder(t *testing.T) {
	q := newFIFOQueue()
	for i := int64(0); i < 5; i++ {
		q.Push(&workUnit{priority: float64(5 - i), seq: i})
	}
	for i := int64(0); i < 5; i++ {
		u := q.Pop()
		if u == nil || u.seq != i {
			t.Fatalf("FIFO pop %d returned seq %v", i, u)
		}
	}
	if q.Len() != 0 || q.Pop() != nil || q.Peek() != nil {
		t.Error("drained FIFO misbehaves")
	}
}

func TestFIFOQueueCompaction(t *testing.T) {
	q := newFIFOQueue()
	// Interleave pushes and pops far past the compaction threshold.
	next := int64(0)
	popped := int64(0)
	for round := 0; round < 5000; round++ {
		q.Push(&workUnit{seq: next})
		next++
		if round%2 == 1 {
			u := q.Pop()
			if u.seq != popped {
				t.Fatalf("order broken after compaction: got %d, want %d", u.seq, popped)
			}
			popped++
		}
	}
	for q.Len() > 0 {
		u := q.Pop()
		if u.seq != popped {
			t.Fatalf("drain order broken: got %d, want %d", u.seq, popped)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("lost units: popped %d of %d", popped, next)
	}
}
