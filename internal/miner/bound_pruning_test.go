package miner

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"metainsight/internal/dataset"
	"metainsight/internal/engine"
	"metainsight/internal/model"
)

// skewedTable builds a table whose impact distribution makes the bound cuts
// decidable: Region is heavily skewed (West ≈ 92% of rows, East ≈ 8%), every
// city carries the planted valley series so patterns — and therefore
// subspace-extension emissions — fire throughout, and Month's per-value share
// (≈ 8%) sits below City's (≈ 15%), giving the tests thresholds that separate
// "dimension worth scanning" from "dimension provably below the frontier".
func skewedTable(t testing.TB) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("skewed", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Region", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Sales", Kind: model.KindMeasure},
	})
	valley := []float64{100, 70, 40, 10, 40, 70, 100, 100, 100, 100, 100, 100}
	west := []string{"Los Angeles", "San Francisco", "San Jose", "Oakland", "Sacramento", "Fresno"}
	for _, city := range west {
		for m, v := range valley {
			for r := 0; r < 4; r++ {
				b.AddRow([]string{city, "West", monthNames[m]}, []float64{v / 4})
			}
		}
	}
	for _, city := range []string{"Reno", "Tahoe"} {
		for m, v := range valley {
			b.AddRow([]string{city, "East", monthNames[m]}, []float64{v})
		}
	}
	return b.Build()
}

// runBoundPair mines the skewed table twice — bounds on and bounds off —
// under one threshold configuration and checks the contract: identical
// MetaInsights (keys and scores), zero skip counters with the cuts off, and
// no additional queries with them on.
func runBoundPair(t *testing.T, mutate func(*Config)) (on, off *Result) {
	t.Helper()
	tab := skewedTable(t)
	run := func(enable bool) *Result {
		return runMiner(t, tab, func(c *Config, e *engine.Config) {
			c.EnableBoundPruning = enable
			mutate(c)
		})
	}
	on, off = run(true), run(false)
	if miJSON(t, on) != miJSON(t, off) {
		t.Fatal("bound pruning changed the mined MetaInsights")
	}
	if off.Stats.BoundSkips != 0 || off.Stats.BoundScanSkips != 0 {
		t.Fatalf("bounds off recorded skips: emit=%d scan=%d",
			off.Stats.BoundSkips, off.Stats.BoundScanSkips)
	}
	if on.Stats.ExecutedQueries > off.Stats.ExecutedQueries {
		t.Fatalf("bound pruning executed more queries: %d vs %d",
			on.Stats.ExecutedQueries, off.Stats.ExecutedQueries)
	}
	return on, off
}

// TestBoundPruningEmitCutResultIdentical raises MinImpact so East-rooted
// subspace extensions (root impact ≈ 0.077 and ≈ 0.038) fall below Pruning
// 2's threshold: the emit-time cut must drop them before their root-impact
// query while leaving the result set untouched. Every cut trades one-for-one
// against a commit-time Pruning 2 discard or a dedup hit of the off run.
func TestBoundPruningEmitCutResultIdentical(t *testing.T) {
	on, off := runBoundPair(t, func(c *Config) {
		c.MinImpact = 0.15
		c.MinSubspaceImpact = 0.03
	})
	if on.Stats.BoundSkips == 0 {
		t.Error("emit-time bound cut never fired on skewed data")
	}
	if on.Stats.BoundScanSkips != 0 {
		t.Errorf("scan cut fired unexpectedly: %d (no dimension is below 0.03)",
			on.Stats.BoundScanSkips)
	}
	if on.Stats.Pruned2 >= off.Stats.Pruned2 {
		t.Errorf("cut emissions should reduce Pruning 2 discards: on=%d off=%d",
			on.Stats.Pruned2, off.Stats.Pruned2)
	}
}

// TestBoundPruningScanCutResultIdentical raises MinSubspaceImpact above
// Month's heaviest value share (≈ 0.083) but below City's (≈ 0.154): every
// Month expansion scan is provably fruitless and must be skipped without
// changing the explored frontier or the mined MetaInsights.
func TestBoundPruningScanCutResultIdentical(t *testing.T) {
	on, _ := runBoundPair(t, func(c *Config) {
		c.MinImpact = 0.12
		c.MinSubspaceImpact = 0.12
	})
	if on.Stats.BoundScanSkips == 0 {
		t.Error("scan-time bound cut never fired on skewed data")
	}
}

// TestBoundPruningWorkerInvariance pins that the cut decisions — pure
// functions of the table and configuration — keep results and the complete
// statistics bit-identical across worker counts while the cuts are firing.
func TestBoundPruningWorkerInvariance(t *testing.T) {
	tab := skewedTable(t)
	run := func(workers int) *Result {
		return runMiner(t, tab, func(c *Config, e *engine.Config) {
			c.Workers = workers
			c.MinImpact = 0.15
			c.MinSubspaceImpact = 0.03
		})
	}
	ref := run(1)
	if ref.Stats.BoundSkips == 0 {
		t.Fatal("bound cuts never fired; the invariance check would be vacuous")
	}
	for _, w := range []int{2, 4, 8} {
		res := run(w)
		if miJSON(t, res) != miJSON(t, ref) {
			t.Fatalf("workers=%d: MetaInsights differ from workers=1", w)
		}
		if res.Stats != ref.Stats {
			t.Fatalf("workers=%d: stats differ:\n got  %+v\n want %+v", w, res.Stats, ref.Stats)
		}
	}
}

// TestBoundPruningResumeInvariance hard-kills a bound-pruned run mid-stream
// and resumes it: the journal's cumulative skip counters verify the restored
// run re-makes the exact cut decisions, and the final results and statistics
// match the uninterrupted run.
func TestBoundPruningResumeInvariance(t *testing.T) {
	tab := skewedTable(t)
	run := func(workers int, dir string, halt int64, resume bool) *Result {
		return runMiner(t, tab, func(c *Config, e *engine.Config) {
			c.Workers = workers
			c.MinImpact = 0.15
			c.MinSubspaceImpact = 0.03
			c.Checkpoint = &CheckpointSpec{Dir: dir, Every: 8, Resume: resume}
			c.HaltAfterCommits = halt
		})
	}
	ref := run(1, filepath.Join(t.TempDir(), "ref"), 0, false)
	if ref.Err != nil {
		t.Fatalf("reference run failed: %v", ref.Err)
	}
	if ref.Stats.BoundSkips == 0 {
		t.Fatal("bound cuts never fired; the resume check would be vacuous")
	}
	for i, kill := range []int64{1, 7, 8, 20} {
		kw, rw := []int{1, 8, 4, 2}[i], []int{8, 1, 4, 2}[i]
		t.Run(fmt.Sprintf("kill=%d_w%d_resume_w%d", kill, kw, rw), func(t *testing.T) {
			dir := t.TempDir()
			killed := run(kw, dir, kill, false)
			if got := commitTotal(killed.Stats); got != kill {
				t.Fatalf("killed run committed %d units, want %d", got, kill)
			}
			res := run(rw, dir, 0, true)
			if res.Err != nil {
				t.Fatalf("resumed run failed: %v", res.Err)
			}
			if miJSON(t, res) != miJSON(t, ref) {
				t.Fatal("resumed results differ from the uninterrupted run")
			}
			if normalizeStats(res.Stats) != normalizeStats(ref.Stats) {
				t.Fatalf("resumed stats differ:\n got  %+v\n want %+v",
					normalizeStats(res.Stats), normalizeStats(ref.Stats))
			}
		})
	}
}

// TestStatsJSONRoundTripBoundCounters pins the wire names of the new
// counters and their survival through Marshal/Unmarshal (the snapshot path).
func TestStatsJSONRoundTripBoundCounters(t *testing.T) {
	in := Stats{BoundSkips: 7, BoundScanSkips: 3}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["bound_skips"].(float64) != 7 || m["bound_scan_skips"].(float64) != 3 {
		t.Fatalf("wire fields wrong: %v", m)
	}
	var out Stats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}
