package miner

import (
	"testing"

	"metainsight/internal/engine"
)

// runTopK mines the planted table with S*-bounded termination at k.
func runTopK(t *testing.T, k, workers int) *Result {
	t.Helper()
	return runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		c.TopK = k
		c.Workers = workers
	})
}

// TestTopKTerminationPreservesTopK is the acceptance property of S*-bounded
// early termination: against the full (untruncated) run, a TopK run must keep
// every MetaInsight whose score strictly exceeds the full run's k-th best
// score, report the exact same k-th best score, and produce no result the
// full run did not — all while actually cutting units (non-vacuous) and never
// executing more queries than the full run.
func TestTopKTerminationPreservesTopK(t *testing.T) {
	full := runMiner(t, plantedTable(t), nil)
	if len(full.MetaInsights) < 5 {
		t.Fatalf("planted table mined only %d MetaInsights; grid too small", len(full.MetaInsights))
	}
	fullKeys := full.Keys()
	anyCut := false
	for _, k := range []int{1, 2, 5} {
		cut := runTopK(t, k, 1)
		if cut.Stats.SStarCut > 0 {
			anyCut = true
		}
		if len(cut.MetaInsights) < k {
			t.Fatalf("k=%d: only %d results survived", k, len(cut.MetaInsights))
		}
		// Results are sorted by score descending, so index k-1 is the k-th
		// best; the termination bound must not disturb it.
		kth := full.MetaInsights[k-1].Score
		if got := cut.MetaInsights[k-1].Score; got != kth {
			t.Fatalf("k=%d: k-th best score %v, full run has %v", k, got, kth)
		}
		got := cut.Keys()
		for _, mi := range full.MetaInsights {
			if mi.Score > kth && !got[mi.Key()] {
				t.Fatalf("k=%d: lost %q (score %v > k-th best %v)", k, mi.Key(), mi.Score, kth)
			}
		}
		for _, mi := range cut.MetaInsights {
			if !fullKeys[mi.Key()] {
				t.Fatalf("k=%d: spurious result %q not mined by the full run", k, mi.Key())
			}
		}
		// Cuts remove MetaInsight evaluations but never touch the search
		// side, so evaluated + cut must exactly account for the full run's
		// evaluated units. (ExecutedQueries is deliberately not compared:
		// cutting a unit also cuts its augmented prefetch, which may push
		// later pattern units onto their own basic scans.)
		if cut.Stats.MetaInsightUnits+cut.Stats.SStarCut != full.Stats.MetaInsightUnits {
			t.Fatalf("k=%d: evaluated %d + cut %d != full run's %d MetaInsight units",
				k, cut.Stats.MetaInsightUnits, cut.Stats.SStarCut, full.Stats.MetaInsightUnits)
		}
	}
	if !anyCut {
		t.Fatal("no unit was ever S*-cut: the termination test is vacuous")
	}
}

// TestTopKTerminationWorkerInvariance extends the canonical-commit guarantee
// to S* cuts: cut decisions are made on the dispatcher's commit path, so the
// ordered results and every statistic — including SStarCut itself — must be
// bit-identical for any worker count.
func TestTopKTerminationWorkerInvariance(t *testing.T) {
	one := runTopK(t, 2, 1)
	eight := runTopK(t, 2, 8)
	assertSameOrderedKeys(t, "topk", one, eight)
	assertSameStats(t, "topk", one.Stats, eight.Stats)
	if one.Stats.SStarCut == 0 {
		t.Fatal("no S* cuts at k=2: the invariance test is vacuous")
	}
}

// TestTopKTerminationSurvivesResume kills a TopK run mid-stream and resumes
// it: the journal records cut commits, the replay must re-derive each cut
// from the restored top-K threshold instead of re-executing the unit, and the
// final results and statistics must match the uninterrupted run's.
func TestTopKTerminationSurvivesResume(t *testing.T) {
	topkCk := func(workers int, dir string, halt int64, resume bool) *Result {
		return runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
			c.TopK = 2
			c.Workers = workers
			c.Checkpoint = &CheckpointSpec{Dir: dir, Every: 8, Resume: resume}
			c.HaltAfterCommits = halt
		})
	}
	ref := topkCk(1, t.TempDir(), 0, false)
	if ref.Err != nil {
		t.Fatalf("reference run failed: %v", ref.Err)
	}
	if ref.Stats.SStarCut == 0 {
		t.Fatal("no S* cuts: the resume test is vacuous")
	}
	// commitIndex counts cut commits too, so the halt point is placed against
	// the full commit stream, not just the evaluated units.
	total := commitTotal(ref.Stats) + ref.Stats.SStarCut
	kill := total / 2
	if kill < 1 {
		t.Fatalf("run too small to kill: %d commits", total)
	}
	dir := t.TempDir()
	killed := topkCk(4, dir, kill, false)
	if killed.Err != nil {
		t.Fatalf("killed run failed: %v", killed.Err)
	}
	res := topkCk(1, dir, 0, true)
	if res.Err != nil {
		t.Fatalf("resumed run failed: %v", res.Err)
	}
	if res.Stats.ResumedUnits != kill {
		t.Fatalf("ResumedUnits = %d, want %d", res.Stats.ResumedUnits, kill)
	}
	if miJSON(t, res) != miJSON(t, ref) {
		t.Fatal("resumed results differ from the uninterrupted run")
	}
	ns, nr := normalizeStats(res.Stats), normalizeStats(ref.Stats)
	ns.CheckpointWrites, nr.CheckpointWrites = 0, 0
	if ns != nr {
		t.Fatalf("resumed stats differ:\n resumed  %+v\n reference %+v", ns, nr)
	}
}
