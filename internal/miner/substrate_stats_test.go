package miner

import (
	"testing"

	"metainsight/internal/engine"
)

// TestReferenceSubstrateStatsIdentity runs the same mine over the vectorized
// columnar substrate and the retained naive ReferenceSubstrate and demands
// identical ordered results and bit-identical Stats. Beyond the engine-level
// differential tests (byte-identical units per scan), this pins the whole
// mining control flow — unit counts, pruning, query/cache accounting and the
// metered cost — to the substrate-independent contract: the physical scan
// layer may only change how fast units are produced, never what is mined or
// how the run is accounted.
func TestReferenceSubstrateStatsIdentity(t *testing.T) {
	tab := plantedTable(t)
	vec := runMiner(t, tab, nil)
	ref := runMiner(t, tab, func(c *Config, e *engine.Config) {
		e.Substrate = engine.NewReferenceSubstrate(tab, nil)
	})
	assertSameOrderedKeys(t, "substrate", vec, ref)
	assertSameStats(t, "substrate", vec.Stats, ref.Stats)
	if vec.Stats.ExecutedQueries == 0 {
		t.Fatal("no queries executed: the identity test is vacuous")
	}
}
