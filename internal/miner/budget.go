package miner

import (
	"metainsight/internal/engine"
)

// Budget and its implementations live in internal/engine (they are defined
// in terms of the engine's cost meter); these aliases keep the miner's
// configuration surface self-contained.
type (
	// Budget bounds a progressive mining run.
	Budget = engine.Budget
	// CostBudget bounds mining by deterministic metered cost units.
	CostBudget = engine.CostBudget
	// TimeBudget bounds mining by wall-clock time.
	TimeBudget = engine.TimeBudget
	// Unlimited never expires.
	Unlimited = engine.Unlimited
)

// NewTimeBudget returns a TimeBudget expiring after the given duration.
var NewTimeBudget = engine.NewTimeBudget
