package miner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"metainsight/internal/checkpoint"
	"metainsight/internal/obs"
)

// Typed resume errors, surfaced through Result.Err / the public API.
var (
	// ErrCheckpointMismatch reports a resume against a checkpoint directory
	// written under a different mining configuration (table shape, scoring,
	// pattern thresholds, cache bounds, fault policy or budget kind). Worker
	// count is excluded: it is a proven run invariant, so a run may resume
	// with any Workers value.
	ErrCheckpointMismatch = errors.New("miner: checkpoint was written by a different configuration")
	// ErrReplayDiverged reports that re-executing the journal tail did not
	// reproduce the journaled commits — the determinism premise of resume is
	// broken (e.g. the dataset file changed between runs) and continuing
	// would silently produce wrong results.
	ErrReplayDiverged = errors.New("miner: checkpoint replay diverged from journal")
)

// ckptRunner drives checkpointing for one run: one journal record per
// commit, one snapshot every `every` commits plus one at loop exit.
type ckptRunner struct {
	store *checkpoint.Store
	every int64
}

// initCheckpoint opens (or creates) the checkpoint and, on resume, restores
// the latest snapshot and replays the journal tail by re-executing it.
// Replay runs single-threaded on the dispatcher with observers and
// OnMetaInsight suppressed: the pre-crash run already delivered those events
// and callbacks, so the resumed run's trace continues exactly where the
// killed run's stopped (EvCheckpointResume is the sole extra event). Replay
// also re-primes the physical caches as a side effect — each replayed unit
// re-materializes its data — while the accounting's purity rules guarantee
// the re-executed units are charged exactly as the originals were. The
// returned bool reports that the context was cancelled during replay: the
// caller must skip the mining loop (the final snapshot still lands, so the
// run stays resumable).
func (m *Miner) initCheckpoint(ctx context.Context, cs *CheckpointSpec, patternQ, miQ workQueue) (*ckptRunner, bool, error) {
	every := cs.Every
	if every <= 0 {
		every = 256
	}
	fp := m.fingerprint()
	if !cs.Resume {
		st, err := checkpoint.Create(cs.Dir, checkpoint.Meta{Fingerprint: fp, Every: every})
		if err != nil {
			return nil, false, err
		}
		m.pushRoot(patternQ)
		return &ckptRunner{store: st, every: every}, false, nil
	}

	lr, err := checkpoint.Load(cs.Dir)
	if err != nil {
		return nil, false, err
	}
	ok := false
	defer func() {
		if !ok {
			lr.Store.Close()
		}
	}()
	if lr.Meta.Fingerprint != fp {
		return nil, false, fmt.Errorf("%w: directory %s holds fingerprint %s, this run is %s",
			ErrCheckpointMismatch, cs.Dir, lr.Meta.Fingerprint, fp)
	}
	// The stored cadence wins over cs.Every so the resumed run's snapshot
	// boundaries (and checkpoint-write trace events) line up with the
	// uninterrupted run's.
	ck := &ckptRunner{store: lr.Store, every: lr.Meta.Every}

	var snapIdx int64
	if lr.Snapshot != nil {
		if err := m.restoreSnapshotPayload(lr.Snapshot.Payload, patternQ, miQ); err != nil {
			return nil, false, err
		}
		snapIdx = lr.Snapshot.Index
	} else {
		// Genesis resume: killed before the first snapshot ever landed.
		m.pushRoot(patternQ)
	}
	m.commitIndex = snapIdx

	o := m.cfg.Observer
	onMI := m.cfg.OnMetaInsight
	m.cfg.Observer = nil
	m.cfg.OnMetaInsight = nil
	m.acct.setObserver(nil)
	cancelled := false
	var rerr error
	for _, rec := range lr.Tail {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		if rerr = m.replayRecord(rec, patternQ, miQ); rerr != nil {
			break
		}
	}
	m.cfg.Observer = o
	m.cfg.OnMetaInsight = onMI
	m.acct.setObserver(o)
	if rerr != nil {
		return nil, false, rerr
	}
	m.stats.ResumedUnits = m.commitIndex
	o.Event(obs.EvCheckpointResume, "",
		fmt.Sprintf("snapshot=%d replayed=%d", snapIdx, m.commitIndex-snapIdx), 0)
	if cancelled {
		m.stats.Cancelled = true
		o.Event(obs.EvCancel, "", "context cancelled; returning best-so-far results", 0)
	}
	ok = true
	return ck, cancelled, nil
}

// replayPop mirrors canonicalNext for an empty speculation set: with no
// dispatched units, the canonical next unit is simply the queue head
// (pattern side first under PatternsFirst).
func (m *Miner) replayPop(patternQ, miQ workQueue) *workUnit {
	if u := patternQ.Pop(); u != nil {
		return u
	}
	if miQ != patternQ {
		return miQ.Pop()
	}
	return nil
}

// replayRecord re-executes one journaled commit and verifies the result
// against the record's post-commit invariants.
func (m *Miner) replayRecord(rec checkpoint.Record, patternQ, miQ workQueue) error {
	var want recordJSON
	if err := json.Unmarshal(rec.Payload, &want); err != nil {
		return fmt.Errorf("%w: journal record %d: %v", checkpoint.ErrCorrupt, rec.Index, err)
	}
	u := m.replayPop(patternQ, miQ)
	if u == nil {
		return fmt.Errorf("%w: record %d wants %s %q but no unit is pending",
			ErrReplayDiverged, rec.Index, want.Kind, want.Unit)
	}
	if u.kind.String() != want.Kind || describeUnit(u) != want.Unit || u.seq != want.Seq {
		return fmt.Errorf("%w: record %d journals %s %q seq=%d; canonical next is %s %q seq=%d",
			ErrReplayDiverged, rec.Index, want.Kind, want.Unit, want.Seq,
			u.kind, describeUnit(u), u.seq)
	}
	var c *completion
	if m.sstarCut(u) {
		// The original run cut this unit on its canonical commit path (the
		// replayed state is exactly that path's state), so replay must not
		// re-execute it: a cut unit ran no queries the first time, and its
		// journal record says so.
		c = &completion{unit: u, cut: true}
	} else {
		c = m.safeProcess(u)
	}
	m.commit(c, miQ, patternQ)
	m.commitIndex++
	if got := m.encodeRecord(c); got != want {
		return fmt.Errorf("%w: record %d (%s %q): replay produced %+v, journal holds %+v",
			ErrReplayDiverged, rec.Index, want.Kind, want.Unit, got, want)
	}
	return nil
}

// onCommit journals one committed unit and, on a snapshot boundary, writes
// a snapshot. Called from the dispatcher immediately after the commit, so
// everything it serializes is the post-commit state.
func (ck *ckptRunner) onCommit(m *Miner, c *completion, patternQ, miQ workQueue, spec []*specEntry) error {
	payload, err := json.Marshal(m.encodeRecord(c))
	if err != nil {
		return err
	}
	if err := ck.store.Append(checkpoint.Record{Index: m.commitIndex, Payload: payload}); err != nil {
		return err
	}
	if m.commitIndex%ck.every != 0 {
		return nil
	}
	return ck.snapshot(m, patternQ, miQ, spec)
}

// writeFinalSnapshot persists the state at loop exit (budget stop, drained
// work, or cancellation), so even a "finished" directory can be re-loaded.
func (ck *ckptRunner) writeFinalSnapshot(m *Miner, patternQ, miQ workQueue, spec []*specEntry) error {
	return ck.snapshot(m, patternQ, miQ, spec)
}

func (ck *ckptRunner) snapshot(m *Miner, patternQ, miQ workQueue, spec []*specEntry) error {
	// Counted before encoding so the snapshot itself carries the write that
	// produced it — that keeps CheckpointWrites cumulative across resumes,
	// matching the uninterrupted run's total.
	m.stats.CheckpointWrites++
	payload, err := m.encodeSnapshotPayload(patternQ, miQ, spec)
	if err != nil {
		return err
	}
	if err := ck.store.WriteSnapshot(m.commitIndex, payload); err != nil {
		return err
	}
	m.cfg.Observer.Event(obs.EvCheckpointWrite, "", fmt.Sprintf("commit=%d", m.commitIndex), 0)
	return nil
}

func (ck *ckptRunner) close() {
	ck.store.Close()
}
