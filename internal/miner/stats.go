package miner

import (
	"encoding/json"
	"fmt"
	"strings"

	"metainsight/internal/cache"
)

// String renders the run counters as a one-line human-readable summary, the
// end-of-run line the CLI and service callers print.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "units[expand=%d pattern=%d mi=%d emitted=%d]",
		s.ExpandUnits, s.DataPatternUnits, s.MetaInsightUnits, s.EmittedMIUnits)
	fmt.Fprintf(&b, " patterns=%d pruned[p1=%d p2=%d]", s.PatternsFound, s.Pruned1, s.Pruned2)
	if s.SStarCut > 0 {
		fmt.Fprintf(&b, " sstar-cut=%d", s.SStarCut)
	}
	if s.BoundSkips > 0 || s.BoundScanSkips > 0 {
		fmt.Fprintf(&b, " bound-cut[emit=%d scan=%d]", s.BoundSkips, s.BoundScanSkips)
	}
	fmt.Fprintf(&b, " queries[exec=%d aug=%d served=%d]",
		s.ExecutedQueries, s.AugmentedQueries, s.CacheServed)
	fmt.Fprintf(&b, " cost=%.1f qcache=%.1f%% pcache=%.1f%%",
		s.CostUsed, 100*s.QueryCacheStats.HitRate(), 100*s.PatternCacheStats.HitRate())
	if s.PrefetchFailures > 0 {
		fmt.Fprintf(&b, " prefetch-failures=%d", s.PrefetchFailures)
	}
	if s.FailedUnits > 0 || s.Retries > 0 || s.BreakerTrips > 0 {
		fmt.Fprintf(&b, " faults[failed=%d retries=%d breaker-trips=%d]",
			s.FailedUnits, s.Retries, s.BreakerTrips)
	}
	if s.SpeculativeReissues > 0 || s.ShardRetries > 0 {
		fmt.Fprintf(&b, " shard[reissues=%d retries=%d]",
			s.SpeculativeReissues, s.ShardRetries)
	}
	if s.PanickedUnits > 0 {
		fmt.Fprintf(&b, " panicked=%d", s.PanickedUnits)
	}
	if s.Evictions > 0 {
		fmt.Fprintf(&b, " evictions=%d", s.Evictions)
	}
	if s.CheckpointWrites > 0 || s.ResumedUnits > 0 {
		fmt.Fprintf(&b, " checkpoint[writes=%d resumed=%d]", s.CheckpointWrites, s.ResumedUnits)
	}
	if s.ShortSeriesSkips > 0 || s.ExtractErrors > 0 {
		fmt.Fprintf(&b, " skips[short-series=%d extract-errors=%d]",
			s.ShortSeriesSkips, s.ExtractErrors)
	}
	if s.Cancelled {
		b.WriteString(" cancelled")
	}
	return b.String()
}

// cacheStatsJSON fixes the wire names of cache.Stats.
type cacheStatsJSON struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Entries int64   `json:"entries"`
	Bytes   int64   `json:"bytes"`
	HitRate float64 `json:"hit_rate"`
}

func toCacheStatsJSON(s cache.Stats) cacheStatsJSON {
	return cacheStatsJSON{
		Hits:    s.Hits,
		Misses:  s.Misses,
		Entries: s.Entries,
		Bytes:   s.Bytes,
		HitRate: s.HitRate(),
	}
}

// statsJSON fixes the stable wire names of Stats. Fields marshal in
// declaration order, so the encoding is byte-stable for equal values.
type statsJSON struct {
	ExpandUnits      int64          `json:"expand_units"`
	DataPatternUnits int64          `json:"data_pattern_units"`
	MetaInsightUnits int64          `json:"metainsight_units"`
	EmittedMIUnits   int64          `json:"emitted_metainsight_units"`
	PatternsFound    int64          `json:"patterns_found"`
	Pruned1          int64          `json:"pruned_1"`
	Pruned2          int64          `json:"pruned_2"`
	SStarCut         int64          `json:"sstar_cut"`
	BoundSkips       int64          `json:"bound_skips"`
	BoundScanSkips   int64          `json:"bound_scan_skips"`
	PrefetchFailures int64          `json:"prefetch_failures"`
	FailedUnits      int64          `json:"failed_units"`
	Retries          int64          `json:"retries"`
	BreakerTrips     int64          `json:"breaker_trips"`
	SpecReissues     int64          `json:"speculative_reissues"`
	ShardRetries     int64          `json:"shard_retries"`
	PanickedUnits    int64          `json:"panicked_units"`
	Evictions        int64          `json:"evictions"`
	CheckpointWrites int64          `json:"checkpoint_writes"`
	ResumedUnits     int64          `json:"resumed_units"`
	ShortSeriesSkips int64          `json:"short_series_skips"`
	ExtractErrors    int64          `json:"extract_errors"`
	ExecutedQueries  int64          `json:"executed_queries"`
	AugmentedQueries int64          `json:"augmented_queries"`
	CacheServed      int64          `json:"cache_served"`
	CostUsed         float64        `json:"cost_used"`
	Cancelled        bool           `json:"cancelled"`
	QueryCache       cacheStatsJSON `json:"query_cache"`
	PatternCache     cacheStatsJSON `json:"pattern_cache"`
}

// MarshalJSON serializes the stats under stable snake_case field names, so
// CLI and service callers can consume runs without reformatting the struct
// by hand.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON{
		ExpandUnits:      s.ExpandUnits,
		DataPatternUnits: s.DataPatternUnits,
		MetaInsightUnits: s.MetaInsightUnits,
		EmittedMIUnits:   s.EmittedMIUnits,
		PatternsFound:    s.PatternsFound,
		Pruned1:          s.Pruned1,
		Pruned2:          s.Pruned2,
		SStarCut:         s.SStarCut,
		BoundSkips:       s.BoundSkips,
		BoundScanSkips:   s.BoundScanSkips,
		PrefetchFailures: s.PrefetchFailures,
		FailedUnits:      s.FailedUnits,
		Retries:          s.Retries,
		BreakerTrips:     s.BreakerTrips,
		SpecReissues:     s.SpeculativeReissues,
		ShardRetries:     s.ShardRetries,
		PanickedUnits:    s.PanickedUnits,
		Evictions:        s.Evictions,
		CheckpointWrites: s.CheckpointWrites,
		ResumedUnits:     s.ResumedUnits,
		ShortSeriesSkips: s.ShortSeriesSkips,
		ExtractErrors:    s.ExtractErrors,
		ExecutedQueries:  s.ExecutedQueries,
		AugmentedQueries: s.AugmentedQueries,
		CacheServed:      s.CacheServed,
		CostUsed:         s.CostUsed,
		Cancelled:        s.Cancelled,
		QueryCache:       toCacheStatsJSON(s.QueryCacheStats),
		PatternCache:     toCacheStatsJSON(s.PatternCacheStats),
	})
}

// UnmarshalJSON parses the stable wire format back into Stats.
func (s *Stats) UnmarshalJSON(data []byte) error {
	var j statsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Stats{
		ExpandUnits:         j.ExpandUnits,
		DataPatternUnits:    j.DataPatternUnits,
		MetaInsightUnits:    j.MetaInsightUnits,
		EmittedMIUnits:      j.EmittedMIUnits,
		PatternsFound:       j.PatternsFound,
		Pruned1:             j.Pruned1,
		Pruned2:             j.Pruned2,
		SStarCut:            j.SStarCut,
		BoundSkips:          j.BoundSkips,
		BoundScanSkips:      j.BoundScanSkips,
		PrefetchFailures:    j.PrefetchFailures,
		FailedUnits:         j.FailedUnits,
		Retries:             j.Retries,
		BreakerTrips:        j.BreakerTrips,
		SpeculativeReissues: j.SpecReissues,
		ShardRetries:        j.ShardRetries,
		PanickedUnits:       j.PanickedUnits,
		Evictions:           j.Evictions,
		CheckpointWrites:    j.CheckpointWrites,
		ResumedUnits:        j.ResumedUnits,
		ShortSeriesSkips:    j.ShortSeriesSkips,
		ExtractErrors:       j.ExtractErrors,
		ExecutedQueries:     j.ExecutedQueries,
		AugmentedQueries:    j.AugmentedQueries,
		CacheServed:         j.CacheServed,
		CostUsed:            j.CostUsed,
		Cancelled:           j.Cancelled,
		QueryCacheStats: cache.Stats{
			Hits: j.QueryCache.Hits, Misses: j.QueryCache.Misses,
			Entries: j.QueryCache.Entries, Bytes: j.QueryCache.Bytes,
		},
		PatternCacheStats: cache.Stats{
			Hits: j.PatternCache.Hits, Misses: j.PatternCache.Misses,
			Entries: j.PatternCache.Entries, Bytes: j.PatternCache.Bytes,
		},
	}
	return nil
}
