package miner

import (
	"errors"
	"testing"

	"metainsight/internal/cache"
	"metainsight/internal/engine"
	"metainsight/internal/faults"
	"metainsight/internal/obs"
	"metainsight/internal/pattern"
)

// testFaultPolicy is an aggressive-but-survivable injection profile: enough
// transient faults to exercise retries on most runs, a small permanent rate
// to exercise skip-and-account, and injected latency charged to the meter.
func testFaultPolicy() faults.Policy {
	return faults.Policy{
		Seed:          7,
		TransientRate: 0.10,
		PermanentRate: 0.02,
		LatencyRate:   0.25,
		LatencyUnits:  0.5,
	}
}

func patternSizeOf(key string, se *pattern.ScopeEvaluation) int64 {
	return int64(len(key)) + se.ApproxBytes()
}

// traceFingerprint projects a trace onto its deterministic fields (everything
// but the wall clock).
type traceLine struct {
	Seq    int64
	Kind   obs.EventKind
	Unit   string
	Detail string
	Cost   float64
}

func tracedRun(t *testing.T, workers int, mutate func(*Config, *engine.Config)) (*Result, []traceLine) {
	t.Helper()
	ob := obs.New(obs.Options{TraceCapacity: 1 << 16})
	res := runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		if mutate != nil {
			mutate(c, e)
		}
		c.Workers = workers
		c.Observer = ob
	})
	evs := ob.Trace().Events()
	lines := make([]traceLine, len(evs))
	for i, ev := range evs {
		lines[i] = traceLine{Seq: ev.Seq, Kind: ev.Kind, Unit: ev.Unit, Detail: ev.Detail, Cost: ev.Cost}
	}
	return res, lines
}

// TestFaultDeterminismAcrossWorkers is the acceptance test of the
// fault-tolerant substrate: with an active fault policy — and again with
// byte-bounded caches on top — the results, the complete statistics
// (including FailedUnits, Retries, BreakerTrips and Evictions) and the
// structured trace must be bit-identical for Workers = 1..8.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config, *engine.Config)
	}{
		{"faults", func(c *Config, e *engine.Config) {
			e.Faults = faults.NewInjector(testFaultPolicy(), faults.RetryPolicy{BreakerThreshold: 4})
		}},
		{"faults+bounded-caches", func(c *Config, e *engine.Config) {
			e.Faults = faults.NewInjector(testFaultPolicy(), faults.RetryPolicy{BreakerThreshold: 4})
			qc := cache.NewQueryCache(true)
			qc.SetMaxBytes(4096)
			e.QueryCache = qc
			pc := cache.NewPatternCache[*pattern.ScopeEvaluation](true)
			pc.SetMaxBytes(2048, patternSizeOf)
			c.PatternCache = pc
		}},
		{"faults+deadline", func(c *Config, e *engine.Config) {
			e.Faults = faults.NewInjector(testFaultPolicy(), faults.RetryPolicy{DeadlineUnits: 6})
		}},
	}
	for _, v := range variants {
		base, baseTrace := tracedRun(t, 1, v.mutate)
		if len(base.MetaInsights) == 0 {
			t.Fatalf("%s: no MetaInsights mined under faults (vacuous)", v.name)
		}
		for _, workers := range []int{2, 3, 5, 8} {
			res, trace := tracedRun(t, workers, v.mutate)
			label := v.name
			assertSameOrderedKeys(t, label, base, res)
			// Full bit-identity, Bytes included: under an active fault policy
			// every recorded size flows through deterministic paths.
			if base.Stats != res.Stats {
				t.Errorf("%s: stats differ at %d workers\n  w1: %+v\n  w%d: %+v",
					label, workers, base.Stats, workers, res.Stats)
			}
			if len(baseTrace) != len(trace) {
				t.Errorf("%s: trace lengths differ at %d workers: %d vs %d",
					label, workers, len(baseTrace), len(trace))
				continue
			}
			for i := range trace {
				if trace[i] != baseTrace[i] {
					t.Errorf("%s: trace diverges at event %d with %d workers:\n  w1: %+v\n  w%d: %+v",
						label, i, workers, baseTrace[i], workers, trace[i])
					break
				}
			}
		}
	}
}

// TestFaultInjectionIsAccounted asserts the injection profile actually
// exercises the machinery: retries happen, failures are counted and traced,
// and the run still produces the planted MetaInsight's family best-effort.
func TestFaultInjectionIsAccounted(t *testing.T) {
	res, trace := tracedRun(t, 4, func(c *Config, e *engine.Config) {
		e.Faults = faults.NewInjector(testFaultPolicy(), faults.RetryPolicy{})
	})
	if res.Stats.Retries == 0 {
		t.Error("no retries recorded at a 10% transient rate")
	}
	if res.Stats.FailedUnits == 0 {
		t.Error("no failed units recorded at a 2% permanent rate")
	}
	kinds := map[obs.EventKind]int{}
	for _, ev := range trace {
		kinds[ev.Kind]++
	}
	if kinds[obs.EvQueryRetry] == 0 || kinds[obs.EvQueryFail] == 0 {
		t.Errorf("trace lacks fault events: retry=%d fail=%d",
			kinds[obs.EvQueryRetry], kinds[obs.EvQueryFail])
	}
	if len(res.MetaInsights) == 0 {
		t.Error("no best-effort MetaInsights under faults")
	}
}

// TestZeroPolicyMatchesBaseline asserts a zero-value fault policy and
// unbounded caches are exact no-ops: results and stats match a run with no
// injector configured at all.
func TestZeroPolicyMatchesBaseline(t *testing.T) {
	tab := plantedTable(t)
	baseline := runMiner(t, tab, func(c *Config, e *engine.Config) { c.Workers = 4 })
	zero := runMiner(t, tab, func(c *Config, e *engine.Config) {
		c.Workers = 4
		e.Faults = faults.NewInjector(faults.Policy{}, faults.RetryPolicy{})
	})
	assertSameOrderedKeys(t, "zero policy", baseline, zero)
	assertSameStats(t, "zero policy", baseline.Stats, zero.Stats)
	if zero.Stats.FailedUnits != 0 || zero.Stats.Retries != 0 || zero.Stats.Evictions != 0 {
		t.Errorf("zero policy recorded fault activity: %+v", zero.Stats)
	}
	if zero.Err != nil {
		t.Errorf("zero policy degraded: %v", zero.Err)
	}
}

// TestBoundedCacheEvictionRecomputesIdentically asserts eviction correctness:
// a byte-bounded run must evict (Stats.Evictions > 0), recompute evicted
// units on later touches (strictly more executed queries), and still produce
// exactly the unbounded run's MetaInsights — evicted state is recomputed,
// never lost or corrupted.
func TestBoundedCacheEvictionRecomputesIdentically(t *testing.T) {
	tab := plantedTable(t)
	unbounded := runMiner(t, tab, func(c *Config, e *engine.Config) { c.Workers = 4 })
	bounded := runMiner(t, tab, func(c *Config, e *engine.Config) {
		c.Workers = 4
		qc := cache.NewQueryCache(true)
		qc.SetMaxBytes(4096)
		e.QueryCache = qc
		pc := cache.NewPatternCache[*pattern.ScopeEvaluation](true)
		pc.SetMaxBytes(2048, patternSizeOf)
		c.PatternCache = pc
	})
	if bounded.Stats.Evictions == 0 {
		t.Fatal("byte bound never evicted (budget too generous for the test to bite)")
	}
	assertSameOrderedKeys(t, "bounded caches", unbounded, bounded)
	if bounded.Stats.ExecutedQueries <= unbounded.Stats.ExecutedQueries {
		t.Errorf("bounded run executed %d queries, unbounded %d; eviction should force re-scans",
			bounded.Stats.ExecutedQueries, unbounded.Stats.ExecutedQueries)
	}
	if bounded.Err != nil {
		t.Errorf("bounded run degraded: %v", bounded.Err)
	}
}

// TestDegradedThreshold asserts ErrDegraded fires exactly on the configured
// failure-rate boundary: a harsh permanent rate degrades a default-threshold
// run, and the same run with the threshold disabled (>= 1) does not.
func TestDegradedThreshold(t *testing.T) {
	harsh := faults.Policy{Seed: 11, PermanentRate: 0.5}
	flagged := runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		c.Workers = 4
		e.Faults = faults.NewInjector(harsh, faults.RetryPolicy{})
	})
	if flagged.Err == nil {
		t.Fatalf("50%% permanent failures not flagged (FailedUnits=%d)", flagged.Stats.FailedUnits)
	}
	if !errors.Is(flagged.Err, ErrDegraded) {
		t.Errorf("Err = %v, want ErrDegraded", flagged.Err)
	}
	tolerant := runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		c.Workers = 4
		c.DegradedThreshold = 1
		e.Faults = faults.NewInjector(harsh, faults.RetryPolicy{})
	})
	if tolerant.Err != nil {
		t.Errorf("threshold 1 still flagged: %v", tolerant.Err)
	}
	// Best-effort semantics: even at a 50% failure rate the run terminates
	// and reports its accounting.
	if flagged.Stats.FailedUnits == 0 {
		t.Error("no failures accounted under a 50% permanent rate")
	}
}

// TestBreakerSuppressesRetrySpending asserts the circuit breaker trips under
// sustained failures and only sheds cost: outcomes (the result set) must be
// identical with and without it, while the fast-fail path spends less.
func TestBreakerSuppressesRetrySpending(t *testing.T) {
	// A transient-dominated profile: failures are exhausted-retry failures,
	// whose fault cost includes the retry attempts the open breaker shortcuts
	// away. (Permanent faults fail on the first attempt and cost nothing to
	// suppress.)
	harsh := faults.Policy{Seed: 11, TransientRate: 0.75}
	run := func(breaker int) *Result {
		return runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
			c.Workers = 4
			c.DegradedThreshold = 1
			e.Faults = faults.NewInjector(harsh, faults.RetryPolicy{BreakerThreshold: breaker})
		})
	}
	without := run(0)
	with := run(3)
	if with.Stats.BreakerTrips == 0 {
		t.Fatal("breaker never tripped under sustained failures")
	}
	assertSameOrderedKeys(t, "breaker", without, with)
	if with.Stats.FailedUnits != without.Stats.FailedUnits {
		t.Errorf("breaker changed outcomes: %d vs %d failed units",
			with.Stats.FailedUnits, without.Stats.FailedUnits)
	}
	if with.Stats.CostUsed >= without.Stats.CostUsed {
		t.Errorf("breaker did not shed cost: %.2f with vs %.2f without",
			with.Stats.CostUsed, without.Stats.CostUsed)
	}
}
