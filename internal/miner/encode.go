package miner

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"metainsight/internal/cache"
	"metainsight/internal/core"
	"metainsight/internal/faults"
	"metainsight/internal/model"
	"metainsight/internal/obs"
	"metainsight/internal/pattern"
)

// This file serializes miner state for internal/checkpoint. Everything in a
// snapshot is either an int64 (exact in JSON when decoded into an int64
// field), a float64 (Go's shortest-representation encoding round-trips
// float64 exactly), a string, or a struct of those — so a restored run's
// state is bit-identical to the state that was saved, which is what lets the
// resumed suffix reproduce the uninterrupted run's trace byte for byte.
// Cache *contents* are deliberately not persisted: only the simulated-cache
// key/size bookkeeping is. The physical caches re-prime naturally while the
// journal tail re-executes (every replayed unit re-materializes its data),
// and the purity rules of usage.go guarantee the re-executed units record
// the same usage the originals did.

// unitJSON is the wire form of one pending workUnit. Scalar fields carry no
// omitempty: a 0-priority unit must round-trip as 0, not as absent.
type unitJSON struct {
	Kind      string         `json:"kind"`
	Priority  float64        `json:"priority"`
	Seq       int64          `json:"seq"`
	Subspace  model.Subspace `json:"subspace,omitempty"`
	Impact    float64        `json:"impact"`
	MaxDimIdx int            `json:"max_dim_idx"`
	Breakdown string         `json:"breakdown,omitempty"`
	HDS       *core.HDS      `json:"hds,omitempty"`
	PType     int            `json:"ptype"`
	ImpactHDS float64        `json:"impact_hds"`
	MIKey     string         `json:"mi_key,omitempty"`
}

func encodeUnit(u *workUnit) unitJSON {
	j := unitJSON{
		Kind:      u.kind.String(),
		Priority:  u.priority,
		Seq:       u.seq,
		Subspace:  u.subspace,
		Impact:    u.impact,
		MaxDimIdx: u.maxDimIdx,
		Breakdown: u.breakdown,
		PType:     int(u.ptype),
		ImpactHDS: u.impactHDS,
		MIKey:     u.miKey,
	}
	if u.kind == kindMetaInsight {
		hds := u.hds
		j.HDS = &hds
	}
	return j
}

func decodeUnit(j unitJSON) (*workUnit, error) {
	var kind unitKind
	switch j.Kind {
	case kindExpand.String():
		kind = kindExpand
	case kindDataPattern.String():
		kind = kindDataPattern
	case kindMetaInsight.String():
		kind = kindMetaInsight
	default:
		return nil, fmt.Errorf("unknown unit kind %q", j.Kind)
	}
	u := &workUnit{
		kind:      kind,
		priority:  j.Priority,
		seq:       j.Seq,
		subspace:  j.Subspace,
		impact:    j.Impact,
		maxDimIdx: j.MaxDimIdx,
		breakdown: j.Breakdown,
		ptype:     pattern.Type(j.PType),
		impactHDS: j.ImpactHDS,
		miKey:     j.MIKey,
	}
	if j.HDS != nil {
		u.hds = *j.HDS
	}
	return u, nil
}

// cacheEntryJSON is one simulated query-cache entry; evalEntryJSON one
// simulated pattern-cache entry. When the cache is byte-bounded the entry
// list preserves the commit-order FIFO eviction queue; unbounded caches have
// no eviction order and serialize sorted.
type cacheEntryJSON struct {
	Subspace  string `json:"s"`
	Breakdown string `json:"b"`
	Bytes     int64  `json:"n"`
}

type evalEntryJSON struct {
	Scope string `json:"s"`
	Bytes int64  `json:"n"`
}

// acctJSON is the accounting's full mutable state, meter included.
type acctJSON struct {
	Executed         int64   `json:"executed"`
	Augmented        int64   `json:"augmented"`
	Served           int64   `json:"served"`
	QCHits           int64   `json:"qc_hits"`
	QCMisses         int64   `json:"qc_misses"`
	PCHits           int64   `json:"pc_hits"`
	PCMisses         int64   `json:"pc_misses"`
	PrefetchFailures int64   `json:"prefetch_failures"`
	FailedUnits      int64   `json:"failed_units"`
	Retries          int64   `json:"retries"`
	BreakerTrips     int64   `json:"breaker_trips"`
	Evictions        int64   `json:"evictions"`
	Cost             float64 `json:"cost"`

	QC []cacheEntryJSON `json:"qc"`
	PC []evalEntryJSON  `json:"pc"`

	Breaker faults.BreakerState `json:"breaker"`

	// Meter state in exact nano-units (AddCost truncates per call, so the
	// float total is not restorable bit-exactly — the integer is).
	MeterCostNanos int64 `json:"meter_cost_nanos"`
	MeterExecuted  int64 `json:"meter_executed"`
	MeterServed    int64 `json:"meter_served"`
	MeterAugmented int64 `json:"meter_augmented"`
}

func (a *accounting) exportState() acctJSON {
	st := acctJSON{
		Executed:         a.executed,
		Augmented:        a.augmented,
		Served:           a.served,
		QCHits:           a.qcHits,
		QCMisses:         a.qcMisses,
		PCHits:           a.pcHits,
		PCMisses:         a.pcMisses,
		PrefetchFailures: a.prefetchFailures,
		FailedUnits:      a.failedUnits,
		Retries:          a.retries,
		BreakerTrips:     a.breakerTrips,
		Evictions:        a.evictions,
		Cost:             a.cost,
		Breaker:          a.breaker.State(),
		MeterCostNanos:   a.meter.CostNanos(),
		MeterExecuted:    a.meter.ExecutedQueries(),
		MeterServed:      a.meter.ServedQueries(),
		MeterAugmented:   a.meter.AugmentedQueries(),
	}
	if a.qcMaxBytes > 0 {
		for _, k := range a.qcOrder {
			st.QC = append(st.QC, cacheEntryJSON{Subspace: k.Subspace, Breakdown: k.Breakdown, Bytes: a.qc[k]})
		}
	} else {
		keys := make([]cache.UnitKey, 0, len(a.qc))
		for k := range a.qc {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Subspace != keys[j].Subspace {
				return keys[i].Subspace < keys[j].Subspace
			}
			return keys[i].Breakdown < keys[j].Breakdown
		})
		for _, k := range keys {
			st.QC = append(st.QC, cacheEntryJSON{Subspace: k.Subspace, Breakdown: k.Breakdown, Bytes: a.qc[k]})
		}
	}
	if a.pcMaxBytes > 0 {
		for _, k := range a.pcOrder {
			st.PC = append(st.PC, evalEntryJSON{Scope: k, Bytes: a.pc[k]})
		}
	} else {
		keys := make([]string, 0, len(a.pc))
		for k := range a.pc {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			st.PC = append(st.PC, evalEntryJSON{Scope: k, Bytes: a.pc[k]})
		}
	}
	return st
}

// restoreState overwrites the accounting (which newAccounting seeded from
// the physical caches — empty in a fresh process) with checkpointed state.
// It expects the meter at zero: the engine a resume runs against must be
// fresh, and the replay verification catches a non-fresh one immediately.
func (a *accounting) restoreState(st acctJSON) {
	a.executed = st.Executed
	a.augmented = st.Augmented
	a.served = st.Served
	a.qcHits = st.QCHits
	a.qcMisses = st.QCMisses
	a.pcHits = st.PCHits
	a.pcMisses = st.PCMisses
	a.prefetchFailures = st.PrefetchFailures
	a.failedUnits = st.FailedUnits
	a.retries = st.Retries
	a.breakerTrips = st.BreakerTrips
	a.evictions = st.Evictions
	a.cost = st.Cost
	a.breaker.Restore(st.Breaker)
	a.meter.AddCostNanos(st.MeterCostNanos)
	a.meter.AddExecuted(st.MeterExecuted)
	a.meter.AddServed(st.MeterServed)
	a.meter.AddAugmented(st.MeterAugmented)

	a.qc = make(map[cache.UnitKey]int64, len(st.QC))
	a.qcOrder = nil
	a.qcBytes = 0
	for _, e := range st.QC {
		k := cache.UnitKey{Subspace: e.Subspace, Breakdown: e.Breakdown}
		a.qc[k] = e.Bytes
		a.qcBytes += e.Bytes
		if a.qcMaxBytes > 0 {
			a.qcOrder = append(a.qcOrder, k)
		}
	}
	a.pc = make(map[string]int64, len(st.PC))
	a.pcOrder = nil
	a.pcBytes = 0
	for _, e := range st.PC {
		a.pc[e.Scope] = e.Bytes
		a.pcBytes += e.Bytes
		if a.pcMaxBytes > 0 {
			a.pcOrder = append(a.pcOrder, e.Scope)
		}
	}
}

// setObserver swaps the accounting's observer (nil silences it); the resume
// replay uses it to suppress re-emission of events the pre-crash run already
// recorded.
func (a *accounting) setObserver(o *obs.Observer) {
	a.obs = o
	a.traced = o.Tracing()
}

// snapshotJSON is the miner-side snapshot payload.
type snapshotJSON struct {
	Seq     int64               `json:"seq"`
	Stats   Stats               `json:"stats"`
	Pending []unitJSON          `json:"pending"`
	SeenMI  []string            `json:"seen_mi"`
	Results []*core.MetaInsight `json:"results"`
	Acct    acctJSON            `json:"acct"`
}

// recordJSON is one journal record: the committed unit's identity plus
// post-commit invariants the replay verifies (any mismatch means the resume
// is not reproducing the original run and must abort with
// ErrReplayDiverged rather than continue silently wrong).
type recordJSON struct {
	Kind        string `json:"kind"`
	Unit        string `json:"unit"`
	Seq         int64  `json:"seq"`
	Produced    int    `json:"produced"`
	Panicked    bool   `json:"panicked,omitempty"`
	Cut         bool   `json:"cut,omitempty"`
	CostNanos   int64  `json:"cost_nanos"`
	Results     int    `json:"results"`
	FailedUnits int64  `json:"failed_units"`
	Evictions   int64  `json:"evictions"`
	// BoundSkips/BoundScanSkips carry the cumulative bound-pruning counters,
	// so a resume replay also verifies the restored run makes the exact cut
	// decisions the original made.
	BoundSkips     int64 `json:"bound_skips"`
	BoundScanSkips int64 `json:"bound_scan_skips"`
}

// encodeSnapshotPayload captures the complete dispatcher-owned state:
// sequence counter, stats, every pending unit (queued or dispatched-but-
// uncommitted — the pending *set* after N canonical commits is worker-count-
// invariant even though its queue/spec split is not), dedup set, results,
// and the accounting. Pending units sort by seq, which is a total order over
// live units and equals FIFO insertion order, so both queue disciplines
// rebuild identically.
func (m *Miner) encodeSnapshotPayload(patternQ, miQ workQueue, spec []*specEntry) ([]byte, error) {
	var pending []*workUnit
	pending = append(pending, patternQ.Items()...)
	if miQ != patternQ {
		pending = append(pending, miQ.Items()...)
	}
	for _, e := range spec {
		pending = append(pending, e.unit)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })

	snap := snapshotJSON{
		Seq:     m.seq,
		Stats:   m.stats,
		Pending: make([]unitJSON, len(pending)),
		Acct:    m.acct.exportState(),
	}
	for i, u := range pending {
		snap.Pending[i] = encodeUnit(u)
	}
	snap.SeenMI = make([]string, 0, len(m.seenMI))
	for k := range m.seenMI {
		snap.SeenMI = append(snap.SeenMI, k)
	}
	sort.Strings(snap.SeenMI)
	snap.Results = make([]*core.MetaInsight, 0, len(m.results))
	for _, mi := range m.results {
		snap.Results = append(snap.Results, mi)
	}
	sort.Slice(snap.Results, func(i, j int) bool { return snap.Results[i].Key() < snap.Results[j].Key() })
	return json.Marshal(snap)
}

// restoreSnapshotPayload rebuilds dispatcher state from a snapshot. Pending
// units are re-routed to the queues they came from (MetaInsight units to the
// MI queue under PatternsFirst) in seq order. Cancelled is cleared: the
// restored run is live again.
func (m *Miner) restoreSnapshotPayload(payload []byte, patternQ, miQ workQueue) error {
	var snap snapshotJSON
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("snapshot payload: %w", err)
	}
	m.seq = snap.Seq
	m.stats = snap.Stats
	m.stats.Cancelled = false
	for _, k := range snap.SeenMI {
		m.seenMI[k] = true
	}
	for _, mi := range snap.Results {
		m.results[mi.Key()] = mi
	}
	// topScores is derived state (the top-K committed scores), so it is
	// rebuilt rather than serialized.
	m.rebuildTopScores()
	for _, j := range snap.Pending {
		u, err := decodeUnit(j)
		if err != nil {
			return err
		}
		if u.kind == kindMetaInsight {
			miQ.Push(u)
		} else {
			patternQ.Push(u)
		}
	}
	m.acct.restoreState(snap.Acct)
	return nil
}

// encodeRecord captures the post-commit invariants of one committed unit.
func (m *Miner) encodeRecord(c *completion) recordJSON {
	return recordJSON{
		Kind:           c.unit.kind.String(),
		Unit:           describeUnit(c.unit),
		Seq:            c.unit.seq,
		Produced:       len(c.produced),
		Panicked:       c.panicked,
		Cut:            c.cut,
		CostNanos:      m.acct.meter.CostNanos(),
		Results:        len(m.results),
		FailedUnits:    m.acct.failedUnits,
		Evictions:      m.acct.evictions,
		BoundSkips:     m.stats.BoundSkips,
		BoundScanSkips: m.stats.BoundScanSkips,
	}
}

// fingerprint hashes everything that shapes the canonical commit stream:
// the table's shape, the measure set, every scoring/pattern/miner knob, the
// cache configuration, the fault policy and the budget kind. Workers is
// deliberately excluded — worker count is a proven run invariant, so a run
// checkpointed at W=8 may resume at W=1 and still match bit for bit. Custom
// pattern evaluators contribute their names only (function values have no
// stable cross-process identity); registering a *different* evaluator under
// the same name defeats the check, which the API docs call out.
func (m *Miner) fingerprint() string {
	h := fnv.New64a()
	w := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	w("ckpt-v1")
	tab := m.eng.Table()
	w("table", tab.Name(), strconv.Itoa(tab.Rows()))
	for _, d := range tab.Dimensions() {
		w("dim", d.Name, strconv.Itoa(d.Cardinality()), strconv.Itoa(int(d.Kind)))
	}
	for _, ms := range m.eng.Measures() {
		w("measure", ms.Key())
	}
	w("impact", m.eng.ImpactMeasure().Key())
	w("score", fmt.Sprintf("%+v", m.cfg.Score))
	p := m.cfg.Pattern
	w("pattern", fmt.Sprintf("%g %g %g %g %g %d %g %g %g %g",
		p.Alpha, p.EvennessCV, p.AttributionShare, p.OutlierSigma,
		p.OutlierMaxFraction, p.SmoothWindow, p.SeasonalityMinACF, p.TrendMinR2,
		p.UnimodalViolationFraction, p.UnimodalMinProminence))
	for _, c := range p.Custom {
		w("custom", c.Name, strconv.FormatBool(c.TemporalOnly))
	}
	w("miner", fmt.Sprintf("%d %d %g %g %t %t %t %t %g %t %d",
		m.cfg.MaxSubspaceFilters, m.cfg.MaxBreakdownCardinality, m.cfg.MinImpact,
		m.cfg.MinSubspaceImpact, m.cfg.UsePriorityQueues, m.cfg.EnablePruning1,
		m.cfg.EnablePruning2, m.cfg.EnableBoundPruning, m.cfg.DegradedThreshold,
		m.cfg.PatternsFirst, m.cfg.TopK))
	qc := m.eng.QueryCache()
	w("qcache", fmt.Sprintf("%t %d", qc.Enabled(), qc.MaxBytes()))
	w("pcache", fmt.Sprintf("%t %d", m.pcache.Enabled(), m.pcache.MaxBytes()))
	inj := m.eng.Faults()
	w("faults", fmt.Sprintf("%+v", inj.Policy()), fmt.Sprintf("%+v", inj.Retry()))
	switch b := m.cfg.Budget.(type) {
	case Unlimited:
		w("budget", "unlimited")
	case CostBudget:
		w("budget", fmt.Sprintf("cost:%g", b.Limit))
	case TimeBudget:
		// Deadlines re-anchor on resume (documented); only the budget kind
		// is part of the run's identity.
		w("budget", "time")
	default:
		w("budget", fmt.Sprintf("custom:%T", b))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
