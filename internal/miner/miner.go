// Package miner implements the MetaInsight mining procedure of Section 4.2:
// pattern-guided search over data scopes, impact-ordered priority queues for
// the data-pattern and MetaInsight compute units, augmented-query prefetching
// through the query cache, pattern-cache memoization of evaluations, the two
// pruning rules, and a progressive budget. The procedure is decomposed into
// the paper's three functionalities — search (subspace expansion), query
// (internal/engine + internal/cache) and evaluation (internal/pattern +
// internal/core) — wired together by a dispatcher and a worker pool.
package miner

import (
	"sort"
	"sync"

	"metainsight/internal/cache"
	"metainsight/internal/core"
	"metainsight/internal/engine"
	"metainsight/internal/model"
	"metainsight/internal/pattern"
)

// Config configures a mining run.
type Config struct {
	// Score holds the MetaInsight scoring hyper-parameters (τ, k, r, γ).
	Score core.ScoreParams
	// Pattern holds the evaluation-criterion thresholds.
	Pattern pattern.Config
	// MaxSubspaceFilters caps the number of non-empty filters in a subspace;
	// the paper's configuration uses 3.
	MaxSubspaceFilters int
	// MaxBreakdownCardinality skips breakdown dimensions with larger
	// domains (unbounded if 0). Very high-cardinality breakdowns produce
	// unreadable charts and dominate cost.
	MaxBreakdownCardinality int
	// MinImpact is Pruning 2's threshold: MetaInsight compute units whose
	// g(Impact_HDS) falls below it are discarded (the paper suggests 0.01).
	// Set negative to disable.
	MinImpact float64
	// MinSubspaceImpact prunes the subspace search frontier: children whose
	// impact falls below it are not explored. It must be at most MinImpact
	// for Pruning 2 to remain meaningful (an HDS's impact is never below its
	// anchor subspace's). Set negative to disable.
	MinSubspaceImpact float64
	// Workers is the number of evaluation goroutines; the paper uses 8.
	Workers int
	// UsePriorityQueues selects impact-ordered queues (true, the paper's
	// design) or FIFO queues (the Figure 6 ablation baseline).
	UsePriorityQueues bool
	// EnablePruning1 enables early termination of HDP evaluation once no
	// commonness can reach τ.
	EnablePruning1 bool
	// EnablePruning2 enables discarding low-impact MetaInsight units.
	EnablePruning2 bool
	// Budget bounds the run; nil means Unlimited.
	Budget Budget
	// PatternCache is the evaluation memo; nil creates an enabled cache.
	// Pass a disabled cache for the "w/o Pattern Cache" ablation.
	PatternCache *cache.PatternCache[*pattern.ScopeEvaluation]
	// OnMetaInsight, when set, is invoked once for each newly stored
	// MetaInsight as the progressive mining run discovers it. It may be
	// called from multiple worker goroutines concurrently.
	OnMetaInsight func(*core.MetaInsight)
	// PatternsFirst schedules MetaInsight compute units only when no
	// data-pattern work is pending, following the sequential reading of the
	// paper's workflow (the data pattern mining module feeds the
	// MetaInsight mining module). The default (false) is the best-effort
	// progressive scheduler: one merged impact-ordered queue, which lets
	// augmented-query prefetches also serve upcoming data-pattern units —
	// strictly fewer executed queries, at the price of deviating from the
	// paper's two-module accounting (see the Figure 7 experiment).
	PatternsFirst bool
}

// DefaultConfig mirrors the paper's configuration: depth-3 subspaces,
// 8 workers, priority queues, both prunings, τ = 0.5 scoring.
func DefaultConfig() Config {
	return Config{
		Score:                   core.DefaultScoreParams(),
		Pattern:                 pattern.DefaultConfig(),
		MaxSubspaceFilters:      3,
		MaxBreakdownCardinality: 50,
		MinImpact:               0.01,
		MinSubspaceImpact:       0.005,
		Workers:                 8,
		UsePriorityQueues:       true,
		EnablePruning1:          true,
		EnablePruning2:          true,
		Budget:                  Unlimited{},
	}
}

// Stats aggregates counters from one mining run.
type Stats struct {
	ExpandUnits       int64 // subspace expansions processed
	DataPatternUnits  int64 // data-pattern compute units processed
	MetaInsightUnits  int64 // MetaInsight compute units processed
	EmittedMIUnits    int64 // MetaInsight compute units emitted
	PatternsFound     int64 // valid (scope, type) basic data patterns
	Pruned1           int64 // HDP evaluations cut short by Pruning 1
	Pruned2           int64 // MetaInsight units discarded by Pruning 2
	ExecutedQueries   int64
	AugmentedQueries  int64
	CacheServed       int64
	CostUsed          float64
	QueryCacheStats   cache.Stats
	PatternCacheStats cache.Stats
}

// Result is the outcome of a mining run: all qualified MetaInsight
// candidates (deduplicated by identity key, sorted by score descending) and
// run statistics. Candidates feed the ranking stage (Section 4.3).
type Result struct {
	MetaInsights []*core.MetaInsight
	Stats        Stats
}

// Keys returns the identity keys of the mined MetaInsights, the set the
// precision metric of Definition 5.1 intersects.
func (r *Result) Keys() map[string]bool {
	keys := make(map[string]bool, len(r.MetaInsights))
	for _, mi := range r.MetaInsights {
		keys[mi.Key()] = true
	}
	return keys
}

// Miner drives one mining run over an engine.
type Miner struct {
	eng *engine.Engine
	cfg Config

	pcache *cache.PatternCache[*pattern.ScopeEvaluation]

	mu      sync.Mutex
	results map[string]*core.MetaInsight
	seenMI  map[string]bool
	stats   Stats
	seq     int64
}

// New creates a Miner. The zero-value parts of cfg are filled with defaults.
func New(eng *engine.Engine, cfg Config) *Miner {
	def := DefaultConfig()
	if cfg.Score == (core.ScoreParams{}) {
		cfg.Score = def.Score
	}
	if cfg.Pattern.Alpha == 0 {
		custom := cfg.Pattern.Custom
		cfg.Pattern = def.Pattern
		cfg.Pattern.Custom = custom
	}
	if cfg.MaxSubspaceFilters == 0 {
		cfg.MaxSubspaceFilters = def.MaxSubspaceFilters
	}
	if cfg.MaxBreakdownCardinality == 0 {
		cfg.MaxBreakdownCardinality = def.MaxBreakdownCardinality
	}
	if cfg.MinImpact == 0 {
		cfg.MinImpact = def.MinImpact
	}
	if cfg.MinSubspaceImpact == 0 {
		cfg.MinSubspaceImpact = def.MinSubspaceImpact
	}
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.Budget == nil {
		cfg.Budget = Unlimited{}
	}
	if cfg.PatternCache == nil {
		cfg.PatternCache = cache.NewPatternCache[*pattern.ScopeEvaluation](true)
	}
	return &Miner{
		eng:     eng,
		cfg:     cfg,
		pcache:  cfg.PatternCache,
		results: make(map[string]*core.MetaInsight),
		seenMI:  make(map[string]bool),
	}
}

// Run executes the mining procedure and returns all discovered MetaInsights.
func (m *Miner) Run() *Result {
	patternQueue := m.newQueue()
	miQueue := patternQueue
	if m.cfg.PatternsFirst {
		miQueue = m.newQueue()
	}
	root := &workUnit{
		kind:      kindExpand,
		priority:  1,
		subspace:  model.EmptySubspace,
		impact:    1,
		maxDimIdx: -1,
	}
	patternQueue.Push(root)

	type completion struct {
		produced   []*workUnit
		wasPattern bool
	}
	workCh := make(chan *workUnit)
	doneCh := make(chan completion)
	var wg sync.WaitGroup
	for i := 0; i < m.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range workCh {
				doneCh <- completion{produced: m.process(u), wasPattern: u.kind != kindMetaInsight}
			}
		}()
	}

	inflight := 0
	patternInflight := 0
	// pop selects the queue to dispatch from: the pattern queue first and —
	// under PatternsFirst — the MetaInsight queue only once no pattern unit
	// is pending or in flight that could refill it (the paper's
	// module-feeding order). With a single merged queue both branches see
	// the same heap.
	pop := func() workQueue {
		if patternQueue.Len() > 0 {
			return patternQueue
		}
		if m.cfg.PatternsFirst && patternInflight > 0 {
			return nil
		}
		if miQueue.Len() > 0 {
			return miQueue
		}
		return nil
	}
	enqueue := func(units []*workUnit) {
		for _, u := range units {
			m.seq++
			u.seq = m.seq
			if u.kind == kindMetaInsight {
				miQueue.Push(u)
			} else {
				patternQueue.Push(u)
			}
		}
	}
	receive := func(c completion) {
		enqueue(c.produced)
		inflight--
		if c.wasPattern {
			patternInflight--
		}
	}

	for {
		if m.cfg.Budget.Exceeded() {
			break
		}
		q := pop()
		if q == nil && inflight == 0 {
			break
		}
		if q == nil {
			receive(<-doneCh)
			continue
		}
		next := q.Peek()
		select {
		case workCh <- next:
			q.Pop()
			inflight++
			if next.kind != kindMetaInsight {
				patternInflight++
			}
		case c := <-doneCh:
			receive(c)
		}
	}
	close(workCh)
	// Drain remaining in-flight units; their output is discarded (the
	// budget is spent).
	go func() {
		wg.Wait()
		close(doneCh)
	}()
	for range doneCh {
	}

	return m.finish()
}

func (m *Miner) newQueue() workQueue {
	if m.cfg.UsePriorityQueues {
		return newPriorityQueue()
	}
	return newFIFOQueue()
}

func (m *Miner) enqueue(q workQueue, units []*workUnit) {
	for _, u := range units {
		m.seq++
		u.seq = m.seq
		q.Push(u)
	}
}

func (m *Miner) finish() *Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*core.MetaInsight, 0, len(m.results))
	for _, mi := range m.results {
		out = append(out, mi)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key() < out[j].Key()
	})
	meter := m.eng.Meter()
	m.stats.ExecutedQueries = meter.ExecutedQueries()
	m.stats.AugmentedQueries = meter.AugmentedQueries()
	m.stats.CacheServed = meter.ServedQueries()
	m.stats.CostUsed = meter.Cost()
	m.stats.QueryCacheStats = m.eng.QueryCache().Stats()
	m.stats.PatternCacheStats = m.pcache.Stats()
	return &Result{MetaInsights: out, Stats: m.stats}
}

// process dispatches one compute unit to its handler.
func (m *Miner) process(u *workUnit) []*workUnit {
	switch u.kind {
	case kindExpand:
		return m.processExpand(u)
	case kindDataPattern:
		return m.processDataPattern(u)
	case kindMetaInsight:
		m.processMetaInsight(u)
		return nil
	default:
		panic("miner: unknown unit kind")
	}
}

// processExpand emits the data-pattern compute units for a subspace and, if
// the subspace is not at maximum depth, its child subspaces with their
// impacts (computed from one group-by unit per expandable dimension — the
// same units the data-pattern module will need, so the scans are shared
// through the query cache).
func (m *Miner) processExpand(u *workUnit) []*workUnit {
	m.addStat(func(s *Stats) { s.ExpandUnits++ })
	tab := m.eng.Table()
	var produced []*workUnit

	for _, dim := range tab.DimensionNames() {
		if u.subspace.Has(dim) {
			continue
		}
		col := tab.Dimension(dim)
		if col.Cardinality() < 3 {
			continue // too few groups for any pattern criterion
		}
		if m.cfg.MaxBreakdownCardinality > 0 && col.Cardinality() > m.cfg.MaxBreakdownCardinality {
			continue
		}
		produced = append(produced, &workUnit{
			kind:      kindDataPattern,
			priority:  u.impact,
			subspace:  u.subspace,
			impact:    u.impact,
			breakdown: dim,
		})
	}

	if u.subspace.Len() >= m.cfg.MaxSubspaceFilters {
		return produced
	}
	dims := tab.Dimensions()
	for idx := u.maxDimIdx + 1; idx < len(dims); idx++ {
		if m.cfg.Budget.Exceeded() {
			break
		}
		dim := dims[idx]
		if u.subspace.Has(dim.Name) {
			continue
		}
		if m.cfg.MaxBreakdownCardinality > 0 && dim.Cardinality() > m.cfg.MaxBreakdownCardinality {
			continue
		}
		unit, err := m.eng.Unit(u.subspace, dim.Name)
		if err != nil {
			continue
		}
		childImpacts := m.unitImpacts(unit)
		for gi, v := range unit.GroupKeys {
			imp := childImpacts[gi]
			if imp < m.cfg.MinSubspaceImpact {
				continue
			}
			produced = append(produced, &workUnit{
				kind:      kindExpand,
				priority:  imp,
				subspace:  u.subspace.With(dim.Name, v),
				impact:    imp,
				maxDimIdx: idx,
			})
		}
	}
	return produced
}

// unitImpacts returns the impact of each group's child subspace, using the
// additive impact measure's per-group values from the unit.
func (m *Miner) unitImpacts(u *cache.Unit) []float64 {
	im := m.eng.ImpactMeasure()
	total := m.eng.TotalImpact()
	out := make([]float64, len(u.GroupKeys))
	var src []float64
	if im.Agg == model.AggCount {
		src = u.Counts
	} else {
		src = u.Sums[im.Column]
	}
	for i, v := range src {
		out[i] = v / total
	}
	return out
}

// processDataPattern evaluates every measure and pattern type on one
// (subspace, breakdown) scope family and emits MetaInsight compute units for
// each discovered basic data pattern (pattern-guided mining, Figure 4).
func (m *Miner) processDataPattern(u *workUnit) []*workUnit {
	m.addStat(func(s *Stats) { s.DataPatternUnits++ })
	tab := m.eng.Table()
	bcol := tab.Dimension(u.breakdown)
	temporal := bcol.Kind == model.KindTemporal

	// One unit fetch serves every measure of the scope family (the cache
	// unit spans all measures, Figure 5).
	unit, err := m.eng.Unit(u.subspace, u.breakdown)
	if err != nil {
		return nil
	}
	var produced []*workUnit
	for _, meas := range m.eng.Measures() {
		ds := model.DataScope{Subspace: u.subspace, Breakdown: u.breakdown, Measure: meas}
		series, err := engine.Extract(unit, ds)
		if err != nil || series.Len() < 3 {
			continue
		}
		se := m.evaluateScope(ds, series, temporal)
		for _, t := range se.ValidTypes() {
			m.addStat(func(s *Stats) { s.PatternsFound++ })
			produced = append(produced, m.emitMetaInsightUnits(ds, t, u.impact)...)
		}
	}
	return produced
}

// evaluateScope runs (or recalls) the all-types evaluation of one data scope
// through the pattern cache.
func (m *Miner) evaluateScope(ds model.DataScope, series *engine.Series, temporal bool) *pattern.ScopeEvaluation {
	key := ds.Key()
	if se, ok := m.pcache.Get(key); ok {
		return se
	}
	se := pattern.EvaluateAllScoped(ds, series.Keys, series.Values, temporal, m.cfg.Pattern)
	m.eng.ChargeEvaluation()
	m.pcache.Put(key, se)
	return se
}

// emitMetaInsightUnits applies the three extension strategies to a
// discovered basic data pattern dp = (ds, t, ·) and emits one MetaInsight
// compute unit per resulting HDS (deduplicated across anchors), applying
// Pruning 2 on the HDS impact.
func (m *Miner) emitMetaInsightUnits(ds model.DataScope, t pattern.Type, impactS float64) []*workUnit {
	tab := m.eng.Table()
	var produced []*workUnit

	emit := func(hds core.HDS, impactHDS float64) {
		if len(hds.Scopes) < 2 {
			return
		}
		key := hds.Key() + "|" + t.String()
		m.mu.Lock()
		seen := m.seenMI[key]
		if !seen {
			m.seenMI[key] = true
		}
		m.mu.Unlock()
		if seen {
			return
		}
		if m.cfg.EnablePruning2 && minClamp(impactHDS) < m.cfg.MinImpact {
			m.addStat(func(s *Stats) { s.Pruned2++ })
			return
		}
		m.addStat(func(s *Stats) { s.EmittedMIUnits++ })
		produced = append(produced, &workUnit{
			kind:      kindMetaInsight,
			priority:  impactHDS,
			hds:       hds,
			ptype:     t,
			impactHDS: impactHDS,
		})
	}

	// Subspace extending: one HDS per non-empty filter of ds.Subspace.
	for _, f := range ds.Subspace {
		col := tab.Dimension(f.Dim)
		if col == nil || col.Cardinality() < 2 {
			continue
		}
		hds := core.SubspaceHDS(ds, f.Dim, col.Domain())
		// Impact_HDS = Impact(subspace without the extended filter), by
		// additivity of the impact measure over the sibling group.
		rootImpact, err := m.eng.Impact(hds.RootSubspace())
		if err != nil {
			continue
		}
		emit(hds, rootImpact)
	}

	// Measure extending.
	if ms := m.eng.Measures(); len(ms) >= 2 {
		hds := core.MeasureHDS(ds, ms)
		emit(hds, float64(len(ms))*impactS)
	}

	// Breakdown extending: only from a temporal anchor breakdown, across all
	// temporal dimensions.
	if tab.Dimension(ds.Breakdown).Kind == model.KindTemporal {
		hds := core.BreakdownHDS(ds, tab.TemporalDimensions())
		emit(hds, float64(len(hds.Scopes))*impactS)
	}
	return produced
}

func minClamp(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

// processMetaInsight evaluates one HDP and records the resulting
// MetaInsight, if any. Subspace-extended HDSs are prefetched with one
// augmented query when the query cache is enabled; Pruning 1 aborts the
// evaluation as soon as no commonness can reach τ.
func (m *Miner) processMetaInsight(u *workUnit) {
	m.addStat(func(s *Stats) { s.MetaInsightUnits++ })
	tab := m.eng.Table()

	if u.hds.Kind == model.ExtendSubspace && m.eng.QueryCache().Enabled() {
		// One augmented query prefetches the entire sibling group; issue it
		// unless every sibling unit is already cached.
		for _, scope := range u.hds.Scopes {
			if _, ok := m.eng.QueryCache().Peek(scope.Subspace.Key(), scope.Breakdown); !ok {
				if _, err := m.eng.AugmentedQuery(u.hds.Anchor, u.hds.ExtDim); err != nil {
					return
				}
				break
			}
		}
	}

	n := len(u.hds.Scopes)
	patterns := make([]core.DataPattern, 0, n)
	classCounts := make(map[string]int)
	best := 0
	tau := m.cfg.Score.Tau

	for j, scope := range u.hds.Scopes {
		if m.cfg.Budget.Exceeded() {
			return
		}
		series, err := m.eng.BasicQuery(scope)
		if err != nil || series.Len() < 3 {
			// Empty or degenerate sibling: not part of the HDP.
			continue
		}
		temporal := tab.Dimension(scope.Breakdown).Kind == model.KindTemporal
		se := m.evaluateScope(scope, series, temporal)
		t, h := se.Induced(u.ptype)
		patterns = append(patterns, core.DataPattern{Scope: scope, Type: t, Highlight: h})
		if t == u.ptype {
			k := h.Key()
			classCounts[k]++
			if classCounts[k] > best {
				best = classCounts[k]
			}
		}
		if m.cfg.EnablePruning1 {
			remaining := n - j - 1
			// Even if every remaining scope joined the largest class, its
			// ratio could not exceed τ: terminate (Pruning 1). The bound
			// uses the evaluated pattern count rather than the nominal HDS
			// size, so scopes that turned out empty cannot cause a valid
			// MetaInsight to be pruned.
			if float64(best+remaining) <= tau*float64(len(patterns)+remaining) {
				m.addStat(func(s *Stats) { s.Pruned1++ })
				return
			}
		}
	}
	if len(patterns) < 2 {
		return
	}
	hdp := &core.HDP{HDS: u.hds, Type: u.ptype, Patterns: patterns}
	mi, ok := core.BuildMetaInsight(hdp, u.impactHDS, m.cfg.Score)
	if !ok {
		return
	}
	m.mu.Lock()
	_, exists := m.results[mi.Key()]
	if !exists {
		m.results[mi.Key()] = mi
	}
	m.mu.Unlock()
	if !exists && m.cfg.OnMetaInsight != nil {
		m.cfg.OnMetaInsight(mi)
	}
}

func (m *Miner) addStat(f func(*Stats)) {
	m.mu.Lock()
	f(&m.stats)
	m.mu.Unlock()
}
