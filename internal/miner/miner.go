// Package miner implements the MetaInsight mining procedure of Section 4.2:
// pattern-guided search over data scopes, impact-ordered priority queues for
// the data-pattern and MetaInsight compute units, augmented-query prefetching
// through the query cache, pattern-cache memoization of evaluations, the two
// pruning rules, and a progressive budget. The procedure is decomposed into
// the paper's three functionalities — search (subspace expansion), query
// (internal/engine + internal/cache) and evaluation (internal/pattern +
// internal/core) — wired together by a dispatcher and a worker pool.
//
// Concurrency model: workers execute compute units speculatively and purely.
// They touch no shared miner state; all data access goes through the
// engine's quiet single-flighted paths (so two workers never scan the same
// unit twice concurrently), and every logical query or evaluation the unit
// performs is recorded as a usage event (see usage.go). The dispatcher — the
// only goroutine that mutates miner state — commits completed units in
// canonical order (the order a single worker would process them) and replays
// their usage events against a simulated cache. Statistics, budget spending,
// result deduplication and MetaInsight emission therefore need no locks and
// are bit-identical for any worker count.
package miner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metainsight/internal/cache"
	"metainsight/internal/core"
	"metainsight/internal/engine"
	"metainsight/internal/model"
	"metainsight/internal/obs"
	"metainsight/internal/pattern"
)

// Config configures a mining run.
type Config struct {
	// Score holds the MetaInsight scoring hyper-parameters (τ, k, r, γ).
	// Unset (zero) fields are filled individually from the paper defaults
	// (core.ScoreParams.WithDefaults), so overriding only Tau keeps k, r
	// and γ meaningful.
	Score core.ScoreParams
	// Pattern holds the evaluation-criterion thresholds.
	Pattern pattern.Config
	// MaxSubspaceFilters caps the number of non-empty filters in a subspace;
	// the paper's configuration uses 3.
	MaxSubspaceFilters int
	// MaxBreakdownCardinality skips dimensions with larger domains during
	// expansion — both as breakdown dimensions and as filter dimensions
	// (unbounded if 0). Very high-cardinality breakdowns produce unreadable
	// charts, and high-cardinality filter dimensions explode the subspace
	// frontier; both dominate cost.
	MaxBreakdownCardinality int
	// MinImpact is Pruning 2's threshold: MetaInsight compute units whose
	// g(Impact_HDS) falls below it are discarded (the paper suggests 0.01).
	// Set negative to disable.
	MinImpact float64
	// MinSubspaceImpact prunes the subspace search frontier: children whose
	// impact falls below it are not explored. It must be at most MinImpact
	// for Pruning 2 to remain meaningful (an HDS's impact is never below its
	// anchor subspace's). Set negative to disable.
	MinSubspaceImpact float64
	// TopK, when positive, enables S*-bounded early termination: once K
	// MetaInsights are committed, a MetaInsight compute unit whose score
	// upper bound (core.ScoreUpperBound, from Lemma 4.1's S* and the
	// cheapest-exception entropy floor) cannot strictly beat the K-th best
	// committed score is cut before evaluation — none of its sibling scans
	// ever reach the engine and none of its cost is charged. The K-th best
	// score is monotone nondecreasing over commits and every cut is decided
	// on the dispatcher's canonical commit path, so results and statistics
	// remain bit-identical for any worker count, and every MetaInsight whose
	// score strictly exceeds the run's final K-th best score is still mined.
	// Zero (the default) disables termination; callers that rank more than K
	// insights, or rank with diversity weights rather than raw score, should
	// size TopK accordingly or leave it off.
	TopK int
	// Workers is the number of evaluation goroutines; the paper uses 8.
	// Worker count affects only wall-clock time: results, statistics and
	// budget consumption are identical for any value.
	Workers int
	// UsePriorityQueues selects impact-ordered queues (true, the paper's
	// design) or FIFO queues (the Figure 6 ablation baseline).
	UsePriorityQueues bool
	// EnablePruning1 enables early termination of HDP evaluation once no
	// commonness can reach τ.
	EnablePruning1 bool
	// EnablePruning2 enables discarding low-impact MetaInsight units.
	EnablePruning2 bool
	// EnableBoundPruning cuts frontier work using the engine's precomputed
	// impact-sum bounds (engine.ImpactShareUpperBound / DimMaxImpactShare)
	// before any query is issued: a subspace-extension whose root-subspace
	// impact bound cannot reach MinImpact is never emitted (the Pruning 2
	// check would discard it after the scan anyway), and an expansion
	// dimension whose heaviest value cannot reach MinSubspaceImpact is never
	// scanned (every child it could produce would be filtered). Both bounds
	// are sound upper bounds on the true impact, so the mined MetaInsights
	// are identical with the flag on or off — only the query/cost accounting
	// differs (fewer scans, counted in Stats.BoundSkips/BoundScanSkips). The
	// cut decisions are pure functions of the immutable table and the
	// configuration, so they are worker-count-invariant and resume-safe.
	// When the bounds are unsound (SUM impact over a column with negative
	// values) they return the trivial bound and the cuts never fire.
	EnableBoundPruning bool
	// Budget bounds the run; nil means Unlimited. The budget is checked
	// before each unit commit, so a run stops on a whole-unit boundary.
	Budget Budget
	// PatternCache is the evaluation memo; nil creates an enabled cache.
	// Pass a disabled cache for the "w/o Pattern Cache" ablation.
	PatternCache *cache.PatternCache[*pattern.ScopeEvaluation]
	// OnMetaInsight, when set, is invoked once for each newly stored
	// MetaInsight as the progressive mining run discovers it. Calls are made
	// serially from the dispatcher goroutine, in deterministic discovery
	// (commit) order.
	OnMetaInsight func(*core.MetaInsight)
	// Observer, when non-nil, receives run observability: metric counters
	// and trace events recorded on the dispatcher's serial commit path (so
	// trace order is the deterministic commit order), and phase timers
	// accumulated via atomics. Observation is inert: results, statistics and
	// budget spending are bit-identical with the observer on or off.
	Observer *obs.Observer
	// DegradedThreshold is the failure-rate bound of graceful degradation:
	// when more than this fraction of the run's unit queries permanently
	// failed (injected faults or substrate errors), the result is still
	// returned — best-effort, with every committed MetaInsight — but
	// Result.Err is set to a wrapped ErrDegraded. The default is 0.1; set
	// negative to flag any failure, or >= 1 to never flag.
	DegradedThreshold float64
	// PatternsFirst schedules MetaInsight compute units only when no
	// data-pattern work is pending, following the sequential reading of the
	// paper's workflow (the data pattern mining module feeds the
	// MetaInsight mining module). The default (false) is the best-effort
	// progressive scheduler: one merged impact-ordered queue, which lets
	// augmented-query prefetches also serve upcoming data-pattern units —
	// strictly fewer executed queries, at the price of deviating from the
	// paper's two-module accounting (see the Figure 7 experiment).
	PatternsFirst bool
	// Checkpoint, when set, makes the run crash-safe: the dispatcher appends
	// one durable journal record per committed unit and writes an atomic
	// snapshot every Checkpoint.Every commits (see internal/checkpoint and
	// DESIGN.md §7). With Resume set, the run restores the directory's latest
	// valid state first and continues bit-identically to an uninterrupted
	// run.
	Checkpoint *CheckpointSpec
	// HaltAfterCommits, when positive, hard-stops the dispatcher after that
	// many unit commits without writing a final snapshot — a deterministic
	// stand-in for kill -9 used by the kill-and-resume tests and the CI
	// smoke arm. Zero (the default) never halts.
	HaltAfterCommits int64
}

// CheckpointSpec configures crash-safety for one run.
type CheckpointSpec struct {
	// Dir is the checkpoint directory (created if missing).
	Dir string
	// Every is the snapshot cadence in unit commits; <= 0 defaults to 256.
	// The journal bounds replay work between snapshots, so Every trades
	// snapshot I/O against resume time, never correctness.
	Every int64
	// Resume restores the run from Dir instead of starting fresh. The
	// directory's configuration fingerprint must match this run's
	// configuration (ErrCheckpointMismatch otherwise).
	Resume bool
}

// DefaultConfig mirrors the paper's configuration: depth-3 subspaces,
// 8 workers, priority queues, both prunings, τ = 0.5 scoring.
func DefaultConfig() Config {
	return Config{
		Score:                   core.DefaultScoreParams(),
		Pattern:                 pattern.DefaultConfig(),
		MaxSubspaceFilters:      3,
		MaxBreakdownCardinality: 50,
		MinImpact:               0.01,
		MinSubspaceImpact:       0.005,
		Workers:                 8,
		UsePriorityQueues:       true,
		EnablePruning1:          true,
		EnablePruning2:          true,
		EnableBoundPruning:      true,
		Budget:                  Unlimited{},
		DegradedThreshold:       0.1,
	}
}

// ErrDegraded is reported (wrapped, via Result.Err) when a run's query
// failure rate exceeded Config.DegradedThreshold. The result still carries
// every MetaInsight committed from the queries that did succeed; the error
// marks the output as best-effort rather than complete.
var ErrDegraded = errors.New("miner: degraded result: query failure rate exceeded threshold")

// Stats aggregates counters from one mining run. All counters reflect
// committed compute units only and are identical for any Workers value.
type Stats struct {
	ExpandUnits      int64 // subspace expansions processed
	DataPatternUnits int64 // data-pattern compute units processed
	MetaInsightUnits int64 // MetaInsight compute units processed
	EmittedMIUnits   int64 // MetaInsight compute units emitted
	PatternsFound    int64 // valid (scope, type) basic data patterns
	Pruned1          int64 // HDP evaluations cut short by Pruning 1
	Pruned2          int64 // MetaInsight units discarded by Pruning 2
	// SStarCut counts MetaInsight compute units cut by S*-bounded early
	// termination (Config.TopK): their score upper bound could not beat the
	// K-th best committed score, so they were dropped without evaluation —
	// no queries, no budget, no MetaInsightUnits increment.
	SStarCut int64
	// BoundSkips counts subspace-extension candidates cut by the impact-sum
	// bounds (Config.EnableBoundPruning) before their root-impact query was
	// issued; BoundScanSkips counts frontier expansion scans skipped because
	// the dimension's heaviest value could not reach MinSubspaceImpact. Both
	// cuts are result-identical to scan-then-prune, so these counters trade
	// one-for-one against queries, Pruned2 discards and empty child lists —
	// never against mined MetaInsights.
	BoundSkips       int64
	BoundScanSkips   int64
	PrefetchFailures int64 // augmented prefetches that fell back to basic queries
	// FailedUnits counts queries that permanently failed (injected permanent
	// faults, exhausted retries, deadline overruns, or real substrate
	// errors); each is skipped-but-accounted and the run continues.
	FailedUnits int64
	// Retries counts failed attempts that were retried (both those that
	// eventually succeeded and those that exhausted their attempt budget).
	Retries int64
	// BreakerTrips counts circuit-breaker open transitions.
	BreakerTrips int64
	// SpeculativeReissues counts backup shard scans issued by the sharded
	// substrate's straggler mitigation. Like every fault counter it is
	// replayed canonically: the accounting re-resolves each executed scan's
	// per-shard fates from its fingerprint in commit order, so the count is
	// worker-count-invariant (0 when execution is unsharded or fault-free).
	SpeculativeReissues int64
	// ShardRetries counts per-shard transient-fault retry attempts under
	// sharded execution, accounted like SpeculativeReissues. They are kept
	// separate from Retries, which counts the engine-level injector's
	// retries.
	ShardRetries int64
	// PanickedUnits counts compute units whose evaluation panicked; each was
	// recovered on its worker and committed as failed-and-accounted (see
	// EvUnitPanic) instead of crashing the run. Panics are pure functions of
	// the unit and the data, so the count is worker-count-invariant.
	PanickedUnits int64
	// Evictions counts entries evicted from the byte-bounded caches, per the
	// canonical commit-order simulation (0 when the caches are unbounded).
	Evictions int64
	// ShortSeriesSkips counts (scope, measure) series skipped for having
	// fewer than 3 points — expected data sparsity, not an error.
	ShortSeriesSkips int64
	// ExtractErrors counts series extractions that failed structurally
	// (missing measure column), previously conflated with short series.
	ExtractErrors    int64
	ExecutedQueries  int64
	AugmentedQueries int64
	CacheServed      int64
	CostUsed         float64
	// CheckpointWrites counts durable snapshots written, cumulatively across
	// a resumed run's lifetimes (a run resumed once and finishing with N
	// total snapshots reports N, exactly like the uninterrupted run).
	CheckpointWrites int64
	// ResumedUnits is the commit index this run restored from its checkpoint
	// directory (snapshot commits + replayed journal records); 0 for a fresh
	// run. It is the one Stats field that legitimately differs between an
	// uninterrupted run and a killed-and-resumed one.
	ResumedUnits int64
	// Cancelled reports that the run stopped early because its context was
	// cancelled; the result holds the best-so-far MetaInsights committed up
	// to the cancellation point.
	Cancelled         bool
	QueryCacheStats   cache.Stats
	PatternCacheStats cache.Stats
}

// Result is the outcome of a mining run: all qualified MetaInsight
// candidates (deduplicated by identity key, sorted by score descending) and
// run statistics. Candidates feed the ranking stage (Section 4.3).
type Result struct {
	MetaInsights []*core.MetaInsight
	Stats        Stats
	// Err is non-nil when the run degraded: the query failure rate exceeded
	// Config.DegradedThreshold (errors.Is(Err, ErrDegraded)). MetaInsights
	// and Stats are still valid best-effort output.
	Err error
}

// Keys returns the identity keys of the mined MetaInsights, the set the
// precision metric of Definition 5.1 intersects.
func (r *Result) Keys() map[string]bool {
	keys := make(map[string]bool, len(r.MetaInsights))
	for _, mi := range r.MetaInsights {
		keys[mi.Key()] = true
	}
	return keys
}

// Miner drives one mining run over an engine.
type Miner struct {
	eng *engine.Engine
	cfg Config

	pcache *cache.PatternCache[*pattern.ScopeEvaluation]

	// stopping is set once the dispatcher stops committing (budget exhausted
	// or work drained); workers abort promptly, and their output is
	// discarded, never committed.
	stopping atomic.Bool

	// Dispatcher-owned state: written only by Run's dispatcher goroutine,
	// in commit order. No lock needed.
	results map[string]*core.MetaInsight
	seenMI  map[string]bool
	stats   Stats
	seq     int64
	acct    *accounting
	// topScores holds the scores of the best min(TopK, committed) results,
	// sorted descending — the termination threshold of Config.TopK. Derived
	// from results, so a snapshot restore rebuilds it instead of saving it.
	topScores []float64
	// commitIndex counts unit commits across the run's whole lifetime
	// (snapshot base + replayed + live); the checkpoint journal and snapshot
	// cadence key off it.
	commitIndex int64
	// ckErr records the first checkpoint I/O failure; the run stops (its
	// determinism guarantee would otherwise silently lapse) and the error is
	// joined into Result.Err.
	ckErr error
}

// New creates a Miner. The zero-value parts of cfg are filled with defaults.
func New(eng *engine.Engine, cfg Config) *Miner {
	def := DefaultConfig()
	cfg.Score = cfg.Score.WithDefaults()
	if cfg.Pattern.Alpha == 0 {
		custom := cfg.Pattern.Custom
		cfg.Pattern = def.Pattern
		cfg.Pattern.Custom = custom
	}
	if cfg.MaxSubspaceFilters == 0 {
		cfg.MaxSubspaceFilters = def.MaxSubspaceFilters
	}
	if cfg.MaxBreakdownCardinality == 0 {
		cfg.MaxBreakdownCardinality = def.MaxBreakdownCardinality
	}
	if cfg.MinImpact == 0 {
		cfg.MinImpact = def.MinImpact
	}
	if cfg.MinSubspaceImpact == 0 {
		cfg.MinSubspaceImpact = def.MinSubspaceImpact
	}
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.Budget == nil {
		cfg.Budget = Unlimited{}
	}
	if cfg.DegradedThreshold == 0 {
		cfg.DegradedThreshold = def.DegradedThreshold
	}
	if cfg.PatternCache == nil {
		cfg.PatternCache = cache.NewPatternCache[*pattern.ScopeEvaluation](true)
	}
	return &Miner{
		eng:     eng,
		cfg:     cfg,
		pcache:  cfg.PatternCache,
		results: make(map[string]*core.MetaInsight),
		seenMI:  make(map[string]bool),
	}
}

// completion is the output of one speculatively executed compute unit,
// applied by the dispatcher if and when the unit commits.
type completion struct {
	unit     *workUnit
	produced []*workUnit // children; kindMetaInsight entries are candidates
	events   []usageEvent
	delta    statDelta
	mi       *core.MetaInsight // non-nil when a kindMetaInsight unit qualified
	// panicked marks a unit whose process call panicked; panicVal carries the
	// rendered panic value. The unit commits as failed-and-accounted: no
	// events, no children, no MetaInsight.
	panicked bool
	panicVal string
	// cut marks a unit S*-terminated at dispatch time without execution; the
	// commit path re-derives the same verdict for units that did execute (the
	// K-th best score is monotone, so a dispatch-time cut never un-cuts).
	cut bool
}

// specEntry tracks one dispatched-but-uncommitted unit.
type specEntry struct {
	unit *workUnit
	comp *completion // nil while the unit is in flight
}

// Run executes the mining procedure and returns all discovered MetaInsights.
func (m *Miner) Run() *Result { return m.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the context is checked at
// every unit-commit boundary (the same whole-unit granularity as budget
// checks), so a cancelled run stops promptly, never tears a commit in half,
// and returns the best-so-far results with Stats.Cancelled set.
func (m *Miner) RunContext(ctx context.Context) *Result {
	o := m.cfg.Observer
	initStart := time.Now()
	patternQ := m.newQueue()
	miQ := patternQ
	if m.cfg.PatternsFirst {
		miQ = m.newQueue()
	}

	m.acct = newAccounting(m.eng, m.pcache, m.cfg.Observer)

	// stopped is set when a resume's replay was cancelled mid-way: the
	// restored state is checkpointed again and returned without re-entering
	// the mining loop.
	var ck *ckptRunner
	stopped := false
	if cs := m.cfg.Checkpoint; cs != nil {
		var err error
		ck, stopped, err = m.initCheckpoint(ctx, cs, patternQ, miQ)
		if err != nil {
			return &Result{Stats: m.stats, Err: err}
		}
		defer ck.close()
	} else {
		m.pushRoot(patternQ)
	}

	workCh := make(chan *workUnit)
	doneCh := make(chan *completion)
	var wg sync.WaitGroup
	for i := 0; i < m.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range workCh {
				if o != nil {
					// Worker-side phase accounting is atomic-only and
					// therefore inert; totals are CPU time across workers.
					t0 := time.Now()
					c := m.safeProcess(u)
					o.Phase(u.kind.phase(), time.Since(t0))
					doneCh <- c
					continue
				}
				doneCh <- m.safeProcess(u)
			}
		}()
	}
	o.Phase(obs.PhaseInit, time.Since(initStart))

	// spec holds dispatched-but-uncommitted units in dispatch order;
	// inflight counts those still being processed. Speculation is bounded so
	// one slow canonical-head unit cannot pile up unbounded completed work.
	var spec []*specEntry
	inflight := 0
	patternSpec := 0 // spec entries on the pattern side (non-MetaInsight)
	specCap := 8 * m.cfg.Workers

	// bestSpec returns the canonically-first spec entry, optionally
	// restricted to one side.
	bestSpec := func(side unitKind, restrict bool) *specEntry {
		var best *specEntry
		for _, e := range spec {
			if restrict && (e.unit.kind == kindMetaInsight) != (side == kindMetaInsight) {
				continue
			}
			if best == nil || m.canonicalBefore(e.unit, best.unit) {
				best = e
			}
		}
		return best
	}
	firstOf := func(ready *workUnit, e *specEntry) (*workUnit, *specEntry) {
		if e == nil {
			return ready, nil
		}
		if ready == nil || m.canonicalBefore(e.unit, ready) {
			return e.unit, e
		}
		return ready, nil
	}
	// canonicalNext returns the unit a single-worker run would process next
	// given the committed state, and its spec entry if it has already been
	// dispatched. Under PatternsFirst, any outstanding pattern-side unit
	// precedes every MetaInsight unit (the pattern side can still refill).
	canonicalNext := func() (*workUnit, *specEntry) {
		if m.cfg.PatternsFirst {
			if u, e := firstOf(patternQ.Peek(), bestSpec(kindDataPattern, true)); u != nil {
				return u, e
			}
			return firstOf(miQ.Peek(), bestSpec(kindMetaInsight, true))
		}
		return firstOf(patternQ.Peek(), bestSpec(0, false))
	}
	// nextReady returns the queue to dispatch from, mirroring the canonical
	// preference: pattern work first, and under PatternsFirst no MetaInsight
	// unit is dispatched while pattern-side work is outstanding (it cannot
	// commit before that work anyway).
	nextReady := func() workQueue {
		if patternQ.Len() > 0 {
			return patternQ
		}
		if m.cfg.PatternsFirst && patternSpec > 0 {
			return nil
		}
		if miQ.Len() > 0 {
			return miQ
		}
		return nil
	}
	remove := func(e *specEntry) {
		for i, x := range spec {
			if x == e {
				spec = append(spec[:i], spec[i+1:]...)
				break
			}
		}
		if e.unit.kind != kindMetaInsight {
			patternSpec--
		}
	}
	receive := func(c *completion) {
		for _, e := range spec {
			if e.unit == c.unit {
				e.comp = c
				break
			}
		}
		inflight--
	}

	halted := false
	for !stopped {
		if ctx.Err() != nil {
			m.stats.Cancelled = true
			o.Event(obs.EvCancel, "", "context cancelled; returning best-so-far results", 0)
			break
		}
		if m.cfg.Budget.Exceeded() {
			o.Event(obs.EvBudgetStop, "", fmt.Sprintf("cost=%.3f", m.acct.cost), 0)
			break
		}
		next, entry := canonicalNext()
		if next == nil && inflight == 0 {
			break
		}
		if entry != nil && entry.comp != nil {
			m.commit(entry.comp, miQ, patternQ)
			remove(entry)
			m.commitIndex++
			if ck != nil {
				if err := ck.onCommit(m, entry.comp, patternQ, miQ, spec); err != nil {
					m.ckErr = err
					break
				}
			}
			if m.cfg.HaltAfterCommits > 0 && m.commitIndex >= m.cfg.HaltAfterCommits {
				halted = true
				break
			}
			continue
		}
		if inflight < m.cfg.Workers && len(spec) < specCap {
			if q := nextReady(); q != nil {
				u := q.Peek()
				if m.sstarCut(u) {
					// Dispatch-time pre-filter: the K-th best score only
					// grows, so the cut still holds at the unit's canonical
					// commit slot. Skip the worker round-trip entirely and
					// let commit record the cut in its slot.
					q.Pop()
					spec = append(spec, &specEntry{unit: u, comp: &completion{unit: u, cut: true}})
					continue
				}
				select {
				case workCh <- u:
					q.Pop()
					spec = append(spec, &specEntry{unit: u})
					if u.kind != kindMetaInsight {
						patternSpec++
					}
					inflight++
					continue
				case c := <-doneCh:
					receive(c)
					continue
				}
			}
		}
		if inflight == 0 {
			break
		}
		receive(<-doneCh)
	}

	m.stopping.Store(true)
	close(workCh)
	// Drain remaining in-flight units; their output is discarded (the
	// budget is spent), so it is never accounted.
	go func() {
		wg.Wait()
		close(doneCh)
	}()
	for range doneCh {
	}

	// Final snapshot: budget stop, drained work, cancellation and a replay
	// cancelled mid-resume all leave a resumable (or, when the run simply
	// finished, re-loadable) directory behind. A HaltAfterCommits hard-stop
	// deliberately skips it — that is the simulated crash — and after a
	// checkpoint I/O failure the directory is not trustworthy to advance.
	if ck != nil && !halted && m.ckErr == nil {
		if err := ck.writeFinalSnapshot(m, patternQ, miQ, spec); err != nil {
			m.ckErr = err
		}
	}

	return m.finish()
}

// sstarCut reports whether a MetaInsight unit provably cannot enter the
// current top K: its score upper bound does not exceed the K-th best
// committed score (ties lose — an equal-scoring insight cannot displace one
// already committed). The threshold is monotone nondecreasing over commits,
// so a verdict reached at dispatch time still holds at the unit's canonical
// commit slot, where the decision is authoritative.
func (m *Miner) sstarCut(u *workUnit) bool {
	if m.cfg.TopK <= 0 || u.kind != kindMetaInsight || len(m.topScores) < m.cfg.TopK {
		return false
	}
	ub := core.ScoreUpperBound(u.impactHDS, len(u.hds.Scopes), m.cfg.Score)
	return ub <= m.topScores[m.cfg.TopK-1]
}

// recordTopScore folds a newly stored result's score into the sorted top-K
// threshold list (no-op when S* termination is off).
func (m *Miner) recordTopScore(s float64) {
	if m.cfg.TopK <= 0 {
		return
	}
	i := sort.Search(len(m.topScores), func(i int) bool { return m.topScores[i] < s })
	if i >= m.cfg.TopK {
		return
	}
	m.topScores = append(m.topScores, 0)
	copy(m.topScores[i+1:], m.topScores[i:])
	m.topScores[i] = s
	if len(m.topScores) > m.cfg.TopK {
		m.topScores = m.topScores[:m.cfg.TopK]
	}
}

// rebuildTopScores rederives the termination threshold from the committed
// results — the snapshot-restore path, where topScores is not serialized.
func (m *Miner) rebuildTopScores() {
	m.topScores = m.topScores[:0]
	for _, mi := range m.results {
		m.recordTopScore(mi.Score)
	}
}

// canonicalBefore reports whether a precedes b in the canonical processing
// order: priority descending with seq as tie-breaker under priority queues,
// emission (seq) order under FIFO queues. It matches the queues' ordering.
func (m *Miner) canonicalBefore(a, b *workUnit) bool {
	if m.cfg.UsePriorityQueues && a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// commitCostBounds buckets the per-commit replayed cost (deterministic cost
// units, so the histogram itself is worker-count-invariant).
var commitCostBounds = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250}

// commit applies one completed unit in canonical order: replay its usage
// events against the simulated cache (charging the meter), fold its
// counters, filter and enqueue its children, and record its MetaInsight.
// All observability recording here runs on the dispatcher goroutine, so the
// trace reads as the deterministic canonical execution.
func (m *Miner) commit(c *completion, miQ, patternQ workQueue) {
	o := m.cfg.Observer
	traced := o.Tracing()
	var t0 time.Time
	var costBefore float64
	if o != nil {
		t0 = time.Now()
		costBefore = m.acct.cost
	}
	if traced {
		o.Event(obs.EvPop, describeUnit(c.unit), c.unit.kind.String(), 0)
	}
	if c.cut || m.sstarCut(c.unit) {
		// S*-terminated at the canonical slot. The unit is dropped wholesale:
		// no usage replay, no budget charge, no kind counter — a single-worker
		// run would have cut it before execution, so even a speculative
		// evaluation (or panic) on some worker is discarded, keeping the
		// commit stream worker-count-invariant.
		c.cut, c.panicked = true, false
		c.produced, c.events, c.mi = nil, nil, nil
		m.stats.SStarCut++
		if o != nil {
			o.Count("miner.sstar_cut", 1)
			if traced {
				o.Event(obs.EvPrune, describeUnit(c.unit), "sstar", 0)
			}
			o.Observe("miner.commit.cost_units", commitCostBounds, 0)
			o.Phase(obs.PhaseCommit, time.Since(t0))
		}
		return
	}
	if c.panicked {
		// Failed-and-accounted: the unit's kind counter still advances (it
		// was processed), but it contributes no usage, children or result.
		m.stats.ExpandUnits += c.delta.expandUnits
		m.stats.DataPatternUnits += c.delta.dataPatternUnits
		m.stats.MetaInsightUnits += c.delta.metaInsightUnits
		m.stats.PanickedUnits++
		if o != nil {
			o.Count("miner.units.expand", c.delta.expandUnits)
			o.Count("miner.units.datapattern", c.delta.dataPatternUnits)
			o.Count("miner.units.metainsight", c.delta.metaInsightUnits)
			o.Count("miner.units.panicked", 1)
			if traced {
				o.Event(obs.EvUnitPanic, describeUnit(c.unit), c.panicVal, 0)
			}
			o.Observe("miner.commit.cost_units", commitCostBounds, 0)
			o.Phase(obs.PhaseCommit, time.Since(t0))
		}
		return
	}
	for _, ev := range c.events {
		m.acct.apply(ev)
	}
	m.stats.ExpandUnits += c.delta.expandUnits
	m.stats.DataPatternUnits += c.delta.dataPatternUnits
	m.stats.MetaInsightUnits += c.delta.metaInsightUnits
	m.stats.PatternsFound += c.delta.patternsFound
	m.stats.Pruned1 += c.delta.pruned1
	m.stats.BoundSkips += c.delta.boundSkips
	m.stats.BoundScanSkips += c.delta.boundScanSkips
	m.stats.ShortSeriesSkips += c.delta.shortSeriesSkips
	m.stats.ExtractErrors += c.delta.extractErrors
	if o != nil {
		o.Count("miner.units.expand", c.delta.expandUnits)
		o.Count("miner.units.datapattern", c.delta.dataPatternUnits)
		o.Count("miner.units.metainsight", c.delta.metaInsightUnits)
		o.Count("miner.patterns.found", c.delta.patternsFound)
		o.Count("miner.pruned1", c.delta.pruned1)
		o.Count("miner.bound_skips", c.delta.boundSkips)
		o.Count("miner.bound_scan_skips", c.delta.boundScanSkips)
		if traced && c.delta.pruned1 > 0 {
			o.Event(obs.EvPrune, describeUnit(c.unit), "pruning1", 0)
		}
	}

	for _, u := range c.produced {
		if u.kind == kindMetaInsight {
			// Identity dedup and Pruning 2 are commit-time decisions so the
			// first unit in canonical order wins, independent of which
			// worker raced where.
			if m.seenMI[u.miKey] {
				o.Count("miner.dedup", 1)
				if traced {
					o.Event(obs.EvDedup, u.miKey, "", 0)
				}
				continue
			}
			m.seenMI[u.miKey] = true
			if m.cfg.EnablePruning2 && minClamp(u.impactHDS) < m.cfg.MinImpact {
				m.stats.Pruned2++
				o.Count("miner.pruned2", 1)
				if traced {
					o.Event(obs.EvPrune, u.miKey, "pruning2", 0)
				}
				continue
			}
			if m.sstarCut(u) {
				// Emission-time S* cut: the candidate is dead on arrival
				// against the current top K, so it never enters the queue.
				m.stats.SStarCut++
				o.Count("miner.sstar_cut", 1)
				if traced {
					o.Event(obs.EvPrune, u.miKey, "sstar", 0)
				}
				continue
			}
			m.stats.EmittedMIUnits++
			m.seq++
			u.seq = m.seq
			miQ.Push(u)
			continue
		}
		m.seq++
		u.seq = m.seq
		patternQ.Push(u)
	}

	if c.mi != nil {
		if _, exists := m.results[c.mi.Key()]; !exists {
			m.results[c.mi.Key()] = c.mi
			m.recordTopScore(c.mi.Score)
			o.Count("miner.stored", 1)
			if traced {
				o.Event(obs.EvStore, c.mi.Key(), fmt.Sprintf("score=%.6f", c.mi.Score), 0)
			}
			if m.cfg.OnMetaInsight != nil {
				m.cfg.OnMetaInsight(c.mi)
			}
		}
	}

	if o != nil {
		o.Observe("miner.commit.cost_units", commitCostBounds, m.acct.cost-costBefore)
		o.Phase(obs.PhaseCommit, time.Since(t0))
	}
}

// describeUnit renders a compact, deterministic trace label for a unit.
func describeUnit(u *workUnit) string {
	switch u.kind {
	case kindExpand:
		return u.subspace.Key()
	case kindDataPattern:
		return u.subspace.Key() + "|" + u.breakdown
	case kindMetaInsight:
		return u.miKey
	default:
		return "?"
	}
}

func (m *Miner) newQueue() workQueue {
	if m.cfg.UsePriorityQueues {
		return newPriorityQueue()
	}
	return newFIFOQueue()
}

// pushRoot seeds the search with the empty-subspace expansion unit.
func (m *Miner) pushRoot(patternQ workQueue) {
	patternQ.Push(&workUnit{
		kind:      kindExpand,
		priority:  1,
		subspace:  model.EmptySubspace,
		impact:    1,
		maxDimIdx: -1,
	})
}

func (m *Miner) finish() *Result {
	out := make([]*core.MetaInsight, 0, len(m.results))
	for _, mi := range m.results {
		out = append(out, mi)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key() < out[j].Key()
	})
	meter := m.eng.Meter()
	m.stats.ExecutedQueries = meter.ExecutedQueries()
	m.stats.AugmentedQueries = meter.AugmentedQueries()
	m.stats.CacheServed = meter.ServedQueries()
	m.stats.CostUsed = meter.Cost()
	m.stats.PrefetchFailures = m.acct.prefetchFailures
	m.stats.FailedUnits = m.acct.failedUnits
	m.stats.Retries = m.acct.retries
	m.stats.BreakerTrips = m.acct.breakerTrips
	m.stats.SpeculativeReissues = m.acct.specReissues
	m.stats.ShardRetries = m.acct.shardRetries
	m.stats.Evictions = m.acct.evictions
	m.stats.QueryCacheStats = m.acct.queryStats()
	m.stats.PatternCacheStats = m.acct.patternStats()
	var runErr error
	if m.stats.FailedUnits > 0 {
		attempted := m.stats.ExecutedQueries + m.stats.CacheServed + m.stats.FailedUnits
		rate := float64(m.stats.FailedUnits) / float64(attempted)
		if rate > m.cfg.DegradedThreshold {
			runErr = fmt.Errorf("%w: %d of %d queries failed (%.1f%% > %.1f%%)",
				ErrDegraded, m.stats.FailedUnits, attempted,
				100*rate, 100*m.cfg.DegradedThreshold)
		}
	}
	if m.ckErr != nil {
		// errors.Join keeps both matchable with errors.Is; the MetaInsights
		// remain valid best-effort output either way.
		runErr = errors.Join(m.ckErr, runErr)
	}
	if o := m.cfg.Observer; o != nil {
		// End-of-run gauges carry the canonical (worker-count-invariant)
		// accounting; the live counters above track progressive commit-side
		// progress and the engine.physical.* counters real machine work.
		o.SetGauge("miner.cost_used", m.stats.CostUsed)
		o.SetGauge("miner.queries.executed", float64(m.stats.ExecutedQueries))
		o.SetGauge("miner.queries.augmented", float64(m.stats.AugmentedQueries))
		o.SetGauge("miner.queries.cache_served", float64(m.stats.CacheServed))
		o.SetGauge("miner.prefetch.failures", float64(m.stats.PrefetchFailures))
		o.SetGauge("miner.queries.failed", float64(m.stats.FailedUnits))
		o.SetGauge("miner.queries.retries", float64(m.stats.Retries))
		o.SetGauge("miner.breaker.trips", float64(m.stats.BreakerTrips))
		o.SetGauge("miner.shard.speculative_reissues", float64(m.stats.SpeculativeReissues))
		o.SetGauge("miner.shard.retries", float64(m.stats.ShardRetries))
		o.SetGauge("miner.cache.evictions", float64(m.stats.Evictions))
		o.SetGauge("miner.qcache.hit_rate", m.stats.QueryCacheStats.HitRate())
		o.SetGauge("miner.qcache.entries", float64(m.stats.QueryCacheStats.Entries))
		o.SetGauge("miner.qcache.bytes", float64(m.stats.QueryCacheStats.Bytes))
		o.SetGauge("miner.pcache.hit_rate", m.stats.PatternCacheStats.HitRate())
		o.SetGauge("miner.pcache.entries", float64(m.stats.PatternCacheStats.Entries))
	}
	return &Result{MetaInsights: out, Stats: m.stats, Err: runErr}
}

// safeProcess runs process under a recover barrier: a panicking pattern
// evaluator (e.g. an unregistered custom type) takes down one unit, not the
// process. The recovered completion is fresh — whatever partial events or
// children process accumulated are discarded, so the commit is a pure
// function of the unit — and carries only the kind counter plus the panic
// value. Panics are deterministic (pure functions of unit + data; the
// single-flight groups propagate the leader's panic to every follower), so
// the same units panic at every worker count.
func (m *Miner) safeProcess(u *workUnit) (c *completion) {
	defer func() {
		if r := recover(); r != nil {
			c = &completion{unit: u, panicked: true, panicVal: panicLabel(r)}
			switch u.kind {
			case kindExpand:
				c.delta.expandUnits++
			case kindDataPattern:
				c.delta.dataPatternUnits++
			case kindMetaInsight:
				c.delta.metaInsightUnits++
			}
		}
	}()
	return m.process(u)
}

// panicLabel renders a panic value as a bounded trace detail. Values that
// stringify pointers are not stable across processes; tests and evaluators
// should panic with strings or errors when the label matters.
func panicLabel(r any) string {
	s := fmt.Sprint(r)
	const maxLen = 256
	if len(s) > maxLen {
		s = s[:maxLen] + "..."
	}
	return s
}

// process executes one compute unit speculatively: pure data work plus a
// recording of the usage it performed. It runs on a worker goroutine and
// touches no dispatcher-owned state.
func (m *Miner) process(u *workUnit) *completion {
	c := &completion{unit: u}
	rec := &recorder{}
	switch u.kind {
	case kindExpand:
		c.delta.expandUnits++
		c.produced = m.processExpand(u, rec, &c.delta)
	case kindDataPattern:
		c.delta.dataPatternUnits++
		c.produced = m.processDataPattern(u, rec, &c.delta)
	case kindMetaInsight:
		c.delta.metaInsightUnits++
		c.mi = m.processMetaInsight(u, rec, &c.delta)
	default:
		panic("miner: unknown unit kind")
	}
	c.events = rec.events
	return c
}

// processExpand emits the data-pattern compute units for a subspace and, if
// the subspace is not at maximum depth, its child subspaces with their
// impacts (computed from one group-by unit per expandable dimension — the
// same units the data-pattern module will need, so the scans are shared
// through the query cache).
func (m *Miner) processExpand(u *workUnit, rec *recorder, delta *statDelta) []*workUnit {
	tab := m.eng.Table()
	var produced []*workUnit

	for _, dim := range tab.DimensionNames() {
		if u.subspace.Has(dim) {
			continue
		}
		col := tab.Dimension(dim)
		if col.Cardinality() < 3 {
			continue // too few groups for any pattern criterion
		}
		if m.cfg.MaxBreakdownCardinality > 0 && col.Cardinality() > m.cfg.MaxBreakdownCardinality {
			continue
		}
		produced = append(produced, &workUnit{
			kind:      kindDataPattern,
			priority:  u.impact,
			subspace:  u.subspace,
			impact:    u.impact,
			breakdown: dim,
		})
	}

	if u.subspace.Len() >= m.cfg.MaxSubspaceFilters {
		return produced
	}
	dims := tab.Dimensions()
	for idx := u.maxDimIdx + 1; idx < len(dims); idx++ {
		if m.stopping.Load() {
			break
		}
		dim := dims[idx]
		if u.subspace.Has(dim.Name) {
			continue
		}
		if m.cfg.MaxBreakdownCardinality > 0 && dim.Cardinality() > m.cfg.MaxBreakdownCardinality {
			continue
		}
		if m.cfg.EnableBoundPruning && m.cfg.MinSubspaceImpact > 0 &&
			m.eng.DimMaxImpactShare(dim.Name) < m.cfg.MinSubspaceImpact {
			// Even the dimension's heaviest value cannot reach the frontier
			// threshold, so every child this scan could produce would be
			// filtered below: skip the group-by entirely.
			delta.boundScanSkips++
			continue
		}
		unit, err := m.eng.MaterializeUnit(u.subspace, dim.Name)
		if err != nil {
			// Skipped-but-accounted: the child subspaces behind this group-by
			// are not explored, but the failed query is charged canonically.
			rec.recordUnitFail(cache.UnitKey{Subspace: u.subspace.Key(), Breakdown: dim.Name},
				m.eng.ScanCost(u.subspace))
			continue
		}
		rec.recordUnit(unit, m.eng.ScanCost(u.subspace))
		childImpacts := m.unitImpacts(unit)
		for gi, v := range unit.GroupKeys {
			imp := childImpacts[gi]
			if imp < m.cfg.MinSubspaceImpact {
				continue
			}
			produced = append(produced, &workUnit{
				kind:      kindExpand,
				priority:  imp,
				subspace:  u.subspace.With(dim.Name, v),
				impact:    imp,
				maxDimIdx: idx,
			})
		}
	}
	return produced
}

// unitImpacts returns the impact of each group's child subspace, using the
// additive impact measure's per-group values from the unit.
func (m *Miner) unitImpacts(u *cache.Unit) []float64 {
	im := m.eng.ImpactMeasure()
	total := m.eng.TotalImpact()
	out := make([]float64, len(u.GroupKeys))
	var src []float64
	if im.Agg == model.AggCount {
		src = u.Counts
	} else {
		src = u.Sums[im.Column]
	}
	for i, v := range src {
		out[i] = v / total
	}
	return out
}

// processDataPattern evaluates every measure and pattern type on one
// (subspace, breakdown) scope family and emits MetaInsight compute-unit
// candidates for each discovered basic data pattern (pattern-guided mining,
// Figure 4). Candidate dedup and Pruning 2 happen at commit time.
func (m *Miner) processDataPattern(u *workUnit, rec *recorder, delta *statDelta) []*workUnit {
	tab := m.eng.Table()
	bcol := tab.Dimension(u.breakdown)
	temporal := bcol.Kind == model.KindTemporal

	// One unit fetch serves every measure of the scope family (the cache
	// unit spans all measures, Figure 5).
	unit, err := m.eng.MaterializeUnit(u.subspace, u.breakdown)
	if err != nil {
		rec.recordUnitFail(cache.UnitKey{Subspace: u.subspace.Key(), Breakdown: u.breakdown},
			m.eng.ScanCost(u.subspace))
		return nil
	}
	rec.recordUnit(unit, m.eng.ScanCost(u.subspace))
	var produced []*workUnit
	for _, meas := range m.eng.Measures() {
		ds := model.DataScope{Subspace: u.subspace, Breakdown: u.breakdown, Measure: meas}
		series, err := engine.Extract(unit, ds)
		if err != nil {
			// Structural extraction failure (e.g. unknown measure column) —
			// counted separately from ordinary data sparsity.
			delta.extractErrors++
			continue
		}
		if series.Len() < 3 {
			delta.shortSeriesSkips++
			continue
		}
		se := m.evaluateScope(rec, ds, series, temporal)
		for _, t := range se.ValidTypes() {
			delta.patternsFound++
			produced = append(produced, m.emitMetaInsightUnits(rec, ds, t, u.impact, delta)...)
		}
	}
	return produced
}

// evaluateScope runs (or recalls) the all-types evaluation of one data scope
// through the pattern cache, recording the evaluation for canonical
// accounting. Concurrent evaluations of the same scope single-flight.
func (m *Miner) evaluateScope(rec *recorder, ds model.DataScope, series *engine.Series, temporal bool) *pattern.ScopeEvaluation {
	key := ds.Key()
	se := m.pcache.Materialize(key, func() *pattern.ScopeEvaluation {
		return pattern.EvaluateAllScoped(ds, series.Keys, series.Values, temporal, m.cfg.Pattern)
	})
	// Recorded after materialization so a byte-bounded pattern cache can
	// carry the evaluation's size into the commit-order eviction simulation
	// (SizeOf is 0 — and unused — when the cache is unbounded).
	rec.recordEval(key, m.pcache.SizeOf(key, se))
	return se
}

// emitMetaInsightUnits applies the three extension strategies to a
// discovered basic data pattern dp = (ds, t, ·) and returns one MetaInsight
// compute-unit candidate per resulting HDS. Deduplication across anchors and
// Pruning 2 are applied by the dispatcher at commit time, so candidate
// filtering is deterministic in commit order.
func (m *Miner) emitMetaInsightUnits(rec *recorder, ds model.DataScope, t pattern.Type, impactS float64, delta *statDelta) []*workUnit {
	tab := m.eng.Table()
	var produced []*workUnit

	emit := func(hds core.HDS, impactHDS float64) {
		if len(hds.Scopes) < 2 {
			return
		}
		produced = append(produced, &workUnit{
			kind:      kindMetaInsight,
			priority:  impactHDS,
			hds:       hds,
			ptype:     t,
			impactHDS: impactHDS,
			miKey:     hds.Key() + "|" + t.String(),
		})
	}

	// Subspace extending: one HDS per non-empty filter of ds.Subspace.
	for _, f := range ds.Subspace {
		col := tab.Dimension(f.Dim)
		if col == nil || col.Cardinality() < 2 {
			continue
		}
		hds := core.SubspaceHDS(ds, f.Dim, col.Domain())
		if m.cfg.EnableBoundPruning && m.cfg.EnablePruning2 && m.cfg.MinImpact > 0 &&
			m.eng.ImpactShareUpperBound(hds.RootSubspace()) < m.cfg.MinImpact {
			// The HDS impact (the root subspace's true impact) cannot reach
			// MinImpact, so Pruning 2 would discard this candidate at commit:
			// cut it here, before the root-impact query is ever issued.
			delta.boundSkips++
			continue
		}
		// Impact_HDS = Impact(subspace without the extended filter), by
		// additivity of the impact measure over the sibling group.
		rootImpact, probe, err := m.eng.ImpactUnmetered(hds.RootSubspace())
		if probe != nil {
			// Recorded even on failure: the replay recomputes the fallback
			// scan's fate from its fingerprint and charges the failed attempts.
			rec.recordImpact(probe)
		}
		if err != nil {
			continue
		}
		emit(hds, rootImpact)
	}

	// Measure extending.
	if ms := m.eng.Measures(); len(ms) >= 2 {
		hds := core.MeasureHDS(ds, ms)
		emit(hds, float64(len(ms))*impactS)
	}

	// Breakdown extending: only from a temporal anchor breakdown, across all
	// temporal dimensions.
	if tab.Dimension(ds.Breakdown).Kind == model.KindTemporal {
		hds := core.BreakdownHDS(ds, tab.TemporalDimensions())
		emit(hds, float64(len(hds.Scopes))*impactS)
	}
	return produced
}

func minClamp(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

// processMetaInsight evaluates one HDP and returns the resulting
// MetaInsight, if any. Subspace-extended HDSs are prefetched with one
// augmented query when the query cache is enabled; a failed prefetch falls
// back to per-sibling basic queries (counted in Stats.PrefetchFailures).
// Pruning 1 aborts the evaluation as soon as no commonness can reach τ.
func (m *Miner) processMetaInsight(u *workUnit, rec *recorder, delta *statDelta) *core.MetaInsight {
	tab := m.eng.Table()

	if u.hds.Kind == model.ExtendSubspace && m.eng.QueryCache().Enabled() {
		m.prefetchSiblings(u, rec)
	}

	n := len(u.hds.Scopes)
	patterns := make([]core.DataPattern, 0, n)
	classCounts := make(map[string]int)
	best := 0
	tau := m.cfg.Score.Tau

	for j, scope := range u.hds.Scopes {
		if m.stopping.Load() {
			return nil
		}
		if err := tab.Validate(scope); err != nil {
			continue
		}
		unit, err := m.eng.MaterializeUnit(scope.Subspace, scope.Breakdown)
		if err != nil {
			// Failed sibling query: the scope drops out of the HDP (best
			// effort) and the failure is charged canonically at commit.
			rec.recordUnitFail(cache.UnitKey{Subspace: scope.Subspace.Key(), Breakdown: scope.Breakdown},
				m.eng.ScanCost(scope.Subspace))
			continue
		}
		rec.recordUnit(unit, m.eng.ScanCost(scope.Subspace))
		series, err := engine.Extract(unit, scope)
		if err != nil {
			delta.extractErrors++
			continue
		}
		if series.Len() < 3 {
			// Empty or degenerate sibling: not part of the HDP.
			delta.shortSeriesSkips++
			continue
		}
		temporal := tab.Dimension(scope.Breakdown).Kind == model.KindTemporal
		se := m.evaluateScope(rec, scope, series, temporal)
		t, h := se.Induced(u.ptype)
		patterns = append(patterns, core.DataPattern{Scope: scope, Type: t, Highlight: h})
		if t == u.ptype {
			k := h.Key()
			classCounts[k]++
			if classCounts[k] > best {
				best = classCounts[k]
			}
		}
		if m.cfg.EnablePruning1 {
			remaining := n - j - 1
			// Even if every remaining scope joined the largest class, its
			// ratio could not exceed τ: terminate (Pruning 1). The bound
			// uses the evaluated pattern count rather than the nominal HDS
			// size, so scopes that turned out empty cannot cause a valid
			// MetaInsight to be pruned.
			if float64(best+remaining) <= tau*float64(len(patterns)+remaining) {
				delta.pruned1++
				return nil
			}
		}
	}
	if len(patterns) < 2 {
		return nil
	}
	hdp := &core.HDP{HDS: u.hds, Type: u.ptype, Patterns: patterns}
	mi, ok := core.BuildMetaInsight(hdp, u.impactHDS, m.cfg.Score)
	if !ok {
		return nil
	}
	return mi
}

// prefetchSiblings records (and, if the physical cache lacks any sibling,
// executes) the augmented-query prefetch for a subspace-extending HDS. One
// augmented scan populates the entire sibling group SG(anchor, ExtDim).
// Whether the canonical run pays for the scan is decided at commit time by
// replaying the recorded decision against the simulated cache.
func (m *Miner) prefetchSiblings(u *workUnit, rec *recorder) {
	qc := m.eng.QueryCache()
	scopes := make([]cache.UnitKey, len(u.hds.Scopes))
	// Under a byte-bounded physical cache the peek shortcut below would
	// record a sibling list shaped by timing-dependent physical evictions
	// (an entry can vanish between the check and the reconstruction), so the
	// recorded usage would vary with worker interleaving. Recording must be
	// pure: always take the scan path, whose sibling list is a function of
	// the data alone. The extra physical scans are the normal price of a
	// bounded cache; the canonical accounting is unaffected.
	allCached := qc.MaxBytes() == 0
	for i, scope := range u.hds.Scopes {
		scopes[i] = cache.UnitKey{Subspace: scope.Subspace.Key(), Breakdown: scope.Breakdown}
		if allCached {
			if _, ok := qc.Peek(scopes[i].Subspace, scopes[i].Breakdown); !ok {
				allCached = false
			}
		}
	}
	base := u.hds.Anchor.Subspace.Without(u.hds.ExtDim)
	use := &siblingUse{
		scopes: scopes,
		fp:     engine.AugmentedFingerprint(base.Key(), u.hds.Anchor.Breakdown, u.hds.ExtDim),
		cost:   m.eng.ScanCost(base),
	}
	if allCached {
		// Physically nothing to fetch; reconstruct the scan's sibling list
		// (the non-empty scope units) from the cache so the commit-time
		// replay can populate its simulation if it decides the prefetch
		// fires there.
		for _, k := range scopes {
			if unit, ok := qc.Peek(k.Subspace, k.Breakdown); ok && len(unit.GroupKeys) > 0 {
				use.siblings = append(use.siblings, unitUse{key: k, bytes: unit.ApproxBytes()})
			}
		}
	} else if units, err := m.eng.MaterializeAugmented(u.hds.Anchor, u.hds.ExtDim); err != nil {
		use.failed = true
	} else {
		for _, unit := range units {
			use.siblings = append(use.siblings, unitUse{key: unit.Key, bytes: unit.ApproxBytes()})
		}
	}
	// The scan returns a map; the replay stores siblings in recorded order,
	// which a byte-bounded simulated cache observes through its FIFO eviction
	// queue. Sort so the recorded order is a pure function of the keys.
	sort.Slice(use.siblings, func(i, j int) bool {
		a, b := use.siblings[i].key, use.siblings[j].key
		if a.Subspace != b.Subspace {
			return a.Subspace < b.Subspace
		}
		return a.Breakdown < b.Breakdown
	})
	rec.recordSiblings(use)
}
