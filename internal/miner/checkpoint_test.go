package miner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"metainsight/internal/checkpoint"
	"metainsight/internal/engine"
	"metainsight/internal/faults"
	"metainsight/internal/model"
	"metainsight/internal/obs"
	"metainsight/internal/pattern"
)

// ckRun executes one checkpointed mining pass over the planted table under a
// 5% transient-fault policy, returning the result and the deterministic
// trace projection. halt > 0 simulates a hard kill (process death) after
// that many commits; resume continues a previous pass's directory. Every
// call builds a fresh engine, meter and caches — exactly what a restarted
// process sees.
func ckRun(t *testing.T, workers int, dir string, every, halt int64, resume bool) (*Result, []traceLine) {
	t.Helper()
	ob := obs.New(obs.Options{TraceCapacity: 1 << 18})
	res := runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		meter := &engine.Meter{}
		e.Meter = meter
		e.Faults = faults.NewInjector(faults.Policy{Seed: 42, TransientRate: 0.05}, faults.RetryPolicy{})
		c.Workers = workers
		c.Observer = ob
		c.Budget = CostBudget{Meter: meter, Limit: 400}
		c.Checkpoint = &CheckpointSpec{Dir: dir, Every: every, Resume: resume}
		c.HaltAfterCommits = halt
	})
	evs := ob.Trace().Events()
	lines := make([]traceLine, 0, len(evs))
	for _, ev := range evs {
		lines = append(lines, traceLine{Kind: ev.Kind, Unit: ev.Unit, Detail: ev.Detail, Cost: ev.Cost})
	}
	return res, lines
}

// dropResumeEvents removes the one event a resumed run legitimately adds.
func dropResumeEvents(lines []traceLine) []traceLine {
	out := make([]traceLine, 0, len(lines))
	for _, l := range lines {
		if l.Kind == obs.EvCheckpointResume {
			continue
		}
		out = append(out, l)
	}
	return out
}

// normalizeStats clears the fields a resumed run legitimately reports
// differently from an uninterrupted one (ResumedUnits counts the restored
// prefix; an uninterrupted run never resumed).
func normalizeStats(s Stats) Stats {
	s.ResumedUnits = 0
	return s
}

func commitTotal(s Stats) int64 {
	return s.ExpandUnits + s.DataPatternUnits + s.MetaInsightUnits
}

func miJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res.MetaInsights)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCheckpointResumeDeterminism is the acceptance test of crash-safe
// mining: a run hard-killed after N commits and resumed from its checkpoint
// produces — at every worker count, under transient faults — the exact
// results, statistics and trace suffix of the run that was never killed.
// Kill points cover the interesting boundaries: the very first commit,
// just-before-snapshot, exactly-at-snapshot, and mid-journal-segment.
func TestCheckpointResumeDeterminism(t *testing.T) {
	const every = int64(16)

	// Reference: one uninterrupted checkpointed run per worker count. The
	// traces must be worker-count-invariant to begin with (the PR-1
	// determinism contract), so collapse them to one reference.
	refDir := t.TempDir()
	refRes, refTrace := ckRun(t, 1, filepath.Join(refDir, "w1"), every, 0, false)
	if refRes.Err != nil && !errors.Is(refRes.Err, ErrDegraded) {
		t.Fatalf("reference run failed: %v", refRes.Err)
	}
	total := commitTotal(refRes.Stats)
	if total < 2*every+2 {
		t.Fatalf("planted workload too small for the kill grid: %d commits", total)
	}
	for _, w := range []int{2, 4, 8} {
		res, tr := ckRun(t, w, filepath.Join(refDir, fmt.Sprintf("w%d", w)), every, 0, false)
		if miJSON(t, res) != miJSON(t, refRes) {
			t.Fatalf("workers=%d: uninterrupted results differ from workers=1", w)
		}
		if len(tr) != len(refTrace) {
			t.Fatalf("workers=%d: uninterrupted trace length %d != %d", w, len(tr), len(refTrace))
		}
		for i := range tr {
			if tr[i] != refTrace[i] {
				t.Fatalf("workers=%d: uninterrupted trace diverges at %d: %+v vs %+v", w, i, tr[i], refTrace[i])
			}
		}
	}

	kills := []int64{1, every - 1, every, 2 * every, every + every/2}
	// killWorkers/resumeWorkers pairs include cross-worker resumes: a W=8
	// checkpoint must resume bit-identically under W=1 and vice versa.
	pairs := [][2]int{{1, 1}, {8, 8}, {8, 1}, {1, 4}, {4, 8}, {2, 2}}

	for i, kill := range kills {
		kw, rw := pairs[i%len(pairs)][0], pairs[i%len(pairs)][1]
		t.Run(fmt.Sprintf("kill=%d_w%d_resume_w%d", kill, kw, rw), func(t *testing.T) {
			dir := t.TempDir()
			killRes, killTrace := ckRun(t, kw, dir, every, kill, false)
			if got := commitTotal(killRes.Stats); got != kill {
				t.Fatalf("killed run committed %d units, want %d", got, kill)
			}
			// The killed run's trace must be an exact prefix of the
			// uninterrupted run's.
			if len(killTrace) >= len(refTrace) {
				t.Fatalf("killed trace (%d events) not shorter than reference (%d)", len(killTrace), len(refTrace))
			}
			for j := range killTrace {
				if killTrace[j] != refTrace[j] {
					t.Fatalf("killed trace diverges from reference at %d: %+v vs %+v", j, killTrace[j], refTrace[j])
				}
			}

			resRes, resTrace := ckRun(t, rw, dir, every, 0, true)
			if resRes.Err != nil && !errors.Is(resRes.Err, ErrDegraded) {
				t.Fatalf("resumed run failed: %v", resRes.Err)
			}
			if resRes.Stats.ResumedUnits != kill {
				t.Fatalf("ResumedUnits = %d, want %d", resRes.Stats.ResumedUnits, kill)
			}
			if resRes.Stats.CheckpointWrites != refRes.Stats.CheckpointWrites {
				t.Fatalf("CheckpointWrites = %d, want %d (cumulative across the resume)",
					resRes.Stats.CheckpointWrites, refRes.Stats.CheckpointWrites)
			}
			if miJSON(t, resRes) != miJSON(t, refRes) {
				t.Fatal("resumed results differ from the uninterrupted run")
			}
			if normalizeStats(resRes.Stats) != normalizeStats(refRes.Stats) {
				t.Fatalf("resumed stats differ:\n resumed %+v\n reference %+v",
					normalizeStats(resRes.Stats), normalizeStats(refRes.Stats))
			}
			// Concatenating the killed run's trace with the resumed run's
			// (minus the resume marker) must reproduce the uninterrupted
			// trace bit for bit.
			concat := append(append([]traceLine(nil), killTrace...), dropResumeEvents(resTrace)...)
			if len(concat) != len(refTrace) {
				t.Fatalf("concatenated trace has %d events, reference %d", len(concat), len(refTrace))
			}
			for j := range concat {
				if concat[j] != refTrace[j] {
					t.Fatalf("concatenated trace diverges at %d: %+v vs %+v", j, concat[j], refTrace[j])
				}
			}
		})
	}
}

// TestCheckpointResumeOfCompletedRun re-opens a directory whose run finished
// normally: replay finds no pending work and the second pass reproduces the
// first run's results without re-mining anything.
func TestCheckpointResumeOfCompletedRun(t *testing.T) {
	dir := t.TempDir()
	first, _ := ckRun(t, 4, dir, 16, 0, false)
	again, _ := ckRun(t, 4, dir, 16, 0, true)
	if miJSON(t, again) != miJSON(t, first) {
		t.Fatal("resume of a completed run changed the results")
	}
	if got := commitTotal(again.Stats); got != commitTotal(first.Stats) {
		t.Fatalf("resume of a completed run re-committed work: %d vs %d", got, commitTotal(first.Stats))
	}
}

// TestCheckpointCorruptJournalRejected flips one byte inside a complete
// journal record and verifies resume fails with the typed corruption error
// rather than silently mining from bad state.
func TestCheckpointCorruptJournalRejected(t *testing.T) {
	dir := t.TempDir()
	ckRun(t, 2, dir, 16, 20, false)
	path := filepath.Join(dir, "journal.ck")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	res, _ := ckRun(t, 2, dir, 16, 0, true)
	if !errors.Is(res.Err, checkpoint.ErrCorrupt) {
		t.Fatalf("resume over a corrupt journal returned %v, want ErrCorrupt", res.Err)
	}
	if len(res.MetaInsights) != 0 {
		t.Fatal("corrupt resume still returned results")
	}
}

// TestCheckpointFingerprintMismatchRejected resumes a checkpoint under a
// different mining configuration and verifies the typed mismatch error.
func TestCheckpointFingerprintMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	ckRun(t, 1, dir, 16, 20, false)
	ob := obs.New(obs.Options{})
	res := runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		c.Workers = 1
		c.Observer = ob
		c.Score.Tau = 0.7 // different scoring → different fingerprint
		c.Checkpoint = &CheckpointSpec{Dir: dir, Resume: true}
	})
	if !errors.Is(res.Err, ErrCheckpointMismatch) {
		t.Fatalf("resume under a different config returned %v, want ErrCheckpointMismatch", res.Err)
	}
}

// TestCheckpointResumeMissingDir verifies the typed no-checkpoint error.
func TestCheckpointResumeMissingDir(t *testing.T) {
	res := runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		c.Checkpoint = &CheckpointSpec{Dir: filepath.Join(t.TempDir(), "nope"), Resume: true}
	})
	if !errors.Is(res.Err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("resume of a missing dir returned %v, want ErrNoCheckpoint", res.Err)
	}
}

// TestCheckpointRefusesOverwrite verifies a fresh checkpointed run refuses a
// directory that already holds one.
func TestCheckpointRefusesOverwrite(t *testing.T) {
	dir := t.TempDir()
	ckRun(t, 1, dir, 16, 10, false)
	res := runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
		c.Checkpoint = &CheckpointSpec{Dir: dir}
	})
	if !errors.Is(res.Err, checkpoint.ErrExists) {
		t.Fatalf("fresh run over an existing checkpoint returned %v, want ErrExists", res.Err)
	}
}

// panickyPattern registers a custom evaluator that blows up on every scope
// broken down by City — a deterministic panic (every worker count hits it
// identically) that fails only those units, leaving the planted
// Month-breakdown insights minable.
func panickyPattern(c *Config) {
	if c.Pattern.Alpha == 0 {
		c.Pattern = pattern.DefaultConfig()
	}
	c.Pattern.Custom = append(c.Pattern.Custom, pattern.CustomEvaluator{
		Name: "Panicky",
		EvaluateScope: func(scope model.DataScope, _ []string, _ []float64) pattern.Evaluation {
			if scope.Breakdown == "City" {
				panic("panicky evaluator: deliberate test panic")
			}
			return pattern.Evaluation{}
		},
	})
}

// TestWorkerPanicIsolation verifies the satellite contract: a panicking
// pattern evaluator fails only its own unit — counted in
// Stats.PanickedUnits and traced as unit-panic — while the run completes
// and stays bit-identical across worker counts.
func TestWorkerPanicIsolation(t *testing.T) {
	run := func(workers int) (*Result, []traceLine) {
		return tracedRun(t, workers, func(c *Config, e *engine.Config) {
			panickyPattern(c)
		})
	}
	res1, tr1 := run(1)
	if res1.Stats.PanickedUnits == 0 {
		t.Fatal("panicking evaluator produced no PanickedUnits")
	}
	if len(res1.MetaInsights) == 0 {
		t.Fatal("a panicking evaluator took down the whole run")
	}
	sawPanic := false
	for _, l := range tr1 {
		if l.Kind == obs.EvUnitPanic {
			sawPanic = true
			if l.Detail == "" {
				t.Fatal("unit-panic event carries no panic value")
			}
		}
	}
	if !sawPanic {
		t.Fatal("no unit-panic trace event recorded")
	}
	res8, tr8 := run(8)
	if res8.Stats != res1.Stats {
		t.Fatalf("stats differ across worker counts under panics:\n w8 %+v\n w1 %+v", res8.Stats, res1.Stats)
	}
	if miJSON(t, res8) != miJSON(t, res1) {
		t.Fatal("results differ across worker counts under panics")
	}
	if len(tr8) != len(tr1) {
		t.Fatalf("trace lengths differ across worker counts: %d vs %d", len(tr8), len(tr1))
	}
	for i := range tr8 {
		if tr8[i] != tr1[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, tr8[i], tr1[i])
		}
	}
}

// TestCheckpointResumeUnderPanics combines the two robustness layers: a run
// with a deterministically panicking evaluator is killed and resumed, and
// the resume replays the panicked commits faithfully.
func TestCheckpointResumeUnderPanics(t *testing.T) {
	run := func(workers int, dir string, halt int64, resume bool) *Result {
		return runMiner(t, plantedTable(t), func(c *Config, e *engine.Config) {
			panickyPattern(c)
			c.Workers = workers
			c.Checkpoint = &CheckpointSpec{Dir: dir, Every: 16, Resume: resume}
			c.HaltAfterCommits = halt
		})
	}
	ref := run(4, filepath.Join(t.TempDir(), "ref"), 0, false)
	if ref.Stats.PanickedUnits == 0 {
		t.Fatal("workload did not exercise panics")
	}
	dir := t.TempDir()
	run(8, dir, 24, false)
	res := run(2, dir, 0, true)
	if miJSON(t, res) != miJSON(t, ref) {
		t.Fatal("resumed results differ under panics")
	}
	if normalizeStats(res.Stats) != normalizeStats(ref.Stats) {
		t.Fatalf("resumed stats differ under panics:\n resumed %+v\n reference %+v",
			normalizeStats(res.Stats), normalizeStats(ref.Stats))
	}
}
