package miner

import (
	"container/heap"

	"metainsight/internal/core"
	"metainsight/internal/model"
	"metainsight/internal/obs"
	"metainsight/internal/pattern"
)

// unitKind distinguishes the three kinds of compute units flowing through
// the mining procedure.
type unitKind int

const (
	// kindExpand explores one subspace: it emits the subspace's data-pattern
	// compute units and its child subspaces (the search functionality of
	// Figure 3).
	kindExpand unitKind = iota
	// kindDataPattern evaluates all measures and pattern types on one
	// (subspace, breakdown) pair — the data pattern mining module.
	kindDataPattern
	// kindMetaInsight evaluates one HDP for a MetaInsight — the MetaInsight
	// mining module.
	kindMetaInsight
)

// String returns the stable trace label of the kind.
func (k unitKind) String() string {
	switch k {
	case kindExpand:
		return "expand"
	case kindDataPattern:
		return "data-pattern"
	case kindMetaInsight:
		return "metainsight"
	default:
		return "unit(?)"
	}
}

// phase maps a unit kind to its observability phase: subspace expansion vs
// pattern/MetaInsight evaluation.
func (k unitKind) phase() obs.Phase {
	if k == kindExpand {
		return obs.PhaseExpand
	}
	return obs.PhaseEvaluate
}

// workUnit is a compute unit. Exactly the fields for its kind are set.
type workUnit struct {
	kind     unitKind
	priority float64 // impact-based priority (higher first)
	seq      int64   // emission order; tie-breaker and FIFO order

	// kindExpand / kindDataPattern
	subspace model.Subspace
	impact   float64 // Impact of subspace (Equation 2)
	// kindExpand
	maxDimIdx int // last dimension index already filtered; children add beyond it
	// kindDataPattern
	breakdown string

	// kindMetaInsight
	hds       core.HDS
	ptype     pattern.Type
	impactHDS float64
	miKey     string // identity key for commit-time deduplication
}

// workQueue abstracts the compute-unit queue so the paper's priority-queue
// vs FIFO-queue ablation (Figure 6) is a one-flag swap.
type workQueue interface {
	Push(u *workUnit)
	Pop() *workUnit
	Peek() *workUnit
	Len() int
	// Items returns the queued units in no particular order, without
	// consuming them. Checkpoint snapshots serialize pending work through it
	// (sorting by seq, which is a total order over live units).
	Items() []*workUnit
}

// priorityQueue orders units by priority descending, breaking ties by
// emission order, using container/heap.
type priorityQueue struct {
	items unitHeap
}

func newPriorityQueue() *priorityQueue { return &priorityQueue{} }

func (q *priorityQueue) Push(u *workUnit) { heap.Push(&q.items, u) }

func (q *priorityQueue) Pop() *workUnit {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(&q.items).(*workUnit)
}

func (q *priorityQueue) Peek() *workUnit {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *priorityQueue) Len() int { return len(q.items) }

func (q *priorityQueue) Items() []*workUnit { return append([]*workUnit(nil), q.items...) }

type unitHeap []*workUnit

func (h unitHeap) Len() int { return len(h) }
func (h unitHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h unitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *unitHeap) Push(x any)   { *h = append(*h, x.(*workUnit)) }
func (h *unitHeap) Pop() any {
	old := *h
	n := len(old)
	u := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return u
}

// fifoQueue is the baseline first-in-first-out queue used by the ablation.
// It is implemented as a ring over a growable slice.
type fifoQueue struct {
	items []*workUnit
	head  int
}

func newFIFOQueue() *fifoQueue { return &fifoQueue{} }

func (q *fifoQueue) Push(u *workUnit) { q.items = append(q.items, u) }

func (q *fifoQueue) Pop() *workUnit {
	if q.head >= len(q.items) {
		return nil
	}
	u := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append([]*workUnit(nil), q.items[q.head:]...)
		q.head = 0
	}
	return u
}

func (q *fifoQueue) Peek() *workUnit {
	if q.head >= len(q.items) {
		return nil
	}
	return q.items[q.head]
}

func (q *fifoQueue) Len() int { return len(q.items) - q.head }

func (q *fifoQueue) Items() []*workUnit { return append([]*workUnit(nil), q.items[q.head:]...) }
