// Package core implements the MetaInsight formulation of Sections 3 and 4.1:
// homogeneous data scopes (Definition 3.2) built by the three extension
// strategies, homogeneous data patterns (Definition 3.3), the Sim equivalence
// relation (Equation 8), the partition into commonness(es) and exceptions
// (Definitions 3.4 and 3.5), exception categorization, and the scoring
// function (conciseness entropy, the S* bound of Lemma 4.1, the actionability
// regularization and the impact factor, Equations 13-18).
package core

import (
	"fmt"
	"strings"

	"metainsight/internal/model"
	"metainsight/internal/pattern"
)

// DataPattern is the paper's basic data pattern (Definition 3.1) after the
// type-induced generative function has been applied: Type is either a
// concrete pattern type (with Highlight set) or one of the OtherPattern /
// NoPattern placeholders.
type DataPattern struct {
	Scope     model.DataScope
	Type      pattern.Type
	Highlight pattern.Highlight
}

// Sim is the boolean similarity of Equation 8: two data patterns are similar
// iff they share both type and highlight; patterns with a placeholder type
// are never similar to anything.
func Sim(a, b DataPattern) bool {
	if !a.Type.Concrete() || !b.Type.Concrete() {
		return false
	}
	return a.Type == b.Type && a.Highlight.Key() == b.Highlight.Key()
}

// HDS is a homogeneous data scope (Definition 3.2): the set of data scopes
// derived from an anchor by one extension strategy.
type HDS struct {
	Kind   model.ExtensionKind
	Anchor model.DataScope
	// ExtDim is the varied dimension for subspace extension, "" otherwise.
	ExtDim string
	Scopes []model.DataScope
}

// Key returns the canonical identity of the HDS. For subspace extension the
// anchor's own filter value on the extended dimension is excluded, so the
// same sibling-group HDS reached from different anchors has one key — the
// property the miner's deduplication and the precision metric rely on.
func (h HDS) Key() string {
	switch h.Kind {
	case model.ExtendSubspace:
		return "S|" + h.Anchor.Subspace.Without(h.ExtDim).Key() + "|" + h.ExtDim +
			"|" + h.Anchor.Breakdown + "|" + h.Anchor.Measure.Key()
	case model.ExtendMeasure:
		return "M|" + h.Anchor.Subspace.Key() + "|" + h.Anchor.Breakdown
	case model.ExtendBreakdown:
		return "B|" + h.Anchor.Subspace.Key() + "|" + h.Anchor.Measure.Key()
	default:
		panic(fmt.Sprintf("core: unknown extension kind %v", h.Kind))
	}
}

// RootSubspace returns the subspace identifying the HDS as a whole: for
// subspace extension, the anchor subspace with the extended filter removed;
// otherwise the anchor subspace itself. The ranker's overlap ratio
// (Definition 9.1) compares these.
func (h HDS) RootSubspace() model.Subspace {
	if h.Kind == model.ExtendSubspace {
		return h.Anchor.Subspace.Without(h.ExtDim)
	}
	return h.Anchor.Subspace
}

// SubspaceHDS applies Exd_si (Equation 4): vary the filter on dim over its
// domain while keeping breakdown and measure fixed. domain is dom(dim).
func SubspaceHDS(anchor model.DataScope, dim string, domain []string) HDS {
	h := HDS{Kind: model.ExtendSubspace, Anchor: anchor, ExtDim: dim}
	for _, v := range domain {
		h.Scopes = append(h.Scopes, model.DataScope{
			Subspace:  anchor.Subspace.With(dim, v),
			Breakdown: anchor.Breakdown,
			Measure:   anchor.Measure,
		})
	}
	return h
}

// MeasureHDS applies Exd_m (Equation 5): vary the measure over the full
// measure set M while keeping subspace and breakdown fixed.
func MeasureHDS(anchor model.DataScope, measures []model.Measure) HDS {
	h := HDS{Kind: model.ExtendMeasure, Anchor: anchor}
	for _, m := range measures {
		h.Scopes = append(h.Scopes, model.DataScope{
			Subspace:  anchor.Subspace,
			Breakdown: anchor.Breakdown,
			Measure:   m,
		})
	}
	return h
}

// BreakdownHDS applies Exd_b (Equation 6): vary the breakdown over all
// temporal dimensions (the paper restricts breakdown extension to temporal
// dimensions so the homogeneous scopes stay semantically comparable).
// Dimensions filtered in the anchor's subspace are skipped, since a data
// scope may not break down a dimension it fixes.
func BreakdownHDS(anchor model.DataScope, temporalDims []string) HDS {
	h := HDS{Kind: model.ExtendBreakdown, Anchor: anchor}
	for _, b := range temporalDims {
		if anchor.Subspace.Has(b) {
			continue
		}
		h.Scopes = append(h.Scopes, model.DataScope{
			Subspace:  anchor.Subspace,
			Breakdown: b,
			Measure:   anchor.Measure,
		})
	}
	return h
}

// HDP is a homogeneous data pattern (Definition 3.3): the type-induced data
// patterns of an HDS under one concrete pattern type.
type HDP struct {
	HDS      HDS
	Type     pattern.Type
	Patterns []DataPattern
}

// Key returns the canonical identity of the HDP (and of any MetaInsight built
// from it): the HDS key plus the pattern type.
func (h *HDP) Key() string { return h.HDS.Key() + "|" + h.Type.String() }

// Commonness is one Sim-equivalence class whose ratio exceeds τ
// (Definition 3.4): a set of data patterns sharing type and highlight.
type Commonness struct {
	Highlight pattern.Highlight
	// Indices point into the parent HDP's Patterns.
	Indices []int
	// Ratio is |C| / |HDP|.
	Ratio float64
}

// ExceptionCategory is the paper's three-way exception categorization
// (Section 4.1).
type ExceptionCategory int

const (
	// HighlightChange: a valid pattern of the HDP's type whose highlight
	// differs from every commonness.
	HighlightChange ExceptionCategory = iota
	// TypeChange: the scope exhibits some other pattern type.
	TypeChange
	// NoPatternException: the scope exhibits no pattern at all.
	NoPatternException

	// NumExceptionCategories is k in the paper's scoring (k = 3).
	NumExceptionCategories
)

// String names the exception category.
func (c ExceptionCategory) String() string {
	switch c {
	case HighlightChange:
		return "highlight-change"
	case TypeChange:
		return "type-change"
	case NoPatternException:
		return "no-pattern"
	default:
		return fmt.Sprintf("ExceptionCategory(%d)", int(c))
	}
}

// Exception is one exceptional data pattern with its category.
type Exception struct {
	Index    int // into the parent HDP's Patterns
	Category ExceptionCategory
}

// MetaInsight is Definition 3.5 plus the fine-grained representation of
// Definition 4.1 and its score: an HDP categorized into a non-empty
// commonness set and exceptions.
type MetaInsight struct {
	HDP        *HDP
	CommSet    []Commonness
	Exceptions []Exception

	// Alphas are the commonness proportions α_1..α_u (each > τ), aligned
	// with CommSet. Betas are the proportions β_1..β_v of the exception
	// categories actually present, aligned with BetaCategories.
	Alphas         []float64
	Betas          []float64
	BetaCategories []ExceptionCategory

	// ImpactHDS is Equation 17's importance factor.
	ImpactHDS float64
	// Entropy is S of Equation 13, in bits.
	Entropy float64
	// Conciseness is the regularized conciseness of Equation 16, in [0, 1].
	Conciseness float64
	// Score is Equation 18: f(Conciseness) × g(ImpactHDS).
	Score float64
}

// Key returns the MetaInsight's canonical identity (the HDP key); the
// MetaInsight precision metric (Definition 5.1) intersects sets of these.
func (mi *MetaInsight) Key() string { return mi.HDP.Key() }

// HasExceptions reports whether any exception is present — the property the
// user study found strongly correlated with follow-up-analysis interest.
func (mi *MetaInsight) HasExceptions() bool { return len(mi.Exceptions) > 0 }

// String renders a compact one-line summary.
func (mi *MetaInsight) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MetaInsight[%s %s on %s", mi.HDP.Type, mi.HDP.HDS.Kind, mi.HDP.HDS.Key())
	fmt.Fprintf(&b, " | %d commonness, %d exceptions, score=%.3f]",
		len(mi.CommSet), len(mi.Exceptions), mi.Score)
	return b.String()
}

// BuildMetaInsight categorizes an HDP into commonness(es) and exceptions and
// scores the result. It returns (nil, false) when the HDP yields no valid
// MetaInsight — i.e. when no Sim-equivalence class clears τ (Definition 3.5
// requires CommSet ≠ ∅) or the HDP has fewer than two patterns.
func BuildMetaInsight(hdp *HDP, impactHDS float64, p ScoreParams) (*MetaInsight, bool) {
	n := len(hdp.Patterns)
	if n < 2 {
		return nil, false
	}
	// Partition the valid patterns into Sim-equivalence classes by
	// highlight key, preserving first-seen order for determinism.
	classOrder := []string{}
	classes := map[string][]int{}
	var others, nones []int
	for i, dp := range hdp.Patterns {
		switch {
		case dp.Type == hdp.Type:
			k := dp.Highlight.Key()
			if _, seen := classes[k]; !seen {
				classOrder = append(classOrder, k)
			}
			classes[k] = append(classes[k], i)
		case dp.Type == pattern.OtherPattern:
			others = append(others, i)
		case dp.Type == pattern.NoPattern:
			nones = append(nones, i)
		default:
			// A pattern of a different concrete type inside this HDP would
			// be a construction bug: dp() maps non-matching types to
			// OtherPattern.
			panic(fmt.Sprintf("core: HDP of type %v contains pattern of type %v", hdp.Type, dp.Type))
		}
	}

	mi := &MetaInsight{HDP: hdp, ImpactHDS: impactHDS}
	var highlightChanges []int
	total := float64(n)
	for _, k := range classOrder {
		members := classes[k]
		ratio := float64(len(members)) / total
		if ratio > p.Tau {
			mi.CommSet = append(mi.CommSet, Commonness{
				Highlight: hdp.Patterns[members[0]].Highlight,
				Indices:   members,
				Ratio:     ratio,
			})
			mi.Alphas = append(mi.Alphas, ratio)
		} else {
			highlightChanges = append(highlightChanges, members...)
		}
	}
	if len(mi.CommSet) == 0 {
		return nil, false
	}
	appendCat := func(indices []int, cat ExceptionCategory) {
		if len(indices) == 0 {
			return
		}
		for _, i := range indices {
			mi.Exceptions = append(mi.Exceptions, Exception{Index: i, Category: cat})
		}
		mi.Betas = append(mi.Betas, float64(len(indices))/total)
		mi.BetaCategories = append(mi.BetaCategories, cat)
	}
	appendCat(highlightChanges, HighlightChange)
	appendCat(others, TypeChange)
	appendCat(nones, NoPatternException)

	mi.Entropy = EntropyS(mi.Alphas, mi.Betas, p.R)
	mi.Conciseness = ConcisenessReg(mi.Entropy, len(mi.Exceptions) == 0, p)
	mi.Score = Score(mi.Conciseness, impactHDS)
	return mi, true
}
