package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"metainsight/internal/model"
	"metainsight/internal/pattern"
)

func scope(city string) model.DataScope {
	return model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: city}),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}
}

func valleyPattern(city, month string) DataPattern {
	return DataPattern{
		Scope:     scope(city),
		Type:      pattern.Unimodality,
		Highlight: pattern.Highlight{Positions: []string{month}, Label: "valley"},
	}
}

func TestSimDefinition(t *testing.T) {
	a := valleyPattern("LA", "Apr")
	b := valleyPattern("SF", "Apr")
	c := valleyPattern("SD", "Jul")
	other := DataPattern{Scope: scope("SJ"), Type: pattern.OtherPattern}
	none := DataPattern{Scope: scope("RV"), Type: pattern.NoPattern}

	if !Sim(a, b) {
		t.Error("same type+highlight must be similar")
	}
	if Sim(a, c) {
		t.Error("different highlight must not be similar")
	}
	if Sim(a, other) || Sim(other, other) || Sim(a, none) || Sim(none, none) {
		t.Error("placeholder types are never similar (Equation 8)")
	}
	trend := DataPattern{Scope: scope("X"), Type: pattern.Trend,
		Highlight: pattern.Highlight{Label: "valley", Positions: []string{"Apr"}}}
	if Sim(a, trend) {
		t.Error("different types must not be similar")
	}
}

func TestSimIsEquivalenceOnConcretePatterns(t *testing.T) {
	// Random concrete patterns: Sim must be reflexive, symmetric, transitive.
	gen := func(r *rand.Rand) DataPattern {
		return DataPattern{
			Scope: scope("c" + strconv.Itoa(r.Intn(3))),
			Type:  pattern.Type(r.Intn(int(pattern.NumTypes))),
			Highlight: pattern.Highlight{
				Positions: []string{"p" + strconv.Itoa(r.Intn(3))},
				Label:     []string{"", "x"}[r.Intn(2)],
			},
		}
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		if !Sim(a, a) {
			t.Fatal("Sim not reflexive")
		}
		if Sim(a, b) != Sim(b, a) {
			t.Fatal("Sim not symmetric")
		}
		if Sim(a, b) && Sim(b, c) && !Sim(a, c) {
			t.Fatal("Sim not transitive")
		}
	}
}

func TestHDSConstructors(t *testing.T) {
	anchor := scope("LA")
	cities := []string{"LA", "SF", "SD"}
	h := SubspaceHDS(anchor, "City", cities)
	if len(h.Scopes) != 3 || h.Kind != model.ExtendSubspace || h.ExtDim != "City" {
		t.Fatalf("SubspaceHDS = %+v", h)
	}
	for i, c := range cities {
		if v, _ := h.Scopes[i].Subspace.Get("City"); v != c {
			t.Errorf("scope %d city = %q", i, v)
		}
		if h.Scopes[i].Breakdown != "Month" || h.Scopes[i].Measure != anchor.Measure {
			t.Error("subspace extension must keep breakdown and measure fixed")
		}
	}

	ms := []model.Measure{model.Sum("Sales"), model.Avg("Profit"), model.Count("*")}
	hm := MeasureHDS(anchor, ms)
	if len(hm.Scopes) != 3 {
		t.Fatalf("MeasureHDS size = %d", len(hm.Scopes))
	}
	for i, m := range ms {
		if hm.Scopes[i].Measure != m || !hm.Scopes[i].Subspace.Equal(anchor.Subspace) {
			t.Error("measure extension must vary only the measure")
		}
	}

	hb := BreakdownHDS(anchor, []string{"Month", "Week", "City"})
	// "City" is filtered in the anchor subspace and must be skipped.
	if len(hb.Scopes) != 2 {
		t.Fatalf("BreakdownHDS = %+v", hb.Scopes)
	}
	for _, s := range hb.Scopes {
		if s.Breakdown == "City" {
			t.Error("filtered dimension used as extended breakdown")
		}
	}
}

func TestHDSKeyIdentityAcrossAnchors(t *testing.T) {
	cities := []string{"LA", "SF", "SD"}
	fromLA := SubspaceHDS(scope("LA"), "City", cities)
	fromSF := SubspaceHDS(scope("SF"), "City", cities)
	if fromLA.Key() != fromSF.Key() {
		t.Error("same sibling-group HDS reached from different anchors must share a key")
	}
	otherMeasure := scope("LA")
	otherMeasure.Measure = model.Avg("Sales")
	if SubspaceHDS(otherMeasure, "City", cities).Key() == fromLA.Key() {
		t.Error("different measures must produce different HDS keys")
	}
}

func TestRootSubspace(t *testing.T) {
	anchor := model.DataScope{
		Subspace: model.NewSubspace(
			model.Filter{Dim: "City", Value: "LA"},
			model.Filter{Dim: "Style", Value: "2Story"},
		),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}
	h := SubspaceHDS(anchor, "City", []string{"LA", "SF"})
	root := h.RootSubspace()
	if root.Has("City") || !root.Has("Style") {
		t.Errorf("root = %v", root)
	}
	hm := MeasureHDS(anchor, []model.Measure{model.Sum("Sales"), model.Count("*")})
	if !hm.RootSubspace().Equal(anchor.Subspace) {
		t.Error("measure-extension root must be the anchor subspace")
	}
}

func buildHDP(t *testing.T, dps []DataPattern) *HDP {
	t.Helper()
	h := SubspaceHDS(dps[0].Scope, "City", nil)
	for _, dp := range dps {
		h.Scopes = append(h.Scopes, dp.Scope)
	}
	return &HDP{HDS: h, Type: pattern.Unimodality, Patterns: dps}
}

func TestBuildMetaInsightCommonnessAndExceptions(t *testing.T) {
	// 6 valley-at-Apr, 1 valley-at-Jul, 1 OtherPattern, 1 NoPattern → with
	// τ=0.5: one commonness (6/9) and three exception categories.
	dps := []DataPattern{}
	for i := 0; i < 6; i++ {
		dps = append(dps, valleyPattern("c"+strconv.Itoa(i), "Apr"))
	}
	dps = append(dps, valleyPattern("SD", "Jul"))
	dps = append(dps, DataPattern{Scope: scope("SJ"), Type: pattern.OtherPattern})
	dps = append(dps, DataPattern{Scope: scope("RV"), Type: pattern.NoPattern})

	mi, ok := BuildMetaInsight(buildHDP(t, dps), 0.8, DefaultScoreParams())
	if !ok {
		t.Fatal("valid MetaInsight rejected")
	}
	if len(mi.CommSet) != 1 || len(mi.CommSet[0].Indices) != 6 {
		t.Fatalf("CommSet = %+v", mi.CommSet)
	}
	if mi.CommSet[0].Highlight.Positions[0] != "Apr" {
		t.Error("commonness highlight wrong")
	}
	if len(mi.Exceptions) != 3 {
		t.Fatalf("exceptions = %+v", mi.Exceptions)
	}
	gotCats := map[ExceptionCategory]int{}
	for _, e := range mi.Exceptions {
		gotCats[e.Category]++
	}
	if gotCats[HighlightChange] != 1 || gotCats[TypeChange] != 1 || gotCats[NoPatternException] != 1 {
		t.Errorf("categories = %v", gotCats)
	}
	// Proportions must sum to 1 (Definition 4.1).
	sum := 0.0
	for _, a := range mi.Alphas {
		sum += a
	}
	for _, b := range mi.Betas {
		sum += b
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("proportions sum to %v", sum)
	}
	if !mi.HasExceptions() {
		t.Error("HasExceptions false")
	}
	if mi.ImpactHDS != 0.8 {
		t.Error("impact not recorded")
	}
}

func TestBuildMetaInsightRejectsWithoutCommonness(t *testing.T) {
	// Four distinct highlights with τ=0.5: no class clears the threshold.
	dps := []DataPattern{
		valleyPattern("a", "Jan"), valleyPattern("b", "Feb"),
		valleyPattern("c", "Mar"), valleyPattern("d", "Apr"),
	}
	if _, ok := BuildMetaInsight(buildHDP(t, dps), 1, DefaultScoreParams()); ok {
		t.Error("MetaInsight without commonness accepted (Definition 3.5 requires CommSet ≠ ∅)")
	}
	// A single pattern is no structure at all.
	if _, ok := BuildMetaInsight(buildHDP(t, dps[:1]), 1, DefaultScoreParams()); ok {
		t.Error("single-pattern HDP accepted")
	}
}

func TestBuildMetaInsightMultipleCommonnesses(t *testing.T) {
	p := DefaultScoreParams()
	p.Tau = 0.3
	// 4 valley-Apr + 4 valley-Jul + 2 NoPattern: both classes clear τ=0.3.
	dps := []DataPattern{}
	for i := 0; i < 4; i++ {
		dps = append(dps, valleyPattern("a"+strconv.Itoa(i), "Apr"))
	}
	for i := 0; i < 4; i++ {
		dps = append(dps, valleyPattern("j"+strconv.Itoa(i), "Jul"))
	}
	dps = append(dps, DataPattern{Scope: scope("x"), Type: pattern.NoPattern})
	dps = append(dps, DataPattern{Scope: scope("y"), Type: pattern.NoPattern})
	mi, ok := BuildMetaInsight(buildHDP(t, dps), 1, p)
	if !ok || len(mi.CommSet) != 2 {
		t.Fatalf("ok=%v CommSet=%v", ok, mi.CommSet)
	}
	if len(mi.Betas) != 1 || mi.Betas[0] != 0.2 {
		t.Errorf("betas = %v", mi.Betas)
	}
}

func TestNoExceptionRegularization(t *testing.T) {
	p := DefaultScoreParams()
	// Perfectly uniform commonness: S = 0, but γ penalizes no-exceptions.
	uniform := []DataPattern{}
	for i := 0; i < 5; i++ {
		uniform = append(uniform, valleyPattern("c"+strconv.Itoa(i), "Apr"))
	}
	noExc, ok := BuildMetaInsight(buildHDP(t, uniform), 1, p)
	if !ok {
		t.Fatal("rejected")
	}
	smax := SMax(p.Tau, p.R, p.K)
	want := 1 - p.Gamma/smax
	if math.Abs(noExc.Conciseness-want) > 1e-12 {
		t.Errorf("conciseness = %v, want %v", noExc.Conciseness, want)
	}

	// The same commonness with one exception must be more "actionable" than
	// a slightly larger exception-free one if γ outweighs the entropy cost —
	// here just verify the exception-free penalty applies only without
	// exceptions.
	withExc := append(uniform[:4:4], DataPattern{Scope: scope("z"), Type: pattern.NoPattern})
	excMI, ok := BuildMetaInsight(buildHDP(t, withExc), 1, p)
	if !ok {
		t.Fatal("rejected")
	}
	wantS := EntropyS([]float64{0.8}, []float64{0.2}, p.R)
	if math.Abs(excMI.Entropy-wantS) > 1e-12 {
		t.Errorf("entropy = %v, want %v", excMI.Entropy, wantS)
	}
	if math.Abs(excMI.Conciseness-(1-wantS/smax)) > 1e-12 {
		t.Error("regularization applied despite exceptions present")
	}
}

func TestEntropySKnownValues(t *testing.T) {
	if s := EntropyS([]float64{1}, nil, 1); s != 0 {
		t.Errorf("S of single commonness = %v", s)
	}
	s := EntropyS([]float64{0.5}, []float64{0.5}, 1)
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("S(0.5, 0.5) = %v", s)
	}
	// r scales only the exception part.
	s2 := EntropyS([]float64{0.5}, []float64{0.5}, 2)
	if math.Abs(s2-1.5) > 1e-12 {
		t.Errorf("S with r=2 = %v", s2)
	}
}

func TestSMaxPaperParameters(t *testing.T) {
	// τ=0.5, r=1, k=3 lands in the k ≥ (1−τ)e/τ^{1/r} branch:
	// S* = 0.5 + 0.5·log₂6.
	want := 0.5 + 0.5*math.Log2(6)
	if got := SMax(0.5, 1, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("SMax(0.5,1,3) = %v, want %v", got, want)
	}
	// Small k with small τ lands in the interior-optimum branch.
	tau := 0.1
	k := 1
	// (1−τ)e/τ = 24.46 > 1 → interior branch.
	want = -math.Log2(tau) + 1*float64(k)*tau*math.Log2(math.E)/math.E
	if got := SMax(tau, 1, k); math.Abs(got-want) > 1e-12 {
		t.Errorf("SMax(0.1,1,1) = %v, want %v", got, want)
	}
}

func TestSMaxContinuityAndMonotonicity(t *testing.T) {
	// Corollary 4.1.1: S*(τ) is continuous and monotonically decreasing.
	for _, r := range []float64{0.5, 1, 2} {
		for _, k := range []int{1, 2, 3, 5} {
			const step = 0.002
			prev := math.Inf(1)
			for tau := 0.02; tau < 0.99; tau += step {
				s := SMax(tau, r, k)
				if s > prev+1e-9 {
					t.Fatalf("S* not decreasing at τ=%v r=%v k=%d: %v > %v", tau, r, k, s, prev)
				}
				// Continuity: the drop per step must respect the local
				// Lipschitz bound; |dS*/dτ| is dominated by the −log₂τ term
				// (≤ 1/(τ·ln2)) at small τ and by r·log₂(k/(1−τ)) near τ→1.
				limit := step * (1/(tau*math.Ln2) +
					r*(math.Abs(math.Log2((1-tau)/float64(k)))+2) + 10)
				if !math.IsInf(prev, 1) && prev-s > limit {
					t.Fatalf("S* jump at τ=%v r=%v k=%d: %v → %v", tau, r, k, prev, s)
				}
				prev = s
			}
		}
	}
}

func TestSBoundedBySMax(t *testing.T) {
	// Property: for any valid MetaInsight representation (α each > τ,
	// Σα + Σβ = 1, v ≤ k), S ≤ S*(τ).
	p := DefaultScoreParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tau := 0.2 + 0.6*r.Float64()
		// Random number of commonnesses, each > tau.
		maxU := int(1 / tau)
		if maxU < 1 {
			maxU = 1
		}
		u := 1 + r.Intn(maxU)
		alphas := make([]float64, u)
		remaining := 1.0
		for i := range alphas {
			// Each α must exceed τ and leave room for the others.
			alphas[i] = tau + 1e-9
			remaining -= alphas[i]
		}
		if remaining < 0 {
			return true // infeasible draw; skip
		}
		// Distribute some of the remainder back to α's, rest to β's.
		extra := remaining * r.Float64()
		alphas[0] += extra
		remaining -= extra
		v := r.Intn(p.K + 1)
		betas := make([]float64, 0, v)
		for i := 0; i < v && remaining > 1e-12; i++ {
			share := remaining
			if i < v-1 {
				share = remaining * r.Float64()
			}
			betas = append(betas, share)
			remaining -= share
		}
		alphas[0] += remaining // fold any leftover into a commonness
		s := EntropyS(alphas, betas, p.R)
		return s <= SMax(tau, p.R, p.K)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestConcisenessRange(t *testing.T) {
	p := DefaultScoreParams()
	if c := ConcisenessReg(0, false, p); c != 1 {
		t.Errorf("zero entropy with exceptions → conciseness %v, want 1", c)
	}
	if c := ConcisenessReg(SMax(p.Tau, p.R, p.K), false, p); c != 0 {
		t.Errorf("max entropy → conciseness %v, want 0", c)
	}
	if c := ConcisenessReg(100, false, p); c != 0 {
		t.Error("conciseness must clamp at 0")
	}
}

func TestScoreClampsImpact(t *testing.T) {
	if Score(0.5, 3.0) != 0.5 {
		t.Error("g must clamp impact at 1")
	}
	if Score(0.5, 0.5) != 0.25 {
		t.Error("score = f(c)·g(i)")
	}
	if Score(0.5, -1) != 0 {
		t.Error("negative impact must clamp to 0")
	}
}

func TestSMaxPanicsOnBadInputs(t *testing.T) {
	for _, fn := range []func(){
		func() { SMax(0, 1, 3) },
		func() { SMax(1, 1, 3) },
		func() { SMax(0.5, 0, 3) },
		func() { SMax(0.5, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCategorizeRawRecoversShapeOutlier(t *testing.T) {
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun"}
	mk := func(vals ...float64) RawDistribution {
		return RawDistribution{Keys: months, Values: vals}
	}
	dists := []RawDistribution{
		mk(10, 10, 10, 10, 10, 10),
		mk(20, 20, 20, 20, 20, 20), // same shape, double magnitude
		mk(5, 5, 5, 5, 5, 5),
		mk(100, 1, 1, 1, 1, 1), // the shape outlier
	}
	cat, ok := CategorizeRaw(dists, DefaultRawClusterParams())
	if !ok {
		t.Fatal("no commonness found")
	}
	if len(cat.ExceptionIdx) != 1 || cat.ExceptionIdx[0] != 3 {
		t.Errorf("exceptions = %v, want [3]", cat.ExceptionIdx)
	}
}

func TestCategorizeRawRequiresMajority(t *testing.T) {
	months := []string{"A", "B", "C", "D"}
	dists := []RawDistribution{
		{Keys: months, Values: []float64{1, 0, 0, 0}},
		{Keys: months, Values: []float64{0, 1, 0, 0}},
		{Keys: months, Values: []float64{0, 0, 1, 0}},
		{Keys: months, Values: []float64{0, 0, 0, 1}},
	}
	if _, ok := CategorizeRaw(dists, DefaultRawClusterParams()); ok {
		t.Error("four disjoint point masses cannot form a commonness")
	}
}

func TestPatternCategorizationMatchesMetaInsight(t *testing.T) {
	dps := []DataPattern{}
	for i := 0; i < 5; i++ {
		dps = append(dps, valleyPattern("c"+strconv.Itoa(i), "Apr"))
	}
	dps = append(dps, DataPattern{Scope: scope("x"), Type: pattern.NoPattern})
	mi, ok := BuildMetaInsight(buildHDP(t, dps), 1, DefaultScoreParams())
	if !ok {
		t.Fatal("rejected")
	}
	cat := PatternCategorization(mi)
	if len(cat.CommonIdx) != 5 || len(cat.ExceptionIdx) != 1 || cat.ExceptionIdx[0] != 5 {
		t.Errorf("categorization = %+v", cat)
	}
}

func TestExceptionSetEquals(t *testing.T) {
	if !ExceptionSetEquals([]int{1, 3}, map[int]bool{1: true, 3: true}) {
		t.Error("equal sets reported unequal")
	}
	if ExceptionSetEquals([]int{1}, map[int]bool{1: true, 3: true}) {
		t.Error("subset reported equal")
	}
	if ExceptionSetEquals([]int{1, 2}, map[int]bool{1: true, 3: true}) {
		t.Error("different sets reported equal")
	}
}

func TestBuildMetaInsightProportionsProperty(t *testing.T) {
	// Property: for random HDPs, any accepted MetaInsight's proportions sum
	// to 1, every α exceeds τ, exceptions and commonness members partition
	// the HDP, and the score stays in [0, 1].
	p := DefaultScoreParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(15)
		highlights := []string{"Apr", "Jul", "Sep"}
		dps := make([]DataPattern, 0, n)
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0, 1:
				dps = append(dps, valleyPattern("c"+strconv.Itoa(i), highlights[r.Intn(2)]))
			case 2:
				dps = append(dps, DataPattern{Scope: scope("o" + strconv.Itoa(i)), Type: pattern.OtherPattern})
			default:
				dps = append(dps, DataPattern{Scope: scope("n" + strconv.Itoa(i)), Type: pattern.NoPattern})
			}
		}
		mi, ok := BuildMetaInsight(buildHDP(t, dps), r.Float64(), p)
		if !ok {
			return true // rejected HDPs are fine
		}
		sum := 0.0
		covered := 0
		for i, a := range mi.Alphas {
			sum += a
			if a <= p.Tau {
				t.Logf("alpha %v ≤ τ", a)
				return false
			}
			covered += len(mi.CommSet[i].Indices)
		}
		for _, b := range mi.Betas {
			sum += b
		}
		covered += len(mi.Exceptions)
		if covered != n {
			t.Logf("partition covers %d of %d", covered, n)
			return false
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Logf("proportions sum %v", sum)
			return false
		}
		return mi.Score >= 0 && mi.Score <= 1 && mi.Conciseness >= 0 && mi.Conciseness <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScoreParamsWithDefaults(t *testing.T) {
	def := DefaultScoreParams()

	// Zero value: every field defaulted.
	if got := (ScoreParams{}).WithDefaults(); got != def {
		t.Errorf("zero WithDefaults = %+v, want %+v", got, def)
	}

	// Partial override: set fields kept, unset fields filled per-field —
	// not all-or-nothing.
	got := ScoreParams{Tau: 0.6}.WithDefaults()
	want := def
	want.Tau = 0.6
	if got != want {
		t.Errorf("partial WithDefaults = %+v, want %+v", got, want)
	}
	got = ScoreParams{K: 5, Gamma: 0.2}.WithDefaults()
	want = def
	want.K = 5
	want.Gamma = 0.2
	if got != want {
		t.Errorf("partial WithDefaults = %+v, want %+v", got, want)
	}

	// Fully specified params pass through untouched.
	full := ScoreParams{Tau: 0.7, K: 4, R: 2, Gamma: 0.3}
	if got := full.WithDefaults(); got != full {
		t.Errorf("full WithDefaults = %+v, want %+v", got, full)
	}
}

func TestScoreUpperBoundBasics(t *testing.T) {
	p := DefaultScoreParams()
	if ub := ScoreUpperBound(1, 1, p); ub != 0 {
		t.Errorf("nScopes < 2 must bound to 0, got %v", ub)
	}
	ub2 := ScoreUpperBound(1, 2, p)
	if ub2 <= 0 || ub2 >= 1 {
		t.Errorf("ScoreUpperBound(1, 2) = %v, want in (0, 1)", ub2)
	}
	// Monotone in impact, and never above g(impact).
	if a, b := ScoreUpperBound(0.3, 5, p), ScoreUpperBound(0.6, 5, p); a > b {
		t.Errorf("bound not monotone in impact: %v > %v", a, b)
	}
	if ub := ScoreUpperBound(0.25, 5, p); ub > 0.25 {
		t.Errorf("bound %v exceeds g(impact) = 0.25", ub)
	}
	// More scopes can only loosen the bound: a larger HDS admits a cheaper
	// exception, so the min over m only shrinks.
	prev := ScoreUpperBound(1, 2, p)
	for n := 3; n <= 60; n++ {
		ub := ScoreUpperBound(1, n, p)
		if ub < prev-1e-12 {
			t.Fatalf("bound tightened from n=%d to n=%d: %v -> %v", n-1, n, prev, ub)
		}
		prev = ub
	}
}

// TestScoreUpperBoundDominatesRealizableScores is the soundness property
// behind S*-bounded early termination: no MetaInsight built from an HDS with
// nominal scopes can score above ScoreUpperBound for that HDS. Random draws
// cover the adversarial single-commonness minimum-entropy shape, no-exception
// MetaInsights (charged γ instead), evaluated pattern counts below the
// nominal scope count (empty siblings), and r values where the exception
// floor is not monotone in the pattern count.
func TestScoreUpperBoundDominatesRealizableScores(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := ScoreParams{
			Tau:   0.25 + 0.5*r.Float64(),
			K:     1 + r.Intn(5),
			R:     []float64{0.5, 1, 3, 12}[r.Intn(4)],
			Gamma: 0.02 + r.Float64(),
		}
		nominal := 2 + r.Intn(11)
		n := 2 + r.Intn(nominal)
		if n > nominal {
			n = nominal
		}
		e := r.Intn(n - 1) // exceptions; n-e >= 2 commonness members
		comm := n - e
		if float64(comm)/float64(n) <= p.Tau {
			return true // no commonness class clears tau: not a MetaInsight
		}
		alphas := []float64{float64(comm) / float64(n)}
		var betas []float64
		rem := e
		for v := 0; v < p.K && rem > 0; v++ {
			take := 1 + r.Intn(rem)
			if v == p.K-1 {
				take = rem
			}
			betas = append(betas, float64(take)/float64(n))
			rem -= take
		}
		impact := 1.5 * r.Float64()
		s := EntropyS(alphas, betas, p.R)
		score := Score(ConcisenessReg(s, e == 0, p), impact)
		return score <= ScoreUpperBound(impact, nominal, p)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
