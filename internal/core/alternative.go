package core

import (
	"sort"

	"metainsight/internal/pattern"
	"metainsight/internal/stats"
)

// This file implements the "alternative structured representation" the
// paper's Discussion (Section 6) considers and argues against: instead of
// extracting basic data patterns and comparing their highlights, apply a
// similarity measure (KL distance) directly to the raw data distributions of
// the HDS and cluster — clusters become commonness(es), outliers become
// exceptions. The paper (and its Appendix 9.2, via i³) holds that the
// pattern-based similarity is more robust because extracted patterns encode
// analysis semantics; BuildMetaInsightRaw makes that claim directly testable
// (see the categorization-robustness experiment).

// RawDistribution is one scope's raw data distribution within an HDS.
type RawDistribution struct {
	Scope  int // index into the HDS's Scopes
	Keys   []string
	Values []float64
}

// RawCategorization is the KL-clustering counterpart of a MetaInsight's
// commonness/exception split.
type RawCategorization struct {
	// CommonIdx and ExceptionIdx partition the input distributions.
	CommonIdx    []int
	ExceptionIdx []int
}

// RawClusterParams configures the raw-distribution clustering.
type RawClusterParams struct {
	// Epsilon is the symmetric-KL radius (bits) within which two
	// distributions join the same cluster.
	Epsilon float64
	// Smoothing is the additive KL smoothing.
	Smoothing float64
	// Tau is the minimum cluster ratio for a commonness, mirroring the
	// MetaInsight threshold.
	Tau float64
}

// DefaultRawClusterParams mirrors the i³ configuration.
func DefaultRawClusterParams() RawClusterParams {
	return RawClusterParams{Epsilon: 0.05, Smoothing: 1e-6, Tau: 0.5}
}

// CategorizeRaw clusters raw distributions by symmetric KL distance around
// the medoid: the members within Epsilon of the medoid form the candidate
// commonness; if its ratio does not exceed Tau, no commonness exists and ok
// is false (mirroring Definition 3.5's CommSet ≠ ∅ requirement).
func CategorizeRaw(dists []RawDistribution, p RawClusterParams) (RawCategorization, bool) {
	n := len(dists)
	if n < 2 {
		return RawCategorization{}, false
	}
	// Align distributions on the union of keys (missing keys are zeros),
	// then normalize: KL compares shapes, not magnitudes.
	keySet := map[string]int{}
	var keys []string
	for _, d := range dists {
		for _, k := range d.Keys {
			if _, ok := keySet[k]; !ok {
				keySet[k] = len(keys)
				keys = append(keys, k)
			}
		}
	}
	aligned := make([][]float64, n)
	for i, d := range dists {
		v := make([]float64, len(keys))
		for j, k := range d.Keys {
			val := d.Values[j]
			if val < 0 {
				val = 0 // KL is undefined for negative mass
			}
			v[keySet[k]] = val
		}
		aligned[i] = stats.Normalize(v)
	}

	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := stats.SymmetricKL(aligned[i], aligned[j], p.Smoothing)
			dist[i][j], dist[j][i] = d, d
		}
	}
	medoid, best := 0, 0.0
	for i := 0; i < n; i++ {
		total := 0.0
		for j := 0; j < n; j++ {
			total += dist[i][j]
		}
		if i == 0 || total < best {
			medoid, best = i, total
		}
	}
	var cat RawCategorization
	for i := 0; i < n; i++ {
		if dist[medoid][i] <= p.Epsilon {
			cat.CommonIdx = append(cat.CommonIdx, i)
		} else {
			cat.ExceptionIdx = append(cat.ExceptionIdx, i)
		}
	}
	if float64(len(cat.CommonIdx)) <= p.Tau*float64(n) {
		return cat, false
	}
	return cat, true
}

// PatternCategorization extracts the pattern-based commonness/exception
// split of a built MetaInsight as index sets comparable with CategorizeRaw's
// output (indices refer to the HDP's pattern order).
func PatternCategorization(mi *MetaInsight) RawCategorization {
	var cat RawCategorization
	for _, c := range mi.CommSet {
		cat.CommonIdx = append(cat.CommonIdx, c.Indices...)
	}
	for _, e := range mi.Exceptions {
		cat.ExceptionIdx = append(cat.ExceptionIdx, e.Index)
	}
	sort.Ints(cat.CommonIdx)
	sort.Ints(cat.ExceptionIdx)
	return cat
}

// ExceptionSetEquals compares an exception index set against a ground-truth
// set.
func ExceptionSetEquals(got []int, want map[int]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for _, i := range got {
		if !want[i] {
			return false
		}
	}
	return true
}

// BuildPatternCategorization evaluates an HDP's scopes with the given
// pattern type and returns the Sim-based categorization directly from raw
// series, a convenience for head-to-head comparisons with CategorizeRaw on
// identical inputs. temporal marks the breakdown kind; cfg supplies the
// evaluation criteria; tau the commonness threshold.
func BuildPatternCategorization(dists []RawDistribution, t pattern.Type, temporal bool,
	cfg pattern.Config, tau float64) (RawCategorization, bool) {

	classes := map[string][]int{}
	var classOrder []string
	var others []int
	for i, d := range dists {
		se := pattern.EvaluateAll(d.Keys, d.Values, temporal, cfg)
		tp, h := se.Induced(t)
		if tp == t {
			k := h.Key()
			if _, seen := classes[k]; !seen {
				classOrder = append(classOrder, k)
			}
			classes[k] = append(classes[k], i)
		} else {
			others = append(others, i)
		}
	}
	var cat RawCategorization
	n := float64(len(dists))
	for _, k := range classOrder {
		members := classes[k]
		if float64(len(members)) > tau*n {
			cat.CommonIdx = append(cat.CommonIdx, members...)
		} else {
			cat.ExceptionIdx = append(cat.ExceptionIdx, members...)
		}
	}
	cat.ExceptionIdx = append(cat.ExceptionIdx, others...)
	sort.Ints(cat.CommonIdx)
	sort.Ints(cat.ExceptionIdx)
	return cat, len(cat.CommonIdx) > 0
}
