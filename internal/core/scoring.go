package core

import (
	"math"
)

// ScoreParams holds the scoring hyper-parameters of Section 4.1.
type ScoreParams struct {
	// Tau is the commonness acceptance threshold τ (a Sim class is a
	// commonness iff its ratio strictly exceeds τ).
	Tau float64
	// K is the number of exception categories k (3 in the paper).
	K int
	// R is the balancing parameter r between commonness and exception
	// complexity in Equation 13.
	R float64
	// Gamma is the actionability regularization γ of Equation 16, penalizing
	// MetaInsights without exceptions; it must satisfy S + γ ≤ S* for all
	// MetaInsights, for which 0 < γ < 1 + 0.5·log₂(k) suffices at τ = 0.5.
	Gamma float64
}

// DefaultScoreParams returns the paper's implementation parameters:
// τ = 0.5, k = 3, r = 1, γ = 0.1 (Section 4.1, "Parameters in our
// implementation").
func DefaultScoreParams() ScoreParams {
	return ScoreParams{Tau: 0.5, K: 3, R: 1, Gamma: 0.1}
}

// WithDefaults returns p with every unset (zero) field replaced by its
// paper default, so a caller who overrides only Tau does not silently zero
// the actionability and impact terms of Equation 18. A zero value for any
// field is never meaningful: τ = 0 accepts everything as commonness, k = 0
// leaves no exception categories, r = 0 erases exceptions from Equation 13,
// and γ = 0 removes the no-exception penalty — none are sensible settings.
func (p ScoreParams) WithDefaults() ScoreParams {
	def := DefaultScoreParams()
	if p.Tau == 0 {
		p.Tau = def.Tau
	}
	if p.K == 0 {
		p.K = def.K
	}
	if p.R == 0 {
		p.R = def.R
	}
	if p.Gamma == 0 {
		p.Gamma = def.Gamma
	}
	return p
}

// EntropyS computes S of Equation 13 in bits:
//
//	S = −( Σ αᵢ·log₂ αᵢ + r·Σ βⱼ·log₂ βⱼ )
func EntropyS(alphas, betas []float64, r float64) float64 {
	s := 0.0
	for _, a := range alphas {
		if a > 0 {
			s -= a * math.Log2(a)
		}
	}
	for _, b := range betas {
		if b > 0 {
			s -= r * b * math.Log2(b)
		}
	}
	return s
}

// SMax computes S*(τ), the tight upper bound of S over all MetaInsight
// representations (Lemma 4.1):
//
//	S*(τ) = −log₂ τ + r·k·τ^{1/r}·log₂(e)/e            if k < (1−τ)·e/τ^{1/r}
//	S*(τ) = −τ·log₂ τ − r·(1−τ)·log₂((1−τ)/k)          otherwise
//
// S*(τ) is continuous and monotonically decreasing in τ (Corollary 4.1.1).
func SMax(tau, r float64, k int) float64 {
	if tau <= 0 || tau >= 1 {
		panic("core: SMax requires 0 < tau < 1")
	}
	if r <= 0 || k < 1 {
		panic("core: SMax requires r > 0 and k >= 1")
	}
	kf := float64(k)
	threshold := (1 - tau) * math.E / math.Pow(tau, 1/r)
	if kf < threshold {
		return -math.Log2(tau) + r*kf*math.Pow(tau, 1/r)*math.Log2(math.E)/math.E
	}
	return -tau*math.Log2(tau) - r*(1-tau)*math.Log2((1-tau)/kf)
}

// ConcisenessReg computes the regularized conciseness of Equation 16:
//
//	Conciseness = 1 − (S + γ·1[no exceptions]) / S*
//
// The result is clamped into [0, 1] against floating-point drift.
func ConcisenessReg(entropy float64, noExceptions bool, p ScoreParams) float64 {
	smax := SMax(p.Tau, p.R, p.K)
	s := entropy
	if noExceptions {
		s += p.Gamma
	}
	c := 1 - s/smax
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// Score computes Equation 18 with the paper's f(x) = x and g(x) = x, except
// that g clamps at 1: a measure-extended HDS repeats one subspace |M| times,
// so the raw impact sum of Equation 17 may exceed 1, and g must stay within
// [0, 1].
func Score(conciseness, impactHDS float64) float64 {
	g := impactHDS
	if g > 1 {
		g = 1
	}
	if g < 0 {
		g = 0
	}
	return conciseness * g
}

// exceptionEntropyFloor returns the smallest S (Equation 13) any MetaInsight
// with at least one exception over exactly n evaluated patterns can have: one
// exception of weight 1/n against a single commonness class of weight
// (n−1)/n. Any other representation refines that partition, and refining a
// partition never decreases entropy.
func exceptionEntropyFloor(n int, r float64) float64 {
	nf := float64(n)
	a := (nf - 1) / nf
	b := 1 / nf
	return -(a*math.Log2(a) + r*b*math.Log2(b))
}

// ScoreUpperBound returns an upper bound on the score (Equation 18) of any
// MetaInsight an HDS with nScopes data scopes and impact impactHDS can yield,
// before evaluating a single scope. It follows from Lemma 4.1's S* and the
// structure of Equation 16: a MetaInsight either has no exceptions — then the
// γ regularizer is charged — or has at least one exception over m ≤ nScopes
// evaluated patterns, and its entropy S is at least the cheapest-exception
// floor min over 2 ≤ m ≤ nScopes of S_exc(m) (the min is taken explicitly
// because S_exc is not monotone in m for large r). Either way
//
//	Conciseness ≤ 1 − min(γ, min_m S_exc(m)) / S*(τ)
//
// and the score is at most that bound times g(impactHDS). The bound is
// monotone in impactHDS only, so it is safe to compute from the HDS alone:
// scopes that later turn out empty only shrink m, which the min already
// covers. nScopes < 2 cannot form a MetaInsight and bounds to 0.
func ScoreUpperBound(impactHDS float64, nScopes int, p ScoreParams) float64 {
	if nScopes < 2 {
		return 0
	}
	floor := p.Gamma
	for m := 2; m <= nScopes; m++ {
		if s := exceptionEntropyFloor(m, p.R); s < floor {
			floor = s
		}
	}
	c := 1 - floor/SMax(p.Tau, p.R, p.K)
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return Score(c, impactHDS)
}
