package pattern

import (
	"math"
	"strconv"
	"testing"
)

var cfg = DefaultConfig()

func keysFor(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "k" + strconv.Itoa(i)
	}
	return out
}

func months() []string {
	return []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
}

func TestOutstandingFirstPositive(t *testing.T) {
	vals := []float64{500, 80, 75, 70, 68, 66, 60}
	ev := Evaluate(OutstandingFirst, keysFor(7), vals, false, cfg)
	if !ev.Valid {
		t.Fatal("dominant leader not detected")
	}
	if len(ev.Highlight.Positions) != 1 || ev.Highlight.Positions[0] != "k0" {
		t.Errorf("highlight = %v", ev.Highlight)
	}
}

func TestOutstandingFirstNegative(t *testing.T) {
	vals := []float64{80, 78, 76, 74, 72, 70, 68}
	if ev := Evaluate(OutstandingFirst, keysFor(7), vals, false, cfg); ev.Valid {
		t.Errorf("smooth series detected as outstanding: %v", ev.Highlight)
	}
}

func TestOutstandingLast(t *testing.T) {
	vals := []float64{80, 78, 76, 74, 72, 70, 2}
	ev := Evaluate(OutstandingLast, keysFor(7), vals, false, cfg)
	if !ev.Valid || ev.Highlight.Positions[0] != "k6" {
		t.Fatalf("outstanding-last: valid=%v highlight=%v", ev.Valid, ev.Highlight)
	}
}

func TestOutstandingTop2(t *testing.T) {
	vals := []float64{500, 480, 80, 75, 70, 68, 66}
	ev := Evaluate(OutstandingTop2, keysFor(7), vals, false, cfg)
	if !ev.Valid {
		t.Fatal("top-two not detected")
	}
	if len(ev.Highlight.Positions) != 2 || ev.Highlight.Positions[0] != "k0" || ev.Highlight.Positions[1] != "k1" {
		t.Errorf("highlight = %v", ev.Highlight)
	}
}

func TestOutstandingLast2(t *testing.T) {
	vals := []float64{80, 78, 76, 74, 72, 3, 2}
	ev := Evaluate(OutstandingLast2, keysFor(7), vals, false, cfg)
	if !ev.Valid || len(ev.Highlight.Positions) != 2 {
		t.Fatalf("last-two: valid=%v highlight=%v", ev.Valid, ev.Highlight)
	}
	// Positions ordered most-extreme first.
	if ev.Highlight.Positions[0] != "k6" || ev.Highlight.Positions[1] != "k5" {
		t.Errorf("positions = %v", ev.Highlight.Positions)
	}
}

func TestEvenness(t *testing.T) {
	even := []float64{100, 102, 98, 101, 99}
	ev := Evaluate(Evenness, keysFor(5), even, false, cfg)
	if !ev.Valid || ev.Highlight.Label != "even" {
		t.Fatalf("even series not detected: %+v", ev)
	}
	uneven := []float64{100, 10, 200, 5, 80}
	if Evaluate(Evenness, keysFor(5), uneven, false, cfg).Valid {
		t.Error("uneven series detected as even")
	}
}

func TestAttribution(t *testing.T) {
	vals := []float64{60, 10, 10, 10, 10}
	ev := Evaluate(Attribution, keysFor(5), vals, false, cfg)
	if !ev.Valid || ev.Highlight.Positions[0] != "k0" {
		t.Fatalf("dominant share not detected: %+v", ev)
	}
	if Evaluate(Attribution, keysFor(5), []float64{30, 25, 20, 15, 10}, false, cfg).Valid {
		t.Error("non-majority share detected as attribution")
	}
	if Evaluate(Attribution, keysFor(5), []float64{60, -10, 10, 10, 10}, false, cfg).Valid {
		t.Error("mixed-sign series must not yield attribution")
	}
}

func TestTrend(t *testing.T) {
	up := []float64{10, 13, 15, 18, 22, 24, 28, 30}
	ev := Evaluate(Trend, months()[:8], up, true, cfg)
	if !ev.Valid || ev.Highlight.Label != "increasing" {
		t.Fatalf("upward trend: %+v", ev)
	}
	down := []float64{30, 28, 24, 22, 18, 15, 13, 10}
	ev = Evaluate(Trend, months()[:8], down, true, cfg)
	if !ev.Valid || ev.Highlight.Label != "decreasing" {
		t.Fatalf("downward trend: %+v", ev)
	}
	noise := []float64{20, 22, 19, 21, 20, 22, 19, 21}
	if Evaluate(Trend, months()[:8], noise, true, cfg).Valid {
		t.Error("noise detected as trend")
	}
}

func TestTrendRequiresTemporal(t *testing.T) {
	up := []float64{10, 13, 15, 18, 22, 24, 28, 30}
	if Evaluate(Trend, keysFor(8), up, false, cfg).Valid {
		t.Error("trend must require a temporal breakdown")
	}
}

func TestOutlier(t *testing.T) {
	vals := []float64{10, 11, 10, 12, 11, 10, 11, 80, 10, 11, 12, 10}
	ev := Evaluate(Outlier, months(), vals, true, cfg)
	if !ev.Valid {
		t.Fatal("spike not detected")
	}
	if len(ev.Highlight.Positions) != 1 || ev.Highlight.Positions[0] != "Aug" || ev.Highlight.Label != "above" {
		t.Errorf("highlight = %v", ev.Highlight)
	}
	dip := []float64{10, 11, 10, -60, 11, 10, 11, 10, 10, 11, 12, 10}
	ev = Evaluate(Outlier, months(), dip, true, cfg)
	if !ev.Valid || ev.Highlight.Label != "below" || ev.Highlight.Positions[0] != "Apr" {
		t.Errorf("dip highlight = %+v", ev)
	}
	if Evaluate(Outlier, months(), []float64{10, 11, 10, 12, 11, 10, 11, 10, 10, 11, 12, 10}, true, cfg).Valid {
		t.Error("flat series has no outliers")
	}
}

func TestSeasonality(t *testing.T) {
	vals := make([]float64, 24)
	for i := range vals {
		vals[i] = 100 + 30*math.Sin(2*math.Pi*float64(i)/4)
	}
	ev := Evaluate(Seasonality, keysFor(24), vals, true, cfg)
	if !ev.Valid || ev.Highlight.Label != "period=4" {
		t.Fatalf("period-4 signal: %+v", ev)
	}
	noise := []float64{5, 9, 2, 7, 4, 8, 1, 6, 3, 9, 2, 5, 7, 1, 8, 4}
	if ev := Evaluate(Seasonality, keysFor(16), noise, true, cfg); ev.Valid {
		t.Errorf("noise detected as seasonal: %+v", ev)
	}
}

func TestSeasonalityDetrends(t *testing.T) {
	// Strong trend + period-4 oscillation: the oscillation must still win.
	vals := make([]float64, 24)
	for i := range vals {
		vals[i] = float64(i)*10 + 30*math.Sin(2*math.Pi*float64(i)/4)
	}
	ev := Evaluate(Seasonality, keysFor(24), vals, true, cfg)
	if !ev.Valid || ev.Highlight.Label != "period=4" {
		t.Fatalf("trended seasonal signal: %+v", ev)
	}
}

func TestChangePoint(t *testing.T) {
	vals := []float64{10, 11, 10, 12, 11, 30, 31, 30, 32, 31, 30, 31}
	ev := Evaluate(ChangePoint, months(), vals, true, cfg)
	if !ev.Valid {
		t.Fatal("mean shift not detected")
	}
	if ev.Highlight.Positions[0] != "Jun" {
		t.Errorf("change point at %v, want Jun", ev.Highlight.Positions)
	}
	if Evaluate(ChangePoint, months(), []float64{10, 11, 10, 12, 11, 10, 11, 10, 12, 11, 10, 11}, true, cfg).Valid {
		t.Error("stationary series has no change point")
	}
}

func TestUnimodalityValley(t *testing.T) {
	vals := []float64{100, 80, 55, 30, 12, 28, 52, 78, 95, 98, 99, 100}
	ev := Evaluate(Unimodality, months(), vals, true, cfg)
	if !ev.Valid {
		t.Fatal("valley not detected")
	}
	if ev.Highlight.Label != "valley" || ev.Highlight.Positions[0] != "May" {
		t.Errorf("highlight = %v", ev.Highlight)
	}
}

func TestUnimodalityPeak(t *testing.T) {
	vals := []float64{10, 30, 55, 80, 95, 80, 52, 28, 12, 10, 8, 6}
	ev := Evaluate(Unimodality, months(), vals, true, cfg)
	if !ev.Valid || ev.Highlight.Label != "peak" || ev.Highlight.Positions[0] != "May" {
		t.Fatalf("peak: %+v", ev)
	}
}

func TestUnimodalityRejectsBoundaryExtremumAndNoise(t *testing.T) {
	monotone := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	if Evaluate(Unimodality, keysFor(8), monotone, true, cfg).Valid {
		t.Error("monotone series detected unimodal")
	}
	jagged := []float64{50, 10, 60, 5, 55, 8, 52, 12}
	if Evaluate(Unimodality, keysFor(8), jagged, true, cfg).Valid {
		t.Error("jagged series detected unimodal")
	}
}

func TestEvaluateRejectsNaN(t *testing.T) {
	vals := []float64{1, math.NaN(), 3, 4, 5, 6, 7}
	for _, tp := range Types() {
		if Evaluate(tp, keysFor(7), vals, true, cfg).Valid {
			t.Errorf("%v accepted NaN input", tp)
		}
	}
}

func TestInducedRules(t *testing.T) {
	// A clear valley series: Unimodality holds, Trend does not.
	vals := []float64{100, 80, 55, 30, 12, 28, 52, 78, 95, 98, 99, 100}
	se := EvaluateAll(months(), vals, true, cfg)
	if tp, h := se.Induced(Unimodality); tp != Unimodality || h.Positions[0] != "May" {
		t.Errorf("Induced(Unimodality) = %v %v", tp, h)
	}
	if tp, _ := se.Induced(Trend); tp != OtherPattern {
		t.Errorf("Induced(Trend) = %v, want OtherPattern", tp)
	}
	// Pure noise: nothing holds → NoPattern for every type.
	noise := []float64{2, 8, 8, 10, 2, 9, 6, 1, 7, 1, 5, 2}
	se = EvaluateAll(months(), noise, true, cfg)
	if se.AnyValid {
		t.Fatalf("noise yields valid types: %v", se.ValidTypes())
	}
	if tp, _ := se.Induced(Trend); tp != NoPattern {
		t.Errorf("Induced on patternless scope = %v, want NoPattern", tp)
	}
}

func TestHighlightKey(t *testing.T) {
	a := Highlight{Positions: []string{"Apr"}, Label: "valley"}
	b := Highlight{Positions: []string{"Apr"}, Label: "valley"}
	c := Highlight{Positions: []string{"Jul"}, Label: "valley"}
	d := Highlight{Positions: []string{"Apr"}, Label: "peak"}
	if a.Key() != b.Key() {
		t.Error("equal highlights must share keys")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() {
		t.Error("distinct highlights must not collide")
	}
}

func TestTypeMetadata(t *testing.T) {
	if len(Types()) != 11 {
		t.Fatalf("paper specifies 11 types, got %d", len(Types()))
	}
	temporalOnly := map[Type]bool{Trend: true, Outlier: true, Seasonality: true, ChangePoint: true, Unimodality: true}
	for _, tp := range Types() {
		if tp.TemporalOnly() != temporalOnly[tp] {
			t.Errorf("%v TemporalOnly = %v", tp, tp.TemporalOnly())
		}
		if !tp.Concrete() {
			t.Errorf("%v should be concrete", tp)
		}
	}
	if OtherPattern.Concrete() || NoPattern.Concrete() {
		t.Error("placeholders must not be concrete")
	}
	if OtherPattern.String() != "Other Pattern" || NoPattern.String() != "No Pattern" {
		t.Error("placeholder names wrong")
	}
}

func TestEvaluateAllMatchesSingleEvaluate(t *testing.T) {
	vals := []float64{100, 80, 55, 30, 12, 28, 52, 78, 95, 98, 99, 100}
	se := EvaluateAll(months(), vals, true, cfg)
	for _, tp := range Types() {
		single := Evaluate(tp, months(), vals, true, cfg)
		if single.Valid != se.Evals[tp].Valid {
			t.Errorf("%v: EvaluateAll disagrees with Evaluate", tp)
		}
	}
}

func TestCustomEvaluator(t *testing.T) {
	cfg := DefaultConfig()
	// A "first-half dominance" custom type: the first half of the series
	// holds more than 70% of the total.
	cfg.Custom = append(cfg.Custom, CustomEvaluator{
		Name:         "First-Half Dominance",
		TemporalOnly: true,
		Evaluate: func(keys []string, values []float64) Evaluation {
			total, first := 0.0, 0.0
			for i, v := range values {
				total += v
				if i < len(values)/2 {
					first += v
				}
			}
			if total <= 0 || first/total <= 0.7 {
				return Evaluation{}
			}
			return Evaluation{Valid: true, Highlight: Highlight{Label: "first-half"}, Strength: first / total}
		},
	})
	ct := CustomType(0)
	if cfg.TypeName(ct) != "First-Half Dominance" {
		t.Errorf("TypeName = %q", cfg.TypeName(ct))
	}
	if !ct.Concrete() || ct.Builtin() {
		t.Error("custom type classification wrong")
	}

	frontLoaded := []float64{50, 40, 45, 55, 48, 52, 2, 3, 1, 2, 3, 2}
	se := EvaluateAll(months(), frontLoaded, true, cfg)
	if len(se.Evals) != cfg.NumConcreteTypes() {
		t.Fatalf("evaluated %d types, want %d", len(se.Evals), cfg.NumConcreteTypes())
	}
	if !se.Evals[ct].Valid {
		t.Fatal("custom criterion not detected")
	}
	if tp, h := se.Induced(ct); tp != ct || h.Label != "first-half" {
		t.Errorf("Induced = %v %v", tp, h)
	}
	// Temporal-only: the same series on a categorical breakdown is invalid.
	if Evaluate(ct, months(), frontLoaded, false, cfg).Valid {
		t.Error("temporal-only custom type fired on categorical breakdown")
	}
	// A balanced series does not satisfy it; Induced maps to OtherPattern
	// when another type holds.
	even := []float64{100, 101, 99, 100, 102, 100, 98, 100, 101, 99, 100, 100}
	se = EvaluateAll(months(), even, true, cfg)
	if se.Evals[ct].Valid {
		t.Error("balanced series flagged as front-loaded")
	}
	if tp, _ := se.Induced(ct); tp != OtherPattern {
		t.Errorf("Induced on even series = %v, want OtherPattern", tp)
	}
}

func TestCustomTypeString(t *testing.T) {
	if CustomType(2).String() != "Custom(2)" {
		t.Errorf("String = %q", CustomType(2).String())
	}
	if OtherPattern >= 0 || NoPattern >= 0 {
		t.Error("placeholders must be negative so custom type IDs are free")
	}
}

func TestEvaluatePanicsOnUnregisteredCustom(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate(CustomType(0), months(), make([]float64, 12), true, DefaultConfig())
}
