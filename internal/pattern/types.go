// Package pattern implements the paper's basic data patterns (Section 3.1,
// Table 1, Appendix 9.1): eleven pattern types, each with an evaluation
// criterion Evaluate(ds, type) and a type-dependent highlight encoding the
// essential characteristics of the raw data distribution. The package is
// pattern-type agnostic in the paper's sense: evaluators operate on a plain
// (keys, values) series plus a temporal flag, so domain-specific types can be
// added without touching the mining machinery.
package pattern

import (
	"fmt"
	"strings"
)

// Type enumerates the supported basic data pattern types plus the two
// placeholder outcomes of the type-induced generative function dp(ds, type).
type Type int

const (
	// OutstandingFirst: one subspace has a noticeably higher aggregate than
	// all others. Highlight: that subspace.
	OutstandingFirst Type = iota
	// OutstandingLast: one subspace is noticeably lower than all others.
	OutstandingLast
	// OutstandingTop2: two subspaces are noticeably higher than the rest.
	OutstandingTop2
	// OutstandingLast2: two subspaces are noticeably lower than the rest.
	OutstandingLast2
	// Evenness: all subspaces are distributed evenly.
	Evenness
	// Attribution: one subspace's aggregate dominates (accounts for the
	// majority of) the total. Highlight: that subspace.
	Attribution
	// Trend: a temporal series trends upward or downward. Highlight: the
	// direction.
	Trend
	// Outlier: a temporal series has 3-sigma outliers against a
	// non-parametric regression baseline. Highlight: outlier positions and
	// whether they lie above or below the baseline.
	Outlier
	// Seasonality: a temporal series repeats with a fixed period.
	// Highlight: the period length.
	Seasonality
	// ChangePoint: the mean of a temporal series shifts significantly at
	// one position. Highlight: that position.
	ChangePoint
	// Unimodality: a temporal series forms a U-shaped valley or peak.
	// Highlight: the extremum position and peak/valley indication.
	Unimodality

	// NumTypes is the number of built-in pattern types (11 in the paper).
	// Custom domain-specific types registered through Config.Custom are
	// assigned Type values starting at NumTypes (see CustomType).
	NumTypes
)

const (
	// OtherPattern is the dp(ds, type) placeholder when the requested type
	// does not hold but some other type does (Section 3.1, case 2).
	OtherPattern Type = -1 - iota
	// NoPattern is the placeholder when no type holds (case 3).
	NoPattern
)

// CustomType returns the Type value of the i-th custom evaluator in a
// Config's Custom slice.
func CustomType(i int) Type { return NumTypes + Type(i) }

var typeNames = [...]string{
	OutstandingFirst: "Outstanding #1",
	OutstandingLast:  "Outstanding #Last",
	OutstandingTop2:  "Outstanding Top-2",
	OutstandingLast2: "Outstanding Last-2",
	Evenness:         "Evenness",
	Attribution:      "Attribution",
	Trend:            "Trend",
	Outlier:          "Outlier",
	Seasonality:      "Seasonality",
	ChangePoint:      "Change Point",
	Unimodality:      "Unimodality",
}

// String returns the display name of the pattern type. Custom types render
// as "Custom(i)" — Config.TypeName resolves their registered names.
func (t Type) String() string {
	switch {
	case t >= 0 && t < NumTypes:
		return typeNames[t]
	case t >= NumTypes:
		return fmt.Sprintf("Custom(%d)", int(t-NumTypes))
	case t == OtherPattern:
		return "Other Pattern"
	case t == NoPattern:
		return "No Pattern"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Concrete reports whether t is a real pattern type — built-in or custom —
// as opposed to the OtherPattern/NoPattern placeholders.
func (t Type) Concrete() bool { return t >= 0 }

// Builtin reports whether t is one of the paper's eleven types.
func (t Type) Builtin() bool { return t >= 0 && t < NumTypes }

// TemporalOnly reports whether the built-in type's evaluation criterion
// requires a temporal breakdown (the time-series perspectives of Table 1).
// For custom types, consult the CustomEvaluator's TemporalOnly field.
func (t Type) TemporalOnly() bool {
	switch t {
	case Trend, Outlier, Seasonality, ChangePoint, Unimodality:
		return true
	default:
		return false
	}
}

// Types returns the eleven built-in pattern types in canonical order.
func Types() []Type {
	out := make([]Type, NumTypes)
	for i := range out {
		out[i] = Type(i)
	}
	return out
}

// Highlight encodes the essential, type-dependent characteristics extracted
// by a successful evaluation (Definition 3.1). Two data patterns within an
// HDP are similar iff they share both type and highlight (Equation 8), so
// Highlight equality — via Key — defines the Sim equivalence relation.
type Highlight struct {
	// Positions are the breakdown values the pattern points at: the
	// outstanding subspace(s), the outlier positions, the unimodal extremum,
	// the change point. Order is canonical (as produced by the evaluator).
	Positions []string
	// Label qualifies the pattern: "increasing"/"decreasing" for Trend,
	// "peak"/"valley" for Unimodality, "above"/"below" for Outlier,
	// "period=N" for Seasonality. Empty when the type needs no qualifier.
	Label string
}

// Key returns the canonical identity of the highlight used by Sim.
func (h Highlight) Key() string {
	return h.Label + "@" + strings.Join(h.Positions, ",")
}

// String renders the highlight for display.
func (h Highlight) String() string {
	switch {
	case len(h.Positions) == 0 && h.Label == "":
		return "(none)"
	case len(h.Positions) == 0:
		return h.Label
	case h.Label == "":
		return strings.Join(h.Positions, ", ")
	default:
		return h.Label + ": " + strings.Join(h.Positions, ", ")
	}
}

// Evaluation is the outcome of Evaluate(ds, type) for one concrete type.
type Evaluation struct {
	// Valid is the boolean result of the evaluation criterion.
	Valid bool
	// Highlight is set when Valid.
	Highlight Highlight
	// Strength grades how strongly the criterion held, in [0, 1]
	// (1 - p-value where a test produces one). It is informational — the
	// MetaInsight score does not depend on it — but the QuickInsight
	// baseline ranks by it.
	Strength float64
}

// ScopeEvaluation is the full evaluation of one data scope across every
// concrete type — the eleven built-ins followed by any custom types of the
// Config, indexed by Type. It is the pattern cache's value type: evaluating
// dp(ds, t) requires knowing whether any other type holds, so all types are
// evaluated together and memoized as one entry.
type ScopeEvaluation struct {
	Evals    []Evaluation
	AnyValid bool
}

// ApproxBytes estimates the in-memory size of the evaluation, the unit of
// account for byte-bounded pattern caches. The estimate is computed from the
// evaluation's content only (slice lengths and string bytes, plus fixed
// per-struct overheads), so it is deterministic for deterministic data.
func (se *ScopeEvaluation) ApproxBytes() int64 {
	const (
		structOverhead = 64 // ScopeEvaluation + cache entry bookkeeping
		evalOverhead   = 56 // Evaluation struct incl. Highlight headers
	)
	b := int64(structOverhead) + int64(len(se.Evals))*evalOverhead
	for _, ev := range se.Evals {
		b += int64(len(ev.Highlight.Label))
		for _, p := range ev.Highlight.Positions {
			b += 16 + int64(len(p))
		}
	}
	return b
}

// Induced applies the paper's type-induced generative function dp(ds, type):
// it returns (type, highlight) if type holds; (OtherPattern, zero) if some
// other type holds; (NoPattern, zero) otherwise.
func (se *ScopeEvaluation) Induced(t Type) (Type, Highlight) {
	if !t.Concrete() || int(t) >= len(se.Evals) {
		panic(fmt.Sprintf("pattern: Induced called with invalid type %v", t))
	}
	if se.Evals[t].Valid {
		return t, se.Evals[t].Highlight
	}
	if se.AnyValid {
		return OtherPattern, Highlight{}
	}
	return NoPattern, Highlight{}
}

// ValidTypes returns the concrete types (built-in and custom) that hold for
// the scope.
func (se *ScopeEvaluation) ValidTypes() []Type {
	var out []Type
	for t := Type(0); int(t) < len(se.Evals); t++ {
		if se.Evals[t].Valid {
			out = append(out, t)
		}
	}
	return out
}
