package pattern

import (
	"fmt"
	"math"

	"metainsight/internal/model"
	"metainsight/internal/stats"
)

// Config holds the evaluation criteria thresholds. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Alpha is the significance level for the test-based criteria
	// (outstandingness, trend, change point).
	Alpha float64
	// EvennessCV is the maximum coefficient of variation for a series to be
	// deemed evenly distributed.
	EvennessCV float64
	// AttributionShare is the share of the total one value must reach to
	// dominate (e.g. 0.5 = majority).
	AttributionShare float64
	// OutlierSigma is the 3-sigma rule's multiplier on the residual spread.
	OutlierSigma float64
	// OutlierMaxFraction caps how many points may be flagged before the
	// "outliers" are considered structure instead (e.g. 0.2).
	OutlierMaxFraction float64
	// SmoothWindow is the centered moving-average window of the
	// non-parametric regression baseline behind the outlier test.
	SmoothWindow int
	// SeasonalityMinACF is the minimum detrended autocorrelation at the
	// candidate period.
	SeasonalityMinACF float64
	// TrendMinR2 is the minimum coefficient of determination for a trend.
	TrendMinR2 float64
	// UnimodalViolationFraction is the tolerated fraction of monotonicity
	// violations on each side of a unimodal extremum.
	UnimodalViolationFraction float64
	// UnimodalMinProminence is the minimum prominence of the extremum
	// relative to the series range (both endpoints must clear it).
	UnimodalMinProminence float64
	// Custom holds domain-specific pattern types beyond the paper's eleven
	// (the extensibility hook of Section 3.1). The i-th entry is evaluated
	// as Type CustomType(i); custom types participate in HDPs, Sim,
	// commonness/exception categorization and scoring exactly like
	// built-ins.
	Custom []CustomEvaluator
}

// CustomEvaluator is a user-supplied pattern type.
type CustomEvaluator struct {
	// Name is the display name used in descriptions.
	Name string
	// TemporalOnly restricts the type to temporal breakdowns.
	TemporalOnly bool
	// Evaluate is the criterion: given the raw data distribution it returns
	// the evaluation result (Valid + Highlight + Strength).
	Evaluate func(keys []string, values []float64) Evaluation
	// EvaluateScope, when set, takes precedence over Evaluate and also
	// receives the data scope under evaluation. Scope-aware evaluators can
	// relate the series to other data — e.g. the correlation pattern fetches
	// a second measure's series for the same scope, the multi-measure
	// analysis class the paper's Section 6 leaves as future work.
	EvaluateScope func(scope model.DataScope, keys []string, values []float64) Evaluation
	// Requires declares measures this evaluator queries beyond the mined
	// measure set (e.g. a correlation evaluator's secondary measure). The
	// engine uses the union of these declarations — Config.RequiredMeasures —
	// to decide which aggregates its scan substrate must materialize: MIN/MAX
	// accumulators exist only for columns some declared measure needs. An
	// evaluator that queries an undeclared MIN/MAX measure gets "unit lacks
	// column" at query time.
	Requires []model.Measure
}

// RequiredMeasures returns the union of every registered custom evaluator's
// Requires declarations, in registration order. It is the needed-aggregate
// contribution of pattern registration, consumed by engine.Config's
// ExtraMeasures when assembling the scan substrate.
func (c Config) RequiredMeasures() []model.Measure {
	var out []model.Measure
	seen := make(map[model.Measure]bool)
	for _, ev := range c.Custom {
		for _, m := range ev.Requires {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// TypeName resolves a type's display name under this configuration,
// including registered custom types.
func (c Config) TypeName(t Type) string {
	if t >= NumTypes && int(t-NumTypes) < len(c.Custom) {
		return c.Custom[t-NumTypes].Name
	}
	return t.String()
}

// NumConcreteTypes returns the total number of concrete types under this
// configuration (built-ins plus custom).
func (c Config) NumConcreteTypes() int { return int(NumTypes) + len(c.Custom) }

// DefaultConfig returns the thresholds used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Alpha:                     0.05,
		EvennessCV:                0.15,
		AttributionShare:          0.5,
		OutlierSigma:              3,
		OutlierMaxFraction:        0.2,
		SmoothWindow:              5,
		SeasonalityMinACF:         0.5,
		TrendMinR2:                0.5,
		UnimodalViolationFraction: 0.34,
		UnimodalMinProminence:     0.25,
	}
}

// Evaluate runs one type's evaluation criterion on a series. keys and values
// are the raw data distribution of the data scope (breakdown values in domain
// order with their aggregates); temporal says whether the breakdown dimension
// is temporal. It implements Evaluate(ds, type) of Section 3.1. Scope-aware
// custom evaluators receive a zero scope here; use EvaluateScoped when the
// scope is known.
func Evaluate(t Type, keys []string, values []float64, temporal bool, cfg Config) Evaluation {
	return EvaluateScoped(model.DataScope{}, t, keys, values, temporal, cfg)
}

// EvaluateScoped is Evaluate with the data scope made available to
// scope-aware custom evaluators.
func EvaluateScoped(scope model.DataScope, t Type, keys []string, values []float64, temporal bool, cfg Config) Evaluation {
	if len(keys) != len(values) {
		panic("pattern: keys/values length mismatch")
	}
	if t >= NumTypes {
		i := int(t - NumTypes)
		if i >= len(cfg.Custom) {
			panic(fmt.Sprintf("pattern: custom type %v not registered in Config", t))
		}
		ev := cfg.Custom[i]
		if ev.TemporalOnly && !temporal {
			return Evaluation{}
		}
		if hasNonFinite(values) {
			return Evaluation{}
		}
		if ev.EvaluateScope != nil {
			return ev.EvaluateScope(scope, keys, values)
		}
		return ev.Evaluate(keys, values)
	}
	if t.TemporalOnly() && !temporal {
		return Evaluation{}
	}
	if hasNonFinite(values) {
		return Evaluation{}
	}
	switch t {
	case OutstandingFirst:
		return evalOutstanding(keys, values, 1, true, cfg)
	case OutstandingLast:
		return evalOutstanding(keys, values, 1, false, cfg)
	case OutstandingTop2:
		return evalOutstanding(keys, values, 2, true, cfg)
	case OutstandingLast2:
		return evalOutstanding(keys, values, 2, false, cfg)
	case Evenness:
		return evalEvenness(values, cfg)
	case Attribution:
		return evalAttribution(keys, values, cfg)
	case Trend:
		return evalTrend(values, cfg)
	case Outlier:
		return evalOutlier(keys, values, cfg)
	case Seasonality:
		return evalSeasonality(values, cfg)
	case ChangePoint:
		return evalChangePoint(keys, values, cfg)
	case Unimodality:
		return evalUnimodality(keys, values, cfg)
	default:
		panic(fmt.Sprintf("pattern: Evaluate called with non-concrete type %v", t))
	}
}

// EvaluateAll evaluates every concrete type — the eleven built-ins plus any
// custom types of the Config — on a series and returns the combined scope
// evaluation, which is what the pattern cache stores. Scope-aware custom
// evaluators receive a zero scope; use EvaluateAllScoped when it is known.
func EvaluateAll(keys []string, values []float64, temporal bool, cfg Config) *ScopeEvaluation {
	return EvaluateAllScoped(model.DataScope{}, keys, values, temporal, cfg)
}

// EvaluateAllScoped is EvaluateAll with the data scope made available to
// scope-aware custom evaluators.
func EvaluateAllScoped(scope model.DataScope, keys []string, values []float64, temporal bool, cfg Config) *ScopeEvaluation {
	n := cfg.NumConcreteTypes()
	se := &ScopeEvaluation{Evals: make([]Evaluation, n)}
	for t := Type(0); int(t) < n; t++ {
		ev := EvaluateScoped(scope, t, keys, values, temporal, cfg)
		se.Evals[t] = ev
		if ev.Valid {
			se.AnyValid = true
		}
	}
	return se
}

func hasNonFinite(values []float64) bool {
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func evalOutstanding(keys []string, values []float64, lead int, top bool, cfg Config) Evaluation {
	if len(values) < lead+3 {
		return Evaluation{}
	}
	var res stats.OutstandingResult
	if top {
		res = stats.OutstandingTop(values, lead, cfg.Alpha)
	} else {
		res = stats.OutstandingBottom(values, lead, cfg.Alpha)
	}
	if !res.Significant {
		return Evaluation{}
	}
	order := stats.RankDescending(values)
	positions := make([]string, lead)
	if top {
		for i := 0; i < lead; i++ {
			positions[i] = keys[order[i]]
		}
	} else {
		for i := 0; i < lead; i++ {
			positions[i] = keys[order[len(order)-1-i]]
		}
	}
	return Evaluation{
		Valid:     true,
		Highlight: Highlight{Positions: positions},
		Strength:  1 - res.PValue,
	}
}

func evalEvenness(values []float64, cfg Config) Evaluation {
	if len(values) < 3 {
		return Evaluation{}
	}
	cv := stats.CoefficientOfVariation(values)
	if math.IsInf(cv, 1) || cv >= cfg.EvennessCV {
		return Evaluation{}
	}
	return Evaluation{
		Valid:     true,
		Highlight: Highlight{Label: "even"},
		Strength:  1 - cv/cfg.EvennessCV,
	}
}

func evalAttribution(keys []string, values []float64, cfg Config) Evaluation {
	if len(values) < 3 {
		return Evaluation{}
	}
	total := 0.0
	for _, v := range values {
		if v < 0 {
			// Shares are undefined for mixed-sign series.
			return Evaluation{}
		}
		total += v
	}
	if total <= 0 {
		return Evaluation{}
	}
	i := stats.ArgMax(values)
	share := values[i] / total
	if share <= cfg.AttributionShare {
		return Evaluation{}
	}
	return Evaluation{
		Valid:     true,
		Highlight: Highlight{Positions: []string{keys[i]}},
		Strength:  share,
	}
}

func evalTrend(values []float64, cfg Config) Evaluation {
	if len(values) < 5 {
		return Evaluation{}
	}
	fit := stats.OLS(stats.LinSpace(len(values)), values)
	if math.IsNaN(fit.Slope) || fit.Slope == 0 {
		return Evaluation{}
	}
	if fit.SlopeP >= cfg.Alpha || fit.R2 < cfg.TrendMinR2 {
		return Evaluation{}
	}
	label := "increasing"
	if fit.Slope < 0 {
		label = "decreasing"
	}
	return Evaluation{
		Valid:     true,
		Highlight: Highlight{Label: label},
		Strength:  1 - fit.SlopeP,
	}
}

func evalOutlier(keys []string, values []float64, cfg Config) Evaluation {
	n := len(values)
	if n < 6 {
		return Evaluation{}
	}
	window := cfg.SmoothWindow
	if window >= n {
		window = n - 1
	}
	// Running median as the non-parametric regression baseline and a
	// MAD-based robust sigma: neither is contaminated by the outliers the
	// 3-sigma rule is looking for.
	baseline := stats.MedianFilter(values, window)
	resid := stats.Residuals(values, baseline)
	sd := stats.MAD(resid)
	if sd == 0 || math.IsNaN(sd) {
		sd = stats.StdDev(resid)
	}
	if sd == 0 || math.IsNaN(sd) {
		return Evaluation{}
	}
	var positions []string
	above, below := 0, 0
	worstZ := 0.0
	for i, r := range resid {
		z := r / sd
		if math.Abs(z) > cfg.OutlierSigma {
			positions = append(positions, keys[i])
			if z > 0 {
				above++
			} else {
				below++
			}
			if math.Abs(z) > worstZ {
				worstZ = math.Abs(z)
			}
		}
	}
	if len(positions) == 0 || float64(len(positions)) > cfg.OutlierMaxFraction*float64(n) {
		return Evaluation{}
	}
	label := "above"
	switch {
	case above > 0 && below > 0:
		label = "mixed"
	case below > 0:
		label = "below"
	}
	return Evaluation{
		Valid:     true,
		Highlight: Highlight{Positions: positions, Label: label},
		Strength:  1 - 2*stats.NormalSF(worstZ),
	}
}

func evalSeasonality(values []float64, cfg Config) Evaluation {
	n := len(values)
	if n < 8 {
		return Evaluation{}
	}
	// Detrend first so a strong trend does not masquerade as correlation.
	fit := stats.OLS(stats.LinSpace(n), values)
	detrended := make([]float64, n)
	for i, v := range values {
		detrended[i] = v - (fit.Intercept + fit.Slope*float64(i))
	}
	// Require at least three complete cycles so short noise runs cannot
	// masquerade as a period.
	maxLag := n / 3
	acf := stats.ACF(detrended, maxLag)
	bestLag, bestACF := 0, 0.0
	for lag := 2; lag <= maxLag; lag++ {
		a := acf[lag-1]
		// Require a local maximum so harmonics of shorter periods do not win.
		if lag >= 3 && a <= acf[lag-2] {
			continue
		}
		if a > bestACF {
			bestLag, bestACF = lag, a
		}
	}
	if bestLag == 0 || bestACF < cfg.SeasonalityMinACF {
		return Evaluation{}
	}
	// Confirm with the explained-variance check: folding the detrended
	// series by the period must remove most of its variance.
	strength := stats.SeasonalStrength(detrended, bestLag)
	if strength < 0.5 {
		return Evaluation{}
	}
	return Evaluation{
		Valid:     true,
		Highlight: Highlight{Label: fmt.Sprintf("period=%d", bestLag)},
		Strength:  bestACF,
	}
}

func evalChangePoint(keys []string, values []float64, cfg Config) Evaluation {
	n := len(values)
	if n < 6 {
		return Evaluation{}
	}
	bestP, bestIdx := 1.0, -1
	for split := 2; split <= n-2; split++ {
		res := stats.WelchTTest(values[:split], values[split:])
		if !math.IsNaN(res.T) && res.P < bestP {
			bestP, bestIdx = res.P, split
		}
	}
	// Bonferroni correction over the n-3 candidate splits keeps the
	// family-wise false-positive rate at alpha.
	if bestIdx < 0 || bestP*float64(n-3) >= cfg.Alpha {
		return Evaluation{}
	}
	return Evaluation{
		Valid:     true,
		Highlight: Highlight{Positions: []string{keys[bestIdx]}},
		Strength:  1 - bestP,
	}
}

func evalUnimodality(keys []string, values []float64, cfg Config) Evaluation {
	n := len(values)
	if n < 5 {
		return Evaluation{}
	}
	lo, loIdx, hi, hiIdx := stats.MinMax(values)
	rng := hi - lo
	if rng == 0 {
		return Evaluation{}
	}
	if ev, ok := unimodalAt(keys, values, loIdx, "valley", rng, cfg); ok {
		return ev
	}
	if ev, ok := unimodalAt(keys, values, hiIdx, "peak", rng, cfg); ok {
		return ev
	}
	return Evaluation{}
}

// unimodalAt checks a U-shape (valley) or Λ-shape (peak) with its extremum at
// index idx: the extremum must be interior, both sides must be (tolerantly)
// monotone toward it, and both endpoints must be prominently separated from
// the extremum.
func unimodalAt(keys []string, values []float64, idx int, label string, rng float64, cfg Config) (Evaluation, bool) {
	n := len(values)
	if idx <= 0 || idx >= n-1 {
		return Evaluation{}, false
	}
	sign := 1.0 // valley: values fall then rise
	if label == "peak" {
		sign = -1.0
	}
	// A step only counts as a monotonicity violation when it is material
	// relative to the series range; noisy plateaus (many near-zero
	// wrong-direction steps) must not defeat an otherwise clean U-shape.
	tolerance := 0.08 * rng
	violations := 0
	for i := 0; i < idx; i++ {
		if sign*(values[i+1]-values[i]) > tolerance {
			violations++
		}
	}
	if float64(violations) > cfg.UnimodalViolationFraction*float64(idx) {
		return Evaluation{}, false
	}
	violations = 0
	for i := idx; i < n-1; i++ {
		if sign*(values[i+1]-values[i]) < -tolerance {
			violations++
		}
	}
	if float64(violations) > cfg.UnimodalViolationFraction*float64(n-1-idx) {
		return Evaluation{}, false
	}
	promLeft := sign * (values[0] - values[idx]) / rng
	promRight := sign * (values[n-1] - values[idx]) / rng
	if promLeft < cfg.UnimodalMinProminence || promRight < cfg.UnimodalMinProminence {
		return Evaluation{}, false
	}
	strength := math.Min(promLeft, promRight)
	if strength > 1 {
		strength = 1
	}
	return Evaluation{
		Valid:     true,
		Highlight: Highlight{Positions: []string{keys[idx]}, Label: label},
		Strength:  strength,
	}, true
}
