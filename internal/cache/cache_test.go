package cache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func unit(sub, breakdown string, groups int) *Unit {
	u := &Unit{
		Key:  UnitKey{Subspace: sub, Breakdown: breakdown},
		Sums: map[string][]float64{}, Mins: map[string][]float64{}, Maxs: map[string][]float64{},
	}
	for i := 0; i < groups; i++ {
		u.GroupKeys = append(u.GroupKeys, fmt.Sprintf("g%d", i))
		u.Counts = append(u.Counts, 1)
	}
	u.Sums["V"] = make([]float64, groups)
	u.Mins["V"] = make([]float64, groups)
	u.Maxs["V"] = make([]float64, groups)
	return u
}

func TestQueryCachePutGet(t *testing.T) {
	c := NewQueryCache(true)
	if _, ok := c.Get("{*}", "Month"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(unit("{*}", "Month", 12))
	u, ok := c.Get("{*}", "Month")
	if !ok || len(u.GroupKeys) != 12 {
		t.Fatal("stored unit not returned")
	}
	if _, ok := c.Get("{*}", "City"); ok {
		t.Fatal("wrong breakdown hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 1.0/3 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

func TestQueryCachePeekDoesNotCount(t *testing.T) {
	c := NewQueryCache(true)
	c.Put(unit("a", "b", 3))
	if _, ok := c.Peek("a", "b"); !ok {
		t.Fatal("peek missed")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("peek touched counters: %+v", st)
	}
}

func TestDisabledQueryCache(t *testing.T) {
	c := NewQueryCache(false)
	c.Put(unit("a", "b", 3))
	if _, ok := c.Get("a", "b"); ok {
		t.Fatal("disabled cache returned a unit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats = %+v", st)
	}
	if c.Enabled() {
		t.Error("Enabled() = true")
	}
}

func TestQueryCacheByteAccountingOnReplace(t *testing.T) {
	c := NewQueryCache(true)
	c.Put(unit("a", "b", 10))
	before := c.Stats().Bytes
	c.Put(unit("a", "b", 10)) // same size replacement
	if c.Stats().Bytes != before {
		t.Errorf("bytes drifted on replace: %d → %d", before, c.Stats().Bytes)
	}
	c.Put(unit("a2", "b", 10))
	if c.Stats().Bytes <= before {
		t.Error("bytes did not grow with a new entry")
	}
}

func TestUnitApproxBytesGrowsWithGroups(t *testing.T) {
	small := unit("a", "b", 2).ApproxBytes()
	big := unit("a", "b", 200).ApproxBytes()
	if big <= small {
		t.Errorf("ApproxBytes: %d vs %d", small, big)
	}
}

func TestPatternCache(t *testing.T) {
	c := NewPatternCache[int](true)
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty hit")
	}
	c.Put("k", 42)
	v, ok := c.Get("k")
	if !ok || v != 42 {
		t.Fatal("value lost")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDisabledPatternCache(t *testing.T) {
	c := NewPatternCache[string](false)
	c.Put("k", "v")
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

func TestQueryCacheConcurrency(t *testing.T) {
	c := NewQueryCache(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("s%d", i%17)
				c.Put(unit(key, "b", 4))
				c.Get(key, "b")
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 17 {
		t.Errorf("entries = %d", st.Entries)
	}
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("lookups = %d", st.Hits+st.Misses)
	}
}

func TestFlightCoalescesConcurrentCalls(t *testing.T) {
	var f Flight[string, int]
	var computed atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, 8)
	leaders := make([]bool, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], leaders[0] = f.Do("k", func() int {
			close(started)
			<-release
			computed.Add(1)
			return 7
		})
	}()
	<-started
	var entered atomic.Int64
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Add(1)
			results[i], leaders[i] = f.Do("k", func() int {
				computed.Add(1)
				return 7
			})
		}(i)
	}
	// Park every follower inside Do before releasing the leader: on a
	// single-P scheduler the spawned goroutines may not run until this
	// goroutine blocks, and if the leader finished first the key would be
	// forgotten and every "follower" would lead its own flight.
	for entered.Load() < 7 {
		runtime.Gosched()
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computed.Load(); n != 1 {
		t.Errorf("fn executed %d times, want 1", n)
	}
	nLeaders := 0
	for i := range results {
		if results[i] != 7 {
			t.Errorf("result[%d] = %d", i, results[i])
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Errorf("leaders = %d, want 1", nLeaders)
	}
}

func TestFlightForgetsCompletedKeys(t *testing.T) {
	var f Flight[string, int]
	calls := 0
	for i := 0; i < 3; i++ {
		v, leader := f.Do("k", func() int { calls++; return calls })
		if !leader {
			t.Fatalf("call %d was not leader", i)
		}
		if v != i+1 {
			t.Fatalf("call %d returned %d", i, v)
		}
	}
}

func TestQueryCacheSnapshot(t *testing.T) {
	c := NewQueryCache(true)
	a, b := unit("s1", "b", 3), unit("s2", "b", 5)
	c.Put(a)
	c.Put(b)
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	if snap[a.Key] != a.ApproxBytes() || snap[b.Key] != b.ApproxBytes() {
		t.Errorf("snapshot sizes = %v", snap)
	}
	if got := NewQueryCache(false).Snapshot(); len(got) != 0 {
		t.Errorf("disabled snapshot = %v", got)
	}
}

func TestPatternCachePeekDoesNotCount(t *testing.T) {
	c := NewPatternCache[int](true)
	c.Put("k", 1)
	if _, ok := c.Peek("k"); !ok {
		t.Fatal("peek missed stored key")
	}
	if _, ok := c.Peek("absent"); ok {
		t.Fatal("peek hit absent key")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("peek touched counters: %+v", st)
	}
}

func TestPatternCacheMaterialize(t *testing.T) {
	c := NewPatternCache[int](true)
	calls := 0
	compute := func() int { calls++; return 9 }
	if v := c.Materialize("k", compute); v != 9 {
		t.Fatalf("materialize = %d", v)
	}
	if v := c.Materialize("k", compute); v != 9 {
		t.Fatalf("second materialize = %d", v)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1 (memoized)", calls)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 1 {
		t.Errorf("materialize stats = %+v", st)
	}

	// Disabled cache computes every time and stores nothing.
	d := NewPatternCache[int](false)
	calls = 0
	d.Materialize("k", compute)
	d.Materialize("k", compute)
	if calls != 2 {
		t.Errorf("disabled materialize computed %d times, want 2", calls)
	}
}

func TestPatternCacheMaterializeConcurrent(t *testing.T) {
	c := NewPatternCache[int](true)
	var computed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%7)
				v := c.Materialize(key, func() int {
					computed.Add(1)
					return i % 7
				})
				_ = v
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Entries != 7 {
		t.Errorf("entries = %d", st.Entries)
	}
	// Each key computes at least once; coalescing keeps duplicates rare but
	// a leader finishing before a racer looks up can recompute, so only the
	// lower bound is guaranteed alongside memoization of completed entries.
	if computed.Load() < 7 {
		t.Errorf("computed = %d, want >= 7", computed.Load())
	}
}

func TestPatternCacheKeySet(t *testing.T) {
	c := NewPatternCache[int](true)
	c.Put("a", 1)
	c.Put("b", 2)
	ks := c.KeySet()
	if len(ks) != 2 {
		t.Fatalf("keyset = %v", ks)
	}
	for _, k := range []string{"a", "b"} {
		if _, ok := ks[k]; !ok {
			t.Errorf("keyset missing %q", k)
		}
	}
}

func TestShardDistribution(t *testing.T) {
	// Keys spread across shards: with 500 distinct keys and 16 shards, every
	// shard should receive at least one key (collision into few shards would
	// recreate the global-lock hot path this cache is sharded to avoid).
	seen := make(map[uint64]bool)
	for i := 0; i < 500; i++ {
		k := UnitKey{Subspace: fmt.Sprintf("city=c%d", i), Breakdown: "month"}
		seen[k.hash()%shardCount] = true
	}
	if len(seen) != shardCount {
		t.Errorf("keys landed in %d/%d shards", len(seen), shardCount)
	}
}
