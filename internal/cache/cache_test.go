package cache

import (
	"fmt"
	"sync"
	"testing"
)

func unit(sub, breakdown string, groups int) *Unit {
	u := &Unit{
		Key:  UnitKey{Subspace: sub, Breakdown: breakdown},
		Sums: map[string][]float64{}, Mins: map[string][]float64{}, Maxs: map[string][]float64{},
	}
	for i := 0; i < groups; i++ {
		u.GroupKeys = append(u.GroupKeys, fmt.Sprintf("g%d", i))
		u.Counts = append(u.Counts, 1)
	}
	u.Sums["V"] = make([]float64, groups)
	u.Mins["V"] = make([]float64, groups)
	u.Maxs["V"] = make([]float64, groups)
	return u
}

func TestQueryCachePutGet(t *testing.T) {
	c := NewQueryCache(true)
	if _, ok := c.Get("{*}", "Month"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(unit("{*}", "Month", 12))
	u, ok := c.Get("{*}", "Month")
	if !ok || len(u.GroupKeys) != 12 {
		t.Fatal("stored unit not returned")
	}
	if _, ok := c.Get("{*}", "City"); ok {
		t.Fatal("wrong breakdown hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 1.0/3 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

func TestQueryCachePeekDoesNotCount(t *testing.T) {
	c := NewQueryCache(true)
	c.Put(unit("a", "b", 3))
	if _, ok := c.Peek("a", "b"); !ok {
		t.Fatal("peek missed")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("peek touched counters: %+v", st)
	}
}

func TestDisabledQueryCache(t *testing.T) {
	c := NewQueryCache(false)
	c.Put(unit("a", "b", 3))
	if _, ok := c.Get("a", "b"); ok {
		t.Fatal("disabled cache returned a unit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats = %+v", st)
	}
	if c.Enabled() {
		t.Error("Enabled() = true")
	}
}

func TestQueryCacheByteAccountingOnReplace(t *testing.T) {
	c := NewQueryCache(true)
	c.Put(unit("a", "b", 10))
	before := c.Stats().Bytes
	c.Put(unit("a", "b", 10)) // same size replacement
	if c.Stats().Bytes != before {
		t.Errorf("bytes drifted on replace: %d → %d", before, c.Stats().Bytes)
	}
	c.Put(unit("a2", "b", 10))
	if c.Stats().Bytes <= before {
		t.Error("bytes did not grow with a new entry")
	}
}

func TestUnitApproxBytesGrowsWithGroups(t *testing.T) {
	small := unit("a", "b", 2).ApproxBytes()
	big := unit("a", "b", 200).ApproxBytes()
	if big <= small {
		t.Errorf("ApproxBytes: %d vs %d", small, big)
	}
}

func TestPatternCache(t *testing.T) {
	c := NewPatternCache[int](true)
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty hit")
	}
	c.Put("k", 42)
	v, ok := c.Get("k")
	if !ok || v != 42 {
		t.Fatal("value lost")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDisabledPatternCache(t *testing.T) {
	c := NewPatternCache[string](false)
	c.Put("k", "v")
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

func TestQueryCacheConcurrency(t *testing.T) {
	c := NewQueryCache(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("s%d", i%17)
				c.Put(unit(key, "b", 4))
				c.Get(key, "b")
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 17 {
		t.Errorf("entries = %d", st.Entries)
	}
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("lookups = %d", st.Hits+st.Misses)
	}
}
