// Package cache implements the two caches of the MetaInsight mining
// procedure (Section 4.2): the query cache, whose unit is a 2-dimensional
// aggregation grid across all measures for one (subspace, breakdown) pair
// (Figure 5), and the pattern cache, which memoizes data-pattern evaluation
// results keyed by data scope (Section 4.2.3). Both caches expose hit-rate
// and size statistics, reproduced in the paper's Table 3.
//
// Both caches are sharded by key hash so the paper's 8 worker threads do not
// serialize on a single lock on the hot path, and the package provides a
// generic single-flight group (Flight) used to coalesce concurrent misses on
// the same key into one computation.
package cache

import (
	"sync"
	"sync/atomic"
)

// shardCount is the number of lock shards per cache. 16 comfortably exceeds
// the paper's 8 workers, keeping the expected number of workers contending
// on any one shard below one.
const shardCount = 16

// UnitKey identifies one query-cache unit.
type UnitKey struct {
	Subspace  string // canonical subspace key (model.Subspace.Key)
	Breakdown string // breakdown dimension name
}

// hash returns an FNV-1a hash of the key for shard selection.
func (k UnitKey) hash() uint64 {
	h := fnv1a(k.Subspace)
	h = (h ^ 0xff) * fnvPrime
	for i := 0; i < len(k.Breakdown); i++ {
		h = (h ^ uint64(k.Breakdown[i])) * fnvPrime
	}
	return h
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// Unit is one query-cache entry: the aggregation of every measure column of
// the table, grouped by the breakdown dimension, under a fixed subspace
// filter — exactly the compound structure of the paper's Figure 5. It serves
// basic queries for any measure in M (measure extension comes for free),
// impact calculation (the impact measure is one of its columns), and the
// sibling units written by an augmented query serve subspace extension.
type Unit struct {
	Key UnitKey
	// GroupKeys are the breakdown values with at least one record, in
	// domain order.
	GroupKeys []string
	// Counts[i] is the number of records in group i (always > 0).
	Counts []float64
	// Sums, Mins and Maxs hold, per measure column name, the aggregate for
	// each group, aligned with GroupKeys. Together with Counts they answer
	// SUM, COUNT, AVG, MIN and MAX without re-scanning.
	Sums map[string][]float64
	Mins map[string][]float64
	Maxs map[string][]float64
}

// ApproxBytes estimates the in-memory footprint of the unit, used for the
// cache-size statistics of Table 3.
func (u *Unit) ApproxBytes() int64 {
	n := int64(len(u.GroupKeys))
	bytes := int64(64) // struct + maps overhead
	for _, k := range u.GroupKeys {
		bytes += int64(len(k)) + 16
	}
	cols := int64(len(u.Sums) + len(u.Mins) + len(u.Maxs) + 1)
	bytes += cols * n * 8
	return bytes
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits    int64
	Misses  int64
	Entries int64
	Bytes   int64
}

// HitRate returns Hits / (Hits + Misses), or 0 when no lookups occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// qcShard is one lock shard of a QueryCache.
type qcShard struct {
	mu    sync.RWMutex
	units map[UnitKey]*Unit
	// order is the insertion order of the live keys, the shard's FIFO
	// eviction queue when the cache is byte-bounded.
	order []UnitKey
	// bytes is the shard's approximate live size.
	bytes int64
}

// QueryCache stores query-cache units, sharded by key hash so concurrent
// workers do not serialize on one global lock. A disabled cache (see
// NewQueryCache) counts every lookup as a miss and drops every Put, which is
// how the paper's "w/o Query Cache" ablation is run. QueryCache is safe for
// concurrent use.
type QueryCache struct {
	enabled   bool
	shards    [shardCount]qcShard
	hits      atomic.Int64
	misses    atomic.Int64
	bytes     atomic.Int64
	maxBytes  int64 // 0 = unbounded; set before use
	shardCap  int64 // maxBytes / shardCount
	evictions atomic.Int64
}

// NewQueryCache creates a query cache. If enabled is false the cache is a
// no-op that still counts misses, for ablation experiments.
func NewQueryCache(enabled bool) *QueryCache {
	c := &QueryCache{enabled: enabled}
	for i := range c.shards {
		c.shards[i].units = make(map[UnitKey]*Unit)
	}
	return c
}

// Enabled reports whether the cache stores anything.
func (c *QueryCache) Enabled() bool { return c.enabled }

// SetMaxBytes bounds the cache to approximately maxBytes, split evenly into
// per-shard byte caps; 0 removes the bound. When a Put pushes a shard over
// its cap, the shard evicts its oldest entries (insertion-order FIFO) until
// it fits — never the entry just inserted, so the working unit always
// survives its own Put. Must be called before the cache is used
// concurrently.
//
// Physical evictions depend on insertion interleaving and may vary across
// worker counts; they only ever cause identical re-scans. The
// worker-count-invariant eviction count reported in miner.Stats.Evictions
// comes from the miner's simulated commit-order cache, not from here.
func (c *QueryCache) SetMaxBytes(maxBytes int64) {
	if maxBytes < 0 {
		maxBytes = 0
	}
	c.maxBytes = maxBytes
	c.shardCap = maxBytes / shardCount
}

// MaxBytes returns the configured bound (0 = unbounded).
func (c *QueryCache) MaxBytes() int64 { return c.maxBytes }

// Evictions returns how many entries this cache has physically evicted.
func (c *QueryCache) Evictions() int64 { return c.evictions.Load() }

func (c *QueryCache) shard(k UnitKey) *qcShard {
	return &c.shards[k.hash()%shardCount]
}

func (c *QueryCache) lookup(k UnitKey) (*Unit, bool) {
	s := c.shard(k)
	s.mu.RLock()
	u, ok := s.units[k]
	s.mu.RUnlock()
	return u, ok
}

// Get looks up the unit for (subspace, breakdown), counting a hit or miss.
func (c *QueryCache) Get(subspace, breakdown string) (*Unit, bool) {
	if !c.enabled {
		c.misses.Add(1)
		return nil, false
	}
	u, ok := c.lookup(UnitKey{Subspace: subspace, Breakdown: breakdown})
	if ok {
		c.hits.Add(1)
		return u, true
	}
	c.misses.Add(1)
	return nil, false
}

// Peek looks up a unit without touching the hit/miss counters. The miner's
// prefetch paths use it to avoid double-counting lookups it just performed.
func (c *QueryCache) Peek(subspace, breakdown string) (*Unit, bool) {
	if !c.enabled {
		return nil, false
	}
	return c.lookup(UnitKey{Subspace: subspace, Breakdown: breakdown})
}

// Put stores a unit, replacing any previous entry with the same key, then
// enforces the shard's byte cap (see SetMaxBytes).
func (c *QueryCache) Put(u *Unit) {
	if !c.enabled {
		return
	}
	s := c.shard(u.Key)
	ub := u.ApproxBytes()
	s.mu.Lock()
	if old, ok := s.units[u.Key]; ok {
		ob := old.ApproxBytes()
		s.bytes -= ob
		c.bytes.Add(-ob)
	} else {
		s.order = append(s.order, u.Key)
	}
	s.units[u.Key] = u
	s.bytes += ub
	c.bytes.Add(ub)
	if c.shardCap > 0 {
		for s.bytes > c.shardCap && len(s.order) > 1 && s.order[0] != u.Key {
			victim := s.order[0]
			s.order = s.order[1:]
			if old, ok := s.units[victim]; ok {
				ob := old.ApproxBytes()
				delete(s.units, victim)
				s.bytes -= ob
				c.bytes.Add(-ob)
				c.evictions.Add(1)
			}
		}
	}
	s.mu.Unlock()
}

// Snapshot returns the keys currently stored with their approximate sizes.
// The miner seeds its canonical accounting from it at the start of a run, so
// a warm cache shared across runs is credited with the hits it will serve.
func (c *QueryCache) Snapshot() map[UnitKey]int64 {
	out := make(map[UnitKey]int64)
	if !c.enabled {
		return out
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, u := range s.units {
			out[k] = u.ApproxBytes()
		}
		s.mu.RUnlock()
	}
	return out
}

// ShardStats returns per-shard entry counts and approximate byte sizes, in
// shard order. Hit/miss counters are cache-global (kept atomic off the shard
// locks) and therefore zero in each entry; the observability layer publishes
// shard occupancy to make hash-skew across the lock shards visible.
func (c *QueryCache) ShardStats() []Stats {
	out := make([]Stats, shardCount)
	if !c.enabled {
		return out
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		var bytes int64
		for _, u := range s.units {
			bytes += u.ApproxBytes()
		}
		out[i] = Stats{Entries: int64(len(s.units)), Bytes: bytes}
		s.mu.RUnlock()
	}
	return out
}

// Stats returns a snapshot of the cache counters.
func (c *QueryCache) Stats() Stats {
	var entries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		entries += int64(len(s.units))
		s.mu.RUnlock()
	}
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: entries,
		Bytes:   c.bytes.Load(),
	}
}

// pcShard is one lock shard of a PatternCache.
type pcShard[V any] struct {
	mu      sync.RWMutex
	entries map[string]V
	order   []string // insertion-order FIFO eviction queue when bounded
	bytes   int64
}

// PatternCache memoizes values of type V keyed by string (MetaInsight keys
// pattern evaluations by data scope), sharded by key hash. A disabled cache
// counts misses and stores nothing, matching the "w/o Pattern Cache"
// ablation. PatternCache is safe for concurrent use.
type PatternCache[V any] struct {
	enabled   bool
	shards    [shardCount]pcShard[V]
	flight    Flight[string, V]
	hits      atomic.Int64
	misses    atomic.Int64
	bytes     atomic.Int64
	maxBytes  int64
	shardCap  int64
	sizeOf    func(key string, v V) int64
	evictions atomic.Int64
}

// NewPatternCache creates a pattern cache; disabled caches are no-ops that
// still count misses.
func NewPatternCache[V any](enabled bool) *PatternCache[V] {
	c := &PatternCache[V]{enabled: enabled}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]V)
	}
	return c
}

// Enabled reports whether the cache stores anything.
func (c *PatternCache[V]) Enabled() bool { return c.enabled }

// SetMaxBytes bounds the cache to approximately maxBytes using sizeOf to
// measure entries, with the same per-shard FIFO semantics as
// QueryCache.SetMaxBytes; maxBytes 0 or a nil sizeOf removes the bound.
// Must be called before the cache is used concurrently.
func (c *PatternCache[V]) SetMaxBytes(maxBytes int64, sizeOf func(key string, v V) int64) {
	if maxBytes < 0 || sizeOf == nil {
		maxBytes = 0
	}
	c.maxBytes = maxBytes
	c.shardCap = maxBytes / shardCount
	c.sizeOf = sizeOf
}

// MaxBytes returns the configured bound (0 = unbounded).
func (c *PatternCache[V]) MaxBytes() int64 { return c.maxBytes }

// SizeOf measures one entry with the configured size function (0 when
// unbounded). The miner uses it to mirror eviction in its simulated cache.
func (c *PatternCache[V]) SizeOf(key string, v V) int64 {
	if c.sizeOf == nil {
		return 0
	}
	return c.sizeOf(key, v)
}

// Evictions returns how many entries this cache has physically evicted.
func (c *PatternCache[V]) Evictions() int64 { return c.evictions.Load() }

func (c *PatternCache[V]) shard(key string) *pcShard[V] {
	return &c.shards[fnv1a(key)%shardCount]
}

func (c *PatternCache[V]) lookup(key string) (V, bool) {
	s := c.shard(key)
	s.mu.RLock()
	v, ok := s.entries[key]
	s.mu.RUnlock()
	return v, ok
}

// Get looks up key, counting a hit or miss.
func (c *PatternCache[V]) Get(key string) (V, bool) {
	var zero V
	if !c.enabled {
		c.misses.Add(1)
		return zero, false
	}
	if v, ok := c.lookup(key); ok {
		c.hits.Add(1)
		return v, true
	}
	c.misses.Add(1)
	return zero, false
}

// Peek looks up key without touching the hit/miss counters.
func (c *PatternCache[V]) Peek(key string) (V, bool) {
	var zero V
	if !c.enabled {
		return zero, false
	}
	return c.lookup(key)
}

// Put stores key → v, then enforces the shard's byte cap (see SetMaxBytes).
func (c *PatternCache[V]) Put(key string, v V) {
	if !c.enabled {
		return
	}
	s := c.shard(key)
	bounded := c.shardCap > 0 && c.sizeOf != nil
	var vb int64
	if bounded {
		vb = c.sizeOf(key, v)
	}
	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		if bounded {
			ob := c.sizeOf(key, old)
			s.bytes -= ob
			c.bytes.Add(-ob)
		}
	} else if bounded {
		s.order = append(s.order, key)
	}
	s.entries[key] = v
	if bounded {
		s.bytes += vb
		c.bytes.Add(vb)
		for s.bytes > c.shardCap && len(s.order) > 1 && s.order[0] != key {
			victim := s.order[0]
			s.order = s.order[1:]
			if old, ok := s.entries[victim]; ok {
				ob := c.sizeOf(victim, old)
				delete(s.entries, victim)
				s.bytes -= ob
				c.bytes.Add(-ob)
				c.evictions.Add(1)
			}
		}
	}
	s.mu.Unlock()
}

// Materialize returns the memoized value for key, computing and storing it
// on a miss. Concurrent misses on the same key single-flight into one
// compute call. It does not touch the hit/miss counters: the miner accounts
// for pattern-cache traffic canonically at commit time, independent of the
// physical interleaving. On a disabled cache every call computes.
func (c *PatternCache[V]) Materialize(key string, compute func() V) V {
	if !c.enabled {
		return compute()
	}
	if v, ok := c.lookup(key); ok {
		return v
	}
	v, _ := c.flight.Do(key, func() V {
		v := compute()
		c.Put(key, v)
		return v
	})
	return v
}

// KeySet returns the set of keys currently stored. The miner seeds its
// canonical accounting from it at the start of a run.
func (c *PatternCache[V]) KeySet() map[string]struct{} {
	out := make(map[string]struct{})
	if !c.enabled {
		return out
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k := range s.entries {
			out[k] = struct{}{}
		}
		s.mu.RUnlock()
	}
	return out
}

// KeySizes returns the stored keys with their measured sizes (0 each when
// the cache is unbounded). The miner seeds its simulated pattern cache from
// it so warm entries participate in commit-order eviction.
func (c *PatternCache[V]) KeySizes() map[string]int64 {
	out := make(map[string]int64)
	if !c.enabled {
		return out
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, v := range s.entries {
			if c.sizeOf != nil {
				out[k] = c.sizeOf(k, v)
			} else {
				out[k] = 0
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// ShardStats returns per-shard entry counts, in shard order; see
// QueryCache.ShardStats.
func (c *PatternCache[V]) ShardStats() []Stats {
	out := make([]Stats, shardCount)
	if !c.enabled {
		return out
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		out[i] = Stats{Entries: int64(len(s.entries))}
		s.mu.RUnlock()
	}
	return out
}

// Stats returns a snapshot of the cache counters. Bytes is left zero; the
// pattern cache is reported by entry count in Table 3.
func (c *PatternCache[V]) Stats() Stats {
	var entries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		entries += int64(len(s.entries))
		s.mu.RUnlock()
	}
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: entries,
	}
}
