// Package cache implements the two caches of the MetaInsight mining
// procedure (Section 4.2): the query cache, whose unit is a 2-dimensional
// aggregation grid across all measures for one (subspace, breakdown) pair
// (Figure 5), and the pattern cache, which memoizes data-pattern evaluation
// results keyed by data scope (Section 4.2.3). Both caches expose hit-rate
// and size statistics, reproduced in the paper's Table 3.
package cache

import (
	"sync"
	"sync/atomic"
)

// UnitKey identifies one query-cache unit.
type UnitKey struct {
	Subspace  string // canonical subspace key (model.Subspace.Key)
	Breakdown string // breakdown dimension name
}

// Unit is one query-cache entry: the aggregation of every measure column of
// the table, grouped by the breakdown dimension, under a fixed subspace
// filter — exactly the compound structure of the paper's Figure 5. It serves
// basic queries for any measure in M (measure extension comes for free),
// impact calculation (the impact measure is one of its columns), and the
// sibling units written by an augmented query serve subspace extension.
type Unit struct {
	Key UnitKey
	// GroupKeys are the breakdown values with at least one record, in
	// domain order.
	GroupKeys []string
	// Counts[i] is the number of records in group i (always > 0).
	Counts []float64
	// Sums, Mins and Maxs hold, per measure column name, the aggregate for
	// each group, aligned with GroupKeys. Together with Counts they answer
	// SUM, COUNT, AVG, MIN and MAX without re-scanning.
	Sums map[string][]float64
	Mins map[string][]float64
	Maxs map[string][]float64
}

// ApproxBytes estimates the in-memory footprint of the unit, used for the
// cache-size statistics of Table 3.
func (u *Unit) ApproxBytes() int64 {
	n := int64(len(u.GroupKeys))
	bytes := int64(64) // struct + maps overhead
	for _, k := range u.GroupKeys {
		bytes += int64(len(k)) + 16
	}
	cols := int64(len(u.Sums) + len(u.Mins) + len(u.Maxs) + 1)
	bytes += cols * n * 8
	return bytes
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits    int64
	Misses  int64
	Entries int64
	Bytes   int64
}

// HitRate returns Hits / (Hits + Misses), or 0 when no lookups occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// QueryCache stores query-cache units. A disabled cache (see New) counts
// every lookup as a miss and drops every Put, which is how the paper's
// "w/o Query Cache" ablation is run. QueryCache is safe for concurrent use.
type QueryCache struct {
	enabled bool
	mu      sync.RWMutex
	units   map[UnitKey]*Unit
	hits    atomic.Int64
	misses  atomic.Int64
	bytes   atomic.Int64
}

// NewQueryCache creates a query cache. If enabled is false the cache is a
// no-op that still counts misses, for ablation experiments.
func NewQueryCache(enabled bool) *QueryCache {
	return &QueryCache{enabled: enabled, units: make(map[UnitKey]*Unit)}
}

// Enabled reports whether the cache stores anything.
func (c *QueryCache) Enabled() bool { return c.enabled }

// Get looks up the unit for (subspace, breakdown), counting a hit or miss.
func (c *QueryCache) Get(subspace, breakdown string) (*Unit, bool) {
	if !c.enabled {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.RLock()
	u, ok := c.units[UnitKey{Subspace: subspace, Breakdown: breakdown}]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return u, true
	}
	c.misses.Add(1)
	return nil, false
}

// Peek looks up a unit without touching the hit/miss counters. The miner's
// prefetch paths use it to avoid double-counting lookups it just performed.
func (c *QueryCache) Peek(subspace, breakdown string) (*Unit, bool) {
	if !c.enabled {
		return nil, false
	}
	c.mu.RLock()
	u, ok := c.units[UnitKey{Subspace: subspace, Breakdown: breakdown}]
	c.mu.RUnlock()
	return u, ok
}

// Put stores a unit, replacing any previous entry with the same key.
func (c *QueryCache) Put(u *Unit) {
	if !c.enabled {
		return
	}
	c.mu.Lock()
	if old, ok := c.units[u.Key]; ok {
		c.bytes.Add(-old.ApproxBytes())
	}
	c.units[u.Key] = u
	c.mu.Unlock()
	c.bytes.Add(u.ApproxBytes())
}

// Stats returns a snapshot of the cache counters.
func (c *QueryCache) Stats() Stats {
	c.mu.RLock()
	entries := int64(len(c.units))
	c.mu.RUnlock()
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: entries,
		Bytes:   c.bytes.Load(),
	}
}

// PatternCache memoizes values of type V keyed by string (MetaInsight keys
// pattern evaluations by data scope). A disabled cache counts misses and
// stores nothing, matching the "w/o Pattern Cache" ablation. PatternCache is
// safe for concurrent use.
type PatternCache[V any] struct {
	enabled bool
	mu      sync.RWMutex
	entries map[string]V
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewPatternCache creates a pattern cache; disabled caches are no-ops that
// still count misses.
func NewPatternCache[V any](enabled bool) *PatternCache[V] {
	return &PatternCache[V]{enabled: enabled, entries: make(map[string]V)}
}

// Enabled reports whether the cache stores anything.
func (c *PatternCache[V]) Enabled() bool { return c.enabled }

// Get looks up key, counting a hit or miss.
func (c *PatternCache[V]) Get(key string) (V, bool) {
	var zero V
	if !c.enabled {
		c.misses.Add(1)
		return zero, false
	}
	c.mu.RLock()
	v, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v, true
	}
	c.misses.Add(1)
	return zero, false
}

// Put stores key → v.
func (c *PatternCache[V]) Put(key string, v V) {
	if !c.enabled {
		return
	}
	c.mu.Lock()
	c.entries[key] = v
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters. Bytes is left zero; the
// pattern cache is reported by entry count in Table 3.
func (c *PatternCache[V]) Stats() Stats {
	c.mu.RLock()
	entries := int64(len(c.entries))
	c.mu.RUnlock()
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: entries,
	}
}
