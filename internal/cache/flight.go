package cache

import "sync"

// Flight is a generic single-flight group: concurrent Do calls with the same
// key coalesce into one execution of fn. The first caller for a key (the
// leader) runs fn; callers that arrive while it is running (followers) block
// until the leader finishes and share its result. Once the leader completes,
// the key is forgotten, so a later Do runs fn again — lasting memoization is
// the cache's job, not the flight group's.
//
// The miner's worker pool uses flight groups around the query and pattern
// caches so that two workers missing the cache on the same key never both
// scan the table: exactly one scan per key executes no matter how many
// workers race for it, which is what keeps executed-query counts identical
// across worker counts (Section 4.2's accounting assumes a query runs at
// most once per unit).
type Flight[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done     chan struct{}
	val      V
	panicked bool
	panicVal any
}

// Do returns fn()'s value for key, executing fn at most once across
// concurrent callers. The boolean reports whether this caller was the leader
// (executed fn) rather than a follower (waited for the leader's result).
//
// If fn panics, the panic propagates to the leader *and* to every follower
// (each re-panics with the leader's panic value), and the key is forgotten —
// a follower blocked on a panicking leader must not deadlock, and the
// miner's per-worker recover relies on every worker observing the same
// deterministic panic for the same unit.
func (f *Flight[K, V]) Do(key K, fn func() V) (V, bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[K]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		if c.panicked {
			panic(c.panicVal)
		}
		return c.val, false
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			c.panicked, c.panicVal = true, r
		}
		close(c.done)
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		if c.panicked {
			panic(c.panicVal)
		}
	}()
	c.val = fn()
	return c.val, true
}
