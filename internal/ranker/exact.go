package ranker

import (
	"math"
	"math/bits"
	"sort"

	"metainsight/internal/core"
	"metainsight/internal/model"
)

// The inter-MetaInsight overlap ratio (Equation 28) is zero whenever two
// MetaInsights differ in extension strategy or pattern type. TotalUse
// therefore decomposes additively over (strategy, type) groups:
//
//	TotalUse(S) = Σ_g TotalUse(S ∩ g)
//
// which turns the exponential exact ranking into per-group subset dynamic
// programming followed by a knapsack over group allocations. This file
// implements that decomposition: an exact optimum that is practical at the
// paper's k = 10 over the full candidate set (the paper's naive baseline
// takes minutes to hours), plus an exact-marginal variant of the greedy
// algorithm.

// groupKeyOf buckets a MetaInsight by the fields outside of which the
// overlap ratio vanishes.
func groupKeyOf(mi *core.MetaInsight) string {
	return mi.HDP.HDS.Kind.String() + "|" + mi.HDP.Type.String()
}

// groupCandidates partitions candidates into overlap groups, each sorted by
// score descending and truncated to maxGroupSize (0 = no truncation; the
// subset DP is 2^n per group, so sizes beyond ~20 are impractical).
func groupCandidates(cands []*core.MetaInsight, maxGroupSize int) [][]*core.MetaInsight {
	byKey := map[string][]*core.MetaInsight{}
	var order []string
	for _, mi := range cands {
		k := groupKeyOf(mi)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], mi)
	}
	sort.Strings(order)
	groups := make([][]*core.MetaInsight, 0, len(order))
	for _, k := range order {
		g := sortByScore(byKey[k])
		if maxGroupSize > 0 && len(g) > maxGroupSize {
			g = g[:maxGroupSize]
		}
		groups = append(groups, g)
	}
	return groups
}

// groupTotalUse computes TotalUse over all 2^n subsets of one group via a
// subset-sum-over-subsets (zeta) transform of the signed overlap terms:
// TotalUse[mask] = Σ_{∅≠U⊆mask} (−1)^{|U|+1}·Overlap(U). Overlap values for
// every mask come from incremental DP on min-score, filter-set intersection
// and the identity indicators.
func groupTotalUse(g []*core.MetaInsight, w Weights) []float64 {
	n := len(g)
	size := 1 << n
	// Encode each member's non-empty root filters as bits over the union of
	// the group's filters (≤ n·MaxSubspaceFilters distinct, and n ≤ ~20, so
	// a uint64 per word-chunk suffices for realistic depth-3 subspaces; fall
	// back to 128 bits via two words if needed).
	filterIDs := map[string]int{}
	memberBits := make([][2]uint64, n)
	filterCount := make([]int, n)
	for i, mi := range g {
		for f := range mi.HDP.HDS.RootSubspace().FilterSet() {
			id, ok := filterIDs[f]
			if !ok {
				id = len(filterIDs)
				filterIDs[f] = id
			}
			if id < 128 {
				memberBits[i][id/64] |= 1 << (id % 64)
			}
			filterCount[i]++
		}
	}

	extDim := make([]string, n)
	measure := make([]string, n)
	breakdown := make([]string, n)
	for i, mi := range g {
		extDim[i] = mi.HDP.HDS.ExtDim
		measure[i] = mi.HDP.HDS.Anchor.Measure.Key()
		breakdown[i] = mi.HDP.HDS.Anchor.Breakdown
	}

	// Per-mask incremental state.
	minScore := make([]float64, size)
	interBits := make([][2]uint64, size)
	minFilters := make([]int, size)
	sameExt := make([]bool, size)
	sameMea := make([]bool, size)
	sameBrk := make([]bool, size)
	first := make([]int, size) // lowest member index in mask
	total := make([]float64, size)

	kind := g[0].HDP.HDS.Kind
	for mask := 1; mask < size; mask++ {
		low := bits.TrailingZeros(uint(mask))
		rest := mask &^ (1 << low)
		if rest == 0 {
			minScore[mask] = g[low].Score
			interBits[mask] = memberBits[low]
			minFilters[mask] = filterCount[low]
			sameExt[mask], sameMea[mask], sameBrk[mask] = true, true, true
			first[mask] = low
			// h(singleton) = +score; zeta accumulation below adds it in.
			total[mask] = g[low].Score
			continue
		}
		minScore[mask] = math.Min(minScore[rest], g[low].Score)
		interBits[mask][0] = interBits[rest][0] & memberBits[low][0]
		interBits[mask][1] = interBits[rest][1] & memberBits[low][1]
		if filterCount[low] < minFilters[rest] {
			minFilters[mask] = filterCount[low]
		} else {
			minFilters[mask] = minFilters[rest]
		}
		f := first[rest]
		first[mask] = low // low < f always since low is the lowest bit
		sameExt[mask] = sameExt[rest] && extDim[low] == extDim[f]
		sameMea[mask] = sameMea[rest] && measure[low] == measure[f]
		sameBrk[mask] = sameBrk[rest] && breakdown[low] == breakdown[f]

		// Overlap(mask) with the strategy-specific ratio of Equations 25-27.
		rsub := 1.0
		if minFilters[mask] > 0 {
			inter := bits.OnesCount64(interBits[mask][0]) + bits.OnesCount64(interBits[mask][1])
			rsub = float64(inter) / float64(minFilters[mask])
		}
		var r float64
		switch kind {
		case model.ExtendSubspace:
			r = w.W11*rsub + w.W12*ind(sameExt[mask]) + w.W13*ind(sameMea[mask]) + w.W14*ind(sameBrk[mask])
		case model.ExtendMeasure:
			r = w.W21*rsub + w.W22*ind(sameBrk[mask])
		default:
			r = w.W31*rsub + w.W32*ind(sameMea[mask])
		}
		sign := 1.0
		if bits.OnesCount(uint(mask))%2 == 0 {
			sign = -1
		}
		total[mask] = sign * minScore[mask] * r
	}

	// Zeta transform: total[mask] becomes Σ_{U ⊆ mask} h[U].
	for i := 0; i < n; i++ {
		bit := 1 << i
		for mask := 0; mask < size; mask++ {
			if mask&bit != 0 {
				total[mask] += total[mask^bit]
			}
		}
	}
	return total
}

// ExactTopKGrouped computes the exact optimum of Equation 21 by decomposing
// TotalUse over (strategy, type) groups: per-group subset DP followed by a
// knapsack allocating the k slots across groups. Groups larger than
// maxGroupSize (default 18 when 0) are truncated to their top members by
// score — the only approximation, and one that only matters if the optimum
// would dip below a group's top-maxGroupSize scores.
func ExactTopKGrouped(cands []*core.MetaInsight, k int, w Weights, maxGroupSize int) []*core.MetaInsight {
	if maxGroupSize <= 0 {
		maxGroupSize = 18
	}
	if k <= 0 || len(cands) == 0 {
		return nil
	}
	groups := groupCandidates(cands, maxGroupSize)

	type groupPlan struct {
		members  []*core.MetaInsight
		bestUse  []float64 // best TotalUse per subset size
		bestMask []int
	}
	plans := make([]groupPlan, len(groups))
	for gi, g := range groups {
		n := len(g)
		tu := groupTotalUse(g, w)
		maxSize := n
		if maxSize > k {
			maxSize = k
		}
		best := make([]float64, maxSize+1)
		bestMask := make([]int, maxSize+1)
		for s := 1; s <= maxSize; s++ {
			best[s] = math.Inf(-1)
		}
		for mask := 1; mask < 1<<n; mask++ {
			s := bits.OnesCount(uint(mask))
			if s > maxSize {
				continue
			}
			if tu[mask] > best[s] {
				best[s] = tu[mask]
				bestMask[s] = mask
			}
		}
		plans[gi] = groupPlan{members: g, bestUse: best, bestMask: bestMask}
	}

	// Knapsack over groups: dp[j] = best total use with j slots allocated.
	const neg = math.MaxFloat64
	dp := make([]float64, k+1)
	choice := make([][]int, len(plans))
	for i := range dp {
		dp[i] = -neg
	}
	dp[0] = 0
	for gi, p := range plans {
		choice[gi] = make([]int, k+1)
		next := make([]float64, k+1)
		pick := make([]int, k+1)
		for j := 0; j <= k; j++ {
			next[j] = -neg
			for s := 0; s <= j && s < len(p.bestUse); s++ {
				if dp[j-s] == -neg || math.IsInf(p.bestUse[s], -1) {
					continue
				}
				if v := dp[j-s] + p.bestUse[s]; v > next[j] {
					next[j] = v
					pick[j] = s
				}
			}
		}
		dp = next
		choice[gi] = pick
	}
	// The optimum may use fewer than k slots only when candidates run out;
	// otherwise adding any MetaInsight never decreases TotalUse, so take the
	// best j ≤ k.
	bestJ := 0
	for j := 1; j <= k; j++ {
		if dp[j] != -neg && dp[j] >= dp[bestJ] {
			bestJ = j
		}
	}
	// Reconstruct.
	var out []*core.MetaInsight
	j := bestJ
	for gi := len(plans) - 1; gi >= 0; gi-- {
		s := choice[gi][j]
		if s > 0 {
			mask := plans[gi].bestMask[s]
			for i := 0; i < len(plans[gi].members); i++ {
				if mask&(1<<i) != 0 {
					out = append(out, plans[gi].members[i])
				}
			}
		}
		j -= s
	}
	return sortByScore(out)
}

// GreedyExact is the exact-marginal variant of the greedy ranking: instead
// of the second-order approximation, each step adds the candidate with the
// largest true inclusion-exclusion gain. The group decomposition keeps each
// marginal evaluation at 2^{|S ∩ group|}, so the algorithm stays fast. This
// extension is evaluated against the paper's second-order greedy in the
// Table 4 benchmarks.
func GreedyExact(cands []*core.MetaInsight, k int, w Weights) []*core.MetaInsight {
	if k <= 0 || len(cands) == 0 {
		return nil
	}
	pool := sortByScore(cands)
	selectedByGroup := map[string][]*core.MetaInsight{}
	groupUse := map[string]float64{}
	var selected []*core.MetaInsight
	used := map[*core.MetaInsight]bool{}
	for len(selected) < k && len(selected) < len(pool) {
		bestIdx := -1
		bestGain := math.Inf(-1)
		for i, c := range pool {
			if used[c] {
				continue
			}
			gk := groupKeyOf(c)
			members := selectedByGroup[gk]
			if len(members) >= 20 {
				continue // keep the exact marginal tractable
			}
			gain := TotalUseExact(append(members[:len(members):len(members)], c), w) - groupUse[gk]
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break
		}
		c := pool[bestIdx]
		gk := groupKeyOf(c)
		selectedByGroup[gk] = append(selectedByGroup[gk], c)
		groupUse[gk] += bestGain
		used[c] = true
		selected = append(selected, c)
	}
	return sortByScore(selected)
}
