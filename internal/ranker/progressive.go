package ranker

import (
	"sort"
	"sync"

	"metainsight/internal/core"
)

// Progressive maintains a diversified top-k suggestion while mining is still
// running — the interactive counterpart of the batch ranking: feed every
// discovery to Add (e.g. from the miner's OnMetaInsight callback) and read
// the current suggestion with TopK at any time. It keeps a bounded buffer of
// the highest-scoring candidates (scores bound every candidate's possible
// contribution, so low scorers beyond the buffer cannot enter a greedy
// top-k whose selected gains exceed their score) and re-runs the greedy
// selection lazily on demand. Progressive is safe for concurrent use.
type Progressive struct {
	k       int
	w       Weights
	bufferN int

	mu     sync.Mutex
	buffer []*core.MetaInsight // score-descending, at most bufferN
	added  int
	dirty  bool
	cached []*core.MetaInsight
}

// NewProgressive creates a progressive ranker for top-k suggestions.
// bufferN bounds the candidate buffer (0 defaults to 32·k).
func NewProgressive(k int, w Weights, bufferN int) *Progressive {
	if k < 1 {
		k = 1
	}
	if bufferN <= 0 {
		bufferN = 32 * k
	}
	if bufferN < k {
		bufferN = k
	}
	return &Progressive{k: k, w: w, bufferN: bufferN}
}

// Add offers one discovered MetaInsight. It is cheap (a binary insertion
// into the bounded buffer) and safe to call from mining workers.
func (p *Progressive) Add(mi *core.MetaInsight) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.added++
	if len(p.buffer) == p.bufferN && mi.Score <= p.buffer[len(p.buffer)-1].Score {
		return // cannot displace anything
	}
	i := sort.Search(len(p.buffer), func(i int) bool {
		if p.buffer[i].Score != mi.Score {
			return p.buffer[i].Score < mi.Score
		}
		return p.buffer[i].Key() > mi.Key()
	})
	p.buffer = append(p.buffer, nil)
	copy(p.buffer[i+1:], p.buffer[i:])
	p.buffer[i] = mi
	if len(p.buffer) > p.bufferN {
		p.buffer = p.buffer[:p.bufferN]
	}
	p.dirty = true
}

// Added returns how many MetaInsights have been offered so far.
func (p *Progressive) Added() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.added
}

// TopK returns the current diversified suggestion (the greedy second-order
// selection over the buffer). The result is cached until the next Add; the
// returned slice must not be modified.
func (p *Progressive) TopK() []*core.MetaInsight {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dirty || p.cached == nil {
		p.cached = Greedy(p.buffer, p.k, p.w)
		p.dirty = false
	}
	return p.cached
}
