// Package ranker implements MetaInsight's redundancy-aware top-k selection
// (Section 4.3): the total usefulness objective built on the
// inclusion-exclusion principle (Equation 19), the inter-MetaInsight overlap
// ratio of Appendix 9.4 (Equations 24-28), the second-order approximation
// (Equation 22) solved greedily — the paper's algorithm — and the two
// comparison algorithms of Table 4: the exact baseline and rank-by-score.
package ranker

import (
	"math"
	"sort"

	"metainsight/internal/core"
	"metainsight/internal/model"
)

// Weights parameterize the per-strategy overlap ratios of Equations 25-27.
// Within each strategy the weights must sum to 1 so the ratio stays in [0,1].
type Weights struct {
	// Subspace-extended HDPs (Equation 25):
	// r_s = W11·r_sub + W12·1_i + W13·1_m + W14·1_b.
	W11, W12, W13, W14 float64
	// Measure-extended HDPs (Equation 26): r_m = W21·r_sub + W22·1_b.
	W21, W22 float64
	// Breakdown-extended HDPs (Equation 27): r_b = W31·r_sub + W32·1_m.
	W31, W32 float64
}

// DefaultWeights weighs the shared-subspace factor highest, splitting the
// remainder over the identity indicators.
func DefaultWeights() Weights {
	return Weights{
		W11: 0.4, W12: 0.2, W13: 0.2, W14: 0.2,
		W21: 0.6, W22: 0.4,
		W31: 0.6, W32: 0.4,
	}
}

// SubspaceOverlapRatio is Definition 9.1, the generalized overlap
// coefficient over the non-empty filter sets of the HDS root subspaces:
// |s₁ ∩ … ∩ s_p| / min|sᵢ|. When the smallest filter set is empty, the empty
// set is contained in every other, so the ratio is 1.
func SubspaceOverlapRatio(subs []model.Subspace) float64 {
	if len(subs) == 0 {
		return 0
	}
	minSize := math.MaxInt
	for _, s := range subs {
		if s.Len() < minSize {
			minSize = s.Len()
		}
	}
	if minSize == 0 {
		return 1
	}
	inter := subs[0].FilterSet()
	for _, s := range subs[1:] {
		next := s.FilterSet()
		for f := range inter {
			if !next[f] {
				delete(inter, f)
			}
		}
	}
	return float64(len(inter)) / float64(minSize)
}

// OverlapRatio is the general-form r(I₁, …, I_p) of Equation 28: zero when
// the MetaInsights differ in extension strategy or pattern type, otherwise
// the strategy-specific weighted combination of Equations 25-27.
func OverlapRatio(mis []*core.MetaInsight, w Weights) float64 {
	if len(mis) < 2 {
		return 1
	}
	kind := mis[0].HDP.HDS.Kind
	ptype := mis[0].HDP.Type
	for _, mi := range mis[1:] {
		if mi.HDP.HDS.Kind != kind || mi.HDP.Type != ptype {
			return 0
		}
	}
	roots := make([]model.Subspace, len(mis))
	for i, mi := range mis {
		roots[i] = mi.HDP.HDS.RootSubspace()
	}
	rsub := SubspaceOverlapRatio(roots)

	sameExtDim := allEqual(mis, func(mi *core.MetaInsight) string { return mi.HDP.HDS.ExtDim })
	sameMeasure := allEqual(mis, func(mi *core.MetaInsight) string { return mi.HDP.HDS.Anchor.Measure.Key() })
	sameBreakdown := allEqual(mis, func(mi *core.MetaInsight) string { return mi.HDP.HDS.Anchor.Breakdown })

	switch kind {
	case model.ExtendSubspace:
		return w.W11*rsub + w.W12*ind(sameExtDim) + w.W13*ind(sameMeasure) + w.W14*ind(sameBreakdown)
	case model.ExtendMeasure:
		return w.W21*rsub + w.W22*ind(sameBreakdown)
	case model.ExtendBreakdown:
		return w.W31*rsub + w.W32*ind(sameMeasure)
	default:
		return 0
	}
}

func allEqual(mis []*core.MetaInsight, f func(*core.MetaInsight) string) bool {
	first := f(mis[0])
	for _, mi := range mis[1:] {
		if f(mi) != first {
			return false
		}
	}
	return true
}

func ind(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Overlap is Definition 4.4: |I₁ ∩ … ∩ I_p| = min(|I₁|, …, |I_p|) ·
// r(I₁, …, I_p), where |I| is the MetaInsight's score (Definition 4.2).
func Overlap(mis []*core.MetaInsight, w Weights) float64 {
	if len(mis) == 0 {
		return 0
	}
	minScore := mis[0].Score
	for _, mi := range mis[1:] {
		if mi.Score < minScore {
			minScore = mi.Score
		}
	}
	if len(mis) == 1 {
		return minScore
	}
	return minScore * OverlapRatio(mis, w)
}

// TotalUseExact is Definition 4.3, the full inclusion-exclusion total
// usefulness |I₁ ∪ … ∪ I_p|. Cost is Θ(2^p · p); it backs the exact ranking
// baseline of Table 4 and is only practical for small p.
func TotalUseExact(mis []*core.MetaInsight, w Weights) float64 {
	p := len(mis)
	if p == 0 {
		return 0
	}
	if p > 25 {
		panic("ranker: TotalUseExact is exponential; refusing p > 25")
	}
	total := 0.0
	subset := make([]*core.MetaInsight, 0, p)
	for mask := 1; mask < 1<<p; mask++ {
		subset = subset[:0]
		for i := 0; i < p; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, mis[i])
			}
		}
		term := Overlap(subset, w)
		if len(subset)%2 == 1 {
			total += term
		} else {
			total -= term
		}
	}
	return total
}

// TotalUseApprox is the second-order approximation of Equation 22:
// Σ|Iᵢ| − Σ_{i<j} |Iᵢ ∩ Iⱼ|.
func TotalUseApprox(mis []*core.MetaInsight, w Weights) float64 {
	total := 0.0
	for _, mi := range mis {
		total += mi.Score
	}
	for i := 0; i < len(mis); i++ {
		for j := i + 1; j < len(mis); j++ {
			total -= Overlap([]*core.MetaInsight{mis[i], mis[j]}, w)
		}
	}
	return total
}

// sortByScore returns candidates sorted by score descending with a
// deterministic key tie-break, without modifying the input.
func sortByScore(cands []*core.MetaInsight) []*core.MetaInsight {
	out := append([]*core.MetaInsight(nil), cands...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// RankByScore is the first-order baseline of Table 4: the top-k candidates
// by individual score, ignoring redundancy.
func RankByScore(cands []*core.MetaInsight, k int) []*core.MetaInsight {
	out := sortByScore(cands)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// SelectionStats reports the work one Greedy selection performed, for the
// observability layer: pool and selection sizes plus the number of pairwise
// Overlap evaluations the incremental-penalty loop computed.
type SelectionStats struct {
	Pool         int
	Selected     int
	OverlapEvals int64
}

// Greedy is the paper's ranking algorithm: second-order approximation solved
// greedily. The selection starts from the highest-scoring MetaInsight; each
// iteration adds the candidate with the largest marginal gain
// |I| − Σ_{J ∈ S} |I ∩ J| until k MetaInsights are selected.
func Greedy(cands []*core.MetaInsight, k int, w Weights) []*core.MetaInsight {
	out, _ := GreedyStats(cands, k, w)
	return out
}

// GreedyStats is Greedy plus a SelectionStats report of the work performed.
func GreedyStats(cands []*core.MetaInsight, k int, w Weights) ([]*core.MetaInsight, SelectionStats) {
	if k <= 0 || len(cands) == 0 {
		return nil, SelectionStats{Pool: len(cands)}
	}
	st := SelectionStats{Pool: len(cands)}
	pool := sortByScore(cands)
	selected := []*core.MetaInsight{pool[0]}
	used := map[*core.MetaInsight]bool{pool[0]: true}
	// penalty[i] accumulates Σ_{J ∈ S} |candᵢ ∩ J| incrementally, keeping
	// each iteration O(n) overlap computations.
	penalty := make([]float64, len(pool))
	last := pool[0]
	for len(selected) < k && len(selected) < len(pool) {
		bestIdx := -1
		bestGain := math.Inf(-1)
		for i, c := range pool {
			if used[c] {
				continue
			}
			penalty[i] += Overlap([]*core.MetaInsight{c, last}, w)
			st.OverlapEvals++
			gain := c.Score - penalty[i]
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break
		}
		last = pool[bestIdx]
		used[last] = true
		selected = append(selected, last)
	}
	st.Selected = len(selected)
	return selected, st
}

// ExactTopK is the standalone exact baseline of Table 4: it enumerates all
// k-subsets of the candidate pool and returns the one maximizing the full
// inclusion-exclusion TotalUse (Equation 21 solved exactly). The paper's
// baseline runs over all N candidates and takes minutes-to-hours; poolSize
// bounds the enumeration to the top candidates by score (0 means the whole
// candidate set — use with care, the cost is C(N, k)·2^k).
func ExactTopK(cands []*core.MetaInsight, k int, w Weights, poolSize int) []*core.MetaInsight {
	pool := sortByScore(cands)
	if poolSize > 0 && len(pool) > poolSize {
		pool = pool[:poolSize]
	}
	if k >= len(pool) {
		return pool
	}
	best := make([]*core.MetaInsight, 0, k)
	bestUse := math.Inf(-1)
	current := make([]*core.MetaInsight, 0, k)
	var recurse func(start int)
	recurse = func(start int) {
		if len(current) == k {
			use := TotalUseExact(current, w)
			if use > bestUse {
				bestUse = use
				best = append(best[:0], current...)
			}
			return
		}
		// Not enough remaining candidates to fill the subset.
		need := k - len(current)
		for i := start; i+need <= len(pool); i++ {
			current = append(current, pool[i])
			recurse(i + 1)
			current = current[:len(current)-1]
		}
	}
	recurse(0)
	return best
}

// Precision is the top-k set agreement used in Table 4: |golden ∩ got| / |golden|,
// intersecting by MetaInsight identity keys.
func Precision(golden, got []*core.MetaInsight) float64 {
	if len(golden) == 0 {
		return 0
	}
	keys := make(map[string]bool, len(golden))
	for _, mi := range golden {
		keys[mi.Key()] = true
	}
	hit := 0
	for _, mi := range got {
		if keys[mi.Key()] {
			hit++
		}
	}
	return float64(hit) / float64(len(golden))
}
