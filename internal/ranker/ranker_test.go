package ranker

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"metainsight/internal/core"
	"metainsight/internal/model"
	"metainsight/internal/pattern"
)

// mkMI builds a minimal MetaInsight with the given identity-relevant fields.
func mkMI(score float64, kind model.ExtensionKind, ptype pattern.Type,
	root model.Subspace, extDim, breakdown, measureCol string) *core.MetaInsight {

	anchor := model.DataScope{
		Subspace:  root,
		Breakdown: breakdown,
		Measure:   model.Sum(measureCol),
	}
	if kind == model.ExtendSubspace {
		anchor.Subspace = root.With(extDim, "v0")
	}
	hds := core.HDS{Kind: kind, Anchor: anchor, ExtDim: extDim}
	hdp := &core.HDP{HDS: hds, Type: ptype}
	return &core.MetaInsight{HDP: hdp, Score: score}
}

var w = DefaultWeights()

func sub(filters ...model.Filter) model.Subspace { return model.NewSubspace(filters...) }

func TestSubspaceOverlapRatio(t *testing.T) {
	a := sub(model.Filter{Dim: "City", Value: "LA"}, model.Filter{Dim: "Style", Value: "2S"})
	b := sub(model.Filter{Dim: "City", Value: "LA"})
	c := sub(model.Filter{Dim: "City", Value: "SF"})
	if r := SubspaceOverlapRatio([]model.Subspace{a, b}); r != 1 {
		t.Errorf("contained subspace ratio = %v, want 1", r)
	}
	if r := SubspaceOverlapRatio([]model.Subspace{a, c}); r != 0 {
		t.Errorf("disjoint ratio = %v, want 0", r)
	}
	if r := SubspaceOverlapRatio([]model.Subspace{a, a}); r != 1 {
		t.Errorf("self ratio = %v", r)
	}
	if r := SubspaceOverlapRatio([]model.Subspace{a, model.EmptySubspace}); r != 1 {
		t.Errorf("empty-root ratio = %v, want 1 (containment)", r)
	}
	// Three-way: intersection {City=LA} over min size 2.
	d := sub(model.Filter{Dim: "City", Value: "LA"}, model.Filter{Dim: "Month", Value: "Apr"})
	if r := SubspaceOverlapRatio([]model.Subspace{a, d, a}); r != 0.5 {
		t.Errorf("three-way ratio = %v, want 0.5", r)
	}
}

func TestOverlapRatioCrossStrategyAndType(t *testing.T) {
	a := mkMI(0.9, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Sales")
	b := mkMI(0.8, model.ExtendMeasure, pattern.Unimodality, sub(), "", "Month", "Sales")
	c := mkMI(0.8, model.ExtendSubspace, pattern.Trend, sub(), "City", "Month", "Sales")
	if r := OverlapRatio([]*core.MetaInsight{a, b}, w); r != 0 {
		t.Errorf("cross-strategy overlap = %v (Cond of Equation 28)", r)
	}
	if r := OverlapRatio([]*core.MetaInsight{a, c}, w); r != 0 {
		t.Errorf("cross-type overlap = %v", r)
	}
}

func TestOverlapRatioIdenticalIsOne(t *testing.T) {
	a := mkMI(0.9, model.ExtendSubspace, pattern.Unimodality,
		sub(model.Filter{Dim: "Style", Value: "2S"}), "City", "Month", "Sales")
	if r := OverlapRatio([]*core.MetaInsight{a, a}, w); math.Abs(r-1) > 1e-12 {
		t.Errorf("identical MetaInsights overlap ratio = %v, want 1", r)
	}
}

func TestOverlapRatioPartial(t *testing.T) {
	a := mkMI(0.9, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Sales")
	// Same strategy/type/extdim/breakdown, different measure.
	b := mkMI(0.8, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Profit")
	r := OverlapRatio([]*core.MetaInsight{a, b}, w)
	want := w.W11*1 + w.W12*1 + w.W13*0 + w.W14*1
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("partial overlap = %v, want %v", r, want)
	}
}

func TestOverlapUsesMinScore(t *testing.T) {
	a := mkMI(0.9, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Sales")
	b := mkMI(0.4, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Sales")
	ov := Overlap([]*core.MetaInsight{a, b}, w)
	if math.Abs(ov-0.4) > 1e-12 {
		t.Errorf("overlap of identical-identity pair = %v, want min score 0.4", ov)
	}
	if Overlap([]*core.MetaInsight{a}, w) != 0.9 {
		t.Error("singleton overlap must be the score")
	}
}

func TestTotalUseExactTwoIdentical(t *testing.T) {
	a := mkMI(0.9, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Sales")
	b := mkMI(0.4, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Sales")
	// |a ∪ b| = 0.9 + 0.4 − 0.4 = 0.9: the fully redundant insight adds nothing.
	if got := TotalUseExact([]*core.MetaInsight{a, b}, w); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("TotalUse = %v, want 0.9", got)
	}
}

func TestTotalUseDisjointIsSum(t *testing.T) {
	a := mkMI(0.9, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Sales")
	b := mkMI(0.8, model.ExtendMeasure, pattern.Trend, sub(), "", "Month", "Sales")
	c := mkMI(0.7, model.ExtendBreakdown, pattern.Outlier, sub(), "", "Week", "Sales")
	mis := []*core.MetaInsight{a, b, c}
	if got := TotalUseExact(mis, w); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("disjoint TotalUse = %v, want 2.4", got)
	}
	if got := TotalUseApprox(mis, w); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("disjoint TotalUseApprox = %v", got)
	}
}

func TestApproxMatchesExactForPairs(t *testing.T) {
	a := mkMI(0.9, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Sales")
	b := mkMI(0.5, model.ExtendSubspace, pattern.Unimodality, sub(), "City", "Month", "Profit")
	mis := []*core.MetaInsight{a, b}
	if math.Abs(TotalUseExact(mis, w)-TotalUseApprox(mis, w)) > 1e-12 {
		t.Error("second-order approximation must be exact for p=2")
	}
}

// family builds n MetaInsights in r redundancy groups: members of a group
// share identity-relevant fields (full overlap ratio), different groups are
// fully disjoint (different strategies/types rotated).
func family(n, groups int) []*core.MetaInsight {
	kinds := []model.ExtensionKind{model.ExtendSubspace, model.ExtendMeasure, model.ExtendBreakdown}
	types := []pattern.Type{pattern.Unimodality, pattern.Trend, pattern.Outlier,
		pattern.Evenness, pattern.Attribution, pattern.ChangePoint}
	out := make([]*core.MetaInsight, 0, n)
	for i := 0; i < n; i++ {
		g := i % groups
		score := 1.0 - 0.01*float64(i)
		out = append(out, mkMI(score, kinds[g%len(kinds)], types[g%len(types)],
			sub(model.Filter{Dim: "D" + strconv.Itoa(g), Value: "v"}),
			"City", "Month", "M"+strconv.Itoa(g)))
	}
	return out
}

func TestGreedyAvoidsRedundancy(t *testing.T) {
	// 12 candidates in 4 fully-redundant groups; greedy top-4 must pick one
	// per group while rank-by-score picks the 4 highest scores (which are
	// spread across groups 0..3 by construction — so make scores adversarial
	// instead: group 0 holds the top 4 scores).
	mis := family(16, 4)
	// Reassign scores: group of candidate i is i%4; give group 0 the best
	// scores.
	for i, mi := range mis {
		if i%4 == 0 {
			mi.Score = 0.9 - 0.001*float64(i)
		} else {
			mi.Score = 0.5 - 0.001*float64(i)
		}
	}
	got := Greedy(mis, 4, w)
	if len(got) != 4 {
		t.Fatalf("greedy returned %d", len(got))
	}
	groupsSeen := map[string]bool{}
	for _, mi := range got {
		groupsSeen[mi.HDP.HDS.Anchor.Measure.Key()+mi.HDP.Type.String()] = true
	}
	if len(groupsSeen) != 4 {
		t.Errorf("greedy picked redundant insights: %d distinct groups", len(groupsSeen))
	}
	rbs := RankByScore(mis, 4)
	rbsGroups := map[string]bool{}
	for _, mi := range rbs {
		rbsGroups[mi.HDP.HDS.Anchor.Measure.Key()+mi.HDP.Type.String()] = true
	}
	if len(rbsGroups) != 1 {
		t.Errorf("rank-by-score should have picked all of group 0, got %d groups", len(rbsGroups))
	}
	if TotalUseExact(got, w) <= TotalUseExact(rbs, w) {
		t.Error("greedy must beat rank-by-score on redundant candidates")
	}
}

func TestGreedyMatchesExactOnSmallPools(t *testing.T) {
	mis := family(8, 3)
	k := 3
	exact := ExactTopK(mis, k, w, 0)
	greedy := Greedy(mis, k, w)
	eu := TotalUseExact(exact, w)
	gu := TotalUseExact(greedy, w)
	if gu < eu-1e-9 && eu-gu > 0.05*eu {
		t.Errorf("greedy %.4f far below exact %.4f", gu, eu)
	}
	if gu > eu+1e-9 {
		t.Errorf("greedy %.4f exceeds exact optimum %.4f", gu, eu)
	}
}

func TestExactTopKPoolRestriction(t *testing.T) {
	mis := family(20, 5)
	got := ExactTopK(mis, 3, w, 6)
	if len(got) != 3 {
		t.Fatalf("returned %d", len(got))
	}
	// All selections must come from the top-6 pool by score.
	pool := RankByScore(mis, 6)
	inPool := map[string]bool{}
	for _, mi := range pool {
		inPool[mi.Key()] = true
	}
	for _, mi := range got {
		if !inPool[mi.Key()] {
			t.Error("exact selection escaped the pool")
		}
	}
}

func TestPrecision(t *testing.T) {
	mis := family(6, 6)
	if p := Precision(mis[:4], mis[:4]); p != 1 {
		t.Errorf("identical sets precision = %v", p)
	}
	if p := Precision(mis[:4], mis[2:6]); p != 0.5 {
		t.Errorf("half overlap precision = %v", p)
	}
	if p := Precision(nil, mis); p != 0 {
		t.Error("empty golden set precision must be 0")
	}
}

func TestRankByScoreDeterministicTieBreak(t *testing.T) {
	mis := family(5, 5)
	for _, mi := range mis {
		mi.Score = 0.5
	}
	a := RankByScore(mis, 3)
	b := RankByScore([]*core.MetaInsight{mis[4], mis[2], mis[0], mis[3], mis[1]}, 3)
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("tie-break not deterministic across input orders")
		}
	}
}

func TestTotalUseExactRefusesHugeP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p > 25")
		}
	}()
	TotalUseExact(family(26, 26), w)
}

// randomCandidates builds a redundancy-heavy candidate set spanning several
// overlap groups with varied subspaces and scores.
func randomCandidates(seed int64, n int) []*core.MetaInsight {
	r := rand.New(rand.NewSource(seed))
	kinds := []model.ExtensionKind{model.ExtendSubspace, model.ExtendMeasure, model.ExtendBreakdown}
	types := []pattern.Type{pattern.Unimodality, pattern.Trend, pattern.Evenness}
	dims := []string{"City", "Region", "Product", "Channel"}
	out := make([]*core.MetaInsight, 0, n)
	for i := 0; i < n; i++ {
		root := sub()
		for d := 0; d < r.Intn(3); d++ {
			root = root.With(dims[r.Intn(len(dims))], "v"+strconv.Itoa(r.Intn(2)))
		}
		out = append(out, mkMI(
			0.1+0.9*r.Float64(),
			kinds[r.Intn(len(kinds))],
			types[r.Intn(len(types))],
			root,
			dims[r.Intn(len(dims))],
			[]string{"Month", "Quarter"}[r.Intn(2)],
			[]string{"Sales", "Units"}[r.Intn(2)],
		))
	}
	return out
}

func TestExactTopKGroupedMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		cands := randomCandidates(seed, 10)
		for _, k := range []int{2, 3, 4} {
			brute := ExactTopK(cands, k, w, 0)
			grouped := ExactTopKGrouped(cands, k, w, 0)
			bu := TotalUseExact(brute, w)
			gu := TotalUseExact(grouped, w)
			if math.Abs(bu-gu) > 1e-9 {
				t.Fatalf("seed %d k=%d: grouped %v vs brute %v", seed, k, gu, bu)
			}
		}
	}
}

func TestGroupDecompositionOfTotalUse(t *testing.T) {
	// TotalUse over a mixed selection equals the sum of per-group TotalUses
	// (Equation 28's Cond makes cross-group overlap vanish).
	for seed := int64(0); seed < 10; seed++ {
		cands := randomCandidates(100+seed, 8)
		whole := TotalUseExact(cands, w)
		sum := 0.0
		for _, g := range groupCandidates(cands, 0) {
			sum += TotalUseExact(g, w)
		}
		if math.Abs(whole-sum) > 1e-9 {
			t.Fatalf("seed %d: whole %v vs group sum %v", seed, whole, sum)
		}
	}
}

func TestGreedyExactAtLeastSecondOrder(t *testing.T) {
	// The exact-marginal greedy must never do worse than the second-order
	// greedy on the true objective, and never beat the exact optimum.
	for seed := int64(0); seed < 10; seed++ {
		cands := randomCandidates(200+seed, 24)
		k := 6
		exact := ExactTopKGrouped(cands, k, w, 0)
		ge := GreedyExact(cands, k, w)
		g2 := Greedy(cands, k, w)
		eu := TotalUseExact(exact, w)
		geu := TotalUseExact(ge, w)
		g2u := TotalUseExact(g2, w)
		if geu > eu+1e-9 {
			t.Fatalf("seed %d: exact-greedy %v beats optimum %v", seed, geu, eu)
		}
		if g2u > eu+1e-9 {
			t.Fatalf("seed %d: second-order greedy %v beats optimum %v", seed, g2u, eu)
		}
		if geu < g2u-1e-9 {
			t.Errorf("seed %d: exact-marginal greedy %v below second-order %v", seed, geu, g2u)
		}
	}
}

func TestExactTopKGroupedTruncation(t *testing.T) {
	cands := randomCandidates(77, 40)
	full := ExactTopKGrouped(cands, 5, w, 0)
	trunc := ExactTopKGrouped(cands, 5, w, 8)
	if len(full) != 5 || len(trunc) != 5 {
		t.Fatalf("selection sizes %d / %d", len(full), len(trunc))
	}
	if TotalUseExact(trunc, w) > TotalUseExact(full, w)+1e-9 {
		t.Error("truncated search beat the untruncated optimum")
	}
}

func TestProgressiveMatchesBatchGreedy(t *testing.T) {
	cands := randomCandidates(5, 60)
	p := NewProgressive(5, w, 0) // buffer 160 ≥ 60: no truncation
	for _, mi := range cands {
		p.Add(mi)
	}
	got := p.TopK()
	want := Greedy(cands, 5, w)
	if len(got) != len(want) {
		t.Fatalf("%d vs %d selections", len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("selection %d differs: %s vs %s", i, got[i].Key(), want[i].Key())
		}
	}
	if p.Added() != 60 {
		t.Errorf("Added = %d", p.Added())
	}
}

func TestProgressiveBufferTruncation(t *testing.T) {
	cands := randomCandidates(9, 100)
	p := NewProgressive(3, w, 10)
	for _, mi := range cands {
		p.Add(mi)
	}
	got := p.TopK()
	if len(got) != 3 {
		t.Fatalf("got %d selections", len(got))
	}
	// Every selection must come from the overall top-10 by score.
	top := RankByScore(cands, 10)
	inTop := map[string]bool{}
	for _, mi := range top {
		inTop[mi.Key()] = true
	}
	for _, mi := range got {
		if !inTop[mi.Key()] {
			t.Errorf("selection %s escaped the score buffer", mi.Key())
		}
	}
}

func TestProgressiveConcurrentAdds(t *testing.T) {
	cands := randomCandidates(3, 200)
	p := NewProgressive(5, w, 50)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(cands); i += 8 {
				p.Add(cands[i])
				if i%17 == 0 {
					p.TopK()
				}
			}
		}(g)
	}
	wg.Wait()
	if p.Added() != 200 {
		t.Errorf("Added = %d", p.Added())
	}
	if got := p.TopK(); len(got) != 5 {
		t.Errorf("TopK returned %d", len(got))
	}
}
