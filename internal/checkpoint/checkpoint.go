// Package checkpoint persists the miner's canonical commit stream so a
// killed run can be resumed bit-identically. It stores two files in a
// directory:
//
//	snapshot.ck — the latest atomic snapshot of miner state (temp file +
//	              fsync + rename, so it is either the old or the new version,
//	              never a torn mix), written every K commits;
//	journal.ck  — an append-only journal of one record per committed unit
//	              since that snapshot, reset (atomically, via the same
//	              temp+rename discipline) each time a snapshot lands.
//
// Both files share a length-prefixed, CRC-framed record format:
//
//	frame := uint32(len(payload)) LE | uint32(crc32-IEEE(payload)) LE | payload
//
// A journal whose final frame is incomplete (a torn write from a crash
// mid-append) is valid up to the last complete frame; a *complete* frame
// whose CRC does not match, a bad magic, or out-of-order record indices are
// corruption (ErrCorrupt), and an unknown format version is ErrVersion.
// Payloads are opaque JSON supplied by the miner; this package only cares
// about framing, durability and ordering.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Typed errors. Callers match with errors.Is.
var (
	// ErrNoCheckpoint reports that the directory holds no checkpoint at all.
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")
	// ErrCorrupt reports unreadable checkpoint data: bad magic, a complete
	// frame with a CRC mismatch, or inconsistent record ordering.
	ErrCorrupt = errors.New("checkpoint: corrupt data")
	// ErrVersion reports a checkpoint written by an incompatible format
	// version.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrExists reports an attempt to create a fresh checkpoint in a
	// directory that already holds one.
	ErrExists = errors.New("checkpoint: checkpoint already exists")
)

const (
	snapshotMagic = "MISN"
	journalMagic  = "MIJL"
	version       = 1

	snapshotFile = "snapshot.ck"
	journalFile  = "journal.ck"

	// maxFrame bounds a single frame payload; anything larger is corruption,
	// not a record we ever wrote.
	maxFrame = 1 << 28

	preambleLen = 4 + 4 // magic + uint32 version
	frameHdrLen = 4 + 4 // uint32 length + uint32 crc
)

// Meta identifies the run a checkpoint belongs to. Fingerprint hashes the
// full mining configuration (excluding worker count, which is a proven
// invariant); Every is the snapshot cadence in commits.
type Meta struct {
	Fingerprint string `json:"fingerprint"`
	Every       int64  `json:"every"`
}

// Snapshot is a decoded snapshot file: miner state as of commit Index.
type Snapshot struct {
	Meta    Meta            `json:"meta"`
	Index   int64           `json:"index"`
	Payload json.RawMessage `json:"payload"`
}

// Record is one committed unit in the journal. Index is the total commit
// index (snapshot base + position in the journal tail).
type Record struct {
	Index   int64           `json:"index"`
	Payload json.RawMessage `json:"payload"`
}

// journalHeader is the first frame of a journal file.
type journalHeader struct {
	Meta Meta  `json:"meta"`
	Base int64 `json:"base"`
}

// JournalInfo is a decoded journal: the header plus every complete,
// CRC-valid record. ValidLen is the byte offset just past the last valid
// frame (a torn tail beyond it is discarded on resume). Headered is false
// when the file is empty or holds only a torn preamble/header — a journal
// that was being created when the process died.
type JournalInfo struct {
	Meta     Meta
	Base     int64
	Records  []Record
	ValidLen int64
	Headered bool
}

// errTorn is an internal sentinel: the data ends mid-frame. Torn tails are
// accepted (the crash happened mid-append); callers translate as needed.
var errTorn = errors.New("checkpoint: torn frame")

func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame decodes one frame at off. It returns errTorn when the data ends
// before the frame does, and ErrCorrupt for oversize lengths or CRC
// mismatches on a complete frame.
func readFrame(data []byte, off int) (payload []byte, n int, err error) {
	if off+frameHdrLen > len(data) {
		return nil, 0, errTorn
	}
	length := binary.LittleEndian.Uint32(data[off : off+4])
	want := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if length > maxFrame {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, length)
	}
	end := off + frameHdrLen + int(length)
	if end > len(data) {
		return nil, 0, errTorn
	}
	payload = data[off+frameHdrLen : end]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, fmt.Errorf("%w: frame CRC mismatch at offset %d", ErrCorrupt, off)
	}
	return payload, end - off, nil
}

func checkPreamble(data []byte, magic string) error {
	if len(data) < preambleLen {
		return errTorn
	}
	if string(data[:4]) != magic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return fmt.Errorf("%w: got version %d, want %d", ErrVersion, v, version)
	}
	return nil
}

func encodePreamble(magic string) []byte {
	buf := make([]byte, 0, preambleLen)
	buf = append(buf, magic...)
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], version)
	return append(buf, v[:]...)
}

// EncodeSnapshot renders a snapshot file image.
func EncodeSnapshot(s Snapshot) ([]byte, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	return appendFrame(encodePreamble(snapshotMagic), body), nil
}

// DecodeSnapshot parses a snapshot file image. Snapshots are written
// atomically, so any truncation or mismatch is corruption.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := checkPreamble(data, snapshotMagic); err != nil {
		if errors.Is(err, errTorn) {
			return s, fmt.Errorf("%w: snapshot too short", ErrCorrupt)
		}
		return s, err
	}
	body, n, err := readFrame(data, preambleLen)
	if err != nil {
		if errors.Is(err, errTorn) {
			return s, fmt.Errorf("%w: snapshot truncated", ErrCorrupt)
		}
		return s, err
	}
	if preambleLen+n != len(data) {
		return s, fmt.Errorf("%w: trailing bytes after snapshot frame", ErrCorrupt)
	}
	if err := json.Unmarshal(body, &s); err != nil {
		return s, fmt.Errorf("%w: snapshot envelope: %v", ErrCorrupt, err)
	}
	return s, nil
}

// DecodeJournal parses a journal file image, accepting a torn final frame
// (and a torn preamble/header, which yields Headered=false). Record indices
// must ascend contiguously from Base+1.
func DecodeJournal(data []byte) (JournalInfo, error) {
	var info JournalInfo
	if err := checkPreamble(data, journalMagic); err != nil {
		if errors.Is(err, errTorn) {
			return info, nil // empty or torn preamble: journal never finished creation
		}
		return info, err
	}
	hdrBody, n, err := readFrame(data, preambleLen)
	if err != nil {
		if errors.Is(err, errTorn) {
			return info, nil
		}
		return info, err
	}
	var hdr journalHeader
	if err := json.Unmarshal(hdrBody, &hdr); err != nil {
		return info, fmt.Errorf("%w: journal header: %v", ErrCorrupt, err)
	}
	info.Meta = hdr.Meta
	info.Base = hdr.Base
	info.Headered = true
	off := preambleLen + n
	info.ValidLen = int64(off)
	next := hdr.Base + 1
	for off < len(data) {
		body, n, err := readFrame(data, off)
		if err != nil {
			if errors.Is(err, errTorn) {
				return info, nil // torn tail: accept everything before it
			}
			return info, err
		}
		var rec Record
		if err := json.Unmarshal(body, &rec); err != nil {
			return info, fmt.Errorf("%w: journal record at offset %d: %v", ErrCorrupt, off, err)
		}
		if rec.Index != next {
			return info, fmt.Errorf("%w: journal record index %d, want %d", ErrCorrupt, rec.Index, next)
		}
		next++
		info.Records = append(info.Records, rec)
		off += n
		info.ValidLen = int64(off)
	}
	return info, nil
}

// Store is an open checkpoint directory: the journal file handle plus the
// metadata every write is stamped with.
type Store struct {
	dir  string
	meta Meta
	jf   *os.File
}

// LoadResult is a reconciled checkpoint: the latest snapshot (nil when the
// run was killed before the first snapshot landed), the journal tail of
// commits after it, and the store re-opened for appending.
type LoadResult struct {
	Meta     Meta
	Snapshot *Snapshot
	Tail     []Record
	Store    *Store
}

// Exists reports whether dir holds any checkpoint data (a snapshot or a
// journal file, valid or torn). It never validates — Load does — so a
// scheduler can use it to pick resume-vs-fresh for a job whose process may
// have died before the first durable byte landed.
func Exists(dir string) bool {
	for _, name := range []string{snapshotFile, journalFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// Create initialises a fresh checkpoint in dir. It refuses (ErrExists) to
// overwrite an existing checkpoint so a stale -checkpoint flag cannot
// silently destroy a resumable run.
func Create(dir string, meta Meta) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	for _, name := range []string{snapshotFile, journalFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return nil, fmt.Errorf("%w: %s in %s", ErrExists, name, dir)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	st := &Store{dir: dir, meta: meta}
	if err := st.resetJournal(0); err != nil {
		return nil, err
	}
	return st, nil
}

// Load opens an existing checkpoint directory and reconciles the snapshot
// with the journal. A journal based before the snapshot index is the trace
// of a crash between the snapshot rename and the journal reset; its records
// are all covered by the snapshot and are discarded (any record *beyond* the
// snapshot in that situation is corruption — the dispatcher never commits
// past an unfinished snapshot write).
func Load(dir string) (*LoadResult, error) {
	snapData, snapErr := os.ReadFile(filepath.Join(dir, snapshotFile))
	if snapErr != nil && !errors.Is(snapErr, os.ErrNotExist) {
		return nil, snapErr
	}
	jData, jErr := os.ReadFile(filepath.Join(dir, journalFile))
	if jErr != nil && !errors.Is(jErr, os.ErrNotExist) {
		return nil, jErr
	}
	hasSnap := snapErr == nil

	var info JournalInfo
	if jErr == nil {
		var err error
		if info, err = DecodeJournal(jData); err != nil {
			return nil, err
		}
	}

	res := &LoadResult{}
	if hasSnap {
		snap, err := DecodeSnapshot(snapData)
		if err != nil {
			return nil, err
		}
		res.Snapshot = &snap
		res.Meta = snap.Meta
	}

	switch {
	case !hasSnap && !info.Headered:
		return nil, fmt.Errorf("%w: directory %s", ErrNoCheckpoint, dir)
	case !hasSnap:
		// Genesis resume: killed before the first snapshot.
		if info.Base != 0 {
			return nil, fmt.Errorf("%w: journal base %d with no snapshot", ErrCorrupt, info.Base)
		}
		res.Meta = info.Meta
		res.Tail = info.Records
	case !info.Headered:
		// Journal reset never completed; the snapshot alone is the state.
	case info.Base == res.Snapshot.Index:
		if info.Meta.Fingerprint != res.Meta.Fingerprint {
			return nil, fmt.Errorf("%w: journal and snapshot fingerprints differ", ErrCorrupt)
		}
		res.Tail = info.Records
	case info.Base < res.Snapshot.Index:
		// Crash between snapshot rename and journal reset: every journal
		// record must already be covered by the snapshot.
		if last := info.Base + int64(len(info.Records)); last > res.Snapshot.Index {
			return nil, fmt.Errorf("%w: journal reaches commit %d past snapshot %d",
				ErrCorrupt, last, res.Snapshot.Index)
		}
		info.Headered = false // force a journal reset below
	default:
		return nil, fmt.Errorf("%w: journal base %d past snapshot %d",
			ErrCorrupt, info.Base, res.Snapshot.Index)
	}

	st := &Store{dir: dir, meta: res.Meta}
	if !info.Headered || len(res.Tail) < len(info.Records) {
		base := int64(0)
		if res.Snapshot != nil {
			base = res.Snapshot.Index
		}
		if err := st.resetJournal(base); err != nil {
			return nil, err
		}
	} else {
		// Re-open the journal for appending, discarding any torn tail first.
		f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_RDWR, 0o666)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(info.ValidLen); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, err
		}
		st.jf = f
	}
	res.Store = st
	return res, nil
}

// Append writes one commit record to the journal. Records are not
// individually fsynced: an OS-level crash may lose the most recent commits
// (resume then simply re-mines them identically), but a process crash never
// loses writes that reached the page cache.
func (st *Store) Append(rec Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = st.jf.Write(appendFrame(nil, body))
	return err
}

// WriteSnapshot atomically persists a snapshot at the given commit index
// (temp file, fsync, rename, directory sync) and then resets the journal to
// an empty file based at that index using the same discipline.
func (st *Store) WriteSnapshot(index int64, payload json.RawMessage) error {
	data, err := EncodeSnapshot(Snapshot{Meta: st.meta, Index: index, Payload: payload})
	if err != nil {
		return err
	}
	if err := atomicWrite(st.dir, snapshotFile, data, nil); err != nil {
		return err
	}
	return st.resetJournal(index)
}

// resetJournal atomically replaces the journal with an empty one based at
// the given commit index, keeping the new file open for appends.
func (st *Store) resetJournal(base int64) error {
	hdr, err := json.Marshal(journalHeader{Meta: st.meta, Base: base})
	if err != nil {
		return err
	}
	data := appendFrame(encodePreamble(journalMagic), hdr)
	var keep *os.File
	if err := atomicWrite(st.dir, journalFile, data, &keep); err != nil {
		return err
	}
	if st.jf != nil {
		st.jf.Close()
	}
	st.jf = keep
	return nil
}

// atomicWrite writes name under dir via temp file + fsync + rename + dir
// sync. When keep is non-nil the (renamed) file handle is returned through
// it, positioned at end of file, instead of being closed.
func atomicWrite(dir, name string, data []byte, keep **os.File) error {
	f, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := f.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		cleanup()
		return err
	}
	if keep != nil {
		*keep = f
	} else if err := f.Close(); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Close flushes and closes the journal.
func (st *Store) Close() error {
	if st.jf == nil {
		return nil
	}
	err := st.jf.Sync()
	if cerr := st.jf.Close(); err == nil {
		err = cerr
	}
	st.jf = nil
	return err
}
