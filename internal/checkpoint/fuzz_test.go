package checkpoint

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzDecodeCheckpoint throws arbitrary bytes at both decoders. Neither may
// panic; every failure must be one of the typed sentinel errors; and a
// successfully decoded journal must have contiguous record indices with
// ValidLen inside the input.
func FuzzDecodeCheckpoint(f *testing.F) {
	snap, _ := EncodeSnapshot(Snapshot{
		Meta: Meta{Fingerprint: "fuzz", Every: 8}, Index: 3,
		Payload: json.RawMessage(`{"k":"v"}`),
	})
	f.Add(snap)
	st, err := Create(f.TempDir(), Meta{Fingerprint: "fuzz", Every: 8})
	if err != nil {
		f.Fatal(err)
	}
	journal := appendFrame(encodePreamble(journalMagic), mustJSON(journalHeader{Meta: Meta{Fingerprint: "fuzz"}, Base: 2}))
	journal = appendFrame(journal, mustJSON(Record{Index: 3, Payload: json.RawMessage(`{}`)}))
	st.Close()
	f.Add(journal)
	f.Add([]byte(snapshotMagic))
	f.Add([]byte(journalMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := DecodeSnapshot(data); err != nil {
			checkTyped(t, err)
		}
		info, err := DecodeJournal(data)
		if err != nil {
			checkTyped(t, err)
			return
		}
		if info.ValidLen > int64(len(data)) {
			t.Fatalf("ValidLen %d exceeds input %d", info.ValidLen, len(data))
		}
		for i, rec := range info.Records {
			if rec.Index != info.Base+int64(i)+1 {
				t.Fatalf("record %d has index %d (base %d)", i, rec.Index, info.Base)
			}
		}
	})
}

func checkTyped(t *testing.T, err error) {
	t.Helper()
	switch {
	case errors.Is(err, ErrCorrupt), errors.Is(err, ErrVersion):
	default:
		t.Fatalf("untyped decode error: %v", err)
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
