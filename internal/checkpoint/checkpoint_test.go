package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testMeta() Meta { return Meta{Fingerprint: "fp-test", Every: 4} }

func mustAppend(t *testing.T, st *Store, idx int64, payload string) {
	t.Helper()
	if err := st.Append(Record{Index: idx, Payload: json.RawMessage(payload)}); err != nil {
		t.Fatalf("Append(%d): %v", idx, err)
	}
}

func readJournal(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCreateAppendLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		mustAppend(t, st, i, fmt.Sprintf(`{"n":%d}`, i))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Store.Close()
	if res.Snapshot != nil {
		t.Fatalf("unexpected snapshot before any WriteSnapshot")
	}
	if res.Meta != testMeta() {
		t.Fatalf("meta round-trip: got %+v", res.Meta)
	}
	if len(res.Tail) != 3 {
		t.Fatalf("tail length: got %d, want 3", len(res.Tail))
	}
	for i, rec := range res.Tail {
		if rec.Index != int64(i+1) {
			t.Fatalf("record %d: index %d", i, rec.Index)
		}
		if want := fmt.Sprintf(`{"n":%d}`, i+1); string(rec.Payload) != want {
			t.Fatalf("record %d payload: %s", i, rec.Payload)
		}
	}
}

func TestSnapshotResetsJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		mustAppend(t, st, i, `{}`)
	}
	if err := st.WriteSnapshot(4, json.RawMessage(`{"state":"s4"}`)); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, 5, `{"n":5}`)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Store.Close()
	if res.Snapshot == nil || res.Snapshot.Index != 4 {
		t.Fatalf("snapshot: %+v", res.Snapshot)
	}
	if string(res.Snapshot.Payload) != `{"state":"s4"}` {
		t.Fatalf("snapshot payload: %s", res.Snapshot.Payload)
	}
	if len(res.Tail) != 1 || res.Tail[0].Index != 5 {
		t.Fatalf("tail after snapshot: %+v", res.Tail)
	}
}

func TestTornTailAccepted(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, 1, `{"n":1}`)
	mustAppend(t, st, 2, `{"n":2}`)
	st.Close()

	// Chop bytes off the final record: every truncation point inside it must
	// still load, yielding only the first record.
	full := readJournal(t, dir)
	info, err := DecodeJournal(full)
	if err != nil || len(info.Records) != 2 {
		t.Fatalf("full decode: %v, %d records", err, len(info.Records))
	}
	for cut := len(full) - 1; cut > int(offsetOfLastRecord(t, full)); cut-- {
		got, err := DecodeJournal(full[:cut])
		if err != nil {
			t.Fatalf("torn at %d rejected: %v", cut, err)
		}
		if len(got.Records) != 1 || got.Records[0].Index != 1 {
			t.Fatalf("torn at %d: %d records", cut, len(got.Records))
		}
	}

	// A Load over a torn file truncates and resumes appending cleanly.
	if err := os.WriteFile(filepath.Join(dir, journalFile), full[:len(full)-3], 0o666); err != nil {
		t.Fatal(err)
	}
	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tail) != 1 {
		t.Fatalf("tail after torn load: %d records", len(res.Tail))
	}
	mustAppend(t, res.Store, 2, `{"n":2,"again":true}`)
	res.Store.Close()
	res2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Store.Close()
	if len(res2.Tail) != 2 || string(res2.Tail[1].Payload) != `{"n":2,"again":true}` {
		t.Fatalf("append after torn truncation: %+v", res2.Tail)
	}
}

// offsetOfLastRecord finds the byte offset where the final record frame
// begins, by re-walking the frames.
func offsetOfLastRecord(t *testing.T, data []byte) int64 {
	t.Helper()
	off := preambleLen
	last := off
	for off < len(data) {
		_, n, err := readFrame(data, off)
		if err != nil {
			t.Fatalf("walk: %v", err)
		}
		last = off
		off += n
	}
	return int64(last)
}

func TestFlippedCRCRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, 1, `{"n":1}`)
	st.Close()

	data := readJournal(t, dir)
	// Flip a byte inside the record payload (last byte of the file) without
	// shortening the frame: complete frame, bad CRC.
	data[len(data)-1] ^= 0xff
	if _, err := DecodeJournal(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload byte: got %v, want ErrCorrupt", err)
	}

	if err := os.WriteFile(filepath.Join(dir, journalFile), data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load over corrupt journal: got %v, want ErrCorrupt", err)
	}
}

func TestBadVersionRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(1, json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	for _, name := range []string{snapshotFile, journalFile} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		bumped := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(bumped[4:8], version+1)
		if err := os.WriteFile(path, bumped, 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); !errors.Is(err, ErrVersion) {
			t.Fatalf("%s with bumped version: got %v, want ErrVersion", name, err)
		}
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("NOPE0000garbage")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("snapshot bad magic: %v", err)
	}
	if _, err := DecodeJournal([]byte("NOPE0000garbage")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("journal bad magic: %v", err)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Create(dir, testMeta()); !errors.Is(err, ErrExists) {
		t.Fatalf("second Create: got %v, want ErrExists", err)
	}
}

func TestLoadEmptyDirIsNoCheckpoint(t *testing.T) {
	if _, err := Load(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}
}

func TestNonContiguousIndicesRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, 1, `{}`)
	mustAppend(t, st, 3, `{}`) // gap
	st.Close()
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("index gap: got %v, want ErrCorrupt", err)
	}
}

func TestCrashBetweenSnapshotAndJournalReset(t *testing.T) {
	// Simulate: snapshot at index 4 renamed into place, but the journal still
	// holds records 1..4 from before (base 0). Load must discard them and
	// rebase the journal at 4.
	dir := t.TempDir()
	st, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		mustAppend(t, st, i, `{}`)
	}
	st.Close()
	oldJournal := readJournal(t, dir)

	st2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Store.WriteSnapshot(4, json.RawMessage(`{"s":4}`)); err != nil {
		t.Fatal(err)
	}
	st2.Store.Close()
	// Put the pre-snapshot journal back, as if the reset rename never landed.
	if err := os.WriteFile(filepath.Join(dir, journalFile), oldJournal, 0o666); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot == nil || res.Snapshot.Index != 4 || len(res.Tail) != 0 {
		t.Fatalf("reconciliation: snap=%+v tail=%d", res.Snapshot, len(res.Tail))
	}
	mustAppend(t, res.Store, 5, `{}`)
	res.Store.Close()
	res2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Store.Close()
	if len(res2.Tail) != 1 || res2.Tail[0].Index != 5 {
		t.Fatalf("post-reconciliation append: %+v", res2.Tail)
	}
}

func TestJournalPastSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 6; i++ {
		mustAppend(t, st, i, `{}`)
	}
	st.Close()
	oldJournal := readJournal(t, dir)

	st2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Store.WriteSnapshot(4, json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	st2.Store.Close()
	if err := os.WriteFile(filepath.Join(dir, journalFile), oldJournal, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("journal past snapshot: got %v, want ErrCorrupt", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := Snapshot{Meta: testMeta(), Index: 42, Payload: json.RawMessage(`{"deep":{"state":[1,2,3]}}`)}
	data, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != s.Meta || got.Index != s.Index || string(got.Payload) != string(s.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
	// Any single-byte truncation of an atomic snapshot is corruption.
	for cut := len(data) - 1; cut >= 0; cut -= 7 {
		if _, err := DecodeSnapshot(data[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated snapshot at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
}
