// Package quickinsight reimplements the QuickInsights baseline (Ding et al.,
// SIGMOD 2019) that MetaInsight extends and is evaluated against: each
// insight is a stand-alone 4-tuple (subspace, breakdown, measure, type) with
// no structured organization across sibling scopes. The implementation
// shares MetaInsight's pattern evaluators and query engine so that the
// Figure 7 query-count comparison isolates exactly the cost the HDP layer
// adds, and the user study comparison presents both systems from the same
// substrate.
package quickinsight

import (
	"sort"

	"metainsight/internal/engine"
	"metainsight/internal/model"
	"metainsight/internal/pattern"
)

// Insight is QuickInsight's 4-tuple result (plus the highlight our basic
// data patterns carry, which QuickInsights folds into the type semantics).
type Insight struct {
	Scope     model.DataScope
	Type      pattern.Type
	Highlight pattern.Highlight
	// Significance grades the pattern evaluation (1 − p-value style).
	Significance float64
	// Impact is the subspace's impact (Equation 2).
	Impact float64
	// Score ranks insights: impact × significance, QuickInsights' scoring
	// shape.
	Score float64
}

// Config configures a QuickInsight mining run. Zero values take the same
// defaults as the MetaInsight miner so comparisons are like-for-like.
type Config struct {
	Pattern                 pattern.Config
	MaxSubspaceFilters      int
	MaxBreakdownCardinality int
	MinSubspaceImpact       float64
	Budget                  engine.Budget
}

func (c *Config) fillDefaults() {
	if c.Pattern.Alpha == 0 {
		custom := c.Pattern.Custom
		c.Pattern = pattern.DefaultConfig()
		c.Pattern.Custom = custom
	}
	if c.MaxSubspaceFilters == 0 {
		c.MaxSubspaceFilters = 3
	}
	if c.MaxBreakdownCardinality == 0 {
		c.MaxBreakdownCardinality = 50
	}
	if c.MinSubspaceImpact == 0 {
		c.MinSubspaceImpact = 0.005
	}
	if c.Budget == nil {
		c.Budget = engine.Unlimited{}
	}
}

// Result is the outcome of a QuickInsight run.
type Result struct {
	Insights        []*Insight
	ExecutedQueries int64
	CostUsed        float64
}

// TopK returns the k highest-scoring insights.
func (r *Result) TopK(k int) []*Insight {
	if k > len(r.Insights) {
		k = len(r.Insights)
	}
	return r.Insights[:k]
}

// Mine enumerates data scopes impact-first (the same best-first frontier the
// MetaInsight miner uses) and evaluates every pattern type on each scope.
// Unlike MetaInsight it stops there: no HDS extension, no HDP evaluation.
func Mine(eng *engine.Engine, cfg Config) *Result {
	cfg.fillDefaults()
	tab := eng.Table()
	startExec := eng.Meter().ExecutedQueries()
	startCost := eng.Meter().Cost()

	type frontierItem struct {
		subspace  model.Subspace
		impact    float64
		maxDimIdx int
	}
	queue := []frontierItem{{subspace: model.EmptySubspace, impact: 1, maxDimIdx: -1}}
	var insights []*Insight

	for len(queue) > 0 {
		if cfg.Budget.Exceeded() {
			break
		}
		// Pop the highest-impact frontier item (linear scan: the frontier
		// here is small relative to query cost, and determinism matters).
		best := 0
		for i, it := range queue {
			if it.impact > queue[best].impact {
				best = i
			}
		}
		item := queue[best]
		queue = append(queue[:best], queue[best+1:]...)

		for _, dim := range tab.DimensionNames() {
			if cfg.Budget.Exceeded() {
				break
			}
			col := tab.Dimension(dim)
			if item.subspace.Has(dim) || col.Cardinality() < 3 ||
				col.Cardinality() > cfg.MaxBreakdownCardinality {
				continue
			}
			temporal := col.Kind == model.KindTemporal
			unit, err := eng.Unit(item.subspace, dim)
			if err != nil {
				continue
			}
			for _, meas := range eng.Measures() {
				ds := model.DataScope{Subspace: item.subspace, Breakdown: dim, Measure: meas}
				series, err := engine.Extract(unit, ds)
				if err != nil || series.Len() < 3 {
					continue
				}
				se := pattern.EvaluateAllScoped(ds, series.Keys, series.Values, temporal, cfg.Pattern)
				eng.ChargeEvaluation()
				for _, t := range se.ValidTypes() {
					ev := se.Evals[t]
					insights = append(insights, &Insight{
						Scope:        ds,
						Type:         t,
						Highlight:    ev.Highlight,
						Significance: ev.Strength,
						Impact:       item.impact,
						Score:        item.impact * ev.Strength,
					})
				}
			}
		}

		if item.subspace.Len() >= cfg.MaxSubspaceFilters {
			continue
		}
		dims := tab.Dimensions()
		for idx := item.maxDimIdx + 1; idx < len(dims); idx++ {
			if cfg.Budget.Exceeded() {
				break
			}
			dim := dims[idx]
			if item.subspace.Has(dim.Name) || dim.Cardinality() > cfg.MaxBreakdownCardinality {
				continue
			}
			unit, err := eng.Unit(item.subspace, dim.Name)
			if err != nil {
				continue
			}
			im := eng.ImpactMeasure()
			src := unit.Counts
			if im.Agg != model.AggCount {
				src = unit.Sums[im.Column]
			}
			for gi, v := range unit.GroupKeys {
				imp := src[gi] / eng.TotalImpact()
				if imp < cfg.MinSubspaceImpact {
					continue
				}
				queue = append(queue, frontierItem{
					subspace:  item.subspace.With(dim.Name, v),
					impact:    imp,
					maxDimIdx: idx,
				})
			}
		}
	}

	sort.Slice(insights, func(i, j int) bool {
		if insights[i].Score != insights[j].Score {
			return insights[i].Score > insights[j].Score
		}
		ki := insights[i].Scope.Key() + insights[i].Type.String()
		kj := insights[j].Scope.Key() + insights[j].Type.String()
		return ki < kj
	})
	return &Result{
		Insights:        insights,
		ExecutedQueries: eng.Meter().ExecutedQueries() - startExec,
		CostUsed:        eng.Meter().Cost() - startCost,
	}
}
