package quickinsight

import (
	"testing"

	"metainsight/internal/cache"
	"metainsight/internal/dataset"
	"metainsight/internal/engine"
	"metainsight/internal/model"
	"metainsight/internal/pattern"
)

var monthNames = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

func plantedTable(t testing.TB) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("houses", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Sales", Kind: model.KindMeasure},
	})
	valley := []float64{100, 70, 40, 10, 40, 70, 100, 100, 100, 100, 100, 100}
	flat := []float64{50, 50, 50, 50, 50, 50, 50, 50, 50, 50, 50, 50}
	for _, city := range []string{"LA", "SF", "SD", "SJ", "Oakland"} {
		for m, v := range valley {
			b.AddRow([]string{city, monthNames[m]}, []float64{v})
		}
	}
	for m, v := range flat {
		b.AddRow([]string{"Fresno", monthNames[m]}, []float64{v})
	}
	return b.Build()
}

func mine(t testing.TB, tab *dataset.Table, cfg Config) (*Result, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(tab, engine.Config{QueryCache: cache.NewQueryCache(true)})
	if err != nil {
		t.Fatal(err)
	}
	return Mine(eng, cfg), eng
}

func TestMineFindsPlantedPatterns(t *testing.T) {
	res, _ := mine(t, plantedTable(t), Config{})
	if len(res.Insights) == 0 {
		t.Fatal("no insights")
	}
	foundValley := false
	for _, in := range res.Insights {
		if in.Type == pattern.Unimodality && in.Scope.Breakdown == "Month" {
			if city, ok := in.Scope.Subspace.Get("City"); ok && city == "LA" {
				foundValley = true
				if in.Highlight.Positions[0] != "Apr" {
					t.Errorf("LA valley at %v", in.Highlight.Positions)
				}
			}
		}
	}
	if !foundValley {
		t.Error("LA April valley not found")
	}
}

func TestInsightsAreStandalone(t *testing.T) {
	// QuickInsight emits one insight per (scope, type) — the same valley in
	// five cities appears five times; nothing groups them (that is the gap
	// MetaInsight fills).
	res, _ := mine(t, plantedTable(t), Config{})
	valleys := 0
	for _, in := range res.Insights {
		if in.Type == pattern.Unimodality && in.Scope.Subspace.Has("City") &&
			in.Scope.Measure.Key() == "SUM(Sales)" {
			valleys++
		}
	}
	if valleys != 5 {
		t.Errorf("expected 5 stand-alone city valleys, got %d", valleys)
	}
}

func TestScoreIsImpactTimesSignificance(t *testing.T) {
	res, _ := mine(t, plantedTable(t), Config{})
	for _, in := range res.Insights {
		want := in.Impact * in.Significance
		if in.Score != want {
			t.Fatalf("score %v != impact %v × significance %v", in.Score, in.Impact, in.Significance)
		}
	}
}

func TestSortedByScore(t *testing.T) {
	res, _ := mine(t, plantedTable(t), Config{})
	for i := 1; i < len(res.Insights); i++ {
		if res.Insights[i].Score > res.Insights[i-1].Score {
			t.Fatal("insights not sorted by score")
		}
	}
	top := res.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top))
	}
	if got := res.TopK(10_000); len(got) != len(res.Insights) {
		t.Error("oversized TopK should return everything")
	}
}

func TestBudgetStopsEarly(t *testing.T) {
	tab := plantedTable(t)
	full, _ := mine(t, tab, Config{})
	meter := &engine.Meter{}
	eng, err := engine.New(tab, engine.Config{QueryCache: cache.NewQueryCache(true), Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	res := Mine(eng, Config{Budget: engine.CostBudget{Meter: meter, Limit: 30}})
	if res.ExecutedQueries >= full.ExecutedQueries {
		t.Errorf("budgeted run executed %d queries, full run %d", res.ExecutedQueries, full.ExecutedQueries)
	}
}

func TestDeterministic(t *testing.T) {
	tab := plantedTable(t)
	a, _ := mine(t, tab, Config{})
	b, _ := mine(t, tab, Config{})
	if len(a.Insights) != len(b.Insights) {
		t.Fatalf("%d vs %d insights", len(a.Insights), len(b.Insights))
	}
	for i := range a.Insights {
		if a.Insights[i].Scope.Key() != b.Insights[i].Scope.Key() ||
			a.Insights[i].Type != b.Insights[i].Type {
			t.Fatalf("ordering differs at %d", i)
		}
	}
}

func TestMaxSubspaceFiltersRespected(t *testing.T) {
	res, _ := mine(t, plantedTable(t), Config{MaxSubspaceFilters: 1})
	for _, in := range res.Insights {
		if in.Scope.Subspace.Len() > 1 {
			t.Fatalf("insight at depth %d", in.Scope.Subspace.Len())
		}
	}
}
