// Package apicheck gates the repo's own binaries and examples on the new
// public surface: cmd/ and examples/ must not call the deprecated
// Analyzer-era entry points (NewAnalyzer, Analyze, AnalyzeContext). The
// check is AST-based so it needs no third-party linters; scripts/vet.sh
// additionally runs staticcheck's deprecation analysis when the tool is
// installed.
package apicheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// deprecated lists the root-package identifiers cmd/ and examples/ must not
// reference. Keep in sync with the Deprecated markers in metainsight.go.
var deprecated = map[string]bool{
	"NewAnalyzer":    true,
	"Analyze":        true,
	"AnalyzeContext": true,
}

const modulePath = "metainsight"

func TestNoDeprecatedAPIUsage(t *testing.T) {
	root := repoRoot(t)
	for _, dir := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			checkFile(t, path)
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
}

func checkFile(t *testing.T, path string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Errorf("parse %s: %v", path, err)
		return
	}
	// Names the root metainsight package is imported under in this file.
	pkgNames := map[string]bool{}
	for _, imp := range f.Imports {
		ip, err := strconv.Unquote(imp.Path.Value)
		if err != nil || ip != modulePath {
			continue
		}
		name := "metainsight"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		pkgNames[name] = true
	}
	if len(pkgNames) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !pkgNames[id.Name] || !deprecated[sel.Sel.Name] {
			return true
		}
		pos := fset.Position(sel.Pos())
		t.Errorf("%s:%d: deprecated metainsight.%s; use NewSession / Session.Analyze",
			pos.Filename, pos.Line, sel.Sel.Name)
		return true
	})
}

// repoRoot walks up from this package to the directory holding go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}
