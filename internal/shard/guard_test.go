package shard

// Bench-regression guard for the sharded scan path: re-measures the
// filters=0 ScanUnit cost of the 4-shard substrate relative to the
// unsharded vectorized substrate on the large bench table and fails when
// the blessed ratio recorded in ../engine/testdata/bench_baseline.json
// regresses by more than 20%. Like the engine guard it compares a ratio
// measured in one process, so host speed divides out. Gated behind
// BENCH_GUARD=1; the ordinary test run skips it.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"metainsight/internal/engine"
	"metainsight/internal/workload"
)

type shardBenchBaseline struct {
	Ratios map[string]float64 `json:"scan_unit_filters0_shard4_ratio"`
}

func TestShardedScanRegressionGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the bench-regression guard")
	}
	data, err := os.ReadFile("../engine/testdata/bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base shardBenchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	blessed, ok := base.Ratios["large"]
	if !ok || blessed <= 0 {
		t.Fatal("baseline has no blessed shard4 ratio for table large")
	}
	// The large bench table of the engine benchmarks and the bench harness.
	tab := workload.Generate(workload.GenSpec{
		Name: "bench-large", Seed: 67, Cards: []int{64, 24, 12},
		Periods: 12, Measures: 2, RowsPerCell: 1,
	})
	sharded, err := New(tab, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	vec := engine.NewColumnarSubstrate(tab, engine.WithScanParallelism(1))

	const iters = 100
	time4 := func(sub engine.Substrate) time.Duration {
		// Untimed warm-up: first touch builds dictionaries, posting lists
		// and zone maps, one-off costs the steady-state ratio must exclude.
		if _, _, err := sub.ScanUnit(nil, "DimA"); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, _, err := sub.ScanUnit(nil, "DimA"); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	shardNs := time4(sharded)
	vecNs := time4(vec)
	if vecNs <= 0 {
		t.Fatalf("vectorized scan measured %v", vecNs)
	}
	ratio := float64(shardNs) / float64(vecNs)
	limit := blessed * 1.2
	t.Logf("shard4 %v / vec %v over %d iters -> ratio %.3f (blessed %.2f, limit %.3f)",
		shardNs, vecNs, iters, ratio, blessed, limit)
	if ratio > limit {
		t.Errorf("filters=0 sharded ScanUnit regressed: shard4/vec ratio %.3f exceeds blessed %.2f x 1.2 = %.3f",
			ratio, blessed, limit)
	}
}
