package shard

// The sharded differential suite: units (and augmented unit sets) must be
// byte-identical across shards ∈ {1,2,4,8} × scan parallelism ∈ {1,4} ×
// plan mode, on fractional data — the tentpole bit-identity claim — and
// match the unsharded substrate exactly on integer-valued data. Fault
// schedules, straggler speculation and the deterministic winner pick are
// covered by fate-level tests that assert purity (physical path and replay
// agree) and determinism.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"metainsight/internal/dataset"
	"metainsight/internal/engine"
	"metainsight/internal/faults"
	"metainsight/internal/model"
	"metainsight/internal/obs"
)

func jsonOf(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fracTable builds a deterministic fractional-valued table: the hard case
// for merge-order bugs, since float sums expose any change of addition tree.
func fracTable(seed int64, rows int) *dataset.Table {
	r := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("shardfrac", []model.Field{
		{Name: "G", Kind: model.KindCategorical},
		{Name: "H", Kind: model.KindCategorical},
		{Name: "P", Kind: model.KindTemporal},
		{Name: "V", Kind: model.KindMeasure},
		{Name: "W", Kind: model.KindMeasure},
	})
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun"}
	for i := 0; i < rows; i++ {
		b.AddRow([]string{
			fmt.Sprintf("g%d", r.Intn(9)),
			fmt.Sprintf("h%d", r.Intn(6)),
			months[r.Intn(len(months))],
		}, []float64{r.NormFloat64() * 1e3, r.Float64()})
	}
	return b.Build()
}

// intTable builds an integer-valued table, where sums are exact under any
// association and sharded results must equal the unsharded substrate's.
func intTable(seed int64, rows int) *dataset.Table {
	r := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("shardint", []model.Field{
		{Name: "G", Kind: model.KindCategorical},
		{Name: "H", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	for i := 0; i < rows; i++ {
		b.AddRow([]string{
			fmt.Sprintf("g%d", r.Intn(8)),
			fmt.Sprintf("h%d", r.Intn(5)),
		}, []float64{float64(r.Intn(2000) - 1000)})
	}
	return b.Build()
}

func newSub(t *testing.T, tab *dataset.Table, shards, par int, mode engine.PlanMode) *Substrate {
	t.Helper()
	s, err := New(tab, Config{Shards: shards, Block: 64, ScanParallelism: par, PlanMode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct {
		rows, shards, block int
		want                []Range
	}{
		{1000, 4, 100, []Range{{0, 300}, {300, 600}, {600, 800}, {800, 1000}}},
		{1000, 1, 100, []Range{{0, 1000}}},
		{150, 4, 100, []Range{{0, 100}, {100, 150}}}, // clamped to 2 blocks
		{0, 4, 100, []Range{{0, 0}}},
		{50, 3, 100, []Range{{0, 50}}},
	} {
		got := Partition(tc.rows, tc.shards, tc.block)
		if jsonOf(t, got) != jsonOf(t, tc.want) {
			t.Errorf("Partition(%d,%d,%d) = %v, want %v", tc.rows, tc.shards, tc.block, got, tc.want)
		}
	}
	// Ranges must tile [0, rows) contiguously and align to blocks.
	rs := Partition(9973, 8, 64)
	at := 0
	for i, r := range rs {
		if r.Lo != at || (i < len(rs)-1 && r.Hi%64 != 0) {
			t.Fatalf("range %d = %v does not tile/align (at=%d)", i, r, at)
		}
		at = r.Hi
	}
	if at != 9973 {
		t.Fatalf("ranges end at %d, want 9973", at)
	}
}

// TestShardDifferentialUnit is the tentpole grid: fractional units are
// byte-identical across shards × scan-parallelism × plan-mode.
func TestShardDifferentialUnit(t *testing.T) {
	tab := fracTable(21, 3000)
	r := rand.New(rand.NewSource(4))
	dims := tab.DimensionNames()
	type scope struct {
		sub model.Subspace
		bd  string
	}
	var scopes []scope
	for len(scopes) < 12 {
		sub := model.EmptySubspace
		for d := 0; d < r.Intn(3); d++ {
			dim := tab.Dimension(dims[r.Intn(len(dims))])
			if !sub.Has(dim.Name) {
				sub = sub.With(dim.Name, dim.Domain()[r.Intn(dim.Cardinality())])
			}
		}
		bd := dims[r.Intn(len(dims))]
		if sub.Has(bd) {
			continue
		}
		scopes = append(scopes, scope{sub, bd})
	}
	for _, sc := range scopes {
		var want string
		for _, mode := range []engine.PlanMode{engine.PlanAuto, engine.PlanIntersect, engine.PlanResidual, engine.PlanZone} {
			if len(sc.sub) == 0 && mode != engine.PlanAuto {
				continue
			}
			// Metered rows depend on the plan strategy (modes are distinct
			// deterministic universes) but must be shard-invariant within one.
			wantRows := -1
			for _, shards := range []int{1, 2, 4, 8} {
				for _, par := range []int{1, 4} {
					s := newSub(t, tab, shards, par, mode)
					u, rows, err := s.ScanUnit(sc.sub, sc.bd)
					if err != nil {
						t.Fatal(err)
					}
					got := jsonOf(t, u)
					if wantRows < 0 {
						wantRows = rows
					}
					if want == "" {
						want = got
					} else if got != want {
						t.Fatalf("scope %s by %s: shards=%d par=%d mode=%v produced different bits",
							sc.sub.Key(), sc.bd, shards, par, mode)
					}
					if rows != wantRows {
						t.Fatalf("scope %s: metered rows %d at shards=%d, want %d (must be shard-invariant)",
							sc.sub.Key(), rows, shards, wantRows)
					}
					if pr := s.PlannedRows(sc.sub); pr != rows {
						t.Fatalf("scope %s: PlannedRows=%d but scan metered %d", sc.sub.Key(), pr, rows)
					}
				}
			}
		}
	}
}

// TestShardDifferentialAugmented: same grid over the augmented path.
func TestShardDifferentialAugmented(t *testing.T) {
	tab := fracTable(22, 2500)
	for _, base := range []model.Subspace{
		model.EmptySubspace,
		model.NewSubspace(model.Filter{Dim: "H", Value: "h2"}),
	} {
		var want string
		for _, mode := range []engine.PlanMode{engine.PlanAuto, engine.PlanResidual, engine.PlanZone} {
			if len(base) == 0 && mode != engine.PlanAuto {
				continue
			}
			for _, shards := range []int{1, 2, 4, 8} {
				for _, par := range []int{1, 4} {
					s := newSub(t, tab, shards, par, mode)
					units, _, err := s.ScanAugmented(base, "G", "P")
					if err != nil {
						t.Fatal(err)
					}
					keys := make([]string, 0, len(units))
					for k := range units {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					got := ""
					for _, k := range keys {
						got += k + "=" + jsonOf(t, units[k]) + ";"
					}
					if want == "" {
						want = got
					} else if got != want {
						t.Fatalf("base %s: shards=%d par=%d mode=%v augmented bits differ", base.Key(), shards, par, mode)
					}
				}
			}
		}
	}
}

// TestShardMatchesUnshardedInteger: with exact (integer) sums, the sharded
// substrate must agree with the plain columnar substrate byte for byte.
func TestShardMatchesUnshardedInteger(t *testing.T) {
	tab := intTable(23, 2000)
	plain := engine.NewColumnarSubstrate(tab, engine.WithMorselSize(64))
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		sub := model.EmptySubspace
		if trial%2 == 1 {
			sub = sub.With("H", fmt.Sprintf("h%d", r.Intn(5)))
		}
		wantU, wantRows, err := plain.ScanUnit(sub, "G")
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 3, 8} {
			s := newSub(t, tab, shards, 2, engine.PlanAuto)
			u, rows, err := s.ScanUnit(sub, "G")
			if err != nil {
				t.Fatal(err)
			}
			if jsonOf(t, u) != jsonOf(t, wantU) || rows != wantRows {
				t.Fatalf("trial %d shards=%d: sharded integer scan differs from unsharded", trial, shards)
			}
		}
	}
}

// TestShardFatePurity: fates, ResolveShards and CompletionCost are pure
// functions of the fingerprint — same inputs, same outputs, including across
// substrate instances with the same config — and scan results are unaffected
// by fault schedules when every shard eventually succeeds.
func TestShardFatePurity(t *testing.T) {
	tab := fracTable(24, 1500)
	cfg := Config{Shards: 4, Block: 64, Faults: FaultPlan{
		Policy:         faults.Policy{Seed: 11, TransientRate: 0.3, LatencyRate: 0.5, LatencyUnits: 4},
		SlowShards:     []int{2},
		SlowFactor:     25,
		SpeculateAfter: 20,
	}}
	a, err := New(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := New(tab, Config{Shards: 4, Block: 64})
	if err != nil {
		t.Fatal(err)
	}
	sub := model.NewSubspace(model.Filter{Dim: "H", Value: "h1"})
	for trial := 0; trial < 50; trial++ {
		fp := engine.UnitFingerprint(fmt.Sprintf("t%d", trial), "G")
		ra, rb := a.ResolveShards(fp), b.ResolveShards(fp)
		if ra != rb {
			t.Fatalf("fp %s: ResolveShards not pure: %+v vs %+v", fp, ra, rb)
		}
		if a.CompletionCost(fp) != b.CompletionCost(fp) {
			t.Fatalf("fp %s: CompletionCost not pure", fp)
		}
	}
	ua, _, errA := a.ScanUnit(sub, "G")
	uc, _, errC := clean.ScanUnit(sub, "G")
	if errA != nil || errC != nil {
		t.Fatalf("scan errors: %v / %v", errA, errC)
	}
	if jsonOf(t, ua) != jsonOf(t, uc) {
		t.Fatal("fault schedule changed scan result bits (must only affect costs/counters)")
	}
}

// TestShardSpeculationModel pins the speculative re-issue semantics: a
// straggler shard's completion cost is capped near the speculate threshold
// when the healthy-replica copy answers promptly, reissues are counted, and
// permanent double failures surface as deterministic scan errors.
func TestShardSpeculationModel(t *testing.T) {
	tab := fracTable(25, 1500)
	mk := func(spec float64) *Substrate {
		s, err := New(tab, Config{Shards: 4, Block: 64, Faults: FaultPlan{
			SlowShards:     []int{1},
			SlowFactor:     100, // straggler: ~100-unit latency per attempt
			SpeculateAfter: spec,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	noSpec := mk(0)
	withSpec := mk(10)
	var worseNo, worseWith, reissues int
	for trial := 0; trial < 200; trial++ {
		fp := engine.UnitFingerprint(fmt.Sprintf("q%d", trial), "G")
		cn, cw := noSpec.CompletionCost(fp), withSpec.CompletionCost(fp)
		if cn > 50 {
			worseNo++
		}
		if cw > 50 {
			worseWith++
		}
		reissues += int(withSpec.ResolveShards(fp).SpeculativeReissues)
	}
	if worseNo == 0 {
		t.Fatal("straggler model never produced a slow scan without speculation")
	}
	if worseWith >= worseNo/4 {
		t.Fatalf("speculation did not mitigate stragglers: %d slow with vs %d without", worseWith, worseNo)
	}
	if reissues == 0 {
		t.Fatal("no speculative reissues counted")
	}

	// Double failure: a shard whose primary and speculative copies both fail
	// permanently yields a deterministic error wrapping faults.ErrQueryFailed.
	hard, err := New(tab, Config{Shards: 2, Block: 64, Faults: FaultPlan{
		Policy:         faults.Policy{Seed: 3, PermanentRate: 1},
		SpeculateAfter: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err1 := hard.ScanUnit(model.EmptySubspace, "G")
	_, _, err2 := hard.ScanUnit(model.EmptySubspace, "G")
	if err1 == nil || !errors.Is(err1, faults.ErrQueryFailed) {
		t.Fatalf("double failure error = %v, want wrapping faults.ErrQueryFailed", err1)
	}
	if fmt.Sprint(err1) != fmt.Sprint(err2) {
		t.Fatalf("shard failure not deterministic: %v vs %v", err1, err2)
	}
	if st := hard.ResolveShards(engine.UnitFingerprint(model.EmptySubspace.Key(), "G")); !st.Failed {
		t.Fatal("ResolveShards does not report the failure")
	}
}

// TestShardObserverCounters smoke-checks the engine.shard.* surface.
func TestShardObserverCounters(t *testing.T) {
	tab := fracTable(26, 1000)
	o := obs.New(obs.Options{})
	s, err := New(tab, Config{Shards: 4, Block: 64, Observer: o, Faults: FaultPlan{
		SlowShards: []int{0}, SlowFactor: 50, SpeculateAfter: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if s.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", s.ShardCount())
	}
	for i := 0; i < 5; i++ {
		sub := model.NewSubspace(model.Filter{Dim: "H", Value: fmt.Sprintf("h%d", i)})
		if _, _, err := s.ScanUnit(sub, "G"); err != nil {
			t.Fatal(err)
		}
	}
	text := o.Registry().Snapshot().Text()
	for _, name := range []string{"engine.shard.shards", "engine.shard.0.scans", "engine.shard.3.scans", "engine.shard.speculative_reissues"} {
		if !strings.Contains(text, name) {
			t.Fatalf("metric %q missing from snapshot:\n%s", name, text)
		}
	}
}
