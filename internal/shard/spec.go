package shard

import (
	"fmt"
	"strconv"
	"strings"

	"metainsight/internal/faults"
)

// ParseFaultPlan parses the -shard-faults CLI spec: every key of the
// -faults spec (seed, transient, permanent, latency-rate, latency, attempts,
// backoff, backoff-factor, max-backoff, jitter, deadline, breaker) applied
// per shard, plus
//
//	slow-shard=N       mark shard N as a straggler (repeatable)
//	slow-factor=F      straggler latency multiplier (default 10)
//	speculate-after=C  re-issue a shard speculatively once its simulated
//	                   cost exceeds C units (0 disables)
//
// e.g. "seed=7,transient=0.05,slow-shard=3,slow-factor=20,speculate-after=25".
func ParseFaultPlan(spec string) (FaultPlan, error) {
	var plan FaultPlan
	var rest []string
	for _, part := range strings.Split(strings.TrimSpace(spec), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return FaultPlan{}, fmt.Errorf("shard: %q is not key=value", part)
		}
		switch strings.TrimSpace(key) {
		case "slow-shard":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil || n < 0 {
				return FaultPlan{}, fmt.Errorf("shard: bad slow-shard %q", val)
			}
			plan.SlowShards = append(plan.SlowShards, n)
		case "slow-factor":
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil || f < 0 {
				return FaultPlan{}, fmt.Errorf("shard: bad slow-factor %q", val)
			}
			plan.SlowFactor = f
		case "speculate-after":
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil || f < 0 {
				return FaultPlan{}, fmt.Errorf("shard: bad speculate-after %q", val)
			}
			plan.SpeculateAfter = f
		default:
			rest = append(rest, part)
		}
	}
	pol, retry, err := faults.ParseSpec(strings.Join(rest, ","))
	if err != nil {
		return FaultPlan{}, err
	}
	plan.Policy, plan.Retry = pol, retry
	return plan, nil
}
