// Package shard implements sharded scan execution behind the
// engine.Substrate seam: a dataset.Table is partitioned into N row-range
// shards on morsel-block boundaries (so posting lists and zone maps survive
// as slices of the parent's — see dataset.ShardView), each shard is scanned
// by its own columnar substrate, and the per-shard aggregates merge into one
// unit deterministically.
//
// # Bit-identity at any shard count
//
// Pre-folded per-shard totals cannot merge bit-identically: float addition
// is non-associative, so the addition tree would change with the shard
// count. Shards therefore return engine.BlockPartial aggregates — one per
// address-aligned block of the parent's morsel grid — and the merge folds
// every block partial in ascending global block order through the same
// reorder-window discipline the morsel scan uses for parallelism-invariance.
// Shards are contiguous block runs, so draining shard results in shard order
// visits blocks in ascending global order, and the addition tree depends
// only on the table and the block size: scans are bit-identical for any
// shard count and any scan parallelism.
//
// # Plans and costs
//
// A planner substrate over the whole table answers PlannedRows and defines
// the metered row count, so the engine's analytic cost model — and with it
// budgets, Stats and run traces — is invariant to the shard count even when
// individual shards pick different physical plan strategies (per-block
// partials are strategy-invariant, see engine/partials.go).
//
// # Faults, stragglers and speculation
//
// Each shard can run behind a simulated-remote fault schedule
// (internal/faults) with a per-shard seed. A shard whose primary copy fails,
// or whose simulated completion cost exceeds FaultPlan.SpeculateAfter, is
// re-issued speculatively against the shard's base (healthy-replica)
// schedule under an independent fingerprint. The winner is picked
// deterministically — the copy with the lower simulated completion cost,
// ties to the primary by issue order — never by wall-clock; shard data is
// identical between copies, so the winner rule shapes only the cost and
// counter model, never result bits. All shard fates are pure functions of
// the scan fingerprint (scan cost never enters the draw), which lets the
// miner's canonical commit-order replay recompute them exactly
// (engine.ShardResolver).
package shard

import (
	"fmt"
	"strconv"
	"sync"

	"metainsight/internal/cache"
	"metainsight/internal/dataset"
	"metainsight/internal/engine"
	"metainsight/internal/faults"
	"metainsight/internal/model"
	"metainsight/internal/obs"
)

// Range is one shard's row range [Lo, Hi) in the parent table.
type Range struct {
	Lo, Hi int
}

// Partition cuts rows into at most shards contiguous block-aligned ranges,
// balancing whole blocks as evenly as possible (the first rows%... ranges
// get one extra block). Fewer ranges come back when the table has fewer
// blocks than requested shards; at least one range is always returned.
func Partition(rows, shards, block int) []Range {
	if block <= 0 {
		block = engine.DefaultMorselSize
	}
	nb := (rows + block - 1) / block
	if nb < 1 {
		nb = 1
	}
	if shards > nb {
		shards = nb
	}
	if shards < 1 {
		shards = 1
	}
	out := make([]Range, shards)
	per, extra := nb/shards, nb%shards
	b0 := 0
	for i := range out {
		n := per
		if i < extra {
			n++
		}
		lo, hi := b0*block, (b0+n)*block
		if hi > rows {
			hi = rows
		}
		out[i] = Range{Lo: lo, Hi: hi}
		b0 += n
	}
	return out
}

// FaultPlan is the simulated-remote schedule of a sharded substrate. The
// zero value injects nothing.
type FaultPlan struct {
	// Policy is the base per-shard fault schedule; the seed is mixed per
	// shard index so shards draw independent fates.
	Policy faults.Policy
	// Retry resolves each copy's attempts (faults.RetryPolicy semantics;
	// zero fields take the usual defaults when any injection is active).
	Retry faults.RetryPolicy
	// SlowShards lists shard indices acting as stragglers: every attempt on
	// them is charged SlowFactor× the base latency (base 1 unit when the
	// policy has none) at rate 1.
	SlowShards []int
	// SlowFactor is the straggler latency multiplier (default 10 when
	// SlowShards is set and the factor is 0).
	SlowFactor float64
	// SpeculateAfter enables speculative re-issue: when a shard's primary
	// copy fails, or its simulated completion cost exceeds this threshold,
	// a second copy is issued against the shard's base (healthy-replica)
	// schedule under an independent fingerprint. 0 disables speculation.
	SpeculateAfter float64
}

// Enabled reports whether the plan injects anything.
func (f FaultPlan) Enabled() bool {
	return f.Policy.Enabled() || (len(f.SlowShards) > 0)
}

// Validate rejects malformed plans.
func (f FaultPlan) Validate(shards int) error {
	if err := f.Policy.Validate(); err != nil {
		return err
	}
	for _, i := range f.SlowShards {
		if i < 0 || i >= shards {
			return fmt.Errorf("shard: slow shard %d outside [0, %d)", i, shards)
		}
	}
	if f.SlowFactor < 0 {
		return fmt.Errorf("shard: negative slow factor %v", f.SlowFactor)
	}
	if f.SpeculateAfter < 0 {
		return fmt.Errorf("shard: negative speculate-after %v", f.SpeculateAfter)
	}
	return nil
}

// Config configures a sharded substrate.
type Config struct {
	// Shards is the requested shard count (clamped to the block count).
	Shards int
	// Block is the partition grain and every shard's morsel size; it must be
	// shared so the global block grid is well-defined. Default
	// engine.DefaultMorselSize.
	Block int
	// ScanParallelism is each shard's intra-shard morsel parallelism.
	ScanParallelism int
	// PlanMode pins the per-shard (and planner) physical strategy.
	PlanMode engine.PlanMode
	// MinMax restricts min/max materialization, as engine.WithMinMaxColumns.
	MinMax map[string]bool
	// Concurrency caps how many shards scan at once (default: all).
	Concurrency int
	// Observer receives engine.shard.* counters and the per-shard physical
	// scan counters. Inert when nil.
	Observer *obs.Observer
	// Faults is the simulated-remote schedule.
	Faults FaultPlan
}

// shardExec is one shard: its substrate plus its fault injectors.
type shardExec struct {
	sub       *engine.ColumnarSubstrate
	baseBlock int // global block index of the shard's first block
	primary   *faults.Injector
	spec      *faults.Injector
}

// Substrate scans N table shards concurrently and merges block partials in
// deterministic global block order. It implements engine.Substrate,
// engine.RowPlanner and engine.ShardResolver.
type Substrate struct {
	planner *engine.ColumnarSubstrate // whole-table: plans, costs, merge layout
	shards  []*shardExec
	conc    int
	plan    FaultPlan
	obs     *obs.Observer
}

// mixSeed decorrelates per-shard injector seeds.
func mixSeed(seed uint64, i int) uint64 {
	return seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
}

// New builds a sharded substrate over tab.
func New(tab *dataset.Table, cfg Config) (*Substrate, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", cfg.Shards)
	}
	block := cfg.Block
	if block <= 0 {
		block = engine.DefaultMorselSize
	}
	ranges := Partition(tab.Rows(), cfg.Shards, block)
	if err := cfg.Faults.Validate(len(ranges)); err != nil {
		return nil, err
	}
	plan := cfg.Faults
	if len(plan.SlowShards) > 0 && plan.SlowFactor == 0 {
		plan.SlowFactor = 10
	}
	subOpts := func(o *obs.Observer) []engine.ColumnarOption {
		return []engine.ColumnarOption{
			engine.WithMorselSize(block),
			engine.WithPlanMode(cfg.PlanMode),
			engine.WithMinMaxColumns(cfg.MinMax),
			engine.WithScanParallelism(cfg.ScanParallelism),
			engine.WithScanObserver(o),
		}
	}
	s := &Substrate{
		planner: engine.NewColumnarSubstrate(tab, subOpts(nil)...),
		conc:    cfg.Concurrency,
		plan:    plan,
		obs:     cfg.Observer,
	}
	slow := make(map[int]bool, len(plan.SlowShards))
	for _, i := range plan.SlowShards {
		slow[i] = true
	}
	for i, r := range ranges {
		view := tab.ShardView(r.Lo, r.Hi)
		ex := &shardExec{
			sub:       engine.NewColumnarSubstrate(view, subOpts(cfg.Observer)...),
			baseBlock: r.Lo / block,
		}
		base := plan.Policy
		base.Seed = mixSeed(base.Seed, i)
		pol := base
		if slow[i] {
			lat := pol.LatencyUnits
			if lat <= 0 {
				lat = 1
			}
			pol.LatencyRate = 1
			pol.LatencyUnits = lat * plan.SlowFactor
		}
		ex.primary = faults.NewInjector(pol, plan.Retry)
		if plan.SpeculateAfter > 0 {
			ex.spec = faults.NewInjector(base, plan.Retry)
		}
		s.shards = append(s.shards, ex)
	}
	if s.conc <= 0 || s.conc > len(s.shards) {
		s.conc = len(s.shards)
	}
	s.obs.SetGauge("engine.shard.shards", float64(len(s.shards)))
	return s, nil
}

// ShardCount returns the effective shard count after block clamping.
func (s *Substrate) ShardCount() int { return len(s.shards) }

// fate is the resolved outcome of one shard's scan under the fault plan.
type fate struct {
	ok       bool
	reissued bool
	retries  int64
	cost     float64 // winning copy's simulated completion cost
	err      error
}

// shardFate resolves shard i's fate for fingerprint fp. It is a pure
// function of (plan, i, fp): scan cost never enters any draw, so the
// physical scan path and the miner's canonical replay agree exactly.
func (s *Substrate) shardFate(i int, fp string) fate {
	ex := s.shards[i]
	sfp := fp + "|s" + strconv.Itoa(i)
	p := ex.primary.Resolve(sfp, 0)
	f := fate{ok: p.OK, retries: p.Retries(), cost: p.FaultCost, err: p.Err(sfp)}
	if s.plan.SpeculateAfter <= 0 || (p.OK && p.FaultCost <= s.plan.SpeculateAfter) {
		return f
	}
	// ex.spec may be nil (a zero base policy): the healthy replica then
	// trivially succeeds at zero cost, which nil-injector Resolve models.
	// Speculative re-issue: an independent copy against the base schedule,
	// modeling a healthy replica. It is issued once the primary has spent
	// SpeculateAfter units, so its completion cost includes that delay.
	q := ex.spec.Resolve(sfp+"|spec", 0)
	f.reissued = true
	f.retries += q.Retries()
	qCost := s.plan.SpeculateAfter + q.FaultCost
	switch {
	case p.OK && q.OK:
		if qCost < f.cost {
			f.cost = qCost // ties keep the primary: issue order, never wall-clock
		}
	case q.OK:
		f.ok, f.cost, f.err = true, qCost, nil
	case p.OK:
		// keep the primary
	default:
		if qCost > f.cost {
			f.cost = qCost // both copies exhausted; the scan fails at the later give-up
		}
	}
	return f
}

// gate resolves every shard's fate for one scan, publishes the shard
// counters, and returns the first failed shard's error (by shard order) if
// any shard lost both copies. Fates are pure per fingerprint, so the engine's
// retry of a returned error fails identically — a sharded scan failure is
// deterministic and surfaces as a failed unit.
func (s *Substrate) gate(fp string) error {
	if !s.plan.Enabled() {
		return nil
	}
	var firstErr error
	var maxCost float64
	for i := range s.shards {
		f := s.shardFate(i, fp)
		if f.reissued {
			s.obs.Count("engine.shard.speculative_reissues", 1)
		}
		if f.retries > 0 {
			s.obs.Count("engine.shard.retries", f.retries)
		}
		if !f.ok {
			s.obs.Count("engine.shard.failures", 1)
			s.obs.Count("engine.shard."+strconv.Itoa(i)+".failures", 1)
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, f.err)
			}
		}
		if f.cost > maxCost {
			maxCost = f.cost
		}
	}
	if firstErr != nil {
		return firstErr
	}
	s.obs.Observe("engine.shard.completion_cost", completionCostBounds, maxCost)
	return nil
}

// completionCostBounds buckets the simulated scan completion cost (fault
// latency plus retry spending of the slowest shard's winning copy).
var completionCostBounds = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// CompletionCost returns the simulated completion cost of one scan under the
// fault plan: the maximum over shards of the winning copy's cost (the merge
// barrier waits for the slowest shard). Pure per fingerprint; the bench
// harness uses it for the straggler-mitigation percentile curves.
func (s *Substrate) CompletionCost(fp string) float64 {
	var maxCost float64
	for i := range s.shards {
		if f := s.shardFate(i, fp); f.cost > maxCost {
			maxCost = f.cost
		}
	}
	return maxCost
}

// ResolveShards implements engine.ShardResolver: the canonical, pure shard
// accounting of one scan, recomputed by the miner's commit-order replay.
func (s *Substrate) ResolveShards(fp string) engine.ShardStats {
	var st engine.ShardStats
	if !s.plan.Enabled() {
		return st
	}
	for i := range s.shards {
		f := s.shardFate(i, fp)
		if f.reissued {
			st.SpeculativeReissues++
		}
		st.Retries += f.retries
		if !f.ok {
			st.Failed = true
		}
	}
	return st
}

// scanShards runs scan on every shard concurrently and folds each shard's
// block partials into merger strictly in shard order through a reorder
// window — the shard-level analog of the morsel merge window, and with
// contiguous shards, exactly ascending global block order.
func (s *Substrate) scanShards(merger *engine.PartialMerger, scan func(ex *shardExec) []engine.BlockPartial) {
	n := len(s.shards)
	if n == 1 || s.conc <= 1 {
		for i, ex := range s.shards {
			parts := scan(ex)
			s.foldShard(merger, i, parts)
		}
		return
	}
	var (
		mu    sync.Mutex
		ready = make([][]engine.BlockPartial, n)
		done  = make([]bool, n)
		next  int
		wg    sync.WaitGroup
		sem   = make(chan struct{}, s.conc)
	)
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			parts := scan(s.shards[i])
			<-sem
			mu.Lock()
			ready[i], done[i] = parts, true
			for next < n && done[next] {
				s.foldShard(merger, next, ready[next])
				ready[next] = nil
				next++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
}

// foldShard rebases one shard's partials to global block indices and folds
// them in order.
func (s *Substrate) foldShard(merger *engine.PartialMerger, i int, parts []engine.BlockPartial) {
	ex := s.shards[i]
	s.obs.Count("engine.shard."+strconv.Itoa(i)+".scans", 1)
	for j := range parts {
		parts[j].Block += ex.baseBlock
		merger.Fold(&parts[j])
	}
}

// ScanUnit implements engine.Substrate. The returned row count is the
// whole-table planner's — the metered cost authority — so budgets and Stats
// are shard-count-invariant; physically visited per-shard rows surface only
// through the observer.
func (s *Substrate) ScanUnit(sub model.Subspace, breakdown string) (*cache.Unit, int, error) {
	fp := engine.UnitFingerprint(sub.Key(), breakdown)
	if err := s.gate(fp); err != nil {
		return nil, 0, err
	}
	merger := s.planner.NewMerger(s.planner.UnitCells(breakdown))
	s.scanShards(merger, func(ex *shardExec) []engine.BlockPartial {
		parts, _, _ := ex.sub.ScanUnitBlocks(sub, breakdown)
		return parts
	})
	return merger.FinishUnit(sub, breakdown), s.planner.PlannedRows(sub), nil
}

// ScanAugmented implements engine.Substrate.
func (s *Substrate) ScanAugmented(base model.Subspace, breakdown, ext string) (map[string]*cache.Unit, int, error) {
	fp := engine.AugmentedFingerprint(base.Key(), breakdown, ext)
	if err := s.gate(fp); err != nil {
		return nil, 0, err
	}
	merger := s.planner.NewMerger(s.planner.AugmentedCells(breakdown, ext))
	s.scanShards(merger, func(ex *shardExec) []engine.BlockPartial {
		parts, _, _ := ex.sub.ScanAugmentedBlocks(base, breakdown, ext)
		return parts
	})
	return merger.FinishAugmented(base, breakdown, ext), s.planner.PlannedRows(base), nil
}

// PlannedRows implements engine.RowPlanner via the whole-table planner.
func (s *Substrate) PlannedRows(sub model.Subspace) int {
	return s.planner.PlannedRows(sub)
}
