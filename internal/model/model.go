// Package model defines the vocabulary of multi-dimensional data analysis
// used throughout MetaInsight: dimensions and measures, subspaces and sibling
// groups, breakdowns, and data scopes (Definition 2.1 of the paper).
//
// The types here are deliberately free of storage or query concerns; they are
// shared by the storage layer (internal/dataset), the query engine
// (internal/engine), the pattern evaluators (internal/pattern) and the
// MetaInsight formulation (internal/core).
package model

import (
	"fmt"
	"sort"
	"strings"
)

// FieldKind classifies a column of a multi-dimensional dataset.
type FieldKind int

const (
	// KindCategorical marks a dimension whose domain has no intrinsic order
	// (e.g. "City").
	KindCategorical FieldKind = iota
	// KindTemporal marks a dimension whose domain is ordered in time
	// (e.g. "Month"). Temporal breakdowns unlock the time-series pattern
	// types (Trend, Outlier, Seasonality, ChangePoint, Unimodality).
	KindTemporal
	// KindMeasure marks a numerical column on which aggregates are computed
	// (e.g. "Sales").
	KindMeasure
)

// String returns the human-readable name of the field kind.
func (k FieldKind) String() string {
	switch k {
	case KindCategorical:
		return "categorical"
	case KindTemporal:
		return "temporal"
	case KindMeasure:
		return "measure"
	default:
		return fmt.Sprintf("FieldKind(%d)", int(k))
	}
}

// Field describes one column of a dataset.
type Field struct {
	Name string
	Kind FieldKind
}

// AggFunc is an aggregate function applied to a measure column.
type AggFunc int

const (
	// AggSum computes the sum of the measure over each group.
	AggSum AggFunc = iota
	// AggCount computes the number of records in each group. The measure
	// column is ignored; COUNT(*) is written as Count("*").
	AggCount
	// AggAvg computes the arithmetic mean of the measure over each group.
	AggAvg
	// AggMin computes the minimum of the measure over each group.
	AggMin
	// AggMax computes the maximum of the measure over each group.
	AggMax
)

// String returns the SQL-style name of the aggregate function.
func (a AggFunc) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// Additive reports whether the aggregate distributes over disjoint unions of
// record sets. Additive aggregates (SUM, COUNT) are the only ones eligible as
// impact measures, because the impact of a subspace must equal the sum of the
// impacts of any partition of it (Equation 2 / 17 of the paper).
func (a AggFunc) Additive() bool { return a == AggSum || a == AggCount }

// Measure pairs an aggregate function with the measure column it applies to.
// The paper's set M of measures is a set of Measure values.
type Measure struct {
	Agg    AggFunc
	Column string // "*" for COUNT(*)
}

// Sum constructs the measure SUM(column).
func Sum(column string) Measure { return Measure{Agg: AggSum, Column: column} }

// Count constructs the measure COUNT(column); use Count("*") for COUNT(*).
func Count(column string) Measure { return Measure{Agg: AggCount, Column: column} }

// Avg constructs the measure AVG(column).
func Avg(column string) Measure { return Measure{Agg: AggAvg, Column: column} }

// Min constructs the measure MIN(column).
func Min(column string) Measure { return Measure{Agg: AggMin, Column: column} }

// Max constructs the measure MAX(column).
func Max(column string) Measure { return Measure{Agg: AggMax, Column: column} }

// String renders the measure in SQL style, e.g. "SUM(Sales)".
func (m Measure) String() string { return m.Agg.String() + "(" + m.Column + ")" }

// Key returns a canonical identifier for the measure, used in cache keys.
func (m Measure) Key() string { return m.String() }

// Filter is a single non-empty filter on one dimension: Dim = Value.
type Filter struct {
	Dim   string
	Value string
}

// String renders the filter as "Dim=Value".
func (f Filter) String() string { return f.Dim + "=" + f.Value }

// Subspace is a set of non-empty filters, at most one per dimension
// (Section 2.1). Dimensions without a filter are implicitly "*" (any value).
// The filters are kept sorted by dimension name, so two subspaces with the
// same filters are structurally equal and Key is canonical.
type Subspace []Filter

// EmptySubspace is the subspace with no filters: every dimension is "*".
// It denotes the entire dataset.
var EmptySubspace = Subspace{}

// NewSubspace builds a subspace from the given filters. It sorts the filters
// by dimension name and panics if the same dimension appears twice, since a
// subspace holds at most one filter per dimension.
func NewSubspace(filters ...Filter) Subspace {
	s := make(Subspace, len(filters))
	copy(s, filters)
	sort.Slice(s, func(i, j int) bool { return s[i].Dim < s[j].Dim })
	for i := 1; i < len(s); i++ {
		if s[i].Dim == s[i-1].Dim {
			panic(fmt.Sprintf("model: duplicate filter on dimension %q", s[i].Dim))
		}
	}
	return s
}

// Len returns the number of non-empty filters in the subspace.
func (s Subspace) Len() int { return len(s) }

// Get returns the filter value on dim and whether dim is filtered at all.
func (s Subspace) Get(dim string) (string, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Dim >= dim })
	if i < len(s) && s[i].Dim == dim {
		return s[i].Value, true
	}
	return "", false
}

// Has reports whether the subspace holds a non-empty filter on dim.
func (s Subspace) Has(dim string) bool {
	_, ok := s.Get(dim)
	return ok
}

// With returns a copy of s with the filter on dim set to value, replacing any
// existing filter on dim. The receiver is not modified.
func (s Subspace) With(dim, value string) Subspace {
	out := make(Subspace, 0, len(s)+1)
	inserted := false
	for _, f := range s {
		switch {
		case f.Dim == dim:
			out = append(out, Filter{Dim: dim, Value: value})
			inserted = true
		case f.Dim > dim && !inserted:
			out = append(out, Filter{Dim: dim, Value: value})
			inserted = true
			out = append(out, f)
		default:
			out = append(out, f)
		}
	}
	if !inserted {
		out = append(out, Filter{Dim: dim, Value: value})
	}
	return out
}

// Without returns a copy of s with any filter on dim removed. If dim is not
// filtered, the result is an equal copy of s.
func (s Subspace) Without(dim string) Subspace {
	out := make(Subspace, 0, len(s))
	for _, f := range s {
		if f.Dim != dim {
			out = append(out, f)
		}
	}
	return out
}

// Equal reports whether two subspaces hold exactly the same filters.
func (s Subspace) Equal(o Subspace) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string identifier for the subspace, suitable as a
// cache or set key. The empty subspace's key is "{*}".
func (s Subspace) Key() string {
	if len(s) == 0 {
		return "{*}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, f := range s {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(f.Dim)
		b.WriteByte('=')
		b.WriteString(f.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// String renders the subspace using the paper's brace notation, e.g.
// "{City: Los Angeles, Month: April}".
func (s Subspace) String() string {
	if len(s) == 0 {
		return "{*}"
	}
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.Dim + ": " + f.Value
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FilterSet returns the subspace's filters as a set keyed by "Dim=Value".
// The ranker's subspace overlap ratio (Definition 9.1) operates on these sets.
func (s Subspace) FilterSet() map[string]bool {
	set := make(map[string]bool, len(s))
	for _, f := range s {
		set[f.String()] = true
	}
	return set
}

// DataScope is the paper's Definition 2.1: a subspace together with a
// breakdown dimension and a measure. A data scope identifies one raw data
// distribution — the aggregate of Measure over the sibling group obtained by
// breaking Subspace down by Breakdown.
type DataScope struct {
	Subspace  Subspace
	Breakdown string
	Measure   Measure
}

// Key returns a canonical identifier for the data scope, used as the pattern
// cache key together with a pattern type.
func (ds DataScope) Key() string {
	return ds.Subspace.Key() + "|" + ds.Breakdown + "|" + ds.Measure.Key()
}

// String renders the data scope in the paper's 3-tuple notation.
func (ds DataScope) String() string {
	return fmt.Sprintf("⟨%s, %s, %s⟩", ds.Subspace, ds.Breakdown, ds.Measure)
}

// Valid reports whether the data scope is structurally sound: it must not
// filter its own breakdown dimension (breaking down a single fixed value is
// meaningless) and must name a breakdown.
func (ds DataScope) Valid() bool {
	return ds.Breakdown != "" && !ds.Subspace.Has(ds.Breakdown)
}

// ExtensionKind names the three homogeneous-data-scope extension strategies
// of Section 3.2.
type ExtensionKind int

const (
	// ExtendSubspace varies one subspace filter over its sibling group
	// (Equation 4).
	ExtendSubspace ExtensionKind = iota
	// ExtendMeasure varies the measure over the full measure set
	// (Equation 5).
	ExtendMeasure
	// ExtendBreakdown varies the breakdown over all temporal dimensions
	// (Equation 6).
	ExtendBreakdown
)

// String returns the name of the extension strategy.
func (k ExtensionKind) String() string {
	switch k {
	case ExtendSubspace:
		return "subspace-extending"
	case ExtendMeasure:
		return "measure-extending"
	case ExtendBreakdown:
		return "breakdown-extending"
	default:
		return fmt.Sprintf("ExtensionKind(%d)", int(k))
	}
}
