package model

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSubspaceSortsFilters(t *testing.T) {
	s := NewSubspace(Filter{"Month", "Apr"}, Filter{"City", "LA"})
	if s[0].Dim != "City" || s[1].Dim != "Month" {
		t.Fatalf("filters not sorted: %v", s)
	}
}

func TestNewSubspacePanicsOnDuplicateDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate dimension")
		}
	}()
	NewSubspace(Filter{"City", "LA"}, Filter{"City", "SF"})
}

func TestSubspaceGetHas(t *testing.T) {
	s := NewSubspace(Filter{"City", "LA"}, Filter{"Month", "Apr"})
	if v, ok := s.Get("City"); !ok || v != "LA" {
		t.Errorf("Get(City) = %q, %v", v, ok)
	}
	if _, ok := s.Get("Style"); ok {
		t.Error("Get(Style) should miss")
	}
	if !s.Has("Month") || s.Has("Style") {
		t.Error("Has misbehaves")
	}
}

func TestSubspaceWithInsertsSorted(t *testing.T) {
	s := NewSubspace(Filter{"City", "LA"})
	for _, dim := range []string{"Aaa", "Month", "Zzz"} {
		s2 := s.With(dim, "x")
		if !sort.SliceIsSorted(s2, func(i, j int) bool { return s2[i].Dim < s2[j].Dim }) {
			t.Errorf("With(%q) broke sort order: %v", dim, s2)
		}
		if v, ok := s2.Get(dim); !ok || v != "x" {
			t.Errorf("With(%q) did not insert", dim)
		}
	}
}

func TestSubspaceWithReplaces(t *testing.T) {
	s := NewSubspace(Filter{"City", "LA"})
	s2 := s.With("City", "SF")
	if s2.Len() != 1 {
		t.Fatalf("replace grew subspace: %v", s2)
	}
	if v, _ := s2.Get("City"); v != "SF" {
		t.Errorf("value not replaced: %v", s2)
	}
	// Receiver untouched.
	if v, _ := s.Get("City"); v != "LA" {
		t.Error("With mutated receiver")
	}
}

func TestSubspaceWithoutRemovesOnlyTarget(t *testing.T) {
	s := NewSubspace(Filter{"City", "LA"}, Filter{"Month", "Apr"})
	s2 := s.Without("City")
	if s2.Len() != 1 || s2.Has("City") || !s2.Has("Month") {
		t.Errorf("Without(City) = %v", s2)
	}
	if !s.Without("Nope").Equal(s) {
		t.Error("Without of absent dim changed subspace")
	}
}

func TestSubspaceKeyCanonical(t *testing.T) {
	a := NewSubspace(Filter{"City", "LA"}, Filter{"Month", "Apr"})
	b := NewSubspace(Filter{"Month", "Apr"}, Filter{"City", "LA"})
	if a.Key() != b.Key() {
		t.Errorf("keys differ for equal subspaces: %q vs %q", a.Key(), b.Key())
	}
	if EmptySubspace.Key() != "{*}" {
		t.Errorf("empty key = %q", EmptySubspace.Key())
	}
}

func TestSubspaceWithWithoutRoundtrip(t *testing.T) {
	f := func(dims []uint8) bool {
		s := EmptySubspace
		names := []string{"A", "B", "C", "D", "E"}
		for _, d := range dims {
			s = s.With(names[int(d)%len(names)], "v")
		}
		for _, name := range names {
			if s.Has(name) {
				if !s.Without(name).With(name, "v").Equal(s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataScopeValid(t *testing.T) {
	ds := DataScope{Subspace: NewSubspace(Filter{"City", "LA"}), Breakdown: "Month", Measure: Sum("Sales")}
	if !ds.Valid() {
		t.Error("valid scope reported invalid")
	}
	bad := DataScope{Subspace: NewSubspace(Filter{"Month", "Apr"}), Breakdown: "Month", Measure: Sum("Sales")}
	if bad.Valid() {
		t.Error("scope filtering its own breakdown must be invalid")
	}
	if (DataScope{Measure: Sum("Sales")}).Valid() {
		t.Error("scope without breakdown must be invalid")
	}
}

func TestMeasureStringAndAdditivity(t *testing.T) {
	if got := Sum("Sales").String(); got != "SUM(Sales)" {
		t.Errorf("Sum string = %q", got)
	}
	if got := Count("*").String(); got != "COUNT(*)" {
		t.Errorf("Count string = %q", got)
	}
	if !AggSum.Additive() || !AggCount.Additive() {
		t.Error("SUM/COUNT must be additive")
	}
	if AggAvg.Additive() || AggMin.Additive() || AggMax.Additive() {
		t.Error("AVG/MIN/MAX must not be additive")
	}
}

func TestFilterSet(t *testing.T) {
	s := NewSubspace(Filter{"City", "LA"}, Filter{"Month", "Apr"})
	set := s.FilterSet()
	if len(set) != 2 || !set["City=LA"] || !set["Month=Apr"] {
		t.Errorf("FilterSet = %v", set)
	}
}

func TestDataScopeKeyDistinguishesComponents(t *testing.T) {
	base := DataScope{Subspace: NewSubspace(Filter{"City", "LA"}), Breakdown: "Month", Measure: Sum("Sales")}
	variants := []DataScope{
		{Subspace: NewSubspace(Filter{"City", "SF"}), Breakdown: "Month", Measure: Sum("Sales")},
		{Subspace: base.Subspace, Breakdown: "Quarter", Measure: Sum("Sales")},
		{Subspace: base.Subspace, Breakdown: "Month", Measure: Avg("Sales")},
		{Subspace: base.Subspace, Breakdown: "Month", Measure: Sum("Profit")},
	}
	for _, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("key collision: %s vs %s", v, base)
		}
	}
}

func TestExtensionKindString(t *testing.T) {
	if ExtendSubspace.String() != "subspace-extending" ||
		ExtendMeasure.String() != "measure-extending" ||
		ExtendBreakdown.String() != "breakdown-extending" {
		t.Error("ExtensionKind names wrong")
	}
}
