package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// ErrorCode is the machine-readable classification every non-2xx response
// carries. Clients branch on the code, not the message: the code is a stable
// wire contract, the message is for humans.
type ErrorCode string

const (
	// CodeQueueFull: the admission wait queue is at capacity; the request
	// was shed without queuing (503).
	CodeQueueFull ErrorCode = "queue_full"
	// CodeDeadlineUnattainable: the admission controller's wait estimate
	// says the request cannot start before its deadline, so it was rejected
	// immediately instead of queuing to die (503).
	CodeDeadlineUnattainable ErrorCode = "deadline_unattainable"
	// CodeDeadlineExpired: the request's deadline fired while it was still
	// waiting for an execution slot (503).
	CodeDeadlineExpired ErrorCode = "deadline_expired"
	// CodeQuotaExhausted: the tenant's token bucket is empty (429); the
	// Retry-After header and retry_after_ms field say when one token
	// refills.
	CodeQuotaExhausted ErrorCode = "quota_exhausted"
	// CodeShuttingDown: the server is draining and accepts no new work (503).
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeNotFound: unknown dataset or job id (404).
	CodeNotFound ErrorCode = "not_found"
	// CodeBadRequest: malformed body or invalid parameter combination (400).
	CodeBadRequest ErrorCode = "bad_request"
	// CodeDegraded: the analysis completed best-effort — the query failure
	// rate exceeded the degradation threshold (206, body still carries the
	// insights; the HTTP analogue of the CLI's exit code 2).
	CodeDegraded ErrorCode = "degraded"
	// CodeInternal: an unexpected server-side failure (500).
	CodeInternal ErrorCode = "internal"
)

// APIError is the typed error body of every non-2xx response:
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": 1200}}
//
// It implements error so the admission controller, quota layer and handlers
// can pass one value through ordinary error returns.
type APIError struct {
	Code       ErrorCode `json:"code"`
	Message    string    `json:"message"`
	RetryAfter int64     `json:"retry_after_ms,omitempty"`

	status int
}

// Error implements the error interface.
func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// HTTPStatus returns the HTTP status the error maps to.
func (e *APIError) HTTPStatus() int {
	if e.status != 0 {
		return e.status
	}
	return http.StatusInternalServerError
}

func apiErrorf(status int, code ErrorCode, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...), status: status}
}

// writeAPIError renders e as its JSON body with the mapped status, setting
// Retry-After when the error carries a retry hint.
func writeAPIError(w http.ResponseWriter, e *APIError) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		secs := (e.RetryAfter + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(e.HTTPStatus())
	_ = json.NewEncoder(w).Encode(struct {
		Error *APIError `json:"error"`
	}{e})
}

// retryAfterMS converts a duration into the wire's millisecond hint,
// rounding up so clients never retry early.
func retryAfterMS(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	ms := int64(d / time.Millisecond)
	if d%time.Millisecond != 0 {
		ms++
	}
	if ms == 0 {
		ms = 1
	}
	return ms
}
