package serve

import (
	"net/http"
	"sync"
	"time"

	"metainsight/internal/obs"
)

// QuotaConfig configures the per-tenant token buckets. Every admission
// attempt spends one token; tokens refill continuously at Rate per second up
// to Burst. A zero Rate disables quota enforcement entirely.
type QuotaConfig struct {
	// Rate is the sustained request rate per tenant, in requests/second.
	// 0 disables quotas.
	Rate float64
	// Burst is the bucket capacity — how many requests a tenant may issue
	// back-to-back after an idle period. 0 defaults to max(1, Rate).
	Burst float64
	// Overrides replaces Rate/Burst for specific tenants. A tenant override
	// with Rate 0 makes that tenant unlimited.
	Overrides map[string]TenantQuota
}

// TenantQuota is one tenant's override of the default quota.
type TenantQuota struct {
	Rate  float64
	Burst float64
}

// quotas is the token-bucket quota layer. Buckets are created lazily per
// tenant and refill lazily on access, so an idle tenant costs nothing. The
// clock is injectable for tests.
type quotas struct {
	cfg QuotaConfig
	obs *obs.Observer
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newQuotas(cfg QuotaConfig, ob *obs.Observer) *quotas {
	if cfg.Burst == 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &quotas{cfg: cfg, obs: ob, now: time.Now, buckets: make(map[string]*bucket)}
}

// limitsFor resolves the (rate, burst) pair for one tenant.
func (q *quotas) limitsFor(tenant string) (rate, burst float64) {
	if o, ok := q.cfg.Overrides[tenant]; ok {
		rate, burst = o.Rate, o.Burst
		if burst == 0 {
			burst = rate
			if burst < 1 {
				burst = 1
			}
		}
		return rate, burst
	}
	return q.cfg.Rate, q.cfg.Burst
}

// Allow spends one token from the tenant's bucket. On an empty bucket it
// returns a typed 429 APIError carrying the refill wait; the caller rejects
// without queuing — quota denials never occupy admission capacity.
func (q *quotas) Allow(tenant string) *APIError {
	rate, burst := q.limitsFor(tenant)
	if rate <= 0 {
		return nil // unlimited
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{rate: rate, burst: burst, tokens: burst, last: now}
		q.buckets[tenant] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		q.obs.Count("serve.quota.allowed", 1)
		return nil
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	q.obs.Count("serve.quota.denied", 1)
	err := apiErrorf(http.StatusTooManyRequests, CodeQuotaExhausted,
		"tenant %q is over quota (rate %.3g/s, burst %.3g)", tenant, rate, burst)
	err.RetryAfter = retryAfterMS(wait)
	return err
}
