package serve

import (
	"context"
	"net/http"
	"sync"
	"time"

	"metainsight/internal/obs"
)

// AdmissionConfig configures the admission controller: a bounded concurrency
// semaphore in front of the analysis engine plus a bounded wait queue with
// deadline-aware shedding and round-robin fairness across tenants.
type AdmissionConfig struct {
	// MaxConcurrent is how many analyses may execute at once (default 8).
	MaxConcurrent int
	// MaxQueue bounds the total number of waiting requests across all
	// tenants (default 64). A request arriving at a full queue is shed
	// immediately with CodeQueueFull.
	MaxQueue int
	// ExpectedServiceTime seeds the controller's service-time estimate
	// before any request has completed. The estimate is maintained as an
	// EWMA of observed slot-hold durations and drives deadline-aware
	// shedding: a request whose estimated start time lies beyond its
	// deadline is rejected immediately (CodeDeadlineUnattainable) instead
	// of queuing to die. 0 starts optimistic (no request is pre-shed until
	// real service times are observed).
	ExpectedServiceTime time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	return c
}

// waiter is one queued admission request. granted/failed and err are
// written under the controller's lock before ready is closed, so the woken
// goroutine reads a consistent outcome.
type waiter struct {
	ready   chan struct{}
	granted bool
	err     *APIError
}

// tenantFIFO is one tenant's arrival-ordered wait queue.
type tenantFIFO struct {
	ws []*waiter
}

// admission is the controller. Fairness is round-robin across tenants: each
// tenant has its own FIFO, and freed slots rotate through the tenants that
// have waiters, so one tenant flooding the queue cannot starve another —
// a newcomer tenant waits behind at most one request per competing tenant,
// not behind the flood.
type admission struct {
	cfg AdmissionConfig
	obs *obs.Observer
	now func() time.Time

	mu       sync.Mutex
	inflight int
	queued   int
	tenants  map[string]*tenantFIFO
	ring     []string // tenants with waiters, arrival order
	cursor   int      // next ring position to serve
	ewma     float64  // seconds; 0 = no observation yet
	closed   bool
}

// permit is a held execution slot; Release returns it and dispatches the
// next waiter.
type permit struct {
	a     *admission
	start time.Time
}

func newAdmission(cfg AdmissionConfig, ob *obs.Observer) *admission {
	cfg = cfg.withDefaults()
	return &admission{
		cfg:     cfg,
		obs:     ob,
		now:     time.Now,
		tenants: make(map[string]*tenantFIFO),
		ewma:    cfg.ExpectedServiceTime.Seconds(),
	}
}

// estimateLocked is the deadline-shedding wait estimate for a request that
// would queue at the current tail: the number of service "waves" ahead of it
// times the EWMA service time. It is deliberately simple — the point is to
// reject hopeless requests immediately, not to be a scheduler oracle.
func (a *admission) estimateLocked() time.Duration {
	if a.ewma <= 0 {
		return 0
	}
	waves := a.queued/a.cfg.MaxConcurrent + 1
	return time.Duration(float64(waves) * a.ewma * float64(time.Second))
}

// Acquire obtains an execution slot, queuing with round-robin tenant
// fairness when the engine is saturated. It sheds instead of queuing when
// the queue is full or the context's deadline provably cannot be met, and
// abandons the wait (freeing the queue slot) when the context fires first.
func (a *admission) Acquire(ctx context.Context, tenant string) (*permit, *APIError) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, apiErrorf(http.StatusServiceUnavailable, CodeShuttingDown,
			"server is shutting down")
	}
	// Immediate grant only when nobody is queued: barging past waiters
	// would defeat both FIFO ordering and tenant fairness.
	if a.inflight < a.cfg.MaxConcurrent && a.queued == 0 {
		a.inflight++
		a.obs.Count("serve.admitted", 1)
		a.gaugesLocked()
		a.mu.Unlock()
		return &permit{a: a, start: a.now()}, nil
	}
	if a.queued >= a.cfg.MaxQueue {
		a.obs.Count("serve.shed.queue_full", 1)
		a.mu.Unlock()
		e := apiErrorf(http.StatusServiceUnavailable, CodeQueueFull,
			"admission queue is full (%d waiting)", a.cfg.MaxQueue)
		e.RetryAfter = retryAfterMS(a.estimate())
		return nil, e
	}
	if dl, ok := ctx.Deadline(); ok {
		if est := a.estimateLocked(); est > 0 && a.now().Add(est).After(dl) {
			a.obs.Count("serve.shed.deadline_unattainable", 1)
			a.mu.Unlock()
			e := apiErrorf(http.StatusServiceUnavailable, CodeDeadlineUnattainable,
				"estimated queue wait %v exceeds the request deadline; rejected without queuing", est.Round(time.Millisecond))
			e.RetryAfter = retryAfterMS(est)
			return nil, e
		}
	}
	w := &waiter{ready: make(chan struct{})}
	f, ok := a.tenants[tenant]
	if !ok {
		f = &tenantFIFO{}
		a.tenants[tenant] = f
		a.ring = append(a.ring, tenant)
	}
	f.ws = append(f.ws, w)
	a.queued++
	a.gaugesLocked()
	a.mu.Unlock()

	select {
	case <-w.ready:
		a.mu.Lock()
		granted, werr := w.granted, w.err
		a.mu.Unlock()
		if !granted {
			return nil, werr
		}
		return &permit{a: a, start: a.now()}, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced our deadline: return the slot and hand it on.
			a.inflight--
			a.dispatchLocked()
			a.mu.Unlock()
		} else {
			a.removeLocked(tenant, w)
			a.obs.Count("serve.shed.deadline_expired", 1)
			a.gaugesLocked()
			a.mu.Unlock()
		}
		return nil, apiErrorf(http.StatusServiceUnavailable, CodeDeadlineExpired,
			"deadline expired while waiting for an execution slot")
	}
}

// Release returns the slot, folds the observed service time into the EWMA
// estimate, and dispatches the next waiter round-robin.
func (p *permit) Release() {
	a := p.a
	held := a.now().Sub(p.start).Seconds()
	a.mu.Lock()
	const alpha = 0.2
	if a.ewma <= 0 {
		a.ewma = held
	} else {
		a.ewma = (1-alpha)*a.ewma + alpha*held
	}
	a.inflight--
	a.dispatchLocked()
	a.mu.Unlock()
}

// dispatchLocked grants free slots to waiters, rotating across tenants.
func (a *admission) dispatchLocked() {
	for a.inflight < a.cfg.MaxConcurrent && a.queued > 0 {
		if a.cursor >= len(a.ring) {
			a.cursor = 0
		}
		tn := a.ring[a.cursor]
		f := a.tenants[tn]
		w := f.ws[0]
		f.ws = f.ws[1:]
		a.queued--
		if len(f.ws) == 0 {
			delete(a.tenants, tn)
			a.ring = append(a.ring[:a.cursor], a.ring[a.cursor+1:]...)
			if a.cursor >= len(a.ring) {
				a.cursor = 0
			}
		} else {
			a.cursor++
		}
		w.granted = true
		a.inflight++
		a.obs.Count("serve.admitted", 1)
		close(w.ready)
	}
	a.gaugesLocked()
}

// removeLocked takes an abandoned waiter out of its tenant queue.
func (a *admission) removeLocked(tenant string, w *waiter) {
	f, ok := a.tenants[tenant]
	if !ok {
		return
	}
	for i, x := range f.ws {
		if x == w {
			f.ws = append(f.ws[:i], f.ws[i+1:]...)
			a.queued--
			break
		}
	}
	if len(f.ws) == 0 {
		delete(a.tenants, tenant)
		for i, tn := range a.ring {
			if tn == tenant {
				a.ring = append(a.ring[:i], a.ring[i+1:]...)
				if i < a.cursor {
					a.cursor--
				}
				if a.cursor >= len(a.ring) {
					a.cursor = 0
				}
				break
			}
		}
	}
}

// Close drains the controller: every queued waiter is woken with a
// shutting-down error, and future Acquire calls fail immediately. In-flight
// permits remain valid; their Release still runs.
func (a *admission) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	for _, tn := range a.ring {
		f := a.tenants[tn]
		for _, w := range f.ws {
			w.err = apiErrorf(http.StatusServiceUnavailable, CodeShuttingDown,
				"server is shutting down")
			close(w.ready)
		}
		delete(a.tenants, tn)
	}
	a.ring, a.cursor, a.queued = nil, 0, 0
	a.gaugesLocked()
}

func (a *admission) gaugesLocked() {
	a.obs.SetGauge("serve.inflight", float64(a.inflight))
	a.obs.SetGauge("serve.queue.depth", float64(a.queued))
	a.obs.SetGauge("serve.service_time_ewma_s", a.ewma)
}

// estimate is estimateLocked with locking, for error payloads composed
// outside the lock.
func (a *admission) estimate() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.estimateLocked()
}

// snapshot returns (inflight, queued) for status endpoints.
func (a *admission) snapshot() (inflight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, a.queued
}
