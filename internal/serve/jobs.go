package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"metainsight"
	"metainsight/internal/checkpoint"
	"metainsight/internal/obs"
	"metainsight/internal/ranker"
)

// JobsConfig configures the durable job scheduler.
type JobsConfig struct {
	// Dir is the job state directory (spec journal + per-job checkpoints).
	// Empty disables durable jobs.
	Dir string
	// Workers is how many jobs may run concurrently (default 2). Each
	// running job additionally holds an admission slot, so jobs and
	// synchronous requests share — and are fairly scheduled over — the same
	// execution capacity.
	Workers int
	// CheckpointEvery is the default snapshot cadence in unit commits for
	// jobs that do not specify one (default 64).
	CheckpointEvery int64
	// StreamBuffer is the per-subscriber SSE event buffer (default 64). A
	// subscriber that falls further behind is switched to snapshot mode
	// (drop-to-snapshot) instead of backpressuring the miner.
	StreamBuffer int
}

func (c JobsConfig) withDefaults() JobsConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 64
	}
	return c
}

// jobResult is the durable completion record, written atomically to
// result.json when a job finishes. Its presence is what distinguishes a
// finished job from one to resume at startup.
type jobResult struct {
	State    JobState        `json:"state"`
	Degraded bool            `json:"degraded,omitempty"`
	Error    string          `json:"error,omitempty"`
	Insights json.RawMessage `json:"insights,omitempty"`
	Stats    json.RawMessage `json:"stats,omitempty"`
}

// JobStatus is the wire form of one job's current state.
type JobStatus struct {
	ID            string          `json:"id"`
	State         JobState        `json:"state"`
	Tenant        string          `json:"tenant"`
	Dataset       string          `json:"dataset"`
	Resumed       bool            `json:"resumed,omitempty"`
	InsightsFound int64           `json:"insights_found"`
	Degraded      bool            `json:"degraded,omitempty"`
	Error         string          `json:"error,omitempty"`
	Insights      json.RawMessage `json:"insights,omitempty"`
	Stats         json.RawMessage `json:"stats,omitempty"`
}

// job is one durable job's in-memory state.
type job struct {
	spec JobSpec
	hub  *streamHub
	prog *ranker.Progressive

	found atomic.Int64

	mu       sync.Mutex
	state    JobState
	resumed  bool
	degraded bool
	errMsg   string
	insights json.RawMessage
	stats    json.RawMessage
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:            j.spec.ID,
		State:         j.state,
		Tenant:        j.spec.Tenant,
		Dataset:       j.spec.Params.Dataset,
		Resumed:       j.resumed,
		InsightsFound: j.found.Load(),
		Degraded:      j.degraded,
		Error:         j.errMsg,
		Insights:      j.insights,
		Stats:         j.stats,
	}
}

// scheduler owns the durable job queue: specs are journaled before
// acknowledgement, results are journaled at completion, and anything
// in between — including a kill -9 of the whole daemon — leaves a spec
// without a result, which the next startup resumes from its checkpoint
// directory bit-identically (the mining checkpoint machinery replays the
// canonical commit stream; see internal/checkpoint and DESIGN.md §7).
type scheduler struct {
	cfg       JobsConfig
	reg       *registry
	adm       *admission
	obs       *obs.Observer
	unitDelay time.Duration
	logf      func(string, ...any)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*job
	queue []*job
	wake  chan struct{}
}

func newScheduler(cfg JobsConfig, reg *registry, adm *admission, ob *obs.Observer,
	unitDelay time.Duration, logf func(string, ...any)) (*scheduler, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		cfg: cfg, reg: reg, adm: adm, obs: ob,
		unitDelay: unitDelay, logf: logf,
		ctx: ctx, cancel: cancel,
		jobs: make(map[string]*job),
		wake: make(chan struct{}, 1),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o777); err != nil {
			cancel()
			return nil, err
		}
		if err := s.recover(); err != nil {
			cancel()
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.kick()
	return s, nil
}

func (s *scheduler) enabled() bool { return s.cfg.Dir != "" }

// recover scans the job directory at startup: specs with a result record
// load as finished history; specs without one are in-flight jobs the
// previous process lost — they re-enter the queue, flagged resumed when a
// checkpoint exists to restore from.
func (s *scheduler) recover() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(s.cfg.Dir, ent.Name())
		specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			continue // a job directory torn before its spec landed: not accepted, skip
		}
		var spec JobSpec
		if err := json.Unmarshal(specData, &spec); err != nil {
			s.logf("serve: skipping corrupt job spec %s: %v", ent.Name(), err)
			continue
		}
		j := s.newJob(spec)
		if resData, err := os.ReadFile(filepath.Join(dir, "result.json")); err == nil {
			var res jobResult
			if err := json.Unmarshal(resData, &res); err == nil {
				j.state = res.State
				j.degraded = res.Degraded
				j.errMsg = res.Error
				j.insights = res.Insights
				j.stats = res.Stats
				j.hub.finish(mustJSON(j.status()))
				s.jobs[spec.ID] = j
				continue
			}
			s.logf("serve: job %s: corrupt result record, re-running: %v", spec.ID, err)
		}
		j.resumed = checkpoint.Exists(s.ckDir(spec.ID))
		s.jobs[spec.ID] = j
		s.queue = append(s.queue, j)
		s.obs.Count("serve.jobs.recovered", 1)
		if j.resumed {
			s.obs.Count("serve.jobs.resumed", 1)
		}
		s.transition(j, JobQueued)
	}
	return nil
}

func (s *scheduler) newJob(spec JobSpec) *job {
	k := spec.Params.TopK
	if k <= 0 {
		k = 10
	}
	return &job{
		spec:  spec,
		hub:   newStreamHub(),
		prog:  ranker.NewProgressive(k, ranker.DefaultWeights(), 0),
		state: JobQueued,
	}
}

func (s *scheduler) ckDir(id string) string { return filepath.Join(s.cfg.Dir, id, "ck") }

// transition records a job state change through the metrics registry.
func (s *scheduler) transition(j *job, to JobState) {
	j.state = to
	s.obs.Count("serve.jobs.transition."+string(to), 1)
}

// submit validates, journals and enqueues one job. The spec hits disk —
// atomic write, rename, directory fsync — before the job is acknowledged,
// so an accepted job is crash-durable from the moment the client sees its id.
func (s *scheduler) submit(tenant string, params AnalyzeParams, every int64) (*job, *APIError) {
	if !s.enabled() {
		return nil, apiErrorf(http.StatusServiceUnavailable, CodeShuttingDown,
			"durable jobs are disabled (no state directory)")
	}
	if _, err := params.request(); err != nil {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "invalid job params: %v", err)
	}
	if _, ok := s.reg.get(params.Dataset); !ok {
		return nil, apiErrorf(http.StatusNotFound, CodeNotFound, "unknown dataset %q", params.Dataset)
	}
	if every <= 0 {
		every = s.cfg.CheckpointEvery
	}
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, CodeInternal, "id generation: %v", err)
	}
	spec := JobSpec{
		ID:              "job-" + hex.EncodeToString(idb[:]),
		Tenant:          tenant,
		Params:          params,
		CheckpointEvery: every,
		SubmittedUnix:   time.Now().Unix(),
	}
	dir := filepath.Join(s.cfg.Dir, spec.ID)
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, CodeInternal, "job dir: %v", err)
	}
	if err := atomicWriteFile(dir, "spec.json", mustJSON(spec)); err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, CodeInternal, "journal spec: %v", err)
	}
	j := s.newJob(spec)
	s.mu.Lock()
	if s.ctx.Err() != nil {
		s.mu.Unlock()
		return nil, apiErrorf(http.StatusServiceUnavailable, CodeShuttingDown, "server is shutting down")
	}
	s.jobs[spec.ID] = j
	s.queue = append(s.queue, j)
	s.mu.Unlock()
	s.obs.Count("serve.jobs.submitted", 1)
	s.kick()
	return j, nil
}

func (s *scheduler) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pop dequeues the oldest queued job (FIFO; fairness across tenants applies
// at the admission layer each running job acquires its slot through).
func (s *scheduler) pop() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return nil
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	return j
}

// requeue puts an interrupted job back at the queue head, preserving its
// position for the next worker (or, during shutdown, for the next process).
func (s *scheduler) requeue(j *job) {
	s.mu.Lock()
	s.queue = append([]*job{j}, s.queue...)
	s.mu.Unlock()
	s.obs.Count("serve.jobs.requeued", 1)
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.pop()
		if j == nil {
			select {
			case <-s.ctx.Done():
				return
			case <-s.wake:
				continue
			}
		}
		s.run(j)
		select {
		case <-s.ctx.Done():
			return
		default:
		}
	}
}

// run executes one job to completion (or interruption). The job shares the
// admission semaphore with synchronous requests, builds a dedicated session
// carrying the durability options (checkpoint journal + resume), and
// publishes each discovery to the progressive ranker and SSE hub.
func (s *scheduler) run(j *job) {
	permit, aerr := s.adm.Acquire(s.ctx, j.spec.Tenant)
	if aerr != nil {
		// Shutting down (or the scheduler context fired): hold the job for
		// the next process; its spec is already durable.
		s.requeue(j)
		return
	}
	defer permit.Release()

	entry, ok := s.reg.get(j.spec.Params.Dataset)
	if !ok {
		s.finish(j, nil, fmt.Errorf("unknown dataset %q", j.spec.Params.Dataset))
		return
	}
	req, err := j.spec.Params.request()
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	resume := checkpoint.Exists(s.ckDir(j.spec.ID))
	j.mu.Lock()
	s.transition(j, JobRunning)
	j.resumed = resume
	j.mu.Unlock()

	// A dedicated session per run: durability is a construction-time
	// setting, and the checkpoint fingerprint must cover exactly this job's
	// configuration. The dataset's dictionaries, posting lists and zone
	// maps are cached on the dataset itself, so this is cheap relative to
	// the mining it fronts.
	opts := append(append([]metainsight.SessionOption(nil), entry.opts...),
		metainsight.WithDurability(metainsight.DurabilityConfig{
			CheckpointDir: s.ckDir(j.spec.ID),
			Every:         j.spec.CheckpointEvery,
			Resume:        resume,
		}))
	sess, err := metainsight.NewSession(entry.ds, opts...)
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	defer sess.Close()

	req.Progress = func(mi *metainsight.MetaInsight) {
		n := j.found.Add(1)
		j.prog.Add(mi)
		s.obs.Count("serve.stream.published", 1)
		j.hub.publish("insight", mustJSON(map[string]any{
			"seq":         n,
			"score":       mi.Score,
			"description": metainsight.Describe(mi),
		}))
		if s.unitDelay > 0 {
			time.Sleep(s.unitDelay) // test-only throttle; inert to results
		}
	}

	an, err := sess.Analyze(s.ctx, req)
	if an == nil {
		s.finish(j, nil, err)
		return
	}
	if an.Result.Stats.Cancelled {
		// Interrupted by shutdown: the miner flushed a final snapshot at
		// loop exit, so the next process resumes bit-identically. No result
		// record is written — that is exactly what marks the job in-flight.
		j.mu.Lock()
		s.transition(j, JobQueued)
		j.mu.Unlock()
		s.obs.Count("serve.jobs.interrupted", 1)
		s.requeue(j)
		return
	}
	s.finish(j, an, err)
}

// finish records a job's terminal state durably and closes its stream.
func (s *scheduler) finish(j *job, an *metainsight.Analysis, err error) {
	res := jobResult{State: JobDone}
	if an != nil {
		if data, mErr := json.Marshal(an.Insights); mErr == nil {
			res.Insights = data
		}
		if data, mErr := json.Marshal(an.Result.Stats); mErr == nil {
			res.Stats = data
		}
	}
	switch {
	case an == nil:
		res.State = JobFailed
		if err != nil {
			res.Error = err.Error()
		}
	case errors.Is(err, metainsight.ErrDegraded):
		res.Degraded = true
		res.Error = err.Error()
	case err != nil:
		res.State = JobFailed
		res.Error = err.Error()
	}
	if s.enabled() {
		dir := filepath.Join(s.cfg.Dir, j.spec.ID)
		if wErr := atomicWriteFile(dir, "result.json", mustJSON(res)); wErr != nil {
			s.logf("serve: job %s: persisting result: %v", j.spec.ID, wErr)
		}
	}
	j.mu.Lock()
	s.transition(j, res.State)
	j.degraded = res.Degraded
	j.errMsg = res.Error
	j.insights = res.Insights
	j.stats = res.Stats
	j.mu.Unlock()
	switch {
	case res.State == JobFailed:
		s.obs.Count("serve.jobs.failed", 1)
	case res.Degraded:
		s.obs.Count("serve.jobs.degraded", 1)
	default:
		s.obs.Count("serve.jobs.completed", 1)
	}
	j.hub.finish(mustJSON(j.status()))
}

func (s *scheduler) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *scheduler) list() []JobStatus {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	// Stable listing order: by id.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// stop drains the scheduler: running jobs are cancelled at their next unit
// commit (flushing a final checkpoint snapshot) and requeued on disk-truth
// (spec without result), then the workers exit.
func (s *scheduler) stop() {
	s.cancel()
	s.kick()
	s.wg.Wait()
}

// snapshotPayload renders the drop-to-snapshot catch-up event for one job:
// the current diversified top-k plus how many increments were dropped.
func (j *job) snapshotPayload(dropped int64) []byte {
	top := j.prog.TopK()
	items := make([]map[string]any, 0, len(top))
	for _, mi := range top {
		items = append(items, map[string]any{
			"score":       mi.Score,
			"description": metainsight.Describe(mi),
		})
	}
	return mustJSON(map[string]any{"dropped": dropped, "top_k": items})
}

// mustJSON marshals values the package fully controls; a failure is a
// programming error surfaced as a JSON error payload rather than a panic.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return data
}

// atomicWriteFile writes name into dir via a temp file, fsync, rename and
// directory fsync — the same torn-write discipline the checkpoint store
// uses, so a kill -9 leaves either the old file, the new file, or a stray
// temp file, never a half-written record.
func atomicWriteFile(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
