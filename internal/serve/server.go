package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"metainsight"
	"metainsight/internal/obs"
)

// Config assembles a Server.
type Config struct {
	// Datasets are the named datasets the daemon serves. At least one is
	// required.
	Datasets []DatasetSpec
	// StateDir is the durable-state root; jobs journal under
	// <StateDir>/jobs. Empty disables durable jobs (synchronous analysis
	// still works).
	StateDir string
	// Admission configures the concurrency semaphore and shed policy.
	Admission AdmissionConfig
	// Quota configures per-tenant token buckets.
	Quota QuotaConfig
	// Jobs configures the durable job scheduler (Dir is derived from
	// StateDir and must be left empty).
	Jobs JobsConfig
	// SessionOptions apply to every session the daemon builds (shared
	// synchronous sessions and per-job durable sessions alike).
	SessionOptions []metainsight.SessionOption
	// Observer receives every serve.* counter/gauge and job transition.
	// Nil is valid (metrics become no-ops, /metricsz reports empty).
	Observer *obs.Observer
	// Logf receives operational log lines (default: discard).
	Logf func(string, ...any)
	// UnitDelay throttles job progress callbacks — a test-only hook used by
	// the chaos suite to stretch job runtime without perturbing results.
	UnitDelay time.Duration
	// TraceCapacity bounds per-request trace event buffers when a request
	// sets "trace": true (default 4096).
	TraceCapacity int
}

// Server is the resident insight service: an HTTP handler over a registry of
// named sessions, with every request passing admission control and per-tenant
// quotas, and with durable jobs that survive crashes. Construct with New,
// route via Handler, release with Close.
type Server struct {
	cfg    Config
	reg    *registry
	adm    *admission
	quo    *quotas
	sched  *scheduler
	obs    *obs.Observer
	logf   func(string, ...any)
	mux    *http.ServeMux
	closed chan struct{}
}

// New builds a Server: loads every dataset, opens its session, recovers any
// in-flight durable jobs from StateDir, and starts the job workers.
func New(cfg Config) (*Server, error) {
	if len(cfg.Datasets) == 0 {
		return nil, fmt.Errorf("serve: no datasets configured")
	}
	if cfg.Jobs.Dir != "" {
		return nil, fmt.Errorf("serve: Jobs.Dir is derived from StateDir; leave it empty")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	reg, err := newRegistry(cfg.Datasets, cfg.SessionOptions)
	if err != nil {
		return nil, err
	}
	adm := newAdmission(cfg.Admission, cfg.Observer)
	quo := newQuotas(cfg.Quota, cfg.Observer)
	jobsCfg := cfg.Jobs
	if cfg.StateDir != "" {
		jobsCfg.Dir = filepath.Join(cfg.StateDir, "jobs")
	}
	sched, err := newScheduler(jobsCfg, reg, adm, cfg.Observer, cfg.UnitDelay, logf)
	if err != nil {
		reg.close()
		return nil, err
	}
	s := &Server{
		cfg: cfg, reg: reg, adm: adm, quo: quo, sched: sched,
		obs: cfg.Observer, logf: logf, closed: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStreamJob)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the server down: queued admissions are shed with a typed
// shutting-down error, running jobs are interrupted at their next unit commit
// (flushing a final checkpoint so the next process resumes bit-identically),
// and every session's substrate memory is released. Idempotent.
func (s *Server) Close() {
	select {
	case <-s.closed:
		return
	default:
		close(s.closed)
	}
	s.adm.Close()
	s.sched.stop()
	s.reg.close()
}

// tenantOf extracts the requesting tenant from the X-Tenant header.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "anonymous"
}

// requestContext applies the X-Deadline-Ms header as a context deadline —
// the HTTP half of deadline propagation: header → context → engine budget
// machinery (the miner checks cancellation at every unit commit).
func requestContext(r *http.Request) (context.Context, context.CancelFunc, *APIError) {
	ctx := r.Context()
	h := r.Header.Get("X-Deadline-Ms")
	if h == "" {
		return ctx, func() {}, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return nil, nil, apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"invalid X-Deadline-Ms %q: want a positive integer millisecond count", h)
	}
	ctx, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(mustJSON(v))
	_, _ = w.Write([]byte("\n"))
}

// AnalyzeResponse is the synchronous endpoint's reply.
type AnalyzeResponse struct {
	Insights json.RawMessage `json:"insights"`
	Stats    json.RawMessage `json:"stats"`
	// Degraded marks a best-effort result (some mining units failed but the
	// fault policy kept going) — delivered with HTTP 206.
	Degraded bool   `json:"degraded,omitempty"`
	Warning  string `json:"warning,omitempty"`
	// Metrics and TraceEvents are attached when the request set "trace".
	Metrics     json.RawMessage `json:"metrics,omitempty"`
	TraceEvents json.RawMessage `json:"trace_events,omitempty"`
}

// handleAnalyze runs one synchronous analysis. Order of gates: quota (cheap,
// per-tenant) → decode/validate → dataset lookup → admission (may queue; may
// shed on saturation or hopeless deadline) → execute.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	if aerr := s.quo.Allow(tenant); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	var params AnalyzeParams
	if err := json.NewDecoder(r.Body).Decode(&params); err != nil {
		writeAPIError(w, apiErrorf(http.StatusBadRequest, CodeBadRequest, "decoding request body: %v", err))
		return
	}
	req, err := params.request()
	if err != nil {
		writeAPIError(w, apiErrorf(http.StatusBadRequest, CodeBadRequest, "%v", err))
		return
	}
	entry, ok := s.reg.get(params.Dataset)
	if !ok {
		writeAPIError(w, apiErrorf(http.StatusNotFound, CodeNotFound, "unknown dataset %q", params.Dataset))
		return
	}
	ctx, cancel, aerr := requestContext(r)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	defer cancel()

	permit, aerr := s.adm.Acquire(ctx, tenant)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	defer permit.Release()

	var reqObs *obs.Observer
	if params.Trace {
		capN := s.cfg.TraceCapacity
		if capN <= 0 {
			capN = 4096
		}
		reqObs = obs.New(obs.Options{TraceCapacity: capN})
		req.Observer = reqObs
	}

	an, err := entry.sess.Analyze(ctx, req)
	if an == nil {
		writeAPIError(w, apiErrorf(http.StatusInternalServerError, CodeInternal, "analysis failed: %v", err))
		return
	}
	resp := AnalyzeResponse{
		Insights: mustJSON(an.Insights),
		Stats:    mustJSON(an.Result.Stats),
	}
	if reqObs != nil {
		resp.Metrics = mustJSON(reqObs.Snapshot())
		resp.TraceEvents = mustJSON(reqObs.Trace().Events())
	}
	status := http.StatusOK
	switch {
	case errors.Is(err, metainsight.ErrDegraded):
		resp.Degraded = true
		resp.Warning = err.Error()
		status = http.StatusPartialContent
		s.obs.Count("serve.analyze.degraded", 1)
	case an.Result.Stats.Cancelled:
		// Deadline fired mid-mining: the engine stops at the next unit
		// commit and ranks what it has — a best-effort partial result.
		resp.Degraded = true
		resp.Warning = "deadline expired mid-analysis; partial result"
		status = http.StatusPartialContent
		s.obs.Count("serve.analyze.cancelled", 1)
	default:
		s.obs.Count("serve.analyze.ok", 1)
	}
	writeJSON(w, status, resp)
}

// SubmitResponse acknowledges a durable job submission.
type SubmitResponse struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
}

// submitRequest is the POST /v1/jobs body: analysis params plus job knobs.
type submitRequest struct {
	AnalyzeParams
	// CheckpointEvery overrides the snapshot cadence in unit commits.
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	if aerr := s.quo.Allow(tenant); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	var body submitRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeAPIError(w, apiErrorf(http.StatusBadRequest, CodeBadRequest, "decoding request body: %v", err))
		return
	}
	j, aerr := s.sched.submit(tenant, body.AnalyzeParams, body.CheckpointEvery)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.spec.ID, State: JobQueued})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sched.list()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.get(r.PathValue("id"))
	if !ok {
		writeAPIError(w, apiErrorf(http.StatusNotFound, CodeNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleStreamJob streams a job's progressive discoveries as server-sent
// events: "insight" per discovery, "snapshot" after a subscriber overflowed
// its buffer (consolidated current top-k), "done" with the final status.
func (s *Server) handleStreamJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.get(r.PathValue("id"))
	if !ok {
		writeAPIError(w, apiErrorf(http.StatusNotFound, CodeNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	sub := j.hub.subscribe(s.sched.cfg.StreamBuffer)
	defer j.hub.unsubscribe(sub)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if f, okf := w.(http.Flusher); okf {
		f.Flush()
	}
	dropped := sub.serve(r.Context(), w, j.snapshotPayload)
	if dropped > 0 {
		s.obs.Count("serve.stream.dropped_to_snapshot", dropped)
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.reg.list()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inflight, queued := s.adm.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"inflight": inflight,
		"queued":   queued,
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		writeJSON(w, http.StatusOK, map[string]any{})
		return
	}
	writeJSON(w, http.StatusOK, s.obs.Snapshot())
}
