package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"metainsight/internal/obs"
)

// writeHouseCSV materializes the canonical house-sales fixture (the same
// shape the root package's tests mine) as a CSV file.
func writeHouseCSV(t *testing.T) string {
	t.Helper()
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	valley := []float64{100, 70, 40, 10, 40, 70, 100, 100, 100, 100, 100, 100}
	julyValley := []float64{100, 100, 100, 100, 70, 40, 10, 40, 70, 100, 100, 100}
	var b strings.Builder
	b.WriteString("City,Month,Sales\n")
	add := func(city string, series []float64) {
		for m, v := range series {
			fmt.Fprintf(&b, "%s,%s,%s\n", city, months[m], strconv.FormatFloat(v, 'f', -1, 64))
		}
	}
	for _, city := range []string{"LA", "SF", "SJ", "Oakland", "Sacramento"} {
		add(city, valley)
	}
	add("San Diego", julyValley)
	path := filepath.Join(t.TempDir(), "house.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Datasets: []DatasetSpec{{Name: "house", Path: writeHouseCSV(t)}},
		Observer: obs.New(obs.Options{}),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func postJSON(t *testing.T, url string, body string, headers map[string]string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func errorCode(t *testing.T, data []byte) ErrorCode {
	t.Helper()
	var body struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil || body.Error == nil {
		t.Fatalf("response is not a typed error body: %s", data)
	}
	return body.Error.Code
}

const analyzeBody = `{"dataset":"house","top_k":5,"measures":[{"agg":"SUM","column":"Sales"}]}`

func TestAnalyzeEndpoint(t *testing.T) {
	_, hs := newTestServer(t, nil)
	status, data := postJSON(t, hs.URL+"/v1/analyze", analyzeBody, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, data)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	var insights []json.RawMessage
	if err := json.Unmarshal(resp.Insights, &insights); err != nil {
		t.Fatal(err)
	}
	if len(insights) == 0 {
		t.Fatal("analysis returned no insights")
	}
	if resp.Degraded {
		t.Fatalf("healthy run flagged degraded: %s", resp.Warning)
	}
	if !strings.Contains(string(resp.Insights), "San Diego") {
		t.Fatal("expected the San Diego exception among ranked insights")
	}
}

func TestAnalyzeTraceAttachesMetricsAndEvents(t *testing.T) {
	_, hs := newTestServer(t, nil)
	body := `{"dataset":"house","top_k":3,"trace":true,"measures":[{"agg":"SUM","column":"Sales"}]}`
	status, data := postJSON(t, hs.URL+"/v1/analyze", body, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, data)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Metrics) == 0 {
		t.Fatal("trace=true returned no metrics snapshot")
	}
	var events []json.RawMessage
	if err := json.Unmarshal(resp.TraceEvents, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace=true returned no trace events")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	_, hs := newTestServer(t, nil)
	status, data := postJSON(t, hs.URL+"/v1/analyze", `{"dataset":"nope"}`, nil)
	if status != http.StatusNotFound || errorCode(t, data) != CodeNotFound {
		t.Fatalf("unknown dataset: status %d, body %s", status, data)
	}
	status, data = postJSON(t, hs.URL+"/v1/analyze", `{not json`, nil)
	if status != http.StatusBadRequest || errorCode(t, data) != CodeBadRequest {
		t.Fatalf("bad body: status %d, body %s", status, data)
	}
	status, data = postJSON(t, hs.URL+"/v1/analyze", `{"dataset":"house","measures":[{"agg":"MEDIAN","column":"Sales"}]}`, nil)
	if status != http.StatusBadRequest || errorCode(t, data) != CodeBadRequest {
		t.Fatalf("bad aggregate: status %d, body %s", status, data)
	}
	status, data = postJSON(t, hs.URL+"/v1/analyze", analyzeBody, map[string]string{"X-Deadline-Ms": "soon"})
	if status != http.StatusBadRequest || errorCode(t, data) != CodeBadRequest {
		t.Fatalf("bad deadline header: status %d, body %s", status, data)
	}
}

func TestQuotaOverHTTP(t *testing.T) {
	_, hs := newTestServer(t, func(cfg *Config) {
		cfg.Quota = QuotaConfig{Rate: 0.001, Burst: 2} // two requests, then a long refill
	})
	hdr := map[string]string{"X-Tenant": "acme"}
	for i := 0; i < 2; i++ {
		if status, data := postJSON(t, hs.URL+"/v1/analyze", analyzeBody, hdr); status != http.StatusOK {
			t.Fatalf("burst request %d: status %d, body %s", i, status, data)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/analyze", strings.NewReader(analyzeBody))
	req.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || errorCode(t, data) != CodeQuotaExhausted {
		t.Fatalf("over-quota: status %d, body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	// Another tenant is unaffected.
	if status, data := postJSON(t, hs.URL+"/v1/analyze", analyzeBody, map[string]string{"X-Tenant": "other"}); status != http.StatusOK {
		t.Fatalf("independent tenant: status %d, body %s", status, data)
	}
}

// TestConcurrentTenantsShedTyped hammers the endpoint from several tenants
// with tight quotas: every response must be either a full success or a typed
// shed — never a hang, never an untyped failure.
func TestConcurrentTenantsShedTyped(t *testing.T) {
	_, hs := newTestServer(t, func(cfg *Config) {
		cfg.Quota = QuotaConfig{Rate: 0.001, Burst: 3}
		cfg.Admission = AdmissionConfig{MaxConcurrent: 2, MaxQueue: 4}
	})
	var wg sync.WaitGroup
	type outcome struct {
		status int
		code   ErrorCode
	}
	results := make(chan outcome, 24)
	for _, tenant := range []string{"a", "b", "c"} {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				status, data := postJSON(t, hs.URL+"/v1/analyze", analyzeBody,
					map[string]string{"X-Tenant": tenant})
				o := outcome{status: status}
				if status != http.StatusOK {
					o.code = errorCode(t, data)
				}
				results <- o
			}(tenant)
		}
	}
	wg.Wait()
	close(results)
	var ok, shed int
	for o := range results {
		switch o.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			if o.code != CodeQuotaExhausted {
				t.Fatalf("429 with code %q", o.code)
			}
			shed++
		case http.StatusServiceUnavailable:
			if o.code != CodeQueueFull && o.code != CodeDeadlineUnattainable {
				t.Fatalf("503 with code %q", o.code)
			}
			shed++
		default:
			t.Fatalf("unexpected status %d", o.status)
		}
	}
	if ok == 0 {
		t.Fatal("no request succeeded under load")
	}
	if shed == 0 {
		t.Fatal("no request was shed despite burst 3 per tenant")
	}
	// Each tenant can pass at most its burst through the quota gate.
	if ok > 9 {
		t.Fatalf("%d successes exceed the 3-tenant x burst-3 quota ceiling", ok)
	}
}

func TestJobLifecycleAndRestartRecovery(t *testing.T) {
	state := t.TempDir()
	csv := writeHouseCSV(t)
	mkCfg := func() Config {
		return Config{
			Datasets: []DatasetSpec{{Name: "house", Path: csv}},
			StateDir: state,
			Observer: obs.New(obs.Options{}),
		}
	}
	srv, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())

	status, data := postJSON(t, hs.URL+"/v1/jobs",
		`{"dataset":"house","top_k":5,"checkpoint_every":1,"measures":[{"agg":"SUM","column":"Sales"}]}`,
		map[string]string{"X-Tenant": "acme"})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, data)
	}
	var ack SubmitResponse
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.ID == "" {
		t.Fatal("submit acknowledged without a job id")
	}

	st := waitJobDone(t, hs.URL, ack.ID, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("job finished in state %q (error %q)", st.State, st.Error)
	}
	if len(st.Insights) == 0 || st.InsightsFound == 0 {
		t.Fatal("done job carries no insights")
	}

	// The stream endpoint serves a finished job's final status immediately.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + ack.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stream), "event: done") {
		t.Fatalf("stream of a done job missing done event:\n%s", stream)
	}

	// Restart: a fresh server over the same state directory must load the
	// finished job from its journal with identical results.
	hs.Close()
	srv.Close()
	srv2, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer func() {
		hs2.Close()
		srv2.Close()
	}()
	status, data = getJSON(t, hs2.URL+"/v1/jobs/"+ack.ID)
	if status != http.StatusOK {
		t.Fatalf("job lookup after restart: status %d, body %s", status, data)
	}
	var st2 JobStatus
	if err := json.Unmarshal(data, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.State != JobDone {
		t.Fatalf("restarted server reports state %q, want done", st2.State)
	}
	if string(st2.Insights) != string(st.Insights) {
		t.Fatal("recovered job's insights differ from the original result")
	}
}

func waitJobDone(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		status, data := getJSON(t, base+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("job status: %d, body %s", status, data)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobsDisabledWithoutStateDir(t *testing.T) {
	_, hs := newTestServer(t, nil)
	status, data := postJSON(t, hs.URL+"/v1/jobs", `{"dataset":"house"}`, nil)
	if status != http.StatusServiceUnavailable || errorCode(t, data) != CodeShuttingDown {
		t.Fatalf("jobs without state dir: status %d, body %s", status, data)
	}
}

func TestDatasetsHealthzMetricsz(t *testing.T) {
	_, hs := newTestServer(t, nil)
	status, data := getJSON(t, hs.URL+"/v1/datasets")
	if status != http.StatusOK || !strings.Contains(string(data), `"house"`) {
		t.Fatalf("datasets: status %d, body %s", status, data)
	}
	if status, _ := getJSON(t, hs.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	// Drive one request so serve.* metrics exist, then read them back.
	if status, data := postJSON(t, hs.URL+"/v1/analyze", analyzeBody, nil); status != http.StatusOK {
		t.Fatalf("analyze: status %d, body %s", status, data)
	}
	status, data = getJSON(t, hs.URL+"/metricsz")
	if status != http.StatusOK {
		t.Fatalf("metricsz: status %d", status)
	}
	for _, metric := range []string{"serve.admitted", "serve.analyze.ok"} {
		if !strings.Contains(string(data), metric) {
			t.Fatalf("metricsz missing %q:\n%s", metric, data)
		}
	}
}

// TestDeadlineUnattainableOverHTTP wedges the single execution slot with a
// slow durable job, then sends a deadlined request: the admission controller
// must reject it immediately with the typed unattainable-deadline error.
func TestDeadlineUnattainableOverHTTP(t *testing.T) {
	state := t.TempDir()
	_, hs := newTestServer(t, func(cfg *Config) {
		cfg.StateDir = state
		cfg.Admission = AdmissionConfig{MaxConcurrent: 1, ExpectedServiceTime: time.Hour}
		cfg.UnitDelay = 50 * time.Millisecond
	})
	status, data := postJSON(t, hs.URL+"/v1/jobs",
		`{"dataset":"house","top_k":5,"measures":[{"agg":"SUM","column":"Sales"}]}`, nil)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, data)
	}
	// Wait for the job to occupy the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, hd := getJSON(t, hs.URL+"/healthz")
		var h struct {
			Inflight int `json:"inflight"`
		}
		if err := json.Unmarshal(hd, &h); err != nil {
			t.Fatal(err)
		}
		if h.Inflight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never occupied the execution slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	status, data = postJSON(t, hs.URL+"/v1/analyze", analyzeBody,
		map[string]string{"X-Deadline-Ms": "100"})
	if status != http.StatusServiceUnavailable || errorCode(t, data) != CodeDeadlineUnattainable {
		t.Fatalf("deadlined request under saturation: status %d, body %s", status, data)
	}
}
