package serve

import (
	"fmt"
	"sort"

	"metainsight"
)

// DatasetSpec names one dataset the daemon serves and how to load it.
type DatasetSpec struct {
	// Name is the registry key requests address the dataset by.
	Name string
	// Path is the CSV file to load.
	Path string
	// MaxCardinality drops categorical columns with more distinct values
	// (0 = library default of no cap; the CLI default is 100).
	MaxCardinality int
	// DeriveTemporal, when set, derives Year/Quarter/Month/Weekday columns
	// from this date column before serving.
	DeriveTemporal string
}

// dsEntry is one loaded dataset plus its long-lived session. The session is
// the shared fast path for synchronous requests; durable jobs build their
// own session (same options + durability) per run, sharing the dataset's
// cached index structures.
type dsEntry struct {
	spec DatasetSpec
	ds   *metainsight.Dataset
	sess *metainsight.Session
	opts []metainsight.SessionOption
}

// registry is the daemon's named-session registry. The entry set is fixed
// at startup (and therefore bounded); sessions are closed on server
// shutdown so substrate memory is released deterministically.
type registry struct {
	entries map[string]*dsEntry
	names   []string
}

func newRegistry(specs []DatasetSpec, opts []metainsight.SessionOption) (*registry, error) {
	r := &registry{entries: make(map[string]*dsEntry, len(specs))}
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("serve: dataset with empty name (path %q)", spec.Path)
		}
		if _, dup := r.entries[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate dataset name %q", spec.Name)
		}
		var loadOpts []metainsight.LoadOption
		if spec.MaxCardinality > 0 {
			loadOpts = append(loadOpts, metainsight.WithMaxDimensionCardinality(spec.MaxCardinality))
		}
		ds, err := metainsight.OpenCSV(spec.Path, loadOpts...)
		if err != nil {
			return nil, fmt.Errorf("serve: dataset %q: %w", spec.Name, err)
		}
		if spec.DeriveTemporal != "" {
			if ds, err = metainsight.DeriveTemporal(ds, spec.DeriveTemporal); err != nil {
				return nil, fmt.Errorf("serve: dataset %q: %w", spec.Name, err)
			}
		}
		sess, err := metainsight.NewSession(ds, opts...)
		if err != nil {
			return nil, fmt.Errorf("serve: dataset %q: %w", spec.Name, err)
		}
		r.entries[spec.Name] = &dsEntry{spec: spec, ds: ds, sess: sess, opts: opts}
		r.names = append(r.names, spec.Name)
	}
	sort.Strings(r.names)
	return r, nil
}

func (r *registry) get(name string) (*dsEntry, bool) {
	e, ok := r.entries[name]
	return e, ok
}

// DatasetInfo is the wire form of one registered dataset.
type DatasetInfo struct {
	Name   string      `json:"name"`
	Rows   int         `json:"rows"`
	Cols   int         `json:"cols"`
	Fields []FieldInfo `json:"fields"`
}

// FieldInfo is one column's name and kind.
type FieldInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

func (r *registry) list() []DatasetInfo {
	out := make([]DatasetInfo, 0, len(r.names))
	for _, name := range r.names {
		e := r.entries[name]
		info := DatasetInfo{Name: name, Rows: e.ds.Rows(), Cols: e.ds.Cols()}
		for _, f := range e.ds.Fields() {
			info.Fields = append(info.Fields, FieldInfo{Name: f.Name, Kind: f.Kind.String()})
		}
		out = append(out, info)
	}
	return out
}

func (r *registry) close() {
	for _, e := range r.entries {
		_ = e.sess.Close()
	}
}
