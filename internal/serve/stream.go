package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
)

// streamEvent is one server-sent event: a name and a JSON payload.
type streamEvent struct {
	name string
	data []byte
}

// streamHub fans a job's progressive discoveries out to any number of SSE
// subscribers with per-subscriber backpressure isolation: each subscriber
// owns a bounded event buffer, and a subscriber that stalls (slow client,
// wedged proxy) overflows to *snapshot mode* — its queued backlog is
// discarded and, when it drains again, it receives one consolidated snapshot
// of the current top-k instead of the missed increments. Publishing is
// always non-blocking, so a stalled consumer can never wedge the miner's
// commit path.
type streamHub struct {
	mu    sync.Mutex
	subs  map[*subscriber]struct{}
	done  bool
	final []byte
}

// subscriber is one SSE consumer attached to a hub.
type subscriber struct {
	hub  *streamHub
	ch   chan streamEvent
	kick chan struct{} // cap-1 wake signal for overflow / completion

	// guarded by hub.mu
	overflowed bool
	dropped    int64
}

func newStreamHub() *streamHub {
	return &streamHub{subs: make(map[*subscriber]struct{})}
}

// subscribe attaches a consumer with a buffer of bufN events (minimum 1).
// If the stream already finished, the subscriber still receives the final
// event from serve.
func (h *streamHub) subscribe(bufN int) *subscriber {
	if bufN < 1 {
		bufN = 1
	}
	s := &subscriber{hub: h, ch: make(chan streamEvent, bufN), kick: make(chan struct{}, 1)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

func (h *streamHub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

// publish offers one event to every subscriber without ever blocking: a
// full buffer flips the subscriber into snapshot mode and the event is
// counted as dropped for it.
func (h *streamHub) publish(name string, data []byte) {
	ev := streamEvent{name: name, data: data}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	for s := range h.subs {
		if s.overflowed {
			s.dropped++
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.overflowed = true
			s.dropped++
			select {
			case s.kick <- struct{}{}:
			default:
			}
		}
	}
}

// finish marks the stream complete with a final payload and wakes every
// subscriber. Publishing after finish is a no-op.
func (h *streamHub) finish(final []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	h.done = true
	h.final = final
	for s := range h.subs {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

// serve writes the subscription as an SSE stream until the stream finishes
// or the client context fires. snapshot produces the consolidated catch-up
// payload after an overflow (dropped = events missed since the last write).
// It returns the number of events dropped-to-snapshot over the
// subscription's lifetime.
func (s *subscriber) serve(ctx context.Context, w http.ResponseWriter, snapshot func(dropped int64) []byte) int64 {
	flusher, _ := w.(http.Flusher)
	write := func(ev streamEvent) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	var totalDropped int64
	for {
		// Drain whatever is queued first.
		select {
		case ev := <-s.ch:
			if !write(ev) {
				return totalDropped
			}
			continue
		default:
		}
		// Buffer empty: resolve overflow and completion state.
		s.hub.mu.Lock()
		over, dropped := s.overflowed, s.dropped
		s.overflowed, s.dropped = false, 0
		done, final := s.hub.done, s.hub.final
		s.hub.mu.Unlock()
		if over {
			totalDropped += dropped
			if !write(streamEvent{name: "snapshot", data: snapshot(dropped)}) {
				return totalDropped
			}
			continue
		}
		if done {
			// A publish may have raced the finish; flush it before done.
			select {
			case ev := <-s.ch:
				if !write(ev) {
					return totalDropped
				}
				continue
			default:
			}
			write(streamEvent{name: "done", data: final})
			return totalDropped
		}
		select {
		case ev := <-s.ch:
			if !write(ev) {
				return totalDropped
			}
		case <-s.kick:
		case <-ctx.Done():
			return totalDropped
		}
	}
}
