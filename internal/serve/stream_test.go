package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStreamDeliversInOrderThenDone(t *testing.T) {
	h := newStreamHub()
	sub := h.subscribe(16)
	defer h.unsubscribe(sub)
	h.publish("insight", []byte(`{"seq":1}`))
	h.publish("insight", []byte(`{"seq":2}`))
	h.finish([]byte(`{"state":"done"}`))

	rec := httptest.NewRecorder()
	dropped := sub.serve(context.Background(), rec, func(int64) []byte { return nil })
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	body := rec.Body.String()
	want := "event: insight\ndata: {\"seq\":1}\n\n" +
		"event: insight\ndata: {\"seq\":2}\n\n" +
		"event: done\ndata: {\"state\":\"done\"}\n\n"
	if body != want {
		t.Fatalf("stream body:\n%q\nwant:\n%q", body, want)
	}
}

// TestStreamOverflowDropsToSnapshot verifies the backpressure contract: a
// subscriber whose buffer fills stops receiving increments, and when it
// drains it gets one consolidated snapshot instead — publish never blocks.
func TestStreamOverflowDropsToSnapshot(t *testing.T) {
	h := newStreamHub()
	sub := h.subscribe(2)
	defer h.unsubscribe(sub)
	for i := 1; i <= 5; i++ {
		h.publish("insight", []byte(fmt.Sprintf(`{"seq":%d}`, i))) // 3, 4, 5 overflow
	}
	h.finish([]byte(`{"state":"done"}`))

	rec := httptest.NewRecorder()
	dropped := sub.serve(context.Background(), rec, func(d int64) []byte {
		return []byte(fmt.Sprintf(`{"dropped":%d}`, d))
	})
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	body := rec.Body.String()
	for _, part := range []string{
		`data: {"seq":1}`, `data: {"seq":2}`,
		"event: snapshot\ndata: {\"dropped\":3}",
		"event: done",
	} {
		if !strings.Contains(body, part) {
			t.Fatalf("stream body missing %q:\n%s", part, body)
		}
	}
	if strings.Contains(body, `{"seq":3}`) {
		t.Fatal("overflowed increment was delivered instead of snapshotted")
	}
}

func TestStreamLateSubscriberGetsFinal(t *testing.T) {
	h := newStreamHub()
	h.publish("insight", []byte(`{"seq":1}`))
	h.finish([]byte(`{"state":"done"}`))
	h.publish("insight", []byte(`{"seq":2}`)) // post-finish publish is a no-op

	sub := h.subscribe(4)
	defer h.unsubscribe(sub)
	rec := httptest.NewRecorder()
	sub.serve(context.Background(), rec, func(int64) []byte { return nil })
	body := rec.Body.String()
	if !strings.Contains(body, "event: done\ndata: {\"state\":\"done\"}") {
		t.Fatalf("late subscriber missing final event:\n%s", body)
	}
	if strings.Contains(body, "seq") {
		t.Fatalf("late subscriber received pre-subscription events:\n%s", body)
	}
}

func TestStreamClientCancelUnblocksServe(t *testing.T) {
	h := newStreamHub()
	sub := h.subscribe(4)
	defer h.unsubscribe(sub)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		sub.serve(ctx, httptest.NewRecorder(), func(int64) []byte { return nil })
		close(done)
	}()
	cancel()
	<-done // must return; the test hangs (and times out) otherwise
}
