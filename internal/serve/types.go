package serve

import (
	"fmt"
	"strings"

	"metainsight"
)

// AnalyzeParams is the wire form of one analysis parameterization, shared by
// the synchronous /v1/analyze endpoint and durable job specs. Zero-valued
// fields take the library defaults. Durable jobs deliberately have no
// wall-clock budget field: jobs are bounded by deterministic cost units
// (BudgetCost) so a resumed job is bit-identical to an uninterrupted one;
// synchronous requests bound wall time through the X-Deadline-Ms header,
// which propagates as context cancellation into the miner's commit loop.
type AnalyzeParams struct {
	// Dataset names a registered dataset.
	Dataset string `json:"dataset"`
	// TopK is the ranked suggestion count (default 10).
	TopK int `json:"top_k,omitempty"`
	// Tau is the commonness threshold τ (default 0.5).
	Tau float64 `json:"tau,omitempty"`
	// MaxFilters caps subspace depth (default 3).
	MaxFilters int `json:"max_filters,omitempty"`
	// BudgetCost bounds mining by deterministic engine cost units (0 =
	// unbounded).
	BudgetCost float64 `json:"budget_cost,omitempty"`
	// TopKPruning enables S*-bounded early termination with the given k.
	TopKPruning int `json:"topk_pruning,omitempty"`
	// Measures overrides the mined measure set (default: SUM over every
	// measure column plus COUNT(*)).
	Measures []MeasureSpec `json:"measures,omitempty"`
	// Trace, on the synchronous endpoint, attaches a per-request observer
	// and returns its metrics snapshot and structured trace in the response.
	// Ignored for jobs.
	Trace bool `json:"trace,omitempty"`
}

// MeasureSpec is the wire form of one measure, e.g. {"agg":"SUM","column":"Sales"}.
type MeasureSpec struct {
	Agg    string `json:"agg"`
	Column string `json:"column"`
}

func (m MeasureSpec) toMeasure() (metainsight.Measure, error) {
	switch strings.ToUpper(strings.TrimSpace(m.Agg)) {
	case "SUM":
		return metainsight.Sum(m.Column), nil
	case "COUNT":
		return metainsight.Count(m.Column), nil
	case "AVG":
		return metainsight.Avg(m.Column), nil
	case "MIN":
		return metainsight.Min(m.Column), nil
	case "MAX":
		return metainsight.Max(m.Column), nil
	default:
		return metainsight.Measure{}, fmt.Errorf("unknown aggregate %q (want SUM/COUNT/AVG/MIN/MAX)", m.Agg)
	}
}

// validate performs the cheap wire-level checks; option conflicts beyond
// these surface from the library's typed construction errors.
func (p AnalyzeParams) validate() error {
	if p.Dataset == "" {
		return fmt.Errorf("missing dataset name")
	}
	if p.TopK < 0 || p.MaxFilters < 0 || p.TopKPruning < 0 {
		return fmt.Errorf("top_k, max_filters and topk_pruning must be non-negative")
	}
	if p.BudgetCost < 0 {
		return fmt.Errorf("budget_cost must be non-negative")
	}
	for _, m := range p.Measures {
		if _, err := m.toMeasure(); err != nil {
			return err
		}
	}
	return nil
}

// request lowers the wire params to a library Request. TopK defaults to 10.
func (p AnalyzeParams) request() (metainsight.Request, error) {
	if err := p.validate(); err != nil {
		return metainsight.Request{}, err
	}
	req := metainsight.Request{
		TopK:        p.TopK,
		Tau:         p.Tau,
		MaxFilters:  p.MaxFilters,
		TopKPruning: p.TopKPruning,
	}
	if req.TopK == 0 {
		req.TopK = 10
	}
	if p.BudgetCost > 0 {
		req.Budget = metainsight.Budget{Cost: p.BudgetCost}
	}
	for _, m := range p.Measures {
		mm, err := m.toMeasure()
		if err != nil {
			return metainsight.Request{}, err
		}
		req.Measures = append(req.Measures, mm)
	}
	return req, nil
}

// JobSpec is the durable record of one submitted job — everything needed to
// re-create the identical run after a crash. It is journaled (atomic write +
// rename + directory fsync) to <state>/jobs/<id>/spec.json before the job is
// acknowledged, so an accepted job survives kill -9 of the daemon.
type JobSpec struct {
	ID     string        `json:"id"`
	Tenant string        `json:"tenant"`
	Params AnalyzeParams `json:"params"`
	// CheckpointEvery is the snapshot cadence in unit commits (default 64).
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
	SubmittedUnix   int64 `json:"submitted_unix"`
}

// JobState is the lifecycle of a durable job. queued → running → done |
// failed; a job interrupted by shutdown or crash returns to queued at the
// next startup and resumes from its checkpoint.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)
