package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

// writeRichCSV materializes a 4-dimension, 2-measure fixture dense enough to
// mine hundreds of MetaInsights — the chaos test needs a job long enough to
// kill mid-flight.
func writeRichCSV(t *testing.T, dir string) string {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var b strings.Builder
	b.WriteString("Region,Product,Channel,Quarter,Sales,Units\n")
	for _, r := range []string{"North", "South", "East", "West"} {
		for _, p := range []string{"A", "B", "C", "D", "E"} {
			for _, c := range []string{"Web", "Store", "Partner"} {
				for _, q := range []string{"Q1", "Q2", "Q3", "Q4"} {
					fmt.Fprintf(&b, "%s,%s,%s,%s,%d,%d\n", r, p, c, q, 50+rng.Intn(100), 5+rng.Intn(20))
				}
			}
		}
	}
	path := filepath.Join(dir, "rich.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// daemon is one metainsightd subprocess under test control.
type daemon struct {
	cmd *exec.Cmd
	url string
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "metainsightd")
	out, err := exec.Command("go", "build", "-o", bin, "metainsight/cmd/metainsightd").CombinedOutput()
	if err != nil {
		t.Fatalf("building metainsightd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and parses its "listening on host:port"
// line for the ephemeral address.
func startDaemon(t *testing.T, bin string, args, extraEnv []string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addr := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addr <- rest
				return
			}
		}
		close(addr)
	}()
	select {
	case a, ok := <-addr:
		if !ok {
			_ = cmd.Process.Kill()
			t.Fatal("daemon exited before announcing its address")
		}
		return &daemon{cmd: cmd, url: "http://" + a}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("daemon never announced its address")
		return nil
	}
}

func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d.cmd.Wait()
}

func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatal("daemon did not drain within 30s of SIGTERM")
	}
}

func (d *daemon) getJob(t *testing.T, id string) JobStatus {
	t.Helper()
	status, data := getJSON(t, d.url+"/v1/jobs/"+id)
	if status != http.StatusOK {
		t.Fatalf("job status: %d, body %s", status, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

const chaosJobBody = `{"dataset":"rich","top_k":5,"checkpoint_every":4}`

func submitChaosJob(t *testing.T, d *daemon, tenant string) string {
	t.Helper()
	status, data := postJSON(t, d.url+"/v1/jobs", chaosJobBody, map[string]string{"X-Tenant": tenant})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, data)
	}
	var ack SubmitResponse
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	return ack.ID
}

func waitDaemonJobDone(t *testing.T, d *daemon, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := d.getJob(t, id)
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v", id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// normalizeStats strips the fields a resumed run legitimately differs in:
// resumed_units only exists on the resumed side, checkpoint_writes counts the
// crash-time extra snapshot, cancelled marks the interrupted attempt.
// Everything else must match bit-for-bit.
func normalizeStats(t *testing.T, raw json.RawMessage) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("stats are not an object: %v\n%s", err, raw)
	}
	delete(m, "resumed_units")
	delete(m, "checkpoint_writes")
	delete(m, "cancelled")
	return m
}

// TestServerSmokeKill9 is the chaos acceptance test: concurrent tenants with
// some over quota, a kill -9 of the daemon mid-job, a restart, and the
// requirement that the resumed job's results match an uninterrupted run
// bit-identically.
func TestServerSmokeKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test; skipped in -short")
	}
	bin := buildDaemon(t)
	fixtures := t.TempDir()
	rich := writeRichCSV(t, fixtures)
	house := writeHouseCSV(t)

	dataArgs := []string{"-data", "rich=" + rich, "-data", "house=" + house}

	// Phase 1 — baseline: the same job spec on a pristine state directory,
	// never interrupted.
	baseState := filepath.Join(t.TempDir(), "state")
	base := startDaemon(t, bin, append(dataArgs, "-state", baseState), nil)
	baseID := submitChaosJob(t, base, "jobs")
	baseSt := waitDaemonJobDone(t, base, baseID, 2*time.Minute)
	if baseSt.State != JobDone {
		t.Fatalf("baseline job failed: %q", baseSt.Error)
	}
	if baseSt.InsightsFound < 50 {
		t.Fatalf("baseline mined only %d MetaInsights; fixture too small to kill mid-job", baseSt.InsightsFound)
	}
	base.terminate(t)

	// Phase 2 — chaos: throttled job (5ms per discovery ≈ seconds of
	// runtime), tight quotas, a tenant flooding past its burst, then
	// kill -9 while the job is provably mid-flight.
	chaosState := filepath.Join(t.TempDir(), "state")
	chaos := startDaemon(t, bin,
		append(dataArgs, "-state", chaosState, "-quota-rate", "0.001", "-quota-burst", "3"),
		[]string{"METAINSIGHTD_UNIT_DELAY_MS=5"})
	jobID := submitChaosJob(t, chaos, "jobs")

	// Over-quota flood from a second tenant: burst 3 passes, the rest must
	// shed with the typed 429 — and the admitted ones must complete.
	var okN, shedN int
	for i := 0; i < 6; i++ {
		status, data := postJSON(t, chaos.url+"/v1/analyze",
			`{"dataset":"house","top_k":3,"measures":[{"agg":"SUM","column":"Sales"}]}`,
			map[string]string{"X-Tenant": "flood"})
		switch status {
		case http.StatusOK:
			okN++
		case http.StatusTooManyRequests:
			if code := errorCode(t, data); code != CodeQuotaExhausted {
				t.Fatalf("429 with code %q", code)
			}
			shedN++
		default:
			t.Fatalf("flood request %d: unexpected status %d, body %s", i, status, data)
		}
	}
	if okN == 0 || shedN == 0 {
		t.Fatalf("flood split ok=%d shed=%d; want both outcomes", okN, shedN)
	}

	// Let the job make real, checkpointed progress, then kill the process
	// without any chance to clean up.
	deadline := time.Now().Add(time.Minute)
	for {
		st := chaos.getJob(t, jobID)
		if st.State == JobDone {
			t.Fatal("job finished before the kill; raise the unit delay")
		}
		if st.State == JobRunning && st.InsightsFound >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached kill point (state %q, found %d)", st.State, st.InsightsFound)
		}
		time.Sleep(10 * time.Millisecond)
	}
	chaos.kill9(t)

	// Phase 3 — restart over the same state directory: the journaled spec
	// must be picked up, resumed from its checkpoint, and finish with the
	// baseline's exact results.
	revived := startDaemon(t, bin, append(dataArgs, "-state", chaosState), nil)
	defer revived.terminate(t)
	resSt := waitDaemonJobDone(t, revived, jobID, 2*time.Minute)
	if resSt.State != JobDone {
		t.Fatalf("resumed job failed: %q", resSt.Error)
	}
	if !resSt.Resumed {
		t.Fatal("restarted job did not resume from its checkpoint")
	}
	var stats struct {
		ResumedUnits int64 `json:"resumed_units"`
	}
	if err := json.Unmarshal(resSt.Stats, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ResumedUnits == 0 {
		t.Fatal("resumed job replayed no units — the kill either lost the checkpoint or landed after completion")
	}
	if string(resSt.Insights) != string(baseSt.Insights) {
		t.Fatalf("resumed insights differ from uninterrupted run:\nresumed: %s\nbaseline: %s",
			resSt.Insights, baseSt.Insights)
	}
	got, want := normalizeStats(t, resSt.Stats), normalizeStats(t, baseSt.Stats)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed stats differ from uninterrupted run:\nresumed: %v\nbaseline: %v", got, want)
	}
}
