package serve

import (
	"testing"
	"time"
)

func TestQuotaBurstThenDeny(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1, Burst: 2}, nil)
	clock := time.Unix(1000, 0)
	q.now = func() time.Time { return clock }

	if err := q.Allow("acme"); err != nil {
		t.Fatalf("first request denied: %v", err)
	}
	if err := q.Allow("acme"); err != nil {
		t.Fatalf("second (burst) request denied: %v", err)
	}
	err := q.Allow("acme")
	if err == nil {
		t.Fatal("third request allowed, bucket should be empty")
	}
	if err.Code != CodeQuotaExhausted || err.HTTPStatus() != 429 {
		t.Fatalf("denial = %q/%d, want quota_exhausted/429", err.Code, err.HTTPStatus())
	}
	if err.RetryAfter <= 0 || err.RetryAfter > 1000 {
		t.Fatalf("retry_after_ms = %d, want in (0, 1000]", err.RetryAfter)
	}

	// One second refills one token at rate 1.
	clock = clock.Add(time.Second)
	if err := q.Allow("acme"); err != nil {
		t.Fatalf("request after refill denied: %v", err)
	}
	if err := q.Allow("acme"); err == nil {
		t.Fatal("bucket refilled more than rate*elapsed")
	}
}

func TestQuotaTenantsAreIndependent(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1, Burst: 1}, nil)
	clock := time.Unix(1000, 0)
	q.now = func() time.Time { return clock }

	if err := q.Allow("a"); err != nil {
		t.Fatalf("tenant a: %v", err)
	}
	if err := q.Allow("a"); err == nil {
		t.Fatal("tenant a's second request allowed")
	}
	if err := q.Allow("b"); err != nil {
		t.Fatalf("tenant b must have its own bucket: %v", err)
	}
}

func TestQuotaOverrides(t *testing.T) {
	q := newQuotas(QuotaConfig{
		Rate: 1, Burst: 1,
		Overrides: map[string]TenantQuota{
			"vip":  {Rate: 100, Burst: 100},
			"free": {Rate: 0}, // explicit override to unlimited
		},
	}, nil)
	clock := time.Unix(1000, 0)
	q.now = func() time.Time { return clock }

	for i := 0; i < 50; i++ {
		if err := q.Allow("vip"); err != nil {
			t.Fatalf("vip request %d denied: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := q.Allow("free"); err != nil {
			t.Fatalf("unlimited-override request %d denied: %v", i, err)
		}
	}
	if err := q.Allow("normal"); err != nil {
		t.Fatalf("normal tenant first request: %v", err)
	}
	if err := q.Allow("normal"); err == nil {
		t.Fatal("normal tenant still bound by the default quota")
	}
}

func TestQuotaDisabled(t *testing.T) {
	q := newQuotas(QuotaConfig{}, nil)
	for i := 0; i < 100; i++ {
		if err := q.Allow("anyone"); err != nil {
			t.Fatalf("zero-rate config must be unlimited, denied at %d: %v", i, err)
		}
	}
}
