package serve

import (
	"context"
	"testing"
	"time"
)

func (a *admission) waitQueued(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.mu.Lock()
		q := a.queued
		a.mu.Unlock()
		if q == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, q)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionImmediateGrantAndRelease(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 2}, nil)
	p1, err := a.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	p2, err := a.Acquire(context.Background(), "t2")
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if in, q := a.snapshot(); in != 2 || q != 0 {
		t.Fatalf("snapshot = (%d, %d), want (2, 0)", in, q)
	}
	p1.Release()
	p2.Release()
	if in, _ := a.snapshot(); in != 0 {
		t.Fatalf("inflight after release = %d, want 0", in)
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1}, nil)
	p, err := a.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer p.Release()

	done := make(chan *APIError, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		perm, aerr := a.Acquire(ctx, "t1")
		if perm != nil {
			perm.Release()
		}
		done <- aerr
	}()
	a.waitQueued(t, 1)

	_, aerr := a.Acquire(context.Background(), "t2")
	if aerr == nil {
		t.Fatal("third acquire succeeded, want queue_full shed")
	}
	if aerr.Code != CodeQueueFull {
		t.Fatalf("shed code = %q, want %q", aerr.Code, CodeQueueFull)
	}
	if aerr.HTTPStatus() != 503 {
		t.Fatalf("shed status = %d, want 503", aerr.HTTPStatus())
	}
	cancel()
	<-done
}

func TestAdmissionDeadlineUnattainableShedsImmediately(t *testing.T) {
	// Seed a one-hour service-time estimate: a 50ms-deadline request must be
	// rejected up front, not queued to die.
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, ExpectedServiceTime: time.Hour}, nil)
	p, err := a.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer p.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, aerr := a.Acquire(ctx, "t2")
	if aerr == nil {
		t.Fatal("acquire with hopeless deadline succeeded")
	}
	if aerr.Code != CodeDeadlineUnattainable {
		t.Fatalf("shed code = %q, want %q", aerr.Code, CodeDeadlineUnattainable)
	}
	if aerr.RetryAfter <= 0 {
		t.Fatal("deadline_unattainable shed carries no retry hint")
	}
	// "Immediately" is the contract: the request must not have waited out
	// its deadline in the queue.
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Fatalf("shed took %v; must reject without queuing", waited)
	}
	if _, q := a.snapshot(); q != 0 {
		t.Fatalf("shed request left %d waiters queued", q)
	}
}

func TestAdmissionDeadlineExpiredWhileQueued(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1}, nil)
	p, err := a.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer p.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, aerr := a.Acquire(ctx, "t2")
	if aerr == nil {
		t.Fatal("acquire succeeded past an expired deadline")
	}
	if aerr.Code != CodeDeadlineExpired {
		t.Fatalf("shed code = %q, want %q", aerr.Code, CodeDeadlineExpired)
	}
	if _, q := a.snapshot(); q != 0 {
		t.Fatalf("expired waiter left %d queued", q)
	}
}

// TestAdmissionRoundRobinFairness floods the queue with one tenant and
// verifies a competing tenant's single request is served after at most one of
// the flooder's, not after the whole flood.
func TestAdmissionRoundRobinFairness(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1}, nil)
	holder, err := a.Acquire(context.Background(), "warm")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	order := make(chan string, 8)
	enqueue := func(tenant, label string, depth int) {
		go func() {
			p, aerr := a.Acquire(context.Background(), tenant)
			if aerr != nil {
				t.Errorf("%s: %v", label, aerr)
				order <- "error"
				return
			}
			order <- label
			p.Release()
		}()
		a.waitQueued(t, depth)
	}
	// Arrival order: flood A1..A3, then B's single request.
	enqueue("A", "A1", 1)
	enqueue("A", "A2", 2)
	enqueue("A", "A3", 3)
	enqueue("B", "B1", 4)

	holder.Release()
	var got []string
	for i := 0; i < 4; i++ {
		got = append(got, <-order)
	}
	want := []string{"A1", "B1", "A2", "A3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (round-robin across tenants)", got, want)
		}
	}
}

func TestAdmissionCloseWakesWaiters(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1}, nil)
	p, err := a.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	done := make(chan *APIError, 1)
	go func() {
		_, aerr := a.Acquire(context.Background(), "t2")
		done <- aerr
	}()
	a.waitQueued(t, 1)
	a.Close()
	aerr := <-done
	if aerr == nil || aerr.Code != CodeShuttingDown {
		t.Fatalf("queued waiter got %v, want shutting_down", aerr)
	}
	if _, aerr := a.Acquire(context.Background(), "t3"); aerr == nil || aerr.Code != CodeShuttingDown {
		t.Fatalf("post-close acquire got %v, want shutting_down", aerr)
	}
	p.Release() // in-flight permit stays valid through close
}
