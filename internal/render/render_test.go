package render

import (
	"strings"
	"testing"

	"metainsight/internal/core"
	"metainsight/internal/model"
	"metainsight/internal/pattern"
)

func scope(city string) model.DataScope {
	return model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: city}),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}
}

func TestDescribePatternAllTypes(t *testing.T) {
	cases := []struct {
		dp   core.DataPattern
		want []string
	}{
		{core.DataPattern{Scope: scope("LA"), Type: pattern.OutstandingFirst,
			Highlight: pattern.Highlight{Positions: []string{"Apr"}}},
			[]string{"noticeably higher", "Apr"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.OutstandingLast,
			Highlight: pattern.Highlight{Positions: []string{"Apr"}}},
			[]string{"noticeably lower"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.OutstandingTop2,
			Highlight: pattern.Highlight{Positions: []string{"Apr", "May"}}},
			[]string{"Apr and May", "higher"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.OutstandingLast2,
			Highlight: pattern.Highlight{Positions: []string{"Apr", "May"}}},
			[]string{"Apr and May", "lower"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.Evenness,
			Highlight: pattern.Highlight{Label: "even"}},
			[]string{"relatively even"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.Attribution,
			Highlight: pattern.Highlight{Positions: []string{"Apr"}}},
			[]string{"majority"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.Trend,
			Highlight: pattern.Highlight{Label: "increasing"}},
			[]string{"trending upwards"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.Trend,
			Highlight: pattern.Highlight{Label: "decreasing"}},
			[]string{"trending downwards"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.Outlier,
			Highlight: pattern.Highlight{Positions: []string{"Apr"}, Label: "above"}},
			[]string{"outlier", "above", "Apr"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.Seasonality,
			Highlight: pattern.Highlight{Label: "period=3"}},
			[]string{"repeating", "period=3"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.ChangePoint,
			Highlight: pattern.Highlight{Positions: []string{"Jun"}}},
			[]string{"changed significantly", "Jun"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.Unimodality,
			Highlight: pattern.Highlight{Positions: []string{"Apr"}, Label: "valley"}},
			[]string{"minimum", "Apr"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.Unimodality,
			Highlight: pattern.Highlight{Positions: []string{"Apr"}, Label: "peak"}},
			[]string{"maximum"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.OtherPattern},
			[]string{"different pattern"}},
		{core.DataPattern{Scope: scope("LA"), Type: pattern.NoPattern},
			[]string{"not exhibit any particular pattern"}},
	}
	for _, c := range cases {
		got := DescribePattern(c.dp)
		for _, frag := range c.want {
			if !strings.Contains(got, frag) {
				t.Errorf("%v description %q missing %q", c.dp.Type, got, frag)
			}
		}
		if !strings.Contains(got, "City: LA") {
			t.Errorf("%v description %q missing subspace", c.dp.Type, got)
		}
	}
}

func buildMI(t *testing.T, tau float64) *core.MetaInsight {
	t.Helper()
	dps := []core.DataPattern{}
	for _, city := range []string{"LA", "SF", "SJ", "Oakland", "Sacramento"} {
		dps = append(dps, core.DataPattern{
			Scope: scope(city), Type: pattern.Unimodality,
			Highlight: pattern.Highlight{Positions: []string{"Apr"}, Label: "valley"},
		})
	}
	dps = append(dps, core.DataPattern{
		Scope: scope("San Diego"), Type: pattern.Unimodality,
		Highlight: pattern.Highlight{Positions: []string{"Jul"}, Label: "valley"},
	})
	dps = append(dps, core.DataPattern{Scope: scope("Fresno"), Type: pattern.OtherPattern})
	dps = append(dps, core.DataPattern{Scope: scope("Yuba"), Type: pattern.NoPattern})

	hds := core.SubspaceHDS(scope("LA"), "City", nil)
	for _, dp := range dps {
		hds.Scopes = append(hds.Scopes, dp.Scope)
	}
	params := core.DefaultScoreParams()
	params.Tau = tau
	mi, ok := core.BuildMetaInsight(&core.HDP{HDS: hds, Type: pattern.Unimodality, Patterns: dps}, 1, params)
	if !ok {
		t.Fatal("MetaInsight rejected")
	}
	return mi
}

func TestDescribeMetaInsightNarrative(t *testing.T) {
	got := DescribeMetaInsight(buildMI(t, 0.5))
	for _, frag := range []string{
		"For most Cities",
		"Apr has the lowest SUM(Sales)",
		"(5/8)",
		"except",
		"San Diego, where Month: Jul has the lowest",
		"Fresno, which exhibits a different pattern",
		"Yuba, which does not exhibit any particular pattern",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("narrative %q missing %q", got, frag)
		}
	}
}

func TestDescribeMetaInsightWithoutExceptionsEndsCleanly(t *testing.T) {
	dps := []core.DataPattern{}
	for _, city := range []string{"LA", "SF", "SJ"} {
		dps = append(dps, core.DataPattern{
			Scope: scope(city), Type: pattern.Trend,
			Highlight: pattern.Highlight{Label: "increasing"},
		})
	}
	hds := core.SubspaceHDS(scope("LA"), "City", nil)
	for _, dp := range dps {
		hds.Scopes = append(hds.Scopes, dp.Scope)
	}
	mi, ok := core.BuildMetaInsight(&core.HDP{HDS: hds, Type: pattern.Trend, Patterns: dps}, 1, core.DefaultScoreParams())
	if !ok {
		t.Fatal("rejected")
	}
	got := DescribeMetaInsight(mi)
	if strings.Contains(got, "except") {
		t.Errorf("exception clause without exceptions: %q", got)
	}
	if !strings.HasSuffix(got, ".") {
		t.Errorf("narrative does not end with a period: %q", got)
	}
}

func TestFlatListUnfoldsEveryPattern(t *testing.T) {
	mi := buildMI(t, 0.5)
	flr := FlatList(mi)
	if len(flr) != len(mi.HDP.Patterns) {
		t.Fatalf("FLR has %d lines for %d patterns", len(flr), len(mi.HDP.Patterns))
	}
	joined := strings.Join(flr, "\n")
	for _, city := range []string{"LA", "San Diego", "Fresno", "Yuba"} {
		if !strings.Contains(joined, city) {
			t.Errorf("FLR missing %s", city)
		}
	}
}

func TestPlural(t *testing.T) {
	cases := map[string]string{
		"City":             "Cities",
		"Month":            "Months",
		"Sales":            "Sales",
		"Day":              "Days", // vowel + y
		"I work from home": "\"I work from home\" groups",
	}
	for in, want := range cases {
		if got := plural(in); got != want {
			t.Errorf("plural(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline = %q", s)
	}
	if Sparkline([]float64{5, 5}) != "▁▁" {
		t.Errorf("flat sparkline = %q", Sparkline([]float64{5, 5}))
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
}

func TestDescribeMetaInsightMeasureExtended(t *testing.T) {
	anchor := model.DataScope{Breakdown: "Month", Measure: model.Sum("Sales")}
	hds := core.MeasureHDS(anchor, []model.Measure{model.Sum("Sales"), model.Sum("Units"), model.Count("*")})
	dps := []core.DataPattern{
		{Scope: hds.Scopes[0], Type: pattern.Trend, Highlight: pattern.Highlight{Label: "increasing"}},
		{Scope: hds.Scopes[1], Type: pattern.Trend, Highlight: pattern.Highlight{Label: "increasing"}},
		{Scope: hds.Scopes[2], Type: pattern.NoPattern},
	}
	mi, ok := core.BuildMetaInsight(&core.HDP{HDS: hds, Type: pattern.Trend, Patterns: dps}, 1, core.DefaultScoreParams())
	if !ok {
		t.Fatal("rejected")
	}
	got := DescribeMetaInsight(mi)
	if !strings.Contains(got, "most measures") {
		t.Errorf("measure-extended narrative %q should generalize over measures", got)
	}
	if !strings.Contains(got, "values are trending") {
		t.Errorf("measure-extended commonness should not name one measure: %q", got)
	}
	if !strings.Contains(got, "COUNT(*)") {
		t.Errorf("exception should be named by its measure: %q", got)
	}
}

func TestMarkdownReport(t *testing.T) {
	mi := buildMI(t, 0.5)
	var buf strings.Builder
	err := MarkdownReport(&buf, []*core.MetaInsight{mi}, ReportOptions{
		Title:    "Test report",
		FlatList: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# Test report",
		"## 1. For most Cities",
		"**score**",
		"**commonness 1** (5/8)",
		"**exception** (highlight-change): San Diego",
		"**exception** (type-change): Fresno",
		"**exception** (no-pattern): Yuba",
		"flat-list representation",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}
