package render

import (
	"metainsight/internal/core"
	"metainsight/internal/model"
)

// JSONInsight is the serializable view of a MetaInsight, for exporting mined
// results to downstream tools (dashboards, notebooks, BI integrations).
type JSONInsight struct {
	Key         string  `json:"key"`
	Type        string  `json:"type"`
	Extension   string  `json:"extension"`
	Root        string  `json:"root"`
	Breakdown   string  `json:"breakdown"`
	Measure     string  `json:"measure"`
	Score       float64 `json:"score"`
	Impact      float64 `json:"impact"`
	Conciseness float64 `json:"conciseness"`
	Entropy     float64 `json:"entropy"`
	Description string  `json:"description"`

	Commonnesses []JSONCommonness `json:"commonnesses"`
	Exceptions   []JSONException  `json:"exceptions,omitempty"`
}

// JSONCommonness is one commonness of the insight.
type JSONCommonness struct {
	Highlight string   `json:"highlight"`
	Ratio     float64  `json:"ratio"`
	Members   []string `json:"members"`
}

// JSONException is one exceptional scope with its category.
type JSONException struct {
	Member    string `json:"member"`
	Category  string `json:"category"`
	Type      string `json:"type"`
	Highlight string `json:"highlight,omitempty"`
	Scope     string `json:"scope"`
}

// ToJSON converts a MetaInsight into its serializable view. namer resolves
// custom pattern-type names (nil uses the built-in names).
func ToJSON(mi *core.MetaInsight, namer TypeNamer) JSONInsight {
	h := mi.HDP.HDS
	out := JSONInsight{
		Key:         mi.Key(),
		Type:        nameOf(namer, mi.HDP.Type),
		Extension:   h.Kind.String(),
		Root:        h.RootSubspace().String(),
		Breakdown:   h.Anchor.Breakdown,
		Measure:     h.Anchor.Measure.String(),
		Score:       mi.Score,
		Impact:      mi.ImpactHDS,
		Conciseness: mi.Conciseness,
		Entropy:     mi.Entropy,
		Description: DescribeMetaInsightNamed(mi, namer),
	}
	if h.Kind == model.ExtendMeasure {
		out.Measure = "(all measures)"
	}
	for _, c := range mi.CommSet {
		jc := JSONCommonness{Highlight: c.Highlight.String(), Ratio: c.Ratio}
		for _, idx := range c.Indices {
			jc.Members = append(jc.Members, memberName(h, mi.HDP.Patterns[idx]))
		}
		out.Commonnesses = append(out.Commonnesses, jc)
	}
	for _, e := range mi.Exceptions {
		dp := mi.HDP.Patterns[e.Index]
		je := JSONException{
			Member:   memberName(h, dp),
			Category: e.Category.String(),
			Type:     nameOf(namer, dp.Type),
			Scope:    dp.Scope.String(),
		}
		if dp.Type.Concrete() {
			je.Highlight = dp.Highlight.String()
		}
		out.Exceptions = append(out.Exceptions, je)
	}
	return out
}
