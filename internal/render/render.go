// Package render produces the textual presentation of basic data patterns,
// QuickInsight-style stand-alone insights and MetaInsights, following the
// description conventions of the paper's Appendix 9.1 and the Flat-List
// Representation (FLR) used as the reference in the non-expert user study
// (Section 5.2.1): an FLR unfolds all the data patterns within an HDP and
// presents each separately.
package render

import (
	"fmt"
	"strings"

	"metainsight/internal/core"
	"metainsight/internal/model"
	"metainsight/internal/pattern"
)

// subjectOf renders a data scope's subspace for prose: "{*}" becomes
// "the whole dataset", otherwise the paper's brace notation.
func subjectOf(s model.Subspace) string {
	if s.Len() == 0 {
		return "the whole dataset"
	}
	return s.String()
}

// TypeNamer resolves a pattern type's display name; pattern.Config.TypeName
// supplies one that knows about custom types. A nil namer falls back to
// Type.String.
type TypeNamer func(pattern.Type) string

func nameOf(namer TypeNamer, t pattern.Type) string {
	if namer != nil {
		return namer(t)
	}
	return t.String()
}

// DescribePattern renders one basic data pattern in the style of the
// Appendix 9.1 examples ("For San Diego, April has the minimum Sales.").
func DescribePattern(dp core.DataPattern) string {
	return DescribePatternNamed(dp, nil)
}

// DescribePatternNamed is DescribePattern with a custom-type namer.
func DescribePatternNamed(dp core.DataPattern, namer TypeNamer) string {
	ds := dp.Scope
	subject := subjectOf(ds.Subspace)
	measure := ds.Measure.String()
	breakdown := ds.Breakdown
	h := dp.Highlight
	switch dp.Type {
	case pattern.OutstandingFirst:
		return fmt.Sprintf("For %s, %s: %s has noticeably higher %s across all %s.",
			subject, breakdown, pos(h, 0), measure, plural(breakdown))
	case pattern.OutstandingLast:
		return fmt.Sprintf("For %s, %s: %s has noticeably lower %s across all %s.",
			subject, breakdown, pos(h, 0), measure, plural(breakdown))
	case pattern.OutstandingTop2:
		return fmt.Sprintf("For %s, %s and %s have noticeably higher %s across all %s.",
			subject, pos(h, 0), pos(h, 1), measure, plural(breakdown))
	case pattern.OutstandingLast2:
		return fmt.Sprintf("For %s, %s and %s have noticeably lower %s across all %s.",
			subject, pos(h, 0), pos(h, 1), measure, plural(breakdown))
	case pattern.Evenness:
		return fmt.Sprintf("For %s, the %s of all %s are relatively even.",
			subject, measure, plural(breakdown))
	case pattern.Attribution:
		return fmt.Sprintf("For %s, %s: %s accounts for the majority of %s.",
			subject, breakdown, pos(h, 0), measure)
	case pattern.Trend:
		return fmt.Sprintf("For %s, %s is trending %s over %s.",
			subject, measure, trendWord(h.Label), plural(breakdown))
	case pattern.Outlier:
		return fmt.Sprintf("For %s, %s has outlier(s) %s the baseline at %s: %s.",
			subject, measure, aboveBelow(h.Label), breakdown, strings.Join(h.Positions, ", "))
	case pattern.Seasonality:
		return fmt.Sprintf("For %s, %s shows a repeating pattern over %s (%s).",
			subject, measure, plural(breakdown), h.Label)
	case pattern.ChangePoint:
		return fmt.Sprintf("For %s, %s changed significantly from %s: %s.",
			subject, measure, breakdown, pos(h, 0))
	case pattern.Unimodality:
		extremum := "minimum"
		if h.Label == "peak" {
			extremum = "maximum"
		}
		return fmt.Sprintf("For %s, %s: %s has the %s %s.",
			subject, breakdown, pos(h, 0), extremum, measure)
	case pattern.OtherPattern:
		return fmt.Sprintf("For %s, %s exhibits a different pattern over %s.",
			subject, measure, plural(breakdown))
	case pattern.NoPattern:
		return fmt.Sprintf("For %s, %s does not exhibit any particular pattern over %s.",
			subject, measure, plural(breakdown))
	default:
		// Custom domain-specific types: name plus highlight.
		return fmt.Sprintf("For %s, %s over %s shows %s (%s).",
			subject, measure, plural(breakdown), nameOf(namer, dp.Type), h)
	}
}

func pos(h pattern.Highlight, i int) string {
	if i < len(h.Positions) {
		return h.Positions[i]
	}
	return "?"
}

func plural(word string) string {
	switch {
	case strings.ContainsRune(word, ' '):
		// Phrase-like dimension names (e.g. survey questions) read as
		// quoted group labels rather than pluralized nouns.
		return "\"" + word + "\" groups"
	case strings.HasSuffix(word, "s"):
		return word
	case len(word) > 1 && strings.HasSuffix(word, "y") && !strings.ContainsAny(word[len(word)-2:len(word)-1], "aeiou"):
		return word[:len(word)-1] + "ies"
	default:
		return word + "s"
	}
}

func trendWord(label string) string {
	if label == "decreasing" {
		return "downwards"
	}
	return "upwards"
}

func aboveBelow(label string) string {
	switch label {
	case "below":
		return "below"
	case "mixed":
		return "above and below"
	default:
		return "above"
	}
}

// memberName identifies one pattern of an HDP by what varies across the HDS:
// the sibling value for subspace extension, the measure for measure
// extension, the breakdown for breakdown extension.
func memberName(h core.HDS, dp core.DataPattern) string {
	switch h.Kind {
	case model.ExtendSubspace:
		if v, ok := dp.Scope.Subspace.Get(h.ExtDim); ok {
			return v
		}
		return dp.Scope.Subspace.String()
	case model.ExtendMeasure:
		return dp.Scope.Measure.String()
	case model.ExtendBreakdown:
		return "by " + dp.Scope.Breakdown
	default:
		return dp.Scope.String()
	}
}

// varyingNoun names the population the commonness generalizes over.
func varyingNoun(h core.HDS) string {
	switch h.Kind {
	case model.ExtendSubspace:
		return plural(h.ExtDim)
	case model.ExtendMeasure:
		return "measures"
	case model.ExtendBreakdown:
		return "time granularities"
	default:
		return "scopes"
	}
}

// describeHighlight summarizes a commonness's shared characteristic. For
// measure-extended HDPs the measure varies across the commonness, so the
// phrasing generalizes over measures instead of naming one.
func describeHighlight(t pattern.Type, h pattern.Highlight, anchor model.DataScope, kind model.ExtensionKind, namer TypeNamer) string {
	breakdown := anchor.Breakdown
	if kind == model.ExtendMeasure {
		// The commonness generalizes over measures ("For most measures, …"),
		// so the characteristic is phrased against generic values.
		switch t {
		case pattern.OutstandingFirst:
			return fmt.Sprintf("%s: %s has a noticeably higher value", breakdown, pos(h, 0))
		case pattern.OutstandingLast:
			return fmt.Sprintf("%s: %s has a noticeably lower value", breakdown, pos(h, 0))
		case pattern.OutstandingTop2:
			return fmt.Sprintf("%s and %s have noticeably higher values", pos(h, 0), pos(h, 1))
		case pattern.OutstandingLast2:
			return fmt.Sprintf("%s and %s have noticeably lower values", pos(h, 0), pos(h, 1))
		case pattern.Evenness:
			return fmt.Sprintf("values are distributed evenly across %s", plural(breakdown))
		case pattern.Attribution:
			return fmt.Sprintf("%s: %s accounts for the majority of the total", breakdown, pos(h, 0))
		case pattern.Trend:
			return fmt.Sprintf("values are trending %s over %s", trendWord(h.Label), plural(breakdown))
		case pattern.Outlier:
			return fmt.Sprintf("values have outlier(s) at %s", strings.Join(h.Positions, ", "))
		case pattern.Seasonality:
			return fmt.Sprintf("values repeat over %s (%s)", plural(breakdown), h.Label)
		case pattern.ChangePoint:
			return fmt.Sprintf("values change significantly at %s: %s", breakdown, pos(h, 0))
		case pattern.Unimodality:
			extremum := "lowest"
			if h.Label == "peak" {
				extremum = "highest"
			}
			return fmt.Sprintf("%s: %s has the %s value", breakdown, pos(h, 0), extremum)
		default:
			return fmt.Sprintf("values show %s (%s)", nameOf(namer, t), h)
		}
	}
	measure := anchor.Measure.String()
	switch t {
	case pattern.OutstandingFirst:
		return fmt.Sprintf("%s: %s has noticeably higher %s", breakdown, pos(h, 0), measure)
	case pattern.OutstandingLast:
		return fmt.Sprintf("%s: %s has noticeably lower %s", breakdown, pos(h, 0), measure)
	case pattern.OutstandingTop2:
		return fmt.Sprintf("%s and %s have noticeably higher %s", pos(h, 0), pos(h, 1), measure)
	case pattern.OutstandingLast2:
		return fmt.Sprintf("%s and %s have noticeably lower %s", pos(h, 0), pos(h, 1), measure)
	case pattern.Evenness:
		return fmt.Sprintf("%s is distributed evenly across %s", measure, plural(breakdown))
	case pattern.Attribution:
		return fmt.Sprintf("%s: %s accounts for the majority of %s", breakdown, pos(h, 0), measure)
	case pattern.Trend:
		return fmt.Sprintf("%s is trending %s over %s", measure, trendWord(h.Label), plural(breakdown))
	case pattern.Outlier:
		return fmt.Sprintf("%s has outlier(s) at %s", measure, strings.Join(h.Positions, ", "))
	case pattern.Seasonality:
		return fmt.Sprintf("%s repeats over %s (%s)", measure, plural(breakdown), h.Label)
	case pattern.ChangePoint:
		return fmt.Sprintf("%s changes significantly at %s: %s", measure, breakdown, pos(h, 0))
	case pattern.Unimodality:
		extremum := "lowest"
		if h.Label == "peak" {
			extremum = "highest"
		}
		return fmt.Sprintf("%s: %s has the %s %s", breakdown, pos(h, 0), extremum, measure)
	default:
		return fmt.Sprintf("%s shows %s (%s)", measure, nameOf(namer, t), h)
	}
}

// DescribeMetaInsight renders a MetaInsight in the paper's narrative form:
// "For most Cities in {root}, Month: Apr has the lowest SUM(Sales) (5/8),
// except San Diego, where ... ; Fresno, where Sales are distributed evenly;
// Riverside, where Sales do not exhibit any particular pattern."
func DescribeMetaInsight(mi *core.MetaInsight) string {
	return DescribeMetaInsightNamed(mi, nil)
}

// DescribeMetaInsightNamed is DescribeMetaInsight with a custom-type namer.
func DescribeMetaInsightNamed(mi *core.MetaInsight, namer TypeNamer) string {
	h := mi.HDP.HDS
	anchor := h.Anchor
	var b strings.Builder

	scopeSuffix := ""
	if root := h.RootSubspace(); root.Len() > 0 {
		scopeSuffix = " in " + root.String()
	}

	for ci, c := range mi.CommSet {
		if ci > 0 {
			b.WriteString(" Meanwhile, for ")
		} else {
			qualifier := "most"
			if len(mi.CommSet) > 1 {
				qualifier = "many"
			}
			fmt.Fprintf(&b, "For %s %s%s, ", qualifier, varyingNoun(h), scopeSuffix)
		}
		fmt.Fprintf(&b, "%s (%d/%d)",
			describeHighlight(mi.HDP.Type, c.Highlight, anchor, h.Kind, namer),
			len(c.Indices), len(mi.HDP.Patterns))
		if ci == len(mi.CommSet)-1 && len(mi.Exceptions) == 0 {
			b.WriteString(".")
		}
	}

	if len(mi.Exceptions) > 0 {
		b.WriteString(", except ")
		parts := make([]string, 0, len(mi.Exceptions))
		for _, e := range mi.Exceptions {
			dp := mi.HDP.Patterns[e.Index]
			name := memberName(h, dp)
			switch e.Category {
			case core.HighlightChange:
				parts = append(parts, fmt.Sprintf("%s, where %s",
					name, describeHighlight(mi.HDP.Type, dp.Highlight, dp.Scope, h.Kind, namer)))
			case core.TypeChange:
				parts = append(parts, fmt.Sprintf("%s, which exhibits a different pattern", name))
			case core.NoPatternException:
				parts = append(parts, fmt.Sprintf("%s, which does not exhibit any particular pattern", name))
			}
		}
		b.WriteString(strings.Join(parts, "; "))
		b.WriteString(".")
	}
	return b.String()
}

// FlatList renders the Flat-List Representation of a MetaInsight: every data
// pattern of the HDP presented separately in QuickInsight style. It conveys
// the complete information of the HDP with no conciseness (the user study's
// reference representation).
func FlatList(mi *core.MetaInsight) []string {
	return FlatListNamed(mi, nil)
}

// FlatListNamed is FlatList with a custom-type namer.
func FlatListNamed(mi *core.MetaInsight, namer TypeNamer) []string {
	out := make([]string, 0, len(mi.HDP.Patterns))
	for _, dp := range mi.HDP.Patterns {
		out = append(out, DescribePatternNamed(dp, namer))
	}
	return out
}

// Sparkline renders a series as a compact unicode bar chart for terminal
// display, e.g. "▃▂▁▁▂▅▇█".
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	minV, maxV := values[0], values[0]
	for _, v := range values[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if maxV > minV {
			idx = int((v - minV) / (maxV - minV) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
