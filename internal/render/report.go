package render

import (
	"fmt"
	"io"
	"strings"

	"metainsight/internal/core"
	"metainsight/internal/engine"
)

// ReportOptions configures MarkdownReport.
type ReportOptions struct {
	// Title heads the report; defaults to the dataset name.
	Title string
	// FlatList appends the unfolded FLR under each insight.
	FlatList bool
	// Sparklines draws the commonness's and each exception's raw series
	// (requires Engine).
	Sparklines bool
	// Engine serves the raw distributions for sparklines; nil disables them.
	Engine *engine.Engine
	// Namer resolves custom pattern-type names; nil uses the built-ins.
	Namer TypeNamer
}

// MarkdownReport writes the suggested MetaInsights as a self-contained
// markdown document: one section per insight with its narrative description,
// score breakdown, commonness membership, categorized exceptions and
// (optionally) sparklines of the underlying raw distributions — the
// EDA-report artifact a downstream user hands to a stakeholder.
func MarkdownReport(w io.Writer, mis []*core.MetaInsight, opts ReportOptions) error {
	title := opts.Title
	if title == "" {
		title = "MetaInsight report"
	}
	if _, err := fmt.Fprintf(w, "# %s\n\n%d suggested MetaInsights.\n", title, len(mis)); err != nil {
		return err
	}
	for i, mi := range mis {
		h := mi.HDP.HDS
		fmt.Fprintf(w, "\n## %d. %s\n\n", i+1, DescribeMetaInsightNamed(mi, opts.Namer))
		fmt.Fprintf(w, "- **score** %.3f (conciseness %.3f × impact %.3f)\n",
			mi.Score, mi.Conciseness, clamp01(mi.ImpactHDS))
		fmt.Fprintf(w, "- **structure** %s %s over %s, %d patterns, %d commonness(es), %d exception(s)\n",
			nameOf(opts.Namer, mi.HDP.Type), h.Kind, h.Anchor.Breakdown,
			len(mi.HDP.Patterns), len(mi.CommSet), len(mi.Exceptions))
		for ci, c := range mi.CommSet {
			members := make([]string, 0, len(c.Indices))
			for _, idx := range c.Indices {
				members = append(members, memberName(h, mi.HDP.Patterns[idx]))
			}
			fmt.Fprintf(w, "- **commonness %d** (%d/%d): %s — %s\n",
				ci+1, len(c.Indices), len(mi.HDP.Patterns), c.Highlight, strings.Join(members, ", "))
		}
		for _, e := range mi.Exceptions {
			dp := mi.HDP.Patterns[e.Index]
			fmt.Fprintf(w, "- **exception** (%s): %s\n", e.Category, memberName(h, dp))
		}
		if opts.Sparklines && opts.Engine != nil {
			fmt.Fprintf(w, "\n```\n")
			writeSparklines(w, mi, opts.Engine)
			fmt.Fprintf(w, "```\n")
		}
		if opts.FlatList {
			fmt.Fprintf(w, "\n<details><summary>flat-list representation</summary>\n\n")
			for _, line := range FlatListNamed(mi, opts.Namer) {
				fmt.Fprintf(w, "- %s\n", line)
			}
			fmt.Fprintf(w, "\n</details>\n")
		}
	}
	return nil
}

func writeSparklines(w io.Writer, mi *core.MetaInsight, eng *engine.Engine) {
	h := mi.HDP.HDS
	width := 0
	for _, dp := range mi.HDP.Patterns {
		if n := len(memberName(h, dp)); n > width {
			width = n
		}
	}
	for _, dp := range mi.HDP.Patterns {
		series, err := eng.BasicQuery(dp.Scope)
		if err != nil {
			continue
		}
		marker := " "
		if dp.Type != mi.HDP.Type {
			marker = "*"
		} else if len(mi.CommSet) > 0 && dp.Highlight.Key() != mi.CommSet[0].Highlight.Key() {
			marker = "*"
		}
		fmt.Fprintf(w, "%s %-*s %s\n", marker, width, memberName(h, dp), Sparkline(series.Values))
	}
}

func clamp01(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < 0 {
		return 0
	}
	return x
}
