package stats

import (
	"math"
	"sort"
)

// OLSResult holds an ordinary-least-squares fit y ≈ Intercept + Slope·x.
type OLSResult struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	SlopeT    float64 // t statistic of the slope
	SlopeP    float64 // two-sided p-value of the slope (H0: slope = 0)
	N         int
}

// OLS fits a simple linear regression of y on x. It requires at least three
// points for the slope significance test; with fewer, SlopeP is 1.
func OLS(x, y []float64) OLSResult {
	if len(x) != len(y) {
		panic("stats: OLS length mismatch")
	}
	n := len(x)
	res := OLSResult{N: n, SlopeP: 1}
	if n < 2 {
		res.Slope = math.NaN()
		res.Intercept = Mean(y)
		return res
	}
	mx, my := Mean(x), Mean(y)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		res.Slope = math.NaN()
		res.Intercept = my
		return res
	}
	res.Slope = sxy / sxx
	res.Intercept = my - res.Slope*mx
	if syy == 0 {
		// A perfectly flat series: the fit is exact but the slope is zero,
		// so there is no trend to report.
		res.R2 = 1
		res.SlopeT = 0
		res.SlopeP = 1
		return res
	}
	ssRes := syy - res.Slope*sxy
	if ssRes < 0 {
		ssRes = 0
	}
	res.R2 = 1 - ssRes/syy
	if n > 2 {
		se2 := ssRes / float64(n-2) / sxx
		if se2 <= 0 {
			res.SlopeT = math.Inf(sign(res.Slope))
			res.SlopeP = 0
		} else {
			res.SlopeT = res.Slope / math.Sqrt(se2)
			res.SlopeP = StudentTTwoSidedP(res.SlopeT, float64(n-2))
		}
	}
	return res
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// LinSpace returns [0, 1, ..., n-1] as float64s, the default regressor for
// time-series fits.
func LinSpace(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// MovingAverage returns the centered moving average of xs with the given
// window (forced odd; window 1 returns a copy). Edges use a shrunken window,
// so the result has the same length as the input. This is the
// "non-parametric regression" baseline behind the 3-sigma outlier pattern.
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		out[i] = Mean(xs[lo : hi+1])
	}
	return out
}

// MedianFilter returns the centered running median of xs with the given
// window (forced odd; window 1 returns a copy). Edges use a shrunken window.
// Unlike a moving average, the median baseline is not contaminated by the
// very outliers the 3-sigma rule is trying to detect.
func MedianFilter(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]float64, len(xs))
	buf := make([]float64, 0, window)
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		buf = append(buf[:0], xs[lo:hi+1]...)
		out[i] = Median(buf)
	}
	return out
}

// Median returns the median of xs; it sorts the input in place. NaN for an
// empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// MAD returns the median absolute deviation of xs scaled by 1.4826, the
// robust standard-deviation estimate used by the outlier pattern.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	work := append([]float64(nil), xs...)
	m := Median(work)
	for i, x := range xs {
		work[i] = math.Abs(x - m)
	}
	return 1.4826 * Median(work)
}

// SeasonalStrength measures how much variance a candidate period explains:
// 1 − Var(xs − phase means)/Var(xs), in [0, 1] (clamped). A pure periodic
// signal scores 1; white noise scores near (period−1)/(n−1).
func SeasonalStrength(xs []float64, period int) float64 {
	n := len(xs)
	if period < 2 || period >= n {
		return 0
	}
	total := Variance(xs)
	if total == 0 || math.IsNaN(total) {
		return 0
	}
	phaseSum := make([]float64, period)
	phaseCount := make([]int, period)
	for i, x := range xs {
		phaseSum[i%period] += x
		phaseCount[i%period]++
	}
	resid := make([]float64, n)
	for i, x := range xs {
		resid[i] = x - phaseSum[i%period]/float64(phaseCount[i%period])
	}
	s := 1 - Variance(resid)/total
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Residuals returns xs - fit, element-wise.
func Residuals(xs, fit []float64) []float64 {
	if len(xs) != len(fit) {
		panic("stats: Residuals length mismatch")
	}
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = xs[i] - fit[i]
	}
	return out
}

// ACF returns the sample autocorrelation of xs at lags 1..maxLag.
// Result index 0 corresponds to lag 1. Lags beyond len(xs)-2 are zero.
func ACF(xs []float64, maxLag int) []float64 {
	n := len(xs)
	out := make([]float64, maxLag)
	if n < 2 {
		return out
	}
	m := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		denom += (x - m) * (x - m)
	}
	if denom == 0 {
		return out
	}
	for lag := 1; lag <= maxLag && lag < n; lag++ {
		num := 0.0
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - m) * (xs[i+lag] - m)
		}
		out[lag-1] = num / denom
	}
	return out
}

// OutstandingResult reports the outcome of the outstandingness test used by
// the Outstanding-#1/#Last/Top-2/Last-2 pattern types.
type OutstandingResult struct {
	Significant bool
	PValue      float64
}

// OutstandingTop tests whether the top `lead` values of xs are outstandingly
// larger than the rest, in the spirit of QuickInsights' power-law null
// hypothesis: the non-leading values, ranked descending, are fit with
// value = a + b·log(rank) (a power-law-style decay in rank, fit in value
// space so that negative and shifted series are handled uniformly); the
// residual of the leading value(s) against the extrapolated fit is compared
// to the tail's residual spread, yielding a Gaussian p-value. alpha is the
// significance threshold (e.g. 0.05).
func OutstandingTop(xs []float64, lead int, alpha float64) OutstandingResult {
	n := len(xs)
	if n < lead+3 || lead < 1 {
		return OutstandingResult{Significant: false, PValue: 1}
	}
	order := RankDescending(xs)
	sorted := make([]float64, n)
	for i, idx := range order {
		sorted[i] = xs[idx]
	}
	// Guard against a "leader" that is not actually separated from the tail:
	// the last leader must strictly exceed the first non-leader.
	if sorted[lead-1] <= sorted[lead] {
		return OutstandingResult{Significant: false, PValue: 1}
	}
	// Fit value = a + b·log(rank) on the non-leading tail.
	lx := make([]float64, 0, n-lead)
	ly := make([]float64, 0, n-lead)
	for i := lead; i < n; i++ {
		lx = append(lx, math.Log(float64(i+1)))
		ly = append(ly, sorted[i])
	}
	fit := OLS(lx, ly)
	if math.IsNaN(fit.Slope) {
		return OutstandingResult{Significant: false, PValue: 1}
	}
	resid := make([]float64, len(lx))
	for i := range lx {
		resid[i] = ly[i] - (fit.Intercept + fit.Slope*lx[i])
	}
	sd := StdDev(resid)
	if sd == 0 || math.IsNaN(sd) {
		// A perfectly regular tail: any strict leader separation is
		// infinitely surprising under the null.
		return OutstandingResult{Significant: true, PValue: 0}
	}
	// The leading values must each exceed their extrapolated prediction, and
	// jointly be significant; use the weakest leader's z-score.
	worstZ := math.Inf(1)
	for i := 0; i < lead; i++ {
		pred := fit.Intercept + fit.Slope*math.Log(float64(i+1))
		z := (sorted[i] - pred) / sd
		if z < worstZ {
			worstZ = z
		}
	}
	p := NormalSF(worstZ)
	return OutstandingResult{Significant: p < alpha, PValue: p}
}

// OutstandingBottom tests whether the bottom `lead` values of xs are
// outstandingly smaller than the rest, by negating and re-using
// OutstandingTop.
func OutstandingBottom(xs []float64, lead int, alpha float64) OutstandingResult {
	neg := make([]float64, len(xs))
	for i, x := range xs {
		neg[i] = -x
	}
	return OutstandingTop(neg, lead, alpha)
}

// PearsonResult reports a correlation test between two paired series.
type PearsonResult struct {
	R float64 // Pearson correlation coefficient
	T float64 // t statistic under H0: r = 0
	P float64 // two-sided p-value
	N int
}

// PearsonR computes the Pearson correlation of two equal-length series and
// its significance (t = r·√((n−2)/(1−r²)) against Student's t with n−2
// degrees of freedom). It backs the multi-measure correlation pattern — the
// "scatter plot" analysis class the paper's Section 6 identifies as beyond
// single-measure data scopes.
func PearsonR(x, y []float64) PearsonResult {
	if len(x) != len(y) {
		panic("stats: PearsonR length mismatch")
	}
	n := len(x)
	res := PearsonResult{N: n, P: 1, R: math.NaN()}
	if n < 3 {
		return res
	}
	mx, my := Mean(x), Mean(y)
	sxx, syy, sxy := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return res // a constant series has no defined correlation
	}
	r := sxy / math.Sqrt(sxx*syy)
	res.R = r
	if r >= 1 || r <= -1 {
		res.T = math.Inf(sign(r))
		res.P = 0
		return res
	}
	res.T = r * math.Sqrt(float64(n-2)/(1-r*r))
	res.P = StudentTTwoSidedP(res.T, float64(n-2))
	return res
}
