package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestRegularizedIncompleteBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	approx(t, RegularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-12, "I_0.3(1,1)")
	// I_x(2,2) = 3x² − 2x³.
	approx(t, RegularizedIncompleteBeta(2, 2, 0.4), 3*0.16-2*0.064, 1e-12, "I_0.4(2,2)")
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	approx(t, RegularizedIncompleteBeta(2.5, 1.5, 0.7),
		1-RegularizedIncompleteBeta(1.5, 2.5, 0.3), 1e-12, "beta symmetry")
	// Boundaries.
	if RegularizedIncompleteBeta(3, 4, 0) != 0 || RegularizedIncompleteBeta(3, 4, 1) != 1 {
		t.Error("beta boundary values wrong")
	}
}

func TestRegularizedGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 − e^{−x}.
	approx(t, RegularizedLowerGamma(1, 2), 1-math.Exp(-2), 1e-12, "P(1,2)")
	// P(0.5, x) = erf(√x).
	approx(t, RegularizedLowerGamma(0.5, 1.5), math.Erf(math.Sqrt(1.5)), 1e-10, "P(0.5,1.5)")
	approx(t, RegularizedUpperGamma(3, 5)+RegularizedLowerGamma(3, 5), 1, 1e-12, "P+Q")
}

func TestNormalCDF(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Φ(0)")
	approx(t, NormalCDF(1.959963985), 0.975, 1e-6, "Φ(1.96)")
	approx(t, NormalSF(1.644853627), 0.05, 1e-6, "SF(1.645)")
}

func TestNormalCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 30 || math.Abs(b) > 30 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return NormalCDF(a) <= NormalCDF(b)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTCDF(t *testing.T) {
	// t distribution with df=1 is Cauchy: CDF(1) = 0.75.
	approx(t, StudentTCDF(1, 1), 0.75, 1e-10, "T1(1)")
	approx(t, StudentTCDF(0, 7), 0.5, 1e-12, "T7(0)")
	// Two-sided p at the classic 95% critical value for df=10 (2.228).
	approx(t, StudentTTwoSidedP(2.228138852, 10), 0.05, 1e-6, "p(2.228, df=10)")
	// Large df approaches the normal.
	approx(t, StudentTCDF(1.96, 1e6), NormalCDF(1.96), 1e-4, "T→Φ")
}

func TestChiSquareSF(t *testing.T) {
	// Known critical value: P(χ²₁ ≥ 3.841) ≈ 0.05.
	approx(t, ChiSquareSF(3.841458821, 1), 0.05, 1e-6, "χ²(1) at 3.841")
	// χ²₂ is Exp(1/2): SF(x) = e^{−x/2}.
	approx(t, ChiSquareSF(4, 2), math.Exp(-2), 1e-10, "χ²(2) at 4")
	if ChiSquareSF(-1, 3) != 1 {
		t.Error("SF of negative x must be 1")
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Variance(xs), 32.0/7, 1e-12, "variance")
	minV, minI, maxV, maxI := MinMax(xs)
	if minV != 2 || minI != 0 || maxV != 9 || maxI != 7 {
		t.Errorf("MinMax = %v %d %v %d", minV, minI, maxV, maxI)
	}
	if ArgMax(xs) != 7 || ArgMin(xs) != 0 {
		t.Error("ArgMax/ArgMin wrong")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestRankDescending(t *testing.T) {
	idx := RankDescending([]float64{3, 9, 1, 9})
	// Ties broken by index: both 9s, lower index first.
	want := []int{1, 3, 0, 2}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("RankDescending = %v, want %v", idx, want)
		}
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]float64{5, 5, 5}); cv != 0 {
		t.Errorf("CV of constant = %v", cv)
	}
	if cv := CoefficientOfVariation([]float64{-1, 1, -1, 1}); !math.IsInf(cv, 1) {
		t.Errorf("CV with zero mean = %v", cv)
	}
}

func TestNormalizeAndEntropy(t *testing.T) {
	p := Normalize([]float64{1, 1, 2})
	approx(t, Sum(p), 1, 1e-12, "normalize sum")
	approx(t, Entropy([]float64{0.5, 0.5}), 1, 1e-12, "entropy of fair coin")
	approx(t, Entropy([]float64{1, 0}), 0, 1e-12, "entropy of point mass")
	u := Normalize([]float64{0, 0})
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Errorf("Normalize of zeros = %v", u)
	}
}

func TestEntropyBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			raw[i] = math.Abs(raw[i])
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return true
			}
		}
		p := Normalize(raw)
		h := Entropy(p)
		return h >= -1e-12 && h <= math.Log2(float64(len(p)))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	approx(t, KLDivergence(p, p, 1e-9), 0, 1e-9, "KL(p,p)")
	// KL is non-negative for random smoothed distributions.
	f := func(a, b []float64) bool {
		if len(a) < 2 {
			return true
		}
		if len(b) < len(a) {
			return true
		}
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
		}
		return KLDivergence(a, b[:len(a)], 1e-6) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if SymmetricKL([]float64{1, 0}, []float64{0, 1}, 1e-6) <= 0 {
		t.Error("symmetric KL of disjoint masses must be positive")
	}
}

func TestOLSExactLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit := OLS(x, y)
	approx(t, fit.Slope, 2, 1e-12, "slope")
	approx(t, fit.Intercept, 1, 1e-12, "intercept")
	approx(t, fit.R2, 1, 1e-12, "R2")
	if fit.SlopeP > 1e-9 {
		t.Errorf("perfect line p-value = %v", fit.SlopeP)
	}
}

func TestOLSNoise(t *testing.T) {
	// Pure noise around a constant: slope insignificant.
	y := []float64{5, 4.8, 5.3, 4.9, 5.1, 5.2, 4.7, 5.05}
	fit := OLS(LinSpace(len(y)), y)
	if fit.SlopeP < 0.05 {
		t.Errorf("noise fit significant: p=%v slope=%v", fit.SlopeP, fit.Slope)
	}
	flat := OLS(LinSpace(4), []float64{2, 2, 2, 2})
	if flat.Slope != 0 || flat.SlopeP != 1 {
		t.Errorf("flat series: slope=%v p=%v", flat.Slope, flat.SlopeP)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ma := MovingAverage(xs, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		approx(t, ma[i], want[i], 1e-12, "ma")
	}
	// Window 1 is the identity.
	id := MovingAverage(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Fatal("window-1 moving average must be identity")
		}
	}
}

func TestACFPeriodicSignal(t *testing.T) {
	xs := make([]float64, 24)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 6)
	}
	acf := ACF(xs, 12)
	// The biased sample ACF attenuates by (n−lag)/n = 18/24, so the peak at
	// the true period sits near 0.75 rather than 1.
	if acf[5] < 0.7 { // lag 6
		t.Errorf("ACF at true period = %v", acf[5])
	}
	if acf[2] > 0 { // lag 3 is anti-phase
		t.Errorf("ACF at half period = %v", acf[2])
	}
}

func TestWelchTTest(t *testing.T) {
	a := []float64{5.1, 5.3, 4.9, 5.2, 5.0, 5.15}
	b := []float64{6.9, 7.2, 7.0, 7.1, 6.8, 7.05}
	res := WelchTTest(a, b)
	if res.P > 1e-6 {
		t.Errorf("clearly separated samples: p = %v", res.P)
	}
	same := WelchTTest(a, a)
	if same.T != 0 || same.P < 0.99 {
		t.Errorf("identical samples: t=%v p=%v", same.T, same.P)
	}
	if WelchTTest([]float64{1}, b).P != 1 {
		t.Error("undersized sample should return p=1")
	}
}

func TestOutstandingTop(t *testing.T) {
	// One dominant value over a smooth tail.
	xs := []float64{100, 20, 18, 16, 15, 14, 13, 12}
	if res := OutstandingTop(xs, 1, 0.05); !res.Significant {
		t.Errorf("dominant leader not significant: p=%v", res.PValue)
	}
	// Smooth power-law-ish series with no leader.
	smooth := []float64{20, 19, 18, 17, 16, 15, 14, 13}
	if res := OutstandingTop(smooth, 1, 0.05); res.Significant {
		t.Errorf("smooth series reported outstanding: p=%v", res.PValue)
	}
	// Two dominant values.
	xs2 := []float64{100, 95, 20, 18, 16, 15, 14, 13}
	if res := OutstandingTop(xs2, 2, 0.05); !res.Significant {
		t.Errorf("top-two not significant: p=%v", res.PValue)
	}
	// lead-th value tied with the tail cannot be outstanding.
	tied := []float64{50, 20, 20, 20, 20, 20, 20}
	if res := OutstandingTop(tied, 2, 0.05); res.Significant {
		t.Error("tied second value reported outstanding")
	}
}

func TestOutstandingBottom(t *testing.T) {
	xs := []float64{20, 19, 18, 17, 16, 15, 14, 0.5}
	if res := OutstandingBottom(xs, 1, 0.05); !res.Significant {
		t.Errorf("dominant-low not significant: p=%v", res.PValue)
	}
	if res := OutstandingBottom(xs[:4], 1, 0.05); res.Significant {
		t.Error("too-short series must not be significant")
	}
}

func TestOutstandingHandlesNegativeValues(t *testing.T) {
	xs := []float64{50, -3, -4, -5, -6, -7, -8}
	res := OutstandingTop(xs, 1, 0.05)
	if !res.Significant {
		t.Errorf("negative-tail leader not significant: p=%v", res.PValue)
	}
}

func TestMedianFilter(t *testing.T) {
	xs := []float64{1, 100, 2, 3, 2, 2}
	mf := MedianFilter(xs, 3)
	// The spike at index 1 is removed from the baseline.
	if mf[1] != 2 {
		t.Errorf("MedianFilter[1] = %v, want 2", mf[1])
	}
	// Edges use shrunken windows.
	if mf[0] != (1+100)/2.0 {
		t.Errorf("MedianFilter[0] = %v", mf[0])
	}
	// Window 1 is the identity and must not alias the input.
	id := MedianFilter(xs, 1)
	id[0] = -1
	if xs[0] == -1 {
		t.Error("MedianFilter aliases its input")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
}

func TestMAD(t *testing.T) {
	// Constant series: MAD 0 regardless of one outlier's pull on the mean.
	if m := MAD([]float64{5, 5, 5, 5, 5}); m != 0 {
		t.Errorf("constant MAD = %v", m)
	}
	// For a standard normal sample the 1.4826 scaling approximates sigma;
	// check a symmetric triangular case exactly: deviations {2,1,0,1,2},
	// median deviation 1.
	got := MAD([]float64{1, 2, 3, 4, 5})
	if math.Abs(got-1.4826) > 1e-12 {
		t.Errorf("MAD = %v, want 1.4826", got)
	}
	// Robustness: one huge outlier barely moves it.
	if m := MAD([]float64{1, 2, 3, 4, 1e9}); m > 3 {
		t.Errorf("MAD not robust: %v", m)
	}
}

func TestSeasonalStrength(t *testing.T) {
	periodic := make([]float64, 24)
	for i := range periodic {
		periodic[i] = []float64{10, 50, 90, 50}[i%4]
	}
	if s := SeasonalStrength(periodic, 4); s < 0.99 {
		t.Errorf("pure periodic strength = %v", s)
	}
	if s := SeasonalStrength(periodic, 5); s > 0.6 {
		t.Errorf("wrong-period strength = %v", s)
	}
	flat := make([]float64, 12)
	if s := SeasonalStrength(flat, 4); s != 0 {
		t.Errorf("constant series strength = %v", s)
	}
	if s := SeasonalStrength(periodic, 1); s != 0 {
		t.Error("period < 2 must score 0")
	}
	if s := SeasonalStrength(periodic, 24); s != 0 {
		t.Error("period ≥ n must score 0")
	}
}

func TestPearsonR(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 4, 6, 8, 10, 12}
	res := PearsonR(x, y)
	approx(t, res.R, 1, 1e-12, "perfect positive r")
	if res.P > 1e-9 {
		t.Errorf("perfect correlation p = %v", res.P)
	}
	neg := PearsonR(x, []float64{12, 10, 8, 6, 4, 2})
	approx(t, neg.R, -1, 1e-12, "perfect negative r")
	noise := PearsonR(x, []float64{5, 1, 4, 2, 5, 3})
	if noise.P < 0.05 {
		t.Errorf("noise correlation significant: r=%v p=%v", noise.R, noise.P)
	}
	if !math.IsNaN(PearsonR(x, []float64{3, 3, 3, 3, 3, 3}).R) {
		t.Error("constant series must yield NaN correlation")
	}
	if PearsonR([]float64{1, 2}, []float64{1, 2}).P != 1 {
		t.Error("undersized series should be insignificant")
	}
}
