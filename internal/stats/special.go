// Package stats is the statistics substrate for MetaInsight's pattern
// evaluators and evaluation harness. It implements, from the standard
// library only: special functions (regularized incomplete beta and gamma),
// distribution tails (normal, Student t, chi-square), ordinary least squares,
// non-parametric smoothing, autocorrelation, entropy and KL divergence, and
// Welch's t-test (used by the user-study analysis, Section 5.2.2).
package stats

import (
	"math"
)

const (
	maxIterations = 300
	epsilon       = 3e-14
	fpmin         = 1e-300
)

// RegularizedIncompleteBeta computes I_x(a, b), the regularized incomplete
// beta function, via the continued-fraction expansion (Numerical Recipes
// §6.4). It panics if a or b is not positive; x outside [0,1] is clamped.
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	if a <= 0 || b <= 0 {
		panic("stats: RegularizedIncompleteBeta requires a > 0 and b > 0")
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(a, b, x) / a
	}
	return 1 - front*betaContinuedFraction(b, a, 1-x)/b
}

// betaContinuedFraction evaluates the continued fraction for the incomplete
// beta function by the modified Lentz method.
func betaContinuedFraction(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIterations; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			break
		}
	}
	return h
}

// RegularizedLowerGamma computes P(a, x) = γ(a, x)/Γ(a), the regularized
// lower incomplete gamma function, using the series expansion for x < a+1
// and the continued fraction otherwise.
func RegularizedLowerGamma(a, x float64) float64 {
	if a <= 0 {
		panic("stats: RegularizedLowerGamma requires a > 0")
	}
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// RegularizedUpperGamma computes Q(a, x) = 1 - P(a, x).
func RegularizedUpperGamma(a, x float64) float64 {
	return 1 - RegularizedLowerGamma(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < maxIterations; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsilon {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIterations; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-lg)
}

// NormalCDF returns P(Z ≤ z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalSF returns the standard normal survival function P(Z > z).
func NormalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// StudentTCDF returns P(T ≤ t) for Student's t distribution with df degrees
// of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		panic("stats: StudentTCDF requires df > 0")
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegularizedIncompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTTwoSidedP returns the two-sided p-value P(|T| ≥ |t|) for Student's
// t distribution with df degrees of freedom.
func StudentTTwoSidedP(t, df float64) float64 {
	if math.IsNaN(t) {
		return 1
	}
	x := df / (df + t*t)
	return RegularizedIncompleteBeta(df/2, 0.5, x)
}

// ChiSquareSF returns the survival function P(X ≥ x) for a chi-square
// distribution with df degrees of freedom.
func ChiSquareSF(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return RegularizedUpperGamma(df/2, x/2)
}
