package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs; NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs; NaN if len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the minimum and maximum of xs along with their indices.
// For an empty slice it returns NaNs and -1 indices.
func MinMax(xs []float64) (minVal float64, minIdx int, maxVal float64, maxIdx int) {
	if len(xs) == 0 {
		return math.NaN(), -1, math.NaN(), -1
	}
	minVal, maxVal = xs[0], xs[0]
	for i, x := range xs[1:] {
		if x < minVal {
			minVal, minIdx = x, i+1
		}
		if x > maxVal {
			maxVal, maxIdx = x, i+1
		}
	}
	return minVal, minIdx, maxVal, maxIdx
}

// ArgMax returns the index of the maximum of xs, or -1 for an empty slice.
func ArgMax(xs []float64) int {
	_, _, _, i := MinMax(xs)
	return i
}

// ArgMin returns the index of the minimum of xs, or -1 for an empty slice.
func ArgMin(xs []float64) int {
	_, i, _, _ := MinMax(xs)
	return i
}

// RankDescending returns the indices of xs sorted by value in descending
// order (ties broken by index for determinism).
func RankDescending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

// CoefficientOfVariation returns StdDev/|Mean|; +Inf when the mean is zero
// and the values vary, 0 when all values are zero.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if m == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// Normalize scales xs so it sums to 1, returning a fresh slice. If the sum is
// zero (or the slice is empty) it returns a uniform distribution.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	total := Sum(xs)
	if total == 0 {
		if len(xs) == 0 {
			return out
		}
		u := 1 / float64(len(xs))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i, x := range xs {
		out[i] = x / total
	}
	return out
}

// Entropy returns the Shannon entropy (base 2) of a probability vector.
// Zero entries contribute zero; the vector is not re-normalized.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log2(pi)
		}
	}
	return h
}

// KLDivergence returns the Kullback-Leibler divergence D(p‖q) in bits, with
// additive smoothing eps applied to both distributions so that zero entries
// in q do not produce infinities (i³'s KL-based similarity needs this; the
// paper notes i³'s "failure of applying KL-distance to negative values" —
// negative inputs are clamped to zero before smoothing).
func KLDivergence(p, q []float64, eps float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	ps := smoothed(p, eps)
	qs := smoothed(q, eps)
	d := 0.0
	for i := range ps {
		d += ps[i] * math.Log2(ps[i]/qs[i])
	}
	return d
}

// SymmetricKL returns D(p‖q) + D(q‖p), the symmetrized KL distance used by
// the i³ baseline to compare raw data distributions.
func SymmetricKL(p, q []float64, eps float64) float64 {
	return KLDivergence(p, q, eps) + KLDivergence(q, p, eps)
}

func smoothed(p []float64, eps float64) []float64 {
	out := make([]float64, len(p))
	scale := 0.0
	for _, v := range p {
		if v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	total := 0.0
	for i, v := range p {
		if v < 0 {
			v = 0
		}
		// Pre-scaling by the maximum keeps the running total finite even
		// for inputs near the float64 range limit.
		out[i] = v/scale + eps
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// WelchTTestResult reports the outcome of a two-sample Welch t-test.
type WelchTTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs a two-sample t-test with unequal variances. It is used
// to reproduce the paper's exception/Q2 correlation test (p = 0.018).
func WelchTTest(a, b []float64) WelchTTestResult {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return WelchTTestResult{T: math.NaN(), DF: math.NaN(), P: 1}
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	se2 := va/na + vb/nb
	if se2 == 0 {
		if ma == mb {
			return WelchTTestResult{T: 0, DF: na + nb - 2, P: 1}
		}
		return WelchTTestResult{T: math.Inf(1), DF: na + nb - 2, P: 0}
	}
	t := (ma - mb) / math.Sqrt(se2)
	df := se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	return WelchTTestResult{T: t, DF: df, P: StudentTTwoSidedP(t, df)}
}
