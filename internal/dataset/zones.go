package dataset

// Zone maps: per-block min/max dictionary codes of a dimension column, the
// classic small-materialized-aggregate trick. A filtered scan consults them
// to skip whole blocks whose code range excludes the filter value — on
// clustered data (sorted tables, cross-product generators) most blocks hold
// a narrow code range and a selective filter eliminates nearly all of them
// without touching a single row. Like posting lists, zone maps are built
// lazily in one O(rows) pass and cached on the immutable column; the block
// size is supplied by the caller (the engine passes its morsel size so each
// surviving block is exactly one morsel of the scan pipeline).

// ZoneMap holds the per-block [min, max] dictionary-code ranges of one
// dimension column at one block size. It is immutable after construction.
type ZoneMap struct {
	blockRows int
	mins      []int32
	maxs      []int32
}

// BlockRows returns the block size in rows the map was built at.
func (z *ZoneMap) BlockRows() int { return z.blockRows }

// Blocks returns the number of blocks covered.
func (z *ZoneMap) Blocks() int { return len(z.mins) }

// Min returns the smallest dictionary code occurring in block b.
func (z *ZoneMap) Min(b int) int32 { return z.mins[b] }

// Max returns the largest dictionary code occurring in block b.
func (z *ZoneMap) Max(b int) int32 { return z.maxs[b] }

// Contains reports whether code can occur in block b — false means the
// block is provably free of the code and a scan may skip it wholesale.
// Out-of-range blocks contain nothing.
func (z *ZoneMap) Contains(b int, code int32) bool {
	if b < 0 || b >= len(z.mins) {
		return false
	}
	return code >= z.mins[b] && code <= z.maxs[b]
}

// Zones returns the column's zone map at the given block size, building it
// on first use and caching it per size. blockRows must be positive.
func (c *DimColumn) Zones(blockRows int) *ZoneMap {
	if blockRows <= 0 {
		blockRows = 1
	}
	c.zoneMu.Lock()
	defer c.zoneMu.Unlock()
	if z, ok := c.zones[blockRows]; ok {
		return z
	}
	nb := (len(c.codes) + blockRows - 1) / blockRows
	// Block-aligned shard view: every view block is exactly one parent block
	// (the last one may be the parent's final short block), so the map is a
	// sub-slice of the parent's — one shared O(rows) pass serves all shards.
	if c.parent != nil && c.base%blockRows == 0 &&
		((c.base+len(c.codes))%blockRows == 0 || c.base+len(c.codes) == len(c.parent.codes)) {
		pz := c.parent.Zones(blockRows)
		b0 := c.base / blockRows
		z := &ZoneMap{blockRows: blockRows, mins: pz.mins[b0 : b0+nb], maxs: pz.maxs[b0 : b0+nb]}
		if c.zones == nil {
			c.zones = make(map[int]*ZoneMap)
		}
		c.zones[blockRows] = z
		return z
	}
	z := &ZoneMap{
		blockRows: blockRows,
		mins:      make([]int32, nb),
		maxs:      make([]int32, nb),
	}
	for b := 0; b < nb; b++ {
		lo := b * blockRows
		hi := lo + blockRows
		if hi > len(c.codes) {
			hi = len(c.codes)
		}
		mn, mx := c.codes[lo], c.codes[lo]
		for _, code := range c.codes[lo+1 : hi] {
			if code < mn {
				mn = code
			}
			if code > mx {
				mx = code
			}
		}
		z.mins[b], z.maxs[b] = mn, mx
	}
	if c.zones == nil {
		c.zones = make(map[int]*ZoneMap)
	}
	c.zones[blockRows] = z
	return z
}
