package dataset

import (
	"fmt"
	"reflect"
	"testing"

	"metainsight/internal/model"
)

// shardTestTable builds a deterministic table with clustered and scattered
// dimensions so zone maps and posting lists both have structure to verify.
func shardTestTable(rows int) *Table {
	b := NewBuilder("shardtest", []model.Field{
		{Name: "Clustered", Kind: model.KindCategorical},
		{Name: "Scattered", Kind: model.KindCategorical},
		{Name: "M", Kind: model.KindMeasure},
	})
	for i := 0; i < rows; i++ {
		b.AddRow([]string{
			fmt.Sprintf("c%02d", i/16),     // runs of 16 identical codes
			fmt.Sprintf("s%02d", (i*7)%13), // scattered
		}, []float64{float64(i) * 0.5})
	}
	return b.Build()
}

// rebuiltSlice builds a fresh table over parent rows [lo, hi) the slow way,
// as the ground truth shard views must match.
func rebuiltSlice(t *Table, lo, hi int) *Table {
	b := NewBuilder("rebuilt", t.Fields())
	for i := lo; i < hi; i++ {
		dims := make([]string, len(t.dims))
		for d, c := range t.dims {
			dims[d] = c.Value(int(c.CodeAt(i)))
		}
		meas := make([]float64, len(t.measures))
		for m, c := range t.measures {
			meas[m] = c.At(i)
		}
		b.AddRow(dims, meas)
	}
	return b.Build()
}

func TestShardViewPostingsMatchRebuilt(t *testing.T) {
	tab := shardTestTable(200)
	for _, r := range [][2]int{{0, 64}, {64, 128}, {128, 200}, {32, 96}, {0, 200}} {
		view := tab.ShardView(r[0], r[1])
		if view.Rows() != r[1]-r[0] {
			t.Fatalf("view[%d:%d) rows = %d", r[0], r[1], view.Rows())
		}
		ref := rebuiltSlice(tab, r[0], r[1])
		for _, name := range []string{"Clustered", "Scattered"} {
			vc, rc := view.Dimension(name), ref.Dimension(name)
			// The view keeps the full parent domain; the rebuilt table only
			// sees values present in the range. Compare per value.
			for code, val := range vc.Domain() {
				got := vc.Postings(code)
				want := rc.Postings(rc.Code(val))
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("view[%d:%d) %s=%q postings = %v, want %v", r[0], r[1], name, val, got, want)
				}
			}
		}
	}
}

func TestShardViewZoneMaps(t *testing.T) {
	tab := shardTestTable(200)
	col := tab.Dimension("Clustered")
	parentZ := col.Zones(16)

	// Block-aligned view: zone vectors must be exact sub-slices of the parent.
	view := tab.ShardView(32, 96)
	vz := view.Dimension("Clustered").Zones(16)
	if vz.Blocks() != 4 {
		t.Fatalf("aligned view blocks = %d, want 4", vz.Blocks())
	}
	for b := 0; b < 4; b++ {
		if vz.Min(b) != parentZ.Min(2+b) || vz.Max(b) != parentZ.Max(2+b) {
			t.Fatalf("aligned view block %d = [%d,%d], parent block %d = [%d,%d]",
				b, vz.Min(b), vz.Max(b), 2+b, parentZ.Min(2+b), parentZ.Max(2+b))
		}
	}

	// View ending at the table's final (short) block stays aligned.
	tail := tab.ShardView(192, 200)
	tz := tail.Dimension("Clustered").Zones(16)
	if tz.Blocks() != 1 || tz.Min(0) != parentZ.Min(12) || tz.Max(0) != parentZ.Max(12) {
		t.Fatalf("tail view zones = %d blocks [%d,%d]", tz.Blocks(), tz.Min(0), tz.Max(0))
	}

	// Unaligned view: generic build, still exact per view block.
	odd := tab.ShardView(8, 72)
	oz := odd.Dimension("Clustered").Zones(16)
	ref := rebuiltSlice(tab, 8, 72).Dimension("Clustered")
	refZ := ref.Zones(16)
	if oz.Blocks() != refZ.Blocks() {
		t.Fatalf("unaligned blocks = %d, want %d", oz.Blocks(), refZ.Blocks())
	}
	for b := 0; b < oz.Blocks(); b++ {
		// Codes are shared with the parent dictionary, and the rebuilt
		// table re-dictionarizes; compare through values instead.
		gotMin, gotMax := odd.Dimension("Clustered").Value(int(oz.Min(b))), odd.Dimension("Clustered").Value(int(oz.Max(b)))
		wantMin, wantMax := ref.Value(int(refZ.Min(b))), ref.Value(int(refZ.Max(b)))
		if gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("unaligned block %d = [%s,%s], want [%s,%s]", b, gotMin, gotMax, wantMin, wantMax)
		}
	}
}

func TestShardViewSharesStorage(t *testing.T) {
	tab := shardTestTable(100)
	view := tab.ShardView(20, 80)
	if &view.Dimension("Clustered").Codes()[0] != &tab.Dimension("Clustered").Codes()[20] {
		t.Fatal("view codes are not a slice of the parent's")
	}
	if &view.MeasureColumn("M").Values()[0] != &tab.MeasureColumn("M").Values()[20] {
		t.Fatal("view measures are not a slice of the parent's")
	}
	// A view of a view chains to the root so indexes stay shared.
	inner := view.ShardView(10, 40)
	if inner.Dimension("Clustered").parent != tab.Dimension("Clustered") {
		t.Fatal("nested view does not chain to the root column")
	}
	if got := inner.Dimension("Clustered").base; got != 30 {
		t.Fatalf("nested view base = %d, want 30", got)
	}
}
