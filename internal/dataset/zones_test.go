package dataset

import (
	"fmt"
	"math/rand"
	"testing"

	"metainsight/internal/model"
)

// zoneTestTable builds a table whose single dimension takes random codes, for
// checking zone maps against a naive per-block reduction.
func zoneTestTable(seed int64, rows int) *Table {
	b := NewBuilder("zones", []model.Field{
		{Name: "D", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		b.AddRow([]string{fmt.Sprintf("d%02d", r.Intn(17))}, []float64{float64(i)})
	}
	return b.Build()
}

// TestZoneMapMatchesNaive checks per-block min/max against direct reduction
// at several block sizes, including ones that do not divide the row count.
func TestZoneMapMatchesNaive(t *testing.T) {
	tab := zoneTestTable(1, 517)
	col := tab.Dimension("D")
	codes := col.Codes()
	for _, blockRows := range []int{1, 7, 64, 517, 1000} {
		z := col.Zones(blockRows)
		if z.BlockRows() != blockRows {
			t.Fatalf("blockRows %d: map reports %d", blockRows, z.BlockRows())
		}
		wantBlocks := (len(codes) + blockRows - 1) / blockRows
		if z.Blocks() != wantBlocks {
			t.Fatalf("blockRows %d: %d blocks, want %d", blockRows, z.Blocks(), wantBlocks)
		}
		for b := 0; b < z.Blocks(); b++ {
			lo := b * blockRows
			hi := lo + blockRows
			if hi > len(codes) {
				hi = len(codes)
			}
			mn, mx := codes[lo], codes[lo]
			for _, c := range codes[lo:hi] {
				if c < mn {
					mn = c
				}
				if c > mx {
					mx = c
				}
			}
			if z.Min(b) != mn || z.Max(b) != mx {
				t.Fatalf("blockRows %d block %d: [%d,%d], want [%d,%d]",
					blockRows, b, z.Min(b), z.Max(b), mn, mx)
			}
			for _, code := range []int32{mn - 1, mn, mx, mx + 1} {
				want := code >= mn && code <= mx
				if got := z.Contains(b, code); got != want {
					t.Fatalf("blockRows %d block %d Contains(%d)=%v, want %v",
						blockRows, b, code, got, want)
				}
			}
		}
		if z.Contains(-1, 0) || z.Contains(z.Blocks(), 0) {
			t.Fatal("out-of-range block must contain nothing")
		}
	}
}

// TestZoneMapCached checks that zone maps are built once per block size and
// shared across callers.
func TestZoneMapCached(t *testing.T) {
	col := zoneTestTable(2, 100).Dimension("D")
	if col.Zones(16) != col.Zones(16) {
		t.Fatal("same block size returned distinct zone maps")
	}
	if col.Zones(16) == col.Zones(32) {
		t.Fatal("distinct block sizes share a zone map")
	}
}

// TestPostingsBoundsBeforeBuild is the regression test for the lazy-build
// ordering bug: an out-of-range code (such as the -1 of an absent filter
// value) must answer nil from the dictionary bounds alone, without paying
// the O(rows) posting-list materialization.
func TestPostingsBoundsBeforeBuild(t *testing.T) {
	col := zoneTestTable(3, 200).Dimension("D")
	if got := col.Postings(-1); got != nil {
		t.Fatalf("Postings(-1) = %v, want nil", got)
	}
	if got := col.Postings(col.Cardinality()); got != nil {
		t.Fatalf("Postings(card) = %v, want nil", got)
	}
	if col.post != nil {
		t.Fatal("out-of-range lookups materialized the posting lists")
	}
	rows := col.Postings(0)
	if len(rows) == 0 {
		t.Fatal("valid code returned no rows")
	}
	if col.post == nil {
		t.Fatal("valid lookup did not build the posting lists")
	}
}
