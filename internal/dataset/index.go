package dataset

// Posting lists: for each (dimension, value) pair, the sorted row ids holding
// that value. Filtered group-by scans iterate the most selective filter's
// posting list instead of the whole table, the classic inverted-index
// optimization of columnar engines. Lists are built lazily per dimension and
// cached on the column; Table is immutable after Build, so the build is
// idempotent and race-free under sync.Once.

import (
	"sort"
	"sync"
)

// postings holds the per-value row lists of one dimension column.
type postings struct {
	once sync.Once
	rows [][]int32 // code -> sorted row ids
}

// Postings returns the row ids holding the given dictionary code, in
// ascending order. The first call per column materializes the lists in one
// O(rows) pass. The bounds check runs against the dictionary first, so an
// out-of-range code (e.g. the -1 of an absent filter value) never triggers
// the build.
func (c *DimColumn) Postings(code int) []int32 {
	if code < 0 || code >= len(c.dict) {
		return nil
	}
	c.index2().once.Do(c.buildPostings)
	return c.post.rows[code]
}

// index2 lazily allocates the postings holder (kept separate so DimColumn's
// zero value stays cheap for columns never used as filters).
func (c *DimColumn) index2() *postings {
	c.postOnce.Do(func() { c.post = &postings{} })
	return c.post
}

func (c *DimColumn) buildPostings() {
	if c.parent != nil {
		// Shard view: derive the lists from the parent's instead of a fresh
		// counting pass. Each parent list is sorted, so the view's portion is
		// one contiguous run found by binary search; rebasing to shard-local
		// row ids is the only per-row work, and only for rows in the range.
		c.post.rows = c.parent.sliceRows(int32(c.base), int32(c.base+len(c.codes)))
		return
	}
	counts := make([]int32, len(c.dict))
	for _, code := range c.codes {
		counts[code]++
	}
	rows := make([][]int32, len(c.dict))
	for v := range rows {
		rows[v] = make([]int32, 0, counts[v])
	}
	for r, code := range c.codes {
		rows[code] = append(rows[code], int32(r))
	}
	c.post.rows = rows
}

// PostingsBitmap returns the compressed bitmap posting set of the given
// dictionary code, or nil for an out-of-range code (e.g. the -1 of an absent
// filter value). The first call per column materializes the bitmaps for every
// code in one O(rows) pass over the dictionary codes — row ids arrive in
// ascending order per code by construction, which is exactly the builder's
// input contract. Shard views build from their own code subslice, so no
// parent posting lists are forced into existence.
func (c *DimColumn) PostingsBitmap(code int) *Bitmap {
	if code < 0 || code >= len(c.dict) {
		return nil
	}
	c.bmOnce.Do(c.buildBitmapPostings)
	return c.bmPost[code]
}

func (c *DimColumn) buildBitmapPostings() {
	builders := make([]*bitmapBuilder, len(c.dict))
	for i := range builders {
		builders[i] = newBitmapBuilder()
	}
	for r, code := range c.codes {
		builders[code].Add(int32(r))
	}
	bms := make([]*Bitmap, len(builders))
	for i, bb := range builders {
		bms[i] = bb.Finish()
	}
	c.bmPost = bms
}

// BitmapPostingsStats builds the column's bitmap postings if needed and
// reports their aggregate container composition and byte footprint.
func (c *DimColumn) BitmapPostingsStats() BitmapStats {
	c.bmOnce.Do(c.buildBitmapPostings)
	var s BitmapStats
	for _, bm := range c.bmPost {
		s.Add(bm.Stats())
	}
	return s
}

// sliceRows returns, for every dictionary code, the parent rows in [lo, hi)
// rebased to start at zero. It builds the parent's own postings on first use,
// so all shard views of one table share a single O(rows) counting pass.
func (c *DimColumn) sliceRows(lo, hi int32) [][]int32 {
	c.index2().once.Do(c.buildPostings)
	out := make([][]int32, len(c.dict))
	for code, rows := range c.post.rows {
		i := sort.Search(len(rows), func(k int) bool { return rows[k] >= lo })
		j := sort.Search(len(rows), func(k int) bool { return rows[k] >= hi })
		if i == j {
			continue
		}
		seg := make([]int32, j-i)
		for k, r := range rows[i:j] {
			seg[k] = r - lo
		}
		out[code] = seg
	}
	return out
}
