package dataset

// Roaring-style compressed posting lists. A Bitmap stores a set of int32 row
// ids partitioned into 65536-row chunks keyed by the high 16 bits; each chunk
// holds one of three container representations chosen by serialized size:
//
//   - array:  sorted []uint16 of the low 16 bits (2 bytes/row) — sparse chunks
//   - bitmap: 1024×uint64 bitset (8192 bytes flat) — dense chunks
//   - run:    []uint16 pairs of (start, length-1) (4 bytes/run) — clustered
//     chunks, the common shape of cell-ordered synthetic and time-sorted data
//
// Intersections run directly on the compressed containers — word-wise AND for
// bitmap×bitmap, membership probes for array×bitmap, interval merges for run
// containers — and only the final result is materialized to an ascending
// []int32 drive list, so the morsel scan machinery consumes bitmap-planned
// row sets unchanged. Chunks are 8× the default morsel size, so materialized
// ids stay morsel-aligned by construction.

import "math/bits"

const (
	chunkBits   = 16
	chunkSize   = 1 << chunkBits // row ids per chunk
	bitmapWords = chunkSize / 64 // words of a bitmap container

	// arrayMaxCard is the cardinality at which an array container (2
	// bytes/value) reaches the flat bitmap container size (8192 bytes).
	arrayMaxCard = chunkSize / 16
)

// Container kinds, in tie-break preference order: when two representations
// serialize to the same size the smaller kind value wins, so container choice
// is a pure function of the value set.
const (
	ctArray uint8 = iota
	ctRun
	ctBitmap
)

// container is one chunk of a Bitmap. Exactly one payload slice is non-nil,
// selected by kind.
type container struct {
	kind  uint8
	card  int32
	arr   []uint16 // ctArray: sorted low-16 values
	runs  []uint16 // ctRun: (start, length-1) pairs, sorted by start
	words []uint64 // ctBitmap: chunkSize-bit set
}

// Bitmap is a compressed set of int32 row ids. It is immutable after build
// and safe for concurrent readers.
type Bitmap struct {
	keys []uint16 // ascending chunk keys (row id >> 16)
	ctrs []container
	card int
}

// Cardinality returns the number of row ids in the set.
func (b *Bitmap) Cardinality() int {
	if b == nil {
		return 0
	}
	return b.card
}

// bitmapBuilder assembles a Bitmap from strictly ascending row ids, the order
// posting lists are produced in. Runs accumulate naturally; each finished
// chunk picks the smallest of the three representations.
type bitmapBuilder struct {
	bm       Bitmap
	curKey   int32 // current chunk key, -1 before the first Add
	runs     []uint16
	runStart int32 // current run bounds within the chunk, low 16 bits
	runEnd   int32
	card     int32
}

func newBitmapBuilder() *bitmapBuilder {
	return &bitmapBuilder{curKey: -1}
}

// Add appends one row id; ids must arrive in strictly ascending order.
func (bb *bitmapBuilder) Add(row int32) {
	key := row >> chunkBits
	low := row & (chunkSize - 1)
	if key != bb.curKey {
		bb.flush()
		bb.curKey = key
		bb.runStart, bb.runEnd = low, low
		bb.card = 1
		return
	}
	if low == bb.runEnd+1 {
		bb.runEnd = low
	} else {
		bb.runs = append(bb.runs, uint16(bb.runStart), uint16(bb.runEnd-bb.runStart))
		bb.runStart, bb.runEnd = low, low
	}
	bb.card++
}

// flush finalizes the current chunk, if any.
func (bb *bitmapBuilder) flush() {
	if bb.curKey < 0 {
		return
	}
	runs := append(bb.runs, uint16(bb.runStart), uint16(bb.runEnd-bb.runStart))
	bb.bm.keys = append(bb.bm.keys, uint16(bb.curKey))
	bb.bm.ctrs = append(bb.bm.ctrs, makeContainer(runs, bb.card))
	bb.bm.card += int(bb.card)
	bb.runs = bb.runs[:0]
	bb.curKey = -1
	bb.card = 0
}

// Finish returns the built Bitmap. The builder must not be reused.
func (bb *bitmapBuilder) Finish() *Bitmap {
	bb.flush()
	bm := bb.bm
	return &bm
}

// NewBitmapFromSorted builds a Bitmap from an ascending, duplicate-free list
// of row ids. It never retains rows.
func NewBitmapFromSorted(rows []int32) *Bitmap {
	bb := newBitmapBuilder()
	for _, r := range rows {
		bb.Add(r)
	}
	return bb.Finish()
}

// makeContainer picks the smallest representation for a chunk given its run
// decomposition (pairs of start, length-1) and cardinality. Size ties break
// by kind order (array, then run, then bitmap), so the choice is
// deterministic for a given value set.
func makeContainer(runs []uint16, card int32) container {
	arraySize := 2 * int(card)
	runSize := 2 * len(runs) // 4 bytes per (start, len) pair
	if arraySize <= runSize && int(card) <= arrayMaxCard {
		arr := make([]uint16, 0, card)
		for i := 0; i < len(runs); i += 2 {
			start, n := int32(runs[i]), int32(runs[i+1])
			for v := start; v <= start+n; v++ {
				arr = append(arr, uint16(v))
			}
		}
		return container{kind: ctArray, card: card, arr: arr}
	}
	if runSize < 8*bitmapWords {
		return container{kind: ctRun, card: card, runs: append([]uint16(nil), runs...)}
	}
	words := make([]uint64, bitmapWords)
	for i := 0; i < len(runs); i += 2 {
		start, n := int32(runs[i]), int32(runs[i+1])
		setRange(words, start, start+n)
	}
	return container{kind: ctBitmap, card: card, words: words}
}

// setRange sets bits [lo, hi] (inclusive) in a bitmap container word array.
func setRange(words []uint64, lo, hi int32) {
	wl, wh := lo>>6, hi>>6
	first := ^uint64(0) << uint(lo&63)
	last := ^uint64(0) >> uint(63-hi&63)
	if wl == wh {
		words[wl] |= first & last
		return
	}
	words[wl] |= first
	for w := wl + 1; w < wh; w++ {
		words[w] = ^uint64(0)
	}
	words[wh] |= last
}

// normalize re-picks the smallest representation for a freshly intersected
// container. Intersection kernels produce arrays or bitmaps; dense or
// clustered results shrink back to the compact form here so chained ANDs and
// retained results stay small.
func (c container) normalize() container {
	if c.kind == ctBitmap && int(c.card) <= arrayMaxCard {
		arr := make([]uint16, 0, c.card)
		for w, word := range c.words {
			for word != 0 {
				arr = append(arr, uint16(w<<6+bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
		return container{kind: ctArray, card: c.card, arr: arr}
	}
	return c
}

// appendRows appends the container's row ids, offset by base (chunk key <<
// 16), to dst in ascending order.
func (c *container) appendRows(dst []int32, base int32) []int32 {
	switch c.kind {
	case ctArray:
		for _, v := range c.arr {
			dst = append(dst, base|int32(v))
		}
	case ctRun:
		for i := 0; i < len(c.runs); i += 2 {
			start, n := int32(c.runs[i]), int32(c.runs[i+1])
			for v := start; v <= start+n; v++ {
				dst = append(dst, base|v)
			}
		}
	case ctBitmap:
		for w, word := range c.words {
			for word != 0 {
				dst = append(dst, base|int32(w<<6+bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
	}
	return dst
}

// ToArray materializes the set as ascending row ids appended to dst.
func (b *Bitmap) ToArray(dst []int32) []int32 {
	if b == nil {
		return dst
	}
	if cap(dst)-len(dst) < b.card {
		grown := make([]int32, len(dst), len(dst)+b.card)
		copy(grown, dst)
		dst = grown
	}
	for i := range b.ctrs {
		dst = b.ctrs[i].appendRows(dst, int32(b.keys[i])<<chunkBits)
	}
	return dst
}

// And intersects two bitmaps into a fresh Bitmap; neither input is mutated.
func And(a, b *Bitmap) *Bitmap {
	if a == nil || b == nil || a.card == 0 || b.card == 0 {
		return &Bitmap{}
	}
	out := &Bitmap{}
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		ka, kb := a.keys[i], b.keys[j]
		switch {
		case ka < kb:
			i++
		case ka > kb:
			j++
		default:
			c := andContainers(&a.ctrs[i], &b.ctrs[j])
			if c.card > 0 {
				out.keys = append(out.keys, ka)
				out.ctrs = append(out.ctrs, c.normalize())
				out.card += int(c.card)
			}
			i++
			j++
		}
	}
	return out
}

// AndAll intersects any number of bitmaps, smallest cardinality first so
// every pairwise step shrinks the candidate set as fast as possible. The
// order is stable for equal cardinalities, so the result — and any cost
// metered off it — is deterministic. Returns nil when bms is empty.
func AndAll(bms ...*Bitmap) *Bitmap {
	switch len(bms) {
	case 0:
		return nil
	case 1:
		return bms[0]
	}
	ordered := make([]*Bitmap, len(bms))
	copy(ordered, bms)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Cardinality() < ordered[j-1].Cardinality(); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	out := And(ordered[0], ordered[1])
	for i := 2; i < len(ordered) && out.card > 0; i++ {
		out = And(out, ordered[i])
	}
	return out
}

// andContainers dispatches the fused per-pair AND kernels. It never mutates
// its inputs.
func andContainers(a, b *container) container {
	// Order by kind so each pair is handled once.
	if a.kind > b.kind {
		a, b = b, a
	}
	switch {
	case a.kind == ctArray && b.kind == ctArray:
		return andArrayArray(a, b)
	case a.kind == ctArray && b.kind == ctRun:
		return andArrayRun(a, b)
	case a.kind == ctArray && b.kind == ctBitmap:
		return andArrayBitmap(a, b)
	case a.kind == ctRun && b.kind == ctRun:
		return andRunRun(a, b)
	case a.kind == ctRun && b.kind == ctBitmap:
		return andRunBitmap(a, b)
	default:
		return andBitmapBitmap(a, b)
	}
}

// andArrayArray merges two sorted arrays, galloping when one side is much
// longer (the same crossover the sorted-slice path uses).
func andArrayArray(a, b *container) container {
	x, y := a.arr, b.arr
	if len(x) > len(y) {
		x, y = y, x
	}
	out := make([]uint16, 0, len(x))
	if len(y) >= gallopRatio*len(x) {
		lo := 0
		for _, v := range x {
			step := 1
			hi := lo
			for hi < len(y) && y[hi] < v {
				lo = hi + 1
				hi += step
				step <<= 1
			}
			if hi > len(y) {
				hi = len(y)
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if y[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo >= len(y) {
				break
			}
			if y[lo] == v {
				out = append(out, v)
				lo++
			}
		}
	} else {
		i, j := 0, 0
		for i < len(x) && j < len(y) {
			xv, yv := x[i], y[j]
			switch {
			case xv < yv:
				i++
			case xv > yv:
				j++
			default:
				out = append(out, xv)
				i++
				j++
			}
		}
	}
	return container{kind: ctArray, card: int32(len(out)), arr: out}
}

// andArrayBitmap probes each array value against the bitmap words — one
// masked load per value.
func andArrayBitmap(a, b *container) container {
	out := make([]uint16, 0, len(a.arr))
	for _, v := range a.arr {
		if b.words[v>>6]&(1<<(v&63)) != 0 {
			out = append(out, v)
		}
	}
	return container{kind: ctArray, card: int32(len(out)), arr: out}
}

// andArrayRun keeps the array values covered by a run, advancing both sorted
// sequences in one pass.
func andArrayRun(a, b *container) container {
	out := make([]uint16, 0, len(a.arr))
	r := 0
	for _, v := range a.arr {
		for r < len(b.runs) && int32(b.runs[r])+int32(b.runs[r+1]) < int32(v) {
			r += 2
		}
		if r >= len(b.runs) {
			break
		}
		if b.runs[r] <= v {
			out = append(out, v)
		}
	}
	return container{kind: ctArray, card: int32(len(out)), arr: out}
}

// andRunRun intersects two sorted interval lists into a run container.
func andRunRun(a, b *container) container {
	var runs []uint16
	var card int32
	i, j := 0, 0
	for i < len(a.runs) && j < len(b.runs) {
		as, ae := int32(a.runs[i]), int32(a.runs[i])+int32(a.runs[i+1])
		bs, be := int32(b.runs[j]), int32(b.runs[j])+int32(b.runs[j+1])
		lo, hi := as, ae
		if bs > lo {
			lo = bs
		}
		if be < hi {
			hi = be
		}
		if lo <= hi {
			runs = append(runs, uint16(lo), uint16(hi-lo))
			card += hi - lo + 1
		}
		if ae < be {
			i += 2
		} else {
			j += 2
		}
	}
	return makeContainer(runs, card)
}

// andRunBitmap masks the bitmap words covered by each run into a fresh
// bitmap container; normalize() shrinks sparse results afterwards.
func andRunBitmap(a, b *container) container {
	words := make([]uint64, bitmapWords)
	var card int32
	for i := 0; i < len(a.runs); i += 2 {
		lo := int32(a.runs[i])
		hi := lo + int32(a.runs[i+1])
		wl, wh := lo>>6, hi>>6
		for w := wl; w <= wh; w++ {
			mask := ^uint64(0)
			if w == wl {
				mask &= ^uint64(0) << uint(lo&63)
			}
			if w == wh {
				mask &= ^uint64(0) >> uint(63-hi&63)
			}
			word := b.words[w] & mask
			words[w] |= word
			card += int32(bits.OnesCount64(word))
		}
	}
	return container{kind: ctBitmap, card: card, words: words}
}

// andBitmapBitmap is the word-wise kernel: 1024 uint64 ANDs with an inline
// popcount.
func andBitmapBitmap(a, b *container) container {
	words := make([]uint64, bitmapWords)
	var card int32
	for w := range words {
		v := a.words[w] & b.words[w]
		words[w] = v
		card += int32(bits.OnesCount64(v))
	}
	return container{kind: ctBitmap, card: card, words: words}
}

// BitmapStats summarizes a Bitmap's storage by container type. Compressed
// bytes count the container payloads plus a 6-byte per-container header
// (chunk key, kind, cardinality), mirroring the roaring serialized format
// closely enough to stand in for an on-disk footprint.
type BitmapStats struct {
	Containers       int
	ArrayContainers  int
	RunContainers    int
	BitmapContainers int
	CompressedBytes  int64
	Cardinality      int64
}

// Add accumulates other into s, so per-column stats roll up to a table view.
func (s *BitmapStats) Add(other BitmapStats) {
	s.Containers += other.Containers
	s.ArrayContainers += other.ArrayContainers
	s.RunContainers += other.RunContainers
	s.BitmapContainers += other.BitmapContainers
	s.CompressedBytes += other.CompressedBytes
	s.Cardinality += other.Cardinality
}

// UncompressedBytes is the sorted-slice footprint of the same row set: four
// bytes per row id.
func (s BitmapStats) UncompressedBytes() int64 { return 4 * s.Cardinality }

// CompressionRatio is uncompressed ÷ compressed bytes (higher is better);
// zero when nothing is stored.
func (s BitmapStats) CompressionRatio() float64 {
	if s.CompressedBytes == 0 {
		return 0
	}
	return float64(s.UncompressedBytes()) / float64(s.CompressedBytes)
}

// Stats reports the bitmap's container composition and byte footprint.
func (b *Bitmap) Stats() BitmapStats {
	if b == nil {
		return BitmapStats{}
	}
	s := BitmapStats{Containers: len(b.ctrs), Cardinality: int64(b.card)}
	for i := range b.ctrs {
		c := &b.ctrs[i]
		s.CompressedBytes += 6
		switch c.kind {
		case ctArray:
			s.ArrayContainers++
			s.CompressedBytes += 2 * int64(len(c.arr))
		case ctRun:
			s.RunContainers++
			s.CompressedBytes += 2 * int64(len(c.runs))
		case ctBitmap:
			s.BitmapContainers++
			s.CompressedBytes += 8 * bitmapWords
		}
	}
	return s
}

// andUnits estimates the work units one AND against this bitmap costs when
// it is the smaller operand: array values are probed individually, run pairs
// are merged, bitmap containers cost their full word count. Pure in the
// container composition, so planner costs stay deterministic.
func (b *Bitmap) andUnits() float64 {
	if b == nil {
		return 0
	}
	units := 0.0
	for i := range b.ctrs {
		c := &b.ctrs[i]
		switch c.kind {
		case ctArray:
			units += float64(len(c.arr))
		case ctRun:
			units += float64(len(c.runs))
		case ctBitmap:
			units += bitmapWords
		}
	}
	return units
}

// BitmapAndCost estimates the work AndAll(bms...) spends, in units comparable
// to IntersectCost's comparison counts: each pairwise AND costs roughly the
// smaller operand's container work, and the final materialization touches at
// most the smallest cardinality. A pure function of container composition so
// plans — and metered costs — stay deterministic.
func BitmapAndCost(bms ...*Bitmap) float64 {
	switch len(bms) {
	case 0, 1:
		return 0
	}
	minUnits, minCard := bms[0].andUnits(), bms[0].Cardinality()
	for _, bm := range bms[1:] {
		if u := bm.andUnits(); u < minUnits {
			minUnits = u
		}
		if c := bm.Cardinality(); c < minCard {
			minCard = c
		}
	}
	return minUnits*float64(len(bms)-1) + float64(minCard)
}
