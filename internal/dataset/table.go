// Package dataset implements the columnar storage substrate MetaInsight mines
// over. A Table holds dictionary-encoded dimension columns and float64
// measure columns; it is immutable once built, which lets the query engine
// scan it from many goroutines without locking.
package dataset

import (
	"fmt"
	"sort"
	"sync"

	"metainsight/internal/model"
)

// DimColumn is a dictionary-encoded dimension column. Values are stored as
// indices into the dictionary; the dictionary is ordered (temporally for
// temporal dimensions, lexically for categorical ones) so group-by results
// come out in a stable, meaningful order.
type DimColumn struct {
	Name  string
	Kind  model.FieldKind
	dict  []string       // code -> value, in domain order
	index map[string]int // value -> code
	codes []int32        // row -> code

	postOnce sync.Once
	post     *postings // lazily built inverted index (see index.go)

	bmOnce sync.Once
	bmPost []*Bitmap // code -> compressed posting set (see bitmap.go)

	zoneMu sync.Mutex
	zones  map[int]*ZoneMap // block size -> lazily built zone map (see zones.go)

	// Shard views (see shardview.go): non-nil parent marks this column as a
	// row-range view of parent covering parent rows [base, base+len(codes)).
	// Views share the parent's dictionary and derive postings and zone maps
	// from the parent's instead of rebuilding them per shard.
	parent *DimColumn
	base   int
}

// Cardinality returns the number of distinct values in the column's domain.
func (c *DimColumn) Cardinality() int { return len(c.dict) }

// Domain returns the column's distinct values in domain order. The returned
// slice is shared; callers must not modify it.
func (c *DimColumn) Domain() []string { return c.dict }

// Code returns the dictionary code for value, or -1 if the value does not
// occur in the column.
func (c *DimColumn) Code(value string) int {
	if i, ok := c.index[value]; ok {
		return i
	}
	return -1
}

// Value returns the dictionary value for code.
func (c *DimColumn) Value(code int) string { return c.dict[code] }

// CodeAt returns the dictionary code of the value at row i.
func (c *DimColumn) CodeAt(i int) int32 { return c.codes[i] }

// Codes returns the column's per-row dictionary codes. The returned slice is
// shared with the column; callers must not modify it. Vectorized scan kernels
// use it to read codes in tight loops without a per-row method call.
func (c *DimColumn) Codes() []int32 { return c.codes }

// MeasureColumn is a plain float64 measure column.
type MeasureColumn struct {
	Name string
	vals []float64
}

// At returns the value at row i.
func (c *MeasureColumn) At(i int) float64 { return c.vals[i] }

// Values returns the column's per-row values. The returned slice is shared
// with the column; callers must not modify it. Vectorized scan kernels use it
// to read values in tight loops without a per-row method call.
func (c *MeasureColumn) Values() []float64 { return c.vals }

// Table is an immutable columnar multi-dimensional dataset D = ⟨Dim, M⟩.
type Table struct {
	name     string
	rows     int
	fields   []model.Field
	dims     []*DimColumn
	measures []*MeasureColumn
	dimIdx   map[string]int
	measIdx  map[string]int
	load     LoadStats
}

// LoadStats reports what ingestion kept and dropped for tables built by
// FromRecords/LoadCSV (the ingestion counters are zero for tables assembled
// directly via Builder), plus the compressed posting-index footprint, which
// is built on first request and so is populated for every table.
func (t *Table) LoadStats() LoadStats {
	ls := t.load
	ls.Postings = t.PostingsStats()
	return ls
}

// PostingsStats builds the bitmap posting indexes of every dimension column
// (an idempotent one-off O(dims × rows) pass) and returns their aggregate
// container composition and byte footprint.
func (t *Table) PostingsStats() BitmapStats {
	var s BitmapStats
	for _, d := range t.dims {
		s.Add(d.BitmapPostingsStats())
	}
	return s
}

// Name returns the dataset's display name.
func (t *Table) Name() string { return t.name }

// Rows returns the number of records.
func (t *Table) Rows() int { return t.rows }

// Cols returns the number of columns (dimensions plus measures).
func (t *Table) Cols() int { return len(t.dims) + len(t.measures) }

// Cells returns rows × cols, the dataset-scale metric used throughout the
// paper's evaluation (Section 5.1.1, Table 3).
func (t *Table) Cells() int { return t.rows * t.Cols() }

// Fields returns the schema in declaration order.
func (t *Table) Fields() []model.Field { return t.fields }

// Dimensions returns the dimension columns in declaration order.
func (t *Table) Dimensions() []*DimColumn { return t.dims }

// DimensionNames returns the names of all dimensions in declaration order.
func (t *Table) DimensionNames() []string {
	names := make([]string, len(t.dims))
	for i, d := range t.dims {
		names[i] = d.Name
	}
	return names
}

// TemporalDimensions returns the names of all temporal dimensions.
func (t *Table) TemporalDimensions() []string {
	var names []string
	for _, d := range t.dims {
		if d.Kind == model.KindTemporal {
			names = append(names, d.Name)
		}
	}
	return names
}

// Dimension returns the dimension column named name, or nil if absent.
func (t *Table) Dimension(name string) *DimColumn {
	if i, ok := t.dimIdx[name]; ok {
		return t.dims[i]
	}
	return nil
}

// DimensionIndex returns the declaration index of dimension name, or -1.
func (t *Table) DimensionIndex(name string) int {
	if i, ok := t.dimIdx[name]; ok {
		return i
	}
	return -1
}

// MeasureColumns returns the measure columns in declaration order.
func (t *Table) MeasureColumns() []*MeasureColumn { return t.measures }

// MeasureColumn returns the measure column named name, or nil if absent.
func (t *Table) MeasureColumn(name string) *MeasureColumn {
	if i, ok := t.measIdx[name]; ok {
		return t.measures[i]
	}
	return nil
}

// DefaultMeasures returns a reasonable measure set M for the table:
// SUM over every measure column, plus COUNT(*). This mirrors the measure
// sets used by the paper's evaluation, where COUNT(*) always participates as
// the impact measure.
func (t *Table) DefaultMeasures() []model.Measure {
	ms := make([]model.Measure, 0, len(t.measures)+1)
	for _, c := range t.measures {
		ms = append(ms, model.Sum(c.Name))
	}
	ms = append(ms, model.Count("*"))
	return ms
}

// SiblingGroup materializes SG(s, dim): the set of subspaces that agree with
// s everywhere except on dim, where each takes one concrete domain value
// (Section 2.1). The anchor's own filter value, if any, is included, matching
// the definition.
func (t *Table) SiblingGroup(s model.Subspace, dim string) []model.Subspace {
	col := t.Dimension(dim)
	if col == nil {
		return nil
	}
	out := make([]model.Subspace, 0, col.Cardinality())
	for _, v := range col.Domain() {
		out = append(out, s.With(dim, v))
	}
	return out
}

// Validate checks that a data scope refers to existing columns of the table.
func (t *Table) Validate(ds model.DataScope) error {
	if !ds.Valid() {
		return fmt.Errorf("dataset: invalid data scope %s", ds)
	}
	if t.Dimension(ds.Breakdown) == nil {
		return fmt.Errorf("dataset: unknown breakdown dimension %q", ds.Breakdown)
	}
	for _, f := range ds.Subspace {
		col := t.Dimension(f.Dim)
		if col == nil {
			return fmt.Errorf("dataset: unknown filter dimension %q", f.Dim)
		}
		if col.Code(f.Value) < 0 {
			return fmt.Errorf("dataset: value %q not in domain of %q", f.Value, f.Dim)
		}
	}
	if ds.Measure.Agg != model.AggCount || ds.Measure.Column != "*" {
		if ds.Measure.Column == "" || t.MeasureColumn(ds.Measure.Column) == nil {
			return fmt.Errorf("dataset: unknown measure column %q", ds.Measure.Column)
		}
	}
	return nil
}

// Builder assembles a Table row by row. It is not safe for concurrent use.
type Builder struct {
	name   string
	fields []model.Field
	dimPos []int // field index -> dims slice position (or -1)
	meaPos []int
	dims   []*dimBuilder
	meas   []*measureBuilder
	rows   int
}

type dimBuilder struct {
	name  string
	kind  model.FieldKind
	index map[string]int
	dict  []string
	codes []int32
}

type measureBuilder struct {
	name string
	vals []float64
}

// NewBuilder creates a builder for a table with the given schema. Field order
// is preserved. It panics on duplicate or empty field names so schema bugs
// surface at construction time.
func NewBuilder(name string, fields []model.Field) *Builder {
	b := &Builder{name: name, fields: append([]model.Field(nil), fields...)}
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			panic("dataset: empty field name")
		}
		if seen[f.Name] {
			panic(fmt.Sprintf("dataset: duplicate field name %q", f.Name))
		}
		seen[f.Name] = true
		switch f.Kind {
		case model.KindCategorical, model.KindTemporal:
			b.dimPos = append(b.dimPos, len(b.dims))
			b.meaPos = append(b.meaPos, -1)
			b.dims = append(b.dims, &dimBuilder{name: f.Name, kind: f.Kind, index: map[string]int{}})
		case model.KindMeasure:
			b.dimPos = append(b.dimPos, -1)
			b.meaPos = append(b.meaPos, len(b.meas))
			b.meas = append(b.meas, &measureBuilder{name: f.Name})
		default:
			panic(fmt.Sprintf("dataset: unknown field kind %v", f.Kind))
		}
	}
	return b
}

// AddRow appends one record. dimValues must align with the dimension fields
// in schema order and measureValues with the measure fields in schema order.
func (b *Builder) AddRow(dimValues []string, measureValues []float64) {
	if len(dimValues) != len(b.dims) || len(measureValues) != len(b.meas) {
		panic(fmt.Sprintf("dataset: AddRow arity mismatch: got %d dims %d measures, want %d and %d",
			len(dimValues), len(measureValues), len(b.dims), len(b.meas)))
	}
	for i, v := range dimValues {
		d := b.dims[i]
		code, ok := d.index[v]
		if !ok {
			code = len(d.dict)
			d.index[v] = code
			d.dict = append(d.dict, v)
		}
		d.codes = append(d.codes, int32(code))
	}
	for i, v := range measureValues {
		b.meas[i].vals = append(b.meas[i].vals, v)
	}
	b.rows++
}

// Build finalizes the table. Dimension dictionaries are re-sorted into domain
// order — temporal order for temporal dimensions (see TemporalLess), lexical
// order otherwise — and row codes are remapped accordingly.
func (b *Builder) Build() *Table {
	t := &Table{
		name:    b.name,
		rows:    b.rows,
		fields:  b.fields,
		dimIdx:  make(map[string]int, len(b.dims)),
		measIdx: make(map[string]int, len(b.meas)),
	}
	for _, d := range b.dims {
		sorted := append([]string(nil), d.dict...)
		if d.kind == model.KindTemporal {
			sort.SliceStable(sorted, func(i, j int) bool { return TemporalLess(sorted[i], sorted[j]) })
		} else {
			sort.Strings(sorted)
		}
		remap := make([]int32, len(d.dict))
		index := make(map[string]int, len(sorted))
		for newCode, v := range sorted {
			index[v] = newCode
		}
		for oldCode, v := range d.dict {
			remap[oldCode] = int32(index[v])
		}
		codes := make([]int32, len(d.codes))
		for i, c := range d.codes {
			codes[i] = remap[c]
		}
		col := &DimColumn{Name: d.name, Kind: d.kind, dict: sorted, index: index, codes: codes}
		t.dimIdx[d.name] = len(t.dims)
		t.dims = append(t.dims, col)
	}
	for _, m := range b.meas {
		col := &MeasureColumn{Name: m.name, vals: m.vals}
		t.measIdx[m.name] = len(t.measures)
		t.measures = append(t.measures, col)
	}
	return t
}
