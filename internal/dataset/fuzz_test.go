package dataset

import (
	"strings"
	"testing"
)

// FuzzLoadCSV ensures the loader never panics on arbitrary input and that
// any table it does build is internally consistent (codes decode, measures
// align). Run with `go test -fuzz=FuzzLoadCSV ./internal/dataset` to explore
// beyond the seed corpus.
func FuzzLoadCSV(f *testing.F) {
	f.Add("City,Month,Sales\nLA,Jan,100\nSF,Feb,200\n")
	f.Add("A,B\n,\n,\n")
	f.Add("X\n1\n2\n3\n")
	f.Add("a,b,c\n\"q,uo\",2020-01-01,-5\n")
	f.Add("К,Ц\nμ,λ\n")
	f.Add("dup,dup\n1,2\n")
	f.Add("n\n1e308\n-1e308\nNaN\n")
	f.Add("r\n1\nx,2\nNaN\n")
	f.Fuzz(func(t *testing.T, data string) {
		// Exercise every row-policy combination: none may panic, and under
		// skip-and-count any built table must be internally consistent with
		// finite measures.
		for _, ragged := range []RowPolicy{RowError, RowSkip} {
			for _, bad := range []RowPolicy{RowError, RowSkip} {
				tab, err := LoadCSV(strings.NewReader(data),
					LoadOptions{Name: "fuzz", RaggedRows: ragged, BadMeasures: bad})
				if err != nil {
					continue // malformed input is allowed to fail, not to panic
				}
				st := tab.LoadStats()
				if st.RowsLoaded != tab.Rows() {
					t.Fatalf("LoadStats.RowsLoaded=%d but table has %d rows", st.RowsLoaded, tab.Rows())
				}
				if ragged == RowError && st.RaggedSkipped != 0 {
					t.Fatalf("RaggedSkipped=%d under RowError", st.RaggedSkipped)
				}
				for _, col := range tab.Dimensions() {
					for r := 0; r < tab.Rows(); r++ {
						code := int(col.CodeAt(r))
						if code < 0 || code >= col.Cardinality() {
							t.Fatalf("row %d of %q decodes out of range", r, col.Name)
						}
						if col.Code(col.Value(code)) != code {
							t.Fatalf("dictionary roundtrip broken for %q", col.Name)
						}
					}
				}
				for _, mc := range tab.MeasureColumns() {
					for r := 0; r < tab.Rows(); r++ {
						if v := mc.At(r); v != v {
							t.Fatalf("NaN measure survived ingestion in %q row %d", mc.Name, r)
						}
					}
				}
			}
		}
	})
}

// FuzzTemporalLess checks the comparator provides a strict weak ordering on
// arbitrary strings: irreflexive and asymmetric (required by sort.Slice).
func FuzzTemporalLess(f *testing.F) {
	f.Add("Jan", "Feb")
	f.Add("Q1", "Week 2")
	f.Add("2020-01-01", "2020")
	f.Add("", "w")
	f.Add("W-3", "Qx")
	f.Fuzz(func(t *testing.T, a, b string) {
		if TemporalLess(a, a) {
			t.Fatalf("TemporalLess(%q, %q) not irreflexive", a, a)
		}
		if TemporalLess(a, b) && TemporalLess(b, a) {
			t.Fatalf("TemporalLess not asymmetric for %q, %q", a, b)
		}
	})
}
