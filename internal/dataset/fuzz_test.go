package dataset

import (
	"strings"
	"testing"
)

// FuzzLoadCSV ensures the loader never panics on arbitrary input and that
// any table it does build is internally consistent (codes decode, measures
// align). Run with `go test -fuzz=FuzzLoadCSV ./internal/dataset` to explore
// beyond the seed corpus.
func FuzzLoadCSV(f *testing.F) {
	f.Add("City,Month,Sales\nLA,Jan,100\nSF,Feb,200\n")
	f.Add("A,B\n,\n,\n")
	f.Add("X\n1\n2\n3\n")
	f.Add("a,b,c\n\"q,uo\",2020-01-01,-5\n")
	f.Add("К,Ц\nμ,λ\n")
	f.Add("dup,dup\n1,2\n")
	f.Add("n\n1e308\n-1e308\nNaN\n")
	f.Add("r\n1\nx,2\nNaN\n")
	f.Fuzz(func(t *testing.T, data string) {
		// Exercise every row-policy combination: none may panic, and under
		// skip-and-count any built table must be internally consistent with
		// finite measures.
		for _, ragged := range []RowPolicy{RowError, RowSkip} {
			for _, bad := range []RowPolicy{RowError, RowSkip} {
				tab, err := LoadCSV(strings.NewReader(data),
					LoadOptions{Name: "fuzz", RaggedRows: ragged, BadMeasures: bad})
				if err != nil {
					continue // malformed input is allowed to fail, not to panic
				}
				st := tab.LoadStats()
				if st.RowsLoaded != tab.Rows() {
					t.Fatalf("LoadStats.RowsLoaded=%d but table has %d rows", st.RowsLoaded, tab.Rows())
				}
				if ragged == RowError && st.RaggedSkipped != 0 {
					t.Fatalf("RaggedSkipped=%d under RowError", st.RaggedSkipped)
				}
				for _, col := range tab.Dimensions() {
					for r := 0; r < tab.Rows(); r++ {
						code := int(col.CodeAt(r))
						if code < 0 || code >= col.Cardinality() {
							t.Fatalf("row %d of %q decodes out of range", r, col.Name)
						}
						if col.Code(col.Value(code)) != code {
							t.Fatalf("dictionary roundtrip broken for %q", col.Name)
						}
					}
				}
				for _, mc := range tab.MeasureColumns() {
					for r := 0; r < tab.Rows(); r++ {
						if v := mc.At(r); v != v {
							t.Fatalf("NaN measure survived ingestion in %q row %d", mc.Name, r)
						}
					}
				}
			}
		}
	})
}

// FuzzContainerRoundTrip feeds arbitrary byte strings — decoded into a
// sorted, duplicate-free row-id set — through the compressed container
// build, and checks the three invariants every representation must hold:
// exact round trip to the original ids, cardinality agreement, and
// intersection against a second derived set matching the sorted-slice
// reference. Run with `go test -fuzz=FuzzContainerRoundTrip
// ./internal/dataset` to explore beyond the seed corpus.
func FuzzContainerRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0, 1, 2, 3, 255}, uint8(3))
	f.Add([]byte{7, 7, 7, 9}, uint8(2))
	f.Add([]byte{0xff, 0xff, 0x01, 0x80}, uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, stride uint8) {
		if stride == 0 {
			stride = 1
		}
		// Decode bytes into ascending row ids: each byte advances the cursor
		// by 1..256 scaled by stride, so small inputs still cross chunk
		// boundaries and produce runs (consecutive ids) when bytes are zero.
		rows := make([]int32, 0, len(data))
		cur := int32(-1)
		for _, d := range data {
			cur += 1 + int32(d)*int32(stride)
			if cur < 0 { // overflow guard
				break
			}
			rows = append(rows, cur)
		}
		bm := NewBitmapFromSorted(rows)
		if bm.Cardinality() != len(rows) {
			t.Fatalf("cardinality %d, want %d", bm.Cardinality(), len(rows))
		}
		got := bm.ToArray(nil)
		for i := range rows {
			if got[i] != rows[i] {
				t.Fatalf("round trip diverges at %d: got %d, want %d", i, got[i], rows[i])
			}
		}
		// Every other id forms a second set; compressed AND must agree with
		// the sorted-slice reference intersection.
		half := make([]int32, 0, len(rows)/2)
		for i := 0; i < len(rows); i += 2 {
			half = append(half, rows[i])
		}
		want := Intersect(rows, half)
		and := And(bm, NewBitmapFromSorted(half)).ToArray(nil)
		if len(and) != len(want) {
			t.Fatalf("AND cardinality %d, want %d", len(and), len(want))
		}
		for i := range want {
			if and[i] != want[i] {
				t.Fatalf("AND diverges at %d: got %d, want %d", i, and[i], want[i])
			}
		}
		st := bm.Stats()
		if st.Cardinality != int64(len(rows)) || st.Containers != st.ArrayContainers+st.RunContainers+st.BitmapContainers {
			t.Fatalf("inconsistent stats %+v", st)
		}
	})
}

// FuzzTemporalLess checks the comparator provides a strict weak ordering on
// arbitrary strings: irreflexive and asymmetric (required by sort.Slice).
func FuzzTemporalLess(f *testing.F) {
	f.Add("Jan", "Feb")
	f.Add("Q1", "Week 2")
	f.Add("2020-01-01", "2020")
	f.Add("", "w")
	f.Add("W-3", "Qx")
	f.Fuzz(func(t *testing.T, a, b string) {
		if TemporalLess(a, a) {
			t.Fatalf("TemporalLess(%q, %q) not irreflexive", a, a)
		}
		if TemporalLess(a, b) && TemporalLess(b, a) {
			t.Fatalf("TemporalLess not asymmetric for %q, %q", a, b)
		}
	})
}
