package dataset

import (
	"fmt"
	"strings"
	"time"

	"metainsight/internal/model"
)

// dateLayouts are the date formats DeriveTemporal understands.
var dateLayouts = []string{"2006-01-02", "2006/01/02", "2006-01", "2006/01"}

// DeriveTemporal returns a new table with temporal hierarchy columns derived
// from a date-valued column: "<col> Year", "<col> Quarter", "<col> Month"
// and, when the dates carry a day component, "<col> Week" (ISO week) and
// "<col> Weekday". This is the
// substrate behind the paper's breakdown-extension example (Section 3.2):
// Exd_b varies the breakdown over all temporal dimensions — "sales in Los
// Angeles over Day, Week and Month" — which requires those granularities to
// exist as columns. The source column is kept (its cardinality cap will
// typically exclude it from breakdowns); all other columns are copied
// unchanged.
func DeriveTemporal(t *Table, dateCol string) (*Table, error) {
	src := t.Dimension(dateCol)
	if src == nil {
		return nil, fmt.Errorf("dataset: unknown column %q", dateCol)
	}
	// Parse each dictionary value once.
	parsed := make([]time.Time, src.Cardinality())
	withDay := false
	for code, v := range src.Domain() {
		tv, hasDay, err := parseDate(v)
		if err != nil {
			return nil, fmt.Errorf("dataset: column %q: %w", dateCol, err)
		}
		parsed[code] = tv
		withDay = withDay || hasDay
	}

	derived := []string{dateCol + " Year", dateCol + " Quarter", dateCol + " Month"}
	if withDay {
		derived = append(derived, dateCol+" Week", dateCol+" Weekday")
	}
	for _, name := range derived {
		if t.Dimension(name) != nil || t.MeasureColumn(name) != nil {
			return nil, fmt.Errorf("dataset: derived column %q already exists", name)
		}
	}

	fields := append(append([]model.Field(nil), t.Fields()...), make([]model.Field, 0, len(derived))...)
	for _, name := range derived {
		fields = append(fields, model.Field{Name: name, Kind: model.KindTemporal})
	}
	b := NewBuilder(t.Name(), fields)

	dims := t.Dimensions()
	meas := t.MeasureColumns()
	dimVals := make([]string, 0, len(dims)+len(derived))
	meaVals := make([]float64, len(meas))
	for r := 0; r < t.Rows(); r++ {
		dimVals = dimVals[:0]
		for _, d := range dims {
			dimVals = append(dimVals, d.Value(int(d.CodeAt(r))))
		}
		tv := parsed[src.CodeAt(r)]
		dimVals = append(dimVals,
			fmt.Sprintf("%d", tv.Year()),
			fmt.Sprintf("Q%d", (int(tv.Month())-1)/3+1),
			tv.Month().String()[:3],
		)
		if withDay {
			_, week := tv.ISOWeek()
			dimVals = append(dimVals,
				fmt.Sprintf("W%02d", week),
				tv.Weekday().String()[:3])
		}
		for i, m := range meas {
			meaVals[i] = m.At(r)
		}
		b.AddRow(dimVals, meaVals)
	}
	return b.Build(), nil
}

// parseDate parses one date value, reporting whether it had a day component.
func parseDate(v string) (time.Time, bool, error) {
	s := strings.TrimSpace(v)
	for _, layout := range dateLayouts {
		if tv, err := time.Parse(layout, s); err == nil {
			// Day-precision layouts are the 10-character ones (YYYY-MM-DD).
			return tv, len(layout) == 10, nil
		}
	}
	return time.Time{}, false, fmt.Errorf("unparseable date %q", v)
}
