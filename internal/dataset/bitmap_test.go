package dataset

import (
	"math/rand"
	"reflect"
	"testing"

	"metainsight/internal/model"
)

// genRows builds adversarial row-id distributions for the container property
// suite. Each shape stresses a different representation: dense chunks become
// bitmap containers, sparse ones arrays, clustered ones runs, and the
// boundary shapes pin chunk-edge arithmetic.
func genRows(shape string, rng *rand.Rand) []int32 {
	switch shape {
	case "empty":
		return nil
	case "single":
		return []int32{int32(rng.Intn(3 * chunkSize))}
	case "sparse":
		// ~500 ids spread over 4 chunks: array containers.
		seen := map[int32]bool{}
		for len(seen) < 500 {
			seen[int32(rng.Intn(4*chunkSize))] = true
		}
		return sortedKeys(seen)
	case "dense":
		// ~60% of one chunk: a bitmap container.
		seen := map[int32]bool{}
		for len(seen) < chunkSize*6/10 {
			seen[int32(rng.Intn(chunkSize))] = true
		}
		return sortedKeys(seen)
	case "runs":
		// Long contiguous stretches with gaps: run containers.
		var rows []int32
		at := int32(rng.Intn(100))
		for at < 3*chunkSize {
			n := int32(200 + rng.Intn(2000))
			for v := at; v < at+n && v < 3*chunkSize; v++ {
				rows = append(rows, v)
			}
			at += n + int32(1+rng.Intn(500))
		}
		return rows
	case "boundary":
		// Ids hugging chunk edges, including full first/last words.
		var rows []int32
		for c := int32(0); c < 3; c++ {
			base := c << chunkBits
			for v := int32(0); v < 70; v++ {
				rows = append(rows, base+v)
			}
			for v := int32(chunkSize - 70); v < chunkSize; v++ {
				rows = append(rows, base+v)
			}
		}
		return rows
	case "fullchunk":
		rows := make([]int32, chunkSize)
		for i := range rows {
			rows[i] = chunkSize + int32(i)
		}
		return rows
	}
	panic("unknown shape " + shape)
}

func sortedKeys(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

var bitmapShapes = []string{"empty", "single", "sparse", "dense", "runs", "boundary", "fullchunk"}

// buildBitmapTestTable builds a 1000-row table whose dimension values cycle
// at different strides, so codes produce both clustered and scattered
// posting lists.
func buildBitmapTestTable(t *testing.T) *Table {
	t.Helper()
	b := NewBuilder("bm", []model.Field{
		{Name: "A", Kind: model.KindCategorical},
		{Name: "B", Kind: model.KindCategorical},
		{Name: "M", Kind: model.KindMeasure},
	})
	names := []string{"u", "v", "w", "x", "y"}
	for i := 0; i < 1000; i++ {
		b.AddRow([]string{names[(i/100)%5], names[i%5]}, []float64{float64(i % 17)})
	}
	return b.Build()
}

func TestBitmapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range bitmapShapes {
		for trial := 0; trial < 4; trial++ {
			rows := genRows(shape, rng)
			bm := NewBitmapFromSorted(rows)
			if bm.Cardinality() != len(rows) {
				t.Fatalf("%s: cardinality %d, want %d", shape, bm.Cardinality(), len(rows))
			}
			got := bm.ToArray(nil)
			if len(got) == 0 && len(rows) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, rows) {
				t.Fatalf("%s: round trip mismatch: got %d rows, want %d", shape, len(got), len(rows))
			}
		}
	}
}

// TestBitmapAndMatchesIntersect pins compressed-container intersection
// against the sorted-slice reference on every pair of adversarial
// distributions, which exercises all six container-pair kernels.
func TestBitmapAndMatchesIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sa := range bitmapShapes {
		for _, sb := range bitmapShapes {
			a := genRows(sa, rng)
			b := genRows(sb, rng)
			want := Intersect(a, b)
			got := And(NewBitmapFromSorted(a), NewBitmapFromSorted(b)).ToArray(nil)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s×%s: bitmap AND disagrees with Intersect: got %d rows, want %d", sa, sb, len(got), len(want))
			}
		}
	}
}

func TestBitmapAndAllMatchesIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		lists := [][]int32{
			genRows("dense", rng),
			genRows("runs", rng),
			genRows("sparse", rng),
		}
		want := Intersect(lists...)
		bms := make([]*Bitmap, len(lists))
		for i, l := range lists {
			bms[i] = NewBitmapFromSorted(l)
		}
		got := AndAll(bms...).ToArray(nil)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: AndAll disagrees with Intersect: got %d rows, want %d", trial, len(got), len(want))
		}
	}
}

func TestBitmapStats(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dense := NewBitmapFromSorted(genRows("dense", rng))
	runs := NewBitmapFromSorted(genRows("runs", rng))
	sparse := NewBitmapFromSorted(genRows("sparse", rng))
	if s := dense.Stats(); s.BitmapContainers == 0 {
		t.Errorf("dense shape produced no bitmap containers: %+v", s)
	}
	if s := runs.Stats(); s.RunContainers == 0 {
		t.Errorf("run shape produced no run containers: %+v", s)
	}
	if s := sparse.Stats(); s.ArrayContainers == 0 {
		t.Errorf("sparse shape produced no array containers: %+v", s)
	}
	// Clustered data must compress well below the 4-byte-per-row slice form.
	if s := runs.Stats(); s.CompressionRatio() < 4 {
		t.Errorf("run-shaped postings compress only %.2fx", s.CompressionRatio())
	}
	var agg BitmapStats
	agg.Add(dense.Stats())
	agg.Add(runs.Stats())
	if agg.Cardinality != int64(dense.Cardinality()+runs.Cardinality()) {
		t.Errorf("aggregate cardinality %d", agg.Cardinality)
	}
}

func TestBitmapAndCostPure(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := NewBitmapFromSorted(genRows("dense", rng))
	b := NewBitmapFromSorted(genRows("sparse", rng))
	c1 := BitmapAndCost(a, b)
	c2 := BitmapAndCost(a, b)
	if c1 != c2 || c1 <= 0 {
		t.Fatalf("BitmapAndCost not deterministic or non-positive: %g vs %g", c1, c2)
	}
	if BitmapAndCost(a) != 0 || BitmapAndCost() != 0 {
		t.Fatal("degenerate arities must cost zero")
	}
}

// TestIntersectSingleListCopies pins the defensive copy of the one-list
// call: mutating the result must not write through to the input.
func TestIntersectSingleListCopies(t *testing.T) {
	in := []int32{1, 2, 3}
	out := Intersect(in)
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %v, want %v", out, in)
	}
	out[0] = 99
	if in[0] != 1 {
		t.Fatal("Intersect aliased its single input; caller mutation corrupted it")
	}
}

func TestPostingsBitmapMatchesPostings(t *testing.T) {
	tab := buildBitmapTestTable(t)
	for _, d := range tab.Dimensions() {
		for code := 0; code < d.Cardinality(); code++ {
			want := d.Postings(code)
			got := d.PostingsBitmap(code).ToArray(nil)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("dim %s code %d: bitmap postings disagree with slices", d.Name, code)
			}
		}
		if d.PostingsBitmap(-1) != nil || d.PostingsBitmap(d.Cardinality()) != nil {
			t.Fatal("out-of-range codes must return nil")
		}
	}
}

func TestShardViewBitmapPostings(t *testing.T) {
	tab := buildBitmapTestTable(t)
	view := tab.ShardView(100, 900)
	for _, d := range view.Dimensions() {
		for code := 0; code < d.Cardinality(); code++ {
			want := d.Postings(code)
			got := d.PostingsBitmap(code).ToArray(nil)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("view dim %s code %d: bitmap postings disagree with slices", d.Name, code)
			}
		}
	}
}
