package dataset

import (
	"strconv"
	"strings"
)

// monthOrder maps month names (full and three-letter forms, case-insensitive)
// to their position in the year.
var monthOrder = map[string]int{
	"jan": 1, "january": 1,
	"feb": 2, "february": 2,
	"mar": 3, "march": 3,
	"apr": 4, "april": 4,
	"may": 5,
	"jun": 6, "june": 6,
	"jul": 7, "july": 7,
	"aug": 8, "august": 8,
	"sep": 9, "sept": 9, "september": 9,
	"oct": 10, "october": 10,
	"nov": 11, "november": 11,
	"dec": 12, "december": 12,
}

// weekdayOrder maps weekday names to their position in the week (Mon=1).
var weekdayOrder = map[string]int{
	"mon": 1, "monday": 1,
	"tue": 2, "tues": 2, "tuesday": 2,
	"wed": 3, "wednesday": 3,
	"thu": 4, "thur": 4, "thurs": 4, "thursday": 4,
	"fri": 5, "friday": 5,
	"sat": 6, "saturday": 6,
	"sun": 7, "sunday": 7,
}

// temporalRank assigns an orderable rank to a temporal dimension value.
// It understands month names, weekday names, quarters ("Q1".."Q4"),
// week labels ("W01", "Week 3"), plain integers (years, day-of-month,
// hours) and ISO-style dates (which already sort lexically). Unrecognized
// values fall back to lexical comparison via rank 0 + the string itself.
func temporalRank(v string) (int, bool) {
	s := strings.ToLower(strings.TrimSpace(v))
	if r, ok := monthOrder[s]; ok {
		return r, true
	}
	if r, ok := weekdayOrder[s]; ok {
		return r, true
	}
	if len(s) >= 2 && s[0] == 'q' {
		if n, err := strconv.Atoi(s[1:]); err == nil {
			return n, true
		}
	}
	if len(s) >= 2 && s[0] == 'w' {
		if n, err := strconv.Atoi(strings.TrimSpace(s[1:])); err == nil {
			return n, true
		}
	}
	if rest, ok := strings.CutPrefix(s, "week "); ok {
		if n, err := strconv.Atoi(rest); err == nil {
			return n, true
		}
	}
	if n, err := strconv.Atoi(s); err == nil {
		return n, true
	}
	return 0, false
}

// TemporalLess orders two temporal dimension values chronologically. Month
// and weekday names, quarters, week labels and integer values are compared by
// their temporal rank; everything else (e.g. ISO dates) falls back to the
// lexical order, which is chronological for ISO-8601 strings.
func TemporalLess(a, b string) bool {
	ra, oka := temporalRank(a)
	rb, okb := temporalRank(b)
	switch {
	case oka && okb:
		if ra != rb {
			return ra < rb
		}
		return a < b
	case oka:
		return true
	case okb:
		return false
	default:
		return a < b
	}
}

// LooksTemporal reports whether a set of raw values looks like a temporal
// domain: every non-empty value must parse as a month, weekday, quarter,
// week label, 4-digit year, or ISO date, and at least one value must be
// non-numeric-ambiguous (to avoid classifying arbitrary ID columns as
// temporal). It is used by the CSV loader's type inference.
func LooksTemporal(values []string) bool {
	if len(values) == 0 {
		return false
	}
	named := 0
	for _, v := range values {
		s := strings.ToLower(strings.TrimSpace(v))
		if s == "" {
			continue
		}
		switch {
		case monthOrder[s] != 0 || weekdayOrder[s] != 0:
			named++
		case len(s) >= 2 && (s[0] == 'q' || s[0] == 'w'):
			if _, err := strconv.Atoi(s[1:]); err != nil {
				return false
			}
			named++
		case isISODate(s):
			named++
		case isYear(s):
			// plausible but ambiguous on its own
		default:
			return false
		}
	}
	return named > 0 || allYears(values)
}

func isYear(s string) bool {
	if len(s) != 4 {
		return false
	}
	n, err := strconv.Atoi(s)
	return err == nil && n >= 1500 && n <= 2500
}

func allYears(values []string) bool {
	any := false
	for _, v := range values {
		s := strings.TrimSpace(v)
		if s == "" {
			continue
		}
		if !isYear(s) {
			return false
		}
		any = true
	}
	return any
}

func isISODate(s string) bool {
	// YYYY-MM-DD or YYYY/MM/DD, optionally truncated to YYYY-MM.
	if len(s) != 7 && len(s) != 10 {
		return false
	}
	sep := byte('-')
	if strings.ContainsRune(s, '/') {
		sep = '/'
	}
	parts := strings.Split(s, string(sep))
	if len(parts) != 2 && len(parts) != 3 {
		return false
	}
	if !isYear(parts[0]) {
		return false
	}
	for _, p := range parts[1:] {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 || n > 31 {
			return false
		}
	}
	return true
}
