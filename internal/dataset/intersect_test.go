package dataset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// naiveIntersect is the oracle: map-based intersection, re-sorted.
func naiveIntersect(lists ...[]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	counts := map[int32]int{}
	for _, l := range lists {
		for _, v := range l {
			counts[v]++
		}
	}
	var out []int32
	for v, c := range counts {
		if c == len(lists) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randomList(rng *rand.Rand, n, max int) []int32 {
	seen := map[int32]bool{}
	for len(seen) < n {
		seen[int32(rng.Intn(max))] = true
	}
	out := make([]int32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(3)
		lists := make([][]int32, k)
		for i := range lists {
			// Mix of tiny and large lists so both the galloping and linear
			// paths are exercised.
			n := 1 + rng.Intn(40)
			if rng.Intn(3) == 0 {
				n = 200 + rng.Intn(800)
			}
			lists[i] = randomList(rng, n, 1200)
		}
		got := Intersect(lists...)
		want := naiveIntersect(lists...)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Intersect mismatch\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestIntersectPairVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		a := randomList(rng, 1+rng.Intn(30), 500)
		b := randomList(rng, 1+rng.Intn(400), 500)
		want := naiveIntersect(a, b)
		lin := linearIntersect(a, b, nil)
		gal := gallopIntersect(a, b, nil)
		if len(b) < len(a) {
			lin = linearIntersect(b, a, nil)
			gal = gallopIntersect(b, a, nil)
		}
		if len(want) == 0 {
			if len(lin) != 0 || len(gal) != 0 {
				t.Fatalf("trial %d: want empty, got linear %v gallop %v", trial, lin, gal)
			}
			continue
		}
		if !reflect.DeepEqual(lin, want) {
			t.Fatalf("trial %d: linear mismatch: got %v want %v", trial, lin, want)
		}
		if !reflect.DeepEqual(gal, want) {
			t.Fatalf("trial %d: gallop mismatch: got %v want %v", trial, gal, want)
		}
	}
}

func TestIntersectEdgeCases(t *testing.T) {
	if got := Intersect(); got != nil {
		t.Fatalf("Intersect() = %v, want nil", got)
	}
	one := []int32{1, 5, 9}
	if got := Intersect(one); !reflect.DeepEqual(got, one) {
		t.Fatalf("Intersect(one) = %v, want %v", got, one)
	}
	if got := Intersect(one, nil); len(got) != 0 {
		t.Fatalf("Intersect(one, nil) = %v, want empty", got)
	}
	if got := Intersect([]int32{1, 2}, []int32{3, 4}); len(got) != 0 {
		t.Fatalf("disjoint intersection = %v, want empty", got)
	}
	same := []int32{2, 4, 6, 8}
	if got := Intersect(same, same, same); !reflect.DeepEqual(got, same) {
		t.Fatalf("identical intersection = %v, want %v", got, same)
	}
}

func TestIntersectCostDeterministicAndSane(t *testing.T) {
	if c := IntersectCost(); c != 0 {
		t.Fatalf("IntersectCost() = %v, want 0", c)
	}
	if c := IntersectCost(100); c != 0 {
		t.Fatalf("IntersectCost(100) = %v, want 0", c)
	}
	// Galloping estimate beats linear once the ratio is extreme.
	gal := IntersectCost(10, 100000)
	lin := float64(10 + 100000)
	if gal >= lin {
		t.Fatalf("gallop estimate %v not cheaper than linear %v", gal, lin)
	}
	// Order-insensitive.
	if IntersectCost(30, 10, 500) != IntersectCost(500, 30, 10) {
		t.Fatal("IntersectCost is order-sensitive")
	}
}
