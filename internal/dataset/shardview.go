package dataset

// Shard views: zero-copy row-range slices of an immutable Table, the storage
// substrate of sharded scan execution (internal/shard). A view shares the
// parent's dictionaries and measure value arrays and merely re-slices the
// per-row code/value vectors, so constructing N shards costs O(N), not
// O(rows). The expensive lazily-built indexes are derived, not rebuilt:
// posting lists are binary-search slices of the parent's lists rebased to
// shard-local row ids (index.go), and zone maps are sub-slices of the
// parent's block vectors whenever the view is block-aligned (zones.go) —
// which the shard planner guarantees by cutting shards on morsel boundaries.

import "fmt"

// ShardView returns an immutable view of the table covering rows [lo, hi).
// The view shares the parent's dictionaries, measure storage and — lazily —
// its posting lists and zone maps; it is safe for concurrent use like any
// Table. Dictionary codes are identical between parent and view (the
// dictionary is shared wholesale, including values that never occur inside
// the row range), so group-by cell ids computed against a view are directly
// comparable to the parent's.
func (t *Table) ShardView(lo, hi int) *Table {
	if lo < 0 || hi > t.rows || lo > hi {
		panic(fmt.Sprintf("dataset: ShardView[%d:%d) out of range for %d rows", lo, hi, t.rows))
	}
	v := &Table{
		name:    fmt.Sprintf("%s[%d:%d)", t.name, lo, hi),
		rows:    hi - lo,
		fields:  t.fields,
		dimIdx:  t.dimIdx,
		measIdx: t.measIdx,
	}
	v.dims = make([]*DimColumn, len(t.dims))
	for i, d := range t.dims {
		// A view of a view chains to the root parent so all shards of one
		// table share a single set of root-built indexes.
		root, base := d, lo
		if d.parent != nil {
			root, base = d.parent, d.base+lo
		}
		v.dims[i] = &DimColumn{
			Name:   d.Name,
			Kind:   d.Kind,
			dict:   d.dict,
			index:  d.index,
			codes:  d.codes[lo:hi],
			parent: root,
			base:   base,
		}
	}
	v.measures = make([]*MeasureColumn, len(t.measures))
	for i, m := range t.measures {
		v.measures[i] = &MeasureColumn{Name: m.Name, vals: m.vals[lo:hi]}
	}
	return v
}
