package dataset

// Posting-list intersection for multi-filter subspaces. A conjunctive filter
// is the intersection of the per-value posting lists of its filters; scanning
// the intersected row set visits exactly the matching rows instead of driving
// off one list and re-checking the remaining filters row by row. Lists are
// sorted ascending (see index.go), so intersection is a merge: linear when
// the lists are of comparable length, galloping (exponential probe + binary
// search, the classic SvS refinement) when one list is much longer — the
// galloping form costs O(small · log large) instead of O(small + large).

// gallopRatio is the length ratio |large|/|small| above which a pairwise
// intersection switches from the linear merge to galloping search. At ratio
// r the linear merge costs small·(1+r) comparisons and galloping about
// small·log2(large); 8 is past the crossover for every posting-list size
// this engine produces.
const gallopRatio = 8

// Intersect computes the intersection of ascending-sorted row-id lists,
// smallest list first so every pairwise step shrinks the candidate set as
// fast as possible. It returns nil when lists is empty, and never mutates
// its inputs. The result is always freshly allocated — the one-list case
// returns a defensive copy, so no caller holding an Intersect result can
// corrupt a posting list behind the index's back.
func Intersect(lists ...[]int32) []int32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]int32(nil), lists[0]...)
	}
	ordered := make([][]int32, len(lists))
	copy(ordered, lists)
	// Insertion sort by length: the list count is the filter count (≤ a
	// handful), and stability keeps the result deterministic for equal
	// lengths.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && len(ordered[j]) < len(ordered[j-1]); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	out := intersectPair(ordered[0], ordered[1], nil)
	for i := 2; i < len(ordered) && len(out) > 0; i++ {
		out = intersectPair(out, ordered[i], out[:0])
	}
	return out
}

// intersectPair intersects two ascending-sorted lists into dst (which may
// alias a's backing array: writes never outrun reads because the output is
// a subsequence of a). It picks galloping or linear merge by length ratio.
func intersectPair(a, b []int32, dst []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopIntersect(a, b, dst)
	}
	return linearIntersect(a, b, dst)
}

// linearIntersect is the textbook two-pointer merge, O(|a|+|b|).
func linearIntersect(a, b []int32, dst []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av < bv:
			i++
		case av > bv:
			j++
		default:
			dst = append(dst, av)
			i++
			j++
		}
	}
	return dst
}

// gallopIntersect probes b for each element of a with exponential search
// from the previous match position, O(|a|·log|b|) worst case and better when
// matches cluster.
func gallopIntersect(a, b []int32, dst []int32) []int32 {
	lo := 0
	for _, v := range a {
		// Exponential probe: find a window [lo, hi) with b[hi-1] >= v.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < v {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search within the window.
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(b) {
			return dst
		}
		if b[lo] == v {
			dst = append(dst, v)
			lo++
		}
	}
	return dst
}

// IntersectCost estimates the comparison count Intersect(lists...) would
// spend, mirroring its smallest-first pairwise strategy and per-pair
// linear-vs-galloping choice. The scan planner uses it to weigh full
// intersection against residual verification; it must be a pure function of
// the list lengths so plans — and therefore metered costs — stay
// deterministic.
func IntersectCost(lens ...int) float64 {
	switch len(lens) {
	case 0, 1:
		return 0
	}
	ordered := make([]int, len(lens))
	copy(ordered, lens)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j] < ordered[j-1]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	cost := 0.0
	small := ordered[0]
	for _, large := range ordered[1:] {
		if small == 0 {
			break
		}
		if large >= gallopRatio*small {
			cost += float64(small) * log2ceil(large)
		} else {
			cost += float64(small + large)
		}
		// The running result can only shrink; its true size is data-dependent,
		// so the estimate keeps the conservative upper bound |small|.
	}
	return cost
}

// log2ceil returns ceil(log2(n)) for n >= 1 as a float64, without math.Log2
// so the estimate is exact and platform-independent.
func log2ceil(n int) float64 {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return float64(bits)
}
