package dataset

import (
	"strings"
	"sync"
	"testing"

	"metainsight/internal/model"
)

func buildSalesTable(t *testing.T) *Table {
	t.Helper()
	b := NewBuilder("sales", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Sales", Kind: model.KindMeasure},
	})
	rows := []struct {
		city, month string
		sales       float64
	}{
		{"LA", "Mar", 10}, {"LA", "Jan", 20}, {"SF", "Feb", 5},
		{"SF", "Jan", 7}, {"LA", "Feb", 30},
	}
	for _, r := range rows {
		b.AddRow([]string{r.city, r.month}, []float64{r.sales})
	}
	return b.Build()
}

func TestBuilderBasicShape(t *testing.T) {
	tab := buildSalesTable(t)
	if tab.Rows() != 5 || tab.Cols() != 3 || tab.Cells() != 15 {
		t.Fatalf("shape = %d rows %d cols %d cells", tab.Rows(), tab.Cols(), tab.Cells())
	}
	if tab.Name() != "sales" {
		t.Errorf("name = %q", tab.Name())
	}
}

func TestTemporalDomainOrdering(t *testing.T) {
	tab := buildSalesTable(t)
	months := tab.Dimension("Month").Domain()
	want := []string{"Jan", "Feb", "Mar"}
	for i, m := range want {
		if months[i] != m {
			t.Fatalf("month domain = %v, want %v", months, want)
		}
	}
}

func TestCategoricalDomainLexical(t *testing.T) {
	tab := buildSalesTable(t)
	cities := tab.Dimension("City").Domain()
	if cities[0] != "LA" || cities[1] != "SF" {
		t.Fatalf("city domain = %v", cities)
	}
}

func TestCodesRoundtrip(t *testing.T) {
	tab := buildSalesTable(t)
	col := tab.Dimension("Month")
	// Row 0 was ("LA","Mar",10); after the temporal re-sort its code must
	// still decode to "Mar".
	if got := col.Value(int(col.CodeAt(0))); got != "Mar" {
		t.Errorf("row 0 month = %q, want Mar", got)
	}
	if col.Code("Jan") != 0 {
		t.Errorf("Code(Jan) = %d", col.Code("Jan"))
	}
	if col.Code("Nope") != -1 {
		t.Errorf("Code of absent value should be -1")
	}
}

func TestSiblingGroup(t *testing.T) {
	tab := buildSalesTable(t)
	s := model.NewSubspace(model.Filter{Dim: "City", Value: "LA"})
	sg := tab.SiblingGroup(s, "City")
	if len(sg) != 2 {
		t.Fatalf("|SG| = %d", len(sg))
	}
	if v, _ := sg[0].Get("City"); v != "LA" {
		t.Errorf("first sibling = %v", sg[0])
	}
	// Sibling group on an unfiltered dimension extends the subspace.
	sg2 := tab.SiblingGroup(s, "Month")
	if len(sg2) != 3 || !sg2[0].Has("City") {
		t.Errorf("SG over Month = %v", sg2)
	}
}

func TestValidate(t *testing.T) {
	tab := buildSalesTable(t)
	good := model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}
	if err := tab.Validate(good); err != nil {
		t.Errorf("valid scope rejected: %v", err)
	}
	cases := []model.DataScope{
		{Subspace: good.Subspace, Breakdown: "Nope", Measure: model.Sum("Sales")},
		{Subspace: model.NewSubspace(model.Filter{Dim: "Nope", Value: "x"}), Breakdown: "Month", Measure: model.Sum("Sales")},
		{Subspace: model.NewSubspace(model.Filter{Dim: "City", Value: "Chicago"}), Breakdown: "Month", Measure: model.Sum("Sales")},
		{Subspace: good.Subspace, Breakdown: "Month", Measure: model.Sum("Nope")},
	}
	for i, ds := range cases {
		if err := tab.Validate(ds); err == nil {
			t.Errorf("case %d: invalid scope accepted: %s", i, ds)
		}
	}
	if err := tab.Validate(model.DataScope{Subspace: good.Subspace, Breakdown: "Month", Measure: model.Count("*")}); err != nil {
		t.Errorf("COUNT(*) rejected: %v", err)
	}
}

func TestDefaultMeasures(t *testing.T) {
	tab := buildSalesTable(t)
	ms := tab.DefaultMeasures()
	if len(ms) != 2 || ms[0].Key() != "SUM(Sales)" || ms[1].Key() != "COUNT(*)" {
		t.Errorf("DefaultMeasures = %v", ms)
	}
}

func TestBuilderPanicsOnDuplicateField(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("x", []model.Field{
		{Name: "A", Kind: model.KindCategorical},
		{Name: "A", Kind: model.KindMeasure},
	})
}

func TestTemporalLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"Jan", "Feb", true},
		{"Dec", "Jan", false},
		{"January", "feb", true},
		{"Q1", "Q3", true},
		{"Q4", "Q2", false},
		{"2019", "2020", true},
		{"Mon", "Sunday", true},
		{"2020-01", "2020-02", true},
		{"W02", "W10", true},
		{"Week 2", "Week 10", true}, // numeric, not lexical
	}
	for _, c := range cases {
		if got := TemporalLess(c.a, c.b); got != c.want {
			t.Errorf("TemporalLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLooksTemporal(t *testing.T) {
	if !LooksTemporal([]string{"Jan", "Feb", "Mar"}) {
		t.Error("months should look temporal")
	}
	if !LooksTemporal([]string{"2018", "2019", "2020"}) {
		t.Error("years should look temporal")
	}
	if !LooksTemporal([]string{"2020-01-15", "2020-02-20"}) {
		t.Error("ISO dates should look temporal")
	}
	if LooksTemporal([]string{"LA", "SF"}) {
		t.Error("cities should not look temporal")
	}
	if LooksTemporal([]string{"12", "34"}) {
		t.Error("bare small integers are ambiguous, not temporal")
	}
}

func TestLoadCSVInference(t *testing.T) {
	csv := "City,Month,Sales\nLA,Jan,100\nSF,Feb,200\nLA,Mar,50\n"
	tab, err := LoadCSV(strings.NewReader(csv), LoadOptions{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := map[string]model.FieldKind{
		"City": model.KindCategorical, "Month": model.KindTemporal, "Sales": model.KindMeasure,
	}
	for _, f := range tab.Fields() {
		if wantKinds[f.Name] != f.Kind {
			t.Errorf("field %s inferred %v", f.Name, f.Kind)
		}
	}
	if tab.Rows() != 3 {
		t.Errorf("rows = %d", tab.Rows())
	}
	if got := tab.MeasureColumn("Sales").At(1); got != 200 {
		t.Errorf("Sales[1] = %v", got)
	}
}

func TestLoadCSVOverridesAndErrors(t *testing.T) {
	csv := "ID,Val\n1,10\n2,20\n"
	tab, err := LoadCSV(strings.NewReader(csv), LoadOptions{
		Name:          "t",
		KindOverrides: map[string]model.FieldKind{"ID": model.KindCategorical},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Dimension("ID") == nil {
		t.Error("override to categorical ignored")
	}
	if _, err := FromRecords("t", []string{"A", "B"}, [][]string{{"x"}}, LoadOptions{}); err == nil {
		t.Error("ragged record accepted")
	}
}

func TestLoadCSVNumberFormats(t *testing.T) {
	csv := "K,V\na,\"1,234.5\"\nb,-7\nc,\n"
	tab, err := LoadCSV(strings.NewReader(csv), LoadOptions{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	col := tab.MeasureColumn("V")
	if col.At(0) != 1234.5 || col.At(1) != -7 || col.At(2) != 0 {
		t.Errorf("parsed = %v %v %v", col.At(0), col.At(1), col.At(2))
	}
}

func TestMaxDimensionCardinalityDropsColumn(t *testing.T) {
	header := []string{"ID", "Group", "V"}
	var records [][]string
	for i := 0; i < 30; i++ {
		records = append(records, []string{string(rune('a' + i)), "g", "1"})
	}
	tab, err := FromRecords("t", header, records, LoadOptions{MaxDimensionCardinality: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Dimension("ID") != nil {
		t.Error("high-cardinality column not dropped")
	}
	if tab.Dimension("Group") == nil {
		t.Error("low-cardinality column wrongly dropped")
	}
}

func TestPostingsMatchScan(t *testing.T) {
	tab := buildSalesTable(t)
	for _, col := range tab.Dimensions() {
		for code := 0; code < col.Cardinality(); code++ {
			rows := col.Postings(code)
			// Reference: direct scan.
			var want []int32
			for r := 0; r < tab.Rows(); r++ {
				if col.CodeAt(r) == int32(code) {
					want = append(want, int32(r))
				}
			}
			if len(rows) != len(want) {
				t.Fatalf("%s[%s]: %d rows, want %d", col.Name, col.Value(code), len(rows), len(want))
			}
			for i := range want {
				if rows[i] != want[i] {
					t.Fatalf("%s[%s]: row %d = %d, want %d", col.Name, col.Value(code), i, rows[i], want[i])
				}
			}
		}
		if col.Postings(-1) != nil || col.Postings(col.Cardinality()) != nil {
			t.Error("out-of-range code should return nil")
		}
	}
}

func TestPostingsConcurrent(t *testing.T) {
	tab := buildSalesTable(t)
	col := tab.Dimension("City")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if len(col.Postings(0))+len(col.Postings(1)) != tab.Rows() {
					t.Error("postings do not partition the rows")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestDeriveTemporal(t *testing.T) {
	b := NewBuilder("tx", []model.Field{
		{Name: "Store", Kind: model.KindCategorical},
		{Name: "Date", Kind: model.KindTemporal},
		{Name: "Amount", Kind: model.KindMeasure},
	})
	b.AddRow([]string{"A", "2019-01-15"}, []float64{10}) // Tuesday, Q1
	b.AddRow([]string{"A", "2019-04-07"}, []float64{20}) // Sunday, Q2
	b.AddRow([]string{"B", "2020-12-25"}, []float64{30}) // Friday, Q4
	tab, err := DeriveTemporal(b.Build(), "Date")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]string{
		"Date Year":    {"2019", "2019", "2020"},
		"Date Quarter": {"Q1", "Q2", "Q4"},
		"Date Month":   {"Jan", "Apr", "Dec"},
		"Date Week":    {"W03", "W14", "W52"},
		"Date Weekday": {"Tue", "Sun", "Fri"},
	}
	for name, want := range cases {
		col := tab.Dimension(name)
		if col == nil {
			t.Fatalf("derived column %q missing", name)
		}
		if col.Kind != model.KindTemporal {
			t.Errorf("%q is %v, want temporal", name, col.Kind)
		}
		for r, w := range want {
			if got := col.Value(int(col.CodeAt(r))); got != w {
				t.Errorf("%s row %d = %q, want %q", name, r, got, w)
			}
		}
	}
	// Originals preserved.
	if tab.Dimension("Date") == nil || tab.Dimension("Store") == nil {
		t.Error("source columns lost")
	}
	if tab.MeasureColumn("Amount").At(2) != 30 {
		t.Error("measure values lost")
	}
	// Temporal dictionary ordering holds on derived columns.
	q := tab.Dimension("Date Quarter").Domain()
	if q[0] != "Q1" || q[len(q)-1] != "Q4" {
		t.Errorf("quarter domain order = %v", q)
	}
}

func TestDeriveTemporalMonthPrecision(t *testing.T) {
	b := NewBuilder("tx", []model.Field{
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "V", Kind: model.KindMeasure},
	})
	b.AddRow([]string{"2021-03"}, []float64{1})
	b.AddRow([]string{"2021-07"}, []float64{2})
	tab, err := DeriveTemporal(b.Build(), "Month")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Dimension("Month Weekday") != nil || tab.Dimension("Month Week") != nil {
		t.Error("day-precision columns derived from month-precision dates")
	}
	if tab.Dimension("Month Quarter") == nil {
		t.Error("quarter missing")
	}
}

func TestDeriveTemporalErrors(t *testing.T) {
	tab := buildSalesTable(t)
	if _, err := DeriveTemporal(tab, "Nope"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := DeriveTemporal(tab, "Month"); err == nil {
		t.Error("month names are not parseable dates; expected an error")
	}
}
