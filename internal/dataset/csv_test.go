package dataset

import (
	"strings"
	"testing"

	"metainsight/internal/model"
)

func TestRaggedRowPolicy(t *testing.T) {
	in := "City,Sales\nLA,100\nSF\nNY,50,extra\nLA,25\n"

	if _, err := LoadCSV(strings.NewReader(in), LoadOptions{Name: "t"}); err == nil {
		t.Fatal("default policy accepted ragged rows")
	}

	tab, err := LoadCSV(strings.NewReader(in), LoadOptions{Name: "t", RaggedRows: RowSkip})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 {
		t.Errorf("rows = %d, want 2", tab.Rows())
	}
	st := tab.LoadStats()
	if st.RaggedSkipped != 2 || st.RowsLoaded != 2 {
		t.Errorf("stats = %+v, want RaggedSkipped=2 RowsLoaded=2", st)
	}
}

func TestBadMeasurePolicy(t *testing.T) {
	in := "City,Sales\nLA,100\nSF,NaN\nNY,+Inf\nLA,25\n"

	if _, err := LoadCSV(strings.NewReader(in), LoadOptions{Name: "t"}); err == nil {
		t.Fatal("default policy accepted a NaN measure")
	}

	tab, err := LoadCSV(strings.NewReader(in), LoadOptions{Name: "t", BadMeasures: RowSkip})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 {
		t.Errorf("rows = %d, want 2", tab.Rows())
	}
	st := tab.LoadStats()
	if st.BadMeasureSkipped != 2 || st.RowsLoaded != 2 {
		t.Errorf("stats = %+v, want BadMeasureSkipped=2 RowsLoaded=2", st)
	}
	col := tab.MeasureColumn("Sales")
	if col.At(0) != 100 || col.At(1) != 25 {
		t.Errorf("kept values = %v %v, want 100 25", col.At(0), col.At(1))
	}
}

func TestEmptyMeasureCellIsNotDefect(t *testing.T) {
	in := "City,Sales\nLA,100\nSF,\n"
	tab, err := LoadCSV(strings.NewReader(in), LoadOptions{Name: "t", BadMeasures: RowSkip})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 || tab.LoadStats().BadMeasureSkipped != 0 {
		t.Errorf("rows=%d stats=%+v, want empty cell loaded as 0", tab.Rows(), tab.LoadStats())
	}
}

func TestUnparseableMeasureUnderOverrideSkips(t *testing.T) {
	// Forcing a mixed column to measure makes "n/a" cells defects; RowSkip
	// must drop those rows rather than fail the load.
	in := "K,V\na,1\nb,n/a\nc,3\n"
	tab, err := LoadCSV(strings.NewReader(in), LoadOptions{
		Name:          "t",
		KindOverrides: map[string]model.FieldKind{"V": model.KindMeasure},
		BadMeasures:   RowSkip,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 || tab.LoadStats().BadMeasureSkipped != 1 {
		t.Errorf("rows=%d stats=%+v, want 2 rows and 1 bad-measure skip", tab.Rows(), tab.LoadStats())
	}
}
