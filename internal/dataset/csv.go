package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"metainsight/internal/model"
)

// RowPolicy selects how ingestion treats a defective row.
type RowPolicy int

const (
	// RowError rejects the whole load with an error naming the first
	// defective row (the default: defects should be loud).
	RowError RowPolicy = iota
	// RowSkip drops the defective row, counts it in the table's LoadStats,
	// and continues — best-effort ingestion of dirty exports.
	RowSkip
)

// LoadStats counts what ingestion kept and dropped; Table.LoadStats surfaces
// it on the load result.
type LoadStats struct {
	// RowsLoaded is the number of records that entered the table.
	RowsLoaded int
	// RaggedSkipped counts rows dropped for having a column count different
	// from the header's (RaggedRows = RowSkip only).
	RaggedSkipped int
	// BadMeasureSkipped counts rows dropped for a non-finite (NaN/±Inf) or
	// unparseable measure cell (BadMeasures = RowSkip only).
	BadMeasureSkipped int
	// Postings is the compressed posting-index footprint across all dimension
	// columns: per-container-type counts, compressed bytes, and — via
	// CompressionRatio — the saving over 4-byte-per-row sorted slices.
	// Table.LoadStats fills it in (building the indexes if needed); it is not
	// an ingestion counter.
	Postings BitmapStats
}

// LoadOptions controls CSV ingestion and type inference.
type LoadOptions struct {
	// Name is the display name of the resulting table; defaults to the file
	// base name for LoadCSVFile and "csv" for LoadCSV.
	Name string
	// KindOverrides forces specific columns to a kind, bypassing inference.
	KindOverrides map[string]model.FieldKind
	// MaxDimensionCardinality demotes high-cardinality string columns
	// (e.g. free-text IDs) from the dimension set: columns whose distinct
	// count exceeds this limit are dropped from analysis. 0 means no limit.
	MaxDimensionCardinality int
	// RaggedRows selects the treatment of rows whose column count differs
	// from the header's. The default (RowError) rejects the load.
	RaggedRows RowPolicy
	// BadMeasures selects the treatment of rows with a NaN, ±Inf or
	// unparseable cell in a measure column. The default (RowError) rejects
	// the load: non-finite values would silently poison every aggregate
	// downstream. Empty cells are not defects; they load as 0.
	BadMeasures RowPolicy
}

// LoadCSVFile reads a CSV file with a header row and builds a Table,
// inferring each column's kind (categorical / temporal / measure).
func LoadCSVFile(path string, opts LoadOptions) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opts.Name == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		opts.Name = strings.TrimSuffix(base, ".csv")
	}
	return LoadCSV(f, opts)
}

// LoadCSV reads CSV data with a header row and builds a Table. Column kinds
// are inferred: a column whose every non-empty cell parses as a number is a
// measure; a column whose values look temporal (months, quarters, years,
// dates — see LooksTemporal) is a temporal dimension; everything else is a
// categorical dimension. Overrides in opts take precedence.
func LoadCSV(r io.Reader, opts LoadOptions) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	// Column-count enforcement is deferred to FromRecords, where
	// opts.RaggedRows decides between rejecting and skip-and-count.
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row: %w", err)
		}
		records = append(records, rec)
	}
	if opts.Name == "" {
		opts.Name = "csv"
	}
	return FromRecords(opts.Name, header, records, opts)
}

// FromRecords builds a Table from an in-memory header + string records,
// applying the same inference rules as LoadCSV.
func FromRecords(name string, header []string, records [][]string, opts LoadOptions) (*Table, error) {
	ncols := len(header)
	seen := make(map[string]bool, ncols)
	for i, h := range header {
		h = strings.TrimSpace(h)
		if h == "" {
			return nil, fmt.Errorf("dataset: empty name for column %d", i+1)
		}
		if seen[h] {
			return nil, fmt.Errorf("dataset: duplicate column name %q", h)
		}
		seen[h] = true
		header[i] = h
	}
	var stats LoadStats
	if opts.RaggedRows == RowError {
		for i, rec := range records {
			if len(rec) != ncols {
				return nil, fmt.Errorf("dataset: row %d has %d columns, header has %d", i+1, len(rec), ncols)
			}
		}
	} else {
		kept := make([][]string, 0, len(records))
		for _, rec := range records {
			if len(rec) != ncols {
				stats.RaggedSkipped++
				continue
			}
			kept = append(kept, rec)
		}
		records = kept
	}
	kinds := make([]model.FieldKind, ncols)
	keep := make([]bool, ncols)
	for c := 0; c < ncols; c++ {
		keep[c] = true
		if k, ok := opts.KindOverrides[header[c]]; ok {
			kinds[c] = k
			continue
		}
		col := columnValues(records, c)
		switch {
		case allNumeric(col):
			kinds[c] = model.KindMeasure
		case LooksTemporal(col):
			kinds[c] = model.KindTemporal
		default:
			kinds[c] = model.KindCategorical
			if opts.MaxDimensionCardinality > 0 &&
				distinctCount(col) > opts.MaxDimensionCardinality {
				keep[c] = false
			}
		}
	}
	var fields []model.Field
	for c := 0; c < ncols; c++ {
		if keep[c] {
			fields = append(fields, model.Field{Name: header[c], Kind: kinds[c]})
		}
	}
	b := NewBuilder(name, fields)
	dimVals := make([]string, 0, ncols)
	meaVals := make([]float64, 0, ncols)
rows:
	for ri, rec := range records {
		dimVals = dimVals[:0]
		meaVals = meaVals[:0]
		for c := 0; c < ncols; c++ {
			if !keep[c] {
				continue
			}
			if kinds[c] == model.KindMeasure {
				v, err := parseNumber(rec[c])
				if err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
					err = fmt.Errorf("non-finite value %q", strings.TrimSpace(rec[c]))
				}
				if err != nil {
					if opts.BadMeasures == RowSkip {
						stats.BadMeasureSkipped++
						continue rows
					}
					return nil, fmt.Errorf("dataset: row %d column %q: %w", ri+1, header[c], err)
				}
				meaVals = append(meaVals, v)
			} else {
				dimVals = append(dimVals, strings.TrimSpace(rec[c]))
			}
		}
		b.AddRow(dimVals, meaVals)
		stats.RowsLoaded++
	}
	tab := b.Build()
	tab.load = stats
	return tab, nil
}

func columnValues(records [][]string, c int) []string {
	out := make([]string, len(records))
	for i, rec := range records {
		out[i] = rec[c]
	}
	return out
}

func distinctCount(values []string) int {
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[strings.TrimSpace(v)] = true
	}
	return len(set)
}

func allNumeric(values []string) bool {
	any := false
	for _, v := range values {
		s := strings.TrimSpace(v)
		if s == "" {
			continue
		}
		if _, err := parseNumber(s); err != nil {
			return false
		}
		any = true
	}
	return any
}

func parseNumber(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	s = strings.ReplaceAll(s, ",", "")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number: %q", s)
	}
	return v, nil
}
