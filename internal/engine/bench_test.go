package engine

// Physical-layer benchmarks of the scan substrate: unit and augmented scans
// across filter depth (0–3), breakdown cardinality (small/large) and scan
// parallelism (1/4), each with the retained naive reference substrate as the
// baseline the speedups in BENCH_6.json are measured against. Run with
//
//	go test ./internal/engine -bench 'BenchmarkScan' -benchmem
//
// The "rows/op" metric is the simulated metered row count of the plan (what
// the cost model charges), not a throughput reading.

import (
	"fmt"
	"testing"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
	"metainsight/internal/workload"
)

// benchTables builds the two bench datasets once per process.
var benchTables = map[string]*dataset.Table{}

func benchTable(card string) *dataset.Table {
	if t, ok := benchTables[card]; ok {
		return t
	}
	var spec workload.GenSpec
	switch card {
	case "small":
		// 2880 cells × 35 rows ≈ 100k rows, breakdown cardinality 8.
		spec = workload.GenSpec{Name: "bench-small", Seed: 61, Cards: []int{8, 6, 5}, Periods: 12, Measures: 2, RowsPerCell: 35}
	case "large":
		// 221k distinct cells ≈ 221k rows, breakdown cardinality 64.
		spec = workload.GenSpec{Name: "bench-large", Seed: 67, Cards: []int{64, 24, 12}, Periods: 12, Measures: 2, RowsPerCell: 1}
	default:
		panic("unknown bench table " + card)
	}
	t := workload.Generate(spec)
	benchTables[card] = t
	return t
}

// benchSubspace builds a subspace with the given number of filters over the
// non-breakdown dimensions of a generated bench table.
func benchSubspace(tab *dataset.Table, nFilters int) model.Subspace {
	dims := []string{"DimB", "DimC", "Period"}
	sub := model.EmptySubspace
	for i := 0; i < nFilters && i < len(dims); i++ {
		col := tab.Dimension(dims[i])
		sub = sub.With(dims[i], col.Domain()[col.Cardinality()/2])
	}
	return sub
}

// benchScanUnit runs one substrate configuration of BenchmarkScanUnit.
func benchScanUnit(b *testing.B, sub Substrate, s model.Subspace) {
	var rows int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, r, err := sub.ScanUnit(s, "DimA")
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(float64(rows), "rows/op")
}

func BenchmarkScanUnit(b *testing.B) {
	for _, card := range []string{"small", "large"} {
		tab := benchTable(card)
		for nf := 0; nf <= 3; nf++ {
			s := benchSubspace(tab, nf)
			for _, par := range []int{1, 4} {
				vec := NewColumnarSubstrate(tab, WithScanParallelism(par))
				b.Run(fmt.Sprintf("table=%s/filters=%d/sub=vec/par=%d", card, nf, par), func(b *testing.B) {
					benchScanUnit(b, vec, s)
				})
			}
			ref := NewReferenceSubstrate(tab, nil)
			b.Run(fmt.Sprintf("table=%s/filters=%d/sub=ref", card, nf), func(b *testing.B) {
				benchScanUnit(b, ref, s)
			})
		}
	}
}

// benchScanAugmented runs one substrate configuration of
// BenchmarkScanAugmented.
func benchScanAugmented(b *testing.B, sub Substrate, s model.Subspace, ext string) {
	var rows int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, r, err := sub.ScanAugmented(s, "DimA", ext)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(float64(rows), "rows/op")
}

func BenchmarkScanAugmented(b *testing.B) {
	for _, card := range []string{"small", "large"} {
		tab := benchTable(card)
		for _, nf := range []int{0, 1, 2} {
			// Filters go on DimB/DimC; the augmentation dimension is Period,
			// so the base subspace never filters the ext dimension.
			dims := []string{"DimB", "DimC"}
			s := model.EmptySubspace
			for i := 0; i < nf; i++ {
				col := tab.Dimension(dims[i])
				s = s.With(dims[i], col.Domain()[col.Cardinality()/2])
			}
			for _, par := range []int{1, 4} {
				vec := NewColumnarSubstrate(tab, WithScanParallelism(par))
				b.Run(fmt.Sprintf("table=%s/filters=%d/sub=vec/par=%d", card, nf, par), func(b *testing.B) {
					benchScanAugmented(b, vec, s, "Period")
				})
			}
			ref := NewReferenceSubstrate(tab, nil)
			b.Run(fmt.Sprintf("table=%s/filters=%d/sub=ref", card, nf), func(b *testing.B) {
				benchScanAugmented(b, ref, s, "Period")
			})
		}
	}
}
