package engine

import (
	"fmt"
	"testing"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
	"metainsight/internal/obs"
)

// clusteredTable builds a table whose X and Y dimensions are both sorted at
// block granularity: X takes runs of rows/4, Y cycles in runs of 64 inside
// each X run. With a 64-row morsel, zone maps prune an {X, Y} filter pair to
// a single block while either posting list alone holds rows/4.
func clusteredTable(rows int) *dataset.Table {
	b := dataset.NewBuilder("clustered", []model.Field{
		{Name: "X", Kind: model.KindCategorical},
		{Name: "Y", Kind: model.KindCategorical},
		{Name: "B", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	for i := 0; i < rows; i++ {
		b.AddRow([]string{
			fmt.Sprintf("x%d", i/(rows/4)),
			fmt.Sprintf("y%d", (i/64)%4),
			fmt.Sprintf("b%d", i%8),
		}, []float64{float64(i%97) + 0.5})
	}
	return b.Build()
}

// TestPlanAutoPicksZone checks the cost model end to end: on a
// block-clustered table, a two-filter subspace plans through the zone maps,
// skips nearly every block, and still produces exactly the reference unit
// with a row count no higher than the most selective posting list.
func TestPlanAutoPicksZone(t *testing.T) {
	tab := clusteredTable(1024)
	o := obs.New(obs.Options{})
	c := NewColumnarSubstrate(tab, WithMorselSize(64), WithScanObserver(o))
	ref := NewReferenceSubstrate(tab, nil)

	sub := model.NewSubspace(
		model.Filter{Dim: "X", Value: "x0"},
		model.Filter{Dim: "Y", Value: "y0"},
	)
	got, rows, err := c.ScanUnit(sub, "B")
	if err != nil {
		t.Fatal(err)
	}
	want, refRows, err := ref.ScanUnit(sub, "B")
	if err != nil {
		t.Fatal(err)
	}
	if unitJSON(t, got) != unitJSON(t, want) {
		t.Fatalf("zone unit mismatch\n got %s\nwant %s", unitJSON(t, got), unitJSON(t, want))
	}
	if rows > refRows {
		t.Fatalf("zone plan scanned %d rows, reference scanned %d", rows, refRows)
	}
	if pr := c.PlannedRows(sub); pr != rows {
		t.Fatalf("PlannedRows %d != scanned %d", pr, rows)
	}

	s := o.Snapshot()
	if s.Counters["engine.physical.plan_zone"] == 0 {
		t.Fatal("cost model did not choose the zone plan on a block-clustered table")
	}
	// 1024 rows / 64-row blocks = 16 blocks; x0 covers blocks 0–3 and y0
	// survives only in the first block of each X run, so 15 are skipped.
	if skipped := s.Counters["engine.physical.blocks_skipped"]; skipped != 15 {
		t.Fatalf("blocks_skipped = %d, want 15", skipped)
	}
	if rows != 64 {
		t.Fatalf("zone plan rows = %d, want the single surviving 64-row block", rows)
	}
}

// TestForcedZoneMatchesReference drives the forced PlanZone strategy across
// parallelism and pooling, asserting byte-identical units against the
// reference even where the zone plan visits more rows than a posting drive.
func TestForcedZoneMatchesReference(t *testing.T) {
	tab := clusteredTable(512)
	ref := NewReferenceSubstrate(tab, nil)
	subs := []model.Subspace{
		model.NewSubspace(model.Filter{Dim: "X", Value: "x1"}),
		model.NewSubspace(model.Filter{Dim: "Y", Value: "y2"}),
		model.NewSubspace(
			model.Filter{Dim: "X", Value: "x3"},
			model.Filter{Dim: "Y", Value: "y1"},
		),
		model.NewSubspace(model.Filter{Dim: "X", Value: "nope"}),
	}
	for _, par := range []int{1, 4} {
		for _, pool := range []bool{true, false} {
			opts := []ColumnarOption{
				WithPlanMode(PlanZone), WithScanParallelism(par), WithMorselSize(64),
			}
			if !pool {
				opts = append(opts, WithoutAccumulatorPool())
			}
			c := NewColumnarSubstrate(tab, opts...)
			for _, sub := range subs {
				got, rows, err := c.ScanUnit(sub, "B")
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := ref.ScanUnit(sub, "B")
				if err != nil {
					t.Fatal(err)
				}
				if unitJSON(t, got) != unitJSON(t, want) {
					t.Fatalf("par=%d pool=%v [%s]: zone unit mismatch", par, pool, sub.Key())
				}
				if pr := c.PlannedRows(sub); pr != rows {
					t.Fatalf("par=%d pool=%v [%s]: PlannedRows %d != scanned %d",
						par, pool, sub.Key(), pr, rows)
				}
			}
		}
	}
}
