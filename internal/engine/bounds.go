package engine

// Impact-sum pruning bounds. For each (dimension, code) pair the engine can
// precompute the impact measure's exact sum over that value's rows — one
// O(dims × rows) pass, deterministic, built lazily on first use. Because the
// impact measure is additive and (when these bounds are enabled) non-negative,
// the share of any single filter is an upper bound on the impact of every
// conjunctive subspace containing that filter:
//
//	Impact(s) = m(rows(s)) / m(all)  ≤  min over f∈s of m(rows(f)) / m(all)
//
// since rows(s) ⊆ rows(f) and summing non-negative values over a subset never
// exceeds the superset's sum. The miner uses these bounds to discard frontier
// candidates below its impact thresholds before issuing any query
// (Config.EnableBoundPruning): a cut candidate's true impact is ≤ its bound,
// so it would have been discarded by the same threshold after the scan —
// bound pruning is result-identical to scan-then-prune by construction.
//
// Soundness guard: COUNT is always non-negative; SUM over a column containing
// a negative value is not (a subset's sum can exceed the superset's), so the
// bounds are disabled — every query returns the trivial bound 1 — when the
// impact column has any negative entry. The check is one pass at build time
// and deterministic.

import (
	"sync"

	"metainsight/internal/model"
)

// impactBounds caches the per-(dimension, code) impact shares of one engine.
type impactBounds struct {
	once  sync.Once
	sound bool
	share map[string][]float64 // dim -> code -> impact share of total
	max   map[string]float64   // dim -> max share over its codes
}

func (e *Engine) impactBoundsData() *impactBounds {
	b := &e.bnd
	b.once.Do(func() {
		var vals []float64
		if e.impact.Agg != model.AggCount {
			vals = e.tab.MeasureColumn(e.impact.Column).Values()
			for _, v := range vals {
				if v < 0 {
					return // b.sound stays false: bounds disabled
				}
			}
		}
		b.share = make(map[string][]float64, len(e.tab.Dimensions()))
		b.max = make(map[string]float64, len(e.tab.Dimensions()))
		for _, d := range e.tab.Dimensions() {
			sums := make([]float64, d.Cardinality())
			if vals == nil {
				for _, code := range d.Codes() {
					sums[code]++
				}
			} else {
				for r, code := range d.Codes() {
					sums[code] += vals[r]
				}
			}
			maxShare := 0.0
			for i := range sums {
				sums[i] /= e.totalImp
				if sums[i] > maxShare {
					maxShare = sums[i]
				}
			}
			b.share[d.Name] = sums
			b.max[d.Name] = maxShare
		}
		b.sound = true
	})
	return b
}

// BoundsSound reports whether the impact-sum bounds are usable: true for
// COUNT impact and for SUM impact over a non-negative column. When false,
// the bound queries below return the trivial bound 1 and bound pruning
// never fires.
func (e *Engine) BoundsSound() bool { return e.impactBoundsData().sound }

// ImpactShareUpperBound returns a deterministic upper bound on Impact(s)
// without scanning: the minimum single-filter impact share across s's
// filters (1 for the empty subspace or when the bounds are unsound, exactly
// 0 for a filter value absent from its column). The bound is a pure function
// of the immutable table and the subspace.
func (e *Engine) ImpactShareUpperBound(s model.Subspace) float64 {
	if len(s) == 0 {
		return 1
	}
	b := e.impactBoundsData()
	if !b.sound {
		return 1
	}
	ub := 1.0
	for _, f := range s {
		col := e.tab.Dimension(f.Dim)
		if col == nil {
			return 1
		}
		code := col.Code(f.Value)
		if code < 0 {
			return 0 // no rows match: impact is exactly zero
		}
		if sh := b.share[f.Dim][code]; sh < ub {
			ub = sh
		}
	}
	return ub
}

// DimMaxImpactShare returns the largest single-value impact share of a
// dimension: an upper bound on the impact of any subspace filtering on that
// dimension. Returns 1 when the bounds are unsound or the dimension is
// unknown. The miner uses it to skip an entire frontier expansion scan when
// even the dimension's heaviest value cannot reach MinSubspaceImpact.
func (e *Engine) DimMaxImpactShare(dim string) float64 {
	b := e.impactBoundsData()
	if !b.sound {
		return 1
	}
	m, ok := b.max[dim]
	if !ok {
		return 1
	}
	return m
}
