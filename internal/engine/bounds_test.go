package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

func boundsTable(seed int64, rows int, negatives bool) *dataset.Table {
	r := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("bounds", []model.Field{
		{Name: "A", Kind: model.KindCategorical},
		{Name: "B", Kind: model.KindCategorical},
		{Name: "C", Kind: model.KindCategorical},
		{Name: "Amount", Kind: model.KindMeasure},
	})
	for i := 0; i < rows; i++ {
		v := r.Float64() * 100
		if negatives && r.Intn(5) == 0 {
			v = -v
		}
		b.AddRow([]string{
			fmt.Sprintf("a%d", r.Intn(8)),
			fmt.Sprintf("b%d", r.Intn(5)),
			fmt.Sprintf("c%d", r.Intn(3)),
		}, []float64{v})
	}
	return b.Build()
}

// TestImpactShareUpperBoundSound checks the central soundness property over
// random subspaces and both additive impact measures: the bound never falls
// below the true impact, and the degenerate cases (empty subspace, absent
// value) return their exact values.
func TestImpactShareUpperBoundSound(t *testing.T) {
	tab := boundsTable(3, 1500, false)
	for _, impact := range []model.Measure{model.Count("*"), model.Sum("Amount")} {
		e, err := New(tab, Config{ImpactMeasure: impact})
		if err != nil {
			t.Fatal(err)
		}
		if !e.BoundsSound() {
			t.Fatalf("impact %v: bounds unexpectedly unsound", impact)
		}
		r := rand.New(rand.NewSource(7))
		for trial := 0; trial < 100; trial++ {
			sub := randomSubspace(r, tab, 1+r.Intn(3))
			ub := e.ImpactShareUpperBound(sub)
			truth, _, err := e.ImpactUnmetered(sub)
			if err != nil {
				t.Fatal(err)
			}
			if truth > ub+1e-12 {
				t.Fatalf("impact %v trial %d [%s]: true impact %g exceeds bound %g",
					impact, trial, sub.Key(), truth, ub)
			}
		}
		if ub := e.ImpactShareUpperBound(model.EmptySubspace); ub != 1 {
			t.Fatalf("empty subspace bound %g, want 1", ub)
		}
		absent := model.NewSubspace(model.Filter{Dim: "A", Value: "zzz"})
		if ub := e.ImpactShareUpperBound(absent); ub != 0 {
			t.Fatalf("absent value bound %g, want 0", ub)
		}
	}
}

// TestBoundsDisabledOnNegativeSum pins the soundness guard: SUM impact over
// a column with negative values must disable the bounds (trivial bound 1)
// because subset sums can exceed superset sums.
func TestBoundsDisabledOnNegativeSum(t *testing.T) {
	tab := boundsTable(5, 400, true)
	e, err := New(tab, Config{ImpactMeasure: model.Sum("Amount")})
	if err != nil {
		t.Fatal(err)
	}
	if e.BoundsSound() {
		t.Fatal("bounds claim soundness over a negative-valued SUM column")
	}
	sub := model.NewSubspace(model.Filter{Dim: "A", Value: "a1"})
	if ub := e.ImpactShareUpperBound(sub); ub != 1 {
		t.Fatalf("unsound bounds returned %g, want trivial 1", ub)
	}
	if m := e.DimMaxImpactShare("A"); m != 1 {
		t.Fatalf("unsound DimMaxImpactShare returned %g, want trivial 1", m)
	}
}

// TestDimMaxImpactShare pins that the per-dimension bound dominates every
// single-value share and that unknown dimensions get the trivial bound.
func TestDimMaxImpactShare(t *testing.T) {
	tab := boundsTable(9, 800, false)
	e, err := New(tab, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range tab.Dimensions() {
		m := e.DimMaxImpactShare(d.Name)
		for _, v := range d.Domain() {
			truth, _, err := e.ImpactUnmetered(model.NewSubspace(model.Filter{Dim: d.Name, Value: v}))
			if err != nil {
				t.Fatal(err)
			}
			if truth > m+1e-12 {
				t.Fatalf("dim %s value %s: impact %g exceeds dim bound %g", d.Name, v, truth, m)
			}
		}
	}
	if m := e.DimMaxImpactShare("NoSuchDim"); m != 1 {
		t.Fatalf("unknown dimension bound %g, want 1", m)
	}
}
