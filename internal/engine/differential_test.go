package engine

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

// unitJSON canonicalizes a unit for byte comparison. encoding/json sorts map
// keys, so equal units marshal to equal bytes; float64 formatting is exact
// (shortest round-trip), so any bit difference in an aggregate shows up.
func unitJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// augJSON canonicalizes an augmented-scan result for byte comparison.
func augJSON(t *testing.T, units map[string]any) string {
	t.Helper()
	keys := make([]string, 0, len(units))
	for k := range units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + unitJSON(t, units[k]) + ";"
	}
	return s
}

// diffSubstrates enumerates every physical configuration of the vectorized
// substrate the differential test compares against the reference: each plan
// mode (including the forced zone-map strategy) crossed with parallelism 1/4
// and pooled vs fresh accumulators, all with a small morsel size so
// multi-morsel merging and zone-block pruning happen on test-sized tables.
func diffSubstrates(tab *dataset.Table, minMax map[string]bool) map[string]*ColumnarSubstrate {
	subs := make(map[string]*ColumnarSubstrate)
	for _, mode := range []struct {
		name string
		m    PlanMode
	}{{"auto", PlanAuto}, {"intersect", PlanIntersect}, {"residual", PlanResidual}, {"zone", PlanZone}, {"bitmap", PlanBitmap}} {
		for _, par := range []int{1, 4} {
			for _, pool := range []bool{true, false} {
				opts := []ColumnarOption{
					WithPlanMode(mode.m),
					WithScanParallelism(par),
					WithMorselSize(64),
					WithMinMaxColumns(minMax),
				}
				if !pool {
					opts = append(opts, WithoutAccumulatorPool())
				}
				name := fmt.Sprintf("%s/par%d/pool=%v", mode.name, par, pool)
				subs[name] = NewColumnarSubstrate(tab, opts...)
			}
		}
	}
	return subs
}

// randomSubspace draws a subspace of the given filter depth; values are drawn
// from the dimension's domain, or occasionally set to an absent value to hit
// the no-matching-rows plan.
func randomSubspace(r *rand.Rand, tab *dataset.Table, depth int) model.Subspace {
	dims := tab.DimensionNames()
	sub := model.EmptySubspace
	for d := 0; d < depth; d++ {
		dim := tab.Dimension(dims[r.Intn(len(dims))])
		if sub.Has(dim.Name) {
			continue
		}
		if r.Intn(10) == 0 {
			sub = sub.With(dim.Name, "___absent___")
		} else {
			sub = sub.With(dim.Name, dim.Domain()[r.Intn(dim.Cardinality())])
		}
	}
	return sub
}

// TestDifferentialScanUnit proves every physical configuration of the
// vectorized substrate produces byte-identical units to the retained naive
// reference scan. The random table's measures are integer-valued, so sums are
// exact and the comparison is insensitive to the (intentionally different)
// addition order of the morselized pipeline.
func TestDifferentialScanUnit(t *testing.T) {
	tab := randomTable(41, 700)
	for _, minMax := range []map[string]bool{nil, {"Sales": true}, {}} {
		ref := NewReferenceSubstrate(tab, minMax)
		subs := diffSubstrates(tab, minMax)
		r := rand.New(rand.NewSource(5))
		dims := tab.DimensionNames()
		for trial := 0; trial < 60; trial++ {
			sub := randomSubspace(r, tab, r.Intn(4))
			breakdown := dims[r.Intn(len(dims))]
			if sub.Has(breakdown) {
				continue
			}
			wantU, wantRows, err := ref.ScanUnit(sub, breakdown)
			if err != nil {
				t.Fatal(err)
			}
			want := unitJSON(t, wantU)
			for name, c := range subs {
				gotU, gotRows, err := c.ScanUnit(sub, breakdown)
				if err != nil {
					t.Fatal(err)
				}
				if got := unitJSON(t, gotU); got != want {
					t.Fatalf("trial %d %s [%s ⟂ %s]: unit mismatch\n got %s\nwant %s",
						trial, name, sub.Key(), breakdown, got, want)
				}
				// Intersection may visit fewer rows than the reference's
				// most-selective-list drive; it must never visit more, and the
				// substrate's own prediction must be exact. The forced zone
				// strategy is exempt from the upper bound: its surviving
				// blocks may hold more rows than the best posting list (under
				// PlanAuto the zone plan is only chosen when they do not).
				if gotRows > wantRows && !strings.HasPrefix(name, "zone/") {
					t.Fatalf("trial %d %s: scanned %d rows, reference scanned %d",
						trial, name, gotRows, wantRows)
				}
				if pr := c.PlannedRows(sub); pr != gotRows {
					t.Fatalf("trial %d %s: PlannedRows %d != scanned %d", trial, name, pr, gotRows)
				}
			}
		}
	}
}

// TestDifferentialScanAugmented is TestDifferentialScanUnit for the augmented
// scan path, including the per-ext-value unit splitting.
func TestDifferentialScanAugmented(t *testing.T) {
	tab := randomTable(43, 700)
	ref := NewReferenceSubstrate(tab, nil)
	subs := diffSubstrates(tab, nil)
	r := rand.New(rand.NewSource(9))
	dims := tab.DimensionNames()
	for trial := 0; trial < 40; trial++ {
		sub := randomSubspace(r, tab, r.Intn(3))
		breakdown := dims[r.Intn(len(dims))]
		ext := dims[r.Intn(len(dims))]
		if ext == breakdown || sub.Has(breakdown) {
			continue
		}
		base := sub.Without(ext)
		wantUnits, wantRows, err := ref.ScanAugmented(base, breakdown, ext)
		if err != nil {
			t.Fatal(err)
		}
		wm := make(map[string]any, len(wantUnits))
		for k, u := range wantUnits {
			wm[k] = u
		}
		want := augJSON(t, wm)
		for name, c := range subs {
			gotUnits, gotRows, err := c.ScanAugmented(base, breakdown, ext)
			if err != nil {
				t.Fatal(err)
			}
			gm := make(map[string]any, len(gotUnits))
			for k, u := range gotUnits {
				gm[k] = u
			}
			if got := augJSON(t, gm); got != want {
				t.Fatalf("trial %d %s [%s ⟂ %s +%s]: augmented mismatch\n got %s\nwant %s",
					trial, name, base.Key(), breakdown, ext, got, want)
			}
			if gotRows > wantRows && !strings.HasPrefix(name, "zone/") {
				t.Fatalf("trial %d %s: scanned %d rows, reference scanned %d", trial, name, gotRows, wantRows)
			}
		}
	}
}

// TestDifferentialFractionalParallelism checks bit-identity where it is
// actually promised for arbitrary floats: for a fixed plan mode and morsel
// size, every parallelism and pooling choice produces the same bits, because
// morsel boundaries and merge order are fixed. (Cross-plan-mode identity for
// fractional values is not promised — different row orders regroup float
// additions — which is exactly why the mode is pinned per configuration
// here.)
func TestDifferentialFractionalParallelism(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := dataset.NewBuilder("frac", []model.Field{
		{Name: "G", Kind: model.KindCategorical},
		{Name: "H", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	for i := 0; i < 1000; i++ {
		b.AddRow([]string{
			fmt.Sprintf("g%d", r.Intn(7)),
			fmt.Sprintf("h%d", r.Intn(5)),
		}, []float64{r.NormFloat64() * 1e3})
	}
	tab := b.Build()

	for _, mode := range []PlanMode{PlanIntersect, PlanResidual, PlanZone, PlanBitmap} {
		var want string
		for _, par := range []int{1, 2, 8} {
			for _, pool := range []bool{true, false} {
				opts := []ColumnarOption{
					WithPlanMode(mode), WithScanParallelism(par), WithMorselSize(64),
				}
				if !pool {
					opts = append(opts, WithoutAccumulatorPool())
				}
				c := NewColumnarSubstrate(tab, opts...)
				sub := model.NewSubspace(model.Filter{Dim: "H", Value: "h1"})
				u, _, err := c.ScanUnit(sub, "G")
				if err != nil {
					t.Fatal(err)
				}
				got := unitJSON(t, u)
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("mode %v par %d pool %v: fractional bits differ\n got %s\nwant %s",
						mode, par, pool, got, want)
				}
			}
		}
	}
}

// TestDifferentialPostingsRepresentation pins the two postings
// representations against each other: for every random subspace, the
// compressed-bitmap plan (PlanBitmap) and the sorted-slice plan
// (PlanIntersect) must produce byte-identical units AND identical planned
// row counts — they compute the same exact intersection, so everything
// metered off the plan (costs, Stats) is bit-identical between
// representations. Fractional measures are used deliberately: equal row
// order means equal float bits, a stronger pin than value equality.
func TestDifferentialPostingsRepresentation(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	b := dataset.NewBuilder("repr", []model.Field{
		{Name: "G", Kind: model.KindCategorical},
		{Name: "H", Kind: model.KindCategorical},
		{Name: "K", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	for i := 0; i < 2000; i++ {
		b.AddRow([]string{
			fmt.Sprintf("g%d", r.Intn(9)),
			fmt.Sprintf("h%d", r.Intn(6)),
			fmt.Sprintf("k%d", r.Intn(4)),
		}, []float64{r.NormFloat64() * 1e3})
	}
	tab := b.Build()
	slice := NewColumnarSubstrate(tab, WithPlanMode(PlanIntersect), WithMorselSize(64))
	bitmap := NewColumnarSubstrate(tab, WithPlanMode(PlanBitmap), WithMorselSize(64))
	dims := tab.DimensionNames()
	for trial := 0; trial < 80; trial++ {
		sub := randomSubspace(r, tab, 1+r.Intn(3))
		breakdown := dims[r.Intn(len(dims))]
		if sub.Has(breakdown) {
			continue
		}
		su, srows, err := slice.ScanUnit(sub, breakdown)
		if err != nil {
			t.Fatal(err)
		}
		bu, brows, err := bitmap.ScanUnit(sub, breakdown)
		if err != nil {
			t.Fatal(err)
		}
		if srows != brows {
			t.Fatalf("trial %d [%s]: slice scanned %d rows, bitmap %d", trial, sub.Key(), srows, brows)
		}
		if sj, bj := unitJSON(t, su), unitJSON(t, bu); sj != bj {
			t.Fatalf("trial %d [%s ⟂ %s]: representations disagree\nslice  %s\nbitmap %s",
				trial, sub.Key(), breakdown, sj, bj)
		}
	}
}

// TestDifferentialEdgeCases pins the plan edge semantics: an absent filter
// value scans zero rows and yields an empty unit; a filter matching no rows
// on one ext value yields no unit for that value.
func TestDifferentialEdgeCases(t *testing.T) {
	tab := randomTable(47, 200)
	c := NewColumnarSubstrate(tab, WithMorselSize(32))
	ref := NewReferenceSubstrate(tab, nil)

	sub := model.NewSubspace(model.Filter{Dim: "City", Value: "Atlantis"})
	u, rows, err := c.ScanUnit(sub, "Month")
	if err != nil {
		t.Fatal(err)
	}
	if rows != 0 || len(u.GroupKeys) != 0 {
		t.Fatalf("absent value: rows=%d groups=%d, want 0/0", rows, len(u.GroupKeys))
	}
	ru, rrows, _ := ref.ScanUnit(sub, "Month")
	if rrows != 0 || unitJSON(t, u) != unitJSON(t, ru) {
		t.Fatalf("absent value: reference disagrees (rows=%d)", rrows)
	}
	if pr := c.PlannedRows(sub); pr != 0 {
		t.Fatalf("absent value: PlannedRows=%d, want 0", pr)
	}

	// Multi-filter subspace whose intersection is empty but whose individual
	// posting lists are not.
	b := dataset.NewBuilder("e", []model.Field{
		{Name: "A", Kind: model.KindCategorical},
		{Name: "B", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	b.AddRow([]string{"a1", "b1"}, []float64{1})
	b.AddRow([]string{"a2", "b2"}, []float64{2})
	tab2 := b.Build()
	for _, mode := range []PlanMode{PlanIntersect, PlanResidual, PlanBitmap} {
		c2 := NewColumnarSubstrate(tab2, WithPlanMode(mode))
		disjoint := model.NewSubspace(
			model.Filter{Dim: "A", Value: "a1"},
			model.Filter{Dim: "B", Value: "b2"},
		)
		u2, _, err := c2.ScanUnit(disjoint, "A")
		if err != nil {
			t.Fatal(err)
		}
		if len(u2.GroupKeys) != 0 {
			t.Fatalf("mode %v: disjoint filters produced groups %v", mode, u2.GroupKeys)
		}
		ref2 := NewReferenceSubstrate(tab2, nil)
		ru2, _, _ := ref2.ScanUnit(disjoint, "A")
		if unitJSON(t, u2) != unitJSON(t, ru2) {
			t.Fatalf("mode %v: disjoint unit differs from reference", mode)
		}
	}
}
