package engine

// Fused aggregation kernels and the morsel-parallel scan driver behind
// ColumnarSubstrate. One scan proceeds in three stages, each a tight loop
// over flat slices with no closure captures:
//
//  1. selection — the plan's driving rows for the morsel, filtered by any
//     residual filters into a selection vector of row ids;
//  2. group ids — one gather computing each selected row's accumulator cell;
//  3. aggregation — one pass per measure column: count/sum always, min/max
//     fused into the same loop only for measure columns in the
//     needed-aggregate set (first-touch initialization, so there is no
//     O(cells) ±Inf fill).
//
// The driving row set is split into fixed-size morsels. Each morsel
// accumulates into its own (pooled) accumulator; partials are merged into
// the scan's result strictly in morsel-index order. Because the morsel
// boundaries depend only on the morsel size and the driving row count, and
// the merge order is fixed, every float addition has the same grouping at
// any parallelism — scan results are bit-identical for WithScanParallelism 1
// or 16. Scans whose driving set fits one morsel skip partials and merge
// entirely.

import (
	"math"
	"sync"
	"sync/atomic"

	"metainsight/internal/cache"
)

// scanAcc is one accumulator set: full-domain counts and per-measure sums
// (always), min/max arrays for needed measures only, the first-touch group
// list, and reusable selection/group-id scratch. Instances are pooled per
// substrate (see acquire/release).
type scanAcc struct {
	cells   int
	counts  []float64
	sums    [][]float64
	mins    [][]float64 // nil per measure when min/max is not needed
	maxs    [][]float64
	touched []int32 // cells first touched by this accumulator, in touch order
	gids    []int32 // scratch: group id per selected row
	sel     []int32 // scratch: selection vector under residual filters
}

// acquire returns a zeroed accumulator sized for cells, reusing a pooled one
// when available. counts and sums are zero-filled; min/max arrays hold
// garbage outside touched cells by design — they are initialized at first
// touch and only ever read for cells with a non-zero count.
func (c *ColumnarSubstrate) acquire(cells int) *scanAcc {
	var a *scanAcc
	if !c.noPool {
		if v := c.pool.Get(); v != nil {
			a = v.(*scanAcc)
		}
	}
	if a == nil {
		a = &scanAcc{
			sums: make([][]float64, len(c.mcols)),
			mins: make([][]float64, len(c.mcols)),
			maxs: make([][]float64, len(c.mcols)),
		}
	}
	a.cells = cells
	a.counts = growFloats(a.counts, cells)
	zeroFloats(a.counts)
	for i := range c.mcols {
		a.sums[i] = growFloats(a.sums[i], cells)
		zeroFloats(a.sums[i])
		if c.needMM[i] {
			a.mins[i] = growFloats(a.mins[i], cells)
			a.maxs[i] = growFloats(a.maxs[i], cells)
		}
	}
	a.touched = a.touched[:0]
	return a
}

// release returns an accumulator to the pool (a no-op without pooling).
func (c *ColumnarSubstrate) release(a *scanAcc) {
	if c.noPool || a == nil {
		return
	}
	c.pool.Put(a)
}

// resetTouched re-zeroes exactly the cells this accumulator touched, making
// it reusable for the next morsel in O(touched · measures) instead of
// O(cells · measures).
func (a *scanAcc) resetTouched() {
	for _, g := range a.touched {
		a.counts[g] = 0
		for i := range a.sums {
			a.sums[i][g] = 0
		}
	}
	a.touched = a.touched[:0]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// scan executes the plan into one accumulator of the given cell count.
// dcodes is nil for unit scans; for augmented scans the cell of row r is
// dcodes[r]*bcard + bcodes[r].
func (c *ColumnarSubstrate) scan(plan *scanPlan, bcodes, dcodes []int32, bcard, cells int) *scanAcc {
	n := plan.rows
	global := c.acquire(cells)
	if n == 0 {
		return global
	}
	nm := (n + c.morsel - 1) / c.morsel
	c.obs.Count("engine.physical.morsels", int64(nm))
	if nm == 1 {
		c.processMorsel(plan, 0, n, bcodes, dcodes, bcard, global)
		return global
	}

	par := c.par
	if par > nm {
		par = nm
	}
	if par <= 1 {
		// Sequential multi-morsel: one reusable partial, merged after each
		// morsel — the identical boundaries and merge order as the parallel
		// path, so results are bit-identical at any parallelism.
		m := c.acquire(cells)
		for mi := 0; mi < nm; mi++ {
			lo := mi * c.morsel
			hi := lo + c.morsel
			if hi > n {
				hi = n
			}
			c.processMorsel(plan, lo, hi, bcodes, dcodes, bcard, m)
			c.mergeAcc(global, m)
			m.resetTouched()
		}
		c.release(m)
		return global
	}

	accs := make([]*scanAcc, nm)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mi := int(next.Add(1)) - 1
				if mi >= nm {
					return
				}
				a := c.acquire(cells)
				lo := mi * c.morsel
				hi := lo + c.morsel
				if hi > n {
					hi = n
				}
				c.processMorsel(plan, lo, hi, bcodes, dcodes, bcard, a)
				accs[mi] = a
			}
		}()
	}
	wg.Wait()
	for _, a := range accs {
		c.mergeAcc(global, a)
		c.release(a)
	}
	return global
}

// processMorsel runs the three kernel stages for driving positions [lo, hi)
// into acc.
func (c *ColumnarSubstrate) processMorsel(plan *scanPlan, lo, hi int, bcodes, dcodes []int32, bcard int, acc *scanAcc) {
	n := hi - lo

	// Stage 1: selection. Contiguous full-table morsels skip the vector and
	// address rows [lo, hi) directly; intersection plans drive their exact
	// row list; residual plans filter the driving slice into acc.sel.
	var sel []int32
	contiguous := false
	switch {
	case plan.full:
		contiguous = true
	case len(plan.rest) == 0:
		sel = plan.drive[lo:hi]
	default:
		if cap(acc.sel) < n {
			acc.sel = make([]int32, 0, n)
		}
		acc.sel = acc.sel[:0]
		for _, r := range plan.drive[lo:hi] {
			keep := true
			for _, f := range plan.rest {
				if f.codes[r] != f.code {
					keep = false
					break
				}
			}
			if keep {
				acc.sel = append(acc.sel, r)
			}
		}
		sel = acc.sel
	}

	// Stage 2: group ids.
	m := n
	if !contiguous {
		m = len(sel)
	}
	if m == 0 {
		return
	}
	acc.gids = growInt32(acc.gids, m)
	gids := acc.gids[:m]
	switch {
	case contiguous && dcodes == nil:
		copy(gids, bcodes[lo:hi])
	case contiguous:
		bc := bcodes[lo:hi]
		dc := dcodes[lo:hi]
		for i := range bc {
			gids[i] = dc[i]*int32(bcard) + bc[i]
		}
	case dcodes == nil:
		for i, r := range sel {
			gids[i] = bcodes[r]
		}
	default:
		for i, r := range sel {
			gids[i] = dcodes[r]*int32(bcard) + bcodes[r]
		}
	}

	// Stage 3a: counts plus first-touch tracking.
	counts := acc.counts
	touchBase := len(acc.touched)
	for _, g := range gids {
		if counts[g] == 0 {
			acc.touched = append(acc.touched, g)
		}
		counts[g]++
	}
	newTouched := acc.touched[touchBase:]

	// Stage 3b: one fused pass per measure column.
	for i, vals := range c.mvals {
		sums := acc.sums[i]
		if !c.needMM[i] {
			if contiguous {
				v := vals[lo:hi]
				for j, g := range gids {
					sums[g] += v[j]
				}
			} else {
				for j, r := range sel {
					sums[gids[j]] += vals[r]
				}
			}
			continue
		}
		mins, maxs := acc.mins[i], acc.maxs[i]
		for _, g := range newTouched {
			mins[g] = math.Inf(1)
			maxs[g] = math.Inf(-1)
		}
		if contiguous {
			v := vals[lo:hi]
			for j, g := range gids {
				x := v[j]
				sums[g] += x
				if x < mins[g] {
					mins[g] = x
				}
				if x > maxs[g] {
					maxs[g] = x
				}
			}
		} else {
			for j, r := range sel {
				g := gids[j]
				x := vals[r]
				sums[g] += x
				if x < mins[g] {
					mins[g] = x
				}
				if x > maxs[g] {
					maxs[g] = x
				}
			}
		}
	}
}

// mergeAcc folds one morsel partial into the scan result, touching only the
// cells the morsel populated. Callers invoke it in morsel-index order; that
// fixed order is the parallelism-invariance argument for float sums.
func (c *ColumnarSubstrate) mergeAcc(global, m *scanAcc) {
	for _, g := range m.touched {
		if global.counts[g] == 0 {
			global.touched = append(global.touched, g)
			for i := range c.mcols {
				if c.needMM[i] {
					global.mins[i][g] = math.Inf(1)
					global.maxs[i][g] = math.Inf(-1)
				}
			}
		}
		global.counts[g] += m.counts[g]
		for i := range c.mcols {
			global.sums[i][g] += m.sums[i][g]
			if c.needMM[i] {
				if m.mins[i][g] < global.mins[i][g] {
					global.mins[i][g] = m.mins[i][g]
				}
				if m.maxs[i][g] > global.maxs[i][g] {
					global.maxs[i][g] = m.maxs[i][g]
				}
			}
		}
	}
}

// buildUnitSlice compresses the accumulator cells [lo, lo+n) into a unit
// holding only the non-empty groups. All per-group float columns of the unit
// share one slab allocation, and min/max columns exist only for measures in
// the needed-aggregate set — the "leaner buildUnit" that removes the
// per-unit map churn the augmented path used to pay per ext value.
func (c *ColumnarSubstrate) buildUnitSlice(subspaceKey, breakdown string, domain []string, acc *scanAcc, lo, n int) *cache.Unit {
	counts := acc.counts[lo : lo+n]
	nonEmpty := 0
	for _, v := range counts {
		if v > 0 {
			nonEmpty++
		}
	}
	nmeas := len(c.mcols)
	slab := make([]float64, nonEmpty*(1+nmeas+2*c.nmm))
	next := func() []float64 {
		s := slab[:nonEmpty:nonEmpty]
		slab = slab[nonEmpty:]
		return s
	}
	u := &cache.Unit{
		Key:       cache.UnitKey{Subspace: subspaceKey, Breakdown: breakdown},
		GroupKeys: make([]string, nonEmpty),
		Counts:    next(),
		Sums:      make(map[string][]float64, nmeas),
		Mins:      make(map[string][]float64, c.nmm),
		Maxs:      make(map[string][]float64, c.nmm),
	}
	sumCols := make([][]float64, nmeas)
	minCols := make([][]float64, nmeas)
	maxCols := make([][]float64, nmeas)
	for i := range c.mcols {
		sumCols[i] = next()
		if c.needMM[i] {
			minCols[i] = next()
			maxCols[i] = next()
		}
	}
	idx := 0
	for g, cnt := range counts {
		if cnt == 0 {
			continue
		}
		u.GroupKeys[idx] = domain[g]
		u.Counts[idx] = cnt
		cell := lo + g
		for i := range c.mcols {
			sumCols[i][idx] = acc.sums[i][cell]
			if c.needMM[i] {
				minCols[i][idx] = acc.mins[i][cell]
				maxCols[i][idx] = acc.maxs[i][cell]
			}
		}
		idx++
	}
	for i, mc := range c.mcols {
		u.Sums[mc.Name] = sumCols[i]
		if c.needMM[i] {
			u.Mins[mc.Name] = minCols[i]
			u.Maxs[mc.Name] = maxCols[i]
		}
	}
	return u
}
