package engine

// Fused aggregation kernels and the morsel-parallel scan driver behind
// ColumnarSubstrate. One scan proceeds in three stages, each a tight loop
// over flat slices with no closure captures:
//
//  1. selection — the plan's driving rows for the morsel, filtered by any
//     residual filters into a selection vector of row ids (zone plans verify
//     every filter across their surviving blocks);
//  2. group ids — one gather computing each selected row's accumulator cell;
//  3. aggregation — counts, sums and (for measures in the needed-aggregate
//     set) min/max, with first-touch initialization so there is no O(cells)
//     ±Inf fill.
//
// Contiguous scans (no filters, or one zone block) skip stages 1–2 entirely:
// the group-id vector is the breakdown code column itself, and aggregation
// works run by run — dictionary codes of real tables are heavily clustered
// (sorted or generated in cross-product order), so one run covers hundreds
// of rows, the count update is O(1) per run, and the per-run sum folds
// through four independent accumulator lanes instead of one serial
// load-add-store dependency chain through memory. The lane split changes
// the float addition association, but deterministically: it depends only on
// the morsel boundaries and the code sequence, never on parallelism or
// pooling (integer-valued sums are exact under any association, which is
// what the cross-substrate differential tests compare byte for byte).
//
// All accumulator arrays of one scanAcc live in a single flat slab — counts
// first, then every sum column, then the min/max pairs — so acquire zeroes
// one contiguous prefix with a single memclr and the kernels stay in one
// allocation's cache lines.
//
// The driving row set is split into fixed-size morsels. Each morsel
// accumulates into its own (pooled) accumulator; partials are merged into
// the scan's result strictly in morsel-index order through an in-order
// reorder window: as soon as every morsel below i has merged, morsel i
// merges and its accumulator returns to the pool. Live partials therefore
// scale with the reorder skew (≈ parallelism), not with the morsel count.
// Because the morsel boundaries depend only on the morsel size and the
// plan's driving row count, and the merge order is fixed, every float
// addition has the same grouping at any parallelism — scan results are
// bit-identical for WithScanParallelism 1 or 16. Scans whose driving set
// fits one morsel skip partials and merge entirely.

import (
	"math"
	"sync"
	"sync/atomic"

	"metainsight/internal/cache"
)

// scanAcc is one accumulator set: full-domain counts and per-measure sums
// (always), min/max arrays for needed measures only, the first-touch group
// list, and reusable selection/group-id scratch. counts, sums, mins and maxs
// are views into one flat slab. Instances are pooled per substrate (see
// acquire/release).
type scanAcc struct {
	cells   int
	slab    []float64   // backing storage: counts | sums… | min,max…
	counts  []float64   // slab view
	sums    [][]float64 // slab views, one per measure
	mins    [][]float64 // slab views; nil per measure when min/max not needed
	maxs    [][]float64
	touched []int32 // cells first touched by this accumulator, in touch order
	gids    []int32 // scratch: group id per selected row
	sel     []int32 // scratch: selection vector under residual filters
}

// acquire returns a zeroed accumulator sized for cells, reusing a pooled one
// when available. counts and sums are zero-filled (one memclr over the slab
// prefix); min/max arrays hold garbage outside touched cells by design —
// they are initialized at first touch and only ever read for cells with a
// non-zero count.
func (c *ColumnarSubstrate) acquire(cells int) *scanAcc {
	var a *scanAcc
	if !c.noPool {
		if v := c.pool.Get(); v != nil {
			a = v.(*scanAcc)
		}
	}
	nmeas := len(c.mcols)
	if a == nil {
		a = &scanAcc{
			sums: make([][]float64, nmeas),
			mins: make([][]float64, nmeas),
			maxs: make([][]float64, nmeas),
		}
	}
	a.cells = cells
	need := cells * (1 + nmeas + 2*c.nmm)
	if cap(a.slab) < need {
		a.slab = make([]float64, need)
	}
	slab := a.slab[:need]
	clear(slab[:cells*(1+nmeas)]) // counts and sums; min/max left as garbage
	a.counts = slab[:cells:cells]
	off := cells
	for i := 0; i < nmeas; i++ {
		a.sums[i] = slab[off : off+cells : off+cells]
		off += cells
	}
	for i := 0; i < nmeas; i++ {
		if !c.needMM[i] {
			a.mins[i], a.maxs[i] = nil, nil
			continue
		}
		a.mins[i] = slab[off : off+cells : off+cells]
		off += cells
		a.maxs[i] = slab[off : off+cells : off+cells]
		off += cells
	}
	a.touched = a.touched[:0]
	return a
}

// release returns an accumulator to the pool (a no-op without pooling).
func (c *ColumnarSubstrate) release(a *scanAcc) {
	if c.noPool || a == nil {
		return
	}
	c.pool.Put(a)
}

// resetTouched re-zeroes exactly the cells this accumulator touched, making
// it reusable for the next morsel in O(touched · measures) instead of
// O(cells · measures).
func (a *scanAcc) resetTouched() {
	for _, g := range a.touched {
		a.counts[g] = 0
		for i := range a.sums {
			a.sums[i][g] = 0
		}
	}
	a.touched = a.touched[:0]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growInt32Keep grows s to length n preserving its contents, unlike
// growInt32 which may discard them.
func growInt32Keep(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	t := make([]int32, n, n+n/2)
	copy(t, s)
	return t
}

// mergeWindow is the in-order reorder window of the parallel scan: workers
// deposit finished morsel partials, and whichever worker completes the next
// in-order morsel drains the window, merging consecutive ready partials into
// the global accumulator and releasing them to the pool immediately. The
// merge order is exactly morsel-index order — the same order the sequential
// path uses — so parallel results stay bit-identical; the window just stops
// partials from accumulating until the end of the scan.
type mergeWindow struct {
	mu   sync.Mutex
	accs []*scanAcc // slot per morsel; non-nil ⇒ completed, awaiting merge
	next int        // lowest morsel index not yet merged
}

// deposit hands a finished morsel partial to the window and merges any
// now-contiguous run of completed morsels into global.
func (w *mergeWindow) deposit(c *ColumnarSubstrate, global *scanAcc, mi int, a *scanAcc) {
	w.mu.Lock()
	w.accs[mi] = a
	for w.next < len(w.accs) && w.accs[w.next] != nil {
		m := w.accs[w.next]
		w.accs[w.next] = nil
		w.next++
		c.mergeAcc(global, m)
		c.release(m)
	}
	w.mu.Unlock()
}

// morselCount returns how many morsels the plan's driving set splits into.
// Zone plans morselize per surviving block (each block is one morsel by
// construction — the zone block size is the morsel size).
func (c *ColumnarSubstrate) morselCount(plan *scanPlan, n int) int {
	if plan.zone {
		return len(plan.zblocks)
	}
	return (n + c.morsel - 1) / c.morsel
}

// morselBounds returns the driving range of morsel mi: row addresses for
// zone plans (the block's rows), driving-set positions otherwise.
func (c *ColumnarSubstrate) morselBounds(plan *scanPlan, mi, n int) (lo, hi int) {
	if plan.zone {
		lo = int(plan.zblocks[mi]) * c.morsel
		hi = lo + c.morsel
		if t := c.tab.Rows(); hi > t {
			hi = t
		}
		return lo, hi
	}
	lo = mi * c.morsel
	hi = lo + c.morsel
	if hi > n {
		hi = n
	}
	return lo, hi
}

// scan executes the plan into one accumulator of the given cell count.
// dcodes is nil for unit scans; for augmented scans the cell of row r is
// dcodes[r]*bcard + bcodes[r].
func (c *ColumnarSubstrate) scan(plan *scanPlan, bcodes, dcodes []int32, bcard, cells int) *scanAcc {
	n := plan.rows
	global := c.acquire(cells)
	if n == 0 {
		return global
	}
	nm := c.morselCount(plan, n)
	c.obs.Count("engine.physical.morsels", int64(nm))
	if nm == 1 {
		lo, hi := c.morselBounds(plan, 0, n)
		c.processMorsel(plan, lo, hi, bcodes, dcodes, bcard, global)
		return global
	}

	par := c.par
	if par > nm {
		par = nm
	}
	if par <= 1 {
		// Sequential multi-morsel: one reusable partial, merged after each
		// morsel — the identical boundaries and merge order as the parallel
		// path, so results are bit-identical at any parallelism.
		m := c.acquire(cells)
		for mi := 0; mi < nm; mi++ {
			lo, hi := c.morselBounds(plan, mi, n)
			c.processMorsel(plan, lo, hi, bcodes, dcodes, bcard, m)
			c.mergeAcc(global, m)
			m.resetTouched()
		}
		c.release(m)
		return global
	}

	win := &mergeWindow{accs: make([]*scanAcc, nm)}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mi := int(next.Add(1)) - 1
				if mi >= nm {
					return
				}
				a := c.acquire(cells)
				lo, hi := c.morselBounds(plan, mi, n)
				c.processMorsel(plan, lo, hi, bcodes, dcodes, bcard, a)
				win.deposit(c, global, mi, a)
			}
		}()
	}
	wg.Wait()
	return global
}

// processMorsel runs the kernel stages for driving positions [lo, hi) into
// acc. Contiguous full-table morsels take the run-fused path; everything
// else builds a selection vector and goes through the gather kernels.
func (c *ColumnarSubstrate) processMorsel(plan *scanPlan, lo, hi int, bcodes, dcodes []int32, bcard int, acc *scanAcc) {
	n := hi - lo

	// Stage 1: selection. Contiguous full-table morsels skip the vector and
	// address rows [lo, hi) directly; intersection plans drive their exact
	// row list; residual plans filter the driving slice into acc.sel; zone
	// plans verify every filter across the block's contiguous rows.
	var sel []int32
	switch {
	case plan.full:
		if dcodes == nil {
			// Unit scan over contiguous rows: the group-id vector is the
			// breakdown code column itself — no copy, no gather.
			c.accumulateRuns(acc, bcodes[lo:hi], lo)
			return
		}
		acc.gids = growInt32(acc.gids, n)
		gids := acc.gids[:n]
		bc := bcodes[lo:hi]
		dc := dcodes[lo:hi]
		for i := range bc {
			gids[i] = dc[i]*int32(bcard) + bc[i]
		}
		c.accumulateRuns(acc, gids, lo)
		return
	case plan.zone:
		if cap(acc.sel) < n {
			acc.sel = make([]int32, 0, n)
		}
		acc.sel = acc.sel[:0]
		for r := lo; r < hi; r++ {
			keep := true
			for _, f := range plan.rest {
				if f.codes[r] != f.code {
					keep = false
					break
				}
			}
			if keep {
				acc.sel = append(acc.sel, int32(r))
			}
		}
		sel = acc.sel
	case len(plan.rest) == 0:
		sel = plan.drive[lo:hi]
	default:
		if cap(acc.sel) < n {
			acc.sel = make([]int32, 0, n)
		}
		acc.sel = acc.sel[:0]
		for _, r := range plan.drive[lo:hi] {
			keep := true
			for _, f := range plan.rest {
				if f.codes[r] != f.code {
					keep = false
					break
				}
			}
			if keep {
				acc.sel = append(acc.sel, r)
			}
		}
		sel = acc.sel
	}

	// Stage 2: group ids, gathered through the selection vector.
	m := len(sel)
	if m == 0 {
		return
	}
	acc.gids = growInt32(acc.gids, m)
	gids := acc.gids[:m]
	if dcodes == nil {
		for i, r := range sel {
			gids[i] = bcodes[r]
		}
	} else {
		for i, r := range sel {
			gids[i] = dcodes[r]*int32(bcard) + bcodes[r]
		}
	}

	// Stage 3a: counts plus branch-free first-touch tracking. The candidate
	// cell is written to the touch list unconditionally; the list length
	// advances only on a first touch, so the hot loop carries no append and
	// no hard-to-predict branch target — just a conditional increment.
	counts := acc.counts
	tb := len(acc.touched)
	touched := growInt32Keep(acc.touched, tb+m)
	tl := tb
	for _, g := range gids {
		touched[tl] = g
		if counts[g] == 0 {
			tl++
		}
		counts[g]++
	}
	acc.touched = touched[:tl]
	newTouched := touched[tb:tl]

	// Stage 3b: one fused pass per measure column.
	for i, vals := range c.mvals {
		sums := acc.sums[i]
		if !c.needMM[i] {
			for j, r := range sel {
				sums[gids[j]] += vals[r]
			}
			continue
		}
		mins, maxs := acc.mins[i], acc.maxs[i]
		for _, g := range newTouched {
			mins[g] = math.Inf(1)
			maxs[g] = math.Inf(-1)
		}
		for j, r := range sel {
			g := gids[j]
			x := vals[r]
			sums[g] += x
			if x < mins[g] {
				mins[g] = x
			}
			if x > maxs[g] {
				maxs[g] = x
			}
		}
	}
}

// accumulateRuns is the contiguous-scan kernel: it walks the group-id vector
// run by run. Counts advance O(1) per run; each run's sum folds through four
// independent accumulator lanes (breaking the serial load-add-store chain
// through the accumulator cell that dominates clustered data), and min/max
// reduce in the same pass for measures that need them. Short runs fall back
// to plain in-order updates. rowBase maps gid index 0 to its table row.
func (c *ColumnarSubstrate) accumulateRuns(acc *scanAcc, gids []int32, rowBase int) {
	n := len(gids)
	counts := acc.counts
	j := 0
	for j < n {
		g := gids[j]
		k := j + 1
		for k < n && gids[k] == g {
			k++
		}
		if counts[g] == 0 {
			acc.touched = append(acc.touched, g)
			for i := range c.mvals {
				if c.needMM[i] {
					acc.mins[i][g] = math.Inf(1)
					acc.maxs[i][g] = math.Inf(-1)
				}
			}
		}
		counts[g] += float64(k - j)
		for i, vals := range c.mvals {
			v := vals[rowBase+j : rowBase+k]
			sums := acc.sums[i]
			if !c.needMM[i] {
				if len(v) < shortRun {
					for _, x := range v {
						sums[g] += x
					}
				} else {
					sums[g] += sumLanes(v)
				}
				continue
			}
			mins, maxs := acc.mins[i], acc.maxs[i]
			if len(v) < shortRun {
				for _, x := range v {
					sums[g] += x
					if x < mins[g] {
						mins[g] = x
					}
					if x > maxs[g] {
						maxs[g] = x
					}
				}
				continue
			}
			s, mn, mx := reduceLanes(v)
			sums[g] += s
			if mn < mins[g] {
				mins[g] = mn
			}
			if mx > maxs[g] {
				maxs[g] = mx
			}
		}
		j = k
	}
}

// shortRun is the run length below which per-element in-place updates beat
// the lane-split reduction's setup cost.
const shortRun = 8

// sumLanes sums v through four independent lanes, combining them as
// (s0+s1)+(s2+s3) and folding any tail elements in order afterwards. The
// association depends only on len(v) — deterministic for a fixed plan and
// morsel size, regardless of parallelism.
func sumLanes(v []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s0 += v[i]
		s1 += v[i+1]
		s2 += v[i+2]
		s3 += v[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(v); i++ {
		s += v[i]
	}
	return s
}

// reduceLanes is sumLanes fused with a min/max reduction over the same pass.
// Min/max are exact under any association; NaNs never win a comparison, the
// same semantics as the per-row kernels and the reference scan.
func reduceLanes(v []float64) (sum, mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		x0, x1, x2, x3 := v[i], v[i+1], v[i+2], v[i+3]
		s0 += x0
		s1 += x1
		s2 += x2
		s3 += x3
		if x0 < mn {
			mn = x0
		}
		if x0 > mx {
			mx = x0
		}
		if x1 < mn {
			mn = x1
		}
		if x1 > mx {
			mx = x1
		}
		if x2 < mn {
			mn = x2
		}
		if x2 > mx {
			mx = x2
		}
		if x3 < mn {
			mn = x3
		}
		if x3 > mx {
			mx = x3
		}
	}
	sum = (s0 + s1) + (s2 + s3)
	for ; i < len(v); i++ {
		x := v[i]
		sum += x
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return sum, mn, mx
}

// mergeAcc folds one morsel partial into the scan result, touching only the
// cells the morsel populated. Callers invoke it in morsel-index order; that
// fixed order is the parallelism-invariance argument for float sums.
func (c *ColumnarSubstrate) mergeAcc(global, m *scanAcc) {
	for _, g := range m.touched {
		if global.counts[g] == 0 {
			global.touched = append(global.touched, g)
			for i := range c.mcols {
				if c.needMM[i] {
					global.mins[i][g] = math.Inf(1)
					global.maxs[i][g] = math.Inf(-1)
				}
			}
		}
		global.counts[g] += m.counts[g]
		for i := range c.mcols {
			global.sums[i][g] += m.sums[i][g]
			if c.needMM[i] {
				if m.mins[i][g] < global.mins[i][g] {
					global.mins[i][g] = m.mins[i][g]
				}
				if m.maxs[i][g] > global.maxs[i][g] {
					global.maxs[i][g] = m.maxs[i][g]
				}
			}
		}
	}
}

// buildUnitSlice compresses the accumulator cells [lo, lo+n) into a unit
// holding only the non-empty groups. All per-group float columns of the unit
// share one slab allocation, and min/max columns exist only for measures in
// the needed-aggregate set — the "leaner buildUnit" that removes the
// per-unit map churn the augmented path used to pay per ext value.
func (c *ColumnarSubstrate) buildUnitSlice(subspaceKey, breakdown string, domain []string, acc *scanAcc, lo, n int) *cache.Unit {
	counts := acc.counts[lo : lo+n]
	nonEmpty := 0
	for _, v := range counts {
		if v > 0 {
			nonEmpty++
		}
	}
	nmeas := len(c.mcols)
	slab := make([]float64, nonEmpty*(1+nmeas+2*c.nmm))
	next := func() []float64 {
		s := slab[:nonEmpty:nonEmpty]
		slab = slab[nonEmpty:]
		return s
	}
	u := &cache.Unit{
		Key:       cache.UnitKey{Subspace: subspaceKey, Breakdown: breakdown},
		GroupKeys: make([]string, nonEmpty),
		Counts:    next(),
		Sums:      make(map[string][]float64, nmeas),
		Mins:      make(map[string][]float64, c.nmm),
		Maxs:      make(map[string][]float64, c.nmm),
	}
	sumCols := make([][]float64, nmeas)
	minCols := make([][]float64, nmeas)
	maxCols := make([][]float64, nmeas)
	for i := range c.mcols {
		sumCols[i] = next()
		if c.needMM[i] {
			minCols[i] = next()
			maxCols[i] = next()
		}
	}
	idx := 0
	for g, cnt := range counts {
		if cnt == 0 {
			continue
		}
		u.GroupKeys[idx] = domain[g]
		u.Counts[idx] = cnt
		cell := lo + g
		for i := range c.mcols {
			sumCols[i][idx] = acc.sums[i][cell]
			if c.needMM[i] {
				minCols[i][idx] = acc.mins[i][cell]
				maxCols[i][idx] = acc.maxs[i][cell]
			}
		}
		idx++
	}
	for i, mc := range c.mcols {
		u.Sums[mc.Name] = sumCols[i]
		if c.needMM[i] {
			u.Mins[mc.Name] = minCols[i]
			u.Maxs[mc.Name] = maxCols[i]
		}
	}
	return u
}
