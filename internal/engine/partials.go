package engine

// Block-granular partial aggregation: the scan layer of sharded execution
// (internal/shard). A sharded scan cannot simply merge N pre-folded per-shard
// accumulators — float addition is non-associative, so folding shard totals
// would give a different addition tree at every shard count. Instead each
// shard emits one compressed partial per address-aligned block (the morsel
// grid of the parent table), and the shard layer folds every block partial in
// ascending global block order. The addition tree then depends only on the
// global block grid — a property of the table and the block size — and is
// invariant to how many shards the grid is cut into, which is the whole
// bit-identity argument (DESIGN.md §10).
//
// Per-block partials are also invariant to the plan strategy: every filtered
// path (intersection drive, residual verification, zone scan) selects the
// same row set per block and accumulates it in ascending row order with
// per-element updates, so intersect/residual/zone produce byte-identical
// partials; the lane-split contiguous kernel runs only for unfiltered scans,
// where it is the single strategy and blocks coincide with its morsels.

import (
	"sync"
	"sync/atomic"

	"metainsight/internal/cache"
	"metainsight/internal/model"
)

// BlockPartial is the compressed aggregate state one block contributed to a
// scan: the touched accumulator cells (in first-touch order) and their
// counts, per-measure sums, and min/max for measures in the needed-aggregate
// set (nil otherwise). Cell ids are global — shard views share the parent
// dictionary — so partials from different shards fold into one accumulator
// directly.
type BlockPartial struct {
	Block  int // global block index (callers rebase shard-local indices)
	Cells  []int32
	Counts []float64
	Sums   [][]float64 // [measure][cell index]
	Mins   [][]float64 // nil per measure when min/max not materialized
	Maxs   [][]float64
}

// blockTask is one unit of partial-scan work: driving range [lo, hi) of one
// block — row addresses for full and zone plans, drive-list positions for
// posting-list plans.
type blockTask struct {
	block  int
	lo, hi int
}

// blockTasks cuts the plan's driving set into per-block tasks, ascending by
// block. Posting-list plans bucket their (sorted) drive rows by row address,
// not list position: the block grid must be the table's address grid or the
// merge tree would depend on the filter's row distribution.
func (c *ColumnarSubstrate) blockTasks(plan *scanPlan) []blockTask {
	switch {
	case plan.full:
		rows := c.tab.Rows()
		nb := (rows + c.morsel - 1) / c.morsel
		tasks := make([]blockTask, nb)
		for b := 0; b < nb; b++ {
			hi := (b + 1) * c.morsel
			if hi > rows {
				hi = rows
			}
			tasks[b] = blockTask{block: b, lo: b * c.morsel, hi: hi}
		}
		return tasks
	case plan.zone:
		rows := c.tab.Rows()
		tasks := make([]blockTask, len(plan.zblocks))
		for i, b := range plan.zblocks {
			lo := int(b) * c.morsel
			hi := lo + c.morsel
			if hi > rows {
				hi = rows
			}
			tasks[i] = blockTask{block: int(b), lo: lo, hi: hi}
		}
		return tasks
	default:
		var tasks []blockTask
		for i := 0; i < len(plan.drive); {
			b := int(plan.drive[i]) / c.morsel
			j := i + 1
			for j < len(plan.drive) && int(plan.drive[j])/c.morsel == b {
				j++
			}
			tasks = append(tasks, blockTask{block: b, lo: i, hi: j})
			i = j
		}
		return tasks
	}
}

// compressAcc snapshots an accumulator's touched cells into a BlockPartial.
// An untouched block compresses to the zero partial (dropped by callers).
func (c *ColumnarSubstrate) compressAcc(block int, acc *scanAcc) BlockPartial {
	n := len(acc.touched)
	p := BlockPartial{Block: block}
	if n == 0 {
		return p
	}
	nmeas := len(c.mcols)
	slab := make([]float64, n*(1+nmeas+2*c.nmm))
	next := func() []float64 {
		s := slab[:n:n]
		slab = slab[n:]
		return s
	}
	p.Cells = append([]int32(nil), acc.touched...)
	p.Counts = next()
	p.Sums = make([][]float64, nmeas)
	p.Mins = make([][]float64, nmeas)
	p.Maxs = make([][]float64, nmeas)
	for i := 0; i < nmeas; i++ {
		p.Sums[i] = next()
		if c.needMM[i] {
			p.Mins[i] = next()
			p.Maxs[i] = next()
		}
	}
	for idx, g := range p.Cells {
		p.Counts[idx] = acc.counts[g]
		for i := 0; i < nmeas; i++ {
			p.Sums[i][idx] = acc.sums[i][g]
			if c.needMM[i] {
				p.Mins[i][idx] = acc.mins[i][g]
				p.Maxs[i][idx] = acc.maxs[i][g]
			}
		}
	}
	return p
}

// scanBlocks executes the plan as per-block partials instead of one folded
// accumulator. Partials come back ascending by block; empty blocks are
// dropped (every plan strategy agrees on emptiness, so dropping is
// strategy-invariant). Parallelism follows the substrate's scan parallelism;
// the output order is positional, so it never depends on scheduling.
func (c *ColumnarSubstrate) scanBlocks(plan *scanPlan, bcodes, dcodes []int32, bcard, cells int) []BlockPartial {
	if plan.rows == 0 {
		return nil
	}
	tasks := c.blockTasks(plan)
	c.obs.Count("engine.physical.morsels", int64(len(tasks)))
	parts := make([]BlockPartial, len(tasks))
	run := func(ti int) {
		acc := c.acquire(cells)
		t := tasks[ti]
		c.processMorsel(plan, t.lo, t.hi, bcodes, dcodes, bcard, acc)
		parts[ti] = c.compressAcc(t.block, acc)
		c.release(acc)
	}
	par := c.par
	if par > len(tasks) {
		par = len(tasks)
	}
	if par <= 1 {
		for ti := range tasks {
			run(ti)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ti := int(next.Add(1)) - 1
					if ti >= len(tasks) {
						return
					}
					run(ti)
				}
			}()
		}
		wg.Wait()
	}
	out := parts[:0]
	for _, p := range parts {
		if len(p.Cells) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// ScanUnitBlocks is ScanUnit decomposed into block partials: same plan, same
// kernels, but the per-block aggregates are returned uncombined for a shard
// merger to fold. Block indices are local to this substrate's table.
func (c *ColumnarSubstrate) ScanUnitBlocks(s model.Subspace, breakdown string) ([]BlockPartial, int, error) {
	bcol := c.tab.Dimension(breakdown)
	plan := c.planFor(s)
	return c.scanBlocks(plan, bcol.Codes(), nil, 0, bcol.Cardinality()), plan.rows, nil
}

// ScanAugmentedBlocks is ScanAugmented decomposed into block partials; cell
// ids are dcode*bcard+bcode like the augmented accumulator layout.
func (c *ColumnarSubstrate) ScanAugmentedBlocks(base model.Subspace, breakdown, ext string) ([]BlockPartial, int, error) {
	bcol := c.tab.Dimension(breakdown)
	dcol := c.tab.Dimension(ext)
	bcard, dcard := bcol.Cardinality(), dcol.Cardinality()
	plan := c.planFor(base)
	return c.scanBlocks(plan, bcol.Codes(), dcol.Codes(), bcard, bcard*dcard), plan.rows, nil
}

// UnitCells returns the accumulator size of a unit scan grouped by breakdown.
func (c *ColumnarSubstrate) UnitCells(breakdown string) int {
	return c.tab.Dimension(breakdown).Cardinality()
}

// AugmentedCells returns the accumulator size of an augmented scan.
func (c *ColumnarSubstrate) AugmentedCells(breakdown, ext string) int {
	return c.tab.Dimension(breakdown).Cardinality() * c.tab.Dimension(ext).Cardinality()
}

// MorselSize returns the substrate's block width in rows — the grid sharded
// partition boundaries must align to.
func (c *ColumnarSubstrate) MorselSize() int { return c.morsel }

// PartialMerger folds BlockPartials into one accumulator with arithmetic
// identical to the morsel merge (mergeAcc): counts and sums add, min/max
// compare, first touch initializes. Callers must Fold in ascending global
// block order — that fixed order is the shard-count-invariance argument,
// exactly as morsel-index order is the scan-parallelism one. Not safe for
// concurrent use; the shard layer serializes Fold through its reorder window.
type PartialMerger struct {
	c   *ColumnarSubstrate
	acc *scanAcc
}

// NewMerger returns a merger over an accumulator of the given cell count.
// The receiving substrate defines the measure layout; every folded partial
// must come from a substrate with the same measure columns and min/max set
// (shard views of one table always do).
func (c *ColumnarSubstrate) NewMerger(cells int) *PartialMerger {
	return &PartialMerger{c: c, acc: c.acquire(cells)}
}

// Fold merges one block partial, mirroring mergeAcc cell for cell.
func (m *PartialMerger) Fold(p *BlockPartial) {
	acc := m.acc
	nmeas := len(m.c.mcols)
	for idx, g := range p.Cells {
		if acc.counts[g] == 0 {
			acc.touched = append(acc.touched, g)
			for i := 0; i < nmeas; i++ {
				if m.c.needMM[i] {
					acc.mins[i][g] = p.Mins[i][idx]
					acc.maxs[i][g] = p.Maxs[i][idx]
				}
			}
			acc.counts[g] = p.Counts[idx]
			for i := 0; i < nmeas; i++ {
				acc.sums[i][g] = p.Sums[i][idx]
			}
			continue
		}
		acc.counts[g] += p.Counts[idx]
		for i := 0; i < nmeas; i++ {
			acc.sums[i][g] += p.Sums[i][idx]
			if m.c.needMM[i] {
				if p.Mins[i][idx] < acc.mins[i][g] {
					acc.mins[i][g] = p.Mins[i][idx]
				}
				if p.Maxs[i][idx] > acc.maxs[i][g] {
					acc.maxs[i][g] = p.Maxs[i][idx]
				}
			}
		}
	}
}

// FinishUnit compresses the folded state into the unit for (s, breakdown)
// and releases the accumulator. The merger must not be reused afterwards.
func (m *PartialMerger) FinishUnit(s model.Subspace, breakdown string) *cache.Unit {
	bcol := m.c.tab.Dimension(breakdown)
	u := m.c.buildUnitSlice(s.Key(), breakdown, bcol.Domain(), m.acc, 0, bcol.Cardinality())
	m.c.release(m.acc)
	m.acc = nil
	return u
}

// FinishAugmented compresses the folded state into one unit per non-empty
// ext value, mirroring ScanAugmented's tail, and releases the accumulator.
func (m *PartialMerger) FinishAugmented(base model.Subspace, breakdown, ext string) map[string]*cache.Unit {
	bcol := m.c.tab.Dimension(breakdown)
	dcol := m.c.tab.Dimension(ext)
	bcard, dcard := bcol.Cardinality(), dcol.Cardinality()
	units := make(map[string]*cache.Unit, dcard)
	bdomain := bcol.Domain()
	for dv := 0; dv < dcard; dv++ {
		sub := base.With(ext, dcol.Value(dv))
		u := m.c.buildUnitSlice(sub.Key(), breakdown, bdomain, m.acc, dv*bcard, bcard)
		if len(u.GroupKeys) > 0 {
			units[dcol.Value(dv)] = u
		}
	}
	m.c.release(m.acc)
	m.acc = nil
	return units
}

// ShardStats is the canonical, fingerprint-pure outcome of resolving every
// shard's fault schedule for one scan: how many speculative copies were (or
// would be) issued, the per-shard retry total, and whether any shard failed
// both its primary and speculative copy. Because it is a pure function of
// the fingerprint, the miner's commit-order replay recomputes it instead of
// trusting worker observations — the same discipline as injected faults.
type ShardStats struct {
	SpeculativeReissues int64
	Retries             int64
	Failed              bool
}

// ShardResolver is implemented by sharded substrates (internal/shard). The
// miner type-asserts it off Engine.Substrate() to fold deterministic
// shard-level accounting into Stats.
type ShardResolver interface {
	ResolveShards(fp string) ShardStats
}
