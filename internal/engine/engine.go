// Package engine is the query substrate MetaInsight mines over. The paper's
// implementation issued SQL-style queries against Microsoft Excel's query
// interface (Table 2); this package implements the equivalent engine over the
// in-memory columnar tables of internal/dataset: BasicQuery and
// AugmentedQuery with group-by aggregation across all measures, integrated
// with the query cache of internal/cache.
//
// Because an in-process scan is orders of magnitude cheaper than the paper's
// inter-process query round trips, the engine also meters a deterministic
// cost per executed query (a fixed per-query overhead plus a per-row scan
// cost). Mining budgets can be denominated in these cost units, making the
// cache/queue ablations of Figure 6 both visible and exactly reproducible.
package engine

import (
	"fmt"
	"sync/atomic"

	"metainsight/internal/cache"
	"metainsight/internal/dataset"
	"metainsight/internal/faults"
	"metainsight/internal/model"
	"metainsight/internal/obs"
)

// CostModel assigns deterministic cost units to engine work. Units are
// arbitrary but are calibrated so that one unit ≈ one millisecond of the
// paper's Excel-backed substrate.
type CostModel struct {
	// PerQuery is the fixed overhead charged for every executed (non-cached)
	// query, standing in for the query-interface round trip.
	PerQuery float64
	// PerRow is charged for every record scanned by an executed query.
	PerRow float64
	// PerEvaluation is charged for each data-pattern evaluation performed
	// (pattern-cache hits are free).
	PerEvaluation float64
}

// DefaultCostModel approximates the paper's environment: a ~5ms query
// round trip, ~2000 rows scanned per ms, and a ~0.2ms pattern evaluation.
func DefaultCostModel() CostModel {
	return CostModel{PerQuery: 5, PerRow: 0.0005, PerEvaluation: 0.2}
}

// Meter accumulates cost units and query counts. It is safe for concurrent
// use; costs are stored in nano-units to allow atomic addition.
type Meter struct {
	costNanos atomic.Int64
	executed  atomic.Int64 // queries that actually scanned the table
	served    atomic.Int64 // logical queries answered from the cache
	augmented atomic.Int64 // executed queries that were augmented scans
}

// AddCost adds cost units to the meter.
func (m *Meter) AddCost(units float64) {
	m.costNanos.Add(int64(units * 1e9))
}

// Cost returns the accumulated cost in units.
func (m *Meter) Cost() float64 { return float64(m.costNanos.Load()) / 1e9 }

// CostNanos returns the accumulated cost in exact nano-units. Checkpointing
// snapshots this integer rather than the float units: AddCost truncates per
// call, so restoring a sum of float units would not be bit-exact.
func (m *Meter) CostNanos() int64 { return m.costNanos.Load() }

// AddCostNanos adds exact nano-units; the checkpoint restore path uses it to
// reproduce the pre-crash meter bit for bit.
func (m *Meter) AddCostNanos(n int64) { m.costNanos.Add(n) }

// ExecutedQueries returns the number of queries that scanned the table.
func (m *Meter) ExecutedQueries() int64 { return m.executed.Load() }

// ServedQueries returns the number of logical queries answered from cache.
func (m *Meter) ServedQueries() int64 { return m.served.Load() }

// AugmentedQueries returns how many executed queries were augmented scans.
func (m *Meter) AugmentedQueries() int64 { return m.augmented.Load() }

// AddExecuted adds n to the executed-query count. The miner uses it to apply
// canonically-ordered accounting computed outside the engine's metered paths.
func (m *Meter) AddExecuted(n int64) { m.executed.Add(n) }

// AddServed adds n to the cache-served query count.
func (m *Meter) AddServed(n int64) { m.served.Add(n) }

// AddAugmented adds n to the augmented-query count.
func (m *Meter) AddAugmented(n int64) { m.augmented.Add(n) }

// Series is the result of a basic query: the raw data distribution of a data
// scope (aggregate values of the measure over the breakdown's sibling group).
// Groups with no records are omitted; Keys is in domain order.
type Series struct {
	Scope  model.DataScope
	Keys   []string
	Values []float64
}

// Len returns the number of groups in the series.
func (s *Series) Len() int { return len(s.Keys) }

// augKey identifies one augmented scan: the paper's AugmentedQuery(ds, d) is
// one scan filtered by ds.Subspace \ d, grouped by (ds.Breakdown, d).
type augKey struct {
	base      string // key of ds.Subspace.Without(d)
	breakdown string
	ext       string // the augmentation dimension d
}

// unitRes is a metered unit-flight result: the unit plus whether this flight
// actually scanned (false when a concurrent leader's Put was found by the
// double-check, in which case the caller counts as served), or the
// substrate's error.
type unitRes struct {
	u       *cache.Unit
	scanned bool
	err     error
}

// quietUnitRes is a quiet unit-flight result.
type quietUnitRes struct {
	u   *cache.Unit
	err error
}

// augRes is an augmented-flight result (metered or quiet).
type augRes struct {
	units map[string]*cache.Unit
	err   error
}

// Engine executes queries for one table against one measure set. All query
// paths are safe for concurrent use: concurrent cache misses on the same key
// coalesce into a single scan via per-path single-flight groups, so a query
// is executed at most once per unit no matter how many workers race for it
// (the at-most-once assumption behind the paper's Fig 7 / Table 3 counts).
type Engine struct {
	tab      *dataset.Table
	measures []model.Measure
	impact   model.Measure
	qc       *cache.QueryCache
	cost     CostModel
	meter    *Meter
	obs      *obs.Observer
	sub      Substrate
	inj      *faults.Injector
	totalImp float64
	bnd      impactBounds // lazily built impact-sum summaries (bounds.go)

	// Single-flight groups. Metered and quiet paths use separate groups: a
	// quiet follower piggybacking on a metered leader (or vice versa) would
	// blur which path paid for the scan.
	meteredUnits cache.Flight[cache.UnitKey, unitRes]
	meteredAug   cache.Flight[augKey, augRes]
	quietUnits   cache.Flight[cache.UnitKey, quietUnitRes]
	quietAug     cache.Flight[augKey, augRes]
}

// Config configures an Engine.
type Config struct {
	// Measures is the measure set M. If empty, Table.DefaultMeasures is used.
	Measures []model.Measure
	// ImpactMeasure must be additive (SUM or COUNT); defaults to COUNT(*),
	// the impact measure used throughout the paper's evaluation.
	ImpactMeasure model.Measure
	// QueryCache to use; nil creates an enabled cache.
	QueryCache *cache.QueryCache
	// Cost is the metered cost model; zero value uses DefaultCostModel.
	Cost CostModel
	// Meter receives cost and query accounting; nil creates a fresh meter.
	Meter *Meter
	// ExtraMeasures lists measures that are not part of the mined measure set
	// M but will be queried against this engine (e.g. the secondary measures
	// of registered correlation evaluators, or a custom evaluator's declared
	// Requires set). They participate in the needed-aggregate derivation for
	// the default substrate: MIN/MAX accumulators are materialized only for
	// measure columns some measure in Measures ∪ ExtraMeasures ∪
	// {ImpactMeasure} actually aggregates with AggMin/AggMax.
	ExtraMeasures []model.Measure
	// ScanParallelism is how many goroutines one scan of the default substrate
	// may use (0 or 1 = sequential). Results are bit-identical for any value;
	// see WithScanParallelism. Ignored when Substrate is set explicitly.
	ScanParallelism int
	// Observer, when non-nil, receives physical execution metrics
	// ("engine.physical.*": scans actually performed and rows actually
	// visited, counted via atomics on every scan path). Physical counts
	// reflect real work — unlike the canonical counters in miner.Stats they
	// may vary with worker count and budget timing — and never influence
	// query results or metering.
	Observer *obs.Observer
	// Substrate is the physical scan layer; nil uses the in-process
	// ColumnarSubstrate over the table.
	Substrate Substrate
	// Faults, when non-nil, injects deterministic failures and latency into
	// every scan path. A query's fate is a pure function of its canonical
	// fingerprint: it fails identically on metered and quiet paths,
	// regardless of cache state, worker count, or timing. In particular a
	// failing query fails even when its unit happens to be cached (e.g. via
	// an augmented prefetch under a different fingerprint) — the decision is
	// attached to the logical query so that physical execution and the
	// miner's canonical commit-order replay can never disagree.
	Faults *faults.Injector
}

// New creates an engine over tab.
func New(tab *dataset.Table, cfg Config) (*Engine, error) {
	if cfg.Measures == nil {
		cfg.Measures = tab.DefaultMeasures()
	}
	if cfg.ImpactMeasure == (model.Measure{}) {
		cfg.ImpactMeasure = model.Count("*")
	}
	if !cfg.ImpactMeasure.Agg.Additive() {
		return nil, fmt.Errorf("engine: impact measure %s is not additive", cfg.ImpactMeasure)
	}
	if cfg.QueryCache == nil {
		cfg.QueryCache = cache.NewQueryCache(true)
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.Meter == nil {
		cfg.Meter = &Meter{}
	}
	if cfg.Substrate == nil {
		// Derive the needed-aggregate set: MIN/MAX arrays are materialized
		// only for columns some declared measure aggregates that way. The set
		// is non-nil (possibly empty) so undeclared MIN/MAX queries surface as
		// "unit lacks column" rather than silently paying for every column.
		need := make(map[string]bool)
		for _, ms := range [][]model.Measure{cfg.Measures, cfg.ExtraMeasures, {cfg.ImpactMeasure}} {
			for _, m := range ms {
				if m.Agg == model.AggMin || m.Agg == model.AggMax {
					need[m.Column] = true
				}
			}
		}
		cfg.Substrate = NewColumnarSubstrate(tab,
			WithMinMaxColumns(need),
			WithScanParallelism(cfg.ScanParallelism),
			WithScanObserver(cfg.Observer))
	}
	e := &Engine{
		tab:      tab,
		measures: cfg.Measures,
		impact:   cfg.ImpactMeasure,
		qc:       cfg.QueryCache,
		cost:     cfg.Cost,
		meter:    cfg.Meter,
		obs:      cfg.Observer,
		sub:      cfg.Substrate,
		inj:      cfg.Faults,
	}
	for _, m := range cfg.Measures {
		if err := e.checkMeasure(m); err != nil {
			return nil, err
		}
	}
	for _, m := range cfg.ExtraMeasures {
		if err := e.checkMeasure(m); err != nil {
			return nil, err
		}
	}
	if err := e.checkMeasure(cfg.ImpactMeasure); err != nil {
		return nil, err
	}
	e.totalImp = e.totalImpactValue()
	if e.totalImp <= 0 {
		return nil, fmt.Errorf("engine: impact measure %s totals %v over the dataset", cfg.ImpactMeasure, e.totalImp)
	}
	return e, nil
}

func (e *Engine) checkMeasure(m model.Measure) error {
	if m.Agg == model.AggCount {
		return nil
	}
	if e.tab.MeasureColumn(m.Column) == nil {
		return fmt.Errorf("engine: measure %s references unknown column", m)
	}
	return nil
}

// recordScan counts one physical scan on the observer (a no-op when no
// observer is attached). Counted on every path that actually visits rows —
// metered and quiet alike — so "engine.physical.*" reports the machine's
// real work, complementing the canonical (worker-count-invariant) accounting
// in miner.Stats.
func (e *Engine) recordScan(rows int, augmented bool) {
	e.obs.Count("engine.physical.scans", 1)
	e.obs.Count("engine.physical.rows", int64(rows))
	if augmented {
		e.obs.Count("engine.physical.augmented_scans", 1)
	}
}

// Observer returns the engine's attached observer (possibly nil).
func (e *Engine) Observer() *obs.Observer { return e.obs }

// Table returns the table the engine queries.
func (e *Engine) Table() *dataset.Table { return e.tab }

// Measures returns the measure set M.
func (e *Engine) Measures() []model.Measure { return e.measures }

// ImpactMeasure returns the configured impact measure.
func (e *Engine) ImpactMeasure() model.Measure { return e.impact }

// Meter returns the engine's cost meter.
func (e *Engine) Meter() *Meter { return e.meter }

// QueryCache returns the engine's query cache.
func (e *Engine) QueryCache() *cache.QueryCache { return e.qc }

// Faults returns the engine's fault injector (possibly nil). The miner uses
// it to recompute resolutions during canonical commit-order replay.
func (e *Engine) Faults() *faults.Injector { return e.inj }

// Substrate returns the engine's physical scan layer.
func (e *Engine) Substrate() Substrate { return e.sub }

// totalImpactValue computes m_Impact({*}) directly (not metered: it is a
// one-time setup computation, equivalent to dataset metadata).
func (e *Engine) totalImpactValue() float64 {
	if e.impact.Agg == model.AggCount {
		return float64(e.tab.Rows())
	}
	col := e.tab.MeasureColumn(e.impact.Column)
	total := 0.0
	for i := 0; i < e.tab.Rows(); i++ {
		total += col.At(i)
	}
	return total
}

// TotalImpact returns m_Impact({*}), the denominator of Equation 2.
func (e *Engine) TotalImpact() float64 { return e.totalImp }

// BasicQuery answers the paper's BasicQuery(ds): the aggregate of
// ds.Measure grouped by ds.Breakdown under ds.Subspace (Table 2, row 1).
// The result is served from the query cache when possible; a miss scans the
// table once, producing (and caching) the full all-measures unit. Concurrent
// misses on the same unit coalesce: one scan executes and is charged, the
// other callers are accounted as cache-served.
func (e *Engine) BasicQuery(ds model.DataScope) (*Series, error) {
	if err := e.tab.Validate(ds); err != nil {
		return nil, err
	}
	unit, err := e.Unit(ds.Subspace, ds.Breakdown)
	if err != nil {
		return nil, err
	}
	return extract(unit, ds)
}

// Unit returns the full query-cache unit for (subspace, breakdown),
// executing a scan on a cache miss. Callers that need several measures of
// the same scope use this to avoid repeated extraction lookups. Concurrent
// misses single-flight into one charged scan; followers count as served.
func (e *Engine) Unit(subspace model.Subspace, breakdown string) (*cache.Unit, error) {
	if e.tab.Dimension(breakdown) == nil {
		return nil, fmt.Errorf("engine: unknown breakdown dimension %q", breakdown)
	}
	// Resolve the query's fate before consulting the cache: a failing
	// fingerprint fails regardless of cache state (see Config.Faults), so
	// metered and quiet paths — and the miner's canonical replay — always
	// agree. Injected retry/latency cost is charged only when the scan
	// actually executes below.
	var faultCost float64
	if e.inj.Enabled() {
		fp := UnitFingerprint(subspace.Key(), breakdown)
		fres := e.inj.Resolve(fp, e.ScanCost(subspace))
		if !fres.OK {
			e.meter.AddCost(fres.FaultCost)
			return nil, fres.Err(fp)
		}
		faultCost = fres.FaultCost
	}
	unit, ok := e.qc.Get(subspace.Key(), breakdown)
	if ok {
		e.meter.served.Add(1)
		return unit, nil
	}
	key := cache.UnitKey{Subspace: subspace.Key(), Breakdown: breakdown}
	res, leader := e.meteredUnits.Do(key, func() unitRes {
		// Double-check under the flight: a previous leader may have cached
		// the unit between this caller's miss and its flight entry.
		if u, ok := e.qc.Peek(key.Subspace, key.Breakdown); ok {
			return unitRes{u: u}
		}
		u, scanned, err := e.execScanUnit(subspace, breakdown)
		if err != nil {
			return unitRes{err: err}
		}
		e.recordScan(scanned, false)
		e.meter.executed.Add(1)
		e.meter.AddCost(e.cost.PerQuery + e.cost.PerRow*float64(scanned) + faultCost)
		e.qc.Put(u)
		return unitRes{u: u, scanned: true}
	})
	if res.err != nil {
		return nil, res.err
	}
	if !leader || !res.scanned {
		e.meter.served.Add(1)
	}
	return res.u, nil
}

// execScanUnit runs the substrate's unit scan, retrying real substrate
// errors up to the retry policy's attempt budget. Injected faults never
// reach this level — they are resolved before the cache lookup.
func (e *Engine) execScanUnit(s model.Subspace, breakdown string) (*cache.Unit, int, error) {
	var u *cache.Unit
	var rows int
	var err error
	for i := 0; i < e.inj.MaxAttempts(); i++ {
		u, rows, err = e.sub.ScanUnit(s, breakdown)
		if err == nil {
			return u, rows, nil
		}
	}
	return nil, rows, err
}

// execScanAugmented is execScanUnit for augmented scans.
func (e *Engine) execScanAugmented(base model.Subspace, breakdown, ext string) (map[string]*cache.Unit, int, error) {
	var units map[string]*cache.Unit
	var rows int
	var err error
	for i := 0; i < e.inj.MaxAttempts(); i++ {
		units, rows, err = e.sub.ScanAugmented(base, breakdown, ext)
		if err == nil {
			return units, rows, nil
		}
	}
	return nil, rows, err
}

// CheckAugmented validates an AugmentedQuery(ds, d) request without running
// it: the scope must be valid, d must be a known dimension, and d must not
// equal the breakdown.
func (e *Engine) CheckAugmented(ds model.DataScope, d string) error {
	if err := e.tab.Validate(ds); err != nil {
		return err
	}
	if e.tab.Dimension(d) == nil {
		return fmt.Errorf("engine: unknown augmentation dimension %q", d)
	}
	if d == ds.Breakdown {
		return fmt.Errorf("engine: augmentation dimension %q equals the breakdown", d)
	}
	return nil
}

// AugmentedQuery answers the paper's AugmentedQuery(ds, d) (Table 2, row 2):
// one scan filtered by ds.Subspace \ d, grouped by (ds.Breakdown, d), across
// all measures. It returns the cache units for every sibling subspace in
// SG(ds.Subspace, d) that has at least one record, keyed by the sibling's
// value on d; each unit is also stored in the query cache, pre-fetching the
// measure-extending and subspace-extending HDSs generated from ds.
// Concurrent identical calls coalesce into one charged scan; followers count
// as served.
func (e *Engine) AugmentedQuery(ds model.DataScope, d string) (map[string]*cache.Unit, error) {
	if err := e.CheckAugmented(ds, d); err != nil {
		return nil, err
	}
	base := ds.Subspace.Without(d)
	var faultCost float64
	if e.inj.Enabled() {
		fp := AugmentedFingerprint(base.Key(), ds.Breakdown, d)
		fres := e.inj.Resolve(fp, e.ScanCost(base))
		if !fres.OK {
			e.meter.AddCost(fres.FaultCost)
			return nil, fres.Err(fp)
		}
		faultCost = fres.FaultCost
	}
	key := augKey{base: base.Key(), breakdown: ds.Breakdown, ext: d}
	res, leader := e.meteredAug.Do(key, func() augRes {
		units, scanned, err := e.execScanAugmented(base, ds.Breakdown, d)
		if err != nil {
			return augRes{err: err}
		}
		e.recordScan(scanned, true)
		e.meter.executed.Add(1)
		e.meter.augmented.Add(1)
		// One scan answers |dom(d)| sibling queries; charge a single round
		// trip plus the scan, mirroring the paper's motivation for augmented
		// queries.
		e.meter.AddCost(e.cost.PerQuery + e.cost.PerRow*float64(scanned) + faultCost)
		for _, u := range units {
			e.qc.Put(u)
		}
		return augRes{units: units}
	})
	if res.err != nil {
		return nil, res.err
	}
	if !leader {
		e.meter.served.Add(1)
	}
	return res.units, nil
}

// MaterializeUnit returns the unit for (subspace, breakdown) without touching
// the meter or the cache's hit/miss counters: a cached unit is peeked, a
// missing one is scanned (single-flighted) and stored. The miner's workers
// use the Materialize* paths for all data access and account for the work
// canonically at commit time, so the numbers reported for a run are
// independent of worker count and physical interleaving.
func (e *Engine) MaterializeUnit(subspace model.Subspace, breakdown string) (*cache.Unit, error) {
	if e.tab.Dimension(breakdown) == nil {
		return nil, fmt.Errorf("engine: unknown breakdown dimension %q", breakdown)
	}
	// Same purity rule as Unit: the fingerprint's fate is decided before any
	// cache interaction, so the outcome cannot depend on which worker got
	// here first or what happens to be cached.
	if e.inj.Enabled() {
		fp := UnitFingerprint(subspace.Key(), breakdown)
		if fres := e.inj.Resolve(fp, e.ScanCost(subspace)); !fres.OK {
			return nil, fres.Err(fp)
		}
	}
	key := cache.UnitKey{Subspace: subspace.Key(), Breakdown: breakdown}
	if u, ok := e.qc.Peek(key.Subspace, key.Breakdown); ok {
		return u, nil
	}
	res, _ := e.quietUnits.Do(key, func() quietUnitRes {
		if u, ok := e.qc.Peek(key.Subspace, key.Breakdown); ok {
			return quietUnitRes{u: u} // raced with another leader's Put
		}
		u, scanned, err := e.execScanUnit(subspace, breakdown)
		if err != nil {
			return quietUnitRes{err: err}
		}
		e.recordScan(scanned, false)
		e.qc.Put(u)
		return quietUnitRes{u: u}
	})
	return res.u, res.err
}

// MaterializeBasic is the quiet (unmetered, uncounted) form of BasicQuery.
func (e *Engine) MaterializeBasic(ds model.DataScope) (*Series, error) {
	if err := e.tab.Validate(ds); err != nil {
		return nil, err
	}
	u, err := e.MaterializeUnit(ds.Subspace, ds.Breakdown)
	if err != nil {
		return nil, err
	}
	return extract(u, ds)
}

// MaterializeAugmented is the quiet (unmetered, uncounted) form of
// AugmentedQuery. The returned map's key set identifies exactly the
// non-empty siblings, which callers use to distinguish "empty sibling" from
// "not yet fetched".
func (e *Engine) MaterializeAugmented(ds model.DataScope, d string) (map[string]*cache.Unit, error) {
	if err := e.CheckAugmented(ds, d); err != nil {
		return nil, err
	}
	base := ds.Subspace.Without(d)
	if e.inj.Enabled() {
		fp := AugmentedFingerprint(base.Key(), ds.Breakdown, d)
		if fres := e.inj.Resolve(fp, e.ScanCost(base)); !fres.OK {
			return nil, fres.Err(fp)
		}
	}
	key := augKey{base: base.Key(), breakdown: ds.Breakdown, ext: d}
	res, _ := e.quietAug.Do(key, func() augRes {
		units, scanned, err := e.execScanAugmented(base, ds.Breakdown, d)
		if err != nil {
			return augRes{err: err}
		}
		e.recordScan(scanned, true)
		for _, u := range units {
			e.qc.Put(u)
		}
		return augRes{units: units}
	})
	return res.units, res.err
}

// ScanCost returns the metered cost a unit scan under subspace s would be
// charged, without scanning: the per-query overhead plus the per-row cost of
// the rows the scan plan would visit. When the substrate is a RowPlanner
// (ColumnarSubstrate is), the exact planned row count is used, so the
// analytic cost agrees bit for bit with what the scan will meter — including
// when posting-list intersection shrinks the row set below any single
// filter's posting list. Other substrates fall back to the legacy estimate:
// the full table when s is unfiltered, otherwise the most selective filter's
// posting list. The cost of a scan depends only on the subspace, not the
// breakdown, and an augmented scan of base subspace b costs exactly
// ScanCost(b).
func (e *Engine) ScanCost(s model.Subspace) float64 {
	var scanned int
	if rp, ok := e.sub.(RowPlanner); ok {
		scanned = rp.PlannedRows(s)
	} else {
		scanned = e.tab.Rows()
		if len(s) > 0 {
			best := e.tab.Rows() + 1
			for _, f := range resolveFilters(e.tab, s) {
				if l := len(f.col.Postings(int(f.code))); l < best {
					best = l
				}
			}
			scanned = best
		}
	}
	return e.cost.PerQuery + e.cost.PerRow*float64(scanned)
}

// EvaluationCost returns the metered cost of one data-pattern evaluation.
func (e *Engine) EvaluationCost() float64 { return e.cost.PerEvaluation }

// Impact returns Impact_ds for a subspace (Equation 2): the impact measure's
// value on the subspace divided by its value on the whole dataset. The
// numerator is served by any unit of the subspace if cached; otherwise a
// count-style scan is metered.
func (e *Engine) Impact(s model.Subspace) (float64, error) {
	if len(s) == 0 {
		return 1, nil
	}
	// The fallback scan's fate is resolved before the cache probes: if its
	// fingerprint fails, the impact lookup fails even when a probe unit
	// happens to be cached. Cache-dependent outcomes would diverge between
	// this path and the miner's replay (whose simulated cache can lag or
	// lead the physical one), breaking worker-count invariance.
	if e.inj.Enabled() {
		fp := UnitFingerprint(s.Key(), e.impactFallbackDim(s))
		fres := e.inj.Resolve(fp, e.ScanCost(s))
		if !fres.OK {
			e.meter.AddCost(fres.FaultCost)
			return 0, fres.Err(fp)
		}
	}
	// Any breakdown unit of this subspace can serve the impact value; prefer
	// a cached one before paying for a scan.
	for _, dim := range e.tab.DimensionNames() {
		if s.Has(dim) {
			continue
		}
		if u, ok := e.qc.Peek(s.Key(), dim); ok {
			return e.unitImpact(u) / e.totalImp, nil
		}
	}
	u, err := e.Unit(s, e.impactFallbackDim(s))
	if err != nil {
		return 0, err
	}
	return e.unitImpact(u) / e.totalImp, nil
}

// impactFallbackDim picks the breakdown for an impact scan: the first
// unfiltered dimension. If every dimension is filtered, grouping by a
// filtered one is still correct: the scan keeps the filter, so the unit
// holds exactly the one matching group.
func (e *Engine) impactFallbackDim(s model.Subspace) string {
	for _, dim := range e.tab.DimensionNames() {
		if !s.Has(dim) {
			return dim
		}
	}
	return e.tab.DimensionNames()[0]
}

// ImpactProbe describes how an impact value was (or would canonically be)
// obtained, so the miner can replay the lookup against its simulated cache:
// if any probe unit is cached the value is free, otherwise the fallback unit
// is scanned at Cost and enters the cache.
type ImpactProbe struct {
	// Subspace is the canonical key of the probed subspace.
	Subspace string
	// Probe lists the unfiltered breakdown dimensions, in table dimension
	// order; a cached unit on any of them serves the impact value.
	Probe []string
	// Fallback is the unit scanned when no probe key is cached.
	Fallback cache.UnitKey
	// Cost is the analytic metered cost of the fallback scan (ScanCost).
	Cost float64
	// Bytes is the fallback unit's ApproxBytes when this call observed the
	// unit, else 0. Best-effort: cache byte sizes are reporting-only.
	Bytes int64
}

// ImpactUnmetered is the quiet form of Impact: it computes the impact value
// without touching the meter or cache counters and returns an ImpactProbe
// recording how the lookup would be charged. The probe is nil for the empty
// subspace (impact 1 is free dataset metadata).
func (e *Engine) ImpactUnmetered(s model.Subspace) (float64, *ImpactProbe, error) {
	if len(s) == 0 {
		return 1, nil, nil
	}
	probe := make([]string, 0, len(e.tab.DimensionNames()))
	for _, dim := range e.tab.DimensionNames() {
		if !s.Has(dim) {
			probe = append(probe, dim)
		}
	}
	p := &ImpactProbe{
		Subspace: s.Key(),
		Probe:    probe,
		Fallback: cache.UnitKey{Subspace: s.Key(), Breakdown: e.impactFallbackDim(s)},
		Cost:     e.ScanCost(s),
	}
	// Purity rule (see Impact): resolve the fallback fingerprint before any
	// cache peek. The probe is returned alongside the error so the miner can
	// record the lookup and recompute the identical resolution at replay.
	if e.inj.Enabled() {
		fp := UnitFingerprint(p.Fallback.Subspace, p.Fallback.Breakdown)
		if fres := e.inj.Resolve(fp, p.Cost); !fres.OK {
			return 0, p, fres.Err(fp)
		}
	}
	var unit *cache.Unit
	// With an unbounded cache, p.Bytes is reporting-only, so a probe unit
	// found by a (timing-dependent) peek may serve the value and leave Bytes
	// zero. Under a byte-bounded cache the recorded size participates in the
	// canonical eviction simulation, so it must be deterministic: always
	// materialize the fallback unit (pure data, worker-count-invariant) and
	// take its size.
	if e.qc.MaxBytes() == 0 {
		for _, dim := range probe {
			if u, ok := e.qc.Peek(s.Key(), dim); ok {
				unit = u
				break
			}
		}
	}
	if unit == nil {
		u, err := e.MaterializeUnit(s, p.Fallback.Breakdown)
		if err != nil {
			return 0, p, err
		}
		unit = u
	}
	if unit.Key == p.Fallback {
		p.Bytes = unit.ApproxBytes()
	}
	return e.unitImpact(unit) / e.totalImp, p, nil
}

// unitImpact sums the impact measure over a unit's groups; valid because the
// impact measure is additive.
func (e *Engine) unitImpact(u *cache.Unit) float64 {
	if e.impact.Agg == model.AggCount {
		return statsSum(u.Counts)
	}
	return statsSum(u.Sums[e.impact.Column])
}

func statsSum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Extract materializes one measure's series from an already-fetched unit
// without touching the cache counters; callers that evaluate several
// measures of the same (subspace, breakdown) family use it after one Unit
// call.
func Extract(u *cache.Unit, ds model.DataScope) (*Series, error) {
	return extract(u, ds)
}

// extract materializes one measure's series from a unit. Groups with no
// records are already absent from the unit.
func extract(u *cache.Unit, ds model.DataScope) (*Series, error) {
	n := len(u.GroupKeys)
	vals := make([]float64, n)
	switch ds.Measure.Agg {
	case model.AggCount:
		copy(vals, u.Counts)
	case model.AggSum:
		src, ok := u.Sums[ds.Measure.Column]
		if !ok {
			return nil, fmt.Errorf("engine: unit lacks column %q", ds.Measure.Column)
		}
		copy(vals, src)
	case model.AggAvg:
		src, ok := u.Sums[ds.Measure.Column]
		if !ok {
			return nil, fmt.Errorf("engine: unit lacks column %q", ds.Measure.Column)
		}
		for i := range vals {
			vals[i] = src[i] / u.Counts[i]
		}
	case model.AggMin:
		src, ok := u.Mins[ds.Measure.Column]
		if !ok {
			return nil, fmt.Errorf("engine: unit lacks column %q", ds.Measure.Column)
		}
		copy(vals, src)
	case model.AggMax:
		src, ok := u.Maxs[ds.Measure.Column]
		if !ok {
			return nil, fmt.Errorf("engine: unit lacks column %q", ds.Measure.Column)
		}
		copy(vals, src)
	default:
		return nil, fmt.Errorf("engine: unsupported aggregate %v", ds.Measure.Agg)
	}
	return &Series{Scope: ds, Keys: u.GroupKeys, Values: vals}, nil
}

// ChargeEvaluation charges the metered cost of one data-pattern evaluation.
func (e *Engine) ChargeEvaluation() {
	e.meter.AddCost(e.cost.PerEvaluation)
}
