// Package engine is the query substrate MetaInsight mines over. The paper's
// implementation issued SQL-style queries against Microsoft Excel's query
// interface (Table 2); this package implements the equivalent engine over the
// in-memory columnar tables of internal/dataset: BasicQuery and
// AugmentedQuery with group-by aggregation across all measures, integrated
// with the query cache of internal/cache.
//
// Because an in-process scan is orders of magnitude cheaper than the paper's
// inter-process query round trips, the engine also meters a deterministic
// cost per executed query (a fixed per-query overhead plus a per-row scan
// cost). Mining budgets can be denominated in these cost units, making the
// cache/queue ablations of Figure 6 both visible and exactly reproducible.
package engine

import (
	"fmt"
	"math"
	"sync/atomic"

	"metainsight/internal/cache"
	"metainsight/internal/dataset"
	"metainsight/internal/model"
	"metainsight/internal/obs"
)

// CostModel assigns deterministic cost units to engine work. Units are
// arbitrary but are calibrated so that one unit ≈ one millisecond of the
// paper's Excel-backed substrate.
type CostModel struct {
	// PerQuery is the fixed overhead charged for every executed (non-cached)
	// query, standing in for the query-interface round trip.
	PerQuery float64
	// PerRow is charged for every record scanned by an executed query.
	PerRow float64
	// PerEvaluation is charged for each data-pattern evaluation performed
	// (pattern-cache hits are free).
	PerEvaluation float64
}

// DefaultCostModel approximates the paper's environment: a ~5ms query
// round trip, ~2000 rows scanned per ms, and a ~0.2ms pattern evaluation.
func DefaultCostModel() CostModel {
	return CostModel{PerQuery: 5, PerRow: 0.0005, PerEvaluation: 0.2}
}

// Meter accumulates cost units and query counts. It is safe for concurrent
// use; costs are stored in nano-units to allow atomic addition.
type Meter struct {
	costNanos atomic.Int64
	executed  atomic.Int64 // queries that actually scanned the table
	served    atomic.Int64 // logical queries answered from the cache
	augmented atomic.Int64 // executed queries that were augmented scans
}

// AddCost adds cost units to the meter.
func (m *Meter) AddCost(units float64) {
	m.costNanos.Add(int64(units * 1e9))
}

// Cost returns the accumulated cost in units.
func (m *Meter) Cost() float64 { return float64(m.costNanos.Load()) / 1e9 }

// ExecutedQueries returns the number of queries that scanned the table.
func (m *Meter) ExecutedQueries() int64 { return m.executed.Load() }

// ServedQueries returns the number of logical queries answered from cache.
func (m *Meter) ServedQueries() int64 { return m.served.Load() }

// AugmentedQueries returns how many executed queries were augmented scans.
func (m *Meter) AugmentedQueries() int64 { return m.augmented.Load() }

// AddExecuted adds n to the executed-query count. The miner uses it to apply
// canonically-ordered accounting computed outside the engine's metered paths.
func (m *Meter) AddExecuted(n int64) { m.executed.Add(n) }

// AddServed adds n to the cache-served query count.
func (m *Meter) AddServed(n int64) { m.served.Add(n) }

// AddAugmented adds n to the augmented-query count.
func (m *Meter) AddAugmented(n int64) { m.augmented.Add(n) }

// Series is the result of a basic query: the raw data distribution of a data
// scope (aggregate values of the measure over the breakdown's sibling group).
// Groups with no records are omitted; Keys is in domain order.
type Series struct {
	Scope  model.DataScope
	Keys   []string
	Values []float64
}

// Len returns the number of groups in the series.
func (s *Series) Len() int { return len(s.Keys) }

// augKey identifies one augmented scan: the paper's AugmentedQuery(ds, d) is
// one scan filtered by ds.Subspace \ d, grouped by (ds.Breakdown, d).
type augKey struct {
	base      string // key of ds.Subspace.Without(d)
	breakdown string
	ext       string // the augmentation dimension d
}

// unitRes is a metered unit-flight result: the unit plus whether this flight
// actually scanned (false when a concurrent leader's Put was found by the
// double-check, in which case the caller counts as served).
type unitRes struct {
	u       *cache.Unit
	scanned bool
}

// Engine executes queries for one table against one measure set. All query
// paths are safe for concurrent use: concurrent cache misses on the same key
// coalesce into a single scan via per-path single-flight groups, so a query
// is executed at most once per unit no matter how many workers race for it
// (the at-most-once assumption behind the paper's Fig 7 / Table 3 counts).
type Engine struct {
	tab      *dataset.Table
	measures []model.Measure
	impact   model.Measure
	qc       *cache.QueryCache
	cost     CostModel
	meter    *Meter
	obs      *obs.Observer
	totalImp float64

	// Single-flight groups. Metered and quiet paths use separate groups: a
	// quiet follower piggybacking on a metered leader (or vice versa) would
	// blur which path paid for the scan.
	meteredUnits cache.Flight[cache.UnitKey, unitRes]
	meteredAug   cache.Flight[augKey, map[string]*cache.Unit]
	quietUnits   cache.Flight[cache.UnitKey, *cache.Unit]
	quietAug     cache.Flight[augKey, map[string]*cache.Unit]
}

// Config configures an Engine.
type Config struct {
	// Measures is the measure set M. If empty, Table.DefaultMeasures is used.
	Measures []model.Measure
	// ImpactMeasure must be additive (SUM or COUNT); defaults to COUNT(*),
	// the impact measure used throughout the paper's evaluation.
	ImpactMeasure model.Measure
	// QueryCache to use; nil creates an enabled cache.
	QueryCache *cache.QueryCache
	// Cost is the metered cost model; zero value uses DefaultCostModel.
	Cost CostModel
	// Meter receives cost and query accounting; nil creates a fresh meter.
	Meter *Meter
	// Observer, when non-nil, receives physical execution metrics
	// ("engine.physical.*": scans actually performed and rows actually
	// visited, counted via atomics on every scan path). Physical counts
	// reflect real work — unlike the canonical counters in miner.Stats they
	// may vary with worker count and budget timing — and never influence
	// query results or metering.
	Observer *obs.Observer
}

// New creates an engine over tab.
func New(tab *dataset.Table, cfg Config) (*Engine, error) {
	if cfg.Measures == nil {
		cfg.Measures = tab.DefaultMeasures()
	}
	if cfg.ImpactMeasure == (model.Measure{}) {
		cfg.ImpactMeasure = model.Count("*")
	}
	if !cfg.ImpactMeasure.Agg.Additive() {
		return nil, fmt.Errorf("engine: impact measure %s is not additive", cfg.ImpactMeasure)
	}
	if cfg.QueryCache == nil {
		cfg.QueryCache = cache.NewQueryCache(true)
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.Meter == nil {
		cfg.Meter = &Meter{}
	}
	e := &Engine{
		tab:      tab,
		measures: cfg.Measures,
		impact:   cfg.ImpactMeasure,
		qc:       cfg.QueryCache,
		cost:     cfg.Cost,
		meter:    cfg.Meter,
		obs:      cfg.Observer,
	}
	for _, m := range cfg.Measures {
		if err := e.checkMeasure(m); err != nil {
			return nil, err
		}
	}
	if err := e.checkMeasure(cfg.ImpactMeasure); err != nil {
		return nil, err
	}
	e.totalImp = e.totalImpactValue()
	if e.totalImp <= 0 {
		return nil, fmt.Errorf("engine: impact measure %s totals %v over the dataset", cfg.ImpactMeasure, e.totalImp)
	}
	return e, nil
}

func (e *Engine) checkMeasure(m model.Measure) error {
	if m.Agg == model.AggCount {
		return nil
	}
	if e.tab.MeasureColumn(m.Column) == nil {
		return fmt.Errorf("engine: measure %s references unknown column", m)
	}
	return nil
}

// recordScan counts one physical scan on the observer (a no-op when no
// observer is attached). Counted on every path that actually visits rows —
// metered and quiet alike — so "engine.physical.*" reports the machine's
// real work, complementing the canonical (worker-count-invariant) accounting
// in miner.Stats.
func (e *Engine) recordScan(rows int, augmented bool) {
	e.obs.Count("engine.physical.scans", 1)
	e.obs.Count("engine.physical.rows", int64(rows))
	if augmented {
		e.obs.Count("engine.physical.augmented_scans", 1)
	}
}

// Observer returns the engine's attached observer (possibly nil).
func (e *Engine) Observer() *obs.Observer { return e.obs }

// Table returns the table the engine queries.
func (e *Engine) Table() *dataset.Table { return e.tab }

// Measures returns the measure set M.
func (e *Engine) Measures() []model.Measure { return e.measures }

// ImpactMeasure returns the configured impact measure.
func (e *Engine) ImpactMeasure() model.Measure { return e.impact }

// Meter returns the engine's cost meter.
func (e *Engine) Meter() *Meter { return e.meter }

// QueryCache returns the engine's query cache.
func (e *Engine) QueryCache() *cache.QueryCache { return e.qc }

// totalImpactValue computes m_Impact({*}) directly (not metered: it is a
// one-time setup computation, equivalent to dataset metadata).
func (e *Engine) totalImpactValue() float64 {
	if e.impact.Agg == model.AggCount {
		return float64(e.tab.Rows())
	}
	col := e.tab.MeasureColumn(e.impact.Column)
	total := 0.0
	for i := 0; i < e.tab.Rows(); i++ {
		total += col.At(i)
	}
	return total
}

// TotalImpact returns m_Impact({*}), the denominator of Equation 2.
func (e *Engine) TotalImpact() float64 { return e.totalImp }

// BasicQuery answers the paper's BasicQuery(ds): the aggregate of
// ds.Measure grouped by ds.Breakdown under ds.Subspace (Table 2, row 1).
// The result is served from the query cache when possible; a miss scans the
// table once, producing (and caching) the full all-measures unit. Concurrent
// misses on the same unit coalesce: one scan executes and is charged, the
// other callers are accounted as cache-served.
func (e *Engine) BasicQuery(ds model.DataScope) (*Series, error) {
	if err := e.tab.Validate(ds); err != nil {
		return nil, err
	}
	unit, err := e.Unit(ds.Subspace, ds.Breakdown)
	if err != nil {
		return nil, err
	}
	return extract(unit, ds)
}

// Unit returns the full query-cache unit for (subspace, breakdown),
// executing a scan on a cache miss. Callers that need several measures of
// the same scope use this to avoid repeated extraction lookups. Concurrent
// misses single-flight into one charged scan; followers count as served.
func (e *Engine) Unit(subspace model.Subspace, breakdown string) (*cache.Unit, error) {
	if e.tab.Dimension(breakdown) == nil {
		return nil, fmt.Errorf("engine: unknown breakdown dimension %q", breakdown)
	}
	unit, ok := e.qc.Get(subspace.Key(), breakdown)
	if ok {
		e.meter.served.Add(1)
		return unit, nil
	}
	key := cache.UnitKey{Subspace: subspace.Key(), Breakdown: breakdown}
	res, leader := e.meteredUnits.Do(key, func() unitRes {
		// Double-check under the flight: a previous leader may have cached
		// the unit between this caller's miss and its flight entry.
		if u, ok := e.qc.Peek(key.Subspace, key.Breakdown); ok {
			return unitRes{u: u}
		}
		u, scanned := e.scanUnit(subspace, breakdown)
		e.recordScan(scanned, false)
		e.meter.executed.Add(1)
		e.meter.AddCost(e.cost.PerQuery + e.cost.PerRow*float64(scanned))
		e.qc.Put(u)
		return unitRes{u: u, scanned: true}
	})
	if !leader || !res.scanned {
		e.meter.served.Add(1)
	}
	return res.u, nil
}

// CheckAugmented validates an AugmentedQuery(ds, d) request without running
// it: the scope must be valid, d must be a known dimension, and d must not
// equal the breakdown.
func (e *Engine) CheckAugmented(ds model.DataScope, d string) error {
	if err := e.tab.Validate(ds); err != nil {
		return err
	}
	if e.tab.Dimension(d) == nil {
		return fmt.Errorf("engine: unknown augmentation dimension %q", d)
	}
	if d == ds.Breakdown {
		return fmt.Errorf("engine: augmentation dimension %q equals the breakdown", d)
	}
	return nil
}

// AugmentedQuery answers the paper's AugmentedQuery(ds, d) (Table 2, row 2):
// one scan filtered by ds.Subspace \ d, grouped by (ds.Breakdown, d), across
// all measures. It returns the cache units for every sibling subspace in
// SG(ds.Subspace, d) that has at least one record, keyed by the sibling's
// value on d; each unit is also stored in the query cache, pre-fetching the
// measure-extending and subspace-extending HDSs generated from ds.
// Concurrent identical calls coalesce into one charged scan; followers count
// as served.
func (e *Engine) AugmentedQuery(ds model.DataScope, d string) (map[string]*cache.Unit, error) {
	if err := e.CheckAugmented(ds, d); err != nil {
		return nil, err
	}
	base := ds.Subspace.Without(d)
	key := augKey{base: base.Key(), breakdown: ds.Breakdown, ext: d}
	units, leader := e.meteredAug.Do(key, func() map[string]*cache.Unit {
		units, scanned := e.scanAugmented(base, ds.Breakdown, d)
		e.recordScan(scanned, true)
		e.meter.executed.Add(1)
		e.meter.augmented.Add(1)
		// One scan answers |dom(d)| sibling queries; charge a single round
		// trip plus the scan, mirroring the paper's motivation for augmented
		// queries.
		e.meter.AddCost(e.cost.PerQuery + e.cost.PerRow*float64(scanned))
		for _, u := range units {
			e.qc.Put(u)
		}
		return units
	})
	if !leader {
		e.meter.served.Add(1)
	}
	return units, nil
}

// MaterializeUnit returns the unit for (subspace, breakdown) without touching
// the meter or the cache's hit/miss counters: a cached unit is peeked, a
// missing one is scanned (single-flighted) and stored. The miner's workers
// use the Materialize* paths for all data access and account for the work
// canonically at commit time, so the numbers reported for a run are
// independent of worker count and physical interleaving.
func (e *Engine) MaterializeUnit(subspace model.Subspace, breakdown string) (*cache.Unit, error) {
	if e.tab.Dimension(breakdown) == nil {
		return nil, fmt.Errorf("engine: unknown breakdown dimension %q", breakdown)
	}
	key := cache.UnitKey{Subspace: subspace.Key(), Breakdown: breakdown}
	if u, ok := e.qc.Peek(key.Subspace, key.Breakdown); ok {
		return u, nil
	}
	u, _ := e.quietUnits.Do(key, func() *cache.Unit {
		if u, ok := e.qc.Peek(key.Subspace, key.Breakdown); ok {
			return u // raced with another leader's Put
		}
		u, scanned := e.scanUnit(subspace, breakdown)
		e.recordScan(scanned, false)
		e.qc.Put(u)
		return u
	})
	return u, nil
}

// MaterializeBasic is the quiet (unmetered, uncounted) form of BasicQuery.
func (e *Engine) MaterializeBasic(ds model.DataScope) (*Series, error) {
	if err := e.tab.Validate(ds); err != nil {
		return nil, err
	}
	u, err := e.MaterializeUnit(ds.Subspace, ds.Breakdown)
	if err != nil {
		return nil, err
	}
	return extract(u, ds)
}

// MaterializeAugmented is the quiet (unmetered, uncounted) form of
// AugmentedQuery. The returned map's key set identifies exactly the
// non-empty siblings, which callers use to distinguish "empty sibling" from
// "not yet fetched".
func (e *Engine) MaterializeAugmented(ds model.DataScope, d string) (map[string]*cache.Unit, error) {
	if err := e.CheckAugmented(ds, d); err != nil {
		return nil, err
	}
	base := ds.Subspace.Without(d)
	key := augKey{base: base.Key(), breakdown: ds.Breakdown, ext: d}
	units, _ := e.quietAug.Do(key, func() map[string]*cache.Unit {
		units, scanned := e.scanAugmented(base, ds.Breakdown, d)
		e.recordScan(scanned, true)
		for _, u := range units {
			e.qc.Put(u)
		}
		return units
	})
	return units, nil
}

// ScanCost returns the metered cost a unit scan under subspace s would be
// charged, without scanning: the per-query overhead plus the per-row cost of
// the rows the scan plan would visit (the full table when s is unfiltered,
// otherwise the most selective filter's posting list — see scanPlan). The
// cost of a scan depends only on the subspace, not the breakdown, and an
// augmented scan of base subspace b costs exactly ScanCost(b).
func (e *Engine) ScanCost(s model.Subspace) float64 {
	scanned := e.tab.Rows()
	if len(s) > 0 {
		best := e.tab.Rows() + 1
		for _, f := range e.resolveFilters(s) {
			if l := len(f.col.Postings(int(f.code))); l < best {
				best = l
			}
		}
		scanned = best
	}
	return e.cost.PerQuery + e.cost.PerRow*float64(scanned)
}

// EvaluationCost returns the metered cost of one data-pattern evaluation.
func (e *Engine) EvaluationCost() float64 { return e.cost.PerEvaluation }

// Impact returns Impact_ds for a subspace (Equation 2): the impact measure's
// value on the subspace divided by its value on the whole dataset. The
// numerator is served by any unit of the subspace if cached; otherwise a
// count-style scan is metered.
func (e *Engine) Impact(s model.Subspace) (float64, error) {
	if len(s) == 0 {
		return 1, nil
	}
	// Any breakdown unit of this subspace can serve the impact value; prefer
	// a cached one before paying for a scan.
	for _, dim := range e.tab.DimensionNames() {
		if s.Has(dim) {
			continue
		}
		if u, ok := e.qc.Peek(s.Key(), dim); ok {
			return e.unitImpact(u) / e.totalImp, nil
		}
	}
	u, err := e.Unit(s, e.impactFallbackDim(s))
	if err != nil {
		return 0, err
	}
	return e.unitImpact(u) / e.totalImp, nil
}

// impactFallbackDim picks the breakdown for an impact scan: the first
// unfiltered dimension. If every dimension is filtered, grouping by a
// filtered one is still correct: the scan keeps the filter, so the unit
// holds exactly the one matching group.
func (e *Engine) impactFallbackDim(s model.Subspace) string {
	for _, dim := range e.tab.DimensionNames() {
		if !s.Has(dim) {
			return dim
		}
	}
	return e.tab.DimensionNames()[0]
}

// ImpactProbe describes how an impact value was (or would canonically be)
// obtained, so the miner can replay the lookup against its simulated cache:
// if any probe unit is cached the value is free, otherwise the fallback unit
// is scanned at Cost and enters the cache.
type ImpactProbe struct {
	// Subspace is the canonical key of the probed subspace.
	Subspace string
	// Probe lists the unfiltered breakdown dimensions, in table dimension
	// order; a cached unit on any of them serves the impact value.
	Probe []string
	// Fallback is the unit scanned when no probe key is cached.
	Fallback cache.UnitKey
	// Cost is the analytic metered cost of the fallback scan (ScanCost).
	Cost float64
	// Bytes is the fallback unit's ApproxBytes when this call observed the
	// unit, else 0. Best-effort: cache byte sizes are reporting-only.
	Bytes int64
}

// ImpactUnmetered is the quiet form of Impact: it computes the impact value
// without touching the meter or cache counters and returns an ImpactProbe
// recording how the lookup would be charged. The probe is nil for the empty
// subspace (impact 1 is free dataset metadata).
func (e *Engine) ImpactUnmetered(s model.Subspace) (float64, *ImpactProbe, error) {
	if len(s) == 0 {
		return 1, nil, nil
	}
	probe := make([]string, 0, len(e.tab.DimensionNames()))
	for _, dim := range e.tab.DimensionNames() {
		if !s.Has(dim) {
			probe = append(probe, dim)
		}
	}
	p := &ImpactProbe{
		Subspace: s.Key(),
		Probe:    probe,
		Fallback: cache.UnitKey{Subspace: s.Key(), Breakdown: e.impactFallbackDim(s)},
		Cost:     e.ScanCost(s),
	}
	var unit *cache.Unit
	for _, dim := range probe {
		if u, ok := e.qc.Peek(s.Key(), dim); ok {
			unit = u
			break
		}
	}
	if unit == nil {
		u, err := e.MaterializeUnit(s, p.Fallback.Breakdown)
		if err != nil {
			return 0, nil, err
		}
		unit = u
	}
	if unit.Key == p.Fallback {
		p.Bytes = unit.ApproxBytes()
	}
	return e.unitImpact(unit) / e.totalImp, p, nil
}

// unitImpact sums the impact measure over a unit's groups; valid because the
// impact measure is additive.
func (e *Engine) unitImpact(u *cache.Unit) float64 {
	if e.impact.Agg == model.AggCount {
		return statsSum(u.Counts)
	}
	return statsSum(u.Sums[e.impact.Column])
}

func statsSum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Extract materializes one measure's series from an already-fetched unit
// without touching the cache counters; callers that evaluate several
// measures of the same (subspace, breakdown) family use it after one Unit
// call.
func Extract(u *cache.Unit, ds model.DataScope) (*Series, error) {
	return extract(u, ds)
}

// extract materializes one measure's series from a unit. Groups with no
// records are already absent from the unit.
func extract(u *cache.Unit, ds model.DataScope) (*Series, error) {
	n := len(u.GroupKeys)
	vals := make([]float64, n)
	switch ds.Measure.Agg {
	case model.AggCount:
		copy(vals, u.Counts)
	case model.AggSum:
		src, ok := u.Sums[ds.Measure.Column]
		if !ok {
			return nil, fmt.Errorf("engine: unit lacks column %q", ds.Measure.Column)
		}
		copy(vals, src)
	case model.AggAvg:
		src, ok := u.Sums[ds.Measure.Column]
		if !ok {
			return nil, fmt.Errorf("engine: unit lacks column %q", ds.Measure.Column)
		}
		for i := range vals {
			vals[i] = src[i] / u.Counts[i]
		}
	case model.AggMin:
		src, ok := u.Mins[ds.Measure.Column]
		if !ok {
			return nil, fmt.Errorf("engine: unit lacks column %q", ds.Measure.Column)
		}
		copy(vals, src)
	case model.AggMax:
		src, ok := u.Maxs[ds.Measure.Column]
		if !ok {
			return nil, fmt.Errorf("engine: unit lacks column %q", ds.Measure.Column)
		}
		copy(vals, src)
	default:
		return nil, fmt.Errorf("engine: unsupported aggregate %v", ds.Measure.Agg)
	}
	return &Series{Scope: ds, Keys: u.GroupKeys, Values: vals}, nil
}

// filterSpec is a resolved subspace filter.
type filterSpec struct {
	col  *dataset.DimColumn
	code int32
}

func (e *Engine) resolveFilters(s model.Subspace) []filterSpec {
	specs := make([]filterSpec, 0, len(s))
	for _, f := range s {
		col := e.tab.Dimension(f.Dim)
		specs = append(specs, filterSpec{col: col, code: int32(col.Code(f.Value))})
	}
	return specs
}

// scanPlan chooses the row set to iterate: the most selective filter's
// posting list when the subspace is non-empty (the remaining filters are
// verified per row), or the full table otherwise. It returns the driving
// rows (nil = all rows) and the filters still to check.
func (e *Engine) scanPlan(filters []filterSpec) (drive []int32, rest []filterSpec) {
	if len(filters) == 0 {
		return nil, nil
	}
	best := -1
	bestLen := e.tab.Rows() + 1
	for i, f := range filters {
		if l := len(f.col.Postings(int(f.code))); l < bestLen {
			best, bestLen = i, l
		}
	}
	drive = filters[best].col.Postings(int(filters[best].code))
	rest = make([]filterSpec, 0, len(filters)-1)
	rest = append(rest, filters[:best]...)
	rest = append(rest, filters[best+1:]...)
	return drive, rest
}

// scanUnit executes one filtered group-by scan across all measure columns,
// producing the cache unit and the number of rows visited. It is pure with
// respect to the meter and caches; callers charge and store.
func (e *Engine) scanUnit(s model.Subspace, breakdown string) (*cache.Unit, int) {
	bcol := e.tab.Dimension(breakdown)
	card := bcol.Cardinality()
	filters := e.resolveFilters(s)
	mcols := e.tab.MeasureColumns()

	counts := make([]float64, card)
	sums := make([][]float64, len(mcols))
	mins := make([][]float64, len(mcols))
	maxs := make([][]float64, len(mcols))
	for i := range mcols {
		sums[i] = make([]float64, card)
		mins[i] = make([]float64, card)
		maxs[i] = make([]float64, card)
		for g := 0; g < card; g++ {
			mins[i][g] = math.Inf(1)
			maxs[i][g] = math.Inf(-1)
		}
	}

	drive, rest := e.scanPlan(filters)
	scanned := 0
	accumulate := func(r int) {
		for _, f := range rest {
			if f.col.CodeAt(r) != f.code {
				return
			}
		}
		g := bcol.CodeAt(r)
		counts[g]++
		for i, mc := range mcols {
			v := mc.At(r)
			sums[i][g] += v
			if v < mins[i][g] {
				mins[i][g] = v
			}
			if v > maxs[i][g] {
				maxs[i][g] = v
			}
		}
	}
	if drive == nil && len(filters) > 0 {
		drive = []int32{} // non-empty subspace with an absent value: no rows
	}
	if len(filters) == 0 {
		scanned = e.tab.Rows()
		for r := 0; r < scanned; r++ {
			accumulate(r)
		}
	} else {
		scanned = len(drive)
		for _, r := range drive {
			accumulate(int(r))
		}
	}

	return buildUnit(s.Key(), breakdown, bcol.Domain(), counts, mcols, sums, mins, maxs), scanned
}

// scanAugmented executes one scan grouped by (breakdown, d), producing one
// unit per non-empty value of d and the number of rows visited. Like
// scanUnit it is pure; callers charge and store.
func (e *Engine) scanAugmented(base model.Subspace, breakdown, d string) (map[string]*cache.Unit, int) {
	bcol := e.tab.Dimension(breakdown)
	dcol := e.tab.Dimension(d)
	bcard, dcard := bcol.Cardinality(), dcol.Cardinality()
	filters := e.resolveFilters(base)
	mcols := e.tab.MeasureColumns()

	cells := bcard * dcard
	counts := make([]float64, cells)
	sums := make([][]float64, len(mcols))
	mins := make([][]float64, len(mcols))
	maxs := make([][]float64, len(mcols))
	for i := range mcols {
		sums[i] = make([]float64, cells)
		mins[i] = make([]float64, cells)
		maxs[i] = make([]float64, cells)
		for g := 0; g < cells; g++ {
			mins[i][g] = math.Inf(1)
			maxs[i][g] = math.Inf(-1)
		}
	}

	drive, rest := e.scanPlan(filters)
	scanned := 0
	accumulate := func(r int) {
		for _, f := range rest {
			if f.col.CodeAt(r) != f.code {
				return
			}
		}
		g := int(dcol.CodeAt(r))*bcard + int(bcol.CodeAt(r))
		counts[g]++
		for i, mc := range mcols {
			v := mc.At(r)
			sums[i][g] += v
			if v < mins[i][g] {
				mins[i][g] = v
			}
			if v > maxs[i][g] {
				maxs[i][g] = v
			}
		}
	}
	if drive == nil && len(filters) > 0 {
		drive = []int32{}
	}
	if len(filters) == 0 {
		scanned = e.tab.Rows()
		for r := 0; r < scanned; r++ {
			accumulate(r)
		}
	} else {
		scanned = len(drive)
		for _, r := range drive {
			accumulate(int(r))
		}
	}

	units := make(map[string]*cache.Unit, dcard)
	bdomain := bcol.Domain()
	for dv := 0; dv < dcard; dv++ {
		lo, hi := dv*bcard, (dv+1)*bcard
		sub := base.With(d, dcol.Value(dv))
		colSums := make([][]float64, len(mcols))
		colMins := make([][]float64, len(mcols))
		colMaxs := make([][]float64, len(mcols))
		for i := range mcols {
			colSums[i] = sums[i][lo:hi]
			colMins[i] = mins[i][lo:hi]
			colMaxs[i] = maxs[i][lo:hi]
		}
		u := buildUnit(sub.Key(), breakdown, bdomain, counts[lo:hi], mcols, colSums, colMins, colMaxs)
		if len(u.GroupKeys) > 0 {
			units[dcol.Value(dv)] = u
		}
	}
	return units, scanned
}

// buildUnit compresses full-domain accumulator arrays into a unit holding
// only the non-empty groups.
func buildUnit(subspaceKey, breakdown string, domain []string, counts []float64,
	mcols []*dataset.MeasureColumn, sums, mins, maxs [][]float64) *cache.Unit {

	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	u := &cache.Unit{
		Key:       cache.UnitKey{Subspace: subspaceKey, Breakdown: breakdown},
		GroupKeys: make([]string, 0, nonEmpty),
		Counts:    make([]float64, 0, nonEmpty),
		Sums:      make(map[string][]float64, len(mcols)),
		Mins:      make(map[string][]float64, len(mcols)),
		Maxs:      make(map[string][]float64, len(mcols)),
	}
	for i, mc := range mcols {
		u.Sums[mc.Name] = make([]float64, 0, nonEmpty)
		u.Mins[mc.Name] = make([]float64, 0, nonEmpty)
		u.Maxs[mc.Name] = make([]float64, 0, nonEmpty)
		_ = i
	}
	for g, c := range counts {
		if c == 0 {
			continue
		}
		u.GroupKeys = append(u.GroupKeys, domain[g])
		u.Counts = append(u.Counts, c)
		for i, mc := range mcols {
			u.Sums[mc.Name] = append(u.Sums[mc.Name], sums[i][g])
			u.Mins[mc.Name] = append(u.Mins[mc.Name], mins[i][g])
			u.Maxs[mc.Name] = append(u.Maxs[mc.Name], maxs[i][g])
		}
	}
	return u
}

// ChargeEvaluation charges the metered cost of one data-pattern evaluation.
func (e *Engine) ChargeEvaluation() {
	e.meter.AddCost(e.cost.PerEvaluation)
}
