package engine

// The bench-regression guard for the full-scan speed wall: a CI smoke that
// re-measures the filters=0 ScanUnit cost of the vectorized substrate
// relative to the naive reference and fails when the blessed ratio recorded
// in testdata/bench_baseline.json regresses by more than 20%. The guard
// compares a ratio instead of absolute nanoseconds so it holds on any CI
// host speed; both substrates run on the same box in the same process, so
// host noise divides out. Gated behind BENCH_GUARD=1 because ~100 timed
// full scans are too slow (and too flaky under -race) for the ordinary
// test run.

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

type benchBaseline struct {
	Description string             `json:"description"`
	Ratios      map[string]float64 `json:"scan_unit_filters0_ratio"`
}

// guardIters mirrors -benchtime=100x: enough iterations that a single
// scheduler hiccup cannot dominate the measurement, few enough that the
// guard stays a smoke test.
const guardIters = 100

func timeScanUnit(t *testing.T, sub Substrate, iters int) time.Duration {
	t.Helper()
	// One untimed warm-up scan per substrate: first touch builds dictionaries,
	// posting lists and zone maps, which are one-off costs the steady-state
	// ratio must not include.
	if _, _, err := sub.ScanUnit(nil, "DimA"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := sub.ScanUnit(nil, "DimA"); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

func TestScanUnitFilters0RegressionGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the bench-regression guard")
	}
	data, err := os.ReadFile("testdata/bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	for _, card := range []string{"small", "large"} {
		blessed, ok := base.Ratios[card]
		if !ok || blessed <= 0 {
			t.Fatalf("baseline has no blessed ratio for table %q", card)
		}
		tab := benchTable(card)
		vecNs := timeScanUnit(t, NewColumnarSubstrate(tab, WithScanParallelism(1)), guardIters)
		refNs := timeScanUnit(t, NewReferenceSubstrate(tab, nil), guardIters)
		if refNs <= 0 {
			t.Fatalf("table %s: reference scan measured %v", card, refNs)
		}
		ratio := float64(vecNs) / float64(refNs)
		limit := blessed * 1.2
		t.Logf("table %s: vec %v / ref %v over %d iters -> ratio %.3f (blessed %.2f, limit %.3f)",
			card, vecNs, refNs, guardIters, ratio, blessed, limit)
		if ratio > limit {
			t.Errorf("table %s: filters=0 ScanUnit regressed: vec/ref ratio %.3f exceeds blessed %.2f x 1.2 = %.3f",
				card, ratio, blessed, limit)
		}
	}
}
