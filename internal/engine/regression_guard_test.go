package engine

// The bench-regression guard for the full-scan speed wall: a CI smoke that
// re-measures the filters=0 ScanUnit cost of the vectorized substrate
// relative to the naive reference and fails when the blessed ratio recorded
// in testdata/bench_baseline.json regresses by more than 20%. The guard
// compares a ratio instead of absolute nanoseconds so it holds on any CI
// host speed; both substrates run on the same box in the same process, so
// host noise divides out. Gated behind BENCH_GUARD=1 because ~100 timed
// full scans are too slow (and too flaky under -race) for the ordinary
// test run.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

type benchBaseline struct {
	Description string             `json:"description"`
	Ratios      map[string]float64 `json:"scan_unit_filters0_ratio"`
	// BitmapRatios blesses the multi-filter (filters=3) ScanUnit cost of the
	// compressed-bitmap intersect relative to the sorted-slice merge retained
	// as the differential reference: PlanBitmap ns ÷ PlanIntersect ns, lower
	// is better. Guards the tentpole claim that multi-filter scans pay for
	// rows, not candidate lists.
	BitmapRatios map[string]float64 `json:"scan_unit_filters3_bitmap_ratio"`
	// PostingsBytes blesses the compressed posting-list footprint in bytes
	// per row (summed over every dimension). Deterministic — no timing — but
	// kept under the same gate so all blessed numbers live in one file.
	PostingsBytes map[string]float64 `json:"postings_bytes_per_row"`
}

func loadBenchBaseline(t *testing.T) benchBaseline {
	t.Helper()
	data, err := os.ReadFile("testdata/bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	return base
}

// guardIters mirrors -benchtime=100x: enough iterations that a single
// scheduler hiccup cannot dominate the measurement, few enough that the
// guard stays a smoke test.
const guardIters = 100

func timeScanUnit(t *testing.T, sub Substrate, iters int) time.Duration {
	return timeScanUnitSub(t, sub, nil, iters)
}

func timeScanUnitSub(t *testing.T, sub Substrate, s model.Subspace, iters int) time.Duration {
	t.Helper()
	// One untimed warm-up scan per substrate: first touch builds dictionaries,
	// posting lists and zone maps, which are one-off costs the steady-state
	// ratio must not include.
	if _, _, err := sub.ScanUnit(s, "DimA"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := sub.ScanUnit(s, "DimA"); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

func TestScanUnitFilters0RegressionGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the bench-regression guard")
	}
	base := loadBenchBaseline(t)
	for _, card := range []string{"small", "large"} {
		blessed, ok := base.Ratios[card]
		if !ok || blessed <= 0 {
			t.Fatalf("baseline has no blessed ratio for table %q", card)
		}
		tab := benchTable(card)
		vecNs := timeScanUnit(t, NewColumnarSubstrate(tab, WithScanParallelism(1)), guardIters)
		refNs := timeScanUnit(t, NewReferenceSubstrate(tab, nil), guardIters)
		if refNs <= 0 {
			t.Fatalf("table %s: reference scan measured %v", card, refNs)
		}
		ratio := float64(vecNs) / float64(refNs)
		limit := blessed * 1.2
		t.Logf("table %s: vec %v / ref %v over %d iters -> ratio %.3f (blessed %.2f, limit %.3f)",
			card, vecNs, refNs, guardIters, ratio, blessed, limit)
		if ratio > limit {
			t.Errorf("table %s: filters=0 ScanUnit regressed: vec/ref ratio %.3f exceeds blessed %.2f x 1.2 = %.3f",
				card, ratio, blessed, limit)
		}
	}
}

// intersectGuardIters: multi-filter scans touch few rows, so each iteration
// is microseconds — more iterations keep the ratio out of timer noise while
// the guard stays well under a second per table.
const intersectGuardIters = 2000

// timePlanScan measures the first touch of a subspace — plan (posting-set
// intersection) plus scan — by taking a fresh substrate per iteration, the
// mining frontier's access pattern: each distinct subspace is planned exactly
// once, so the memoized steady state would amortize the intersect kernels to
// zero. Posting lists and bitmaps stay cached on the shared table columns,
// so only the per-subspace work is timed.
func timePlanScan(t *testing.T, tab *dataset.Table, mode PlanMode, s model.Subspace, iters int) time.Duration {
	t.Helper()
	// Untimed warm-up builds the column-cached postings of both
	// representations.
	if _, _, err := NewColumnarSubstrate(tab, WithPlanMode(mode)).ScanUnit(s, "DimA"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := NewColumnarSubstrate(tab, WithPlanMode(mode)).ScanUnit(s, "DimA"); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

// TestBitmapIntersectRegressionGuard re-measures the filters=3 plan+scan cost
// of the compressed-bitmap intersect (PlanBitmap) against the sorted-slice
// merge (PlanIntersect, the differential reference) and fails when the
// blessed bitmap/slice ratio regresses by more than 20%. Both paths compute
// the identical row set on the identical host, so the ratio isolates the
// intersect kernels.
func TestBitmapIntersectRegressionGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the bench-regression guard")
	}
	base := loadBenchBaseline(t)
	for _, card := range []string{"small", "large"} {
		blessed, ok := base.BitmapRatios[card]
		if !ok || blessed <= 0 {
			t.Fatalf("baseline has no blessed bitmap-intersect ratio for table %q", card)
		}
		tab := benchTable(card)
		s := benchSubspace(tab, 3)
		bmNs := timePlanScan(t, tab, PlanBitmap, s, intersectGuardIters)
		slNs := timePlanScan(t, tab, PlanIntersect, s, intersectGuardIters)
		if slNs <= 0 {
			t.Fatalf("table %s: slice intersect measured %v", card, slNs)
		}
		ratio := float64(bmNs) / float64(slNs)
		limit := blessed * 1.2
		t.Logf("table %s: bitmap %v / slice %v over %d iters -> ratio %.3f (blessed %.2f, limit %.3f)",
			card, bmNs, slNs, intersectGuardIters, ratio, blessed, limit)
		if ratio > limit {
			t.Errorf("table %s: filters=3 bitmap intersect regressed: bitmap/slice ratio %.3f exceeds blessed %.2f x 1.2 = %.3f",
				card, ratio, blessed, limit)
		}
	}
}

// TestPostingsMemoryRegressionGuard pins the compressed posting-list
// footprint: bytes per row summed across every dimension's bitmaps must not
// grow past the blessed value by more than 20%. The footprint is a
// deterministic function of the generated tables, so any drift is a real
// container-sizing change, not noise.
func TestPostingsMemoryRegressionGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the bench-regression guard")
	}
	base := loadBenchBaseline(t)
	for _, card := range []string{"small", "large"} {
		blessed, ok := base.PostingsBytes[card]
		if !ok || blessed <= 0 {
			t.Fatalf("baseline has no blessed postings bytes-per-row for table %q", card)
		}
		tab := benchTable(card)
		st := tab.PostingsStats()
		perRow := float64(st.CompressedBytes) / float64(tab.Rows())
		limit := blessed * 1.2
		slice := 4.0 * float64(len(tab.Dimensions()))
		t.Logf("table %s: %d B compressed over %d rows -> %.3f B/row (blessed %.2f, limit %.3f, slice %.0f B/row)",
			card, st.CompressedBytes, tab.Rows(), perRow, blessed, limit, slice)
		if perRow > limit {
			t.Errorf("table %s: postings footprint regressed: %.3f B/row exceeds blessed %.2f x 1.2 = %.3f",
				card, perRow, blessed, limit)
		}
		if perRow >= slice {
			t.Errorf("table %s: compressed postings (%.3f B/row) are no smaller than the sorted-slice footprint (%.0f B/row)",
				card, perRow, slice)
		}
	}
}
