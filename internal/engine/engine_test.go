package engine

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"metainsight/internal/cache"
	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

// randomTable builds a deterministic random table for reference checks.
func randomTable(seed int64, rows int) *dataset.Table {
	r := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("rand", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Style", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Sales", Kind: model.KindMeasure},
		{Name: "Profit", Kind: model.KindMeasure},
	})
	cities := []string{"LA", "SF", "SD", "SJ"}
	styles := []string{"1Story", "2Story", "Condo"}
	months := []string{"Jan", "Feb", "Mar", "Apr"}
	for i := 0; i < rows; i++ {
		b.AddRow(
			[]string{cities[r.Intn(len(cities))], styles[r.Intn(len(styles))], months[r.Intn(len(months))]},
			[]float64{math.Floor(r.Float64() * 1000), math.Floor(r.Float64()*200) - 100},
		)
	}
	return b.Build()
}

func newEngine(t *testing.T, tab *dataset.Table, qcEnabled bool) *Engine {
	t.Helper()
	// Tests query MIN/MAX ad hoc, so declare them over every measure column;
	// production callers declare only what registered evaluators need.
	var extras []model.Measure
	for _, mc := range tab.MeasureColumns() {
		extras = append(extras, model.Min(mc.Name), model.Max(mc.Name))
	}
	e, err := New(tab, Config{QueryCache: cache.NewQueryCache(qcEnabled), ExtraMeasures: extras})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// naiveAggregate computes the reference result of a basic query by direct
// row iteration.
func naiveAggregate(tab *dataset.Table, ds model.DataScope) (map[string]float64, map[string]float64) {
	sums := map[string]float64{}
	counts := map[string]float64{}
	bcol := tab.Dimension(ds.Breakdown)
	var mcol *dataset.MeasureColumn
	if ds.Measure.Agg != model.AggCount {
		mcol = tab.MeasureColumn(ds.Measure.Column)
	}
	for r := 0; r < tab.Rows(); r++ {
		match := true
		for _, f := range ds.Subspace {
			col := tab.Dimension(f.Dim)
			if col.Value(int(col.CodeAt(r))) != f.Value {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		g := bcol.Value(int(bcol.CodeAt(r)))
		counts[g]++
		if mcol != nil {
			sums[g] += mcol.At(r)
		}
	}
	return sums, counts
}

func TestBasicQueryMatchesNaiveSum(t *testing.T) {
	tab := randomTable(1, 500)
	e := newEngine(t, tab, true)
	ds := model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}
	s, err := e.BasicQuery(ds)
	if err != nil {
		t.Fatal(err)
	}
	sums, _ := naiveAggregate(tab, ds)
	if len(s.Keys) != len(sums) {
		t.Fatalf("groups = %d, want %d", len(s.Keys), len(sums))
	}
	for i, k := range s.Keys {
		if math.Abs(s.Values[i]-sums[k]) > 1e-9 {
			t.Errorf("SUM[%s] = %v, want %v", k, s.Values[i], sums[k])
		}
	}
}

func TestBasicQueryAggregates(t *testing.T) {
	b := dataset.NewBuilder("t", []model.Field{
		{Name: "G", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	for i, g := range []string{"a", "a", "a", "b", "b"} {
		b.AddRow([]string{g}, []float64{float64(i + 1)}) // a: 1,2,3  b: 4,5
	}
	e := newEngine(t, b.Build(), true)
	cases := []struct {
		m    model.Measure
		want map[string]float64
	}{
		{model.Sum("V"), map[string]float64{"a": 6, "b": 9}},
		{model.Count("*"), map[string]float64{"a": 3, "b": 2}},
		{model.Avg("V"), map[string]float64{"a": 2, "b": 4.5}},
		{model.Min("V"), map[string]float64{"a": 1, "b": 4}},
		{model.Max("V"), map[string]float64{"a": 3, "b": 5}},
	}
	for _, c := range cases {
		s, err := e.BasicQuery(model.DataScope{Breakdown: "G", Measure: c.m})
		if err != nil {
			t.Fatalf("%s: %v", c.m, err)
		}
		for i, k := range s.Keys {
			if s.Values[i] != c.want[k] {
				t.Errorf("%s[%s] = %v, want %v", c.m, k, s.Values[i], c.want[k])
			}
		}
	}
}

func TestBasicQueryOmitsEmptyGroups(t *testing.T) {
	b := dataset.NewBuilder("t", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "V", Kind: model.KindMeasure},
	})
	b.AddRow([]string{"LA", "Jan"}, []float64{1})
	b.AddRow([]string{"LA", "Feb"}, []float64{2})
	b.AddRow([]string{"SF", "Mar"}, []float64{3})
	e := newEngine(t, b.Build(), true)
	s, err := e.BasicQuery(model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}),
		Breakdown: "Month",
		Measure:   model.Sum("V"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Keys) != 2 || s.Keys[0] != "Jan" || s.Keys[1] != "Feb" {
		t.Errorf("keys = %v", s.Keys)
	}
}

func TestQueryCacheHitSkipsScan(t *testing.T) {
	tab := randomTable(2, 200)
	e := newEngine(t, tab, true)
	ds := model.DataScope{Breakdown: "Month", Measure: model.Sum("Sales")}
	if _, err := e.BasicQuery(ds); err != nil {
		t.Fatal(err)
	}
	execAfterFirst := e.Meter().ExecutedQueries()
	cost1 := e.Meter().Cost()
	// Same unit, different measure: must be a cache hit.
	ds2 := ds
	ds2.Measure = model.Avg("Profit")
	if _, err := e.BasicQuery(ds2); err != nil {
		t.Fatal(err)
	}
	if e.Meter().ExecutedQueries() != execAfterFirst {
		t.Error("measure variant re-scanned despite cache")
	}
	if e.Meter().Cost() != cost1 {
		t.Error("cache hit charged cost")
	}
	if e.Meter().ServedQueries() != 1 {
		t.Errorf("served = %d", e.Meter().ServedQueries())
	}
}

func TestDisabledCacheAlwaysScans(t *testing.T) {
	tab := randomTable(3, 200)
	e := newEngine(t, tab, false)
	ds := model.DataScope{Breakdown: "Month", Measure: model.Sum("Sales")}
	for i := 0; i < 3; i++ {
		if _, err := e.BasicQuery(ds); err != nil {
			t.Fatal(err)
		}
	}
	if e.Meter().ExecutedQueries() != 3 {
		t.Errorf("executed = %d, want 3", e.Meter().ExecutedQueries())
	}
}

func TestAugmentedQueryMatchesPerSiblingBasics(t *testing.T) {
	tab := randomTable(4, 400)
	// Reference engine without cache interference.
	ref := newEngine(t, tab, false)
	e := newEngine(t, tab, true)
	anchor := model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}
	units, err := e.AugmentedQuery(anchor, "City")
	if err != nil {
		t.Fatal(err)
	}
	for _, city := range []string{"LA", "SF", "SD", "SJ"} {
		u, ok := units[city]
		if !ok {
			t.Fatalf("missing sibling unit for %s", city)
		}
		ds := anchor
		ds.Subspace = anchor.Subspace.With("City", city)
		want, err := ref.BasicQuery(ds)
		if err != nil {
			t.Fatal(err)
		}
		if len(u.GroupKeys) != len(want.Keys) {
			t.Fatalf("%s: group count %d vs %d", city, len(u.GroupKeys), len(want.Keys))
		}
		for i, k := range want.Keys {
			if u.GroupKeys[i] != k || math.Abs(u.Sums["Sales"][i]-want.Values[i]) > 1e-9 {
				t.Errorf("%s[%s]: %v vs %v", city, k, u.Sums["Sales"][i], want.Values[i])
			}
		}
	}
	// One scan must have answered all four siblings.
	if e.Meter().ExecutedQueries() != 1 {
		t.Errorf("augmented query executed %d scans", e.Meter().ExecutedQueries())
	}
	// Subsequent sibling basic queries are served by the cache.
	dsSF := anchor
	dsSF.Subspace = anchor.Subspace.With("City", "SF")
	if _, err := e.BasicQuery(dsSF); err != nil {
		t.Fatal(err)
	}
	if e.Meter().ExecutedQueries() != 1 {
		t.Error("prefetched sibling re-scanned")
	}
}

func TestAugmentedQueryRejectsBreakdownDim(t *testing.T) {
	tab := randomTable(5, 50)
	e := newEngine(t, tab, true)
	anchor := model.DataScope{Breakdown: "Month", Measure: model.Sum("Sales")}
	if _, err := e.AugmentedQuery(anchor, "Month"); err == nil {
		t.Error("augmenting by the breakdown dimension must fail")
	}
}

func TestImpact(t *testing.T) {
	b := dataset.NewBuilder("t", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "V", Kind: model.KindMeasure},
	})
	for i := 0; i < 8; i++ {
		city := "LA"
		if i >= 6 {
			city = "SF"
		}
		b.AddRow([]string{city, "M" + strconv.Itoa(i%3+1)}, []float64{1})
	}
	e := newEngine(t, b.Build(), true)
	if e.TotalImpact() != 8 {
		t.Fatalf("total impact = %v", e.TotalImpact())
	}
	imp, err := e.Impact(model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp-0.75) > 1e-12 {
		t.Errorf("impact(LA) = %v, want 0.75", imp)
	}
	if imp, _ := e.Impact(model.EmptySubspace); imp != 1 {
		t.Errorf("impact({*}) = %v", imp)
	}
}

func TestImpactWithSumMeasure(t *testing.T) {
	b := dataset.NewBuilder("t", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	b.AddRow([]string{"LA"}, []float64{30})
	b.AddRow([]string{"SF"}, []float64{70})
	e, err := New(b.Build(), Config{ImpactMeasure: model.Sum("V")})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := e.Impact(model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp-0.3) > 1e-12 {
		t.Errorf("impact = %v, want 0.3", imp)
	}
}

func TestNewRejectsNonAdditiveImpact(t *testing.T) {
	tab := randomTable(6, 20)
	if _, err := New(tab, Config{ImpactMeasure: model.Avg("Sales")}); err == nil {
		t.Error("AVG impact measure accepted")
	}
}

func TestNewRejectsUnknownMeasure(t *testing.T) {
	tab := randomTable(7, 20)
	if _, err := New(tab, Config{Measures: []model.Measure{model.Sum("Nope")}}); err == nil {
		t.Error("unknown measure column accepted")
	}
}

func TestCostModelCharges(t *testing.T) {
	tab := randomTable(8, 1000)
	m := &Meter{}
	e, err := New(tab, Config{
		Cost:  CostModel{PerQuery: 5, PerRow: 0.001, PerEvaluation: 0.2},
		Meter: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BasicQuery(model.DataScope{Breakdown: "Month", Measure: model.Sum("Sales")}); err != nil {
		t.Fatal(err)
	}
	want := 5 + 0.001*1000
	if math.Abs(m.Cost()-want) > 1e-6 {
		t.Errorf("cost = %v, want %v", m.Cost(), want)
	}
	e.ChargeEvaluation()
	if math.Abs(m.Cost()-want-0.2) > 1e-6 {
		t.Error("evaluation cost not charged")
	}
}

func TestUnitImpactConsistency(t *testing.T) {
	// Sum of sibling impacts equals the parent impact (additivity — the
	// property Equation 17 and the miner's Impact_HDS computation rely on).
	tab := randomTable(9, 300)
	e := newEngine(t, tab, true)
	u, err := e.Unit(model.EmptySubspace, "City")
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range u.Counts {
		total += c
	}
	if total != float64(tab.Rows()) {
		t.Errorf("sibling impacts sum to %v of %d rows", total, tab.Rows())
	}
}

// TestScanCostMatchesMeteredCost verifies the analytic ScanCost equals what
// an executed scan is actually charged, filtered and unfiltered. The miner's
// canonical accounting relies on this equality to charge budgets without
// scanning.
func TestScanCostMatchesMeteredCost(t *testing.T) {
	tab := randomTable(11, 500)
	subspaces := []model.Subspace{
		model.EmptySubspace,
		model.EmptySubspace.With("City", "LA"),
		model.EmptySubspace.With("City", "SF").With("Style", "Condo"),
		model.EmptySubspace.With("City", "SD").With("Style", "1Story").With("Month", "Jan"),
	}
	for _, s := range subspaces {
		e := newEngine(t, tab, false) // disabled cache: every query scans
		want := e.ScanCost(s)
		before := e.Meter().Cost()
		if _, err := e.Unit(s, "Month"); err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
		if got := e.Meter().Cost() - before; got != want {
			t.Errorf("subspace %q: ScanCost = %v, metered = %v", s.Key(), want, got)
		}
	}
}

// TestMaterializePathsAreQuiet verifies the Materialize*/ImpactUnmetered
// paths touch neither the meter nor the cache hit/miss counters, while still
// caching their scans.
func TestMaterializePathsAreQuiet(t *testing.T) {
	tab := randomTable(12, 400)
	e := newEngine(t, tab, true)
	sub := model.EmptySubspace.With("City", "LA")

	if _, err := e.MaterializeUnit(sub, "Month"); err != nil {
		t.Fatal(err)
	}
	ds := model.DataScope{Subspace: sub, Breakdown: "Style", Measure: model.Sum("Sales")}
	if _, err := e.MaterializeBasic(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := e.MaterializeAugmented(
		model.DataScope{Subspace: sub, Breakdown: "Style", Measure: model.Sum("Sales")}, "Month"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ImpactUnmetered(sub); err != nil {
		t.Fatal(err)
	}

	m := e.Meter()
	if m.Cost() != 0 || m.ExecutedQueries() != 0 || m.ServedQueries() != 0 || m.AugmentedQueries() != 0 {
		t.Errorf("quiet paths charged the meter: cost=%v exec=%d served=%d aug=%d",
			m.Cost(), m.ExecutedQueries(), m.ServedQueries(), m.AugmentedQueries())
	}
	st := e.QueryCache().Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("quiet paths touched cache counters: %+v", st)
	}
	if st.Entries == 0 {
		t.Error("quiet paths did not populate the cache")
	}
}

// TestMaterializeMatchesMeteredResults verifies quiet and metered paths
// return identical data.
func TestMaterializeMatchesMeteredResults(t *testing.T) {
	tab := randomTable(13, 300)
	quiet := newEngine(t, tab, true)
	metered := newEngine(t, tab, true)
	sub := model.EmptySubspace.With("Style", "Condo")
	ds := model.DataScope{Subspace: sub, Breakdown: "Month", Measure: model.Avg("Profit")}

	a, err := quiet.MaterializeBasic(ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := metered.BasicQuery(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Keys) != len(b.Keys) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Keys), len(b.Keys))
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || a.Values[i] != b.Values[i] {
			t.Errorf("group %d: (%s, %v) vs (%s, %v)", i, a.Keys[i], a.Values[i], b.Keys[i], b.Values[i])
		}
	}

	ia, pa, err := quiet.ImpactUnmetered(sub)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := metered.Impact(sub)
	if err != nil {
		t.Fatal(err)
	}
	if ia != ib {
		t.Errorf("impact: quiet %v vs metered %v", ia, ib)
	}
	if pa == nil || pa.Cost != quiet.ScanCost(sub) {
		t.Errorf("impact probe = %+v", pa)
	}
}

// TestUnitSingleFlight verifies that concurrent metered misses on one unit
// coalesce: exactly one scan executes and is charged, the rest are served.
func TestUnitSingleFlight(t *testing.T) {
	tab := randomTable(14, 2000)
	e := newEngine(t, tab, true)
	sub := model.EmptySubspace.With("City", "SJ")

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Unit(sub, "Month"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	m := e.Meter()
	if m.ExecutedQueries() != 1 {
		t.Errorf("executed = %d, want 1 (single-flight)", m.ExecutedQueries())
	}
	if m.ExecutedQueries()+m.ServedQueries() != n {
		t.Errorf("executed+served = %d, want %d", m.ExecutedQueries()+m.ServedQueries(), n)
	}
	if want := e.ScanCost(sub); m.Cost() != want {
		t.Errorf("cost = %v, want %v (one scan)", m.Cost(), want)
	}
}

// TestAugmentedSingleFlightAccounting checks the augmented-scan accounting
// invariant under concurrency: every call is either the leader of a scan
// (executed+augmented) or a follower of a concurrent one (served), and cost
// equals exactly the executed scans. Calls that do not overlap in time scan
// again (an augmented query has no cache short-circuit, as in the paper), so
// only the sum — not executed == 1 — is timing-independent.
func TestAugmentedSingleFlightAccounting(t *testing.T) {
	tab := randomTable(15, 2000)
	e := newEngine(t, tab, true)
	ds := model.DataScope{
		Subspace:  model.EmptySubspace.With("City", "LA"),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.AugmentedQuery(ds, "Style"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	m := e.Meter()
	if m.ExecutedQueries() < 1 || m.ExecutedQueries() != m.AugmentedQueries() {
		t.Errorf("executed = %d augmented = %d", m.ExecutedQueries(), m.AugmentedQueries())
	}
	if m.ExecutedQueries()+m.ServedQueries() != n {
		t.Errorf("executed+served = %d, want %d", m.ExecutedQueries()+m.ServedQueries(), n)
	}
	base := ds.Subspace.Without("Style")
	if want := float64(m.ExecutedQueries()) * e.ScanCost(base); m.Cost() != want {
		t.Errorf("cost = %v, want %v (%d scans)", m.Cost(), want, m.ExecutedQueries())
	}
}
