package engine

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"metainsight/internal/cache"
	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

// randomTable builds a deterministic random table for reference checks.
func randomTable(seed int64, rows int) *dataset.Table {
	r := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("rand", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Style", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "Sales", Kind: model.KindMeasure},
		{Name: "Profit", Kind: model.KindMeasure},
	})
	cities := []string{"LA", "SF", "SD", "SJ"}
	styles := []string{"1Story", "2Story", "Condo"}
	months := []string{"Jan", "Feb", "Mar", "Apr"}
	for i := 0; i < rows; i++ {
		b.AddRow(
			[]string{cities[r.Intn(len(cities))], styles[r.Intn(len(styles))], months[r.Intn(len(months))]},
			[]float64{math.Floor(r.Float64() * 1000), math.Floor(r.Float64()*200) - 100},
		)
	}
	return b.Build()
}

func newEngine(t *testing.T, tab *dataset.Table, qcEnabled bool) *Engine {
	t.Helper()
	e, err := New(tab, Config{QueryCache: cache.NewQueryCache(qcEnabled)})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// naiveAggregate computes the reference result of a basic query by direct
// row iteration.
func naiveAggregate(tab *dataset.Table, ds model.DataScope) (map[string]float64, map[string]float64) {
	sums := map[string]float64{}
	counts := map[string]float64{}
	bcol := tab.Dimension(ds.Breakdown)
	var mcol *dataset.MeasureColumn
	if ds.Measure.Agg != model.AggCount {
		mcol = tab.MeasureColumn(ds.Measure.Column)
	}
	for r := 0; r < tab.Rows(); r++ {
		match := true
		for _, f := range ds.Subspace {
			col := tab.Dimension(f.Dim)
			if col.Value(int(col.CodeAt(r))) != f.Value {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		g := bcol.Value(int(bcol.CodeAt(r)))
		counts[g]++
		if mcol != nil {
			sums[g] += mcol.At(r)
		}
	}
	return sums, counts
}

func TestBasicQueryMatchesNaiveSum(t *testing.T) {
	tab := randomTable(1, 500)
	e := newEngine(t, tab, true)
	ds := model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}
	s, err := e.BasicQuery(ds)
	if err != nil {
		t.Fatal(err)
	}
	sums, _ := naiveAggregate(tab, ds)
	if len(s.Keys) != len(sums) {
		t.Fatalf("groups = %d, want %d", len(s.Keys), len(sums))
	}
	for i, k := range s.Keys {
		if math.Abs(s.Values[i]-sums[k]) > 1e-9 {
			t.Errorf("SUM[%s] = %v, want %v", k, s.Values[i], sums[k])
		}
	}
}

func TestBasicQueryAggregates(t *testing.T) {
	b := dataset.NewBuilder("t", []model.Field{
		{Name: "G", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	for i, g := range []string{"a", "a", "a", "b", "b"} {
		b.AddRow([]string{g}, []float64{float64(i + 1)}) // a: 1,2,3  b: 4,5
	}
	e := newEngine(t, b.Build(), true)
	cases := []struct {
		m    model.Measure
		want map[string]float64
	}{
		{model.Sum("V"), map[string]float64{"a": 6, "b": 9}},
		{model.Count("*"), map[string]float64{"a": 3, "b": 2}},
		{model.Avg("V"), map[string]float64{"a": 2, "b": 4.5}},
		{model.Min("V"), map[string]float64{"a": 1, "b": 4}},
		{model.Max("V"), map[string]float64{"a": 3, "b": 5}},
	}
	for _, c := range cases {
		s, err := e.BasicQuery(model.DataScope{Breakdown: "G", Measure: c.m})
		if err != nil {
			t.Fatalf("%s: %v", c.m, err)
		}
		for i, k := range s.Keys {
			if s.Values[i] != c.want[k] {
				t.Errorf("%s[%s] = %v, want %v", c.m, k, s.Values[i], c.want[k])
			}
		}
	}
}

func TestBasicQueryOmitsEmptyGroups(t *testing.T) {
	b := dataset.NewBuilder("t", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "V", Kind: model.KindMeasure},
	})
	b.AddRow([]string{"LA", "Jan"}, []float64{1})
	b.AddRow([]string{"LA", "Feb"}, []float64{2})
	b.AddRow([]string{"SF", "Mar"}, []float64{3})
	e := newEngine(t, b.Build(), true)
	s, err := e.BasicQuery(model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}),
		Breakdown: "Month",
		Measure:   model.Sum("V"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Keys) != 2 || s.Keys[0] != "Jan" || s.Keys[1] != "Feb" {
		t.Errorf("keys = %v", s.Keys)
	}
}

func TestQueryCacheHitSkipsScan(t *testing.T) {
	tab := randomTable(2, 200)
	e := newEngine(t, tab, true)
	ds := model.DataScope{Breakdown: "Month", Measure: model.Sum("Sales")}
	if _, err := e.BasicQuery(ds); err != nil {
		t.Fatal(err)
	}
	execAfterFirst := e.Meter().ExecutedQueries()
	cost1 := e.Meter().Cost()
	// Same unit, different measure: must be a cache hit.
	ds2 := ds
	ds2.Measure = model.Avg("Profit")
	if _, err := e.BasicQuery(ds2); err != nil {
		t.Fatal(err)
	}
	if e.Meter().ExecutedQueries() != execAfterFirst {
		t.Error("measure variant re-scanned despite cache")
	}
	if e.Meter().Cost() != cost1 {
		t.Error("cache hit charged cost")
	}
	if e.Meter().ServedQueries() != 1 {
		t.Errorf("served = %d", e.Meter().ServedQueries())
	}
}

func TestDisabledCacheAlwaysScans(t *testing.T) {
	tab := randomTable(3, 200)
	e := newEngine(t, tab, false)
	ds := model.DataScope{Breakdown: "Month", Measure: model.Sum("Sales")}
	for i := 0; i < 3; i++ {
		if _, err := e.BasicQuery(ds); err != nil {
			t.Fatal(err)
		}
	}
	if e.Meter().ExecutedQueries() != 3 {
		t.Errorf("executed = %d, want 3", e.Meter().ExecutedQueries())
	}
}

func TestAugmentedQueryMatchesPerSiblingBasics(t *testing.T) {
	tab := randomTable(4, 400)
	// Reference engine without cache interference.
	ref := newEngine(t, tab, false)
	e := newEngine(t, tab, true)
	anchor := model.DataScope{
		Subspace:  model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}),
		Breakdown: "Month",
		Measure:   model.Sum("Sales"),
	}
	units, err := e.AugmentedQuery(anchor, "City")
	if err != nil {
		t.Fatal(err)
	}
	for _, city := range []string{"LA", "SF", "SD", "SJ"} {
		u, ok := units[city]
		if !ok {
			t.Fatalf("missing sibling unit for %s", city)
		}
		ds := anchor
		ds.Subspace = anchor.Subspace.With("City", city)
		want, err := ref.BasicQuery(ds)
		if err != nil {
			t.Fatal(err)
		}
		if len(u.GroupKeys) != len(want.Keys) {
			t.Fatalf("%s: group count %d vs %d", city, len(u.GroupKeys), len(want.Keys))
		}
		for i, k := range want.Keys {
			if u.GroupKeys[i] != k || math.Abs(u.Sums["Sales"][i]-want.Values[i]) > 1e-9 {
				t.Errorf("%s[%s]: %v vs %v", city, k, u.Sums["Sales"][i], want.Values[i])
			}
		}
	}
	// One scan must have answered all four siblings.
	if e.Meter().ExecutedQueries() != 1 {
		t.Errorf("augmented query executed %d scans", e.Meter().ExecutedQueries())
	}
	// Subsequent sibling basic queries are served by the cache.
	dsSF := anchor
	dsSF.Subspace = anchor.Subspace.With("City", "SF")
	if _, err := e.BasicQuery(dsSF); err != nil {
		t.Fatal(err)
	}
	if e.Meter().ExecutedQueries() != 1 {
		t.Error("prefetched sibling re-scanned")
	}
}

func TestAugmentedQueryRejectsBreakdownDim(t *testing.T) {
	tab := randomTable(5, 50)
	e := newEngine(t, tab, true)
	anchor := model.DataScope{Breakdown: "Month", Measure: model.Sum("Sales")}
	if _, err := e.AugmentedQuery(anchor, "Month"); err == nil {
		t.Error("augmenting by the breakdown dimension must fail")
	}
}

func TestImpact(t *testing.T) {
	b := dataset.NewBuilder("t", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "Month", Kind: model.KindTemporal},
		{Name: "V", Kind: model.KindMeasure},
	})
	for i := 0; i < 8; i++ {
		city := "LA"
		if i >= 6 {
			city = "SF"
		}
		b.AddRow([]string{city, "M" + strconv.Itoa(i%3+1)}, []float64{1})
	}
	e := newEngine(t, b.Build(), true)
	if e.TotalImpact() != 8 {
		t.Fatalf("total impact = %v", e.TotalImpact())
	}
	imp, err := e.Impact(model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp-0.75) > 1e-12 {
		t.Errorf("impact(LA) = %v, want 0.75", imp)
	}
	if imp, _ := e.Impact(model.EmptySubspace); imp != 1 {
		t.Errorf("impact({*}) = %v", imp)
	}
}

func TestImpactWithSumMeasure(t *testing.T) {
	b := dataset.NewBuilder("t", []model.Field{
		{Name: "City", Kind: model.KindCategorical},
		{Name: "V", Kind: model.KindMeasure},
	})
	b.AddRow([]string{"LA"}, []float64{30})
	b.AddRow([]string{"SF"}, []float64{70})
	e, err := New(b.Build(), Config{ImpactMeasure: model.Sum("V")})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := e.Impact(model.NewSubspace(model.Filter{Dim: "City", Value: "LA"}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp-0.3) > 1e-12 {
		t.Errorf("impact = %v, want 0.3", imp)
	}
}

func TestNewRejectsNonAdditiveImpact(t *testing.T) {
	tab := randomTable(6, 20)
	if _, err := New(tab, Config{ImpactMeasure: model.Avg("Sales")}); err == nil {
		t.Error("AVG impact measure accepted")
	}
}

func TestNewRejectsUnknownMeasure(t *testing.T) {
	tab := randomTable(7, 20)
	if _, err := New(tab, Config{Measures: []model.Measure{model.Sum("Nope")}}); err == nil {
		t.Error("unknown measure column accepted")
	}
}

func TestCostModelCharges(t *testing.T) {
	tab := randomTable(8, 1000)
	m := &Meter{}
	e, err := New(tab, Config{
		Cost:  CostModel{PerQuery: 5, PerRow: 0.001, PerEvaluation: 0.2},
		Meter: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BasicQuery(model.DataScope{Breakdown: "Month", Measure: model.Sum("Sales")}); err != nil {
		t.Fatal(err)
	}
	want := 5 + 0.001*1000
	if math.Abs(m.Cost()-want) > 1e-6 {
		t.Errorf("cost = %v, want %v", m.Cost(), want)
	}
	e.ChargeEvaluation()
	if math.Abs(m.Cost()-want-0.2) > 1e-6 {
		t.Error("evaluation cost not charged")
	}
}

func TestUnitImpactConsistency(t *testing.T) {
	// Sum of sibling impacts equals the parent impact (additivity — the
	// property Equation 17 and the miner's Impact_HDS computation rely on).
	tab := randomTable(9, 300)
	e := newEngine(t, tab, true)
	u, err := e.Unit(model.EmptySubspace, "City")
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range u.Counts {
		total += c
	}
	if total != float64(tab.Rows()) {
		t.Errorf("sibling impacts sum to %v of %d rows", total, tab.Rows())
	}
}
