package engine

import (
	"math"

	"metainsight/internal/cache"
	"metainsight/internal/dataset"
	"metainsight/internal/model"
)

// Substrate is the physical scan layer behind the engine: the component that
// actually visits rows and produces query-cache units. The paper's substrate
// was Excel's query interface over IPC; ours is an in-process columnar scan
// (ColumnarSubstrate). Extracting the interface lets deployments swap in a
// remote cube or SQL backend — and lets the fault injector model such a
// backend's failures deterministically without a real one.
//
// Contract: both methods report the number of rows physically visited, are
// safe for concurrent use, and must be deterministic for a fixed table —
// the engine's single-flight groups assume any two calls with equal
// arguments are interchangeable. Returned units must carry the canonical
// cache.UnitKey for their scope and list only non-empty groups in domain
// order. Errors are retried by the engine up to the retry policy's attempt
// budget; ColumnarSubstrate never errors.
type Substrate interface {
	// ScanUnit executes one filtered group-by scan of (subspace, breakdown)
	// across all measure columns.
	ScanUnit(s model.Subspace, breakdown string) (*cache.Unit, int, error)
	// ScanAugmented executes one scan filtered by base, grouped by
	// (breakdown, ext), returning one unit per non-empty value of ext keyed
	// by that value.
	ScanAugmented(base model.Subspace, breakdown, ext string) (map[string]*cache.Unit, int, error)
}

// UnitFingerprint is the canonical identity of a unit scan, the key fault
// decisions are drawn from. It depends only on the logical query — never on
// cache state, worker, or time — which is what keeps injected failures
// bit-identical across worker counts.
func UnitFingerprint(subspaceKey, breakdown string) string {
	return "u|" + subspaceKey + "|" + breakdown
}

// AugmentedFingerprint is the canonical identity of an augmented scan.
func AugmentedFingerprint(baseKey, breakdown, ext string) string {
	return "a|" + baseKey + "|" + breakdown + "|" + ext
}

// ColumnarSubstrate is the default Substrate: a filtered group-by scan over
// the in-memory columnar table, driven by the most selective filter's
// posting list. It is infallible and pure with respect to the engine's
// meter and caches.
type ColumnarSubstrate struct {
	tab *dataset.Table
}

// NewColumnarSubstrate creates the default in-process substrate over tab.
func NewColumnarSubstrate(tab *dataset.Table) *ColumnarSubstrate {
	return &ColumnarSubstrate{tab: tab}
}

// filterSpec is a resolved subspace filter.
type filterSpec struct {
	col  *dataset.DimColumn
	code int32
}

func resolveFilters(tab *dataset.Table, s model.Subspace) []filterSpec {
	specs := make([]filterSpec, 0, len(s))
	for _, f := range s {
		col := tab.Dimension(f.Dim)
		specs = append(specs, filterSpec{col: col, code: int32(col.Code(f.Value))})
	}
	return specs
}

// scanPlan chooses the row set to iterate: the most selective filter's
// posting list when the subspace is non-empty (the remaining filters are
// verified per row), or the full table otherwise. It returns the driving
// rows (nil = all rows) and the filters still to check.
func scanPlan(tab *dataset.Table, filters []filterSpec) (drive []int32, rest []filterSpec) {
	if len(filters) == 0 {
		return nil, nil
	}
	best := -1
	bestLen := tab.Rows() + 1
	for i, f := range filters {
		if l := len(f.col.Postings(int(f.code))); l < bestLen {
			best, bestLen = i, l
		}
	}
	drive = filters[best].col.Postings(int(filters[best].code))
	rest = make([]filterSpec, 0, len(filters)-1)
	rest = append(rest, filters[:best]...)
	rest = append(rest, filters[best+1:]...)
	return drive, rest
}

// ScanUnit executes one filtered group-by scan across all measure columns,
// producing the cache unit and the number of rows visited.
func (c *ColumnarSubstrate) ScanUnit(s model.Subspace, breakdown string) (*cache.Unit, int, error) {
	bcol := c.tab.Dimension(breakdown)
	card := bcol.Cardinality()
	filters := resolveFilters(c.tab, s)
	mcols := c.tab.MeasureColumns()

	counts := make([]float64, card)
	sums := make([][]float64, len(mcols))
	mins := make([][]float64, len(mcols))
	maxs := make([][]float64, len(mcols))
	for i := range mcols {
		sums[i] = make([]float64, card)
		mins[i] = make([]float64, card)
		maxs[i] = make([]float64, card)
		for g := 0; g < card; g++ {
			mins[i][g] = math.Inf(1)
			maxs[i][g] = math.Inf(-1)
		}
	}

	drive, rest := scanPlan(c.tab, filters)
	scanned := 0
	accumulate := func(r int) {
		for _, f := range rest {
			if f.col.CodeAt(r) != f.code {
				return
			}
		}
		g := bcol.CodeAt(r)
		counts[g]++
		for i, mc := range mcols {
			v := mc.At(r)
			sums[i][g] += v
			if v < mins[i][g] {
				mins[i][g] = v
			}
			if v > maxs[i][g] {
				maxs[i][g] = v
			}
		}
	}
	if drive == nil && len(filters) > 0 {
		drive = []int32{} // non-empty subspace with an absent value: no rows
	}
	if len(filters) == 0 {
		scanned = c.tab.Rows()
		for r := 0; r < scanned; r++ {
			accumulate(r)
		}
	} else {
		scanned = len(drive)
		for _, r := range drive {
			accumulate(int(r))
		}
	}

	return buildUnit(s.Key(), breakdown, bcol.Domain(), counts, mcols, sums, mins, maxs), scanned, nil
}

// ScanAugmented executes one scan grouped by (breakdown, ext), producing one
// unit per non-empty value of ext and the number of rows visited.
func (c *ColumnarSubstrate) ScanAugmented(base model.Subspace, breakdown, ext string) (map[string]*cache.Unit, int, error) {
	bcol := c.tab.Dimension(breakdown)
	dcol := c.tab.Dimension(ext)
	bcard, dcard := bcol.Cardinality(), dcol.Cardinality()
	filters := resolveFilters(c.tab, base)
	mcols := c.tab.MeasureColumns()

	cells := bcard * dcard
	counts := make([]float64, cells)
	sums := make([][]float64, len(mcols))
	mins := make([][]float64, len(mcols))
	maxs := make([][]float64, len(mcols))
	for i := range mcols {
		sums[i] = make([]float64, cells)
		mins[i] = make([]float64, cells)
		maxs[i] = make([]float64, cells)
		for g := 0; g < cells; g++ {
			mins[i][g] = math.Inf(1)
			maxs[i][g] = math.Inf(-1)
		}
	}

	drive, rest := scanPlan(c.tab, filters)
	scanned := 0
	accumulate := func(r int) {
		for _, f := range rest {
			if f.col.CodeAt(r) != f.code {
				return
			}
		}
		g := int(dcol.CodeAt(r))*bcard + int(bcol.CodeAt(r))
		counts[g]++
		for i, mc := range mcols {
			v := mc.At(r)
			sums[i][g] += v
			if v < mins[i][g] {
				mins[i][g] = v
			}
			if v > maxs[i][g] {
				maxs[i][g] = v
			}
		}
	}
	if drive == nil && len(filters) > 0 {
		drive = []int32{}
	}
	if len(filters) == 0 {
		scanned = c.tab.Rows()
		for r := 0; r < scanned; r++ {
			accumulate(r)
		}
	} else {
		scanned = len(drive)
		for _, r := range drive {
			accumulate(int(r))
		}
	}

	units := make(map[string]*cache.Unit, dcard)
	bdomain := bcol.Domain()
	for dv := 0; dv < dcard; dv++ {
		lo, hi := dv*bcard, (dv+1)*bcard
		sub := base.With(ext, dcol.Value(dv))
		colSums := make([][]float64, len(mcols))
		colMins := make([][]float64, len(mcols))
		colMaxs := make([][]float64, len(mcols))
		for i := range mcols {
			colSums[i] = sums[i][lo:hi]
			colMins[i] = mins[i][lo:hi]
			colMaxs[i] = maxs[i][lo:hi]
		}
		u := buildUnit(sub.Key(), breakdown, bdomain, counts[lo:hi], mcols, colSums, colMins, colMaxs)
		if len(u.GroupKeys) > 0 {
			units[dcol.Value(dv)] = u
		}
	}
	return units, scanned, nil
}

// buildUnit compresses full-domain accumulator arrays into a unit holding
// only the non-empty groups.
func buildUnit(subspaceKey, breakdown string, domain []string, counts []float64,
	mcols []*dataset.MeasureColumn, sums, mins, maxs [][]float64) *cache.Unit {

	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	u := &cache.Unit{
		Key:       cache.UnitKey{Subspace: subspaceKey, Breakdown: breakdown},
		GroupKeys: make([]string, 0, nonEmpty),
		Counts:    make([]float64, 0, nonEmpty),
		Sums:      make(map[string][]float64, len(mcols)),
		Mins:      make(map[string][]float64, len(mcols)),
		Maxs:      make(map[string][]float64, len(mcols)),
	}
	for _, mc := range mcols {
		u.Sums[mc.Name] = make([]float64, 0, nonEmpty)
		u.Mins[mc.Name] = make([]float64, 0, nonEmpty)
		u.Maxs[mc.Name] = make([]float64, 0, nonEmpty)
	}
	for g, c := range counts {
		if c == 0 {
			continue
		}
		u.GroupKeys = append(u.GroupKeys, domain[g])
		u.Counts = append(u.Counts, c)
		for i, mc := range mcols {
			u.Sums[mc.Name] = append(u.Sums[mc.Name], sums[i][g])
			u.Mins[mc.Name] = append(u.Mins[mc.Name], mins[i][g])
			u.Maxs[mc.Name] = append(u.Maxs[mc.Name], maxs[i][g])
		}
	}
	return u
}
